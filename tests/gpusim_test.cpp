// Unit + property tests for the simulated GPU: occupancy, cost model,
// memory accounting, stream semantics, copy/compute overlap, multi-device.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "gpusim/cost_model.hpp"
#include "gpusim/device.hpp"
#include "gpusim/spec.hpp"

namespace hs::gpusim {
namespace {

DeviceSpec titan() { return DeviceSpec::TitanXP(); }

// ---- occupancy --------------------------------------------------------------

TEST(OccupancyTest, PaperKernelIsNotRegisterLimited) {
  // Paper: "the kernel function uses only 18 registers, thus it is not a
  // limiting factor" — occupancy should be the full 64 warps/SM.
  KernelAttributes attrs;
  attrs.registers_per_thread = 18;
  EXPECT_EQ(occupancy_warps_per_sm(titan(), attrs, Dim3{256, 1, 1}), 64u);
}

TEST(OccupancyTest, RegisterPressureLimitsWarps) {
  KernelAttributes attrs;
  attrs.registers_per_thread = 128;  // 128*32 = 4096 regs/warp; 65536/4096=16
  EXPECT_EQ(occupancy_warps_per_sm(titan(), attrs, Dim3{32, 1, 1}), 16u);
}

TEST(OccupancyTest, SharedMemoryLimitsBlocks) {
  KernelAttributes attrs;
  attrs.shared_mem_per_block = 48 * 1024;  // 2 blocks fit in 96 KB
  // 256-thread blocks = 8 warps each; 2 blocks -> 16 warps.
  EXPECT_EQ(occupancy_warps_per_sm(titan(), attrs, Dim3{256, 1, 1}), 16u);
}

TEST(OccupancyTest, ImpossibleSharedMemoryIsZero) {
  KernelAttributes attrs;
  attrs.shared_mem_per_block = 128 * 1024;  // > 96 KB per SM
  EXPECT_EQ(occupancy_warps_per_sm(titan(), attrs, Dim3{32, 1, 1}), 0u);
}

TEST(OccupancyTest, WholeBlocksOnly) {
  // 2048 threads/SM = 64 warps; blocks of 24 warps (768 threads): only 2
  // whole blocks fit -> 48 warps.
  KernelAttributes attrs;
  attrs.registers_per_thread = 16;
  EXPECT_EQ(occupancy_warps_per_sm(titan(), attrs, Dim3{768, 1, 1}), 48u);
}

// ---- kernel duration ---------------------------------------------------------

TEST(CostModelTest, LaunchLatencyFloorsEmptyKernel) {
  DeviceSpec spec = titan();
  EXPECT_DOUBLE_EQ(
      kernel_duration_seconds(spec, {}, Dim3{32, 1, 1}, {}),
      spec.kernel_launch_latency);
}

TEST(CostModelTest, ThroughputScalesWithSmCount) {
  DeviceSpec spec = titan();
  KernelAttributes attrs;
  // 30 SMs x 100 warps each, uniform cost: per-SM busy identical.
  std::vector<double> warps(30 * 100, 1000.0);
  double t30 = kernel_duration_seconds(spec, attrs, Dim3{256, 1, 1}, warps);
  spec.sm_count = 15;
  double t15 = kernel_duration_seconds(spec, attrs, Dim3{256, 1, 1}, warps);
  double work30 = t30 - spec.kernel_launch_latency;
  double work15 = t15 - spec.kernel_launch_latency;
  EXPECT_NEAR(work15 / work30, 2.0, 0.01);
}

TEST(CostModelTest, SmallKernelsAreLatencyBound) {
  // One warp per SM cannot hide latency: stall factor = latency_hiding_warps.
  DeviceSpec spec = titan();
  spec.warp_fixed_cost_units = 0;
  KernelAttributes attrs;
  std::vector<double> one_per_sm(spec.sm_count, 1000.0);
  std::vector<double> filled(spec.sm_count * spec.latency_hiding_warps, 1000.0);
  double t_small = kernel_duration_seconds(spec, attrs, Dim3{32, 1, 1},
                                           one_per_sm) -
                   spec.kernel_launch_latency;
  double t_full = kernel_duration_seconds(spec, attrs, Dim3{32, 1, 1},
                                          filled) -
                  spec.kernel_launch_latency;
  // 4x the warps in the same time: latency hiding kicked in.
  EXPECT_NEAR(t_small, t_full, t_full * 0.01);
}

TEST(CostModelTest, DivergenceMaxLaneDominatesWarp) {
  WarpCostAccumulator acc(4, DivergenceModel::kMaxLane);
  acc.add_lane(1);
  acc.add_lane(100);
  acc.add_lane(2);
  acc.add_lane(3);
  auto costs = acc.take_warp_costs();
  ASSERT_EQ(costs.size(), 1u);
  EXPECT_DOUBLE_EQ(costs[0], 100.0);
}

TEST(CostModelTest, SumLaneModelAverages) {
  WarpCostAccumulator acc(4, DivergenceModel::kSumLane);
  acc.add_lane(1);
  acc.add_lane(100);
  acc.add_lane(2);
  acc.add_lane(3);
  auto costs = acc.take_warp_costs();
  ASSERT_EQ(costs.size(), 1u);
  EXPECT_DOUBLE_EQ(costs[0], 106.0 / 4.0);
}

TEST(CostModelTest, WarpsDoNotSpanBlocks) {
  WarpCostAccumulator acc(32, DivergenceModel::kMaxLane);
  for (int i = 0; i < 40; ++i) acc.add_lane(1);  // 1 full warp + 8 lanes
  acc.end_block();
  for (int i = 0; i < 8; ++i) acc.add_lane(1);
  auto costs = acc.take_warp_costs();
  EXPECT_EQ(costs.size(), 3u);  // 32 + 8 | 8
}

TEST(CostModelTest, CopyDurationLinearInBytes) {
  DeviceSpec spec = titan();
  double t1 = copy_duration_seconds(spec, CopyDir::kHostToDevice,
                                    HostMem::kPinned, 1 << 20);
  double t2 = copy_duration_seconds(spec, CopyDir::kHostToDevice,
                                    HostMem::kPinned, 2 << 20);
  EXPECT_NEAR(t2 - t1, (1 << 20) / spec.h2d_bandwidth, 1e-9);
}

TEST(CostModelTest, PageableCopySlower) {
  DeviceSpec spec = titan();
  double pinned = copy_duration_seconds(spec, CopyDir::kDeviceToHost,
                                        HostMem::kPinned, 10 << 20);
  double pageable = copy_duration_seconds(spec, CopyDir::kDeviceToHost,
                                          HostMem::kPageable, 10 << 20);
  EXPECT_GT(pageable, pinned);
}

// ---- device memory -----------------------------------------------------------

TEST(DeviceTest, MallocTracksUsageAndFrees) {
  auto machine = Machine::Create(1, DeviceSpec::TestTiny());
  Device& dev = machine->device(0);
  auto p = dev.malloc(1024);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(dev.memory_used(), 1024u);
  EXPECT_TRUE(dev.owns_range(p.value(), 1024));
  EXPECT_FALSE(dev.owns_range(static_cast<char*>(p.value()) + 1, 1024));
  ASSERT_TRUE(dev.free(p.value()).ok());
  EXPECT_EQ(dev.memory_used(), 0u);
}

TEST(DeviceTest, OutOfMemoryMatchesPaperFailureMode) {
  // The paper hit out-of-memory with 10 MB OpenCL batches; TestTiny has
  // 1 MB of memory.
  auto machine = Machine::Create(1, DeviceSpec::TestTiny());
  Device& dev = machine->device(0);
  auto p = dev.malloc(2 * 1024 * 1024);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), ErrorCode::kOutOfMemory);
}

TEST(DeviceTest, FreeOfUnknownPointerFails) {
  auto machine = Machine::Create(1, DeviceSpec::TestTiny());
  int host_var = 0;
  EXPECT_FALSE(machine->device(0).free(&host_var).ok());
}

TEST(DeviceTest, ZeroByteAllocRejected) {
  auto machine = Machine::Create(1, DeviceSpec::TestTiny());
  EXPECT_FALSE(machine->device(0).malloc(0).ok());
}

// ---- copies -------------------------------------------------------------------

TEST(DeviceTest, CopiesAreFunctionallyExact) {
  auto machine = Machine::Create(1, titan());
  Device& dev = machine->device(0);
  std::vector<std::uint8_t> host(4096);
  std::iota(host.begin(), host.end(), 0);
  auto dptr = dev.malloc(4096);
  ASSERT_TRUE(dptr.ok());
  ASSERT_TRUE(dev.memcpy_h2d(dptr.value(), host.data(), 4096,
                             dev.default_stream(), HostMem::kPageable)
                  .ok());
  std::vector<std::uint8_t> back(4096, 0xEE);
  ASSERT_TRUE(dev.memcpy_d2h(back.data(), dptr.value(), 4096,
                             dev.default_stream(), HostMem::kPageable)
                  .ok());
  EXPECT_EQ(host, back);
}

TEST(DeviceTest, CopyOutsideAllocationRejected) {
  auto machine = Machine::Create(1, DeviceSpec::TestTiny());
  Device& dev = machine->device(0);
  auto dptr = dev.malloc(64);
  ASSERT_TRUE(dptr.ok());
  std::uint8_t buf[128] = {};
  auto r = dev.memcpy_h2d(dptr.value(), buf, 128, dev.default_stream(),
                          HostMem::kPinned);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kOutOfRange);
}

TEST(DeviceTest, DeviceToDeviceCopy) {
  auto machine = Machine::Create(1, titan());
  Device& dev = machine->device(0);
  auto a = dev.malloc(256);
  auto b = dev.malloc(256);
  ASSERT_TRUE(a.ok() && b.ok());
  std::vector<std::uint8_t> host(256, 0x5A);
  ASSERT_TRUE(dev.memcpy_h2d(a.value(), host.data(), 256, 0,
                             HostMem::kPageable).ok());
  ASSERT_TRUE(dev.memcpy_d2d(b.value(), a.value(), 256, 0).ok());
  std::vector<std::uint8_t> back(256, 0);
  ASSERT_TRUE(dev.memcpy_d2h(back.data(), b.value(), 256, 0,
                             HostMem::kPageable).ok());
  EXPECT_EQ(back, host);
}

// ---- kernels -------------------------------------------------------------------

TEST(DeviceTest, KernelExecutesFunctionally) {
  auto machine = Machine::Create(1, titan());
  Device& dev = machine->device(0);
  const std::uint32_t n = 1000;
  auto dptr = dev.malloc(n * sizeof(int));
  ASSERT_TRUE(dptr.ok());
  int* data = static_cast<int*>(dptr.value());
  auto launched = dev.launch(
      Dim3{(n + 255) / 256, 1, 1}, Dim3{256, 1, 1}, {}, 0,
      [&](const ThreadCtx& ctx) {
        std::uint64_t i = ctx.global_x();
        if (i < n) data[i] = static_cast<int>(i * i);
      });
  ASSERT_TRUE(launched.ok());
  for (std::uint32_t i = 0; i < n; i += 97) {
    EXPECT_EQ(data[i], static_cast<int>(i * i));
  }
}

TEST(DeviceTest, KernelValidation) {
  auto machine = Machine::Create(1, titan());
  Device& dev = machine->device(0);
  auto noop = [](const ThreadCtx&) {};
  EXPECT_FALSE(dev.launch(Dim3{0, 1, 1}, Dim3{32, 1, 1}, {}, 0, noop).ok());
  EXPECT_FALSE(dev.launch(Dim3{1, 1, 1}, Dim3{2048, 1, 1}, {}, 0, noop).ok());
  KernelAttributes heavy;
  heavy.shared_mem_per_block = 1 << 20;
  EXPECT_FALSE(dev.launch(Dim3{1, 1, 1}, Dim3{32, 1, 1}, heavy, 0, noop).ok());
  EXPECT_FALSE(dev.launch(Dim3{1, 1, 1}, Dim3{32, 1, 1}, {}, 99, noop).ok());
}

TEST(DeviceTest, BatchingAmortizesLaunchLatency) {
  // The Fig. 1 mechanism: N tiny kernels vs one batched kernel over the
  // same total work. The batched version must be much faster.
  auto machine = Machine::Create(2, titan());
  Device& tiny = machine->device(0);
  Device& batched = machine->device(1);
  auto body = [](const ThreadCtx&) -> std::uint64_t { return 100; };

  const int lines = 64;
  const std::uint32_t threads_per_line = 2000;
  for (int i = 0; i < lines; ++i) {
    ASSERT_TRUE(tiny.launch(Dim3{(threads_per_line + 255) / 256, 1, 1},
                            Dim3{256, 1, 1}, {}, 0, body)
                    .ok());
  }
  ASSERT_TRUE(
      batched
          .launch(Dim3{(lines * threads_per_line + 255) / 256, 1, 1},
                  Dim3{256, 1, 1}, {}, 0, body)
          .ok());
  double t_tiny = tiny.sync_all();
  double t_batched = batched.sync_all();
  EXPECT_GT(t_tiny, 3.0 * t_batched);
}

TEST(DeviceTest, StreamsSerializeInOrder) {
  auto machine = Machine::Create(1, titan());
  Device& dev = machine->device(0);
  auto dptr = dev.malloc(1024);
  ASSERT_TRUE(dptr.ok());
  std::vector<std::uint8_t> host(1024, 1);
  auto c1 = dev.memcpy_h2d(dptr.value(), host.data(), 1024, 0, HostMem::kPinned);
  auto k = dev.launch(Dim3{1, 1, 1}, Dim3{32, 1, 1}, {}, 0,
                      [](const ThreadCtx&) {});
  auto c2 = dev.memcpy_d2h(host.data(), dptr.value(), 1024, 0, HostMem::kPinned);
  ASSERT_TRUE(c1.ok() && k.ok() && c2.ok());
  double t1 = machine->finish_time(c1.value().task);
  double t2 = machine->finish_time(k.value().task);
  double t3 = machine->finish_time(c2.value().task);
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t3);
}

TEST(DeviceTest, IndependentStreamsOverlapCopyAndCompute) {
  // Two streams, each copy->kernel. With separate H2D and compute engines
  // the second stream's copy overlaps the first stream's kernel.
  auto machine = Machine::Create(1, titan());
  Device& dev = machine->device(0);
  StreamId s1 = dev.default_stream();
  StreamId s2 = dev.create_stream();
  auto dptr = dev.malloc(64 << 20);
  ASSERT_TRUE(dptr.ok());
  std::vector<std::uint8_t> host(32 << 20, 7);
  auto body = [](const ThreadCtx&) -> std::uint64_t { return 200000; };

  auto run_pair = [&](StreamId s, std::size_t off) {
    ASSERT_TRUE(dev.memcpy_h2d(static_cast<std::uint8_t*>(dptr.value()) + off,
                               host.data(), 32 << 20, s, HostMem::kPinned)
                    .ok());
    ASSERT_TRUE(dev.launch(Dim3{200, 1, 1}, Dim3{256, 1, 1}, {}, s, body).ok());
  };
  run_pair(s1, 0);
  run_pair(s2, 32 << 20);
  double total = dev.sync_all();

  // Strict check: the makespan is less than strictly-serial execution.
  // Compute the serial estimate by re-running on a fresh single-stream
  // device.
  auto machine2 = Machine::Create(1, titan());
  Device& dev2 = machine2->device(0);
  auto dptr2 = dev2.malloc(64 << 20);
  ASSERT_TRUE(dptr2.ok());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(dev2.memcpy_h2d(dptr2.value(), host.data(), 32 << 20, 0,
                                HostMem::kPinned)
                    .ok());
    ASSERT_TRUE(
        dev2.launch(Dim3{200, 1, 1}, Dim3{256, 1, 1}, {}, 0, body).ok());
  }
  double serial = dev2.sync_all();
  EXPECT_LT(total, serial * 0.95);
}

TEST(DeviceTest, NoOverlapAblationSerializes) {
  // Same two-stream copy+kernel schedule on two machines, with and without
  // copy/compute overlap; the overlap-disabled one must be strictly slower
  // (DESIGN.md ablation 4.2).
  auto run = [](bool overlap) {
    auto machine = Machine::Create(1, DeviceSpec::TitanXP());
    Device& dev = machine->device(0);
    dev.set_copy_compute_overlap(overlap);
    StreamId s2 = dev.create_stream();
    auto dptr = dev.malloc(16 << 20);
    EXPECT_TRUE(dptr.ok());
    std::vector<std::uint8_t> host(8 << 20, 7);
    auto body = [](const ThreadCtx&) -> std::uint64_t { return 100000; };
    EXPECT_TRUE(dev.memcpy_h2d(dptr.value(), host.data(), 8 << 20, 0,
                               HostMem::kPinned).ok());
    EXPECT_TRUE(dev.launch(Dim3{100, 1, 1}, Dim3{256, 1, 1}, {}, 0, body).ok());
    EXPECT_TRUE(dev.memcpy_h2d(
        static_cast<std::uint8_t*>(dptr.value()) + (8 << 20), host.data(),
        8 << 20, s2, HostMem::kPinned).ok());
    EXPECT_TRUE(dev.launch(Dim3{100, 1, 1}, Dim3{256, 1, 1}, {}, s2, body).ok());
    return dev.sync_all();
  };
  EXPECT_GT(run(false), run(true));
}

TEST(DeviceTest, WaitEventCreatesCrossStreamDependency) {
  auto machine = Machine::Create(1, titan());
  Device& dev = machine->device(0);
  StreamId s2 = dev.create_stream();
  auto body = [](const ThreadCtx&) -> std::uint64_t { return 500000; };
  auto k1 = dev.launch(Dim3{64, 1, 1}, Dim3{256, 1, 1}, {}, 0, body);
  ASSERT_TRUE(k1.ok());
  ASSERT_TRUE(dev.wait_event(s2, k1.value()).ok());
  auto k2 = dev.launch(Dim3{1, 1, 1}, Dim3{32, 1, 1}, {}, s2,
                       [](const ThreadCtx&) {});
  ASSERT_TRUE(k2.ok());
  EXPECT_GE(machine->finish_time(k2.value().task),
            machine->finish_time(k1.value().task));
}

TEST(DeviceTest, MultiDeviceComputeInParallel) {
  auto machine = Machine::Create(2, titan());
  auto body = [](const ThreadCtx&) -> std::uint64_t { return 10000; };
  for (int d = 0; d < 2; ++d) {
    ASSERT_TRUE(machine->device(d)
                    .launch(Dim3{1000, 1, 1}, Dim3{256, 1, 1}, {}, 0, body)
                    .ok());
  }
  double t0 = machine->device(0).sync_all();
  double t1 = machine->device(1).sync_all();
  // Devices are independent engines: both finish at the single-kernel time,
  // so the machine makespan is ~half of a serialized 2-kernel run.
  EXPECT_NEAR(t0, t1, t0 * 1e-9);
  EXPECT_NEAR(machine->makespan(), t0, 1e-12);
}

TEST(DeviceTest, CountersTrackActivity) {
  auto machine = Machine::Create(1, titan());
  Device& dev = machine->device(0);
  auto dptr = dev.malloc(1024);
  ASSERT_TRUE(dptr.ok());
  std::vector<std::uint8_t> host(1024);
  ASSERT_TRUE(dev.memcpy_h2d(dptr.value(), host.data(), 1024, 0,
                             HostMem::kPinned).ok());
  ASSERT_TRUE(dev.memcpy_d2h(host.data(), dptr.value(), 1024, 0,
                             HostMem::kPinned).ok());
  ASSERT_TRUE(dev.launch(Dim3{2, 1, 1}, Dim3{64, 1, 1}, {}, 0,
                         [](const ThreadCtx&) {}).ok());
  DeviceCounters c = dev.counters();
  EXPECT_EQ(c.kernels_launched, 1u);
  EXPECT_EQ(c.h2d_copies, 1u);
  EXPECT_EQ(c.d2h_copies, 1u);
  EXPECT_EQ(c.h2d_bytes, 1024u);
  EXPECT_EQ(c.d2h_bytes, 1024u);
  EXPECT_EQ(c.warps_executed, 4u);  // 2 blocks x 64 threads = 4 warps
}

TEST(DeviceTest, ThreadCtxIndexing) {
  auto machine = Machine::Create(1, titan());
  Device& dev = machine->device(0);
  std::vector<std::uint64_t> seen;
  auto r = dev.launch(Dim3{2, 2, 1}, Dim3{4, 2, 1}, {}, 0,
                      [&](const ThreadCtx& ctx) {
                        seen.push_back(ctx.global_y() * 8 + ctx.global_x());
                      });
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(seen.size(), 32u);  // 4 blocks x 8 threads
  std::vector<std::uint64_t> sorted = seen;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

// Parameterized occupancy sweep: for any block size, the returned warp
// count is a positive multiple of the block's warps and never exceeds the
// SM's warp slots.
class OccupancySweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(OccupancySweep, WholeBlocksWithinSlots) {
  auto [block_threads, regs] = GetParam();
  DeviceSpec spec = DeviceSpec::TitanXP();
  KernelAttributes attrs;
  attrs.registers_per_thread = regs;
  Dim3 block{block_threads, 1, 1};
  std::uint32_t warps = occupancy_warps_per_sm(spec, attrs, block);
  std::uint32_t warps_per_block = (block_threads + 31) / 32;
  if (warps > 0) {
    EXPECT_EQ(warps % warps_per_block, 0u);
    EXPECT_LE(warps, spec.max_warps_per_sm);
    EXPECT_LE(static_cast<std::uint64_t>(warps) * 32 * regs,
              spec.registers_per_sm + 32ull * regs * warps_per_block);
  }
  // More registers can never increase occupancy.
  attrs.registers_per_thread = regs * 2;
  EXPECT_LE(occupancy_warps_per_sm(spec, attrs, block), warps);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OccupancySweep,
    ::testing::Combine(::testing::Values(32u, 64u, 128u, 256u, 512u, 1024u),
                       ::testing::Values(16u, 32u, 64u, 128u)));

TEST(DeviceTest, ComputeBusySecondsTracksKernels) {
  auto machine = Machine::Create(1, titan());
  Device& dev = machine->device(0);
  EXPECT_DOUBLE_EQ(dev.compute_busy_seconds(), 0.0);
  ASSERT_TRUE(dev.launch(Dim3{64, 1, 1}, Dim3{256, 1, 1}, {}, 0,
                         [](const ThreadCtx&) -> std::uint64_t {
                           return 1000;
                         }).ok());
  double busy = dev.compute_busy_seconds();
  EXPECT_GT(busy, 0.0);
  EXPECT_LE(busy, machine->makespan() + 1e-12);
}

}  // namespace
}  // namespace hs::gpusim
