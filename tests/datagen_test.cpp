// Tests for the corpus generators: determinism, exact sizing, and — the
// property the Fig. 5 reproduction rests on — that the three corpora order
// the same way as the paper's datasets on duplication and compressibility.
#include <gtest/gtest.h>

#include "datagen/corpus.hpp"

namespace hs::datagen {
namespace {

constexpr std::uint64_t kTestSize = 2 * 1024 * 1024;

TEST(CorpusTest, ExactSizeAndDeterminism) {
  for (CorpusKind kind : {CorpusKind::kParsecLike, CorpusKind::kSourceLike,
                          CorpusKind::kSilesiaLike}) {
    CorpusSpec spec;
    spec.kind = kind;
    spec.bytes = kTestSize;
    spec.seed = 7;
    auto a = generate(spec);
    auto b = generate(spec);
    EXPECT_EQ(a.size(), kTestSize) << corpus_name(kind);
    EXPECT_EQ(a, b) << corpus_name(kind);
    spec.seed = 8;
    auto c = generate(spec);
    EXPECT_NE(a, c) << corpus_name(kind);
  }
}

TEST(CorpusTest, ParseKindNames) {
  EXPECT_EQ(parse_corpus_kind("parsec").value_or(CorpusKind::kSilesiaLike),
            CorpusKind::kParsecLike);
  EXPECT_EQ(parse_corpus_kind("Linux").value_or(CorpusKind::kParsecLike),
            CorpusKind::kSourceLike);
  EXPECT_EQ(parse_corpus_kind("SILESIA").value_or(CorpusKind::kParsecLike),
            CorpusKind::kSilesiaLike);
  EXPECT_FALSE(parse_corpus_kind("bogus").ok());
}

TEST(CorpusTest, SourceLikeLooksLikeSource) {
  CorpusSpec spec;
  spec.kind = CorpusKind::kSourceLike;
  spec.bytes = 256 * 1024;
  auto data = generate(spec);
  std::string text(data.begin(), data.end());
  EXPECT_NE(text.find("GNU General Public License"), std::string::npos);
  EXPECT_NE(text.find("static int"), std::string::npos);
  // Printable content.
  std::size_t printable = 0;
  for (std::uint8_t b : data) {
    if (b == '\n' || b == '\t' || (b >= 0x20 && b < 0x7F)) ++printable;
  }
  EXPECT_GT(printable, data.size() * 99 / 100);
}

TEST(CorpusTest, DuplicationOrderingMatchesDatasets) {
  // Linux-kernel-source >> parsec-native > silesia on duplicate content,
  // the ordering behind Fig. 5's per-dataset throughput differences.
  auto prof = [](CorpusKind kind) {
    CorpusSpec spec;
    spec.kind = kind;
    spec.bytes = kTestSize;
    auto data = generate(spec);
    return profile(data);
  };
  CorpusProfile source = prof(CorpusKind::kSourceLike);
  CorpusProfile parsec = prof(CorpusKind::kParsecLike);
  CorpusProfile silesia = prof(CorpusKind::kSilesiaLike);

  EXPECT_GT(source.duplicate_block_fraction, 0.35);
  EXPECT_GT(parsec.duplicate_block_fraction, 0.15);
  EXPECT_LT(silesia.duplicate_block_fraction, 0.10);
  EXPECT_GT(source.duplicate_block_fraction,
            parsec.duplicate_block_fraction);
  EXPECT_GT(parsec.duplicate_block_fraction,
            silesia.duplicate_block_fraction);

  // Source text compresses hardest; silesia (with noise segments) least.
  EXPECT_LT(source.lzss_ratio, 0.6);
  EXPECT_LT(source.lzss_ratio, silesia.lzss_ratio);
  // All three contain enough blocks for a meaningful dedup run.
  EXPECT_GT(source.block_count, 50u);
  EXPECT_GT(parsec.block_count, 50u);
  EXPECT_GT(silesia.block_count, 50u);
}

TEST(CorpusTest, ProfileOfEmptyIsZero) {
  CorpusProfile p = profile({});
  EXPECT_EQ(p.block_count, 0u);
  EXPECT_EQ(p.duplicate_block_fraction, 0.0);
}

}  // namespace
}  // namespace hs::datagen
