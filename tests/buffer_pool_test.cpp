// BufferPool / PooledBuffer: size classing, reuse, cache-bound
// exhaustion, counters, and cross-thread recycling.
#include "common/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <thread>
#include <vector>

namespace hs {
namespace {

TEST(BufferPoolTest, AcquireRoundsUpToPowerOfTwoClass) {
  BufferPool pool;
  for (std::size_t want : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                           std::size_t{65}, std::size_t{1000},
                           std::size_t{4096}, std::size_t{100000}}) {
    BufferPool::Slab slab = pool.acquire(want);
    ASSERT_NE(slab.ptr, nullptr);
    EXPECT_GE(slab.capacity, want);
    EXPECT_GE(slab.capacity, BufferPool::kMinClassBytes);
    EXPECT_TRUE(std::has_single_bit(slab.capacity)) << slab.capacity;
    pool.release(slab);
  }
}

TEST(BufferPoolTest, ReleaseThenAcquireReusesSlab) {
  BufferPool pool;
  BufferPool::Slab first = pool.acquire(1024);
  std::uint8_t* ptr = first.ptr;
  pool.release(first);
  BufferPool::Slab second = pool.acquire(1000);  // same 1024-byte class
  EXPECT_EQ(second.ptr, ptr);
  PoolCounters c = pool.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  pool.release(second);
}

TEST(BufferPoolTest, OversizeRequestsAreExactAndNeverCached) {
  BufferPool pool;
  const std::size_t big = BufferPool::kMaxClassBytes + 12345;
  BufferPool::Slab slab = pool.acquire(big);
  ASSERT_NE(slab.ptr, nullptr);
  EXPECT_EQ(slab.capacity, big);
  pool.release(slab);
  EXPECT_EQ(pool.counters().bytes_cached, 0u);
  // A second acquire must be a fresh allocation, not a cache hit.
  BufferPool::Slab again = pool.acquire(big);
  EXPECT_EQ(pool.counters().hits, 0u);
  pool.release(again);
}

TEST(BufferPoolTest, CacheBoundEvictsInsteadOfGrowing) {
  BufferPool pool(/*max_cached_bytes=*/4096);
  std::vector<BufferPool::Slab> slabs;
  for (int i = 0; i < 8; ++i) slabs.push_back(pool.acquire(1024));
  for (auto& s : slabs) pool.release(s);
  // Only 4 slabs (4096 bytes) fit under the bound; the rest were freed.
  EXPECT_LE(pool.counters().bytes_cached, 4096u);
  EXPECT_EQ(pool.counters().bytes_outstanding, 0u);
}

TEST(BufferPoolTest, TrimDropsCachedBytes) {
  BufferPool pool;
  BufferPool::Slab slab = pool.acquire(2048);
  pool.release(slab);
  EXPECT_GT(pool.counters().bytes_cached, 0u);
  pool.trim();
  EXPECT_EQ(pool.counters().bytes_cached, 0u);
}

TEST(BufferPoolTest, CountersTrackOutstandingBytes) {
  BufferPool pool;
  BufferPool::Slab a = pool.acquire(100);
  BufferPool::Slab b = pool.acquire(5000);
  PoolCounters c = pool.counters();
  EXPECT_EQ(c.bytes_outstanding, a.capacity + b.capacity);
  pool.release(a);
  pool.release(b);
  c = pool.counters();
  EXPECT_EQ(c.bytes_outstanding, 0u);
  EXPECT_EQ(c.bytes_cached, c.bytes_allocated);
}

TEST(BufferPoolTest, ConcurrentAcquireReleaseStaysConsistent) {
  BufferPool pool;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kIters; ++i) {
        std::size_t want = 64u << ((i + t) % 6);
        BufferPool::Slab slab = pool.acquire(want);
        ASSERT_NE(slab.ptr, nullptr);
        slab.ptr[0] = static_cast<std::uint8_t>(i);
        slab.ptr[slab.capacity - 1] = static_cast<std::uint8_t>(t);
        pool.release(slab);
      }
    });
  }
  for (auto& th : threads) th.join();
  PoolCounters c = pool.counters();
  EXPECT_EQ(c.bytes_outstanding, 0u);
  EXPECT_EQ(c.hits + c.misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(BufferPoolTest, SnapshotWhileWritersRunSeesNoTornValues) {
  // Regression test for counters(): the snapshot is lock-free atomic reads,
  // so a reader polling at full speed while writers churn must only ever see
  // plausible values — never a torn u64 or a counter running backwards.
  // (Under TSan this also proves the counter fields are race-free.)
  BufferPool pool;
  constexpr int kWriters = 4;
  constexpr int kIters = 5000;
  constexpr std::uint64_t kMaxSlab = 2048;  // largest class requested below
  constexpr std::uint64_t kOps =
      static_cast<std::uint64_t>(kWriters) * kIters;
  std::atomic<bool> done{false};

  std::thread reader([&] {
    std::uint64_t last_hits = 0;
    std::uint64_t last_misses = 0;
    while (!done.load(std::memory_order_acquire)) {
      PoolCounters c = pool.counters();
      // Monotonic counters never run backwards between two snapshots.
      EXPECT_GE(c.hits, last_hits);
      EXPECT_GE(c.misses, last_misses);
      last_hits = c.hits;
      last_misses = c.misses;
      // Every field stays within what the workload could possibly produce;
      // a torn 64-bit read would blow straight through these ceilings.
      EXPECT_LE(c.hits + c.misses, kOps);
      EXPECT_LE(c.bytes_allocated, kOps * kMaxSlab);
      EXPECT_LE(c.bytes_cached, kOps * kMaxSlab);
      EXPECT_LE(c.bytes_outstanding,
                static_cast<std::uint64_t>(kWriters) * kMaxSlab);
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&pool, t] {
      for (int i = 0; i < kIters; ++i) {
        BufferPool::Slab slab = pool.acquire(64u << ((i + t) % 6));
        ASSERT_NE(slab.ptr, nullptr);
        slab.ptr[0] = static_cast<std::uint8_t>(i);
        pool.release(slab);
      }
    });
  }
  for (auto& th : writers) th.join();
  done.store(true, std::memory_order_release);
  reader.join();

  // Quiescent totals are exact.
  PoolCounters c = pool.counters();
  EXPECT_EQ(c.hits + c.misses, kOps);
  EXPECT_EQ(c.bytes_outstanding, 0u);
  EXPECT_EQ(c.bytes_cached, c.bytes_allocated);
}

TEST(PooledBufferTest, VectorLikeBasics) {
  BufferPool pool;
  PooledBuffer buf(&pool);
  EXPECT_TRUE(buf.empty());
  buf.push_back(1);
  buf.push_back(2);
  std::uint8_t tail[] = {3, 4, 5};
  buf.append(tail, 3);
  ASSERT_EQ(buf.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(buf[i], i + 1);
  buf.resize(8);
  EXPECT_EQ(buf[7], 0u);  // zero-filled growth
  buf.resize(2);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(PooledBufferTest, ClearKeepsSlabForReuse) {
  BufferPool pool;
  PooledBuffer buf(&pool);
  buf.resize(1000);
  const std::uint8_t* ptr = buf.data();
  const std::size_t cap = buf.capacity();
  buf.clear();
  EXPECT_EQ(buf.capacity(), cap);
  buf.resize(cap);
  EXPECT_EQ(buf.data(), ptr);  // no round-trip through the pool
}

TEST(PooledBufferTest, CopyIsDeepAndMoveIsPointerStable) {
  BufferPool pool;
  PooledBuffer a(&pool);
  std::uint8_t bytes[] = {9, 8, 7, 6};
  a.assign(bytes);

  PooledBuffer b = a;  // deep copy
  ASSERT_EQ(b.size(), 4u);
  EXPECT_NE(b.data(), a.data());
  EXPECT_TRUE(a == b);
  b[0] = 0;
  EXPECT_EQ(a[0], 9u);
  EXPECT_TRUE(a != b);

  const std::uint8_t* ptr = a.data();
  PooledBuffer c = std::move(a);  // move keeps the heap pointer
  EXPECT_EQ(c.data(), ptr);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
}

TEST(PooledBufferTest, DestructionRecyclesIntoPool) {
  BufferPool pool;
  const std::uint8_t* ptr = nullptr;
  {
    PooledBuffer buf(&pool);
    buf.resize(512);
    ptr = buf.data();
  }
  BufferPool::Slab slab = pool.acquire(512);
  EXPECT_EQ(slab.ptr, ptr);
  EXPECT_EQ(pool.counters().hits, 1u);
  pool.release(slab);
}

}  // namespace
}  // namespace hs
