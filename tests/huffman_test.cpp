// Tests for the canonical Huffman codec and its integration as the Dedup
// entropy stage (codec = kLzssHuffman).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "datagen/corpus.hpp"
#include "dedup/container.hpp"
#include "dedup/pipelines.hpp"
#include "kernels/huffman.hpp"

namespace hs::kernels {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

TEST(HuffmanTest, RoundtripText) {
  auto input = bytes_of(
      "the quick brown fox jumps over the lazy dog again and again and "
      "again because entropy coding loves repeated letters");
  auto compressed = huffman_encode(input);
  auto back = huffman_decode(compressed, input.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), input);
}

TEST(HuffmanTest, SkewedDataCompresses) {
  // 90% 'a': entropy ~0.7 bits/byte, so big wins even with the 128 B header.
  Xoshiro256 rng(3);
  std::vector<std::uint8_t> input(20000);
  for (auto& b : input) {
    b = rng.chance(0.9) ? 'a' : static_cast<std::uint8_t>(rng.bounded(256));
  }
  auto compressed = huffman_encode(input);
  EXPECT_LT(compressed.size(), input.size() / 2);
  auto back = huffman_decode(compressed, input.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), input);
}

TEST(HuffmanTest, RoundtripEdgeCases) {
  for (const auto& input : std::vector<std::vector<std::uint8_t>>{
           {},                                   // empty
           {0x42},                               // one byte
           std::vector<std::uint8_t>(5000, 7),   // single symbol
           {0, 255},                             // two extremes
           random_bytes(4096, 9),                // uniform random
       }) {
    auto compressed = huffman_encode(input);
    auto back = huffman_decode(compressed, input.size());
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.value(), input);
  }
}

TEST(HuffmanTest, DecodeRejectsCorruption) {
  auto input = bytes_of("hello hello hello hello");
  auto compressed = huffman_encode(input);
  // Truncated header.
  std::vector<std::uint8_t> tiny(compressed.begin(), compressed.begin() + 10);
  EXPECT_EQ(huffman_decode(tiny, input.size()).status().code(),
            ErrorCode::kDataLoss);
  // Truncated payload.
  auto cut = compressed;
  cut.resize(cut.size() - 1);
  cut.resize(129);  // header + 1 byte
  EXPECT_FALSE(huffman_decode(cut, input.size()).ok());
  // A Kraft-violating table (every symbol claims a 1-bit code).
  std::vector<std::uint8_t> bogus(128 + 16, 0x11);
  EXPECT_EQ(huffman_decode(bogus, 4).status().code(), ErrorCode::kDataLoss);
}

TEST(HuffmanTest, CodeLengthsRespectKraftAndCap) {
  // Fibonacci-like frequencies force deep trees; lengths must stay <= 15
  // and satisfy Kraft.
  std::vector<std::uint64_t> freqs(256, 0);
  std::uint64_t a = 1, b = 1;
  for (int s = 0; s < 40; ++s) {
    freqs[static_cast<std::size_t>(s)] = a;
    std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  auto lengths = huffman_code_lengths(freqs);
  double kraft = 0;
  for (int s = 0; s < 256; ++s) {
    if (freqs[static_cast<std::size_t>(s)] > 0) {
      ASSERT_GT(lengths[static_cast<std::size_t>(s)], 0);
    }
    if (lengths[static_cast<std::size_t>(s)] > 0) {
      EXPECT_LE(lengths[static_cast<std::size_t>(s)], 15);
      kraft += std::pow(2.0, -static_cast<double>(
                                  lengths[static_cast<std::size_t>(s)]));
    }
  }
  EXPECT_LE(kraft, 1.0 + 1e-12);
}

TEST(HuffmanTest, FrequentSymbolsGetShorterCodes) {
  std::vector<std::uint64_t> freqs(256, 0);
  freqs['a'] = 1000;
  freqs['b'] = 100;
  freqs['c'] = 10;
  freqs['d'] = 1;
  auto lengths = huffman_code_lengths(freqs);
  EXPECT_LE(lengths['a'], lengths['b']);
  EXPECT_LE(lengths['b'], lengths['c']);
  EXPECT_LE(lengths['c'], lengths['d']);
}

}  // namespace
}  // namespace hs::kernels

namespace hs::dedup {
namespace {

TEST(DedupCodecTest, HuffmanCodecRoundtripsAndShrinksArchives) {
  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kSourceLike;  // compressible text
  spec.bytes = 256 * 1024;
  auto input = datagen::generate(spec);

  DedupConfig lzss_only;
  lzss_only.batch_size = 64 * 1024;
  DedupConfig with_entropy = lzss_only;
  with_entropy.codec = DedupCodec::kLzssHuffman;

  auto plain = archive_sequential(input, lzss_only);
  auto entropy = archive_sequential(input, with_entropy);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(entropy.ok());

  // Per-block best-of: the entropy archive can never be larger, and on
  // compressible source text some blocks must actually choose it.
  EXPECT_LE(entropy.value().size(), plain.value().size());
  auto info = inspect(entropy.value());
  ASSERT_TRUE(info.ok());
  EXPECT_GT(info.value().entropy_blocks, 0u);

  for (const auto* archive : {&plain.value(), &entropy.value()}) {
    auto back = extract(*archive);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.value(), input);
  }
}

TEST(DedupCodecTest, CodecRecordedInHeader) {
  DedupConfig cfg;
  cfg.codec = DedupCodec::kLzssHuffman;
  auto archive = archive_sequential(std::vector<std::uint8_t>(1000, 'x'), cfg);
  ASSERT_TRUE(archive.ok());
  // Byte 12 holds the codec id (after magic + version).
  EXPECT_EQ(archive.value()[12], 1);
  auto back = extract(archive.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().size(), 1000u);
}

TEST(DedupCodecTest, SparPipelineSupportsEntropyCodec) {
  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kParsecLike;
  spec.bytes = 128 * 1024;
  auto input = datagen::generate(spec);
  DedupConfig cfg;
  cfg.batch_size = 32 * 1024;
  cfg.codec = DedupCodec::kLzssHuffman;
  auto seq = archive_sequential(input, cfg);
  auto spar = archive_spar_cpu(input, cfg, 3);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(spar.ok());
  EXPECT_EQ(seq.value(), spar.value());
  auto back = extract(spar.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), input);
}

}  // namespace
}  // namespace hs::dedup
