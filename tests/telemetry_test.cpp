// Tests for hs::telemetry: histogram bucket math, sharded counters under
// concurrent writers, percentile queries against a sorted-vector oracle,
// Chrome-trace export schema (parsed back with a minimal JSON reader),
// queue-depth sampler lifecycle, and the zero-allocation hot-path contract.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "common/alloc_hook.hpp"
#include "flow/adapters.hpp"
#include "flow/pipeline.hpp"
#include "telemetry/queue_sampler.hpp"
#include "telemetry/span_recorder.hpp"
#include "telemetry/telemetry.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define HS_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define HS_TEST_SANITIZED 1
#endif
#endif
#ifndef HS_TEST_SANITIZED
#define HS_TEST_SANITIZED 0
#endif

namespace hs::telemetry {
namespace {

// ---- minimal JSON reader (enough to parse back exported documents) --------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v;

  [[nodiscard]] const JsonObject* object() const {
    return std::get_if<JsonObject>(&v);
  }
  [[nodiscard]] const JsonArray* array() const {
    return std::get_if<JsonArray>(&v);
  }
  [[nodiscard]] const std::string* str() const {
    return std::get_if<std::string>(&v);
  }
  [[nodiscard]] const double* number() const {
    return std::get_if<double>(&v);
  }
  [[nodiscard]] const JsonValue* field(const std::string& key) const {
    const JsonObject* o = object();
    if (o == nullptr) return nullptr;
    auto it = o->find(key);
    return it == o->end() ? nullptr : &it->second;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : s_(text) {}

  std::optional<JsonValue> parse() {
    auto v = value();
    skip_ws();
    if (!v.has_value() || pos_ != s_.size()) return std::nullopt;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<std::string> string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return std::nullopt;
        char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return std::nullopt;
            pos_ += 4;  // schema tests don't need the code point itself
            out += '?';
            break;
          }
          default: return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= s_.size()) return std::nullopt;
    ++pos_;  // closing quote
    return out;
  }

  std::optional<JsonValue> value() {
    skip_ws();
    if (pos_ >= s_.size()) return std::nullopt;
    char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      JsonObject obj;
      skip_ws();
      if (consume('}')) return JsonValue{obj};
      while (true) {
        auto key = string();
        if (!key.has_value() || !consume(':')) return std::nullopt;
        auto val = value();
        if (!val.has_value()) return std::nullopt;
        obj.emplace(std::move(*key), std::move(*val));
        if (consume(',')) continue;
        if (consume('}')) return JsonValue{std::move(obj)};
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      JsonArray arr;
      skip_ws();
      if (consume(']')) return JsonValue{arr};
      while (true) {
        auto val = value();
        if (!val.has_value()) return std::nullopt;
        arr.push_back(std::move(*val));
        if (consume(',')) continue;
        if (consume(']')) return JsonValue{std::move(arr)};
        return std::nullopt;
      }
    }
    if (c == '"') {
      auto s = string();
      if (!s.has_value()) return std::nullopt;
      return JsonValue{std::move(*s)};
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return JsonValue{true};
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return JsonValue{false};
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{nullptr};
    }
    // number
    std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    try {
      return JsonValue{std::stod(std::string(s_.substr(start, pos_ - start)))};
    } catch (...) {
      return std::nullopt;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

// ---- histogram bucket boundaries ------------------------------------------

TEST(HistogramBucketTest, ZeroAndOne) {
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket(1), 1u);
  EXPECT_EQ(histogram_bucket_lower(0), 0u);
  EXPECT_EQ(histogram_bucket_upper(0), 0u);
  EXPECT_EQ(histogram_bucket_lower(1), 1u);
  EXPECT_EQ(histogram_bucket_upper(1), 1u);
}

TEST(HistogramBucketTest, PowerOfTwoBoundaries) {
  for (std::size_t b = 1; b < kHistogramBuckets; ++b) {
    const std::uint64_t lo = histogram_bucket_lower(b);
    const std::uint64_t hi = histogram_bucket_upper(b);
    EXPECT_LE(lo, hi);
    EXPECT_EQ(histogram_bucket(lo), b) << "lower bound of bucket " << b;
    EXPECT_EQ(histogram_bucket(hi), b) << "upper bound of bucket " << b;
    if (b + 1 < kHistogramBuckets) {
      EXPECT_EQ(histogram_bucket(hi + 1), b + 1)
          << "first value past bucket " << b;
    }
  }
  // The last bucket absorbs everything above its lower bound.
  EXPECT_EQ(histogram_bucket(~0ull), kHistogramBuckets - 1);
}

TEST(HistogramBucketTest, BucketsPartitionTheRange) {
  // Consecutive buckets tile [0, 2^63) without gaps or overlap.
  for (std::size_t b = 0; b + 1 < kHistogramBuckets; ++b) {
    EXPECT_EQ(histogram_bucket_upper(b) + 1, histogram_bucket_lower(b + 1));
  }
}

// ---- counters: sharding and merge -----------------------------------------

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentWritersMergeExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(CounterTest, MoreThreadsThanShardsSpillToSharedSlot) {
  // Hold > kShards threads alive at once so at least some must use the
  // shared overflow slot; no increment may be lost.
  Counter c;
  constexpr int kThreads = static_cast<int>(kShards) + 16;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      c.add();  // claims this thread's slot (or the shared one)
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < 999; ++i) c.add();
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * 1000);
}

TEST(HistogramTest, ConcurrentWritersMergeExactly) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t) * 1000 + (i % 7));
      }
    });
  }
  for (auto& t : threads) t.join();
  HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

// ---- percentiles vs sorted-vector oracle ----------------------------------

TEST(HistogramTest, PercentilesMatchOracleWithinBucketResolution) {
  // Deterministic pseudo-random samples spanning several buckets.
  std::vector<std::uint64_t> values;
  std::uint64_t x = 0x243F6A8885A308D3ull;
  for (int i = 0; i < 10000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(x % 1000000);
  }
  Histogram h;
  for (std::uint64_t v : values) h.record(v);
  std::vector<std::uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());

  HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.count, values.size());
  for (double p : {0.50, 0.90, 0.95, 0.99}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(sorted.size())));
    const std::uint64_t oracle = sorted[rank - 1];
    const double est = snap.percentile(p);
    // Log2 bucketing is exact to the bucket: the estimate must land in the
    // same power-of-two band as the oracle sample of the same rank.
    EXPECT_EQ(histogram_bucket(static_cast<std::uint64_t>(est)),
              histogram_bucket(oracle))
        << "p=" << p << " est=" << est << " oracle=" << oracle;
  }
}

TEST(HistogramTest, PercentileEdgeCases) {
  Histogram h;
  EXPECT_EQ(h.snapshot().percentile(0.5), 0.0);  // empty
  h.record(42);
  HistogramSnapshot one = h.snapshot();
  // A single sample: every percentile lands in its bucket.
  EXPECT_EQ(histogram_bucket(static_cast<std::uint64_t>(one.p50())),
            histogram_bucket(42));
  EXPECT_EQ(one.mean(), 42.0);
}

// ---- gauges and registry ---------------------------------------------------

TEST(RegistryTest, FindOrCreateReturnsStablePointers) {
  Registry reg;
  Counter* c = reg.counter("x.items");
  EXPECT_EQ(reg.counter("x.items"), c);
  Gauge* g = reg.gauge("x.level");
  g->set(2.5);
  EXPECT_EQ(reg.gauge("x.level"), g);
  EXPECT_EQ(g->value(), 2.5);
}

TEST(RegistryTest, SnapshotAndExporters) {
  Registry reg;
  reg.counter("a.items")->add(7);
  reg.gauge("a.level")->set(1.5);
  reg.gauge_callback("a.cb", [] { return 9.0; });
  Histogram* h = reg.histogram("a.lat_ns");
  h->record(100);
  h->record(200);

  MetricsSnapshot snap = reg.snapshot();
  ASSERT_NE(snap.find_counter("a.items"), nullptr);
  EXPECT_EQ(snap.find_counter("a.items")->value, 7u);
  ASSERT_NE(snap.find_gauge("a.cb"), nullptr);
  EXPECT_EQ(snap.find_gauge("a.cb")->value, 9.0);
  ASSERT_NE(snap.find_histogram("a.lat_ns"), nullptr);
  EXPECT_EQ(snap.find_histogram("a.lat_ns")->hist.count, 2u);
  EXPECT_EQ(snap.find_counter("missing"), nullptr);

  const std::string prom = snap.prometheus_text();
  EXPECT_NE(prom.find("a_items 7"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE a_lat_ns histogram"), std::string::npos);
  EXPECT_NE(prom.find("a_lat_ns_count 2"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);

  auto doc = JsonReader(snap.json()).parse();
  ASSERT_TRUE(doc.has_value()) << "metrics JSON does not parse";
  const JsonValue* counters = doc->field("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* items = counters->field("a.items");
  ASSERT_NE(items, nullptr);
  ASSERT_NE(items->number(), nullptr);
  EXPECT_EQ(*items->number(), 7.0);
  const JsonValue* hists = doc->field("histograms");
  ASSERT_NE(hists, nullptr);
  ASSERT_NE(hists->field("a.lat_ns"), nullptr);
  ASSERT_NE(hists->field("a.lat_ns")->field("p99"), nullptr);
}

TEST(RegistryTest, ResetValuesKeepsRegistrations) {
  Registry reg;
  Counter* c = reg.counter("r.items");
  c->add(5);
  reg.reset_values();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(reg.counter("r.items"), c);
}

// ---- enable gate -----------------------------------------------------------

TEST(EnableGateTest, DefaultInstrumentationFollowsTheGate) {
  ASSERT_FALSE(enabled()) << "telemetry must default off";
  EXPECT_FALSE(default_instrumentation().active());
  EXPECT_EQ(tracer(), nullptr);

  set_enabled(true);
  StreamInstrumentation instr = default_instrumentation("test");
  EXPECT_TRUE(instr.active());
  EXPECT_EQ(instr.registry, &Registry::Default());
  EXPECT_EQ(instr.prefix, "test");
  // Spans only flow when the recorder is also recording.
  EXPECT_EQ(instr.spans, nullptr);
  EXPECT_EQ(tracer(), nullptr);
  SpanRecorder::Default().set_recording(true);
  EXPECT_EQ(default_instrumentation().spans, &SpanRecorder::Default());
  EXPECT_EQ(tracer(), &SpanRecorder::Default());
  SpanRecorder::Default().set_recording(false);
  set_enabled(false);
  EXPECT_FALSE(default_instrumentation().active());
}

// ---- span recorder ---------------------------------------------------------

TEST(SpanRecorderTest, RequiresRecordedSpans) {
  SpanRecorder rec;
  EXPECT_EQ(rec.chrome_trace_json().status().code(),
            ErrorCode::kFailedPrecondition);
  rec.record("ignored", 0, 10);  // recording off: dropped silently
  EXPECT_EQ(rec.span_count(), 0u);
}

TEST(SpanRecorderTest, ChromeTraceParsesBackWithSchema) {
  SpanRecorder rec;
  rec.set_recording(true);
  rec.set_thread_name("main");
  const char* h2d = rec.intern("gpu.h2d");
  rec.record(h2d, 1000, 2500);
  rec.record("stage \"x\"", 3000, 4000);  // quote must be escaped
  std::thread worker([&rec] {
    rec.set_thread_name("w0");
    rec.record("gpu.kernel", 5000, 9000);
  });
  worker.join();

  auto json = rec.chrome_trace_json();
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  auto doc = JsonReader(json.value()).parse();
  ASSERT_TRUE(doc.has_value()) << "trace JSON does not parse";

  const JsonValue* events = doc->field("traceEvents");
  ASSERT_NE(events, nullptr);
  const JsonArray* arr = events->array();
  ASSERT_NE(arr, nullptr);

  int meta = 0;
  int complete = 0;
  bool saw_kernel = false;
  for (const JsonValue& e : *arr) {
    const JsonValue* ph = e.field("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(ph->str(), nullptr);
    ASSERT_NE(e.field("pid"), nullptr);
    ASSERT_NE(e.field("tid"), nullptr);
    if (*ph->str() == "M") {
      ++meta;
      ASSERT_NE(e.field("name")->str(), nullptr);
      EXPECT_EQ(*e.field("name")->str(), "thread_name");
      ASSERT_NE(e.field("args"), nullptr);
      ASSERT_NE(e.field("args")->field("name"), nullptr);
    } else {
      EXPECT_EQ(*ph->str(), "X");
      ++complete;
      ASSERT_NE(e.field("ts"), nullptr);
      ASSERT_NE(e.field("dur"), nullptr);
      ASSERT_NE(e.field("ts")->number(), nullptr);
      ASSERT_NE(e.field("dur")->number(), nullptr);
      const std::string& name = *e.field("name")->str();
      if (name == "gpu.kernel") {
        saw_kernel = true;
        EXPECT_EQ(*e.field("ts")->number(), 5.0);   // 5000 ns -> 5 us
        EXPECT_EQ(*e.field("dur")->number(), 4.0);  // 4000 ns -> 4 us
      }
    }
  }
  EXPECT_EQ(meta, 2);      // one track per thread
  EXPECT_EQ(complete, 3);  // all recorded spans exported
  EXPECT_TRUE(saw_kernel);
  EXPECT_NE(json.value().find("stage \\\"x\\\""), std::string::npos);
}

TEST(SpanRecorderTest, RingWrapCountsDropped) {
  SpanRecorder rec(/*ring_capacity=*/8);
  rec.set_recording(true);
  for (std::uint64_t i = 0; i < 20; ++i) {
    rec.record("s", i * 10000, i * 10000 + 5000);  // span i starts at i*10 us
  }
  EXPECT_EQ(rec.span_count(), 8u);
  EXPECT_EQ(rec.dropped(), 12u);
  auto json = rec.chrome_trace_json();
  ASSERT_TRUE(json.ok());
  // Only the newest 8 spans survive; the oldest surviving starts at 120 us.
  EXPECT_EQ(json.value().find("\"ts\":110,"), std::string::npos);
  EXPECT_NE(json.value().find("\"ts\":120,"), std::string::npos);
}

TEST(SpanRecorderTest, ResetDropsSpansAndReEpochs) {
  SpanRecorder rec;
  rec.set_recording(true);
  rec.record("s", 0, 10);
  EXPECT_EQ(rec.span_count(), 1u);
  rec.reset();
  EXPECT_EQ(rec.span_count(), 0u);
  EXPECT_EQ(rec.chrome_trace_json().status().code(),
            ErrorCode::kFailedPrecondition);
}

// ---- queue depth sampler ---------------------------------------------------

TEST(QueueDepthSamplerTest, StartStopLifecycle) {
  Registry reg;
  QueueDepthSampler sampler(&reg);
  std::atomic<std::size_t> depth{3};
  const std::uint64_t id = sampler.add_queue(
      "q0", [&depth] { return depth.load(); }, /*capacity=*/12);
  EXPECT_EQ(sampler.queue_count(), 1u);

  ASSERT_TRUE(sampler.start(std::chrono::microseconds(100)).ok());
  EXPECT_TRUE(sampler.running());
  EXPECT_EQ(sampler.start().code(), ErrorCode::kFailedPrecondition)
      << "double start must be rejected";
  const std::uint64_t before = sampler.sweeps();
  while (sampler.sweeps() < before + 3) std::this_thread::yield();
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  sampler.stop();  // idempotent

  MetricsSnapshot snap = reg.snapshot();
  ASSERT_NE(snap.find_histogram("q0.depth"), nullptr);
  EXPECT_GE(snap.find_histogram("q0.depth")->hist.count, 3u);
  ASSERT_NE(snap.find_gauge("q0.depth_now"), nullptr);
  EXPECT_EQ(snap.find_gauge("q0.depth_now")->value, 3.0);
  ASSERT_NE(snap.find_gauge("q0.utilization"), nullptr);
  EXPECT_NEAR(snap.find_gauge("q0.utilization")->value, 0.25, 1e-9);

  // Restart after stop, then unregister while constructed samplers and
  // registries stay alive — no thread leaks (the fixture would hang).
  ASSERT_TRUE(sampler.start(std::chrono::microseconds(100)).ok());
  sampler.remove_queue(id);
  EXPECT_EQ(sampler.queue_count(), 0u);
  sampler.stop();
}

TEST(QueueDepthSamplerTest, NeverSampledQueueEmitsNoSeries) {
  Registry reg;
  QueueDepthSampler sampler(&reg);
  // Registered but never swept: a sampler started before any pipeline
  // registers stages (or never started at all) must not pollute the
  // registry with empty-series gauges/histograms.
  const std::uint64_t id =
      sampler.add_queue("ghost", [] { return std::size_t{0}; },
                        /*capacity=*/8);
  sampler.remove_queue(id);

  MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find_histogram("ghost.depth"), nullptr);
  EXPECT_EQ(snap.find_gauge("ghost.depth_now"), nullptr);
  EXPECT_EQ(snap.find_gauge("ghost.utilization"), nullptr);

  // A queue that IS swept still materializes its series lazily.
  sampler.add_queue("live", [] { return std::size_t{2}; }, /*capacity=*/8);
  ASSERT_TRUE(sampler.start(std::chrono::microseconds(100)).ok());
  const std::uint64_t before = sampler.sweeps();
  while (sampler.sweeps() < before + 2) std::this_thread::yield();
  sampler.stop();
  snap = reg.snapshot();
  ASSERT_NE(snap.find_histogram("live.depth"), nullptr);
  ASSERT_NE(snap.find_gauge("live.depth_now"), nullptr);
  EXPECT_EQ(snap.find_gauge("live.depth_now")->value, 2.0);
  EXPECT_EQ(snap.find_histogram("ghost.depth"), nullptr)
      << "removing before any sweep must leave no trace";
}

TEST(QueueDepthSamplerTest, DestructorStopsRunningThread) {
  Registry reg;
  {
    QueueDepthSampler sampler(&reg);
    sampler.add_queue("q", [] { return std::size_t{1}; });
    ASSERT_TRUE(sampler.start(std::chrono::microseconds(100)).ok());
  }  // destructor must join without deadlock
  SUCCEED();
}

// ---- zero-allocation hot path ---------------------------------------------

TEST(HotPathTest, NoHeapAllocationsAfterWarmup) {
  if (HS_TEST_SANITIZED) {
    GTEST_SKIP() << "allocator interposed by sanitizer";
  }
  Registry reg;
  Counter* c = reg.counter("hot.items");
  Histogram* h = reg.histogram("hot.lat");
  Gauge* g = reg.gauge("hot.level");
  // Warmup: claim this thread's shard slot.
  c->add();
  h->record(1);
  g->set(0);

  const std::uint64_t before = heap_alloc_count();
  for (std::uint64_t i = 0; i < 10000; ++i) {
    c->add();
    h->record(i);
    g->set(static_cast<double>(i));
  }
  EXPECT_EQ(heap_alloc_count() - before, 0u)
      << "metric hot path must not allocate";
}

TEST(HotPathTest, SpanRecordDoesNotAllocateAfterRingRegistration) {
  if (HS_TEST_SANITIZED) {
    GTEST_SKIP() << "allocator interposed by sanitizer";
  }
  SpanRecorder rec;
  rec.set_recording(true);
  rec.record("warm", 0, 1);  // registers this thread's ring
  const std::uint64_t before = heap_alloc_count();
  for (std::uint64_t i = 0; i < 10000; ++i) {
    rec.record("warm", i, i + 1);
  }
  EXPECT_EQ(heap_alloc_count() - before, 0u)
      << "span hot path must not allocate";
}

// ---- end-to-end: a real flow pipeline reports into explicit sinks ----------

TEST(PipelineIntegrationTest, FlowPipelineReportsMetricsAndSpans) {
  Registry reg;
  SpanRecorder rec;
  rec.set_recording(true);
  QueueDepthSampler sampler(&reg);
  ASSERT_TRUE(sampler.start(std::chrono::microseconds(100)).ok());

  constexpr int kItems = 200;
  flow::PipelineOptions opts;
  opts.telemetry = {&reg, &rec, &sampler, "it"};
  flow::Pipeline pipe(opts);
  pipe.add_stage(flow::make_source<int>(
                     [i = 0]() mutable -> std::optional<int> {
                       return i < kItems ? std::optional<int>(i++)
                                         : std::nullopt;
                     }),
                 "src");
  pipe.add_farm(flow::stage_factory<int, int>([](int v) { return v * 2; }),
                flow::FarmOptions{.replicas = 2, .ordered = true}, "work");
  long long sum = 0;
  pipe.add_stage(flow::make_sink<int>([&sum](int v) { sum += v; }), "sink");
  ASSERT_TRUE(pipe.run_and_wait().ok());
  sampler.stop();

  EXPECT_EQ(sum, static_cast<long long>(kItems) * (kItems - 1));

  MetricsSnapshot snap = reg.snapshot();
  ASSERT_NE(snap.find_counter("it.src.items"), nullptr);
  EXPECT_EQ(snap.find_counter("it.src.items")->value,
            static_cast<std::uint64_t>(kItems));
  const auto* w0 = snap.find_counter("it.work.w0.items");
  const auto* w1 = snap.find_counter("it.work.w1.items");
  ASSERT_NE(w0, nullptr);
  ASSERT_NE(w1, nullptr);
  EXPECT_EQ(w0->value + w1->value, static_cast<std::uint64_t>(kItems));
  ASSERT_NE(snap.find_histogram("it.src.svc_ns"), nullptr);
  // Every svc() call is timed, including the final one returning EOS.
  EXPECT_GE(snap.find_histogram("it.src.svc_ns")->hist.count,
            static_cast<std::uint64_t>(kItems));
  // The pipeline registered its channels with the sampler and removed them
  // on teardown.
  EXPECT_EQ(sampler.queue_count(), 0u);
  ASSERT_NE(snap.find_histogram("it.work.in.depth"), nullptr);

  auto json = rec.chrome_trace_json();
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  // Span names are the (prefix-free) unit names; worker threads also name
  // their tracks after the stage.
  EXPECT_NE(json.value().find("\"name\":\"src\""), std::string::npos);
  EXPECT_NE(json.value().find("\"name\":\"sink\""), std::string::npos);
  EXPECT_NE(json.value().find("work.w0"), std::string::npos);
}

}  // namespace
}  // namespace hs::telemetry
