// Tests for the SPar-equivalent DSL: well-formed regions run on the flow
// runtime; malformed regions produce SPar-compiler-style diagnostics;
// lowering produces the expected FastFlow-equivalent structure.
#include <gtest/gtest.h>

#include <numeric>
#include <optional>
#include <set>
#include <vector>

#include "spar/spar.hpp"

namespace hs::spar {
namespace {

TEST(SparTest, ListingOneShapeRuns) {
  // The Mandelbrot Listing 1 shape: source loop -> replicated compute
  // stage -> collecting stage.
  ToStream region("mandel");
  region.source<int>([i = 0]() mutable -> std::optional<int> {
    return i < 500 ? std::optional<int>(i++) : std::nullopt;
  });
  region.stage<int, int>(Replicate(4), [](int line) { return line * 10; });
  std::vector<int> shown;
  region.last_stage<int>([&](int line) { shown.push_back(line); });

  ASSERT_TRUE(region.run().ok());
  ASSERT_EQ(shown.size(), 500u);
  // ordered=true by default (-spar_ordered): results arrive in order.
  for (int i = 0; i < 500; ++i) EXPECT_EQ(shown[static_cast<std::size_t>(i)], i * 10);
}

TEST(SparTest, UnorderedOptionAllowsReordering) {
  ToStream region("unordered");
  region.source<int>([i = 0]() mutable -> std::optional<int> {
    return i < 1000 ? std::optional<int>(i++) : std::nullopt;
  });
  region.stage<int, int>(Replicate(4), [](int v) { return v; });
  long long sum = 0;
  std::size_t count = 0;
  region.last_stage<int>([&](int v) {
    sum += v;
    ++count;
  });
  Options opts;
  opts.ordered = false;
  ASSERT_TRUE(region.run(opts).ok());
  EXPECT_EQ(count, 1000u);
  EXPECT_EQ(sum, 999LL * 1000 / 2);
}

TEST(SparTest, MultiStagePipeline) {
  ToStream region("multi");
  region.source<int>([i = 0]() mutable -> std::optional<int> {
    return i < 300 ? std::optional<int>(i++) : std::nullopt;
  });
  region.stage<int, double>(Replicate(3), [](int v) { return v * 0.5; });
  region.stage<double, double>([](double v) { return v + 1.0; });  // serial
  double sum = 0;
  region.last_stage<double>([&](double v) { sum += v; });
  ASSERT_TRUE(region.run().ok());
  EXPECT_DOUBLE_EQ(sum, 299.0 * 300 / 2 * 0.5 + 300.0);
}

TEST(SparTest, GraphDescriptionShowsLowering) {
  ToStream region("g");
  region.source<int>([]() -> std::optional<int> { return std::nullopt; });
  region.stage<int, int>(Replicate(8), [](int v) { return v; });
  region.stage<int, int>([](int v) { return v; });
  region.last_stage<int>([](int) {});
  EXPECT_EQ(region.graph_description(),
            "pipeline(source, farm(stage x 8), stage, sink)");
  // source + sink + (8 workers + emitter + collector) + serial stage
  EXPECT_EQ(region.thread_count(), 13);
}

TEST(SparTest, StageOptionsForceFarmLowersSingleReplicaToFarm) {
  ToStream region("ff");
  region.source<int>([]() -> std::optional<int> { return std::nullopt; });
  StageOptions opts;
  opts.force_farm = true;
  region.stage<int, int>(Replicate(1), opts, [](int v) { return v; });
  region.last_stage<int>([](int) {});
  EXPECT_EQ(region.graph_description(),
            "pipeline(source, farm(stage x 1), sink)");
  // source + sink + (1 worker + emitter + collector)
  EXPECT_EQ(region.thread_count(), 5);
}

TEST(SparTest, PerStagePolicyAndOrderingOverridesRun) {
  // An unordered least-loaded farm inside an ordered region: all items
  // arrive, order not required.
  ToStream region("override");
  region.source<int>([i = 0]() mutable -> std::optional<int> {
    return i < 500 ? std::optional<int>(i++) : std::nullopt;
  });
  StageOptions opts;
  opts.force_farm = true;
  opts.ordered = false;
  opts.policy = flow::SchedPolicy::kLeastLoaded;
  region.stage<int, int>(Replicate(3), opts, [](int v) { return v; });
  std::multiset<int> got;
  region.last_stage<int>([&](int v) { got.insert(v); });
  ASSERT_TRUE(region.run().ok());
  ASSERT_EQ(got.size(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(got.count(i), 1u);
}

TEST(SparTest, StageNodesFactoryForStatefulWorkers) {
  // Per-replica state: each worker counts its own items (the pattern used
  // for per-worker GPU streams in the combined versions).
  class Counter final : public flow::Node {
   public:
    explicit Counter(std::atomic<int>* total) : total_(total) {}
    flow::SvcResult svc(flow::Item in) override {
      ++mine_;
      return flow::SvcResult::Out(std::move(in));
    }
    void on_end() override { *total_ += mine_; }
   private:
    std::atomic<int>* total_;
    int mine_ = 0;
  };
  std::atomic<int> total{0};
  ToStream region("stateful");
  region.source<int>([i = 0]() mutable -> std::optional<int> {
    return i < 200 ? std::optional<int>(i++) : std::nullopt;
  });
  region.stage_nodes(Replicate(4),
                     [&] { return std::make_unique<Counter>(&total); });
  int sunk = 0;
  region.last_stage<int>([&](int) { ++sunk; });
  ASSERT_TRUE(region.run().ok());
  EXPECT_EQ(total.load(), 200);
  EXPECT_EQ(sunk, 200);
}

TEST(SparTest, AnnotationStyleInputOutputTags) {
  // The Listing 1 look: explicit Input/Output attributes on each stage.
  ToStream region("annotated");
  region.source<int>([i = 0]() mutable -> std::optional<int> {
    return i < 100 ? std::optional<int>(i++) : std::nullopt;
  });
  region.stage(Input<int>{}, Output<double>{}, Replicate(3),
               [](int v) { return v * 1.5; });
  region.stage(Input<double>{}, Output<double>{},
               [](double v) { return v + 1.0; });
  double sum = 0;
  region.last_stage(Input<double>{}, [&](double v) { sum += v; });
  ASSERT_TRUE(region.run().ok());
  EXPECT_DOUBLE_EQ(sum, 99.0 * 100 / 2 * 1.5 + 100.0);
}

// ---- diagnostics ---------------------------------------------------------------

TEST(SparTest, FailureReportEmptyOnCleanRunRecordedOnStageThrow) {
  ToStream clean("clean");
  clean.source<int>([i = 0]() mutable -> std::optional<int> {
    return i < 10 ? std::optional<int>(i++) : std::nullopt;
  });
  clean.stage<int, int>(Replicate(2), [](int v) { return v; });
  clean.last_stage<int>([](int) {});
  ASSERT_TRUE(clean.run().ok());
  EXPECT_TRUE(clean.failure_report().ok());
  EXPECT_TRUE(clean.failure_report().failures.empty());

  ToStream faulty("faulty");
  faulty.source<int>([i = 0]() mutable -> std::optional<int> {
    return i < 100 ? std::optional<int>(i++) : std::nullopt;
  });
  faulty.stage<int, int>(Replicate(2), [](int v) -> int {
    if (v == 7) throw std::runtime_error("unrecovered");
    return v;
  });
  faulty.last_stage<int>([](int) {});
  Status s = faulty.run();
  ASSERT_FALSE(s.ok());
  const flow::FailureReport& report = faulty.failure_report();
  ASSERT_FALSE(report.ok());
  // run() returns exactly the first recorded failure, and the report names
  // the lowered stage ("faulty.stage0").
  EXPECT_EQ(s.message(), report.first().message());
  EXPECT_NE(report.ToString().find("faulty.stage0"), std::string::npos);
}

TEST(SparDiagnosticsTest, MissingSource) {
  ToStream region("bad");
  region.stage<int, int>([](int v) { return v; });
  region.last_stage<int>([](int) {});
  Status s = region.check();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("no stream source"), std::string::npos);
}

TEST(SparDiagnosticsTest, MissingStages) {
  ToStream region("bad");
  region.source<int>([]() -> std::optional<int> { return std::nullopt; });
  Status s = region.check();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("at least one 'Stage'"), std::string::npos);
}

TEST(SparDiagnosticsTest, MissingCollectingStage) {
  ToStream region("bad");
  region.source<int>([]() -> std::optional<int> { return std::nullopt; });
  region.stage<int, int>([](int v) { return v; });
  Status s = region.check();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("no final collecting 'Stage'"),
            std::string::npos);
}

TEST(SparDiagnosticsTest, DuplicateSource) {
  ToStream region("bad");
  region.source<int>([]() -> std::optional<int> { return std::nullopt; });
  region.source<int>([]() -> std::optional<int> { return std::nullopt; });
  region.stage<int, int>([](int v) { return v; });
  region.last_stage<int>([](int) {});
  Status s = region.check();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("more than one stream source"),
            std::string::npos);
}

TEST(SparDiagnosticsTest, StageAfterFinalStage) {
  ToStream region("bad");
  region.source<int>([]() -> std::optional<int> { return std::nullopt; });
  region.last_stage<int>([](int) {});
  region.stage<int, int>([](int v) { return v; });
  Status s = region.check();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("after the final"), std::string::npos);
}

TEST(SparDiagnosticsTest, NonPositiveReplicate) {
  ToStream region("bad");
  region.source<int>([]() -> std::optional<int> { return std::nullopt; });
  region.stage<int, int>(Replicate(0), [](int v) { return v; });
  region.last_stage<int>([](int) {});
  Status s = region.check();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("Replicate"), std::string::npos);
}

TEST(SparDiagnosticsTest, RunRejectsMalformedRegion) {
  ToStream region("bad");
  region.source<int>([]() -> std::optional<int> { return std::nullopt; });
  EXPECT_FALSE(region.run().ok());
}

TEST(SparDiagnosticsTest, SecondRunRejected) {
  ToStream region("twice");
  region.source<int>([i = 0]() mutable -> std::optional<int> {
    return i < 5 ? std::optional<int>(i++) : std::nullopt;
  });
  region.stage<int, int>([](int v) { return v; });
  region.last_stage<int>([](int) {});
  ASSERT_TRUE(region.run().ok());
  EXPECT_EQ(region.run().code(), ErrorCode::kFailedPrecondition);
}

// Replicate sweep: ordered output for all worker counts.
class ReplicateSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReplicateSweep, OrderedOutput) {
  ToStream region("sweep");
  region.source<int>([i = 0]() mutable -> std::optional<int> {
    return i < 800 ? std::optional<int>(i++) : std::nullopt;
  });
  region.stage<int, int>(Replicate(GetParam()), [](int v) { return v + 7; });
  std::vector<int> got;
  region.last_stage<int>([&](int v) { got.push_back(v); });
  ASSERT_TRUE(region.run().ok());
  ASSERT_EQ(got.size(), 800u);
  for (int i = 0; i < 800; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i + 7);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReplicateSweep,
                         ::testing::Values(1, 2, 5, 10, 19));

}  // namespace
}  // namespace hs::spar
