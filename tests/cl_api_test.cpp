// Tests for the raw OpenCL-C-style API veneer: the full discovery ->
// context -> queue -> buffer -> kernel -> events workflow of §III-E,
// reference counting, and error codes.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "oclx/cl_api.hpp"

namespace hs::oclx::capi {
namespace {

class ClApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
    clSimBindMachine(machine_.get());
    before_ = clSimLiveHandles();
  }
  void TearDown() override {
    EXPECT_EQ(clSimLiveHandles(), before_) << "handle leak";
    clSimBindMachine(nullptr);
  }
  std::unique_ptr<gpusim::Machine> machine_;
  std::size_t before_ = 0;
};

TEST_F(ClApiTest, FullWorkflow) {
  // 1) discovery
  cl_uint nplat = 0;
  ASSERT_EQ(clGetPlatformIDs(0, nullptr, &nplat), CL_SUCCESS);
  ASSERT_EQ(nplat, 1u);
  cl_platform_id platform = nullptr;
  ASSERT_EQ(clGetPlatformIDs(1, &platform, nullptr), CL_SUCCESS);

  cl_uint ndev = 0;
  ASSERT_EQ(clGetDeviceIDs(platform, 0, nullptr, &ndev), CL_SUCCESS);
  ASSERT_EQ(ndev, 2u);
  std::vector<cl_device_id> devices(ndev);
  ASSERT_EQ(clGetDeviceIDs(platform, ndev, devices.data(), nullptr),
            CL_SUCCESS);

  cl_uint cus = 0;
  ASSERT_EQ(clGetDeviceInfo(devices[0], CL_DEVICE_MAX_COMPUTE_UNITS,
                            sizeof(cus), &cus, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(cus, 30u);
  char name[64] = {};
  ASSERT_EQ(clGetDeviceInfo(devices[0], CL_DEVICE_NAME, sizeof(name), name,
                            nullptr),
            CL_SUCCESS);
  EXPECT_STREQ(name, "SimTitanXP");

  // 2-3) context, queue, buffer
  cl_int err = CL_SUCCESS;
  cl_context ctx = clCreateContext(devices.data(), 1, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_command_queue queue = clCreateCommandQueue(ctx, devices[0], &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_mem buf = clCreateBuffer(ctx, 1024 * sizeof(int), &err);
  ASSERT_EQ(err, CL_SUCCESS);

  std::vector<int> host(1024);
  std::iota(host.begin(), host.end(), 0);
  ASSERT_EQ(clEnqueueWriteBuffer(queue, buf, CL_FALSE, 0,
                                 host.size() * sizeof(int), host.data(),
                                 nullptr),
            CL_SUCCESS);

  // 4) kernel + events
  // Fish the device pointer out through a read-back kernel: the callback
  // kernel doubles every element in place via the queue's device memory.
  cl_kernel kernel = clCreateKernelFromCallback(
      ctx, "double_elems",
      [this, &host](const gpusim::ThreadCtx& tc) -> std::uint64_t {
        // Operate on the simulated device allocation directly.
        (void)host;
        (void)this;
        return tc.global_x() < 1024 ? 2 : 1;
      },
      &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_event kdone = nullptr;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue, kernel, 1024, 256, &kdone),
            CL_SUCCESS);
  std::vector<int> back(1024, -1);
  cl_event rdone = nullptr;
  ASSERT_EQ(clEnqueueReadBuffer(queue, buf, CL_FALSE, 0,
                                back.size() * sizeof(int), back.data(),
                                &rdone),
            CL_SUCCESS);
  cl_event events[2] = {kdone, rdone};
  ASSERT_EQ(clWaitForEvents(2, events), CL_SUCCESS);
  EXPECT_EQ(back, host);  // write->read roundtrip through device memory
  ASSERT_EQ(clFinish(queue), CL_SUCCESS);

  // teardown
  EXPECT_EQ(clReleaseEvent(kdone), CL_SUCCESS);
  EXPECT_EQ(clReleaseEvent(rdone), CL_SUCCESS);
  EXPECT_EQ(clReleaseKernel(kernel), CL_SUCCESS);
  EXPECT_EQ(clReleaseMemObject(buf), CL_SUCCESS);
  EXPECT_EQ(clReleaseCommandQueue(queue), CL_SUCCESS);
  EXPECT_EQ(clReleaseContext(ctx), CL_SUCCESS);
}

TEST_F(ClApiTest, RetainReleaseCounts) {
  cl_uint ndev = 0;
  cl_platform_id platform = nullptr;
  ASSERT_EQ(clGetPlatformIDs(1, &platform, &ndev), CL_SUCCESS);
  cl_device_id dev = nullptr;
  ASSERT_EQ(clGetDeviceIDs(platform, 1, &dev, &ndev), CL_SUCCESS);
  cl_int err = CL_SUCCESS;
  cl_context ctx = clCreateContext(&dev, 1, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_mem buf = clCreateBuffer(ctx, 64, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  EXPECT_EQ(clRetainMemObject(buf), CL_SUCCESS);
  EXPECT_EQ(clReleaseMemObject(buf), CL_SUCCESS);  // refcount 2 -> 1
  EXPECT_EQ(machine_->device(0).memory_used(), 64u);  // still alive
  EXPECT_EQ(clReleaseMemObject(buf), CL_SUCCESS);  // now freed
  EXPECT_EQ(machine_->device(0).memory_used(), 0u);
  EXPECT_EQ(clReleaseContext(ctx), CL_SUCCESS);
}

TEST_F(ClApiTest, ErrorPaths) {
  EXPECT_EQ(clGetDeviceIDs(nullptr, 0, nullptr, nullptr),
            CL_INVALID_PLATFORM);
  cl_int err = CL_SUCCESS;
  EXPECT_EQ(clCreateContext(nullptr, 0, &err), nullptr);
  EXPECT_EQ(err, CL_INVALID_VALUE);
  EXPECT_EQ(clCreateBuffer(nullptr, 64, &err), nullptr);
  EXPECT_EQ(err, CL_INVALID_CONTEXT);
  EXPECT_EQ(clWaitForEvents(0, nullptr), CL_INVALID_EVENT_WAIT_LIST);
  EXPECT_EQ(clFinish(nullptr), CL_INVALID_COMMAND_QUEUE);
  EXPECT_EQ(clReleaseMemObject(nullptr), CL_INVALID_VALUE);

  // Oversized buffer -> CL_OUT_OF_RESOURCES (the paper's 10 MB failure).
  cl_platform_id platform = nullptr;
  ASSERT_EQ(clGetPlatformIDs(1, &platform, nullptr), CL_SUCCESS);
  cl_device_id dev = nullptr;
  cl_uint ndev = 0;
  ASSERT_EQ(clGetDeviceIDs(platform, 1, &dev, &ndev), CL_SUCCESS);
  cl_context ctx = clCreateContext(&dev, 1, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  EXPECT_EQ(clCreateBuffer(ctx, 100ull << 30, &err), nullptr);
  EXPECT_EQ(err, CL_OUT_OF_RESOURCES);
  EXPECT_EQ(clReleaseContext(ctx), CL_SUCCESS);
}

TEST_F(ClApiTest, QueueAndBufferDeviceMustMatch) {
  cl_platform_id platform = nullptr;
  ASSERT_EQ(clGetPlatformIDs(1, &platform, nullptr), CL_SUCCESS);
  std::vector<cl_device_id> devices(2);
  cl_uint ndev = 0;
  ASSERT_EQ(clGetDeviceIDs(platform, 2, devices.data(), &ndev), CL_SUCCESS);
  cl_int err = CL_SUCCESS;
  cl_context ctx = clCreateContext(devices.data(), 2, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  // Buffer lands on device 0 (documented deviation); a queue on device 1
  // must reject it rather than silently corrupt.
  cl_mem buf = clCreateBuffer(ctx, 256, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_command_queue q1 = clCreateCommandQueue(ctx, devices[1], &err);
  ASSERT_EQ(err, CL_SUCCESS);
  char tmp[256] = {};
  EXPECT_EQ(clEnqueueWriteBuffer(q1, buf, CL_TRUE, 0, 256, tmp, nullptr),
            CL_INVALID_MEM_OBJECT);
  EXPECT_EQ(clReleaseMemObject(buf), CL_SUCCESS);
  EXPECT_EQ(clReleaseCommandQueue(q1), CL_SUCCESS);
  EXPECT_EQ(clReleaseContext(ctx), CL_SUCCESS);
}

}  // namespace
}  // namespace hs::oclx::capi
