// Differential suite for the hash-chain LZSS match finder (DESIGN.md §4j):
// chain-mode streams must round-trip exactly, be bit-identical across SIMD
// levels and across pipeline variants (inline encode vs batched
// find_matches_batch), and legacy mode must be untouched by the new
// machinery. Inputs sweep the shapes that stress a chain matcher: pure
// random (hash collisions only), highly repetitive (deep chains, max-length
// matches), corpus-shaped text, and every length 0..300 to hit the
// block-tail guards.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "datagen/corpus.hpp"
#include "kernels/lzss.hpp"
#include "kernels/simd/dispatch.hpp"

namespace hs::kernels {
namespace {

namespace simd = hs::kernels::simd;

std::vector<simd::Level> supported_levels() {
  std::vector<simd::Level> levels{simd::Level::kScalar};
  for (simd::Level l : {simd::Level::kSse42, simd::Level::kAvx2}) {
    if (simd::supports(l)) levels.push_back(l);
  }
  return levels;
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

/// Mix of literal runs and copied back-references — compressible with
/// varied offsets/lengths, the adversarial middle ground between random
/// and constant.
std::vector<std::uint8_t> structured_bytes(std::size_t n,
                                           std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out;
  out.reserve(n);
  while (out.size() < n) {
    if (out.size() > 8 && rng() % 3 != 0) {
      const std::size_t off = 1 + rng() % std::min<std::size_t>(
                                              out.size() - 1, 5000);
      std::size_t len = 3 + rng() % 40;
      for (std::size_t i = 0; i < len && out.size() < n; ++i) {
        out.push_back(out[out.size() - off]);
      }
    } else {
      std::size_t len = 1 + rng() % 12;
      for (std::size_t i = 0; i < len && out.size() < n; ++i) {
        out.push_back(static_cast<std::uint8_t>(rng()));
      }
    }
  }
  return out;
}

LzssParams chain_params(std::uint32_t window = 4096,
                        std::uint32_t depth = 8) {
  LzssParams p;
  p.mode = LzssMode::kChain;
  p.window_size = window;
  p.chain_depth = depth;
  return p;
}

void expect_round_trip(std::span<const std::uint8_t> input,
                       const LzssParams& params, const std::string& label) {
  const std::vector<std::uint8_t> encoded = lzss_encode(input, params);
  auto decoded = lzss_decode(encoded, input.size(), params);
  ASSERT_TRUE(decoded.ok()) << label << ": " << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), input.size()) << label;
  EXPECT_TRUE(std::equal(input.begin(), input.end(),
                         decoded.value().begin()))
      << label;
}

TEST(LzssChainTest, ModeNames) {
  EXPECT_EQ(lzss_mode_name(LzssMode::kLegacy), "legacy");
  EXPECT_EQ(lzss_mode_name(LzssMode::kChain), "chain");
  LzssMode m = LzssMode::kLegacy;
  EXPECT_TRUE(parse_lzss_mode("chain", m));
  EXPECT_EQ(m, LzssMode::kChain);
  EXPECT_TRUE(parse_lzss_mode("legacy", m));
  EXPECT_EQ(m, LzssMode::kLegacy);
  m = LzssMode::kChain;
  EXPECT_FALSE(parse_lzss_mode("brute", m));
  EXPECT_EQ(m, LzssMode::kChain);  // untouched on failure
  EXPECT_FALSE(parse_lzss_mode("", m));
}

TEST(LzssChainTest, ParamsValidation) {
  LzssParams p = chain_params();
  EXPECT_TRUE(p.valid());
  p.chain_depth = 0;
  EXPECT_FALSE(p.valid());
  p = chain_params(8192);  // exceeds the 12 offset bits
  EXPECT_FALSE(p.valid());
}

TEST(LzssChainTest, RoundTripAllLengths) {
  const simd::Level saved = simd::active_level();
  for (std::size_t n = 0; n <= 300; ++n) {
    const auto rnd = random_bytes(n, 0x1000 + n);
    const auto rep = std::vector<std::uint8_t>(n, 0x41);
    expect_round_trip(rnd, chain_params(), "random n=" + std::to_string(n));
    expect_round_trip(rep, chain_params(), "const n=" + std::to_string(n));
  }
  simd::set_active_level(saved);
}

TEST(LzssChainTest, RoundTripFuzzAllLevelsBothModes) {
  const simd::Level saved = simd::active_level();
  for (simd::Level level : supported_levels()) {
    simd::set_active_level(level);
    const std::string lv(simd::level_name(level));
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      const auto input = structured_bytes(40000 + 977 * seed, seed);
      for (LzssMode mode : {LzssMode::kLegacy, LzssMode::kChain}) {
        for (std::uint32_t window : {256u, 4096u}) {
          LzssParams p = chain_params(window);
          p.mode = mode;
          expect_round_trip(input, p,
                            lv + " seed=" + std::to_string(seed) + " mode=" +
                                std::string(lzss_mode_name(mode)) +
                                " w=" + std::to_string(window));
        }
      }
    }
  }
  simd::set_active_level(saved);
}

TEST(LzssChainTest, ChainStreamBitIdenticalAcrossLevels) {
  const simd::Level saved = simd::active_level();
  const auto levels = supported_levels();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto input = structured_bytes(120000, 0xC0FFEE + seed);
    simd::set_active_level(simd::Level::kScalar);
    const auto reference = lzss_encode(input, chain_params());
    for (simd::Level level : levels) {
      simd::set_active_level(level);
      const auto encoded = lzss_encode(input, chain_params());
      EXPECT_EQ(encoded, reference)
          << "level " << simd::level_name(level) << " seed " << seed;
    }
  }
  simd::set_active_level(saved);
}

// The purity contract: per-block inline encode and the whole-batch
// find_matches_batch + encode walk must produce the same bytes, in both
// modes — this is what makes every pipeline variant (CPU inline, simulated
// GPU FindMatch kernel) emit identical archives.
TEST(LzssChainTest, InlineMatchesBatchedFindMatches) {
  for (LzssMode mode : {LzssMode::kLegacy, LzssMode::kChain}) {
    LzssParams p = chain_params();
    p.mode = mode;
    const auto input = structured_bytes(90000, 0xBA7C4);
    // Uneven block bounds, including a tiny tail block.
    std::vector<std::uint32_t> starts{0, 1777, 1800, 30000, 89997};
    std::vector<LzssMatch> matches;
    find_matches_batch(input, starts, p, matches);
    ASSERT_EQ(matches.size(), input.size());
    for (std::size_t k = 0; k < starts.size(); ++k) {
      const std::size_t b = starts[k];
      const std::size_t e =
          k + 1 < starts.size() ? starts[k + 1] : input.size();
      const auto inline_bytes =
          lzss_encode(input, b, e, p);
      const auto walked =
          lzss_encode_from_matches(input, b, e, matches, p);
      EXPECT_EQ(inline_bytes, walked)
          << "mode " << lzss_mode_name(mode) << " block " << k;
    }
  }
}

// Chain mode with a depth large enough to see every window candidate still
// differs from legacy only in tie order — both must round-trip and both
// must compress repetitive data hard.
TEST(LzssChainTest, CompressionRatioSanity) {
  const auto input = datagen::generate(
      {datagen::CorpusKind::kSourceLike, 200000, 42});
  LzssParams legacy_params;  // the seed dedup config: window 256
  legacy_params.window_size = 256;
  const auto legacy = lzss_encode(input, legacy_params);
  const auto chain = lzss_encode(input, chain_params(4096, 2));
  // The tuned chain config (bigger window) must compress at least as well
  // as legacy's window-256 brute force, with a little slack for its
  // bounded depth.
  EXPECT_LT(static_cast<double>(chain.size()),
            static_cast<double>(legacy.size()) * 1.02)
      << "chain " << chain.size() << " vs legacy " << legacy.size();
  // And both decode.
  expect_round_trip(input, chain_params(4096, 2), "ratio-chain");
}

// PooledBuffer sink must emit the same bytes as the vector overload (the
// chain walk's RawBitWriter arena path is shared by both).
TEST(LzssChainTest, PooledSinkMatchesVector) {
  const auto input = structured_bytes(50000, 0x9);
  for (LzssMode mode : {LzssMode::kLegacy, LzssMode::kChain}) {
    LzssParams p = chain_params();
    p.mode = mode;
    const auto expect = lzss_encode(input, 0, input.size(), p);
    PooledBuffer out;
    lzss_encode(input, 0, input.size(), p, out);
    ASSERT_EQ(out.size(), expect.size());
    EXPECT_EQ(0, std::memcmp(out.data(), expect.data(), out.size()))
        << lzss_mode_name(mode);
  }
}

}  // namespace
}  // namespace hs::kernels
