// Dispatch equivalence suite for the SIMD kernel engine (DESIGN.md §4g):
// every wide body must be bit-identical to the scalar reference — SHA-1
// digests, Rabin cut positions, LZSS matches and encoded streams — across
// all input lengths 0..512 plus large random/corpus-shaped buffers.
// Levels the host cannot execute are skipped (the dispatcher would clamp
// them to an already-covered level).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "datagen/corpus.hpp"
#include "kernels/lzss.hpp"
#include "kernels/rabin.hpp"
#include "kernels/sha1.hpp"
#include "kernels/simd/dispatch.hpp"
#include "kernels/simd/lzss_match.hpp"
#include "kernels/simd/rabin_lanes.hpp"
#include "kernels/simd/sha1_mb.hpp"
#include "kernels/simd/sha1_ni.hpp"

namespace hs::kernels::simd {
namespace {

std::vector<Level> wide_levels() {
  std::vector<Level> levels;
  for (Level l : {Level::kSse42, Level::kAvx2}) {
    if (supports(l)) levels.push_back(l);
  }
  return levels;
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  hs::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

// ---- dispatch plumbing ---------------------------------------------------

TEST(SimdDispatchTest, LevelOrderingAndNames) {
  EXPECT_LT(Level::kScalar, Level::kSse42);
  EXPECT_LT(Level::kSse42, Level::kAvx2);
  EXPECT_EQ(level_name(Level::kScalar), "scalar");
  EXPECT_EQ(level_name(Level::kSse42), "sse42");
  EXPECT_EQ(level_name(Level::kAvx2), "avx2");
  Level l = Level::kScalar;
  EXPECT_TRUE(parse_level("avx2", l));
  EXPECT_EQ(l, Level::kAvx2);
  EXPECT_TRUE(parse_level("sse4.2", l));
  EXPECT_EQ(l, Level::kSse42);
  EXPECT_FALSE(parse_level("neon", l));
  EXPECT_EQ(l, Level::kSse42);  // untouched on failure
}

TEST(SimdDispatchTest, ScalarAlwaysSupportedAndClampWorks) {
  EXPECT_TRUE(supports(Level::kScalar));
  EXPECT_LE(active_level(), best_supported());
  const Level prev = active_level();
  set_active_level(Level::kAvx2);  // clamped if unsupported
  EXPECT_LE(active_level(), best_supported());
  set_active_level(prev);
}

// ---- SHA-1 multi-buffer --------------------------------------------------

TEST(SimdSha1Test, AllLengths0To512MatchScalar) {
  for (Level level : wide_levels()) {
    SCOPED_TRACE(std::string(level_name(level)));
    // One job per length, hashed in a single multi-buffer call so the
    // grouping logic sees heavily mixed block counts.
    std::vector<std::uint8_t> data = random_bytes(513, 0xABCD01);
    std::vector<Sha1Job> jobs;
    std::vector<Sha1Digest> got(513);
    for (std::size_t len = 0; len <= 512; ++len) {
      jobs.push_back({data.data(), len, &got[len]});
    }
    sha1_many_at(level, jobs.data(), jobs.size(), nullptr);
    for (std::size_t len = 0; len <= 512; ++len) {
      EXPECT_EQ(got[len], Sha1::hash(std::span(data.data(), len)))
          << "len=" << len;
    }
  }
}

TEST(SimdSha1Test, RandomizedJobMixesMatchScalar) {
  for (Level level : wide_levels()) {
    SCOPED_TRACE(std::string(level_name(level)));
    hs::Xoshiro256 rng(0x5EED5);
    std::vector<std::uint8_t> data = random_bytes(1 << 20, 0xABCD02);
    Sha1Scratch scratch;
    for (int round = 0; round < 20; ++round) {
      const std::size_t count = 1 + rng() % 40;
      std::vector<Sha1Job> jobs;
      std::vector<Sha1Digest> got(count);
      for (std::size_t j = 0; j < count; ++j) {
        // Dedup-shaped lengths: a few bytes up to 64 KiB.
        const std::size_t len = rng() % (1u << (6 + rng() % 11));
        const std::size_t off = rng() % (data.size() - len);
        jobs.push_back({data.data() + off, len, &got[j]});
      }
      sha1_many_at(level, jobs.data(), count, &scratch);
      for (std::size_t j = 0; j < count; ++j) {
        EXPECT_EQ(got[j], Sha1::hash(std::span(jobs[j].data, jobs[j].len)));
      }
    }
  }
}

TEST(SimdSha1Test, LargeBuffersMatchScalar) {
  for (Level level : wide_levels()) {
    SCOPED_TRACE(std::string(level_name(level)));
    std::vector<std::uint8_t> data = random_bytes(3 << 20, 0xABCD03);
    // 8 jobs spanning the buffer, megabyte-scale each.
    std::vector<Sha1Job> jobs;
    std::vector<Sha1Digest> got(8);
    for (std::size_t j = 0; j < 8; ++j) {
      const std::size_t off = j * (data.size() / 8);
      const std::size_t len = data.size() / 8 + (j % 3) * 1000;
      jobs.push_back(
          {data.data() + off, std::min(len, data.size() - off), &got[j]});
    }
    sha1_many_at(level, jobs.data(), jobs.size(), nullptr);
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_EQ(got[j], Sha1::hash(std::span(jobs[j].data, jobs[j].len)));
    }
  }
}

// ---- SHA-1 single-stream (SHA-NI) ----------------------------------------

// sha1_hash_ni must be bit-identical to the scalar context for every
// length — the sweep covers both padding shapes (one tail block for
// rem < 56, two otherwise) and every block-boundary straddle. When the
// host lacks the SHA extensions the function falls back to Sha1::hash and
// the test degenerates to a self-check, which is still worth running for
// the fallback plumbing.
TEST(SimdSha1Test, NiSingleStreamMatchesScalarAllLengths) {
  const std::vector<std::uint8_t> data = random_bytes(600, 0x5AA1);
  for (std::size_t len = 0; len <= 600; ++len) {
    const std::span<const std::uint8_t> msg(data.data(), len);
    EXPECT_EQ(sha1_hash_ni(msg), Sha1::hash(msg)) << "len " << len;
  }
}

TEST(SimdSha1Test, NiSingleStreamMatchesScalarLargeBuffers) {
  for (std::size_t len : {std::size_t{1} << 16, (std::size_t{1} << 20) + 37,
                          std::size_t{3} << 20}) {
    const auto data = random_bytes(len, 0xA1 + len);
    EXPECT_EQ(sha1_hash_ni(data), Sha1::hash(data)) << "len " << len;
  }
}

TEST(SimdSha1Test, FastPathHonorsForcedScalarLevel) {
  const auto data = random_bytes(100000, 0xFA57);
  const Level saved = active_level();
  const Sha1Digest want = Sha1::hash(data);
  for (Level level : {Level::kScalar, best_supported()}) {
    set_active_level(level);
    EXPECT_EQ(sha1_hash_fast(data), want)
        << "level " << level_name(level);
  }
  set_active_level(saved);
}

// ---- Rabin lanes ---------------------------------------------------------

void expect_same_cuts(Level level, const Rabin& rabin,
                      std::span<const std::uint8_t> data) {
  std::vector<std::uint32_t> want;
  rabin.chunk_boundaries_into(data, want);
  std::vector<std::uint32_t> got;
  rabin_boundaries_at(level, rabin, data, got, nullptr);
  ASSERT_EQ(got, want) << "n=" << data.size();
}

TEST(SimdRabinTest, AllLengths0To512MatchScalar) {
  const Rabin rabin({.window = 16, .min_block = 16, .max_block = 128,
                     .mask = 0xF, .magic = 0x7});
  std::vector<std::uint8_t> data = random_bytes(512, 0xABCD04);
  for (Level level : wide_levels()) {
    SCOPED_TRACE(std::string(level_name(level)));
    for (std::size_t n = 0; n <= 512; ++n) {
      expect_same_cuts(level, rabin, std::span(data.data(), n));
    }
  }
}

TEST(SimdRabinTest, LargeBuffersMatchScalarDefaultParams) {
  const Rabin rabin({.mask = 0x7FF});  // dedup's golden config
  for (Level level : wide_levels()) {
    SCOPED_TRACE(std::string(level_name(level)));
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      std::vector<std::uint8_t> data = random_bytes(1 << 20, seed);
      expect_same_cuts(level, rabin, data);
    }
    // Corpus-shaped content exercises realistic cut densities.
    for (auto kind : {hs::datagen::CorpusKind::kParsecLike,
                      hs::datagen::CorpusKind::kSourceLike,
                      hs::datagen::CorpusKind::kSilesiaLike}) {
      auto data = hs::datagen::generate({kind, 2u << 20, 7});
      expect_same_cuts(level, rabin, data);
    }
  }
}

TEST(SimdRabinTest, MatchBitmapAgreesAcrossLevels) {
  const Rabin rabin({.mask = 0xFF});
  std::vector<std::uint8_t> data = random_bytes(300000, 0xABCD05);
  const std::size_t nwords = (data.size() + 63) / 64;
  std::vector<std::uint64_t> scalar_bits(nwords);
  rabin_match_bits_scalar(rabin, data, scalar_bits.data());
  for (Level level : wide_levels()) {
    SCOPED_TRACE(std::string(level_name(level)));
    std::vector<std::uint64_t> bits(nwords);
    if (level == Level::kAvx2) {
      rabin_match_bits_avx2(rabin, data, bits.data());
    } else {
      rabin_match_bits_sse42(rabin, data, bits.data());
    }
    EXPECT_EQ(bits, scalar_bits);
  }
}

// Forced max_block cuts and runs with no content cut at all.
TEST(SimdRabinTest, UniformContentForcesMaxBlockCuts) {
  const Rabin rabin({.window = 16, .min_block = 64, .max_block = 256,
                     .mask = 0xFFFF, .magic = 0x1});
  std::vector<std::uint8_t> data(5000, 0x41);  // constant: no magic hits
  for (Level level : wide_levels()) {
    SCOPED_TRACE(std::string(level_name(level)));
    expect_same_cuts(level, rabin, data);
  }
}

// ---- LZSS match + encoded streams ---------------------------------------

TEST(SimdLzssTest, AllPositionsAllLengths0To512MatchScalar) {
  LzssParams params;
  params.window_size = 64;
  // Low-entropy bytes so matches of many lengths and ties actually occur.
  hs::Xoshiro256 rng(0xABCD06);
  std::vector<std::uint8_t> data(513);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng() % 7);
  for (Level level : wide_levels()) {
    SCOPED_TRACE(std::string(level_name(level)));
    for (std::size_t n = 1; n <= 512; ++n) {
      for (std::size_t pos = 0; pos < n; ++pos) {
        const LzssMatch want =
            lzss_longest_match_scalar(std::span(data.data(), n), 0, n, pos,
                                      params);
        const LzssMatch got = lzss_longest_match_at(
            level, std::span(data.data(), n), 0, n, pos, params);
        ASSERT_TRUE(got.length == want.length && got.offset == want.offset)
            << "n=" << n << " pos=" << pos << " got=(" << got.length << ","
            << got.offset << ") want=(" << want.length << "," << want.offset
            << ")";
      }
    }
  }
}

TEST(SimdLzssTest, EncodedStreamsBitIdenticalOnCorpora) {
  LzssParams params;
  params.window_size = 256;  // dedup's config
  const Level prev = active_level();
  for (auto kind : {hs::datagen::CorpusKind::kParsecLike,
                    hs::datagen::CorpusKind::kSourceLike,
                    hs::datagen::CorpusKind::kSilesiaLike}) {
    auto data = hs::datagen::generate({kind, 1u << 20, 11});
    set_active_level(Level::kScalar);
    const auto want = lzss_encode(data, params);
    for (Level level : wide_levels()) {
      SCOPED_TRACE(std::string(level_name(level)));
      set_active_level(level);
      const auto got = lzss_encode(data, params);
      EXPECT_EQ(got, want);
    }
  }
  set_active_level(prev);
}

TEST(SimdLzssTest, BatchMatchesBitIdenticalWithBlockBounds) {
  LzssParams params;
  params.window_size = 256;
  auto data = hs::datagen::generate(
      {hs::datagen::CorpusKind::kSourceLike, 1u << 19, 3});
  const Rabin rabin({.mask = 0xFF});
  std::vector<std::uint32_t> starts;
  rabin.chunk_boundaries_into(data, starts);
  const Level prev = active_level();
  set_active_level(Level::kScalar);
  std::vector<LzssMatch> want;
  find_matches_batch(data, starts, params, want);
  for (Level level : wide_levels()) {
    SCOPED_TRACE(std::string(level_name(level)));
    set_active_level(level);
    std::vector<LzssMatch> got;
    find_matches_batch(data, starts, params, got);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_TRUE(got[i].length == want[i].length &&
                  got[i].offset == want[i].offset)
          << "pos=" << i;
    }
  }
  set_active_level(prev);
}

}  // namespace
}  // namespace hs::kernels::simd
