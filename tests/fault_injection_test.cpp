// End-to-end fault injection & graceful degradation tests: FaultPlan
// semantics (determinism, spec parsing), error surfacing through the cudax
// and oclx/cl_api shims, and the acceptance scenarios — transient copy
// failures, sticky device loss on a multi-GPU run, and allocation pressure
// in the dedup GPU stages — all of which must complete bit-exactly against
// the fault-free reference while the telemetry records the injected faults.
#include <gtest/gtest.h>

#include "common/retry.hpp"
#include "cudax/cudax.hpp"
#include "datagen/corpus.hpp"
#include "dedup/container.hpp"
#include "dedup/pipelines.hpp"
#include "gpusim/fault_plan.hpp"
#include "mandel/pipelines.hpp"
#include "oclx/cl_api.hpp"
#include "oclx/oclx.hpp"

namespace hs {
namespace {

using gpusim::FaultPlan;
using gpusim::FaultSite;

// ---- FaultPlan semantics ----------------------------------------------------------

TEST(FaultPlanTest, NthOpFiresExactlyOnce) {
  FaultPlan plan;
  plan.fail_nth(FaultSite::kH2D, 3);
  EXPECT_TRUE(plan.on_op(FaultSite::kH2D).ok());
  EXPECT_TRUE(plan.on_op(FaultSite::kH2D).ok());
  Status s = plan.on_op(FaultSite::kH2D);
  EXPECT_EQ(s.code(), ErrorCode::kInternal);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(plan.on_op(FaultSite::kH2D).ok());
  EXPECT_EQ(plan.telemetry().total_faults, 1u);
  EXPECT_EQ(plan.telemetry().records.size(), 1u);
  EXPECT_EQ(plan.telemetry().records[0].site_op, 3u);
}

TEST(FaultPlanTest, AllocFaultsDefaultToOutOfMemory) {
  FaultPlan plan;
  plan.fail_nth(FaultSite::kAlloc, 1);
  EXPECT_EQ(plan.on_op(FaultSite::kAlloc).code(), ErrorCode::kOutOfMemory);
}

TEST(FaultPlanTest, StickyLossPoisonsEverySubsequentOp) {
  FaultPlan plan;
  plan.lose_device_at(2);
  EXPECT_TRUE(plan.on_op(FaultSite::kAlloc).ok());
  EXPECT_EQ(plan.on_op(FaultSite::kLaunch).code(), ErrorCode::kUnavailable);
  EXPECT_TRUE(plan.device_lost());
  // Every site now fails, forever.
  EXPECT_EQ(plan.on_op(FaultSite::kAlloc).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(plan.on_op(FaultSite::kH2D).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(plan.on_op(FaultSite::kD2H).code(), ErrorCode::kUnavailable);
  EXPECT_TRUE(plan.telemetry().device_lost);
}

TEST(FaultPlanTest, ProbabilisticDecisionsAreSeedDeterministic) {
  auto decisions = [](std::uint64_t seed) {
    FaultPlan plan(seed);
    plan.fail_probabilistic(FaultSite::kLaunch, 0.3);
    std::vector<bool> out;
    for (int i = 0; i < 200; ++i) {
      out.push_back(!plan.on_op(FaultSite::kLaunch).ok());
    }
    return out;
  };
  EXPECT_EQ(decisions(7), decisions(7));
  EXPECT_NE(decisions(7), decisions(8));
  // The rate is roughly honored.
  auto d = decisions(7);
  auto faults = std::count(d.begin(), d.end(), true);
  EXPECT_GT(faults, 20);
  EXPECT_LT(faults, 120);
}

TEST(FaultPlanTest, ParseBuildsEquivalentPlan) {
  auto plan = FaultPlan::Parse("seed=7,h2d.p=0.05,alloc.nth=3,lost.nth=200");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  FaultPlan p = std::move(plan).value();
  // alloc.nth=3 fires at the third allocation with OOM.
  EXPECT_TRUE(p.on_op(FaultSite::kAlloc).ok());
  EXPECT_TRUE(p.on_op(FaultSite::kAlloc).ok());
  EXPECT_EQ(p.on_op(FaultSite::kAlloc).code(), ErrorCode::kOutOfMemory);
}

TEST(FaultPlanTest, ParseRejectsMalformedSpecs) {
  EXPECT_EQ(FaultPlan::Parse("bogus").status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("h2d.nth=").status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("h2d.p=1.5").status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("unknown.nth=1").status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_TRUE(FaultPlan::Parse("").ok());  // empty spec = no faults
}

// ---- shim error surfacing ---------------------------------------------------------

TEST(ShimSurfacingTest, CudaxMapsInjectedFaults) {
  auto machine = gpusim::Machine::Create(1, gpusim::DeviceSpec::TitanXP());
  FaultPlan plan;
  plan.fail_nth(FaultSite::kAlloc, 1).fail_nth(FaultSite::kD2H, 1);
  machine->device(0).set_fault_plan(std::move(plan));
  cudax::bind_machine(machine.get());

  void* p = nullptr;
  EXPECT_EQ(cudax::cudaMalloc(&p, 64),
            cudax::cudaError::cudaErrorMemoryAllocation);
  ASSERT_EQ(cudax::cudaMalloc(&p, 64), cudax::cudaError::cudaSuccess);

  std::uint8_t host[8] = {};
  ASSERT_EQ(cudax::cudaMemcpy(p, host, 8,
                              cudax::cudaMemcpyKind::cudaMemcpyHostToDevice),
            cudax::cudaError::cudaSuccess);
  EXPECT_EQ(cudax::cudaMemcpy(host, p, 8,
                              cudax::cudaMemcpyKind::cudaMemcpyDeviceToHost),
            cudax::cudaError::cudaErrorLaunchFailure);
  cudax::unbind_machine();
}

TEST(ShimSurfacingTest, CudaxReportsLostDeviceAsUnavailable) {
  auto machine = gpusim::Machine::Create(1, gpusim::DeviceSpec::TitanXP());
  machine->device(0).mark_lost();
  cudax::bind_machine(machine.get());
  void* p = nullptr;
  EXPECT_EQ(cudax::cudaMalloc(&p, 64),
            cudax::cudaError::cudaErrorDevicesUnavailable);
  cudax::unbind_machine();
  EXPECT_EQ(cudax::error_code_of(cudax::cudaError::cudaErrorDevicesUnavailable),
            ErrorCode::kUnavailable);
}

TEST(ShimSurfacingTest, ClApiMapsLostDeviceAndOom) {
  using namespace oclx::capi;
  auto machine = gpusim::Machine::Create(1, gpusim::DeviceSpec::TitanXP());
  FaultPlan plan;
  plan.fail_nth(FaultSite::kAlloc, 1);
  machine->device(0).set_fault_plan(std::move(plan));
  clSimBindMachine(machine.get());

  cl_platform_id platform = nullptr;
  ASSERT_EQ(clGetPlatformIDs(1, &platform, nullptr), CL_SUCCESS);
  cl_device_id dev = nullptr;
  ASSERT_EQ(clGetDeviceIDs(platform, 1, &dev, nullptr), CL_SUCCESS);
  cl_int err = CL_SUCCESS;
  cl_context ctx = clCreateContext(&dev, 1, &err);
  ASSERT_EQ(err, CL_SUCCESS);

  cl_mem buf = clCreateBuffer(ctx, 64, &err);
  EXPECT_EQ(buf, nullptr);
  EXPECT_EQ(err, CL_OUT_OF_RESOURCES);

  machine->device(0).mark_lost();
  buf = clCreateBuffer(ctx, 64, &err);
  EXPECT_EQ(buf, nullptr);
  EXPECT_EQ(err, CL_DEVICE_NOT_AVAILABLE);
  clReleaseContext(ctx);
  clSimBindMachine(nullptr);
}

// ---- retry policy -----------------------------------------------------------------

TEST(RetryTest, RetriesTransientAndStopsOnUnavailable) {
  RetryStats stats;
  int calls = 0;
  Status s = retry_status(RetryPolicy{}, &stats, "op", [&] {
    ++calls;
    return calls < 3 ? Internal("flaky") : OkStatus();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.retries.load(), 2u);

  calls = 0;
  s = retry_status(RetryPolicy{}, &stats, "op", [&] {
    ++calls;
    return Unavailable("device lost");
  });
  EXPECT_EQ(s.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(calls, 1);  // not retriable: surfaces immediately
  EXPECT_FALSE(stats.events().empty());
}

// Regression: the backoff scale (multiplier^retry_index) used to be cast
// to int64 microseconds before the max_delay clamp; with enough attempts
// or a large multiplier the double exceeded the int64 range and the cast
// was UB. The clamp now happens in the double domain, so even an absurd
// policy sleeps at most max_delay per retry.
TEST(RetryTest, BackoffClampsBeforeOverflow) {
  RetryPolicy policy;
  policy.max_attempts = 80;  // 2^79 * base_delay vastly exceeds int64 range
  policy.base_delay = std::chrono::microseconds(1);
  policy.multiplier = 1e6;
  policy.max_delay = std::chrono::microseconds(100);
  int calls = 0;
  auto start = std::chrono::steady_clock::now();
  Status s = retry_status(policy, nullptr, "op", [&] {
    ++calls;
    return Internal("always broken");
  });
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(s.code(), ErrorCode::kInternal);
  EXPECT_EQ(calls, 80);
  // 79 retries clamped to <= 100 us each; generous slack for slow CI.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed),
            std::chrono::milliseconds(5000));
}

TEST(RetryTest, ExhaustsAfterMaxAttempts) {
  RetryStats stats;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay = std::chrono::microseconds(1);
  int calls = 0;
  Status s = retry_status(policy, &stats, "op", [&] {
    ++calls;
    return Internal("always broken");
  });
  EXPECT_EQ(s.code(), ErrorCode::kInternal);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.exhausted.load(), 1u);
}

// ---- acceptance: mandel under faults ----------------------------------------------

class MandelFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    params_.dim = 64;
    params_.niter = 100;
    reference_ = mandel::render_sequential(params_);
  }
  kernels::MandelParams params_;
  std::vector<std::uint8_t> reference_;
};

TEST_F(MandelFaultTest, TransientCopyFaultsAreRetriedBitExactly) {
  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  for (int d = 0; d < 2; ++d) {
    FaultPlan plan(100 + static_cast<std::uint64_t>(d));
    plan.fail_probabilistic(FaultSite::kD2H, 0.2);
    plan.fail_probabilistic(FaultSite::kLaunch, 0.1);
    machine->device(d).set_fault_plan(std::move(plan));
  }
  cudax::bind_machine(machine.get());
  RetryStats stats;
  auto r = mandel::render_spar_cuda(params_, 4, *machine, &stats);
  cudax::unbind_machine();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), reference_);
  // Faults were actually injected and absorbed by retries.
  std::uint64_t injected = machine->device(0).fault_telemetry().total_faults +
                           machine->device(1).fault_telemetry().total_faults;
  EXPECT_GT(injected, 0u);
  EXPECT_GT(stats.retries.load(), 0u);
  EXPECT_FALSE(stats.events().empty());
}

TEST_F(MandelFaultTest, StickyDeviceLossMigratesToSurvivor) {
  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  FaultPlan plan;
  plan.lose_device_at(10);  // device 0 dies early in the stream
  machine->device(0).set_fault_plan(std::move(plan));
  cudax::bind_machine(machine.get());
  RetryStats stats;
  auto r = mandel::render_spar_cuda(params_, 4, *machine, &stats);
  cudax::unbind_machine();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), reference_);
  EXPECT_TRUE(machine->device(0).lost());
  EXPECT_FALSE(machine->device(1).lost());
  EXPECT_GT(stats.device_losses.load(), 0u);
  // Workers bound to device 0 re-homed onto device 1 (or fell back to the
  // CPU during the loss window); either way the survivor did real work.
  EXPECT_GT(stats.device_switches.load() + stats.cpu_fallbacks.load(), 0u);
  EXPECT_GT(machine->device(1).counters().kernels_launched, 0u);
}

TEST_F(MandelFaultTest, AllDevicesLostFallsBackToCpu) {
  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  for (int d = 0; d < 2; ++d) {
    FaultPlan plan;
    plan.lose_device_at(5);
    machine->device(d).set_fault_plan(std::move(plan));
  }
  cudax::bind_machine(machine.get());
  RetryStats stats;
  auto r = mandel::render_spar_cuda(params_, 4, *machine, &stats);
  cudax::unbind_machine();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), reference_);
  EXPECT_TRUE(machine->device(0).lost());
  EXPECT_TRUE(machine->device(1).lost());
  EXPECT_GT(stats.cpu_fallbacks.load(), 0u);
}

TEST_F(MandelFaultTest, FaultFreeRunStillOffloadsEveryLine) {
  // Guard: the fault-tolerance plumbing must not change fault-free op
  // counts (one kernel launch per line).
  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(machine.get());
  RetryStats stats;
  auto r = mandel::render_spar_cuda(params_, 4, *machine, &stats);
  cudax::unbind_machine();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), reference_);
  std::uint64_t launches = machine->device(0).counters().kernels_launched +
                           machine->device(1).counters().kernels_launched;
  EXPECT_EQ(launches, static_cast<std::uint64_t>(params_.dim));
  EXPECT_EQ(stats.retries.load(), 0u);
  EXPECT_EQ(stats.cpu_fallbacks.load(), 0u);
}

// ---- acceptance: dedup under faults -----------------------------------------------

class DedupFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::CorpusSpec spec;
    spec.kind = datagen::CorpusKind::kParsecLike;
    spec.bytes = 200 * 1024;
    spec.seed = 123;
    input_ = datagen::generate(spec);
    cfg_.batch_size = 64 * 1024;
    cfg_.rabin.min_block = 256;
    cfg_.rabin.max_block = 8192;
    cfg_.rabin.mask = 0x3FF;
    cfg_.lzss.window_size = 128;
    auto ref = dedup::archive_sequential(input_, cfg_);
    ASSERT_TRUE(ref.ok());
    reference_ = std::move(ref).value();
  }
  std::vector<std::uint8_t> input_;
  dedup::DedupConfig cfg_;
  std::vector<std::uint8_t> reference_;
};

TEST_F(DedupFaultTest, TransientOomInGpuStagesIsRetriedBitExactly) {
  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  // One-shot OOM on each device's scratch allocations (the LZSS FindMatch
  // stage allocates the biggest scratch, so it is the likeliest victim).
  for (int d = 0; d < 2; ++d) {
    FaultPlan plan(200 + static_cast<std::uint64_t>(d));
    plan.fail_nth(FaultSite::kAlloc, 1);
    plan.fail_probabilistic(FaultSite::kAlloc, 0.25);
    machine->device(d).set_fault_plan(std::move(plan));
  }
  cudax::bind_machine(machine.get());
  RetryStats stats;
  auto r = dedup::archive_spar_cuda(input_, cfg_, 4, *machine, &stats);
  cudax::unbind_machine();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), reference_);
  std::uint64_t injected = machine->device(0).fault_telemetry().total_faults +
                           machine->device(1).fault_telemetry().total_faults;
  EXPECT_GT(injected, 0u);
  EXPECT_GT(stats.attempts.load(), 0u);
  // The archive stays decompressible end to end.
  auto back = dedup::extract(r.value());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), input_);
}

TEST_F(DedupFaultTest, PersistentOomDegradesToCpuStages) {
  auto machine = gpusim::Machine::Create(1, gpusim::DeviceSpec::TitanXP());
  FaultPlan plan;
  plan.fail_probabilistic(FaultSite::kAlloc, 1.0);  // every alloc fails
  machine->device(0).set_fault_plan(std::move(plan));
  cudax::bind_machine(machine.get());
  RetryStats stats;
  RetryPolicy policy;
  policy.base_delay = std::chrono::microseconds(1);  // keep the test fast
  auto r = dedup::archive_spar_cuda(input_, cfg_, 2, *machine, &stats, policy);
  cudax::unbind_machine();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), reference_);
  EXPECT_GT(stats.cpu_fallbacks.load(), 0u);
  EXPECT_GT(stats.exhausted.load(), 0u);
  auto back = dedup::extract(r.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), input_);
}

TEST_F(DedupFaultTest, DeviceLossMidArchiveStaysBitExact) {
  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  FaultPlan plan;
  plan.lose_device_at(6);
  machine->device(0).set_fault_plan(std::move(plan));
  cudax::bind_machine(machine.get());
  RetryStats stats;
  auto r = dedup::archive_spar_cuda(input_, cfg_, 4, *machine, &stats);
  cudax::unbind_machine();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), reference_);
  EXPECT_TRUE(machine->device(0).lost());
  EXPECT_GT(stats.device_losses.load(), 0u);
  auto back = dedup::extract(r.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), input_);
}

}  // namespace
}  // namespace hs
