// Tests for the CUDA-style shim: thread-local device state, pinned-memory
// semantics of async copies, streams/events, kernel launches.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "cudax/cudax.hpp"
#include "cudax/raii.hpp"

namespace hs::cudax {
namespace {

class CudaxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
    bind_machine(machine_.get());
  }
  void TearDown() override { unbind_machine(); }
  std::unique_ptr<gpusim::Machine> machine_;
};

TEST_F(CudaxTest, DeviceCountAndSelection) {
  int count = 0;
  ASSERT_EQ(cudaGetDeviceCount(&count), cudaError::cudaSuccess);
  EXPECT_EQ(count, 2);
  int dev = -1;
  ASSERT_EQ(cudaGetDevice(&dev), cudaError::cudaSuccess);
  EXPECT_EQ(dev, 0);  // default
  ASSERT_EQ(cudaSetDevice(1), cudaError::cudaSuccess);
  ASSERT_EQ(cudaGetDevice(&dev), cudaError::cudaSuccess);
  EXPECT_EQ(dev, 1);
  EXPECT_EQ(cudaSetDevice(7), cudaError::cudaErrorInvalidDevice);
}

TEST_F(CudaxTest, SetDeviceIsThreadLocal) {
  // The paper: "cudaSetDevice has thread-side effects, thus it must be
  // called after initializing each thread."
  ASSERT_EQ(cudaSetDevice(1), cudaError::cudaSuccess);
  int other_thread_device = -1;
  std::thread t([&] {
    int d = -1;
    (void)cudaGetDevice(&d);
    other_thread_device = d;
  });
  t.join();
  EXPECT_EQ(other_thread_device, 0);  // fresh thread starts at device 0
  int mine = -1;
  (void)cudaGetDevice(&mine);
  EXPECT_EQ(mine, 1);  // unaffected by the other thread
}

TEST_F(CudaxTest, NoMachineBoundFails) {
  unbind_machine();
  int count = 0;
  EXPECT_EQ(cudaGetDeviceCount(&count), cudaError::cudaErrorNoDevice);
  void* p = nullptr;
  EXPECT_EQ(cudaMalloc(&p, 64), cudaError::cudaErrorNoDevice);
  bind_machine(machine_.get());
}

TEST_F(CudaxTest, MallocFreeRoundtrip) {
  void* p = nullptr;
  ASSERT_EQ(cudaMalloc(&p, 1024), cudaError::cudaSuccess);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(machine_->device(0).memory_used(), 1024u);
  ASSERT_EQ(cudaFree(p), cudaError::cudaSuccess);
  EXPECT_EQ(cudaFree(p), cudaError::cudaErrorInvalidValue);
}

TEST_F(CudaxTest, AllocationFollowsCurrentDevice) {
  ASSERT_EQ(cudaSetDevice(1), cudaError::cudaSuccess);
  void* p = nullptr;
  ASSERT_EQ(cudaMalloc(&p, 2048), cudaError::cudaSuccess);
  EXPECT_EQ(machine_->device(1).memory_used(), 2048u);
  EXPECT_EQ(machine_->device(0).memory_used(), 0u);
  ASSERT_EQ(cudaFree(p), cudaError::cudaSuccess);
}

TEST_F(CudaxTest, PinnedMemoryRegistry) {
  void* p = nullptr;
  ASSERT_EQ(cudaMallocHost(&p, 4096), cudaError::cudaSuccess);
  EXPECT_TRUE(is_pinned(p, 4096));
  EXPECT_TRUE(is_pinned(static_cast<char*>(p) + 100, 100));
  EXPECT_FALSE(is_pinned(static_cast<char*>(p) + 100, 4096));
  ASSERT_EQ(cudaFreeHost(p), cudaError::cudaSuccess);
  EXPECT_FALSE(is_pinned(p, 1));
  int stack_var;
  EXPECT_EQ(cudaFreeHost(&stack_var), cudaError::cudaErrorInvalidValue);
}

TEST_F(CudaxTest, SyncMemcpyRoundtrip) {
  std::vector<int> host(256);
  std::iota(host.begin(), host.end(), 0);
  void* dptr = nullptr;
  ASSERT_EQ(cudaMalloc(&dptr, host.size() * sizeof(int)),
            cudaError::cudaSuccess);
  ASSERT_EQ(cudaMemcpy(dptr, host.data(), host.size() * sizeof(int),
                       cudaMemcpyKind::cudaMemcpyHostToDevice),
            cudaError::cudaSuccess);
  std::vector<int> back(256, -1);
  ASSERT_EQ(cudaMemcpy(back.data(), dptr, back.size() * sizeof(int),
                       cudaMemcpyKind::cudaMemcpyDeviceToHost),
            cudaError::cudaSuccess);
  EXPECT_EQ(host, back);
  ASSERT_EQ(cudaFree(dptr), cudaError::cudaSuccess);
}

TEST_F(CudaxTest, AsyncCopyFromPageableDegradesToSync) {
  // Matches the paper's Dedup/CUDA finding: realloc'd (pageable) buffers
  // defeat asynchronous copies.
  std::vector<std::uint8_t> pageable(1 << 20, 0x42);
  void* dptr = nullptr;
  ASSERT_EQ(cudaMalloc(&dptr, 1 << 20), cudaError::cudaSuccess);
  cudaStream_t stream;
  ASSERT_EQ(cudaStreamCreate(&stream), cudaError::cudaSuccess);
  bool sync_fallback = false;
  ASSERT_EQ(cudaMemcpyAsync(dptr, pageable.data(), 1 << 20,
                            cudaMemcpyKind::cudaMemcpyHostToDevice, stream,
                            &sync_fallback),
            cudaError::cudaSuccess);
  EXPECT_TRUE(sync_fallback);

  void* pinned = nullptr;
  ASSERT_EQ(cudaMallocHost(&pinned, 1 << 20), cudaError::cudaSuccess);
  ASSERT_EQ(cudaMemcpyAsync(dptr, pinned, 1 << 20,
                            cudaMemcpyKind::cudaMemcpyHostToDevice, stream,
                            &sync_fallback),
            cudaError::cudaSuccess);
  EXPECT_FALSE(sync_fallback);
  ASSERT_EQ(cudaFreeHost(pinned), cudaError::cudaSuccess);
  ASSERT_EQ(cudaFree(dptr), cudaError::cudaSuccess);
}

TEST_F(CudaxTest, PageableAsyncCopyIsSlowerInVirtualTime) {
  std::vector<std::uint8_t> pageable(8 << 20);
  void* pinned = nullptr;
  ASSERT_EQ(cudaMallocHost(&pinned, 8 << 20), cudaError::cudaSuccess);
  void* dptr = nullptr;
  ASSERT_EQ(cudaMalloc(&dptr, 8 << 20), cudaError::cudaSuccess);

  cudaStream_t s1, s2;
  ASSERT_EQ(cudaStreamCreate(&s1), cudaError::cudaSuccess);
  ASSERT_EQ(cudaStreamCreate(&s2), cudaError::cudaSuccess);
  double t_pageable = 0, t_pinned = 0;
  ASSERT_EQ(cudaMemcpyAsync(dptr, pageable.data(), 8 << 20,
                            cudaMemcpyKind::cudaMemcpyHostToDevice, s1),
            cudaError::cudaSuccess);
  ASSERT_EQ(cudaStreamSynchronize(s1, &t_pageable), cudaError::cudaSuccess);
  double base = 0;
  ASSERT_EQ(cudaStreamSynchronize(s2, &base), cudaError::cudaSuccess);
  ASSERT_EQ(cudaMemcpyAsync(dptr, pinned, 8 << 20,
                            cudaMemcpyKind::cudaMemcpyHostToDevice, s2),
            cudaError::cudaSuccess);
  ASSERT_EQ(cudaStreamSynchronize(s2, &t_pinned), cudaError::cudaSuccess);
  // Pageable duration > pinned duration (durations, not absolute stamps;
  // s2's copy waits for the H2D engine to free, so subtract its start).
  EXPECT_GT(t_pageable, t_pinned - t_pageable);
  ASSERT_EQ(cudaFreeHost(pinned), cudaError::cudaSuccess);
  ASSERT_EQ(cudaFree(dptr), cudaError::cudaSuccess);
}

TEST_F(CudaxTest, KernelLaunchAndStreams) {
  const std::uint32_t n = 4096;
  void* dptr = nullptr;
  ASSERT_EQ(cudaMalloc(&dptr, n * sizeof(float)), cudaError::cudaSuccess);
  float* data = static_cast<float*>(dptr);
  cudaStream_t stream;
  ASSERT_EQ(cudaStreamCreate(&stream), cudaError::cudaSuccess);
  ASSERT_EQ(launch_kernel(Dim3{(n + 255) / 256, 1, 1}, Dim3{256, 1, 1}, stream,
                          [=](const ThreadCtx& ctx) {
                            std::uint64_t i = ctx.global_x();
                            if (i < n) data[i] = static_cast<float>(i) * 0.5f;
                          }),
            cudaError::cudaSuccess);
  double t = 0;
  ASSERT_EQ(cudaStreamSynchronize(stream, &t), cudaError::cudaSuccess);
  EXPECT_GT(t, 0.0);
  EXPECT_FLOAT_EQ(data[100], 50.0f);
  ASSERT_EQ(cudaFree(dptr), cudaError::cudaSuccess);
}

TEST_F(CudaxTest, DefaultStreamHandleUsesCurrentDevice) {
  ASSERT_EQ(cudaSetDevice(1), cudaError::cudaSuccess);
  ASSERT_EQ(launch_kernel(Dim3{1, 1, 1}, Dim3{32, 1, 1}, cudaStream_t{},
                          [](const ThreadCtx&) {}),
            cudaError::cudaSuccess);
  EXPECT_EQ(machine_->device(1).counters().kernels_launched, 1u);
  EXPECT_EQ(machine_->device(0).counters().kernels_launched, 0u);
}

TEST_F(CudaxTest, EventsMeasureVirtualTime) {
  cudaStream_t stream;
  ASSERT_EQ(cudaStreamCreate(&stream), cudaError::cudaSuccess);
  cudaEvent_t start, stop;
  ASSERT_EQ(cudaEventCreate(&start), cudaError::cudaSuccess);
  ASSERT_EQ(cudaEventCreate(&stop), cudaError::cudaSuccess);
  ASSERT_EQ(cudaEventRecord(&start, stream), cudaError::cudaSuccess);
  ASSERT_EQ(launch_kernel(Dim3{64, 1, 1}, Dim3{256, 1, 1}, stream,
                          [](const ThreadCtx&) -> std::uint64_t {
                            return 50000;
                          }),
            cudaError::cudaSuccess);
  ASSERT_EQ(cudaEventRecord(&stop, stream), cudaError::cudaSuccess);
  float ms = 0;
  ASSERT_EQ(cudaEventElapsedTime(&ms, start, stop), cudaError::cudaSuccess);
  EXPECT_GT(ms, 0.0f);
  cudaEvent_t never;
  ASSERT_EQ(cudaEventCreate(&never), cudaError::cudaSuccess);
  EXPECT_EQ(cudaEventSynchronize(never), cudaError::cudaErrorNotReady);
}

TEST_F(CudaxTest, StreamWaitEventOrdersAcrossStreams) {
  cudaStream_t s1, s2;
  ASSERT_EQ(cudaStreamCreate(&s1), cudaError::cudaSuccess);
  ASSERT_EQ(cudaStreamCreate(&s2), cudaError::cudaSuccess);
  ASSERT_EQ(launch_kernel(Dim3{128, 1, 1}, Dim3{256, 1, 1}, s1,
                          [](const ThreadCtx&) -> std::uint64_t {
                            return 100000;
                          }),
            cudaError::cudaSuccess);
  cudaEvent_t ev;
  ASSERT_EQ(cudaEventCreate(&ev), cudaError::cudaSuccess);
  ASSERT_EQ(cudaEventRecord(&ev, s1), cudaError::cudaSuccess);
  ASSERT_EQ(cudaStreamWaitEvent(s2, ev), cudaError::cudaSuccess);
  ASSERT_EQ(launch_kernel(Dim3{1, 1, 1}, Dim3{32, 1, 1}, s2,
                          [](const ThreadCtx&) {}),
            cudaError::cudaSuccess);
  double t1 = 0, t2 = 0;
  ASSERT_EQ(cudaStreamSynchronize(s1, &t1), cudaError::cudaSuccess);
  ASSERT_EQ(cudaStreamSynchronize(s2, &t2), cudaError::cudaSuccess);
  EXPECT_GE(t2, t1);
}

TEST_F(CudaxTest, MultiGpuRoundRobinPattern) {
  // The paper's multi-GPU scheme: memory spaces assigned to devices
  // round-robin. Two devices get equal kernel counts.
  for (int batch = 0; batch < 8; ++batch) {
    ASSERT_EQ(cudaSetDevice(batch % 2), cudaError::cudaSuccess);
    ASSERT_EQ(launch_kernel(Dim3{16, 1, 1}, Dim3{256, 1, 1}, cudaStream_t{},
                            [](const ThreadCtx&) -> std::uint64_t {
                              return 1000;
                            }),
              cudaError::cudaSuccess);
  }
  EXPECT_EQ(machine_->device(0).counters().kernels_launched, 4u);
  EXPECT_EQ(machine_->device(1).counters().kernels_launched, 4u);
  // Both devices worked in parallel: makespan below serialized sum.
  double t0 = machine_->device(0).sync_all();
  double t1 = machine_->device(1).sync_all();
  EXPECT_NEAR(machine_->makespan(), std::max(t0, t1), 1e-12);
}

TEST_F(CudaxTest, DevicePropertiesMatchSpec) {
  cudaDeviceProp prop{};
  ASSERT_EQ(cudaGetDeviceProperties(&prop, 0), cudaError::cudaSuccess);
  EXPECT_STREQ(prop.name, "SimTitanXP");
  EXPECT_EQ(prop.multiProcessorCount, 30);
  EXPECT_EQ(prop.maxThreadsPerMultiProcessor, 2048);
  EXPECT_EQ(prop.warpSize, 32);
  EXPECT_EQ(prop.totalGlobalMem, 12ull << 30);
  EXPECT_EQ(cudaGetDeviceProperties(&prop, 9),
            cudaError::cudaErrorInvalidDevice);
  // The paper's resident-thread arithmetic from the API:
  EXPECT_EQ(prop.multiProcessorCount * prop.maxThreadsPerMultiProcessor,
            61440);
}

TEST_F(CudaxTest, MemGetInfoTracksAllocations) {
  std::size_t free_b = 0, total_b = 0;
  ASSERT_EQ(cudaMemGetInfo(&free_b, &total_b), cudaError::cudaSuccess);
  EXPECT_EQ(free_b, total_b);
  void* p = nullptr;
  ASSERT_EQ(cudaMalloc(&p, 1 << 20), cudaError::cudaSuccess);
  std::size_t free2 = 0, total2 = 0;
  ASSERT_EQ(cudaMemGetInfo(&free2, &total2), cudaError::cudaSuccess);
  EXPECT_EQ(total2, total_b);
  EXPECT_EQ(free2, free_b - (1 << 20));
  ASSERT_EQ(cudaFree(p), cudaError::cudaSuccess);
}

TEST_F(CudaxTest, MemsetFillsDeviceMemory) {
  void* dptr = nullptr;
  ASSERT_EQ(cudaMalloc(&dptr, 256), cudaError::cudaSuccess);
  ASSERT_EQ(cudaMemset(dptr, 0xAB, 256), cudaError::cudaSuccess);
  std::vector<std::uint8_t> back(256, 0);
  ASSERT_EQ(cudaMemcpy(back.data(), dptr, 256,
                       cudaMemcpyKind::cudaMemcpyDeviceToHost),
            cudaError::cudaSuccess);
  for (std::uint8_t b : back) EXPECT_EQ(b, 0xAB);
  // Async form on a stream, plus error paths.
  cudaStream_t stream;
  ASSERT_EQ(cudaStreamCreate(&stream), cudaError::cudaSuccess);
  ASSERT_EQ(cudaMemsetAsync(dptr, 0, 256, stream), cudaError::cudaSuccess);
  int host_var = 0;
  EXPECT_EQ(cudaMemset(&host_var, 0, 4), cudaError::cudaErrorInvalidValue);
  ASSERT_EQ(cudaFree(dptr), cudaError::cudaSuccess);
}

TEST_F(CudaxTest, RaiiDeviceBufferFreesOnScopeExit) {
  {
    auto buf = DeviceBuffer::Allocate(4096);
    ASSERT_TRUE(buf.ok());
    EXPECT_TRUE(buf.value().valid());
    EXPECT_EQ(buf.value().size(), 4096u);
    EXPECT_EQ(machine_->device(0).memory_used(), 4096u);
  }
  EXPECT_EQ(machine_->device(0).memory_used(), 0u);
}

TEST_F(CudaxTest, RaiiBufferFreesOnItsOwnDevice) {
  ASSERT_EQ(cudaSetDevice(1), cudaError::cudaSuccess);
  auto buf = DeviceBuffer::Allocate(2048);
  ASSERT_TRUE(buf.ok());
  // Switch the thread elsewhere; the destructor must still free on dev 1.
  ASSERT_EQ(cudaSetDevice(0), cudaError::cudaSuccess);
  {
    DeviceBuffer moved = std::move(buf).value();
    EXPECT_EQ(moved.device(), 1);
  }
  EXPECT_EQ(machine_->device(1).memory_used(), 0u);
  int cur = -1;
  ASSERT_EQ(cudaGetDevice(&cur), cudaError::cudaSuccess);
  EXPECT_EQ(cur, 0);  // destructor restored the thread's current device
}

TEST_F(CudaxTest, RaiiPinnedBufferAndStream) {
  auto pinned = PinnedBuffer::Allocate(1024);
  ASSERT_TRUE(pinned.ok());
  EXPECT_TRUE(is_pinned(pinned.value().data(), 1024));
  auto stream = ScopedStream::Create();
  ASSERT_TRUE(stream.ok());
  auto dev = DeviceBuffer::Allocate(1024);
  ASSERT_TRUE(dev.ok());
  ASSERT_EQ(cudaMemcpyAsync(dev.value().data(), pinned.value().data(), 1024,
                            cudaMemcpyKind::cudaMemcpyHostToDevice,
                            stream.value().get()),
            cudaError::cudaSuccess);
  auto t = stream.value().synchronize();
  ASSERT_TRUE(t.ok());
  EXPECT_GT(t.value(), 0.0);
  void* raw = pinned.value().data();
  {
    PinnedBuffer moved = std::move(pinned).value();
    EXPECT_TRUE(moved.valid());
  }
  EXPECT_FALSE(is_pinned(raw, 1));  // released exactly once
}

TEST_F(CudaxTest, ErrorNamesAndMessages) {
  EXPECT_EQ(error_name(cudaError::cudaSuccess), "cudaSuccess");
  EXPECT_EQ(error_name(cudaError::cudaErrorMemoryAllocation),
            "cudaErrorMemoryAllocation");
  void* p = nullptr;
  ASSERT_EQ(cudaSetDevice(0), cudaError::cudaSuccess);
  EXPECT_EQ(cudaMalloc(&p, 100ull << 30), cudaError::cudaErrorMemoryAllocation);
  EXPECT_NE(last_error_message().find("out of memory"), std::string::npos);
}

}  // namespace
}  // namespace hs::cudax
