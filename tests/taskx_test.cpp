// Tests for the taskx scheduler: thread pool, work stealing, parallel_for,
// and the token pipeline's filter-mode semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <optional>
#include <set>
#include <vector>

#include "taskx/parallel_for.hpp"
#include "taskx/parallel_reduce.hpp"
#include "taskx/pipeline.hpp"
#include "taskx/pool.hpp"

namespace hs::taskx {
namespace {

// ---- ThreadPool ----------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.submit([&count] { ++count; });
    }
    pool.help_while([&count] { return count.load() == 1000; });
  }
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, DestructorDrainsPending) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) {
      pool.submit([&count] { ++count; });
    }
  }  // dtor must run the remaining tasks
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPoolTest, TasksCanSubmitTasks) {
  std::atomic<int> count{0};
  ThreadPool pool(3);
  for (int i = 0; i < 10; ++i) {
    pool.submit([&pool, &count] {
      for (int j = 0; j < 10; ++j) {
        pool.submit([&count] { ++count; });
      }
    });
  }
  pool.help_while([&count] { return count.load() == 100; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, CurrentWorkerIndexVisibleInsideTasks) {
  ThreadPool pool(3);
  std::mutex mu;
  std::set<int> indices;
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] {
      int idx = pool.current_worker_index();
      {
        std::lock_guard<std::mutex> lock(mu);
        indices.insert(idx);
      }
      ++done;
    });
  }
  pool.help_while([&done] { return done.load() == 100; });
  EXPECT_EQ(pool.current_worker_index(), -1);  // main thread
  for (int idx : indices) {
    EXPECT_GE(idx, -1);
    EXPECT_LT(idx, 3);
  }
}

TEST(ThreadPoolTest, SizeDefaultsNonZero) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

// ---- parallel_for ---------------------------------------------------------------

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  parallel_for_each_index(pool, 0, 10000, 64,
                          [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyAndSingletonRanges) {
  ThreadPool pool(2);
  int count = 0;
  parallel_for(pool, 5, 5, 16, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  std::atomic<int> hits{0};
  parallel_for(pool, 5, 6, 16, [&](std::size_t b, std::size_t e) {
    EXPECT_EQ(b, 5u);
    EXPECT_EQ(e, 6u);
    ++hits;
  });
  EXPECT_EQ(hits.load(), 1);
}

TEST(ParallelForTest, GrainZeroTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  parallel_for_each_index(pool, 0, 100, 0,
                          [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ParallelForTest, SumReduction) {
  ThreadPool pool(4);
  std::vector<int> data(50000);
  std::iota(data.begin(), data.end(), 1);
  std::atomic<long long> total{0};
  parallel_for(pool, 0, data.size(), 128,
               [&](std::size_t b, std::size_t e) {
                 long long local = 0;
                 for (std::size_t i = b; i < e; ++i) local += data[i];
                 total += local;
               });
  EXPECT_EQ(total.load(), 50000LL * 50001 / 2);
}

TEST(ParallelReduceTest, SumMatchesSequential) {
  ThreadPool pool(4);
  long long total = parallel_reduce<long long>(
      pool, 1, 100001, 97, 0,
      [](std::size_t b, std::size_t e, long long& acc) {
        for (std::size_t i = b; i < e; ++i) acc += static_cast<long long>(i);
      },
      [](long long a, long long b) { return a + b; });
  EXPECT_EQ(total, 100000LL * 100001 / 2);
}

TEST(ParallelReduceTest, MaxReduction) {
  ThreadPool pool(3);
  std::vector<int> data(5000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<int>((i * 2654435761u) % 100000);
  }
  int expected = *std::max_element(data.begin(), data.end());
  int got = parallel_reduce<int>(
      pool, 0, data.size(), 64, -1,
      [&](std::size_t b, std::size_t e, int& acc) {
        for (std::size_t i = b; i < e; ++i) acc = std::max(acc, data[i]);
      },
      [](int a, int b) { return std::max(a, b); });
  EXPECT_EQ(got, expected);
}

TEST(ParallelReduceTest, EmptyRangeReturnsIdentity) {
  ThreadPool pool(2);
  int got = parallel_reduce<int>(
      pool, 10, 10, 4, 42,
      [](std::size_t, std::size_t, int&) { FAIL() << "must not run"; },
      [](int a, int) { return a; });
  EXPECT_EQ(got, 42);
}

// ---- Pipeline -------------------------------------------------------------------

std::function<std::optional<Item>()> int_source(int n) {
  return [i = 0, n]() mutable -> std::optional<Item> {
    if (i >= n) return std::nullopt;
    return Item::of<int>(i++);
  };
}

TEST(TaskxPipelineTest, SerialInOrderPreservesOrder) {
  ThreadPool pool(4);
  Pipeline p(int_source(3000));
  p.add_filter(FilterMode::kParallel, [](Item in) {
    int v = in.take<int>();
    volatile int spin = (v % 5) * 40;  // jitter so tokens race
    while (spin > 0) { spin = spin - 1; }
    return Item::of<int>(v);
  });
  std::vector<int> got;
  p.add_filter(FilterMode::kSerialInOrder, [&](Item in) {
    got.push_back(in.as<int>());
    return in;
  });
  ASSERT_TRUE(p.run(pool, 8).ok());
  ASSERT_EQ(got.size(), 3000u);
  for (int i = 0; i < 3000; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(p.items_processed(), 3000u);
}

TEST(TaskxPipelineTest, SerialOutOfOrderIsExclusiveButUnordered) {
  ThreadPool pool(4);
  Pipeline p(int_source(2000));
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  std::multiset<int> got;
  p.add_filter(FilterMode::kParallel, [](Item in) { return in; });
  p.add_filter(FilterMode::kSerialOutOfOrder, [&](Item in) {
    if (inside.fetch_add(1) != 0) overlapped = true;
    got.insert(in.as<int>());
    inside.fetch_sub(1);
    return in;
  });
  ASSERT_TRUE(p.run(pool, 16).ok());
  EXPECT_FALSE(overlapped.load());
  EXPECT_EQ(got.size(), 2000u);
}

TEST(TaskxPipelineTest, ParallelFilterRunsConcurrently) {
  // With enough tokens and workers, the parallel filter should be observed
  // running on more than one thread at once at least occasionally.
  ThreadPool pool(4);
  Pipeline p(int_source(2000));
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  p.add_filter(FilterMode::kParallel, [&](Item in) {
    int now = inside.fetch_add(1) + 1;
    int prev = max_inside.load();
    while (now > prev && !max_inside.compare_exchange_weak(prev, now)) {}
    volatile int spin = 200;
    while (spin > 0) { spin = spin - 1; }
    inside.fetch_sub(1);
    return in;
  });
  p.add_filter(FilterMode::kSerialInOrder, [](Item in) { return in; });
  ASSERT_TRUE(p.run(pool, 16).ok());
  // On a single-core host this can legitimately stay at 1, so only assert
  // the invariant that it never exceeded the token cap.
  EXPECT_LE(max_inside.load(), 16);
}

TEST(TaskxPipelineTest, TokenCapBoundsInFlightItems) {
  ThreadPool pool(4);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  Pipeline p([i = 0, &in_flight, &max_in_flight]() mutable
                 -> std::optional<Item> {
    if (i >= 500) return std::nullopt;
    int now = in_flight.fetch_add(1) + 1;
    int prev = max_in_flight.load();
    while (now > prev && !max_in_flight.compare_exchange_weak(prev, now)) {}
    return Item::of<int>(i++);
  });
  p.add_filter(FilterMode::kParallel, [](Item in) { return in; });
  p.add_filter(FilterMode::kSerialInOrder, [&](Item in) {
    in_flight.fetch_sub(1);
    return in;
  });
  ASSERT_TRUE(p.run(pool, 4).ok());
  EXPECT_LE(max_in_flight.load(), 4);
  EXPECT_EQ(p.items_processed(), 500u);
}

TEST(TaskxPipelineTest, DroppedItemsDoNotStallOrdering) {
  ThreadPool pool(4);
  Pipeline p(int_source(1000));
  p.add_filter(FilterMode::kParallel, [](Item in) {
    if (in.as<int>() % 3 == 0) return Item{};  // drop
    return in;
  });
  std::vector<int> got;
  p.add_filter(FilterMode::kSerialInOrder, [&](Item in) {
    got.push_back(in.as<int>());
    return in;
  });
  ASSERT_TRUE(p.run(pool, 8).ok());
  std::vector<int> expected;
  for (int i = 0; i < 1000; ++i) {
    if (i % 3 != 0) expected.push_back(i);
  }
  EXPECT_EQ(got, expected);
  EXPECT_EQ(p.items_processed(), expected.size());
}

TEST(TaskxPipelineTest, EmptySourceCompletes) {
  ThreadPool pool(2);
  Pipeline p(int_source(0));
  p.add_filter(FilterMode::kParallel, [](Item in) { return in; });
  ASSERT_TRUE(p.run(pool, 4).ok());
  EXPECT_EQ(p.items_processed(), 0u);
}

TEST(TaskxPipelineTest, ValidationErrors) {
  ThreadPool pool(2);
  {
    Pipeline p(int_source(1));
    EXPECT_EQ(p.run(pool, 4).code(), ErrorCode::kInvalidArgument);  // no filters
  }
  {
    Pipeline p(int_source(1));
    p.add_filter(FilterMode::kParallel, [](Item in) { return in; });
    EXPECT_EQ(p.run(pool, 0).code(), ErrorCode::kInvalidArgument);  // 0 tokens
  }
  {
    Pipeline p(int_source(10));
    p.add_filter(FilterMode::kParallel, [](Item in) { return in; });
    ASSERT_TRUE(p.run(pool, 2).ok());
    EXPECT_EQ(p.run(pool, 2).code(), ErrorCode::kFailedPrecondition);
  }
}

TEST(TaskxPipelineTest, FilterExceptionSurfacesAsError) {
  ThreadPool pool(4);
  Pipeline p(int_source(5000));
  p.add_filter(FilterMode::kParallel, [](Item in) -> Item {
    if (in.as<int>() == 777) throw std::runtime_error("filter exploded");
    return in;
  });
  p.add_filter(FilterMode::kSerialInOrder, [](Item in) { return in; });
  Status s = p.run(pool, 8);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("filter exploded"), std::string::npos);
}

TEST(TaskxPipelineTest, SourceExceptionSurfacesAsError) {
  ThreadPool pool(2);
  Pipeline p([i = 0]() mutable -> std::optional<Item> {
    if (i++ == 5) throw std::runtime_error("source exploded");
    return Item::of<int>(i);
  });
  p.add_filter(FilterMode::kParallel, [](Item in) { return in; });
  Status s = p.run(pool, 2);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("source exploded"), std::string::npos);
}

TEST(TaskxPipelineTest, SingleTokenDegeneratesToSequential) {
  ThreadPool pool(4);
  Pipeline p(int_source(200));
  std::vector<int> got;
  p.add_filter(FilterMode::kParallel, [](Item in) {
    return Item::of<int>(in.as<int>() * 2);
  });
  p.add_filter(FilterMode::kSerialInOrder, [&](Item in) {
    got.push_back(in.as<int>());
    return in;
  });
  ASSERT_TRUE(p.run(pool, 1).ok());
  ASSERT_EQ(got.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], 2 * i);
}

// Parameterized sweep over token counts: the paper tuned this knob (38 vs
// 50 tokens); correctness must hold for any setting.
class TokenSweep : public ::testing::TestWithParam<int> {};

TEST_P(TokenSweep, InOrderCorrectForAnyTokenCount) {
  ThreadPool pool(4);
  Pipeline p(int_source(1500));
  p.add_filter(FilterMode::kParallel, [](Item in) {
    return Item::of<long>(static_cast<long>(in.take<int>()) + 1);
  });
  std::vector<long> got;
  p.add_filter(FilterMode::kSerialInOrder, [&](Item in) {
    got.push_back(in.as<long>());
    return in;
  });
  ASSERT_TRUE(p.run(pool, static_cast<std::size_t>(GetParam())).ok());
  ASSERT_EQ(got.size(), 1500u);
  for (long i = 0; i < 1500; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i + 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TokenSweep,
                         ::testing::Values(1, 2, 3, 8, 38, 50, 128));

}  // namespace
}  // namespace hs::taskx
