// Tests for the Mandelbrot application: every real pipeline variant renders
// identical pixels; the iteration-map cache round-trips; and the modeled
// runners reproduce the paper's qualitative ordering (Fig. 1's ladder).
#include <gtest/gtest.h>

#include <cstdio>

#include "cudax/cudax.hpp"
#include "mandel/iteration_map.hpp"
#include "mandel/modeled.hpp"
#include "mandel/pipelines.hpp"

namespace hs::mandel {
namespace {

MandelParams tiny_params() {
  MandelParams p;
  p.dim = 64;
  p.niter = 400;
  return p;
}

// ---- real pipelines --------------------------------------------------------------

class PipelineEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    params_ = tiny_params();
    reference_ = render_sequential(params_);
    ASSERT_EQ(reference_.size(), 64u * 64u);
  }
  MandelParams params_;
  std::vector<std::uint8_t> reference_;
};

TEST_F(PipelineEquivalenceTest, FlowMatchesSequential) {
  auto r = render_flow(params_, 4);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), reference_);
}

TEST_F(PipelineEquivalenceTest, TaskxMatchesSequential) {
  auto r = render_taskx(params_, 4, 8);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), reference_);
}

TEST_F(PipelineEquivalenceTest, SparMatchesSequential) {
  auto r = render_spar(params_, 4);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), reference_);
}

TEST_F(PipelineEquivalenceTest, SparCudaMatchesSequential) {
  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(machine.get());
  auto r = render_spar_cuda(params_, 4, *machine);
  cudax::unbind_machine();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), reference_);
  // Workers offloaded every line to the simulated GPUs.
  std::uint64_t launches = machine->device(0).counters().kernels_launched +
                           machine->device(1).counters().kernels_launched;
  EXPECT_EQ(launches, 64u);
}

TEST_F(PipelineEquivalenceTest, OpenClBatchedMatchesSequential) {
  auto machine = gpusim::Machine::Create(1, gpusim::DeviceSpec::TitanXP());
  auto r = render_opencl_batched(params_, *machine, 16);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), reference_);
  EXPECT_EQ(machine->device(0).counters().kernels_launched, 4u);
}

// ---- iteration map ------------------------------------------------------------------

TEST(IterationMapTest, MatchesDirectMath) {
  MandelParams p = tiny_params();
  IterationMap map = IterationMap::compute(p);
  for (int i = 0; i < p.dim; i += 7) {
    for (int j = 0; j < p.dim; j += 5) {
      EXPECT_EQ(map.iters(i, j), kernels::mandel_iterations(p, i, j));
    }
  }
  // Line costs add up.
  std::uint64_t sum = 0;
  for (int i = 0; i < p.dim; ++i) sum += map.line_cost(i);
  EXPECT_EQ(sum, map.total_cost());
}

TEST(IterationMapTest, RenderedLineMatchesKernel) {
  MandelParams p = tiny_params();
  IterationMap map = IterationMap::compute(p);
  std::vector<std::uint8_t> from_map(static_cast<std::size_t>(p.dim));
  std::vector<std::uint8_t> direct(static_cast<std::size_t>(p.dim));
  map.render_line(20, from_map);
  kernels::mandel_line(p, 20, direct);
  EXPECT_EQ(from_map, direct);
}

TEST(IterationMapTest, CacheRoundtrip) {
  MandelParams p = tiny_params();
  IterationMap map = IterationMap::compute(p);
  std::string path = ::testing::TempDir() + "/hs_map_cache.bin";
  ASSERT_TRUE(map.save(path).ok());
  auto loaded = IterationMap::load(path, p);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().total_cost(), map.total_cost());
  for (int i = 0; i < p.dim; i += 11) {
    EXPECT_EQ(loaded.value().iters(i, i), map.iters(i, i));
  }
  // Parameter mismatch is rejected, not silently accepted.
  MandelParams other = p;
  other.niter = 999;
  EXPECT_FALSE(IterationMap::load(path, other).ok());
  std::remove(path.c_str());
}

TEST(IterationMapTest, LoadOrComputeRecoversFromMissingCache) {
  MandelParams p = tiny_params();
  std::string path = ::testing::TempDir() + "/hs_map_cache2.bin";
  std::remove(path.c_str());
  auto first = IterationMap::load_or_compute(path, p);
  ASSERT_TRUE(first.ok());
  auto second = IterationMap::load_or_compute(path, p);  // now from cache
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().total_cost(), second.value().total_cost());
  std::remove(path.c_str());
}

TEST(IterationMapTest, ChecksumIsOrderSensitive) {
  std::vector<std::uint8_t> a = {1, 2, 3};
  std::vector<std::uint8_t> b = {3, 2, 1};
  EXPECT_NE(image_checksum(a), image_checksum(b));
}

TEST(IterationMapTest, PgmWriter) {
  std::vector<std::uint8_t> img(16, 128);
  std::string path = ::testing::TempDir() + "/hs_test.pgm";
  ASSERT_TRUE(write_pgm(path, img, 4, 4).ok());
  EXPECT_FALSE(write_pgm(path, img, 5, 4).ok());  // size mismatch
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char hdr[3] = {};
  ASSERT_EQ(std::fread(hdr, 1, 2, f), 2u);
  std::fclose(f);
  EXPECT_EQ(hdr[0], 'P');
  EXPECT_EQ(hdr[1], '5');
  std::remove(path.c_str());
}

// ---- modeled runners ------------------------------------------------------------------

class ModeledTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MandelParams p;
    p.dim = 256;       // scaled workload: same shape, fast tests
    p.niter = 50000;   // deep enough that kernels dominate host overheads
    map_ = new IterationMap(IterationMap::compute(p));
  }
  static void TearDownTestSuite() {
    delete map_;
    map_ = nullptr;
  }

  static ModeledConfig cfg() {
    ModeledConfig c;
    c.batch_lines = 32;
    return c;
  }

  static const IterationMap& map() { return *map_; }

 private:
  static IterationMap* map_;
};

IterationMap* ModeledTest::map_ = nullptr;

TEST_F(ModeledTest, AllVariantsProduceIdenticalImages) {
  auto c = cfg();
  RunResult seq = run_sequential(map(), c);
  EXPECT_NE(seq.checksum, 0u);

  for (CpuModel m : {CpuModel::kSpar, CpuModel::kTbb, CpuModel::kFastFlow}) {
    EXPECT_EQ(run_cpu_pipeline(map(), c, m).checksum, seq.checksum)
        << cpu_model_name(m);
  }
  for (GpuApi api : {GpuApi::kCuda, GpuApi::kOpenCl}) {
    for (GpuMode mode :
         {GpuMode::kPerLine1D, GpuMode::kPerLine2D, GpuMode::kBatched}) {
      EXPECT_EQ(run_gpu_single_thread(map(), c, api, mode).checksum,
                seq.checksum);
    }
    EXPECT_EQ(run_combined(map(), c, CpuModel::kSpar, api).checksum,
              seq.checksum);
  }
  auto c2 = cfg();
  c2.devices = 2;
  c2.buffers_per_gpu = 2;
  EXPECT_EQ(run_gpu_single_thread(map(), c2, GpuApi::kCuda,
                                  GpuMode::kBatched).checksum,
            seq.checksum);
  EXPECT_EQ(run_combined(map(), c2, CpuModel::kTbb, GpuApi::kCuda).checksum,
            seq.checksum);
}

TEST_F(ModeledTest, CpuPipelineScalesWithWorkers) {
  auto seq = run_sequential(map(), cfg());
  auto c = cfg();
  c.cpu_workers = 19;
  auto par = run_cpu_pipeline(map(), c, CpuModel::kFastFlow);
  double speedup = seq.modeled_seconds / par.modeled_seconds;
  // The paper reports 17x with 20 threads; accept a broad band.
  EXPECT_GT(speedup, 8.0);
  EXPECT_LT(speedup, 20.0);
}

TEST_F(ModeledTest, Fig1LadderOrdering) {
  // A 256-wide line yields only 8 warps in 1D mode; on 30 SMs every
  // per-line kernel is one-warp-per-SM regardless of geometry, hiding the
  // 2D penalty that Fig. 1 shows at dim=2000 (63 warps). Shrinking the
  // test device to 4 SMs restores the paper's warps-per-SM ratios.
  auto c = cfg();
  c.device_spec.sm_count = 4;
  auto seq = run_sequential(map(), c);
  auto naive = run_gpu_single_thread(map(), c, GpuApi::kCuda,
                                     GpuMode::kPerLine1D);
  auto twod = run_gpu_single_thread(map(), c, GpuApi::kCuda,
                                    GpuMode::kPerLine2D);
  auto batched = run_gpu_single_thread(map(), c, GpuApi::kCuda,
                                       GpuMode::kBatched);
  auto c2 = cfg();
  c2.buffers_per_gpu = 2;
  auto overlap = run_gpu_single_thread(map(), c2, GpuApi::kCuda,
                                       GpuMode::kBatched);
  auto c4 = cfg();
  c4.buffers_per_gpu = 4;
  auto buf4 = run_gpu_single_thread(map(), c4, GpuApi::kCuda,
                                    GpuMode::kBatched);
  auto cg = cfg();
  cg.devices = 2;
  cg.buffers_per_gpu = 2;
  auto dual = run_gpu_single_thread(map(), cg, GpuApi::kCuda,
                                    GpuMode::kBatched);

  // Fig. 1's ordering: 2D < naive 1D < batched < batched+overlap <= 4buf
  // < dual-GPU. (The absolute ratios are calibrated at paper scale; here
  // we assert the ordering only.)
  EXPECT_GT(twod.modeled_seconds, naive.modeled_seconds);
  EXPECT_GT(naive.modeled_seconds, batched.modeled_seconds);
  EXPECT_GT(batched.modeled_seconds, overlap.modeled_seconds);
  EXPECT_GE(overlap.modeled_seconds, buf4.modeled_seconds * 0.999);
  EXPECT_GT(buf4.modeled_seconds, dual.modeled_seconds);
  // And the naive version is still a (modest) speedup over sequential.
  EXPECT_LT(naive.modeled_seconds, seq.modeled_seconds);
  // Launch accounting: per-line launches dim kernels, batched dim/32.
  EXPECT_EQ(naive.kernel_launches, 256u);
  EXPECT_EQ(batched.kernel_launches, 8u);
}

TEST_F(ModeledTest, CombinedBeatsSingleThreadWithTwoGpus) {
  // Fig. 4: with two GPUs, a single host thread cannot keep both busy;
  // the multicore+GPU versions win.
  auto c = cfg();
  c.devices = 2;
  c.buffers_per_gpu = 2;
  auto single = run_gpu_single_thread(map(), c, GpuApi::kCuda,
                                      GpuMode::kBatched);
  auto combined = run_combined(map(), c, CpuModel::kSpar, GpuApi::kCuda);
  EXPECT_LT(combined.modeled_seconds, single.modeled_seconds * 1.05);
}

TEST_F(ModeledTest, CudaAndOpenClAreClose) {
  auto c = cfg();
  auto cuda = run_gpu_single_thread(map(), c, GpuApi::kCuda,
                                    GpuMode::kBatched);
  auto ocl = run_gpu_single_thread(map(), c, GpuApi::kOpenCl,
                                   GpuMode::kBatched);
  EXPECT_NEAR(cuda.modeled_seconds / ocl.modeled_seconds, 1.0, 0.1);
}

TEST_F(ModeledTest, TracePathDumpsChromeTrace) {
  auto c = cfg();
  c.trace_path = ::testing::TempDir() + "/hs_modeled_trace.json";
  auto r = run_gpu_single_thread(map(), c, GpuApi::kCuda, GpuMode::kBatched);
  EXPECT_NE(r.checksum, 0u);
  std::FILE* f = std::fopen(c.trace_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  EXPECT_GT(size, 1000);  // tracks + one event per op
  std::remove(c.trace_path.c_str());
}

TEST_F(ModeledTest, GpuUtilizationReported) {
  auto c = cfg();
  c.buffers_per_gpu = 4;
  auto r = run_gpu_single_thread(map(), c, GpuApi::kCuda, GpuMode::kBatched);
  EXPECT_GT(r.gpu_compute_utilization, 0.3);
  EXPECT_LE(r.gpu_compute_utilization, 1.0);
}

TEST_F(ModeledTest, TbbTokenCapMatters) {
  // Starving the pipeline of tokens (fewer than workers) throttles it.
  auto c = cfg();
  c.cpu_workers = 16;
  c.tbb_tokens = 2;
  auto starved = run_cpu_pipeline(map(), c, CpuModel::kTbb);
  c.tbb_tokens = 38;
  auto tuned = run_cpu_pipeline(map(), c, CpuModel::kTbb);
  EXPECT_GT(starved.modeled_seconds, tuned.modeled_seconds * 1.5);
}

}  // namespace
}  // namespace hs::mandel
