// Unit tests for the cluster layer: topology parsing/validation, fabric
// link contention against analytic oracles, content-hash sharded dup
// lookup, stage placement, and the load-bearing 1-node guarantee — the
// cluster runners reproduce the single-host modeled numbers bit for bit.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cluster/fabric.hpp"
#include "cluster/makespan.hpp"
#include "cluster/modeled.hpp"
#include "cluster/shard.hpp"
#include "datagen/corpus.hpp"
#include "dedup/dup_store.hpp"
#include "dedup/stages.hpp"
#include "telemetry/telemetry.hpp"

namespace hs::cluster {
namespace {

Topology two_node(double bw = 1e9, double lat = 1e-3, bool duplex = true) {
  std::string spec =
      "node a cores=20 gpus=1\n"
      "node b cores=20 gpus=1\n"
      "link a b bw=" + std::to_string(bw) + " lat=" + std::to_string(lat) +
      (duplex ? "\n" : " half\n");
  auto topo = parse_topology(spec);
  EXPECT_TRUE(topo.ok()) << topo.status().ToString();
  return topo.value();
}

// ---- Topology parsing and validation ---------------------------------

TEST(TopologyTest, ParsesSpecWithSuffixes) {
  auto topo = parse_topology(
      "# comment\n"
      "node a cores=16 gpus=2\n"
      "node b cores=8 gpus=0\n"
      "link a b bw=10GB lat=5us half\n");
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  ASSERT_EQ(topo.value().nodes.size(), 2u);
  EXPECT_EQ(topo.value().nodes[0].cores, 16);
  EXPECT_EQ(topo.value().nodes[0].gpus.size(), 2u);
  EXPECT_EQ(topo.value().nodes[1].gpus.size(), 0u);
  ASSERT_EQ(topo.value().links.size(), 1u);
  EXPECT_DOUBLE_EQ(topo.value().links[0].bandwidth_bytes_per_s, 1e10);
  EXPECT_DOUBLE_EQ(topo.value().links[0].latency_s, 5e-6);
  EXPECT_FALSE(topo.value().links[0].full_duplex);
  EXPECT_EQ(topo.value().node_index("b"), 1);
  EXPECT_EQ(topo.value().node_index("zz"), -1);
}

TEST(TopologyTest, RejectsZeroBandwidthLink) {
  auto topo = parse_topology(
      "node a\nnode b\nlink a b bw=0 lat=1us\n");
  ASSERT_FALSE(topo.ok());
  EXPECT_NE(topo.status().ToString().find("bandwidth"), std::string::npos)
      << topo.status().ToString();
}

TEST(TopologyTest, ParseErrorsCarryLineNumbers) {
  auto topo = parse_topology("node a\nnode b\nlink a b bw=zoo lat=1us\n");
  ASSERT_FALSE(topo.ok());
  EXPECT_NE(topo.status().ToString().find("line 3"), std::string::npos)
      << topo.status().ToString();
}

TEST(TopologyTest, RejectsDanglingNodeRef) {
  auto topo = parse_topology("node a\nlink a ghost bw=1GB lat=1us\n");
  ASSERT_FALSE(topo.ok());
  EXPECT_NE(topo.status().ToString().find("ghost"), std::string::npos);
}

TEST(TopologyTest, RejectsDuplicateLink) {
  auto topo = parse_topology(
      "node a\nnode b\n"
      "link a b bw=1GB lat=1us\n"
      "link b a bw=2GB lat=2us\n");
  ASSERT_FALSE(topo.ok());
}

TEST(TopologyTest, RejectsSelfLinkAndDuplicateNode) {
  EXPECT_FALSE(parse_topology("node a\nlink a a bw=1GB lat=1us\n").ok());
  EXPECT_FALSE(parse_topology("node a\nnode a\n").ok());
  EXPECT_FALSE(parse_topology("").ok());
  EXPECT_FALSE(parse_topology("node a cores=0\n").ok());
}

TEST(TopologyTest, RoutesChainMultiHop) {
  auto topo = parse_topology(
      "node a\nnode b\nnode c\n"
      "link a b bw=1GB lat=1us\n"
      "link b c bw=1GB lat=1us\n");
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  Routes r = compute_routes(topo.value());
  EXPECT_EQ(r.hops[0][2], 2);
  EXPECT_EQ(r.next[0][2], 1);  // a routes to c via b
  EXPECT_EQ(r.hops[0][0], 0);
}

TEST(TopologyTest, FullMeshIsOneHopEverywhere) {
  Topology topo = full_mesh(4, 1, gpusim::DeviceSpec::TitanXP(), 1e9, 1e-6);
  ASSERT_TRUE(topo.validate().ok());
  EXPECT_EQ(topo.links.size(), 6u);
  Routes r = compute_routes(topo);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      EXPECT_EQ(r.hops[a][b], a == b ? 0 : 1);
    }
  }
}

// ---- Fabric: link contention against analytic oracles ----------------

TEST(FabricTest, TransfersSerializeOnSharedLink) {
  // 1 MB at 1 GB/s = 1 ms per transfer + 1 ms latency = 2 ms each.
  Topology topo = two_node();
  des::Timeline tl;
  Fabric fabric(topo, &tl);
  des::TaskId t1 = fabric.send(0, 1, 1'000'000);
  des::TaskId t2 = fabric.send(0, 1, 1'000'000);
  EXPECT_DOUBLE_EQ(tl.finish_time(t1), 2e-3);
  EXPECT_DOUBLE_EQ(tl.finish_time(t2), 4e-3);  // queued behind t1
}

TEST(FabricTest, FullDuplexDirectionsDoNotContend) {
  Topology topo = two_node();
  des::Timeline tl;
  Fabric fabric(topo, &tl);
  fabric.send(0, 1, 1'000'000);
  des::TaskId back = fabric.send(1, 0, 1'000'000);
  EXPECT_DOUBLE_EQ(tl.finish_time(back), 2e-3);  // own engine, no queue
}

TEST(FabricTest, HalfDuplexDirectionsContend) {
  Topology topo = two_node(1e9, 1e-3, /*duplex=*/false);
  des::Timeline tl;
  Fabric fabric(topo, &tl);
  fabric.send(0, 1, 1'000'000);
  des::TaskId back = fabric.send(1, 0, 1'000'000);
  EXPECT_DOUBLE_EQ(tl.finish_time(back), 4e-3);  // shared engine
}

TEST(FabricTest, SelfSendIsNoOp) {
  Topology topo = two_node();
  des::Timeline tl;
  Fabric fabric(topo, &tl);
  des::TaskId dep = tl.submit(tl.add_engine("x"), 1.0);
  EXPECT_EQ(fabric.send(0, 0, 12345, dep), dep);
  EXPECT_EQ(fabric.total_bytes(), 0u);
  EXPECT_EQ(fabric.total_transfers(), 0u);
}

TEST(FabricTest, MultiHopChainsPerHopTasks) {
  auto topo = parse_topology(
      "node a\nnode b\nnode c\n"
      "link a b bw=1GB lat=1ms\n"
      "link b c bw=1GB lat=1ms\n");
  ASSERT_TRUE(topo.ok());
  des::Timeline tl;
  Fabric fabric(topo.value(), &tl);
  des::TaskId t = fabric.send(0, 2, 1'000'000);
  EXPECT_DOUBLE_EQ(tl.finish_time(t), 4e-3);  // two hops of 2 ms
  EXPECT_EQ(fabric.total_transfers(), 2u);    // one per hop
  EXPECT_EQ(fabric.total_bytes(), 2'000'000u);
}

TEST(FabricTest, CrossTrafficViaSubmitAtDelaysSend) {
  // Cross-traffic injected with submit_at occupies the link engine from
  // t=5ms; a dependent send arriving earlier queues behind it. The fabric
  // and raw submit_at share the engine, so the oracle is exact.
  Topology topo = two_node(1e9, 0.0);
  des::Timeline tl;
  Fabric fabric(topo, &tl);
  // Locate the forward engine by scheduling a probe first (engine ids are
  // not exposed; the probe also validates the engine naming).
  des::TaskId probe = fabric.send(0, 1, 1);  // ~instant
  (void)probe;
  // Occupy the a->b lane from 5 ms for 3 ms via the timeline's own API.
  // Engines registered by the fabric: "link.a>b" is engine index 0.
  des::TaskId cross = tl.submit_at(des::EngineId{0}, 3e-3, 5e-3, {}, "cross");
  EXPECT_DOUBLE_EQ(tl.start_time(cross), 5e-3);
  des::TaskId t = fabric.send(0, 1, 1'000'000);  // wants 1 ms, arrives now
  EXPECT_DOUBLE_EQ(tl.start_time(t), 8e-3);      // behind the cross traffic
  EXPECT_DOUBLE_EQ(tl.finish_time(t), 9e-3);
}

TEST(FabricTest, ExportsLinkCounters) {
  Topology topo = two_node();
  des::Timeline tl;
  Fabric fabric(topo, &tl);
  fabric.send(0, 1, 1000);
  fabric.send(1, 0, 500);
  telemetry::Registry reg;
  fabric.export_counters(reg, "cluster");
  EXPECT_EQ(reg.counter("cluster.link.a-b.bytes")->value(), 1500u);
  EXPECT_EQ(reg.counter("cluster.link.a-b.transfers")->value(), 2u);
  EXPECT_EQ(reg.counter("cluster.fabric.bytes")->value(), 1500u);
  auto stats = fabric.link_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "a-b");
  EXPECT_EQ(stats[0].bytes, 1500u);
  EXPECT_GT(stats[0].busy_seconds, 0.0);
}

// ---- Sharded dup index ------------------------------------------------

std::vector<dedup::Batch> hashed_batches() {
  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kParsecLike;
  spec.bytes = 256 * 1024;
  const std::vector<std::uint8_t> input = datagen::generate(spec);
  dedup::DedupConfig config;
  config.batch_size = 32 * 1024;
  config.rabin.mask = 0x3FF;
  std::vector<dedup::Batch> batches = dedup::fragment_input(input, config);
  for (dedup::Batch& b : batches) dedup::hash_blocks(b);
  return batches;
}

TEST(ShardedDupIndexTest, MatchesDupCacheForAnyNodeCount) {
  for (int nodes : {1, 2, 3, 4}) {
    std::vector<dedup::Batch> ref = hashed_batches();
    std::vector<dedup::Batch> sharded = hashed_batches();
    dedup::DupCache cache;
    ShardedDupIndex index(nodes);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      cache.check(ref[i]);
      index.check(sharded[i], /*origin_node=*/0);
      ASSERT_EQ(ref[i].blocks.size(), sharded[i].blocks.size());
      for (std::size_t k = 0; k < ref[i].blocks.size(); ++k) {
        EXPECT_EQ(ref[i].blocks[k].duplicate, sharded[i].blocks[k].duplicate)
            << "nodes=" << nodes << " batch=" << i << " block=" << k;
        EXPECT_EQ(ref[i].blocks[k].global_id, sharded[i].blocks[k].global_id);
      }
    }
    EXPECT_EQ(index.unique_count(), cache.unique_count());
    if (nodes == 1) {
      EXPECT_EQ(index.traffic().remote_lookups, 0u);
    } else {
      EXPECT_GT(index.traffic().remote_lookups, 0u);
    }
  }
}

TEST(ShardedDupIndexTest, OwnerFollowsLeadDigestByte) {
  ShardedDupIndex index(4);
  kernels::Sha1Digest d{};
  d[0] = 7;
  EXPECT_EQ(index.owner(d), 3);  // 7 % 4
  d[0] = 8;
  EXPECT_EQ(index.owner(d), 0);
}

// ---- Placement --------------------------------------------------------

StageGraph toy_graph() {
  StageGraph g;
  g.stages.push_back({"source", false, -1, 1});
  g.stages.push_back({"heavy", false, -1, 1});
  g.stages.push_back({"sink", false, -1, 1});
  g.edges.push_back({0, 1, 1'000'000});
  g.edges.push_back({1, 2, 1'000'000});
  return g;
}

TEST(PlacementTest, GreedyCoLocatesHeavyEdges) {
  Topology topo = full_mesh(2, 1, gpusim::DeviceSpec::TitanXP(), 1e9, 1e-6);
  StageGraph g = toy_graph();
  Placement greedy = place_greedy(g, topo);
  EXPECT_EQ(predicted_cross_bytes(g, greedy, topo), 0u);
  Placement rr = place_round_robin(g, topo);
  EXPECT_GT(predicted_cross_bytes(g, rr, topo), 0u);
}

TEST(PlacementTest, RespectsGpuFeasibilityAndPins) {
  auto topo = parse_topology(
      "node cpuonly cores=20 gpus=0\n"
      "node gpubox cores=20 gpus=2\n"
      "link cpuonly gpubox bw=1GB lat=1us\n");
  ASSERT_TRUE(topo.ok());
  StageGraph g;
  g.stages.push_back({"src", false, 0, 1});  // pinned to cpuonly
  g.stages.push_back({"k", true, -1, 1});    // needs a GPU
  g.edges.push_back({0, 1, 10});
  for (const Placement& p : {place_round_robin(g, topo.value()),
                             place_greedy(g, topo.value())}) {
    EXPECT_EQ(p.node_of[0], 0);
    EXPECT_EQ(p.node_of[1], 1);  // only gpubox is feasible
  }
}

TEST(PlacementTest, GreedyBeatsRoundRobinOnDedupGraph) {
  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kParsecLike;
  spec.bytes = 512 * 1024;
  const std::vector<std::uint8_t> input = datagen::generate(spec);
  dedup::Fig5Config cfg;
  cfg.dedup.batch_size = 64 * 1024;
  cfg.dedup.rabin.mask = 0x3FF;
  dedup::DedupTrace trace = dedup::build_trace(input, cfg.dedup);

  Topology topo = full_mesh(4, 2, gpusim::DeviceSpec::TitanXP(), 1e9, 1e-6);
  StageGraph g = dedup_stage_graph(trace, /*replicas=*/19, true);
  const std::uint64_t rr =
      predicted_cross_bytes(g, place_round_robin(g, topo), topo);
  const std::uint64_t greedy =
      predicted_cross_bytes(g, place_greedy(g, topo), topo);
  EXPECT_LT(greedy, rr);
}

// ---- Cluster runners: 1-node bit-equality and estimator pin ----------

dedup::DedupTrace small_trace(dedup::Fig5Config& cfg) {
  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kParsecLike;
  spec.bytes = 512 * 1024;
  const std::vector<std::uint8_t> input = datagen::generate(spec);
  cfg.replicas = 3;
  cfg.devices = 2;
  cfg.dedup.batch_size = 64 * 1024;
  cfg.dedup.rabin.mask = 0x3FF;
  return dedup::build_trace(input, cfg.dedup);
}

TEST(ClusterRunnerTest, OneNodeDedupBitIdentical) {
  dedup::Fig5Config cfg;
  dedup::DedupTrace trace = small_trace(cfg);
  ClusterRunOptions opts;
  opts.topo = full_mesh(1, 2, cfg.device_spec, 1e9, 1e-6);
  for (auto backend :
       {dedup::Fig5Backend::kSequential, dedup::Fig5Backend::kSparCpu,
        dedup::Fig5Backend::kSparCuda, dedup::Fig5Backend::kSparOcl}) {
    dedup::Fig5Result host = dedup::run_fig5(trace, cfg, backend);
    ClusterRunResult one = run_fig5_cluster(trace, cfg, backend, opts);
    EXPECT_EQ(host.label, one.label);
    EXPECT_EQ(host.modeled_seconds, one.modeled_seconds)  // exact, not near
        << host.label;
    EXPECT_EQ(host.throughput_mb_s, one.throughput_mb_s);
    EXPECT_EQ(host.kernel_launches, one.kernel_launches);
    EXPECT_EQ(one.fabric_bytes, 0u);
  }
}

TEST(ClusterRunnerTest, OneNodeMandelBitIdentical) {
  kernels::MandelParams p;
  p.dim = 64;
  p.niter = 500;
  mandel::IterationMap map = mandel::IterationMap::compute(p);
  mandel::ModeledConfig cfg;
  cfg.batch_lines = 8;
  cfg.devices = 2;
  cfg.combined_workers = 4;
  cfg.cpu_workers = 5;
  ClusterRunOptions opts;
  opts.topo = full_mesh(1, 2, cfg.device_spec, 1e9, 1e-6);

  mandel::RunResult seq = mandel::run_sequential(map, cfg);
  ClusterRunResult seq1 = run_mandel_sequential_cluster(map, cfg, opts);
  EXPECT_EQ(seq.modeled_seconds, seq1.modeled_seconds);
  EXPECT_EQ(seq.checksum, seq1.checksum);

  mandel::RunResult cpu =
      mandel::run_cpu_pipeline(map, cfg, mandel::CpuModel::kSpar);
  ClusterRunResult cpu1 = run_mandel_cpu_cluster(map, cfg, opts);
  EXPECT_EQ(cpu.modeled_seconds, cpu1.modeled_seconds);
  EXPECT_EQ(cpu.checksum, cpu1.checksum);

  mandel::RunResult comb = mandel::run_combined(
      map, cfg, mandel::CpuModel::kSpar, mandel::GpuApi::kCuda);
  ClusterRunResult comb1 =
      run_mandel_combined_cluster(map, cfg, mandel::GpuApi::kCuda, opts);
  EXPECT_EQ(comb.label, comb1.label);
  EXPECT_EQ(comb.modeled_seconds, comb1.modeled_seconds);
  EXPECT_EQ(comb.checksum, comb1.checksum);
  EXPECT_EQ(comb.kernel_launches, comb1.kernel_launches);
}

TEST(ClusterRunnerTest, EstimatorMatchesFabricBytesExactly) {
  dedup::Fig5Config cfg;
  dedup::DedupTrace trace = small_trace(cfg);
  for (int nodes : {2, 4}) {
    Topology topo = full_mesh(nodes, 2, cfg.device_spec, 1e9, 1e-6);
    StageGraph g = dedup_stage_graph(trace, cfg.replicas, true);
    for (Placement placement :
         {place_round_robin(g, topo), place_greedy(g, topo)}) {
      ClusterRunOptions opts;
      opts.topo = topo;
      opts.placement = placement;
      ClusterRunResult r = run_fig5_cluster(
          trace, cfg, dedup::Fig5Backend::kSparCuda, opts);
      EXPECT_EQ(r.fabric_bytes - r.shard_bytes,
                predicted_cross_bytes(g, placement, topo))
          << nodes << " nodes";
      EXPECT_GT(r.shard_bytes, 0u);
    }
  }
}

TEST(ClusterRunnerTest, MultiNodeRunIsSlowerThanFreeTraffic) {
  // Scheduling the same schedule over a slow fabric must cost time: the
  // 2-node run with microsecond links cannot beat itself with instant
  // links.
  dedup::Fig5Config cfg;
  dedup::DedupTrace trace = small_trace(cfg);
  StageGraph g = dedup_stage_graph(trace, cfg.replicas, true);
  auto run_at_bw = [&](double bw) {
    ClusterRunOptions opts;
    opts.topo = full_mesh(2, 2, cfg.device_spec, bw, 1e-6);
    opts.placement = place_round_robin(g, opts.topo);
    return run_fig5_cluster(trace, cfg, dedup::Fig5Backend::kSparCuda, opts);
  };
  ClusterRunResult slow = run_at_bw(1e8);   // 100 MB/s links
  ClusterRunResult fast = run_at_bw(1e12);  // ~free links
  EXPECT_GT(slow.modeled_seconds, fast.modeled_seconds);
}

TEST(ClusterRunnerTest, ExportsTraceAndTelemetry) {
  dedup::Fig5Config cfg;
  dedup::DedupTrace trace = small_trace(cfg);
  telemetry::Registry reg;
  ClusterRunOptions opts;
  opts.topo = full_mesh(2, 2, cfg.device_spec, 1e9, 1e-6);
  StageGraph g = dedup_stage_graph(trace, cfg.replicas, true);
  opts.placement = place_round_robin(g, opts.topo);
  opts.registry = &reg;
  opts.trace_path = ::testing::TempDir() + "/cluster_trace.json";
  ClusterRunResult r =
      run_fig5_cluster(trace, cfg, dedup::Fig5Backend::kSparCuda, opts);
  EXPECT_GT(r.fabric_bytes, 0u);
  EXPECT_EQ(reg.counter("cluster.fabric.bytes")->value(), r.fabric_bytes);
  std::ifstream in(opts.trace_path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("link.n0>n1"), std::string::npos)
      << "trace should contain one lane per link direction";
  std::remove(opts.trace_path.c_str());
}

// ---- Makespan estimator + placer -------------------------------------

/// Bench-shaped dedup workload (19 replicas, 2 kB blocks) on a 1 MB
/// corpus, with the stage graph's compute profiles measured during a
/// 1-node run — the estimator needs measured StageCompute to bound time.
struct ProfiledDedup {
  dedup::Fig5Config cfg;
  dedup::DedupTrace trace;
  StageGraph graph;
};

ProfiledDedup profiled_dedup() {
  ProfiledDedup d;
  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kParsecLike;
  spec.bytes = 2'000'000;
  const std::vector<std::uint8_t> input = datagen::generate(spec);
  d.cfg.replicas = 19;
  d.cfg.devices = 2;
  d.cfg.dedup.batch_size = 64 * 1024;
  d.cfg.dedup.rabin.mask = 0x7FF;
  d.trace = dedup::build_trace(input, d.cfg.dedup);
  d.graph = dedup_stage_graph(d.trace, d.cfg.replicas, true);
  ClusterRunOptions opts;
  opts.topo = full_mesh(1, 2, d.cfg.device_spec, 12.5e9, 2e-6);
  opts.profile = &d.graph;
  (void)run_fig5_cluster(d.trace, d.cfg, dedup::Fig5Backend::kSparCuda,
                         opts);
  return d;
}

TEST(MakespanTest, EstimatorPinsDesWithinFactorOnDedup) {
  ProfiledDedup d = profiled_dedup();
  for (int nodes : {1, 2, 4, 8}) {
    const Topology topo =
        full_mesh(nodes, 2, d.cfg.device_spec, 12.5e9, 2e-6);
    const MakespanEstimator est(d.graph, topo);
    for (const Placement& placement :
         {place_round_robin(d.graph, topo), place_greedy(d.graph, topo),
          place_makespan(d.graph, topo)}) {
      ClusterRunOptions opts;
      opts.topo = topo;
      opts.placement = placement;
      const ClusterRunResult r = run_fig5_cluster(
          d.trace, d.cfg, dedup::Fig5Backend::kSparCuda, opts);
      const double e = est.estimate(placement);
      EXPECT_LE(r.modeled_seconds, e * kEstimatorPinFactor)
          << nodes << " nodes";
      EXPECT_LE(e, r.modeled_seconds * kEstimatorLowerSlack)
          << nodes << " nodes";
    }
  }
}

TEST(MakespanTest, EstimatorPinsDesWithinFactorOnMandel) {
  kernels::MandelParams p;
  p.dim = 100;
  p.niter = 500;
  mandel::IterationMap map = mandel::IterationMap::compute(p);
  mandel::ModeledConfig cfg;
  cfg.batch_lines = 8;
  cfg.devices = 2;
  cfg.combined_workers = 4;
  StageGraph g =
      mandel_stage_graph(p.dim, cfg.batch_lines, cfg.combined_workers, true);
  {
    ClusterRunOptions opts;
    opts.topo = full_mesh(1, 2, cfg.device_spec, 12.5e9, 2e-6);
    opts.profile = &g;
    (void)run_mandel_combined_cluster(map, cfg, mandel::GpuApi::kCuda, opts);
  }
  for (int nodes : {1, 2, 4, 8}) {
    const Topology topo = full_mesh(nodes, 2, cfg.device_spec, 12.5e9, 2e-6);
    const MakespanEstimator est(g, topo);
    for (const Placement& placement :
         {place_round_robin(g, topo), place_greedy(g, topo),
          place_makespan(g, topo)}) {
      ClusterRunOptions opts;
      opts.topo = topo;
      opts.placement = placement;
      const ClusterRunResult r =
          run_mandel_combined_cluster(map, cfg, mandel::GpuApi::kCuda, opts);
      const double e = est.estimate(placement);
      EXPECT_LE(r.modeled_seconds, e * kEstimatorPinFactor)
          << nodes << " nodes";
      EXPECT_LE(e, r.modeled_seconds * kEstimatorLowerSlack)
          << nodes << " nodes";
    }
  }
}

TEST(MakespanTest, PlacerIsDeterministicAcrossRepeatedRuns) {
  ProfiledDedup d = profiled_dedup();
  for (int nodes : {2, 4, 8}) {
    const Topology topo =
        full_mesh(nodes, 2, d.cfg.device_spec, 12.5e9, 2e-6);
    const Placement first = place_makespan(d.graph, topo);
    for (int rep = 0; rep < 3; ++rep) {
      EXPECT_EQ(place_makespan(d.graph, topo).node_of, first.node_of)
          << nodes << " nodes, repeat " << rep;
    }
  }
}

TEST(MakespanTest, HeteroTopologyKeepsGpuStagesOffGpulessNodes) {
  ProfiledDedup d = profiled_dedup();
  auto topo_or = parse_topology(R"(
node n0 cores=20 gpus=2
node n1 cores=20 gpus=1
node n2 cores=20 gpus=0
link n0 n1 bw=12.5GB lat=2us
link n0 n2 bw=12.5GB lat=2us
link n1 n2 bw=12.5GB lat=2us
)");
  ASSERT_TRUE(topo_or.ok()) << topo_or.status().ToString();
  Topology topo = std::move(topo_or).value();
  for (NodeSpec& node : topo.nodes) {
    for (gpusim::DeviceSpec& gpu : node.gpus) gpu = d.cfg.device_spec;
  }
  for (const Placement& placement :
       {place_round_robin(d.graph, topo), place_greedy(d.graph, topo),
        place_makespan(d.graph, topo)}) {
    for (std::size_t i = 0; i < d.graph.stages.size(); ++i) {
      if (!d.graph.stages[i].needs_gpu) continue;
      const auto node = static_cast<std::size_t>(placement.node_of[i]);
      EXPECT_FALSE(topo.nodes[node].gpus.empty())
          << d.graph.stages[i].name << " placed on GPU-less "
          << topo.nodes[node].name;
    }
  }
}

// The PR-8 inversion: byte-greedy collapses the farm onto two nodes and
// loses to round-robin on modeled time at 8 nodes even though it wins on
// bytes. place_makespan must resolve it — no worse than either baseline,
// strictly better than greedy.
TEST(MakespanTest, ResolvesEightNodeDedupGreedyInversion) {
  ProfiledDedup d = profiled_dedup();
  const Topology topo = full_mesh(8, 2, d.cfg.device_spec, 12.5e9, 2e-6);
  auto des = [&](const Placement& placement) {
    ClusterRunOptions opts;
    opts.topo = topo;
    opts.placement = placement;
    return run_fig5_cluster(d.trace, d.cfg, dedup::Fig5Backend::kSparCuda,
                            opts)
        .modeled_seconds;
  };
  const double rr = des(place_round_robin(d.graph, topo));
  const double greedy = des(place_greedy(d.graph, topo));
  const double makespan = des(place_makespan(d.graph, topo));
  EXPECT_LT(rr, greedy) << "inversion precondition: greedy loses to RR";
  EXPECT_LT(makespan, greedy);
  EXPECT_LE(makespan, rr * kEstimatorLowerSlack);
}

}  // namespace
}  // namespace hs::cluster
