// Tests for hs::sched — the adaptive heterogeneous scheduler:
//  * DeviceLoadTracker selection (priming, EWMA ranking, stickiness,
//    stealing, exclusion, in-flight accounting across migrations);
//  * AimdBatchSizer (slow-start, regression back-off, rejection clamping,
//    convergence against a real gpusim memory-limited device);
//  * golden equivalence — the adaptive modeled runners and functional
//    pipelines must produce bit-identical output to their static
//    counterparts, including under injected device loss (the queued work
//    drains through the stealing path).
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "cudax/cudax.hpp"
#include "datagen/corpus.hpp"
#include "dedup/modeled.hpp"
#include "dedup/pipelines.hpp"
#include "gpusim/fault_plan.hpp"
#include "kernels/mandel.hpp"
#include "mandel/modeled.hpp"
#include "mandel/pipelines.hpp"
#include "sched/sched.hpp"

namespace hs {
namespace {

using sched::AimdBatchSizer;
using sched::AimdConfig;
using sched::DeviceLoadTracker;
using sched::SchedMode;

// ---- SchedMode parsing ------------------------------------------------------------

TEST(SchedModeTest, ParsesBothModesAndRejectsJunk) {
  auto s = sched::parse_sched_mode("static");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value(), SchedMode::kStatic);
  auto a = sched::parse_sched_mode("adaptive");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value(), SchedMode::kAdaptive);

  auto bad = sched::parse_sched_mode("fastest");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_STREQ(sched::to_string(SchedMode::kAdaptive), "adaptive");
  EXPECT_STREQ(sched::to_string(SchedMode::kStatic), "static");
}

// ---- DeviceLoadTracker ------------------------------------------------------------

TEST(DeviceLoadTrackerTest, PrimesEveryDeviceBeforeReusingOne) {
  // Unmeasured devices all score 0; the in-flight tie-break must spread the
  // first wave across devices instead of piling onto device 0.
  DeviceLoadTracker t(3);
  EXPECT_EQ(t.acquire(), 0);
  EXPECT_EQ(t.acquire(), 1);
  EXPECT_EQ(t.acquire(), 2);
  EXPECT_EQ(t.picks(), 3u);
}

TEST(DeviceLoadTrackerTest, RanksByExpectedWaitDeterministically) {
  DeviceLoadTracker t(2);
  t.release(t.acquire(), /*service_seconds=*/1.0);  // device 0: ewma 1.0
  t.release(t.acquire(), /*service_seconds=*/0.1);  // device 1: ewma 0.1
  // (0+1)*0.1 < (0+1)*1.0, repeatedly — releases keep the ranking stable.
  for (int i = 0; i < 4; ++i) {
    int d = t.acquire();
    EXPECT_EQ(d, 1) << "iteration " << i;
    t.release(d, 0.1);
  }
  // Load device 1 until its expected wait exceeds device 0's: it absorbs
  // 9 items ((9+1)*0.1 ties device 0's idle 1.0, and the in-flight
  // tie-break then prefers the idle device), so the 10th spills over.
  EXPECT_EQ(t.acquire(), 1);  // (1+1)*0.1 = 0.2 < 1.0
  for (int i = 0; i < 9; ++i) t.acquire();
  EXPECT_EQ(t.snapshot(0).inflight + t.snapshot(1).inflight, 10);
  EXPECT_GT(t.snapshot(0).inflight, 0);  // eventually spilled onto device 0
}

TEST(DeviceLoadTrackerTest, PreferringSticksUntilAnIdleDeviceCanSteal) {
  DeviceLoadTracker t(2);
  // Worker's first item lands on its preferred device.
  EXPECT_EQ(t.acquire_preferring(0), 0);
  // Device 0 now busy, device 1 idle: the next preferring(0) acquisition is
  // stolen by the idle device.
  EXPECT_EQ(t.acquire_preferring(0), 1);
  EXPECT_EQ(t.steals(), 1u);
  // Both busy: stickiness wins again.
  EXPECT_EQ(t.acquire_preferring(0), 0);
  EXPECT_EQ(t.steals(), 1u);
}

TEST(DeviceLoadTrackerTest, ExclusionForcesMigrationAndDrains) {
  DeviceLoadTracker t(2);
  EXPECT_EQ(t.acquire_preferring(0), 0);
  t.exclude(0);
  EXPECT_TRUE(t.is_excluded(0));
  // A worker bound to the lost device is routed to the survivor; the steal
  // counter is untouched (a forced migration is not a steal).
  EXPECT_EQ(t.acquire_preferring(0), 1);
  EXPECT_EQ(t.steals(), 0u);
  t.exclude(1);
  EXPECT_EQ(t.acquire_preferring(0), -1);  // nothing left
  EXPECT_EQ(t.acquire(), -1);
}

TEST(DeviceLoadTrackerTest, TransferAndAbandonKeepInflightConsistent) {
  DeviceLoadTracker t(2);
  int d = t.acquire();  // 0
  EXPECT_EQ(t.snapshot(0).inflight, 1);
  t.transfer(d, 1);  // item migrated mid-service
  EXPECT_EQ(t.snapshot(0).inflight, 0);
  EXPECT_EQ(t.snapshot(1).inflight, 1);
  t.abandon(1);  // attempt failed: no EWMA observation
  EXPECT_EQ(t.snapshot(1).inflight, 0);
  EXPECT_EQ(t.snapshot(1).completed, 0u);
  EXPECT_EQ(t.snapshot(1).ewma_seconds, 0.0);
}

// ---- AimdBatchSizer ---------------------------------------------------------------

TEST(AimdBatchSizerTest, SlowStartDoublesUntilTheCurveFlattens) {
  AimdConfig cfg;
  cfg.initial = 1;
  cfg.max_size = 1024;
  AimdBatchSizer sizer(cfg);
  // Per-element cost halves with each doubling (launch overhead
  // amortizing), then flattens: the sizer must stop at the break-even, the
  // behavior that rediscovers the paper's 32-line constant.
  double cost = 1.0;
  std::vector<std::uint64_t> sizes;
  while (!sizer.converged()) {
    sizes.push_back(sizer.current());
    sizer.on_success(cost);
    cost = sizes.size() < 5 ? cost / 2 : cost;  // flat from the 6th probe
  }
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{1, 2, 4, 8, 16, 32}));
  EXPECT_EQ(sizer.current(), 32u);
  EXPECT_EQ(sizer.grows(), 5u);
}

TEST(AimdBatchSizerTest, RegressionHoldsByDefaultAndBacksOffWhenEnabled) {
  // Cost sequence: improves to size 4, then the doubling to 8 regresses.
  auto run = [](bool backoff) {
    AimdConfig cfg;
    cfg.initial = 1;
    cfg.backoff_on_regress = backoff;
    AimdBatchSizer sizer(cfg);
    sizer.on_success(1.0);   // 1 -> 2
    sizer.on_success(0.5);   // 2 -> 4
    sizer.on_success(0.25);  // 4 -> 8
    sizer.on_success(0.4);   // regression at 8
    return sizer;
  };
  AimdBatchSizer held = run(false);
  EXPECT_TRUE(held.converged());
  EXPECT_EQ(held.current(), 8u);  // heterogeneous elements: hold
  AimdBatchSizer backed = run(true);
  EXPECT_TRUE(backed.converged());
  EXPECT_EQ(backed.current(), 4u);  // homogeneous elements: back off
  EXPECT_EQ(backed.shrinks(), 1u);
}

TEST(AimdBatchSizerTest, RejectHalvesClampsLimitAndTerminates) {
  AimdConfig cfg;
  cfg.initial = 64;
  cfg.max_size = 1024;
  cfg.add_step = 4;
  AimdBatchSizer sizer(cfg);
  sizer.on_reject();
  EXPECT_EQ(sizer.current(), 32u);
  EXPECT_EQ(sizer.limit(), 60u);  // strictly below the rejected size
  EXPECT_FALSE(sizer.converged());
  // Additive probing grows toward the limit...
  sizer.on_success(1.0);
  EXPECT_EQ(sizer.current(), 36u);
  // ...and a second rejection keeps shrinking the limit, so the
  // grow/reject cycle cannot loop forever.
  sizer.on_reject();
  EXPECT_EQ(sizer.limit(), 32u);
  std::uint64_t before = sizer.limit();
  for (int i = 0; i < 100 && !sizer.converged(); ++i) {
    sizer.on_success(1.0);
    if (sizer.current() >= before) sizer.on_reject();
  }
  EXPECT_TRUE(sizer.converged());
  EXPECT_LT(sizer.current(), before);
}

TEST(AimdBatchSizerTest, ConvergesBelowARealDeviceMemoryCeiling) {
  // Drive the sizer with genuine gpusim allocations on the 1 MiB TestTiny
  // device — the same OUT_OF_MEMORY accounting the shims surface — and an
  // amortization-shaped cost curve. No hardcoded fallback size anywhere:
  // the ceiling emerges from Device::malloc.
  auto machine = gpusim::Machine::Create(1, gpusim::DeviceSpec::TestTiny());
  gpusim::Device& dev = machine->device(0);
  const std::uint64_t concurrency = 4;  // replicas x mem-spaces stand-in

  AimdConfig cfg;
  cfg.min_size = 1024;
  cfg.initial = 4096;
  cfg.add_step = 4096;
  cfg.max_size = 64 * 1024 * 1024;
  cfg.backoff_on_regress = true;
  AimdBatchSizer sizer(cfg);

  int iters = 0;
  while (!sizer.converged() && iters++ < 64) {
    const std::uint64_t batch = sizer.current();
    std::vector<void*> bufs;
    bool fits = true;
    for (std::uint64_t i = 0; i < concurrency; ++i) {
      auto r = dev.malloc(batch);
      if (!r.ok()) {
        EXPECT_EQ(r.status().code(), ErrorCode::kOutOfMemory);
        fits = false;
        break;
      }
      bufs.push_back(r.value());
    }
    for (void* p : bufs) ASSERT_TRUE(dev.free(p).ok());
    if (fits) {
      sizer.on_success(1.0 / static_cast<double>(batch) + 1e-9);
    } else {
      sizer.on_reject();
    }
  }
  EXPECT_TRUE(sizer.converged());
  EXPECT_GE(sizer.rejects(), 1u);
  // The converged working set genuinely fits on the device.
  EXPECT_LE(sizer.current() * concurrency, dev.memory_capacity());
  EXPECT_GT(sizer.current() * concurrency, dev.memory_capacity() / 4);
}

// ---- golden equivalence: modeled mandel -------------------------------------------

class SchedModeledTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kernels::MandelParams p;
    p.dim = 128;
    p.niter = 20000;
    map_ = new mandel::IterationMap(mandel::IterationMap::compute(p));
  }
  static void TearDownTestSuite() {
    delete map_;
    map_ = nullptr;
  }
  static const mandel::IterationMap& map() { return *map_; }

 private:
  static mandel::IterationMap* map_;
};

mandel::IterationMap* SchedModeledTest::map_ = nullptr;

TEST_F(SchedModeledTest, AdaptiveModeledRunsMatchSequentialChecksum) {
  mandel::ModeledConfig c;
  c.batch_lines = 32;
  auto seq = run_sequential(map(), c);
  ASSERT_NE(seq.checksum, 0u);

  for (int devices : {1, 2}) {
    for (int buffers : {1, 2}) {
      mandel::ModeledConfig a = c;
      a.sched = SchedMode::kAdaptive;
      a.devices = devices;
      a.buffers_per_gpu = buffers;
      for (mandel::GpuApi api :
           {mandel::GpuApi::kCuda, mandel::GpuApi::kOpenCl}) {
        auto single = run_gpu_single_thread(map(), a, api,
                                            mandel::GpuMode::kBatched);
        EXPECT_EQ(single.checksum, seq.checksum);
        EXPECT_GT(single.adaptive_batch_lines, 0u);
        auto combined =
            run_combined(map(), a, mandel::CpuModel::kSpar, api);
        EXPECT_EQ(combined.checksum, seq.checksum);
      }
    }
  }
}

TEST_F(SchedModeledTest, StaticConfigIsUnchangedByDefault) {
  // A default-constructed config must keep the historical scheduler, so
  // existing callers are bit-for-bit unaffected.
  EXPECT_EQ(mandel::ModeledConfig{}.sched, SchedMode::kStatic);
  EXPECT_EQ(dedup::Fig5Config{}.sched, SchedMode::kStatic);
}

// ---- golden equivalence: modeled dedup --------------------------------------------

TEST(SchedFig5Test, AdaptiveSparGpuMatchesStaticWorkAndLabels) {
  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kParsecLike;
  spec.bytes = 512 * 1024;
  const auto input = datagen::generate(spec);
  dedup::Fig5Config cfg;
  cfg.replicas = 4;
  cfg.dedup.batch_size = 64 * 1024;
  cfg.dedup.rabin.mask = 0x7FF;
  const auto trace = dedup::build_trace(input, cfg.dedup);

  dedup::Fig5Config adaptive = cfg;
  adaptive.sched = SchedMode::kAdaptive;
  adaptive.devices = 2;
  dedup::Fig5Config statique = cfg;
  statique.devices = 2;
  for (auto backend :
       {dedup::Fig5Backend::kSparCuda, dedup::Fig5Backend::kSparOcl}) {
    auto s = run_fig5(trace, statique, backend);
    auto a = run_fig5(trace, adaptive, backend);
    // Same kernels launched, only the placement changed; least-loaded
    // dispatch must not lose to round-robin on a homogeneous machine.
    EXPECT_EQ(a.kernel_launches, s.kernel_launches);
    EXPECT_NE(a.label.find(" adaptive"), std::string::npos);
    EXPECT_LE(a.modeled_seconds, s.modeled_seconds * 1.01);
  }
}

// ---- golden equivalence: functional pipelines -------------------------------------

TEST(SchedFunctionalTest, TrackedMandelRenderIsBitExact) {
  kernels::MandelParams params;
  params.dim = 64;
  params.niter = 100;
  const auto reference = mandel::render_sequential(params);

  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(machine.get());
  DeviceLoadTracker tracker(machine->device_count());
  auto r = mandel::render_spar_cuda(params, 4, *machine, nullptr, {},
                                    &tracker);
  cudax::unbind_machine();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), reference);
  // Every line went through the tracker and completed.
  EXPECT_EQ(tracker.picks(), static_cast<std::uint64_t>(params.dim));
  EXPECT_EQ(tracker.snapshot(0).completed + tracker.snapshot(1).completed,
            static_cast<std::uint64_t>(params.dim));
  EXPECT_EQ(tracker.snapshot(0).inflight, 0);
  EXPECT_EQ(tracker.snapshot(1).inflight, 0);
  // Both devices did real work (least-loaded spreads the first wave).
  EXPECT_GT(machine->device(0).counters().kernels_launched, 0u);
  EXPECT_GT(machine->device(1).counters().kernels_launched, 0u);
}

TEST(SchedFunctionalTest, DeviceLossDrainsThroughSurvivorBitExactly) {
  kernels::MandelParams params;
  params.dim = 64;
  params.niter = 100;
  const auto reference = mandel::render_sequential(params);

  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  gpusim::FaultPlan plan;
  plan.lose_device_at(10);
  machine->device(0).set_fault_plan(std::move(plan));
  cudax::bind_machine(machine.get());
  RetryStats stats;
  DeviceLoadTracker tracker(machine->device_count());
  auto r = mandel::render_spar_cuda(params, 4, *machine, &stats, {},
                                    &tracker);
  cudax::unbind_machine();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), reference);
  EXPECT_TRUE(machine->device(0).lost());
  // The tracker excluded the lost device; its queued lines drained through
  // the survivor.
  EXPECT_TRUE(tracker.is_excluded(0));
  EXPECT_FALSE(tracker.is_excluded(1));
  EXPECT_GT(machine->device(1).counters().kernels_launched, 0u);
  EXPECT_EQ(tracker.snapshot(0).inflight, 0);
  EXPECT_EQ(tracker.snapshot(1).inflight, 0);
}

TEST(SchedFunctionalTest, FaultsAndAdaptiveSchedWithAimdProbingStayBitExact) {
  // The combined regime the serve soak runs in: fault injection (including
  // a device loss) and the adaptive scheduler active at the same time,
  // while an AIMD batch sizer is still probing batch sizes — every probe
  // round must drain through the survivors and stay bit-exact.
  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kParsecLike;
  spec.bytes = 256 * 1024;
  const auto input = datagen::generate(spec);

  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  {
    gpusim::FaultPlan plan =
        gpusim::FaultPlan::Parse("seed=5,launch.p=0.1,lost.nth=30").value();
    machine->device(0).set_fault_plan(std::move(plan));
  }
  {
    gpusim::FaultPlan plan =
        gpusim::FaultPlan::Parse("seed=6,h2d.p=0.05").value();
    machine->device(1).set_fault_plan(std::move(plan));
  }
  cudax::bind_machine(machine.get());

  AimdConfig cfg;
  cfg.initial = 1;
  cfg.max_size = 8;  // batch_size = current() * 16 kB, so 16 kB .. 128 kB
  AimdBatchSizer sizer(cfg);
  DeviceLoadTracker tracker(machine->device_count());
  RetryStats stats;
  int rounds = 0;
  while (!sizer.converged() && rounds < 8) {
    dedup::DedupConfig config;
    config.batch_size = static_cast<std::uint32_t>(sizer.current()) * 16 * 1024;
    auto reference = dedup::archive_sequential(input, config);
    ASSERT_TRUE(reference.ok());
    const auto t0 = std::chrono::steady_clock::now();
    auto archive = dedup::archive_spar_cuda(input, config, 4, *machine,
                                            &stats, {}, &tracker);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    ASSERT_TRUE(archive.ok()) << "round " << rounds << ": "
                              << archive.status().ToString();
    EXPECT_EQ(archive.value(), reference.value()) << "round " << rounds;
    sizer.on_success(dt.count() / static_cast<double>(sizer.current()));
    ++rounds;
  }
  cudax::unbind_machine();

  // The sizer really probed (several observations, at least one doubling)
  // while the injected loss forced a migration that stuck for every
  // subsequent round.
  EXPECT_GT(rounds, 1);
  EXPECT_EQ(sizer.observations(), static_cast<std::uint64_t>(rounds));
  EXPECT_GT(sizer.grows(), 0u);
  EXPECT_TRUE(machine->device(0).lost());
  EXPECT_TRUE(tracker.is_excluded(0));
  EXPECT_FALSE(tracker.is_excluded(1));
  EXPECT_GT(stats.retries.load(), 0u);
  EXPECT_GT(machine->device(1).counters().kernels_launched, 0u);
  EXPECT_EQ(tracker.snapshot(0).inflight, 0);
  EXPECT_EQ(tracker.snapshot(1).inflight, 0);
}

TEST(SchedFunctionalTest, TrackedDedupArchiveIsBitExact) {
  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kParsecLike;
  spec.bytes = 256 * 1024;
  const auto input = datagen::generate(spec);
  dedup::DedupConfig config;
  config.batch_size = 32 * 1024;
  auto reference = dedup::archive_sequential(input, config);
  ASSERT_TRUE(reference.ok());

  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(machine.get());
  DeviceLoadTracker tracker(machine->device_count());
  auto archive = dedup::archive_spar_cuda(input, config, 4, *machine,
                                          nullptr, {}, &tracker);
  cudax::unbind_machine();
  ASSERT_TRUE(archive.ok()) << archive.status().ToString();
  EXPECT_EQ(archive.value(), reference.value());
  EXPECT_GT(tracker.picks(), 0u);
  EXPECT_EQ(tracker.snapshot(0).inflight, 0);
  EXPECT_EQ(tracker.snapshot(1).inflight, 0);
}

}  // namespace
}  // namespace hs
