// Tests for the Dedup application: stage correctness, container format
// (including corruption handling), cross-variant archive equivalence,
// end-to-end roundtrips on all three corpora, and Fig. 5 model shape.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "cudax/cudax.hpp"
#include "datagen/corpus.hpp"
#include "dedup/container.hpp"
#include "dedup/modeled.hpp"
#include "dedup/pipelines.hpp"
#include "dedup/stages.hpp"

namespace hs::dedup {
namespace {

DedupConfig test_config() {
  DedupConfig cfg;
  cfg.batch_size = 64 * 1024;
  cfg.rabin.min_block = 256;
  cfg.rabin.max_block = 8192;
  cfg.rabin.mask = 0x3FF;  // ~1 kB blocks
  cfg.lzss.window_size = 128;
  return cfg;
}

std::vector<std::uint8_t> test_input(std::size_t bytes = 300 * 1024) {
  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kParsecLike;
  spec.bytes = bytes;
  spec.seed = 123;
  return datagen::generate(spec);
}

// ---- stages -----------------------------------------------------------------------

TEST(StagesTest, FragmentationCoversInputExactly) {
  auto input = test_input();
  DedupConfig cfg = test_config();
  auto batches = fragment_input(input, cfg);
  ASSERT_GT(batches.size(), 1u);
  std::size_t total = 0;
  for (std::size_t i = 0; i < batches.size(); ++i) {
    EXPECT_EQ(batches[i].index, i);
    EXPECT_LE(batches[i].data.size(), cfg.batch_size);
    total += batches[i].data.size();
    // Blocks tile the batch.
    std::uint32_t pos = 0;
    for (const BlockInfo& block : batches[i].blocks) {
      EXPECT_EQ(block.start, pos);
      pos += block.len;
    }
    EXPECT_EQ(pos, batches[i].data.size());
  }
  EXPECT_EQ(total, input.size());
}

TEST(StagesTest, HashMatchesDirectSha1) {
  auto input = test_input(64 * 1024);
  DedupConfig cfg = test_config();
  auto batches = fragment_input(input, cfg);
  Batch& batch = batches[0];
  hash_blocks(batch);
  const BlockInfo& block = batch.blocks[0];
  auto direct = kernels::Sha1::hash(std::span<const std::uint8_t>(
      batch.data.data() + block.start, block.len));
  EXPECT_EQ(block.digest, direct);
}

TEST(StagesTest, DupCacheAssignsStableIds) {
  DupCache cache;
  auto input = test_input();
  DedupConfig cfg = test_config();
  auto batches = fragment_input(input, cfg);
  std::uint64_t max_id = 0;
  std::uint64_t uniques = 0;
  for (Batch& batch : batches) {
    hash_blocks(batch);
    cache.check(batch);
    for (const BlockInfo& block : batch.blocks) {
      if (block.duplicate) {
        EXPECT_LT(block.global_id, uniques)
            << "duplicate must reference an earlier unique";
      } else {
        EXPECT_EQ(block.global_id, uniques);
        ++uniques;
      }
      max_id = std::max(max_id, block.global_id);
    }
  }
  EXPECT_EQ(cache.unique_count(), uniques);
  EXPECT_GT(uniques, 0u);
  EXPECT_LT(max_id, uniques);
}

TEST(StagesTest, ParsecLikeInputHasDuplicates) {
  DupCache cache;
  auto input = test_input();
  auto batches = fragment_input(input, test_config());
  std::uint64_t dups = 0, total = 0;
  for (Batch& batch : batches) {
    hash_blocks(batch);
    cache.check(batch);
    for (const BlockInfo& b : batch.blocks) {
      dups += b.duplicate ? 1 : 0;
      ++total;
    }
  }
  EXPECT_GT(dups, total / 20);  // the corpus is built to contain duplicates
}

TEST(StagesTest, CompressFromMatchesEqualsDirect) {
  auto input = test_input(128 * 1024);
  DedupConfig cfg = test_config();
  auto batches = fragment_input(input, cfg);
  DupCache cache;
  for (Batch& batch : batches) {
    hash_blocks(batch);
    cache.check(batch);
  }
  Batch direct = batches[0];
  Batch via_gpu_path = batches[0];
  compress_blocks_cpu(direct, cfg);
  find_batch_matches(via_gpu_path, cfg);
  compress_blocks_from_matches(via_gpu_path, cfg);
  ASSERT_EQ(direct.blocks.size(), via_gpu_path.blocks.size());
  for (std::size_t k = 0; k < direct.blocks.size(); ++k) {
    EXPECT_EQ(direct.blocks[k].compressed, via_gpu_path.blocks[k].compressed)
        << "block " << k;
  }
}

TEST(StagesTest, CostAccountingIsPositiveAndConsistent) {
  auto input = test_input(64 * 1024);
  DedupConfig cfg = test_config();
  auto batches = fragment_input(input, cfg);
  Batch& b = batches[0];
  EXPECT_GT(batch_sha1_rounds(b), b.blocks.size());  // > 1 round per block
  EXPECT_GT(batch_match_cost(b, cfg), b.data.size());  // >= 1 unit per byte
  hash_blocks(b);
  DupCache cache;
  cache.check(b);
  compress_blocks_cpu(b, cfg);
  EXPECT_GT(batch_output_bytes(b), 0u);
}

// Parameterized fragmentation sweep: exact coverage for any batch size.
class FragmentSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FragmentSweep, BatchesAndBlocksTileTheInput) {
  auto input = test_input(150 * 1024 + 37);  // deliberately unaligned
  DedupConfig cfg = test_config();
  cfg.batch_size = GetParam();
  auto batches = fragment_input(input, cfg);
  std::size_t total = 0;
  for (const Batch& b : batches) {
    EXPECT_LE(b.data.size(), cfg.batch_size);
    std::uint32_t pos = 0;
    for (const BlockInfo& block : b.blocks) {
      EXPECT_EQ(block.start, pos);
      pos += block.len;
    }
    EXPECT_EQ(pos, b.data.size());
    total += b.data.size();
  }
  EXPECT_EQ(total, input.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, FragmentSweep,
                         ::testing::Values(4096u, 16384u, 65536u, 262144u,
                                           1048576u));

TEST(StagesTest, VariableFragmentationCoversInputWithVaryingBatches) {
  auto input = test_input(512 * 1024);
  DedupConfig cfg = test_config();
  cfg.batch_size = 64 * 1024;
  auto batches = fragment_input_variable(input, cfg);
  ASSERT_GT(batches.size(), 2u);
  std::size_t total = 0;
  std::size_t min_size = input.size(), max_size = 0;
  for (std::size_t i = 0; i < batches.size(); ++i) {
    EXPECT_EQ(batches[i].index, i);
    total += batches[i].data.size();
    min_size = std::min(min_size, batches[i].data.size());
    max_size = std::max(max_size, batches[i].data.size());
  }
  EXPECT_EQ(total, input.size());
  // Content-defined boundaries: sizes genuinely vary.
  EXPECT_GT(max_size, min_size);
}

// ---- container ----------------------------------------------------------------------

TEST(ContainerTest, RoundtripSequential) {
  auto input = test_input();
  DedupConfig cfg = test_config();
  auto archive = archive_sequential(input, cfg);
  ASSERT_TRUE(archive.ok()) << archive.status().ToString();
  EXPECT_LT(archive.value().size(), input.size());  // actually deduped+compressed
  auto back = extract(archive.value());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), input);
}

// Regression: decoding past the container's 64 MB reserve cap used a
// self-range insert for duplicate blocks; once the output vector grew past
// its capped capacity mid-insert, the insert's own source iterators were
// formally invalidated (UB; it happens to survive on common library
// implementations, so the decoders now resize-then-copy by index). One
// repeated 64 KB pattern keeps compression cheap (everything past batch 0
// is duplicate references) while the duplicate self-copies carry the
// output well past the cap in both extract() and extract_parallel()'s
// assemble sink.
TEST(ContainerTest, ExtractBeyondPreallocCapStaysValid) {
  constexpr std::size_t kCap = std::size_t{64} << 20;  // container kMaxPrealloc
  const auto pattern = test_input(64 * 1024);
  std::vector<std::uint8_t> input;
  input.reserve(kCap + pattern.size());
  while (input.size() <= kCap) {
    input.insert(input.end(), pattern.begin(), pattern.end());
  }
  DedupConfig cfg = test_config();
  auto archive = archive_sequential(input, cfg);
  ASSERT_TRUE(archive.ok()) << archive.status().ToString();
  ASSERT_LT(archive.value().size(), input.size() / 8);  // dedup kicked in

  auto back = extract(archive.value());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back.value() == input);

  auto par = extract_parallel(archive.value(), 4);
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  EXPECT_TRUE(par.value() == input);
}

TEST(ContainerTest, InspectCountsBlocks) {
  auto input = test_input();
  DedupConfig cfg = test_config();
  auto archive = archive_sequential(input, cfg);
  ASSERT_TRUE(archive.ok());
  auto info = inspect(archive.value());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().original_size, input.size());
  EXPECT_GT(info.value().unique_blocks, 0u);
  EXPECT_GT(info.value().duplicate_blocks, 0u);
  EXPECT_GT(info.value().compressed_payload_bytes, 0u);
}

TEST(ContainerTest, CorruptionIsDetected) {
  auto input = test_input(100 * 1024);
  DedupConfig cfg = test_config();
  auto archive = archive_sequential(input, cfg);
  ASSERT_TRUE(archive.ok());

  {  // bad magic
    auto bad = archive.value();
    bad[0] ^= 0xFF;
    EXPECT_EQ(extract(bad).status().code(), ErrorCode::kDataLoss);
  }
  {  // truncated
    auto bad = archive.value();
    bad.resize(bad.size() / 2);
    EXPECT_FALSE(extract(bad).ok());
  }
  {  // flipped payload byte: either LZSS structure or SHA-1 must catch it
    auto bad = archive.value();
    bad[bad.size() / 2] ^= 0x01;
    EXPECT_FALSE(extract(bad).ok());
  }
  {  // missing trailer
    auto bad = archive.value();
    bad.resize(bad.size() - 10);
    EXPECT_FALSE(extract(bad).ok());
  }
}

// Deterministic byte-flip / truncation fuzzing: a corrupted archive must
// either fail with a corruption code (DATA_LOSS / OUT_OF_RANGE) or — when
// the flipped byte is dead padding the decoder never reads — extract to
// the bit-exact original payload. It must never crash, hang, or silently
// return different bytes.
TEST(ContainerTest, ByteFlipFuzzNeverCrashesOrCorrupts) {
  auto input = test_input(40 * 1024);
  DedupConfig cfg = test_config();
  auto archive = archive_sequential(input, cfg);
  ASSERT_TRUE(archive.ok());
  const std::vector<std::uint8_t>& good = archive.value();

  auto check = [&](const std::vector<std::uint8_t>& bad, std::size_t pos) {
    auto result = extract(bad);
    if (result.ok()) {
      EXPECT_EQ(result.value(), input) << "silent corruption at byte " << pos;
    } else {
      ErrorCode code = result.status().code();
      EXPECT_TRUE(code == ErrorCode::kDataLoss ||
                  code == ErrorCode::kOutOfRange)
          << "byte " << pos << ": " << result.status().ToString();
    }
  };

  // Exhaustive over the header region (magic, version, codec, sizes, LZSS
  // parameters): every bit of the first 40 bytes.
  for (std::size_t pos = 0; pos < std::min<std::size_t>(40, good.size());
       ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bad = good;
      bad[pos] ^= static_cast<std::uint8_t>(1u << bit);
      check(bad, pos);
    }
  }

  // Seeded single-bit flips across the whole archive body.
  Xoshiro256 rng(2026);
  for (int it = 0; it < 1500; ++it) {
    auto bad = good;
    std::size_t pos = rng.bounded(bad.size());
    bad[pos] ^= static_cast<std::uint8_t>(1u << rng.bounded(8));
    check(bad, pos);
  }

  // Truncations at every stride-97 prefix length.
  for (std::size_t len = 0; len < good.size(); len += 97) {
    std::vector<std::uint8_t> bad(good.begin(),
                                  good.begin() + static_cast<long>(len));
    check(bad, len);
  }
}

TEST(ContainerTest, WriterEnforcesOrder) {
  DedupConfig cfg = test_config();
  ArchiveWriter writer(cfg);
  Batch batch;
  batch.index = 1;  // skipped 0
  EXPECT_EQ(writer.append(batch).code(), ErrorCode::kFailedPrecondition);
}

TEST(ContainerTest, EmptyInputRoundtrip) {
  DedupConfig cfg = test_config();
  auto archive = archive_sequential({}, cfg);
  ASSERT_TRUE(archive.ok());
  auto back = extract(archive.value());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

// ---- cross-variant equivalence ---------------------------------------------------------

class VariantEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    input_ = test_input(200 * 1024);
    cfg_ = test_config();
    auto ref = archive_sequential(input_, cfg_);
    ASSERT_TRUE(ref.ok());
    reference_ = std::move(ref).value();
  }
  std::vector<std::uint8_t> input_;
  DedupConfig cfg_;
  std::vector<std::uint8_t> reference_;
};

TEST_F(VariantEquivalenceTest, SparCpuMatches) {
  auto r = archive_spar_cpu(input_, cfg_, 4);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), reference_);
}

TEST_F(VariantEquivalenceTest, SparCpuAsymmetricFarmsMatch) {
  SparCpuOptions opts;
  opts.workers_hash = 3;
  opts.workers_compress = 2;
  auto r = archive_spar_cpu(input_, cfg_, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), reference_);
}

TEST_F(VariantEquivalenceTest, SparCpuUnorderedHashMatches) {
  // Hash-completion-order delivery + least-loaded scheduling: the serial
  // duplicate check's reorder buffer restores stream order, so the archive
  // is still byte-identical to the sequential reference.
  SparCpuOptions opts;
  opts.workers_hash = 4;
  opts.workers_compress = 2;
  opts.hash_ordered = false;
  auto r = archive_spar_cpu(input_, cfg_, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), reference_);
}

TEST_F(VariantEquivalenceTest, SparCpuPinnedMatches) {
  SparCpuOptions opts;
  opts.workers_hash = 2;
  opts.workers_compress = 2;
  opts.pin.enabled = true;
  auto r = archive_spar_cpu(input_, cfg_, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), reference_);
}

TEST_F(VariantEquivalenceTest, SparCudaMatches) {
  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(machine.get());
  auto r = archive_spar_cuda(input_, cfg_, 4, *machine);
  cudax::unbind_machine();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), reference_);
  std::uint64_t launches = machine->device(0).counters().kernels_launched +
                           machine->device(1).counters().kernels_launched;
  // Two kernels (hash + FindMatch) per batch.
  EXPECT_EQ(launches, 2 * ((input_.size() + cfg_.batch_size - 1) /
                           cfg_.batch_size));
}

TEST_F(VariantEquivalenceTest, OpenClSingleThreadMatchesBothKernelForms) {
  for (bool batched : {true, false}) {
    auto machine = gpusim::Machine::Create(1, gpusim::DeviceSpec::TitanXP());
    auto r = archive_opencl_single_thread(input_, cfg_, *machine, batched);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value(), reference_) << "batched=" << batched;
  }
}

TEST_F(VariantEquivalenceTest, PerBlockKernelsLaunchFarMore) {
  auto m1 = gpusim::Machine::Create(1, gpusim::DeviceSpec::TitanXP());
  auto m2 = gpusim::Machine::Create(1, gpusim::DeviceSpec::TitanXP());
  ASSERT_TRUE(archive_opencl_single_thread(input_, cfg_, *m1, true).ok());
  ASSERT_TRUE(archive_opencl_single_thread(input_, cfg_, *m2, false).ok());
  EXPECT_GT(m2->device(0).counters().kernels_launched,
            5 * m1->device(0).counters().kernels_launched);
}

// ---- roundtrip across all corpora --------------------------------------------------------

class CorpusRoundtrip
    : public ::testing::TestWithParam<datagen::CorpusKind> {};

TEST_P(CorpusRoundtrip, SequentialArchiveExtracts) {
  datagen::CorpusSpec spec;
  spec.kind = GetParam();
  spec.bytes = 256 * 1024;
  auto input = datagen::generate(spec);
  DedupConfig cfg = test_config();
  auto archive = archive_sequential(input, cfg);
  ASSERT_TRUE(archive.ok());
  auto back = extract(archive.value());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), input);
}

INSTANTIATE_TEST_SUITE_P(AllCorpora, CorpusRoundtrip,
                         ::testing::Values(datagen::CorpusKind::kParsecLike,
                                           datagen::CorpusKind::kSourceLike,
                                           datagen::CorpusKind::kSilesiaLike));

// ---- Fig. 5 model shape --------------------------------------------------------------------

class Fig5ModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::CorpusSpec spec;
    spec.kind = datagen::CorpusKind::kParsecLike;
    spec.bytes = 1024 * 1024;
    auto input = datagen::generate(spec);
    DedupConfig cfg = test_config();
    cfg.batch_size = 128 * 1024;
    trace_ = new DedupTrace(build_trace(input, cfg));
    cfg_ = new Fig5Config();
    cfg_->dedup = cfg;
  }
  static void TearDownTestSuite() {
    delete trace_;
    delete cfg_;
  }
  static DedupTrace* trace_;
  static Fig5Config* cfg_;
};

DedupTrace* Fig5ModelTest::trace_ = nullptr;
Fig5Config* Fig5ModelTest::cfg_ = nullptr;

TEST_F(Fig5ModelTest, TraceAccounting) {
  EXPECT_EQ(trace_->input_bytes, 1024u * 1024u);
  EXPECT_EQ(trace_->batches.size(), 8u);
  EXPECT_GT(trace_->unique_blocks, 0u);
  EXPECT_GT(trace_->duplicate_blocks, 0u);
  EXPECT_GT(trace_->output_bytes, 0u);
  EXPECT_LT(trace_->output_bytes, trace_->input_bytes);
}

TEST_F(Fig5ModelTest, BatchedKernelIsTheBigWin) {
  // The paper's central Dedup finding: without the single batched
  // FindMatch kernel, GPU performance is "very poor".
  Fig5Config batched = *cfg_;
  Fig5Config per_block = *cfg_;
  per_block.batched_kernel = false;
  auto fast = run_fig5(*trace_, batched, Fig5Backend::kSparCuda);
  auto slow = run_fig5(*trace_, per_block, Fig5Backend::kSparCuda);
  EXPECT_GT(fast.throughput_mb_s, 1.5 * slow.throughput_mb_s);
  EXPECT_GT(slow.kernel_launches, fast.kernel_launches);
}

TEST_F(Fig5ModelTest, SparCudaBeatsCpuAndSingleThread) {
  auto spar_cuda = run_fig5(*trace_, *cfg_, Fig5Backend::kSparCuda);
  auto spar_cpu = run_fig5(*trace_, *cfg_, Fig5Backend::kSparCpu);
  auto cuda_1t = run_fig5(*trace_, *cfg_, Fig5Backend::kCudaSingle);
  auto seq = run_fig5(*trace_, *cfg_, Fig5Backend::kSequential);
  EXPECT_GT(spar_cuda.throughput_mb_s, spar_cpu.throughput_mb_s);
  EXPECT_GT(spar_cuda.throughput_mb_s, cuda_1t.throughput_mb_s);
  EXPECT_GT(spar_cpu.throughput_mb_s, seq.throughput_mb_s);
}

TEST_F(Fig5ModelTest, TwoMemSpacesHelpOpenClNotCuda) {
  // §V-B: "the optimization of 2x memory space version increased
  // performance for OpenCL. However, it was not the case for CUDA."
  Fig5Config one = *cfg_;
  Fig5Config two = *cfg_;
  two.mem_spaces = 2;
  auto ocl1 = run_fig5(*trace_, one, Fig5Backend::kOclSingle);
  auto ocl2 = run_fig5(*trace_, two, Fig5Backend::kOclSingle);
  auto cuda1 = run_fig5(*trace_, one, Fig5Backend::kCudaSingle);
  auto cuda2 = run_fig5(*trace_, two, Fig5Backend::kCudaSingle);
  EXPECT_GT(ocl2.throughput_mb_s, ocl1.throughput_mb_s * 1.02);
  EXPECT_LT(std::abs(cuda2.throughput_mb_s - cuda1.throughput_mb_s),
            cuda1.throughput_mb_s * 0.05);
}

TEST_F(Fig5ModelTest, VariableBatchesAreSlower) {
  // DESIGN.md §4.3: the paper refactored to fixed-size batches; the
  // original content-defined batch boundaries must model slower.
  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kParsecLike;
  spec.bytes = 2 * 1024 * 1024;
  auto input = datagen::generate(spec);
  DedupConfig dcfg = cfg_->dedup;
  auto fixed = build_trace(input, dcfg, false);
  auto variable = build_trace(input, dcfg, true);
  auto r_fixed = run_fig5(fixed, *cfg_, Fig5Backend::kSparCuda);
  auto r_var = run_fig5(variable, *cfg_, Fig5Backend::kSparCuda);
  EXPECT_GT(r_fixed.throughput_mb_s, r_var.throughput_mb_s);
}

TEST_F(Fig5ModelTest, LabelsDescribeVariants) {
  Fig5Config c = *cfg_;
  c.mem_spaces = 2;
  c.devices = 2;
  auto r = run_fig5(*trace_, c, Fig5Backend::kSparOcl);
  EXPECT_EQ(r.label, "spar+opencl 2x-mem 2gpu");
  c.batched_kernel = false;
  auto r2 = run_fig5(*trace_, c, Fig5Backend::kCudaSingle);
  EXPECT_NE(r2.label.find("per-block-kernels"), std::string::npos);
}

}  // namespace
}  // namespace hs::dedup
