// Tests for the OpenCL-style shim: discovery workflow, buffers, command
// queues, events, and the non-thread-safe cl_kernel semantics.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "oclx/oclx.hpp"

namespace hs::oclx {
namespace {

class OclxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
    platforms_ = Platform::get(machine_.get());
    ASSERT_EQ(platforms_.size(), 1u);
    devices_ = platforms_[0].devices();
    ASSERT_EQ(devices_.size(), 2u);
  }
  std::unique_ptr<gpusim::Machine> machine_;
  std::vector<Platform> platforms_;
  std::vector<DeviceId> devices_;
};

TEST_F(OclxTest, DiscoveryWorkflow) {
  EXPECT_EQ(platforms_[0].name(), "HetStream SimCL");
  EXPECT_EQ(devices_[0].name(), "SimTitanXP");
  EXPECT_EQ(devices_[0].max_compute_units(), 30u);
  EXPECT_EQ(devices_[0].global_mem_size(), 12ull * 1024 * 1024 * 1024);
}

TEST_F(OclxTest, NoMachineNoPlatform) {
  EXPECT_TRUE(Platform::get(nullptr).empty());
}

TEST_F(OclxTest, ContextValidation) {
  EXPECT_FALSE(Context::create({}).ok());
  auto ctx = Context::create(devices_);
  ASSERT_TRUE(ctx.ok());
  EXPECT_EQ(ctx.value().devices().size(), 2u);
}

TEST_F(OclxTest, BufferLifecycleAndOom) {
  auto ctx = Context::create({devices_[0]});
  ASSERT_TRUE(ctx.ok());
  {
    auto buf = Buffer::create(ctx.value(), devices_[0], 1 << 20);
    ASSERT_TRUE(buf.ok());
    EXPECT_EQ(machine_->device(0).memory_used(), 1u << 20);
  }
  // RAII free
  EXPECT_EQ(machine_->device(0).memory_used(), 0u);
  // Exceeding the 12 GB device fails like the paper's 10 MB-batch OOM.
  auto big = Buffer::create(ctx.value(), devices_[0], 20ull << 30);
  ASSERT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), ErrorCode::kOutOfMemory);
  // Buffer on a device outside the context is rejected.
  EXPECT_FALSE(Buffer::create(ctx.value(), devices_[1], 64).ok());
}

TEST_F(OclxTest, WriteReadRoundtrip) {
  auto ctx = Context::create({devices_[0]});
  ASSERT_TRUE(ctx.ok());
  auto q = CommandQueue::create(ctx.value(), devices_[0]);
  ASSERT_TRUE(q.ok());
  auto buf = Buffer::create(ctx.value(), devices_[0], 1024);
  ASSERT_TRUE(buf.ok());

  std::vector<std::uint8_t> host(1024);
  std::iota(host.begin(), host.end(), 0);
  ASSERT_EQ(q.value().enqueue_write(buf.value(), 0, host.data(), 1024,
                                    /*blocking=*/true, nullptr),
            ClStatus::kSuccess);
  std::vector<std::uint8_t> back(1024, 0xFF);
  ASSERT_EQ(q.value().enqueue_read(buf.value(), 0, back.data(), 1024,
                                   /*blocking=*/true, nullptr),
            ClStatus::kSuccess);
  EXPECT_EQ(host, back);
}

TEST_F(OclxTest, OutOfExtentAccessRejected) {
  auto ctx = Context::create({devices_[0]});
  auto q = CommandQueue::create(ctx.value(), devices_[0]);
  auto buf = Buffer::create(ctx.value(), devices_[0], 64);
  ASSERT_TRUE(q.ok() && buf.ok());
  std::uint8_t tmp[128] = {};
  EXPECT_EQ(q.value().enqueue_write(buf.value(), 32, tmp, 64, true, nullptr),
            ClStatus::kInvalidValue);
  EXPECT_EQ(q.value().enqueue_read(buf.value(), 0, tmp, 128, true, nullptr),
            ClStatus::kInvalidValue);
}

TEST_F(OclxTest, NdrangeKernelComputes) {
  auto ctx = Context::create({devices_[0]});
  auto q = CommandQueue::create(ctx.value(), devices_[0]);
  auto buf = Buffer::create(ctx.value(), devices_[0], 1000 * sizeof(int));
  ASSERT_TRUE(q.ok() && buf.ok());
  int* data = static_cast<int*>(buf.value().data());
  Kernel k = Kernel::create("square", [=](const ThreadCtx& ctx2) {
    std::uint64_t i = ctx2.global_x();  // get_global_id(0)
    if (i < 1000) data[i] = static_cast<int>(i * i);
  });
  Event done;
  ASSERT_EQ(q.value().enqueue_ndrange(k, Dim3{1024, 1, 1}, Dim3{256, 1, 1},
                                      &done),
            ClStatus::kSuccess);
  auto t = done.wait();
  ASSERT_TRUE(t.ok());
  EXPECT_GT(t.value(), 0.0);
  EXPECT_EQ(data[31], 31 * 31);
}

TEST_F(OclxTest, KernelThreadAffinityEnforced) {
  // The paper: "cl_kernel objects ... are not thread-safe and must be
  // allocated for each thread."
  auto ctx = Context::create({devices_[0]});
  auto q = CommandQueue::create(ctx.value(), devices_[0]);
  ASSERT_TRUE(q.ok());
  Kernel k = Kernel::create("noop", [](const ThreadCtx&) {});
  ASSERT_EQ(q.value().enqueue_ndrange(k, Dim3{32, 1, 1}, Dim3{32, 1, 1},
                                      nullptr),
            ClStatus::kSuccess);  // claims ownership for this thread

  ClStatus other = ClStatus::kSuccess;
  std::string msg;
  std::thread t([&] {
    auto q2 = CommandQueue::create(ctx.value(), devices_[0]);
    ASSERT_TRUE(q2.ok());
    other = q2.value().enqueue_ndrange(k, Dim3{32, 1, 1}, Dim3{32, 1, 1},
                                       nullptr);
    msg = q2.value().last_error();
  });
  t.join();
  EXPECT_EQ(other, ClStatus::kInvalidOperation);
  EXPECT_NE(msg.find("not thread-safe"), std::string::npos);
}

TEST_F(OclxTest, KernelAcquireTransfersOwnership) {
  auto ctx = Context::create({devices_[0]});
  Kernel k = Kernel::create("noop", [](const ThreadCtx&) {});
  {
    auto q = CommandQueue::create(ctx.value(), devices_[0]);
    ASSERT_TRUE(q.ok());
    ASSERT_EQ(q.value().enqueue_ndrange(k, Dim3{32, 1, 1}, Dim3{32, 1, 1},
                                        nullptr),
              ClStatus::kSuccess);
  }
  ClStatus other = ClStatus::kInvalidOperation;
  std::thread t([&] {
    auto q2 = CommandQueue::create(ctx.value(), devices_[0]);
    ASSERT_TRUE(q2.ok());
    k.acquire();  // explicit transfer
    other = q2.value().enqueue_ndrange(k, Dim3{32, 1, 1}, Dim3{32, 1, 1},
                                       nullptr);
  });
  t.join();
  EXPECT_EQ(other, ClStatus::kSuccess);
}

TEST_F(OclxTest, PerItemKernelPatternWorksAcrossThreads) {
  // The paper's fix: allocate one cl_kernel (and queue) per stream item,
  // so worker threads never share kernel objects.
  auto ctx = Context::create({devices_[0]});
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < 16; ++i) {
        Kernel k = Kernel::create("per-item", [](const ThreadCtx&) {});
        auto q = CommandQueue::create(ctx.value(), devices_[0]);
        if (!q.ok() ||
            q.value().enqueue_ndrange(k, Dim3{64, 1, 1}, Dim3{64, 1, 1},
                                      nullptr) != ClStatus::kSuccess) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(machine_->device(0).counters().kernels_launched, 64u);
}

TEST_F(OclxTest, EventsAndWaitForEvents) {
  auto ctx = Context::create(devices_);
  ASSERT_TRUE(ctx.ok());
  auto q0 = CommandQueue::create(ctx.value(), devices_[0]);
  auto q1 = CommandQueue::create(ctx.value(), devices_[1]);
  ASSERT_TRUE(q0.ok() && q1.ok());
  Kernel k0 = Kernel::create("a", [](const ThreadCtx&) -> std::uint64_t {
    return 40000;
  });
  Kernel k1 = Kernel::create("b", [](const ThreadCtx&) -> std::uint64_t {
    return 20000;
  });
  Event e0, e1;
  ASSERT_EQ(q0.value().enqueue_ndrange(k0, Dim3{4096, 1, 1}, Dim3{256, 1, 1},
                                       &e0),
            ClStatus::kSuccess);
  ASSERT_EQ(q1.value().enqueue_ndrange(k1, Dim3{4096, 1, 1}, Dim3{256, 1, 1},
                                       &e1),
            ClStatus::kSuccess);
  auto joint = Event::wait_for_events({e0, e1});
  ASSERT_TRUE(joint.ok());
  EXPECT_DOUBLE_EQ(joint.value(),
                   std::max(e0.wait().value(), e1.wait().value()));
  EXPECT_FALSE(Event::wait_for_events({}).ok());
  EXPECT_FALSE(Event().wait().ok());
}

TEST_F(OclxTest, GlobalSizeRoundsUpToWorkgroups) {
  auto ctx = Context::create({devices_[0]});
  auto q = CommandQueue::create(ctx.value(), devices_[0]);
  ASSERT_TRUE(q.ok());
  std::atomic<int> invocations{0};
  Kernel k = Kernel::create("count", [&](const ThreadCtx&) {
    ++invocations;
  });
  // global=100, local=32 -> 4 groups -> 128 invocations (with guard checks
  // left to the kernel, as in real OpenCL code).
  ASSERT_EQ(q.value().enqueue_ndrange(k, Dim3{100, 1, 1}, Dim3{32, 1, 1},
                                      nullptr),
            ClStatus::kSuccess);
  EXPECT_EQ(invocations.load(), 128);
}

TEST_F(OclxTest, StatusNames) {
  EXPECT_EQ(status_name(ClStatus::kSuccess), "CL_SUCCESS");
  EXPECT_EQ(status_name(ClStatus::kInvalidOperation), "CL_INVALID_OPERATION");
  EXPECT_EQ(status_name(ClStatus::kOutOfResources), "CL_OUT_OF_RESOURCES");
}

}  // namespace
}  // namespace hs::oclx
