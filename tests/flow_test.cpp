// Tests for the flow runtime: SPSC queue (including a concurrent FIFO
// property test), Item type erasure, pipelines, farms (ordered/unordered),
// scheduling policies, emit(), and error propagation.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <numeric>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "flow/adapters.hpp"
#include "flow/item.hpp"
#include "flow/pipeline.hpp"
#include "flow/spsc_queue.hpp"

namespace hs::flow {
namespace {

// ---- SpscQueue ---------------------------------------------------------------

TEST(SpscQueueTest, PushPopSingleThread) {
  SpscQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(int(i)));
  int spill = 99;
  EXPECT_FALSE(q.try_push(std::move(spill)));
  for (int i = 0; i < 4; ++i) {
    int v = -1;
    EXPECT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  int v;
  EXPECT_FALSE(q.try_pop(v));
}

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  SpscQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
  SpscQueue<int> q1(1);
  EXPECT_EQ(q1.capacity(), 2u);
}

TEST(SpscQueueTest, MoveOnlyElements) {
  SpscQueue<std::unique_ptr<int>> q(8);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(5)));
  std::unique_ptr<int> out;
  EXPECT_TRUE(q.try_pop(out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 5);
}

TEST(SpscQueueTest, DestructorReleasesQueuedElements) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> c;
    explicit Probe(std::shared_ptr<int> counter) : c(std::move(counter)) {}
    Probe(Probe&& o) noexcept : c(std::move(o.c)) {}
    Probe& operator=(Probe&& o) noexcept {
      c = std::move(o.c);
      return *this;
    }
    ~Probe() {
      if (c) ++*c;  // counts only destructions of live (unmoved) values
    }
  };
  {
    SpscQueue<Probe> q(8);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(q.try_push(Probe{counter}));
    }
  }
  EXPECT_EQ(*counter, 3);
}

TEST(SpscQueueTest, PeekDoesNotConsume) {
  SpscQueue<int> q(4);
  ASSERT_TRUE(q.try_push(42));
  int* p = nullptr;
  ASSERT_TRUE(q.try_peek(p));
  EXPECT_EQ(*p, 42);
  int v;
  ASSERT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 42);
}

// Property: FIFO order and no loss/duplication under concurrent use.
TEST(SpscQueueTest, ConcurrentFifoProperty) {
  constexpr int kCount = 200000;
  SpscQueue<int> q(128);
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      while (!q.try_push(int(i))) std::this_thread::yield();
    }
  });
  long long sum = 0;
  int expected = 0;
  bool ordered = true;
  for (int received = 0; received < kCount;) {
    int v;
    if (q.try_pop(v)) {
      ordered = ordered && (v == expected);
      ++expected;
      sum += v;
      ++received;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(sum, static_cast<long long>(kCount) * (kCount - 1) / 2);
}

TEST(SpscQueueTest, CopyPushDoesNotTouchValueWhenFull) {
  SpscQueue<std::vector<int>> q(2);
  const std::vector<int> payload = {1, 2, 3};
  ASSERT_TRUE(q.try_push(payload));
  ASSERT_TRUE(q.try_push(payload));
  // Queue full: the const& overload must leave the argument untouched and
  // perform no construction.
  EXPECT_FALSE(q.try_push(payload));
  EXPECT_EQ(payload.size(), 3u);
  std::vector<int> out;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, payload);
}

TEST(SpscQueueTest, BatchPushPopRoundTrip) {
  SpscQueue<int> q(8);
  int in[5] = {10, 11, 12, 13, 14};
  EXPECT_EQ(q.try_push_n(in, 5), 5u);
  int out[8] = {};
  EXPECT_EQ(q.try_pop_n(out, 8), 5u);  // pops only what is there
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], 10 + i);
  EXPECT_EQ(q.try_pop_n(out, 8), 0u);
}

TEST(SpscQueueTest, BatchPushIsPartialWhenNearlyFull) {
  SpscQueue<int> q(4);
  int a[3] = {1, 2, 3};
  EXPECT_EQ(q.try_push_n(a, 3), 3u);
  int b[4] = {4, 5, 6, 7};
  EXPECT_EQ(q.try_push_n(b, 4), 1u);  // one slot left
  EXPECT_EQ(b[1], 5);                 // items past the cut are untouched
  int full[2] = {8, 9};
  EXPECT_EQ(q.try_push_n(full, 2), 0u);
  int out[4];
  EXPECT_EQ(q.try_pop_n(out, 4), 4u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[3], 4);
}

TEST(SpscQueueTest, BatchOpsAcrossWraparound) {
  SpscQueue<int> q(4);  // indices wrap every 4 operations
  int next = 0, expected = 0;
  for (int round = 0; round < 16; ++round) {
    int in[3];
    for (int& v : in) v = next++;
    ASSERT_EQ(q.try_push_n(in, 3), 3u);
    int out[3];
    ASSERT_EQ(q.try_pop_n(out, 3), 3u);
    for (int v : out) ASSERT_EQ(v, expected++);
  }
}

TEST(SpscQueueTest, BatchOpsMoveOnlyElements) {
  SpscQueue<std::unique_ptr<int>> q(8);
  std::unique_ptr<int> in[3];
  for (int i = 0; i < 3; ++i) in[i] = std::make_unique<int>(i);
  EXPECT_EQ(q.try_push_n(in, 3), 3u);
  for (const auto& p : in) EXPECT_EQ(p, nullptr);  // moved out
  std::unique_ptr<int> out[3];
  EXPECT_EQ(q.try_pop_n(out, 3), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(*out[i], i);
}

// Property: batch producer against single-item consumer (and vice versa)
// preserves FIFO order with no loss or duplication.
TEST(SpscQueueTest, ConcurrentBatchFifoProperty) {
  constexpr int kCount = 100000;
  SpscQueue<int> q(64);
  std::thread producer([&] {
    int buf[16];
    int next = 0;
    while (next < kCount) {
      int want = std::min(16, kCount - next);
      for (int i = 0; i < want; ++i) buf[i] = next + i;
      std::size_t n = q.try_push_n(buf, static_cast<std::size_t>(want));
      if (n == 0) std::this_thread::yield();
      next += static_cast<int>(n);
    }
  });
  int expected = 0;
  int out[16];
  while (expected < kCount) {
    std::size_t n = q.try_pop_n(out, 16);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], expected++);
  }
  producer.join();
}

TEST(SpscQueueTest, CapacityRoundingClampsAtOverflowBoundary) {
  // The round-up loop (`cap <<= 1`) used to wrap to 0 and spin forever for
  // requests above SIZE_MAX/2 + 1. The helper must clamp instead.
  constexpr std::size_t kMax = SpscQueue<int>::kMaxCapacity;
  static_assert(kMax == (std::numeric_limits<std::size_t>::max() >> 1) + 1);
  EXPECT_EQ(SpscQueue<int>::rounded_capacity(0), 2u);
  EXPECT_EQ(SpscQueue<int>::rounded_capacity(2), 2u);
  EXPECT_EQ(SpscQueue<int>::rounded_capacity(kMax), kMax);
  EXPECT_EQ(SpscQueue<int>::rounded_capacity(kMax - 1), kMax);
  EXPECT_EQ(SpscQueue<int>::rounded_capacity(kMax + 1), kMax);
  EXPECT_EQ(SpscQueue<int>::rounded_capacity(
                std::numeric_limits<std::size_t>::max()),
            kMax);
}

TEST(SpscQueueTest, SizeApproxNeverUnderflowsAgainstConcurrentPop) {
  // Regression: size_approx() loaded tail_ before head_, so a pop advancing
  // head between the two loads made `tail - head` wrap to a near-2^64 value
  // (seen by QueueDepthSampler as an absurd queue depth). Hammer pops against
  // a sampling thread; any sample above capacity() is the bug.
  constexpr int kCount = 200000;
  SpscQueue<int> q(16);
  std::atomic<bool> done{false};
  std::atomic<std::size_t> worst{0};
  std::thread sampler([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::size_t depth = q.size_approx();
      std::size_t prev = worst.load(std::memory_order_relaxed);
      while (depth > prev &&
             !worst.compare_exchange_weak(prev, depth,
                                          std::memory_order_relaxed)) {
      }
    }
  });
  std::thread producer([&] {
    for (int i = 0; i < kCount;) {
      if (q.try_push(int{i})) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  int out = 0;
  for (int popped = 0; popped < kCount;) {
    if (q.try_pop(out)) {
      ++popped;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  done.store(true, std::memory_order_release);
  sampler.join();
  EXPECT_LE(worst.load(), q.capacity());
}

// ---- Item ---------------------------------------------------------------------

TEST(ItemTest, EmptyByDefault) {
  Item item;
  EXPECT_FALSE(item.has_value());
}

TEST(ItemTest, StoresAndCasts) {
  Item item = Item::of<std::string>("hello");
  EXPECT_TRUE(item.is<std::string>());
  EXPECT_FALSE(item.is<int>());
  EXPECT_EQ(item.as<std::string>(), "hello");
}

TEST(ItemTest, TakeMovesOut) {
  Item item = Item::of<std::vector<int>>({1, 2, 3});
  std::vector<int> v = item.take<std::vector<int>>();
  EXPECT_EQ(v.size(), 3u);
  EXPECT_FALSE(item.has_value());
}

TEST(ItemTest, MakeInPlace) {
  Item item = Item::make<std::vector<int>>(5, 7);  // five sevens
  EXPECT_EQ(item.as<std::vector<int>>().size(), 5u);
  EXPECT_EQ(item.as<std::vector<int>>()[0], 7);
}

TEST(ItemTest, MoveTransfersOwnership) {
  Item a = Item::of<int>(3);
  Item b = std::move(a);
  EXPECT_FALSE(a.has_value());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b.as<int>(), 3);
}

// ---- Pipeline ------------------------------------------------------------------

/// Source emitting 0..n-1.
std::unique_ptr<Node> counting_source(int n) {
  return make_source<int>([i = 0, n]() mutable -> std::optional<int> {
    return i < n ? std::optional<int>(i++) : std::nullopt;
  });
}

TEST(PipelineTest, SourceToSink) {
  Pipeline p;
  std::vector<int> got;
  p.add_stage(counting_source(100), "src");
  p.add_stage(make_sink<int>([&](int v) { got.push_back(v); }), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(PipelineTest, ThreeStageTransform) {
  Pipeline p;
  long long sum = 0;
  p.add_stage(counting_source(1000), "src");
  p.add_stage(make_stage<int, long long>([](int v) {
    return static_cast<long long>(v) * 2;
  }), "double");
  p.add_stage(make_sink<long long>([&](long long v) { sum += v; }), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  EXPECT_EQ(sum, 999LL * 1000);
}

TEST(PipelineTest, ValidationErrors) {
  {
    Pipeline p;
    p.add_stage(counting_source(1), "only");
    EXPECT_EQ(p.run_and_wait().code(), ErrorCode::kInvalidArgument);
  }
  {
    Pipeline p;
    p.add_farm(stage_factory<int, int>([](int v) { return v; }),
               FarmOptions{.replicas = 2});
    p.add_stage(make_sink<int>([](int) {}), "sink");
    EXPECT_EQ(p.run_and_wait().code(), ErrorCode::kInvalidArgument);
  }
}

TEST(PipelineTest, SecondRunRejected) {
  Pipeline p;
  p.add_stage(counting_source(1), "src");
  p.add_stage(make_sink<int>([](int) {}), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  EXPECT_EQ(p.run_and_wait().code(), ErrorCode::kFailedPrecondition);
}

TEST(PipelineTest, StageExceptionPropagatesAsError) {
  Pipeline p;
  p.add_stage(counting_source(100000), "src");
  p.add_stage(make_stage<int, int>([](int v) -> int {
    if (v == 37) throw std::runtime_error("boom at 37");
    return v;
  }), "thrower");
  p.add_stage(make_sink<int>([](int) {}), "sink");
  Status s = p.run_and_wait();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kInternal);
  EXPECT_NE(s.message().find("boom at 37"), std::string::npos);
}

TEST(PipelineTest, EmptyStreamFlushesCleanly) {
  Pipeline p;
  int count = 0;
  p.add_stage(counting_source(0), "src");
  p.add_stage(make_sink<int>([&](int) { ++count; }), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  EXPECT_EQ(count, 0);
}

TEST(PipelineTest, SmallQueueCapacityStillCorrect) {
  PipelineOptions opts;
  opts.queue_capacity = 2;
  Pipeline p(opts);
  std::vector<int> got;
  p.add_stage(counting_source(5000), "src");
  p.add_stage(make_stage<int, int>([](int v) { return v + 1; }), "inc");
  p.add_stage(make_sink<int>([&](int v) { got.push_back(v); }), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  ASSERT_EQ(got.size(), 5000u);
  for (int i = 0; i < 5000; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i + 1);
}

TEST(PipelineTest, BlockingWaitModeWorks) {
  PipelineOptions opts;
  opts.wait_mode = WaitMode::kBlocking;
  opts.queue_capacity = 4;  // force both full and empty waits
  Pipeline p(opts);
  std::vector<int> got;
  p.add_stage(counting_source(3000), "src");
  p.add_farm(stage_factory<int, int>([](int v) { return v + 1; }),
             FarmOptions{.replicas = 3, .ordered = true}, "farm");
  p.add_stage(make_sink<int>([&](int v) { got.push_back(v); }), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  ASSERT_EQ(got.size(), 3000u);
  for (int i = 0; i < 3000; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], i + 1);
  }
}

TEST(PipelineTest, SpinWaitModeWorks) {
  PipelineOptions opts;
  opts.wait_mode = WaitMode::kSpin;
  Pipeline p(opts);
  int count = 0;
  p.add_stage(counting_source(2000), "src");
  p.add_stage(make_sink<int>([&](int) { ++count; }), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  EXPECT_EQ(count, 2000);
}

TEST(PipelineTest, SourceEmitMultiplePerSvc) {
  // A source can emit() several items then return GoOn/Eos.
  class BurstSource final : public Node {
   public:
    SvcResult svc(Item) override {
      if (round_ == 3) return SvcResult::Eos();
      ++round_;
      for (int i = 0; i < 10; ++i) emit(Item::of<int>(round_ * 100 + i));
      return SvcResult::GoOn();
    }
   private:
    int round_ = 0;
  };
  Pipeline p;
  std::vector<int> got;
  p.add_stage(std::make_unique<BurstSource>(), "burst");
  p.add_stage(make_sink<int>([&](int v) { got.push_back(v); }), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  EXPECT_EQ(got.size(), 30u);
  EXPECT_EQ(got.front(), 100);
  EXPECT_EQ(got.back(), 309);
}

TEST(PipelineTest, ReportsCountItems) {
  PipelineOptions opts;
  opts.collect_stats = true;
  Pipeline p(opts);
  p.add_stage(counting_source(500), "src");
  p.add_stage(make_sink<int>([](int) {}), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  const auto& reports = p.reports();
  ASSERT_EQ(reports.size(), 2u);
  std::uint64_t in = 0, out = 0;
  for (const auto& r : reports) {
    in += r.stats.items_in;
    out += r.stats.items_out;
  }
  EXPECT_EQ(out, 500u);
  EXPECT_EQ(in, 500u);
}

// ---- Farm ----------------------------------------------------------------------

TEST(FarmTest, UnorderedFarmProcessesAll) {
  Pipeline p;
  std::multiset<int> got;
  p.add_stage(counting_source(3000), "src");
  p.add_farm(stage_factory<int, int>([](int v) { return v * 3; }),
             FarmOptions{.replicas = 4}, "triple");
  p.add_stage(make_sink<int>([&](int v) { got.insert(v); }), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  ASSERT_EQ(got.size(), 3000u);
  for (int i = 0; i < 3000; ++i) EXPECT_EQ(got.count(i * 3), 1u);
}

TEST(FarmTest, OrderedFarmPreservesSequence) {
  Pipeline p;
  std::vector<int> got;
  p.add_stage(counting_source(5000), "src");
  p.add_farm(stage_factory<int, int>([](int v) {
               // Uneven work so replicas genuinely race.
               volatile int spin = (v % 7) * 50;
               while (spin > 0) { spin = spin - 1; }
               return v;
             }),
             FarmOptions{.replicas = 5, .ordered = true}, "id");
  p.add_stage(make_sink<int>([&](int v) { got.push_back(v); }), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  ASSERT_EQ(got.size(), 5000u);
  for (int i = 0; i < 5000; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(FarmTest, LeastLoadedFarmProcessesAll) {
  Pipeline p;
  std::multiset<int> got;
  p.add_stage(counting_source(3000), "src");
  p.add_farm(stage_factory<int, int>([](int v) {
               // One item class is slow, so the shallowest-queue choice
               // genuinely varies between pushes.
               if (v % 11 == 0) {
                 volatile int spin = 400;
                 while (spin > 0) { spin = spin - 1; }
               }
               return v;
             }),
             FarmOptions{.replicas = 4, .policy = SchedPolicy::kLeastLoaded},
             "ll");
  p.add_stage(make_sink<int>([&](int v) { got.insert(v); }), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  ASSERT_EQ(got.size(), 3000u);
  for (int i = 0; i < 3000; ++i) EXPECT_EQ(got.count(i), 1u);
}

TEST(FarmTest, LeastLoadedOrderedFarmPreservesSequence) {
  Pipeline p;
  std::vector<int> got;
  p.add_stage(counting_source(4000), "src");
  p.add_farm(stage_factory<int, int>([](int v) {
               volatile int spin = (v % 5) * 60;
               while (spin > 0) { spin = spin - 1; }
               return v;
             }),
             FarmOptions{.replicas = 4,
                         .ordered = true,
                         .policy = SchedPolicy::kLeastLoaded},
             "ll");
  p.add_stage(make_sink<int>([&](int v) { got.push_back(v); }), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  ASSERT_EQ(got.size(), 4000u);
  for (int i = 0; i < 4000; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

/// Farm worker that tallies per-replica item counts into a shared array.
class ReplicaTally final : public Node {
 public:
  explicit ReplicaTally(std::array<std::atomic<int>, 8>* counts)
      : counts_(counts) {}
  void on_init(int replica_id) override { replica_ = replica_id; }
  SvcResult svc(Item in) override {
    (*counts_)[static_cast<std::size_t>(replica_)].fetch_add(
        1, std::memory_order_relaxed);
    return SvcResult::Out(std::move(in));
  }

 private:
  std::array<std::atomic<int>, 8>* counts_;
  int replica_ = 0;
};

TEST(FarmTest, ControllerClampsAndBindsToReplicaCount) {
  FarmController ctl;
  ctl.set_active(10);  // unbound: only floored at 1
  EXPECT_GE(ctl.active(), 10);
  Pipeline p;
  p.add_stage(counting_source(10), "src");
  FarmOptions opts;
  opts.replicas = 4;
  opts.controller = &ctl;
  p.add_farm(stage_factory<int, int>([](int v) { return v; }), opts, "farm");
  p.add_stage(make_sink<int>([](int) {}), "sink");
  EXPECT_EQ(ctl.replicas(), 4);
  EXPECT_EQ(ctl.active(), 4);  // bound + clamped
  ctl.set_active(0);
  EXPECT_EQ(ctl.active(), 1);  // floor
  ctl.set_active(99);
  EXPECT_EQ(ctl.active(), 4);  // ceiling
  ASSERT_TRUE(p.run_and_wait().ok());
}

TEST(FarmTest, ControllerAtOneFeedsOnlyReplicaZero) {
  std::array<std::atomic<int>, 8> counts{};
  FarmController ctl;
  Pipeline p;
  p.add_stage(counting_source(2000), "src");
  FarmOptions opts;
  opts.replicas = 4;
  opts.policy = SchedPolicy::kLeastLoaded;
  opts.controller = &ctl;
  p.add_farm([&counts] { return std::make_unique<ReplicaTally>(&counts); },
             opts, "farm");
  int got = 0;
  p.add_stage(make_sink<int>([&](int) { ++got; }), "sink");
  ctl.set_active(1);
  ASSERT_TRUE(p.run_and_wait().ok());
  EXPECT_EQ(got, 2000);
  EXPECT_EQ(counts[0].load(), 2000);
  for (std::size_t w = 1; w < 4; ++w) EXPECT_EQ(counts[w].load(), 0) << w;
}

TEST(FarmTest, ControllerResizeMidRunLosesNothing) {
  std::array<std::atomic<int>, 8> counts{};
  FarmController ctl;
  PipelineOptions popts;
  popts.queue_capacity = 8;  // keep the emitter honest under resizes
  Pipeline p(popts);
  constexpr int kItems = 20000;
  p.add_stage(counting_source(kItems), "src");
  FarmOptions opts;
  opts.replicas = 4;
  opts.policy = SchedPolicy::kLeastLoaded;
  opts.controller = &ctl;
  p.add_farm([&counts] { return std::make_unique<ReplicaTally>(&counts); },
             opts, "farm");
  std::multiset<int> got;
  p.add_stage(make_sink<int>([&](int v) { got.insert(v); }), "sink");
  ctl.set_active(1);
  std::atomic<bool> stop{false};
  std::thread resizer([&] {
    int n = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      ctl.set_active(1 + (n++ % 4));  // oscillate 2,3,4,1,...
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  Status s = p.run_and_wait();
  stop.store(true, std::memory_order_relaxed);
  resizer.join();
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(got.count(i), 1u);
  int total = 0;
  for (auto& c : counts) total += c.load();
  EXPECT_EQ(total, kItems);
  // The grown phases must actually have engaged extra replicas.
  EXPECT_GT(counts[1].load() + counts[2].load() + counts[3].load(), 0);
}

TEST(PipelineTest, PinPolicyReportsPinnedCores) {
  PipelineOptions opts;
  opts.pin.enabled = true;
  Pipeline p(opts);
  std::vector<int> got;
  p.add_stage(counting_source(200), "src");
  p.add_farm(stage_factory<int, int>([](int v) { return v + 1; }),
             FarmOptions{.replicas = 2, .ordered = true}, "farm");
  p.add_stage(make_sink<int>([&](int v) { got.push_back(v); }), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  ASSERT_EQ(got.size(), 200u);
#if defined(__linux__)
  const int ncores =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  for (const UnitReport& r : p.reports()) {
    EXPECT_GE(r.pinned_cpu, 0) << r.name;
    EXPECT_LT(r.pinned_cpu, ncores) << r.name;
  }
#endif
}

TEST(PipelineTest, UnpinnedRunReportsNoAffinity) {
  Pipeline p;
  p.add_stage(counting_source(10), "src");
  p.add_stage(make_sink<int>([](int) {}), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  for (const UnitReport& r : p.reports()) EXPECT_EQ(r.pinned_cpu, -1);
}

TEST(FarmTest, OrderedFarmWithFilteringHoles) {
  // Dropped items must not stall the ordered collector.
  Pipeline p;
  std::vector<int> got;
  p.add_stage(counting_source(1000), "src");
  p.add_farm(
      [] {
        return make_filter_stage<int, int>([](int v) -> std::optional<int> {
          if (v % 3 == 0) return std::nullopt;
          return v;
        });
      },
      FarmOptions{.replicas = 3, .ordered = true}, "drop3");
  p.add_stage(make_sink<int>([&](int v) { got.push_back(v); }), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  std::vector<int> expected;
  for (int i = 0; i < 1000; ++i) {
    if (i % 3 != 0) expected.push_back(i);
  }
  EXPECT_EQ(got, expected);
}

TEST(FarmTest, OnDemandPolicyProcessesAll) {
  Pipeline p;
  std::atomic<int> count{0};
  p.add_stage(counting_source(2000), "src");
  p.add_farm(stage_factory<int, int>([](int v) { return v; }),
             FarmOptions{.replicas = 3, .ordered = false,
                         .policy = SchedPolicy::kOnDemand},
             "ondemand");
  p.add_stage(make_sink<int>([&](int) { ++count; }), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  EXPECT_EQ(count.load(), 2000);
}

TEST(FarmTest, SingleReplicaOrderedFarm) {
  Pipeline p;
  std::vector<int> got;
  p.add_stage(counting_source(100), "src");
  p.add_farm(stage_factory<int, int>([](int v) { return v; }),
             FarmOptions{.replicas = 1, .ordered = true}, "one");
  p.add_stage(make_sink<int>([&](int v) { got.push_back(v); }), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  ASSERT_EQ(got.size(), 100u);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

TEST(FarmTest, TwoFarmsBackToBack) {
  Pipeline p;
  std::vector<int> got;
  p.add_stage(counting_source(1000), "src");
  p.add_farm(stage_factory<int, int>([](int v) { return v + 1; }),
             FarmOptions{.replicas = 2, .ordered = true}, "f1");
  p.add_farm(stage_factory<int, int>([](int v) { return v * 2; }),
             FarmOptions{.replicas = 3, .ordered = true}, "f2");
  p.add_stage(make_sink<int>([&](int v) { got.push_back(v); }), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  ASSERT_EQ(got.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], (i + 1) * 2);
  }
}

TEST(FarmTest, WorkerExceptionAborts) {
  Pipeline p;
  p.add_stage(counting_source(10000), "src");
  p.add_farm(stage_factory<int, int>([](int v) -> int {
               if (v == 123) throw std::runtime_error("worker died");
               return v;
             }),
             FarmOptions{.replicas = 4, .ordered = true}, "dying");
  p.add_stage(make_sink<int>([](int) {}), "sink");
  Status s = p.run_and_wait();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("worker died"), std::string::npos);
}

TEST(FarmTest, AbortUnderBackpressureDoesNotDeadlock) {
  // Regression guard: a worker throws while every queue is saturated (the
  // sink is slow and capacities are tiny); the abort must unwind all
  // threads rather than leaving producers blocked on full queues.
  PipelineOptions opts;
  opts.queue_capacity = 2;
  Pipeline p(opts);
  p.add_stage(counting_source(100000), "src");
  p.add_farm(stage_factory<int, int>([](int v) -> int {
               if (v == 5000) throw std::runtime_error("late failure");
               return v;
             }),
             FarmOptions{.replicas = 3, .ordered = true}, "farm");
  p.add_stage(make_sink<int>([](int v) {
                volatile int spin = 50;  // slow sink builds backpressure
                while (spin > 0) { spin = spin - 1; }
                (void)v;
              }),
              "slow-sink");
  Status s = p.run_and_wait();  // must return, not hang
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("late failure"), std::string::npos);
}

TEST(FarmTest, ReplicaIdsAreDistinct) {
  class IdRecorder final : public Node {
   public:
    explicit IdRecorder(std::set<int>* ids, std::mutex* mu)
        : ids_(ids), mu_(mu) {}
    void on_init(int replica_id) override {
      std::lock_guard<std::mutex> lock(*mu_);
      ids_->insert(replica_id);
    }
    SvcResult svc(Item in) override { return SvcResult::Out(std::move(in)); }
   private:
    std::set<int>* ids_;
    std::mutex* mu_;
  };
  std::set<int> ids;
  std::mutex mu;
  Pipeline p;
  p.add_stage(counting_source(10), "src");
  p.add_farm([&] { return std::make_unique<IdRecorder>(&ids, &mu); },
             FarmOptions{.replicas = 4}, "ids");
  p.add_stage(make_sink<int>([](int) {}), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  EXPECT_EQ(ids, (std::set<int>{0, 1, 2, 3}));
}

TEST(FarmTest, ThreadCountFormula) {
  Pipeline p;
  p.add_stage(counting_source(1), "src");
  p.add_farm(stage_factory<int, int>([](int v) { return v; }),
             FarmOptions{.replicas = 5}, "farm");
  p.add_stage(make_sink<int>([](int) {}), "sink");
  // source + sink + 5 workers + emitter + collector
  EXPECT_EQ(p.thread_count(), 9);
}

// Parameterized sweep: ordered farms preserve order for any replica count
// and queue capacity combination.
class OrderedFarmSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OrderedFarmSweep, PreservesOrder) {
  auto [replicas, capacity] = GetParam();
  PipelineOptions opts;
  opts.queue_capacity = static_cast<std::size_t>(capacity);
  Pipeline p(opts);
  std::vector<int> got;
  p.add_stage(counting_source(1200), "src");
  p.add_farm(stage_factory<int, int>([](int v) { return v; }),
             FarmOptions{.replicas = replicas, .ordered = true}, "id");
  p.add_stage(make_sink<int>([&](int v) { got.push_back(v); }), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  ASSERT_EQ(got.size(), 1200u);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_EQ(got.front(), 0);
  EXPECT_EQ(got.back(), 1199);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OrderedFarmSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(2, 16, 256)));

// ---- failure paths & watchdog -----------------------------------------------------

/// A farm worker throwing mid-stream must drain and return an error under
/// every wait mode: no deadlock, no lost end-of-stream sentinel.
class FarmFailureSweep : public ::testing::TestWithParam<WaitMode> {};

TEST_P(FarmFailureSweep, ThrowingWorkerDrainsAndErrors) {
  PipelineOptions opts;
  opts.wait_mode = GetParam();
  opts.queue_capacity = 8;
  Pipeline p(opts);
  std::atomic<int> sunk{0};
  p.add_stage(counting_source(20000), "src");
  p.add_farm(stage_factory<int, int>([](int v) -> int {
               if (v == 777) throw std::runtime_error("mid-stream failure");
               return v;
             }),
             FarmOptions{.replicas = 4, .ordered = true}, "farm");
  p.add_stage(make_sink<int>([&](int) { sunk.fetch_add(1); }), "sink");
  Status s = p.run_and_wait();  // must return, not hang
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kInternal);
  EXPECT_NE(s.message().find("mid-stream failure"), std::string::npos);
  // The structured report names the failing farm stage.
  ASSERT_FALSE(p.failure_report().ok());
  EXPECT_NE(p.failure_report().failures.front().stage.find("farm"),
            std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllWaitModes, FarmFailureSweep,
                         ::testing::Values(WaitMode::kSpin, WaitMode::kBackoff,
                                           WaitMode::kBlocking));

TEST(FailureReportTest, RecordsEveryFailingStage) {
  Pipeline p;
  p.add_stage(counting_source(50000), "src");
  p.add_stage(make_stage<int, int>([](int v) -> int {
                if (v == 10) throw std::runtime_error("first to die");
                return v;
              }),
              "stage-a");
  p.add_stage(make_stage<int, int>([](int v) -> int {
                if (v == 5) throw std::runtime_error("second to die");
                return v;
              }),
              "stage-b");
  p.add_stage(make_sink<int>([](int) {}), "sink");
  Status s = p.run_and_wait();
  ASSERT_FALSE(s.ok());
  const FailureReport& report = p.failure_report();
  ASSERT_FALSE(report.ok());
  EXPECT_GE(report.failures.size(), 1u);
  // run_and_wait returns exactly the first recorded failure.
  EXPECT_EQ(s.message(), report.first().message());
  EXPECT_NE(report.ToString().find(report.failures.front().stage),
            std::string::npos);
}

TEST(WatchdogTest, HungStageAbortsWithStageName) {
  PipelineOptions opts;
  opts.stall_timeout_seconds = 0.3;
  Pipeline p(opts);
  p.add_stage(counting_source(100), "src");
  p.add_stage(make_stage<int, int>([](int v) -> int {
                if (v == 7) {  // simulate a wedged device call
                  for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
                }
                return v;
              }),
              "wedged");
  p.add_stage(make_sink<int>([](int) {}), "sink");
  auto start = std::chrono::steady_clock::now();
  Status s = p.run_and_wait();
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kAborted);
  EXPECT_NE(s.message().find("wedged"), std::string::npos);
  EXPECT_NE(s.message().find("stalled"), std::string::npos);
  // Fires within the timeout plus the one-timeout grace period (generous
  // slack for loaded CI machines).
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed),
            std::chrono::milliseconds(5000));
}

// A stage still wedged when the watchdog aborts run_and_wait() must be
// joined by the Pipeline destructor once it unwinds within the grace
// period — not detached immediately. (Node callables routinely capture
// references to caller stack state declared before the Pipeline; the
// destructor reaper runs before that state dies.)
TEST(WatchdogTest, StragglerThatUnwindsIsJoinedByDestructor) {
  auto release = std::make_shared<std::atomic<bool>>(false);
  auto finished = std::make_shared<std::atomic<bool>>(false);
  {
    PipelineOptions opts;
    opts.stall_timeout_seconds = 0.2;
    Pipeline p(opts);
    p.add_stage(counting_source(100), "src");
    p.add_stage(make_stage<int, int>([release, finished](int v) -> int {
                  if (v == 3) {  // wedge until the test releases us
                    while (!release->load()) {
                      std::this_thread::sleep_for(std::chrono::milliseconds(5));
                    }
                    finished->store(true);
                  }
                  return v;
                }),
                "wedged");
    p.add_stage(make_sink<int>([](int) {}), "sink");
    Status s = p.run_and_wait();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::kAborted);
    EXPECT_FALSE(finished->load());  // returned while the stage is wedged
    release->store(true);
    // ~Pipeline runs here: the straggler now unwinds promptly and must be
    // joined inside the destructor's grace period.
  }
  EXPECT_TRUE(finished->load());
}

TEST(WatchdogTest, SlowButProgressingStreamIsNotAborted) {
  PipelineOptions opts;
  opts.stall_timeout_seconds = 0.25;
  Pipeline p(opts);
  std::vector<int> got;
  p.add_stage(counting_source(20), "src");
  p.add_stage(make_stage<int, int>([](int v) -> int {
                // Each item takes ~40 ms — well under the per-progress
                // timeout even though the whole stream takes ~800 ms.
                std::this_thread::sleep_for(std::chrono::milliseconds(40));
                return v;
              }),
              "slow");
  p.add_stage(make_sink<int>([&](int v) { got.push_back(v); }), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  EXPECT_EQ(got.size(), 20u);
}

TEST(WatchdogTest, DisabledByDefault) {
  Pipeline p;  // stall_timeout_seconds == 0
  std::vector<int> got;
  p.add_stage(counting_source(10), "src");
  p.add_stage(make_stage<int, int>([](int v) -> int {
                std::this_thread::sleep_for(std::chrono::milliseconds(5));
                return v;
              }),
              "leisurely");
  p.add_stage(make_sink<int>([&](int v) { got.push_back(v); }), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  EXPECT_EQ(got.size(), 10u);
}

// ---- deadline budgets --------------------------------------------------------

namespace {

/// Source emitting `n` ints; odd indices carry an already-expired deadline,
/// even indices a far-future one.
class DeadlineSource final : public Node {
 public:
  explicit DeadlineSource(int n) : n_(n) {}
  SvcResult svc(Item) override {
    if (i_ >= n_) return SvcResult::Eos();
    Item item = Item::of<int>(i_);
    const std::uint64_t now = deadline_clock_now();
    item.set_deadline_ns(i_ % 2 == 1 ? now - 1
                                     : now + 60ull * 1000 * 1000 * 1000);
    ++i_;
    return SvcResult::Out(std::move(item));
  }

 private:
  int i_ = 0;
  int n_;
};

}  // namespace

TEST(DeadlineTest, ExpiredItemsSkipStagesButReachTheSink) {
  telemetry::Registry reg;
  PipelineOptions opts;
  opts.telemetry.registry = &reg;
  opts.telemetry.prefix = "dl";
  Pipeline p(opts);
  std::atomic<int> serviced{0};
  std::vector<std::pair<int, bool>> got;  // (value, expired-at-sink)
  p.add_stage(std::make_unique<DeadlineSource>(10), "src");
  p.add_farm(
      [&serviced] {
        return make_stage<int, int>([&serviced](int v) -> int {
          ++serviced;
          return v;
        });
      },
      FarmOptions{.replicas = 2, .ordered = true}, "work");
  // Raw-node sink so the deadline flag is observable per item.
  class FlagSink final : public Node {
   public:
    explicit FlagSink(std::vector<std::pair<int, bool>>* out) : out_(out) {}
    SvcResult svc(Item in) override {
      out_->emplace_back(in.as<int>(), in.deadline_expired());
      return SvcResult::GoOn();
    }
   private:
    std::vector<std::pair<int, bool>>* out_;
  };
  p.add_stage(std::make_unique<FlagSink>(&got), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());

  // Every item reached the sink, in order (expired ones still hold their
  // sequence slot in the ordered farm).
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].first, i);
    EXPECT_EQ(got[static_cast<std::size_t>(i)].second, i % 2 == 1)
        << "item " << i;
  }
  // The workers never serviced the expired half, and the drops were counted
  // exactly once each.
  EXPECT_EQ(serviced.load(), 5);
  auto snap = reg.snapshot();
  ASSERT_NE(snap.find_counter("dl.deadline_drops"), nullptr);
  EXPECT_EQ(snap.find_counter("dl.deadline_drops")->value, 5u);
}

TEST(DeadlineTest, UnarmedItemsAreNeverDropped) {
  Pipeline p;
  std::vector<int> got;
  p.add_stage(counting_source(50), "src");
  p.add_stage(make_stage<int, int>([](int v) { return v + 1; }), "inc");
  p.add_stage(make_sink<int>([&](int v) { got.push_back(v); }), "sink");
  ASSERT_TRUE(p.run_and_wait().ok());
  ASSERT_EQ(got.size(), 50u);
  EXPECT_EQ(got.front(), 1);
  EXPECT_EQ(got.back(), 50);
}

}  // namespace
}  // namespace hs::flow
