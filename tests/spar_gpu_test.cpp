// Tests for the SPar GPU auto-offload extension (the paper's §VI future
// work): map stages generated for the CUDA and OpenCL backends produce
// results identical to the CPU computation, distribute across devices, and
// respect the shims' semantics (thread-local device state, per-thread
// kernel objects).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <optional>

#include "cudax/cudax.hpp"
#include "spar/gpu_stage.hpp"

namespace hs::spar {
namespace {

/// Reference pipeline output: batches of floats, each x -> x * 2 + 1.
std::vector<std::vector<float>> expected_batches(int nbatches, int batch) {
  std::vector<std::vector<float>> out;
  for (int b = 0; b < nbatches; ++b) {
    std::vector<float> v(static_cast<std::size_t>(batch));
    for (int i = 0; i < batch; ++i) {
      v[static_cast<std::size_t>(i)] =
          static_cast<float>(b * batch + i) * 2.0f + 1.0f;
    }
    out.push_back(std::move(v));
  }
  return out;
}

std::function<std::optional<std::vector<float>>()> batch_source(int nbatches,
                                                                int batch) {
  return [b = 0, nbatches, batch]() mutable
             -> std::optional<std::vector<float>> {
    if (b >= nbatches) return std::nullopt;
    std::vector<float> v(static_cast<std::size_t>(batch));
    for (int i = 0; i < batch; ++i) {
      v[static_cast<std::size_t>(i)] = static_cast<float>(b * batch + i);
    }
    ++b;
    return v;
  };
}

class SparGpuTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
    cudax::bind_machine(machine_.get());
  }
  void TearDown() override { cudax::unbind_machine(); }

  std::vector<std::vector<float>> run_backend(GpuBackend backend,
                                              int replicas) {
    ToStream region("gpu-map");
    region.source<std::vector<float>>(batch_source(12, 100));
    GpuOffload offload;
    offload.machine = machine_.get();
    offload.backend = backend;
    offload.replicas = replicas;
    gpu_map_stage<float>(region, offload,
                         [](float x) { return x * 2.0f + 1.0f; });
    std::vector<std::vector<float>> got;
    region.last_stage<std::vector<float>>(
        [&](std::vector<float> v) { got.push_back(std::move(v)); });
    Status s = region.run();
    EXPECT_TRUE(s.ok()) << s.ToString();
    return got;
  }

  std::unique_ptr<gpusim::Machine> machine_;
};

TEST_F(SparGpuTest, CudaBackendMatchesCpu) {
  auto got = run_backend(GpuBackend::kCuda, 3);
  EXPECT_EQ(got, expected_batches(12, 100));
  // Work actually went to the simulated GPUs, spread across both.
  EXPECT_GT(machine_->device(0).counters().kernels_launched, 0u);
  EXPECT_GT(machine_->device(1).counters().kernels_launched, 0u);
  std::uint64_t total = machine_->device(0).counters().kernels_launched +
                        machine_->device(1).counters().kernels_launched;
  EXPECT_EQ(total, 12u);
}

TEST_F(SparGpuTest, OpenClBackendMatchesCpu) {
  auto got = run_backend(GpuBackend::kOpenCl, 3);
  EXPECT_EQ(got, expected_batches(12, 100));
  std::uint64_t total = machine_->device(0).counters().kernels_launched +
                        machine_->device(1).counters().kernels_launched;
  EXPECT_EQ(total, 12u);
}

TEST_F(SparGpuTest, SingleReplicaWorks) {
  auto got = run_backend(GpuBackend::kCuda, 1);
  EXPECT_EQ(got, expected_batches(12, 100));
}

TEST_F(SparGpuTest, EmptyBatchesPassThrough) {
  ToStream region("gpu-empty");
  region.source<std::vector<float>>(
      [b = 0]() mutable -> std::optional<std::vector<float>> {
        if (b >= 3) return std::nullopt;
        ++b;
        return std::vector<float>{};
      });
  GpuOffload offload;
  offload.machine = machine_.get();
  gpu_map_stage<float>(region, offload, [](float x) { return x; });
  int received = 0;
  region.last_stage<std::vector<float>>([&](std::vector<float> v) {
    EXPECT_TRUE(v.empty());
    ++received;
  });
  ASSERT_TRUE(region.run().ok());
  EXPECT_EQ(received, 3);
  EXPECT_EQ(machine_->device(0).counters().kernels_launched, 0u);
}

TEST_F(SparGpuTest, NonTrivialElementTypeStillComputes) {
  // A trivially-copyable struct element.
  struct Pixel {
    float r, g, b;
  };
  ToStream region("gpu-struct");
  region.source<std::vector<Pixel>>(
      [b = 0]() mutable -> std::optional<std::vector<Pixel>> {
        if (b >= 4) return std::nullopt;
        std::vector<Pixel> v(50);
        for (std::size_t i = 0; i < v.size(); ++i) {
          v[i] = Pixel{static_cast<float>(b), static_cast<float>(i), 0.5f};
        }
        ++b;
        return v;
      });
  GpuOffload offload;
  offload.machine = machine_.get();
  offload.replicas = 2;
  gpu_map_stage<Pixel>(region, offload, [](Pixel p) {
    return Pixel{p.r * 0.5f, p.g * 0.5f, p.b * 0.5f};
  });
  int checked = 0;
  region.last_stage<std::vector<Pixel>>([&](std::vector<Pixel> v) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      EXPECT_FLOAT_EQ(v[i].g, static_cast<float>(i) * 0.5f);
    }
    ++checked;
  });
  ASSERT_TRUE(region.run().ok());
  EXPECT_EQ(checked, 4);
}

TEST_F(SparGpuTest, ComposesWithCpuStages) {
  // CPU pre-stage -> GPU map -> CPU post-stage, order preserved.
  ToStream region("mixed");
  region.source<std::vector<float>>(batch_source(8, 64));
  region.stage<std::vector<float>, std::vector<float>>(
      Replicate(2), [](std::vector<float> v) {
        for (float& x : v) x += 10.0f;  // CPU stage
        return v;
      });
  GpuOffload offload;
  offload.machine = machine_.get();
  offload.replicas = 2;
  gpu_map_stage<float>(region, offload, [](float x) { return x * x; });
  std::vector<float> firsts;
  region.last_stage<std::vector<float>>(
      [&](std::vector<float> v) { firsts.push_back(v[0]); });
  ASSERT_TRUE(region.run().ok());
  ASSERT_EQ(firsts.size(), 8u);
  for (int b = 0; b < 8; ++b) {
    float expect = (static_cast<float>(b * 64) + 10.0f);
    EXPECT_FLOAT_EQ(firsts[static_cast<std::size_t>(b)], expect * expect);
  }
}

TEST_F(SparGpuTest, DeviceMemoryIsReleased) {
  {
    auto got = run_backend(GpuBackend::kCuda, 2);
    ASSERT_EQ(got.size(), 12u);
  }
  EXPECT_EQ(machine_->device(0).memory_used(), 0u);
  EXPECT_EQ(machine_->device(1).memory_used(), 0u);
}

}  // namespace
}  // namespace hs::spar
