// Tests for the standalone streaming LZSS application ([24]'s structure):
// cross-variant container equivalence, roundtrips, corruption handling,
// and the parallel dedup extractor extension.
#include <gtest/gtest.h>

#include "cudax/cudax.hpp"
#include "datagen/corpus.hpp"
#include "dedup/container.hpp"
#include "dedup/pipelines.hpp"
#include "lzssapp/lzss_stream.hpp"

namespace hs::lzssapp {
namespace {

std::vector<std::uint8_t> test_input() {
  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kSourceLike;
  spec.bytes = 300 * 1024;
  spec.seed = 77;
  return datagen::generate(spec);
}

LzssStreamConfig test_config() {
  LzssStreamConfig cfg;
  cfg.block_size = 32 * 1024;
  cfg.lzss.window_size = 128;
  return cfg;
}

TEST(LzssStreamTest, SequentialRoundtrip) {
  auto input = test_input();
  auto archive = compress_sequential(input, test_config());
  ASSERT_TRUE(archive.ok()) << archive.status().ToString();
  EXPECT_LT(archive.value().size(), input.size());  // source text compresses
  auto back = decompress(archive.value());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), input);
}

TEST(LzssStreamTest, SparMatchesSequential) {
  auto input = test_input();
  auto seq = compress_sequential(input, test_config());
  auto spar = compress_spar(input, test_config(), 4);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(spar.ok()) << spar.status().ToString();
  EXPECT_EQ(seq.value(), spar.value());
}

TEST(LzssStreamTest, SparCudaMatchesSequential) {
  auto input = test_input();
  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(machine.get());
  auto seq = compress_sequential(input, test_config());
  auto gpu = compress_spar_cuda(input, test_config(), 3, *machine);
  cudax::unbind_machine();
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(gpu.ok()) << gpu.status().ToString();
  EXPECT_EQ(seq.value(), gpu.value());
  // One FindMatch kernel per block.
  std::uint64_t launches = machine->device(0).counters().kernels_launched +
                           machine->device(1).counters().kernels_launched;
  EXPECT_EQ(launches, (input.size() + 32 * 1024 - 1) / (32 * 1024));
}

TEST(LzssStreamTest, InspectReportsStructure) {
  auto input = test_input();
  auto archive = compress_sequential(input, test_config());
  ASSERT_TRUE(archive.ok());
  auto info = inspect(archive.value());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().original_size, input.size());
  EXPECT_EQ(info.value().block_count,
            (input.size() + 32 * 1024 - 1) / (32 * 1024));
  EXPECT_GT(info.value().compressed_payload, 0u);
}

TEST(LzssStreamTest, CorruptionDetected) {
  auto input = test_input();
  auto archive = compress_sequential(input, test_config());
  ASSERT_TRUE(archive.ok());
  {
    auto bad = archive.value();
    bad[3] ^= 0xFF;  // magic
    EXPECT_EQ(decompress(bad).status().code(), ErrorCode::kDataLoss);
  }
  {
    auto bad = archive.value();
    bad.resize(bad.size() / 3);
    EXPECT_FALSE(decompress(bad).ok());
  }
  {
    auto bad = archive.value();
    bad[bad.size() / 2] ^= 0x10;
    EXPECT_FALSE(decompress(bad).ok());
  }
}

TEST(LzssStreamTest, EmptyInput) {
  auto archive = compress_sequential({}, test_config());
  ASSERT_TRUE(archive.ok());
  auto back = decompress(archive.value());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(LzssStreamTest, InvalidConfigRejected) {
  LzssStreamConfig cfg;
  cfg.lzss.window_size = 1 << 14;  // exceeds offset bits
  EXPECT_FALSE(compress_sequential(test_input(), cfg).ok());
}

}  // namespace
}  // namespace hs::lzssapp

namespace hs::dedup {
namespace {

TEST(ParallelExtractTest, MatchesSerialExtract) {
  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kParsecLike;
  spec.bytes = 400 * 1024;
  auto input = datagen::generate(spec);
  DedupConfig cfg;
  cfg.batch_size = 64 * 1024;
  for (DedupCodec codec : {DedupCodec::kLzss, DedupCodec::kLzssHuffman}) {
    cfg.codec = codec;
    auto archive = archive_sequential(input, cfg);
    ASSERT_TRUE(archive.ok());
    auto serial = extract(archive.value());
    auto parallel = extract_parallel(archive.value(), 4);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(parallel.value(), serial.value());
    EXPECT_EQ(parallel.value(), input);
  }
}

TEST(ParallelExtractTest, CorruptArchivesFailCleanly) {
  datagen::CorpusSpec spec;
  spec.bytes = 100 * 1024;
  auto input = datagen::generate(spec);
  DedupConfig cfg;
  cfg.batch_size = 32 * 1024;
  auto archive = archive_sequential(input, cfg);
  ASSERT_TRUE(archive.ok());
  auto bad = archive.value();
  bad[bad.size() / 2] ^= 0x04;
  auto r = extract_parallel(bad, 4);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kDataLoss);
}

TEST(ParallelExtractTest, SingleReplicaWorks) {
  std::vector<std::uint8_t> input(50000, 'q');
  DedupConfig cfg;
  cfg.batch_size = 8 * 1024;
  auto archive = archive_sequential(input, cfg);
  ASSERT_TRUE(archive.ok());
  auto r = extract_parallel(archive.value(), 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), input);
}

}  // namespace
}  // namespace hs::dedup
