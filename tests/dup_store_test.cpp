// Persistent sharded DupStore suite (DESIGN.md §4j): archive-local check()
// semantics (exact DupCache behaviour), concurrent record/lookup/spill from
// many threads (run under TSan in CI), segment spill + recovery-on-open
// including truncation and bit-rot quarantine, and the restart-equivalence
// contract: archives produced against a recovered store are byte-identical
// to the first run's.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "datagen/corpus.hpp"
#include "dedup/dup_store.hpp"
#include "dedup/pipelines.hpp"
#include "dedup/stages.hpp"
#include "kernels/sha1.hpp"

namespace hs::dedup {
namespace {

namespace fs = std::filesystem;

kernels::Sha1Digest digest_of(std::uint64_t v) {
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return kernels::Sha1::hash(std::span<const std::uint8_t>(bytes, 8));
}

/// Fresh scratch directory per test, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = (fs::temp_directory_path() /
            ("dup_store_test_" + tag + "_" +
             std::to_string(::getpid())))
               .string();
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

TEST(DupStoreTest, CheckAssignsStreamOrderIds) {
  DupStore store;
  Batch batch;
  batch.blocks.resize(4);
  batch.blocks[0].digest = digest_of(1);
  batch.blocks[1].digest = digest_of(2);
  batch.blocks[2].digest = digest_of(1);  // dup of block 0
  batch.blocks[3].digest = digest_of(3);
  store.check(batch);
  EXPECT_FALSE(batch.blocks[0].duplicate);
  EXPECT_EQ(batch.blocks[0].global_id, 0u);
  EXPECT_FALSE(batch.blocks[1].duplicate);
  EXPECT_EQ(batch.blocks[1].global_id, 1u);
  EXPECT_TRUE(batch.blocks[2].duplicate);
  EXPECT_EQ(batch.blocks[2].global_id, 0u);
  EXPECT_FALSE(batch.blocks[3].duplicate);
  EXPECT_EQ(batch.blocks[3].global_id, 2u);
  EXPECT_EQ(store.unique_count(), 3u);
}

TEST(DupStoreTest, RecordAndLookupInMemory) {
  DupStore store;
  bool present = true;
  const std::uint64_t id_a = store.record(digest_of(7), &present);
  EXPECT_FALSE(present);
  const std::uint64_t id_b = store.record(digest_of(8), &present);
  EXPECT_FALSE(present);
  EXPECT_NE(id_a, id_b);
  EXPECT_EQ(store.record(digest_of(7), &present), id_a);
  EXPECT_TRUE(present);
  std::uint64_t id = 0;
  EXPECT_TRUE(store.lookup(digest_of(8), &id));
  EXPECT_EQ(id, id_b);
  EXPECT_FALSE(store.lookup(digest_of(9), &id));
  const DupStore::Stats s = store.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.store_hits, 1u);
  EXPECT_EQ(s.store_misses, 2u);
  // No directory attached: spill is a no-op, not an error.
  EXPECT_TRUE(store.spill().ok());
  EXPECT_EQ(store.stats().spills, 0u);
}

TEST(DupStoreTest, SpillAndRecover) {
  TempDir dir("spill");
  constexpr std::uint64_t kCount = 1000;
  {
    DupStore store;
    ASSERT_TRUE(store.open(dir.path).ok());
    for (std::uint64_t i = 0; i < kCount; ++i) store.record(digest_of(i), nullptr);
    ASSERT_TRUE(store.spill().ok());
    // Second spill with nothing new pending: no extra segment.
    ASSERT_TRUE(store.spill().ok());
    EXPECT_EQ(store.stats().spills, 1u);
    EXPECT_EQ(store.stats().pending_entries, 0u);
  }
  DupStore recovered;
  ASSERT_TRUE(recovered.open(dir.path).ok());
  const DupStore::Stats s = recovered.stats();
  EXPECT_EQ(s.entries, kCount);
  EXPECT_EQ(s.entries_recovered, kCount);
  EXPECT_EQ(s.segments_loaded, 1u);
  EXPECT_EQ(s.truncated_segments, 0u);
  EXPECT_EQ(s.quarantined_segments, 0u);
  // Every digest resolves to the id it was assigned pre-restart, and
  // re-recording counts as a hit, not an insert.
  bool present = false;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    std::uint64_t id = 0;
    ASSERT_TRUE(recovered.lookup(digest_of(i), &id));
    recovered.record(digest_of(i), &present);
    EXPECT_TRUE(present);
  }
  EXPECT_EQ(recovered.stats().store_misses, 0u);
  // New ids resume above every recovered one.
  const std::uint64_t fresh = recovered.record(digest_of(kCount + 5), nullptr);
  EXPECT_GE(fresh, kCount);
}

TEST(DupStoreTest, MultipleSegmentsAccumulate) {
  TempDir dir("multi");
  {
    DupStore store;
    ASSERT_TRUE(store.open(dir.path).ok());
    for (std::uint64_t i = 0; i < 100; ++i) store.record(digest_of(i), nullptr);
    ASSERT_TRUE(store.spill().ok());
    for (std::uint64_t i = 100; i < 250; ++i) store.record(digest_of(i), nullptr);
    ASSERT_TRUE(store.spill().ok());
  }
  DupStore recovered;
  ASSERT_TRUE(recovered.open(dir.path).ok());
  EXPECT_EQ(recovered.stats().segments_loaded, 2u);
  EXPECT_EQ(recovered.stats().entries, 250u);
  // A post-recovery spill must not clobber an existing segment index.
  recovered.record(digest_of(9999), nullptr);
  ASSERT_TRUE(recovered.spill().ok());
  DupStore again;
  ASSERT_TRUE(again.open(dir.path).ok());
  EXPECT_EQ(again.stats().segments_loaded, 3u);
  EXPECT_EQ(again.stats().entries, 251u);
}

TEST(DupStoreTest, TruncatedSegmentRecoversPrefix) {
  TempDir dir("trunc");
  {
    DupStore store;
    ASSERT_TRUE(store.open(dir.path).ok());
    for (std::uint64_t i = 0; i < 500; ++i) store.record(digest_of(i), nullptr);
    ASSERT_TRUE(store.spill().ok());
  }
  const fs::path seg = fs::path(dir.path) / "segment-000000.dup";
  ASSERT_TRUE(fs::exists(seg));
  // Chop the file mid-entry: header + 123 whole entries + 7 stray bytes.
  const std::uintmax_t keep =
      DupStore::kHeaderBytes + 123 * DupStore::kEntryBytes + 7;
  fs::resize_file(seg, keep);
  DupStore recovered;
  ASSERT_TRUE(recovered.open(dir.path).ok());
  const DupStore::Stats s = recovered.stats();
  EXPECT_EQ(s.truncated_segments, 1u);
  EXPECT_EQ(s.quarantined_segments, 0u);
  EXPECT_EQ(s.entries, 123u);
}

TEST(DupStoreTest, BitFlipQuarantinesSegment) {
  TempDir dir("rot");
  {
    DupStore store;
    ASSERT_TRUE(store.open(dir.path).ok());
    for (std::uint64_t i = 0; i < 64; ++i) store.record(digest_of(i), nullptr);
    ASSERT_TRUE(store.spill().ok());
  }
  const std::string seg =
      (fs::path(dir.path) / "segment-000000.dup").string();
  // Flip one payload bit; the trailer SHA-1 must catch it.
  std::FILE* f = std::fopen(seg.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, static_cast<long>(DupStore::kHeaderBytes + 10), SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, -1, SEEK_CUR);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
  DupStore recovered;
  ASSERT_TRUE(recovered.open(dir.path).ok());
  const DupStore::Stats s = recovered.stats();
  EXPECT_EQ(s.quarantined_segments, 1u);
  EXPECT_EQ(s.entries, 0u);
  // The quarantined file is left in place for forensics, not deleted.
  EXPECT_TRUE(fs::exists(seg));
}

TEST(DupStoreTest, RecoveryFuzzRandomTruncation) {
  Xoshiro256 rng(0xD00D);
  for (int round = 0; round < 10; ++round) {
    TempDir dir("fuzz" + std::to_string(round));
    const std::uint64_t count = 50 + rng() % 400;
    {
      DupStore store;
      ASSERT_TRUE(store.open(dir.path).ok());
      for (std::uint64_t i = 0; i < count; ++i) {
        store.record(digest_of(i * 7919 + round), nullptr);
      }
      ASSERT_TRUE(store.spill().ok());
    }
    const fs::path seg = fs::path(dir.path) / "segment-000000.dup";
    const std::uintmax_t full = fs::file_size(seg);
    const std::uintmax_t keep = rng() % (full + 1);
    fs::resize_file(seg, keep);
    DupStore recovered;
    ASSERT_TRUE(recovered.open(dir.path).ok());
    const DupStore::Stats s = recovered.stats();
    if (keep >= full) {
      EXPECT_EQ(s.entries, count);
    } else if (keep < DupStore::kHeaderBytes) {
      EXPECT_EQ(s.entries, 0u);  // header gone: quarantined
      EXPECT_EQ(s.quarantined_segments, 1u);
    } else {
      const std::uint64_t expect =
          std::min<std::uint64_t>((keep - DupStore::kHeaderBytes) /
                                      DupStore::kEntryBytes,
                                  count);
      EXPECT_EQ(s.entries, expect) << "keep=" << keep << "/" << full;
      EXPECT_EQ(s.truncated_segments, 1u);
    }
    // Whatever was recovered, the store stays usable.
    recovered.record(digest_of(1u << 30), nullptr);
    EXPECT_TRUE(recovered.spill().ok());
  }
}

// Mixed concurrent record/lookup/spill across every shard — the TSan CI
// job runs this; any missing lock on the shard maps or the spill
// bookkeeping trips it.
TEST(DupStoreTest, ConcurrentRecordLookupSpill) {
  TempDir dir("conc");
  DupStore store;
  ASSERT_TRUE(store.open(dir.path).ok());
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 4000;
  std::atomic<std::uint64_t> hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        // Half the keyspace is shared across threads: real contention on
        // both the hit and the insert path of every shard.
        const std::uint64_t key =
            (i % 2 == 0) ? i : (static_cast<std::uint64_t>(t) << 32) | i;
        bool present = false;
        store.record(digest_of(key), &present);
        if (present) hits.fetch_add(1, std::memory_order_relaxed);
        std::uint64_t id = 0;
        store.lookup(digest_of(key), &id);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(store.spill().ok());
      std::this_thread::yield();
    }
  });
  for (auto& th : threads) th.join();
  ASSERT_TRUE(store.spill().ok());
  const DupStore::Stats s = store.stats();
  EXPECT_EQ(s.store_hits + s.store_misses,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.entries, s.store_misses);
  EXPECT_EQ(s.pending_entries, 0u);
  // Everything recorded concurrently must be recoverable.
  DupStore recovered;
  ASSERT_TRUE(recovered.open(dir.path).ok());
  EXPECT_EQ(recovered.stats().entries, s.entries);
}

// Restart equivalence, the contract the CI persistence leg automates:
// archiving the same input against a fresh store and against a recovered
// one yields byte-identical archives, and the recovered run sees every
// block as a store hit.
TEST(DupStoreTest, CrossRestartIdenticalArchives) {
  TempDir dir("restart");
  const auto input = datagen::generate(
      {datagen::CorpusKind::kParsecLike, 1500 * 1000, 7});
  DedupConfig cfg;
  cfg.batch_size = 256 * 1024;
  cfg.rabin.mask = 0x7FF;

  std::vector<std::uint8_t> first;
  std::uint64_t blocks = 0;
  {
    DupStore store;
    ASSERT_TRUE(store.open(dir.path).ok());
    auto archive = archive_sequential(input, cfg, &store);
    ASSERT_TRUE(archive.ok());
    first = std::move(archive).value();
    ASSERT_TRUE(store.spill().ok());
    const DupStore::Stats s = store.stats();
    blocks = s.store_hits + s.store_misses;
    EXPECT_GT(s.store_misses, 0u);
  }
  {
    DupStore store;
    ASSERT_TRUE(store.open(dir.path).ok());
    auto archive = archive_sequential(input, cfg, &store);
    ASSERT_TRUE(archive.ok());
    EXPECT_EQ(archive.value(), first);
    const DupStore::Stats s = store.stats();
    EXPECT_EQ(s.store_misses, 0u);  // every digest recovered from disk
    EXPECT_EQ(s.store_hits, blocks);
  }
  // The parallel pipeline against the same recovered store: same bytes.
  {
    DupStore store;
    ASSERT_TRUE(store.open(dir.path).ok());
    SparCpuOptions opts;
    opts.workers_hash = 3;
    opts.workers_compress = 3;
    opts.store = &store;
    auto archive = archive_spar_cpu(input, cfg, opts);
    ASSERT_TRUE(archive.ok());
    EXPECT_EQ(archive.value(), first);
    EXPECT_EQ(store.stats().store_misses, 0u);
  }
}

// Attaching a store must never change the archive relative to no store at
// all (the store is telemetry; ids come from the archive-local check()).
TEST(DupStoreTest, StoreAttachmentDoesNotChangeArchive) {
  TempDir dir("inert");
  const auto input = datagen::generate(
      {datagen::CorpusKind::kSourceLike, 800 * 1000, 11});
  DedupConfig cfg;
  cfg.batch_size = 128 * 1024;
  cfg.rabin.mask = 0x7FF;
  auto plain = archive_sequential(input, cfg);
  ASSERT_TRUE(plain.ok());
  DupStore store;
  ASSERT_TRUE(store.open(dir.path).ok());
  auto with_store = archive_sequential(input, cfg, &store);
  ASSERT_TRUE(with_store.ok());
  EXPECT_EQ(plain.value(), with_store.value());
}

}  // namespace
}  // namespace hs::dedup
