// Unit tests for src/common: status, formatting, stats, CLI, RNG, table.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <vector>

#include "common/backoff.hpp"
#include "common/cli.hpp"
#include "common/unique_function.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/table.hpp"

namespace hs {
namespace {

// ---- Status / Result -------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = OutOfMemory("device 0 full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOutOfMemory);
  EXPECT_EQ(s.message(), "device 0 full");
  EXPECT_EQ(s.ToString(), "OUT_OF_MEMORY: device 0 full");
}

TEST(StatusTest, AllCodesHaveStableNames) {
  EXPECT_EQ(error_code_name(ErrorCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_EQ(error_code_name(ErrorCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(error_code_name(ErrorCode::kFailedPrecondition),
            "FAILED_PRECONDITION");
  EXPECT_EQ(error_code_name(ErrorCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_EQ(error_code_name(ErrorCode::kAlreadyExists), "ALREADY_EXISTS");
  EXPECT_EQ(error_code_name(ErrorCode::kInternal), "INTERNAL");
  EXPECT_EQ(error_code_name(ErrorCode::kUnimplemented), "UNIMPLEMENTED");
  EXPECT_EQ(error_code_name(ErrorCode::kAborted), "ABORTED");
  EXPECT_EQ(error_code_name(ErrorCode::kDataLoss), "DATA_LOSS");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

// ---- format ---------------------------------------------------------------

TEST(FormatTest, HexRoundtrip) {
  std::vector<std::uint8_t> bytes = {0x00, 0x01, 0xAB, 0xFF, 0x7E};
  std::string hex = to_hex(bytes);
  EXPECT_EQ(hex, "0001abff7e");
  auto back = from_hex(hex);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), back.value().begin(),
                         back.value().end()));
}

TEST(FormatTest, HexUpperCaseAccepted) {
  auto r = from_hex("ABCDEF");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_hex(r.value()), "abcdef");
}

TEST(FormatTest, HexRejectsOddLength) {
  EXPECT_FALSE(from_hex("abc").ok());
}

TEST(FormatTest, HexRejectsNonHex) {
  EXPECT_FALSE(from_hex("zz").ok());
}

TEST(FormatTest, FormatBytesUsesDecimalUnits) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(185000000), "185.00 MB");
  EXPECT_EQ(format_bytes(202130000), "202.13 MB");
  EXPECT_EQ(format_bytes(1500), "1.50 kB");
}

TEST(FormatTest, ParseBytesDecimalAndBinary) {
  EXPECT_EQ(parse_bytes("185MB").value(), 185000000u);
  EXPECT_EQ(parse_bytes("1MiB").value(), 1048576u);
  EXPECT_EQ(parse_bytes("4096").value(), 4096u);
  EXPECT_EQ(parse_bytes("1.5 kB").value(), 1500u);
  EXPECT_EQ(parse_bytes("2gib").value(), 2147483648u);
}

TEST(FormatTest, ParseBytesErrors) {
  EXPECT_FALSE(parse_bytes("MB").ok());
  EXPECT_FALSE(parse_bytes("12XB").ok());
  EXPECT_FALSE(parse_bytes("").ok());
}

TEST(FormatTest, FormatSeconds) {
  EXPECT_EQ(format_seconds(400.0), "400.00s");
  EXPECT_EQ(format_seconds(0.129), "129.00ms");
  EXPECT_EQ(format_seconds(12e-6), "12.00us");
  EXPECT_EQ(format_seconds(3e-9), "3.0ns");
}

// ---- stats ------------------------------------------------------------------

TEST(StatsTest, MeanAndStddev) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic textbook dataset
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(StatsTest, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    double x = i * 0.37 - 3.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(StatsTest, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

// ---- rng ---------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, SeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(RngTest, RangeInclusive) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all 4 values hit in 1000 draws
}

TEST(RngTest, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, RunLengthMeanRoughlyMatches) {
  Xoshiro256 rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.run_length(50.0));
  EXPECT_NEAR(sum / n, 50.0, 5.0);
}

TEST(RngTest, SplitIsIndependent) {
  Xoshiro256 a(42);
  Xoshiro256 b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_EQ(same, 0);
}

// ---- cli ---------------------------------------------------------------------

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v = {"prog"};
  v.insert(v.end(), args);
  return v;
}

TEST(CliTest, ParsesEqualsForm) {
  auto v = argv_of({"--dim=2000", "--label=mandel"});
  auto args = CliArgs::Parse(static_cast<int>(v.size()), v.data());
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args.value().get_int("dim", 0), 2000);
  EXPECT_EQ(args.value().get_string("label", ""), "mandel");
}

TEST(CliTest, ParsesSpaceForm) {
  auto v = argv_of({"--workers", "19", "pos1"});
  auto args = CliArgs::Parse(static_cast<int>(v.size()), v.data());
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args.value().get_int("workers", 0), 19);
  ASSERT_EQ(args.value().positional().size(), 1u);
  EXPECT_EQ(args.value().positional()[0], "pos1");
}

TEST(CliTest, BooleanForms) {
  auto v = argv_of({"--ordered", "--no-overlap"});
  auto args = CliArgs::Parse(static_cast<int>(v.size()), v.data());
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args.value().get_bool("ordered", false));
  EXPECT_FALSE(args.value().get_bool("overlap", true));
  EXPECT_TRUE(args.value().get_bool("absent", true));
}

TEST(CliTest, BytesFlag) {
  auto v = argv_of({"--input-size=185MB"});
  auto args = CliArgs::Parse(static_cast<int>(v.size()), v.data());
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args.value().get_bytes("input-size", 0), 185000000u);
}

TEST(CliTest, FallbacksOnMissingOrMalformed) {
  auto v = argv_of({"--dim=abc"});
  auto args = CliArgs::Parse(static_cast<int>(v.size()), v.data());
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args.value().get_int("dim", 7), 7);
  EXPECT_EQ(args.value().get_double("nope", 1.5), 1.5);
}

TEST(CliTest, ValidatedIntRejectsZeroNegativeAndGarbage) {
  auto v = argv_of({"--workers=0", "--batch-lines=-4", "--tokens=abc",
                    "--replicas=19"});
  auto args = CliArgs::Parse(static_cast<int>(v.size()), v.data());
  ASSERT_TRUE(args.ok());
  const CliArgs& a = args.value();

  auto workers = a.get_positive_int("workers", 20);
  ASSERT_FALSE(workers.ok());
  EXPECT_EQ(workers.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(workers.status().message().find("--workers=0"),
            std::string::npos);

  auto batch = a.get_positive_int("batch-lines", 32);
  ASSERT_FALSE(batch.ok());
  EXPECT_NE(batch.status().message().find("must be >= 1"), std::string::npos);

  auto tokens = a.get_positive_int("tokens", 38);
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("not an integer"),
            std::string::npos);

  auto replicas = a.get_positive_int("replicas", 1);
  ASSERT_TRUE(replicas.ok());
  EXPECT_EQ(replicas.value(), 19);

  // Absent flags keep the fallback without validation fuss.
  auto absent = a.get_positive_int("absent", 7);
  ASSERT_TRUE(absent.ok());
  EXPECT_EQ(absent.value(), 7);
}

TEST(CliTest, ValidatedIntHonorsRange) {
  auto v = argv_of({"--devices=5"});
  auto args = CliArgs::Parse(static_cast<int>(v.size()), v.data());
  ASSERT_TRUE(args.ok());
  auto devices = args.value().get_int_in_range("devices", 1, 1, 4);
  ASSERT_FALSE(devices.ok());
  EXPECT_NE(devices.status().message().find("<= 4"), std::string::npos);
  auto ok = args.value().get_int_in_range("devices", 1, 1, 8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
}

TEST(CliTest, ValidatedBytesRejectsZeroAndGarbage) {
  auto v = argv_of({"--batch-size=0", "--input-size=12parsecs",
                    "--device-mem=1GiB"});
  auto args = CliArgs::Parse(static_cast<int>(v.size()), v.data());
  ASSERT_TRUE(args.ok());
  const CliArgs& a = args.value();

  auto batch = a.get_positive_bytes("batch-size", 1 << 20);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(batch.status().message().find("--batch-size=0"),
            std::string::npos);

  auto input = a.get_positive_bytes("input-size", 1);
  ASSERT_FALSE(input.ok());

  auto mem = a.get_positive_bytes("device-mem", 1);
  ASSERT_TRUE(mem.ok());
  EXPECT_EQ(mem.value(), 1024ull * 1024 * 1024);
}

// ---- table --------------------------------------------------------------------

TEST(TableTest, RendersAlignedAscii) {
  Table t("Fig. 1");
  t.set_header({"version", "time", "speedup"});
  t.add_row({"sequential", "400.00s", "1.0x"});
  t.add_row({"cuda batch 32", "8.90s", "45.0x"});
  std::string out = t.to_string();
  EXPECT_NE(out.find("== Fig. 1 =="), std::string::npos);
  EXPECT_NE(out.find("| version"), std::string::npos);
  EXPECT_NE(out.find("45.0x"), std::string::npos);
  // Every data line has the same length (alignment).
  std::istringstream is(out);
  std::string line;
  std::size_t len = 0;
  std::getline(is, line);  // title
  while (std::getline(is, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len) << line;
  }
}

TEST(TableTest, CsvEscapesSpecials) {
  Table t;
  t.set_header({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  EXPECT_EQ(t.to_csv(), "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(TableTest, SeparatorSkippedInCsv) {
  Table t;
  t.set_header({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  EXPECT_EQ(t.to_csv(), "a\n1\n2\n");
  EXPECT_EQ(t.row_count(), 3u);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t;
  t.set_header({"a", "b", "c"});
  t.add_row({"only"});
  std::string out = t.to_string();
  EXPECT_NE(out.find("only"), std::string::npos);
}

// ---- UniqueFunction --------------------------------------------------------------

TEST(UniqueFunctionTest, CallsMoveOnlyTargets) {
  auto payload = std::make_unique<int>(7);
  UniqueFunction<int()> f = [p = std::move(payload)] { return *p; };
  EXPECT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(), 7);
}

TEST(UniqueFunctionTest, EmptyAndMoveSemantics) {
  UniqueFunction<void()> f;
  EXPECT_FALSE(static_cast<bool>(f));
  int count = 0;
  UniqueFunction<void()> g = [&count] { ++count; };
  UniqueFunction<void()> h = std::move(g);
  EXPECT_FALSE(static_cast<bool>(g));  // NOLINT(bugprone-use-after-move)
  h();
  EXPECT_EQ(count, 1);
}

TEST(UniqueFunctionTest, ArgumentsAndReturns) {
  UniqueFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
  UniqueFunction<std::string(std::string)> echo =
      [](std::string s) { return s + "!"; };
  EXPECT_EQ(echo("hi"), "hi!");
}

// ---- Backoff ----------------------------------------------------------------------

TEST(BackoffTest, EscalatesAndResets) {
  Backoff b;
  EXPECT_FALSE(b.sleeping());
  for (int i = 0; i < 400; ++i) b.pause();
  EXPECT_TRUE(b.sleeping());
  b.reset();
  EXPECT_FALSE(b.sleeping());
}

}  // namespace
}  // namespace hs
