// Tests for the host performance model and the Mandelbrot calibration.
#include <gtest/gtest.h>

#include "mandel/calibrate.hpp"
#include "perfmodel/host_model.hpp"

namespace hs {
namespace {

using gpusim::DeviceSpec;
using gpusim::Machine;
using perfmodel::HostProfile;
using perfmodel::ModeledHost;

TEST(ModeledHostTest, TasksChainOnTheWorker) {
  auto machine = Machine::Create(0, DeviceSpec::TitanXP());
  ModeledHost worker(machine.get(), "w");
  worker.work(1.0);
  worker.work(2.0);
  EXPECT_DOUBLE_EQ(worker.finish_time(), 3.0);
}

TEST(ModeledHostTest, IndependentWorkersOverlap) {
  auto machine = Machine::Create(0, DeviceSpec::TitanXP());
  ModeledHost a(machine.get(), "a");
  ModeledHost b(machine.get(), "b");
  a.work(5.0);
  b.work(3.0);
  EXPECT_DOUBLE_EQ(machine->makespan(), 5.0);
}

TEST(ModeledHostTest, DependenciesDelayStart) {
  auto machine = Machine::Create(0, DeviceSpec::TitanXP());
  ModeledHost producer(machine.get(), "p");
  ModeledHost consumer(machine.get(), "c");
  des::TaskId made = producer.work(4.0);
  consumer.work_after(1.0, made);
  EXPECT_DOUBLE_EQ(consumer.finish_time(), 5.0);
}

TEST(ModeledHostTest, WaitIsZeroCostJoin) {
  auto machine = Machine::Create(0, DeviceSpec::TitanXP());
  ModeledHost a(machine.get(), "a");
  ModeledHost b(machine.get(), "b");
  des::TaskId t = a.work(7.0);
  b.work(1.0);
  b.wait(t);
  EXPECT_DOUBLE_EQ(b.finish_time(), 7.0);
}

TEST(ModeledHostTest, StreamWaitHostBridgesToDevice) {
  auto machine = Machine::Create(1, DeviceSpec::TitanXP());
  ModeledHost host(machine.get(), "h");
  des::TaskId enq = host.work(0.5);
  gpusim::Device& dev = machine->device(0);
  perfmodel::stream_wait_host(dev, dev.default_stream(), enq);
  auto k = dev.launch(gpusim::Dim3{1, 1, 1}, gpusim::Dim3{32, 1, 1}, {},
                      dev.default_stream(), [](const gpusim::ThreadCtx&) {});
  ASSERT_TRUE(k.ok());
  // The kernel cannot start before the host issued it at t=0.5.
  EXPECT_GE(machine->finish_time(k.value().task), 0.5);
}

TEST(HostProfileTest, PaperTestbedDefaults) {
  HostProfile p = HostProfile::I9_7900X();
  EXPECT_EQ(p.hw_threads, 20);
  EXPECT_GT(p.seconds_per_mandel_iter, 0);
  EXPECT_GT(p.seconds_per_rabin_byte, 0);
  EXPECT_GT(p.taskx_item_overhead, p.flow_item_overhead);  // TBB > FF
}

// ---- calibration ---------------------------------------------------------------

class CalibrateTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kernels::MandelParams p;
    p.dim = 200;
    p.niter = 20000;
    map_ = new mandel::IterationMap(mandel::IterationMap::compute(p));
  }
  static void TearDownTestSuite() {
    delete map_;
    map_ = nullptr;
  }
  static mandel::IterationMap* map_;
};

mandel::IterationMap* CalibrateTest::map_ = nullptr;

TEST_F(CalibrateTest, AnchorsAreHit) {
  mandel::PaperAnchors anchors;
  mandel::ModeledConfig cfg = mandel::calibrate_to_paper(*map_, anchors);

  // Anchor 1: sequential time.
  auto seq = run_sequential(*map_, cfg);
  EXPECT_NEAR(seq.modeled_seconds, anchors.sequential_seconds,
              anchors.sequential_seconds * 0.02);

  // Anchor 3: per-line naive time (refined iteratively).
  auto naive = run_gpu_single_thread(*map_, cfg, mandel::GpuApi::kCuda,
                                     mandel::GpuMode::kPerLine1D);
  EXPECT_NEAR(naive.modeled_seconds, anchors.per_line_seconds,
              anchors.per_line_seconds * 0.05);

  // Anchor 2: batched compute time (display hidden with 4 buffers).
  mandel::ModeledConfig quiet = cfg;
  quiet.buffers_per_gpu = 4;
  quiet.host.show_line_base = 0;
  quiet.host.show_line_per_pixel = 0;
  auto batched = run_gpu_single_thread(*map_, quiet, mandel::GpuApi::kCuda,
                                       mandel::GpuMode::kBatched);
  EXPECT_NEAR(batched.modeled_seconds, anchors.batched_compute_seconds,
              anchors.batched_compute_seconds * 0.05);
}

TEST_F(CalibrateTest, WarpCostHelpersAreConsistent) {
  gpusim::DeviceSpec spec = gpusim::DeviceSpec::TitanXP();
  double total32 = mandel::batched_warp_cost_total(*map_, 32, spec);
  double total8 = mandel::batched_warp_cost_total(*map_, 8, spec);
  EXPECT_GT(total32, 0);
  // Smaller batches only change padding warps, not the order of magnitude.
  EXPECT_NEAR(total32 / total8, 1.0, 0.2);
  // The per-line max sum is bounded by dim * (niter + 1).
  double line_max = mandel::per_line_max_cost_total(*map_);
  EXPECT_GT(line_max, 0);
  EXPECT_LE(line_max, 200.0 * (20000 + 1));
}

TEST_F(CalibrateTest, LadderOrderingSurvivesCalibration) {
  mandel::ModeledConfig cfg = mandel::calibrate_to_paper(*map_);
  auto naive = run_gpu_single_thread(*map_, cfg, mandel::GpuApi::kCuda,
                                     mandel::GpuMode::kPerLine1D);
  auto batched = run_gpu_single_thread(*map_, cfg, mandel::GpuApi::kCuda,
                                       mandel::GpuMode::kBatched);
  mandel::ModeledConfig dual = cfg;
  dual.devices = 2;
  dual.buffers_per_gpu = 2;
  auto two = run_gpu_single_thread(*map_, dual, mandel::GpuApi::kCuda,
                                   mandel::GpuMode::kBatched);
  EXPECT_GT(naive.modeled_seconds, batched.modeled_seconds);
  EXPECT_GT(batched.modeled_seconds, two.modeled_seconds);
  EXPECT_EQ(naive.checksum, batched.checksum);
  EXPECT_EQ(two.checksum, batched.checksum);
}

}  // namespace
}  // namespace hs
