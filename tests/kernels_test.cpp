// Tests for the computational kernels: Mandelbrot math, SHA-1/SHA-256
// against FIPS vectors, Rabin chunking invariants, LZSS roundtrips and the
// batched FindMatch equivalence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "kernels/lzss.hpp"
#include "kernels/mandel.hpp"
#include "kernels/rabin.hpp"
#include "kernels/sha1.hpp"
#include "kernels/sha256.hpp"

namespace hs::kernels {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

// ---- Mandelbrot ----------------------------------------------------------------

TEST(MandelTest, InteriorPointRunsAllIterations) {
  MandelParams p;
  p.dim = 100;
  p.niter = 500;
  // The image center (0,0 in the complex plane) is inside the set.
  int i = static_cast<int>((0.0 - p.init_b) / p.step());
  int j = static_cast<int>((0.0 - p.init_a) / p.step());
  EXPECT_EQ(mandel_iterations(p, i, j), p.niter);
  EXPECT_EQ(mandel_color(p.niter, p.niter), 0);  // interior plotted black
}

TEST(MandelTest, ExteriorPointEscapesQuickly) {
  MandelParams p;
  p.dim = 100;
  p.niter = 500;
  // The top-left corner (-2.125, -1.5i) lies outside the radius-2 circle
  // region of slow escape; it must escape in a handful of iterations.
  EXPECT_LT(mandel_iterations(p, 0, 0), 10);
  EXPECT_GT(mandel_color(1, 500), 200);  // fast escapees plotted bright
}

TEST(MandelTest, LineMatchesPixelwiseComputation) {
  MandelParams p;
  p.dim = 64;
  p.niter = 100;
  std::vector<std::uint8_t> row(64);
  std::uint64_t cost = mandel_line(p, 32, row);
  EXPECT_GT(cost, 0u);
  for (int j = 0; j < p.dim; ++j) {
    EXPECT_EQ(row[static_cast<std::size_t>(j)],
              mandel_color(mandel_iterations(p, 32, j), p.niter));
  }
}

TEST(MandelTest, CostReflectsDivergence) {
  // A line through the set's interior costs far more than the first line.
  MandelParams p;
  p.dim = 128;
  p.niter = 2000;
  std::vector<std::uint8_t> row(128);
  std::uint64_t edge = mandel_line(p, 0, row);
  std::uint64_t center = mandel_line(p, 64, row);
  EXPECT_GT(center, 5 * edge);
}

// ---- SHA-1 ------------------------------------------------------------------------

TEST(Sha1Test, FipsVectors) {
  EXPECT_EQ(digest_hex(Sha1::hash(bytes_of("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(digest_hex(Sha1::hash(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(digest_hex(Sha1::hash({})),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, MillionAs) {
  std::vector<std::uint8_t> data(1000000, 'a');
  EXPECT_EQ(digest_hex(Sha1::hash(data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  Xoshiro256 rng(1);
  std::vector<std::uint8_t> data(10000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  // Feed in awkward chunk sizes crossing the 64-byte block boundary.
  for (std::size_t chunk : {1ul, 7ul, 63ul, 64ul, 65ul, 1000ul}) {
    Sha1 ctx;
    for (std::size_t i = 0; i < data.size(); i += chunk) {
      std::size_t n = std::min(chunk, data.size() - i);
      ctx.update(std::span<const std::uint8_t>(data.data() + i, n));
    }
    EXPECT_EQ(ctx.finish(), Sha1::hash(data)) << "chunk=" << chunk;
  }
}

TEST(Sha1Test, LengthSweepAroundPaddingBoundaries) {
  // Every length near the 56/64-byte padding edges hashes distinctly and
  // deterministically.
  std::vector<Sha1Digest> seen;
  for (std::size_t len = 50; len <= 70; ++len) {
    std::vector<std::uint8_t> data(len, 0x5C);
    Sha1Digest d1 = Sha1::hash(data);
    Sha1Digest d2 = Sha1::hash(data);
    EXPECT_EQ(d1, d2);
    for (const auto& prev : seen) EXPECT_NE(d1, prev);
    seen.push_back(d1);
  }
}

TEST(Sha1Test, CompressionRoundsModel) {
  EXPECT_EQ(Sha1::compression_rounds(0), 1u);
  EXPECT_EQ(Sha1::compression_rounds(55), 1u);
  EXPECT_EQ(Sha1::compression_rounds(56), 2u);  // length spills to 2nd block
  EXPECT_EQ(Sha1::compression_rounds(64), 2u);
  EXPECT_EQ(Sha1::compression_rounds(119), 2u);
  EXPECT_EQ(Sha1::compression_rounds(120), 3u);
}

// ---- SHA-256 ------------------------------------------------------------------------

TEST(Sha256Test, FipsVectors) {
  EXPECT_EQ(digest_hex(Sha256::hash(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(digest_hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(digest_hex(Sha256::hash(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> data(5000, 0xA7);
  Sha256 ctx;
  ctx.update(std::span<const std::uint8_t>(data.data(), 100));
  ctx.update(std::span<const std::uint8_t>(data.data() + 100, 4900));
  EXPECT_EQ(ctx.finish(), Sha256::hash(data));
}

// ---- Rabin ---------------------------------------------------------------------------

RabinParams small_params() {
  RabinParams p;
  p.window = 16;
  p.min_block = 64;
  p.max_block = 4096;
  p.mask = 0xFF;  // ~256-byte average blocks: plenty of boundaries in tests
  p.magic = 0x42;
  return p;
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  return data;
}

TEST(RabinTest, BoundariesAreDeterministicAndOrdered) {
  Rabin rabin(small_params());
  auto data = random_bytes(50000, 3);
  auto a = rabin.chunk_boundaries(data);
  auto b = rabin.chunk_boundaries(data);
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.front(), 0u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_GT(a.size(), 10u);  // random data must produce many boundaries
}

TEST(RabinTest, BlockSizeLimitsRespected) {
  Rabin rabin(small_params());
  auto data = random_bytes(100000, 4);
  auto starts = rabin.chunk_boundaries(data);
  for (std::size_t i = 1; i < starts.size(); ++i) {
    std::uint32_t len = starts[i] - starts[i - 1];
    EXPECT_GE(len, rabin.params().min_block);
    EXPECT_LE(len, rabin.params().max_block);
  }
}

TEST(RabinTest, ConstantDataHitsMaxBlock) {
  Rabin rabin(small_params());
  std::vector<std::uint8_t> data(20000, 0x00);
  auto starts = rabin.chunk_boundaries(data);
  // All-zero data either never matches the magic (max_block cuts) or
  // always produces the same cut; either way blocks are uniform.
  for (std::size_t i = 2; i < starts.size(); ++i) {
    EXPECT_EQ(starts[i] - starts[i - 1], starts[1] - starts[0]);
  }
}

TEST(RabinTest, EmptyInput) {
  Rabin rabin(small_params());
  EXPECT_TRUE(rabin.chunk_boundaries({}).empty());
}

TEST(RabinTest, ContentDefinedShiftInvariance) {
  // THE content-defined-chunking property: inserting a prefix disturbs
  // only boundaries near the front; later boundaries realign (shifted).
  Rabin rabin(small_params());
  auto data = random_bytes(60000, 5);
  auto original = rabin.chunk_boundaries(data);

  std::vector<std::uint8_t> shifted = random_bytes(137, 99);
  shifted.insert(shifted.end(), data.begin(), data.end());
  auto after = rabin.chunk_boundaries(shifted);

  // Collect boundary positions relative to the original data.
  std::vector<std::int64_t> orig_set(original.begin(), original.end());
  std::size_t realigned = 0;
  for (std::uint32_t b : after) {
    std::int64_t rel = static_cast<std::int64_t>(b) - 137;
    if (rel > 4096 &&  // beyond the disturbed head region
        std::binary_search(orig_set.begin(), orig_set.end(), rel)) {
      ++realigned;
    }
  }
  // Most tail boundaries must realign.
  std::size_t tail_boundaries = 0;
  for (std::int64_t b : orig_set) {
    if (b > 4096) ++tail_boundaries;
  }
  EXPECT_GT(realigned, tail_boundaries * 8 / 10);
}

TEST(RabinTest, WindowFingerprintMatchesRolling) {
  Rabin rabin(small_params());
  auto data = random_bytes(1000, 7);
  // The fingerprint of a standalone window equals the rolling value at the
  // same offset (probed indirectly: identical windows -> identical fp).
  auto w1 = rabin.window_fingerprint(
      std::span<const std::uint8_t>(data.data() + 100, 16));
  auto w2 = rabin.window_fingerprint(
      std::span<const std::uint8_t>(data.data() + 100, 16));
  EXPECT_EQ(w1, w2);
  auto w3 = rabin.window_fingerprint(
      std::span<const std::uint8_t>(data.data() + 101, 16));
  EXPECT_NE(w1, w3);
}

TEST(RabinTest, DuplicateContentProducesDuplicateBlocks) {
  // Two copies of the same payload must chunk into the same block
  // payloads — the property the dedup cache exploits.
  Rabin rabin(small_params());
  auto unit = random_bytes(30000, 11);
  std::vector<std::uint8_t> doubled = unit;
  doubled.insert(doubled.end(), unit.begin(), unit.end());
  auto starts = rabin.chunk_boundaries(doubled);

  // A boundary must land exactly at the copy seam for blocks to repeat.
  // Content-defined cuts guarantee boundaries realign within the copy, so
  // block payloads from the second half repeat payloads from the first.
  std::vector<std::string> first_half, second_half;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    std::size_t start = starts[i];
    std::size_t end =
        i + 1 < starts.size() ? starts[i + 1] : doubled.size();
    std::string payload(doubled.begin() + static_cast<long>(start),
                        doubled.begin() + static_cast<long>(end));
    (start < unit.size() ? first_half : second_half)
        .push_back(std::move(payload));
  }
  std::size_t duplicates = 0;
  for (const auto& p : second_half) {
    if (std::find(first_half.begin(), first_half.end(), p) !=
        first_half.end()) {
      ++duplicates;
    }
  }
  ASSERT_GT(second_half.size(), 10u);
  EXPECT_GT(duplicates, second_half.size() * 7 / 10);
}

// ---- LZSS -----------------------------------------------------------------------------

LzssParams small_lzss() {
  LzssParams p;
  p.window_size = 256;
  return p;
}

TEST(LzssTest, RoundtripCompressible) {
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "the quick brown fox jumps over the lazy dog. ";
  }
  auto input = bytes_of(text);
  auto compressed = lzss_encode(input, small_lzss());
  EXPECT_LT(compressed.size(), input.size() / 2);  // must actually compress
  auto back = lzss_decode(compressed, input.size(), small_lzss());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), input);
}

TEST(LzssTest, RoundtripIncompressibleRandom) {
  auto input = random_bytes(10000, 21);
  auto compressed = lzss_encode(input, small_lzss());
  auto back = lzss_decode(compressed, input.size(), small_lzss());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), input);
  // Random data expands slightly (flag bits) but never catastrophically.
  EXPECT_LT(compressed.size(), input.size() * 9 / 8 + 16);
}

TEST(LzssTest, RoundtripEdgeCases) {
  LzssParams p = small_lzss();
  for (const auto& input : std::vector<std::vector<std::uint8_t>>{
           {},
           {0x42},
           {1, 2},
           std::vector<std::uint8_t>(5000, 0xAA),     // long single run
           bytes_of("abcabcabcabcabcabcabc"),          // short period
           random_bytes(3, 1),
       }) {
    auto compressed = lzss_encode(input, p);
    auto back = lzss_decode(compressed, input.size(), p);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), input);
  }
}

TEST(LzssTest, DecodeRejectsCorruptStreams) {
  auto input = bytes_of("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
  auto compressed = lzss_encode(input, small_lzss());
  // Truncated stream.
  auto truncated = compressed;
  truncated.resize(truncated.size() / 2);
  EXPECT_EQ(lzss_decode(truncated, input.size(), small_lzss()).status().code(),
            ErrorCode::kDataLoss);
  // Stream demanding more output than declared is caught by size check.
  EXPECT_FALSE(lzss_decode(compressed, input.size() * 10,
                           small_lzss()).ok());
  // A match pointing before the start of the block.
  std::vector<std::uint8_t> bogus = {0x00, 0xFF, 0xFF, 0xFF};
  EXPECT_FALSE(lzss_decode(bogus, 20, small_lzss()).ok());
}

TEST(LzssTest, InvalidParamsRejected) {
  LzssParams p;
  p.window_size = 1 << 13;  // too large for 12 offset bits
  EXPECT_FALSE(p.valid());
  EXPECT_FALSE(lzss_decode({}, 0, p).ok());
}

TEST(LzssTest, MatchesNeverCrossBlockBoundaries) {
  // Two identical blocks: positions in the second block must not match
  // into the first (FindMatch's startPos/lastPos clamping, Listing 3).
  auto unit = bytes_of("abcdefghijklmnopqrstuvwxyz0123456789");
  std::vector<std::uint8_t> input = unit;
  input.insert(input.end(), unit.begin(), unit.end());
  std::vector<std::uint32_t> starts = {
      0, static_cast<std::uint32_t>(unit.size())};
  std::vector<LzssMatch> matches;
  find_matches_batch(input, starts, small_lzss(), matches);
  // First position of block 2 has no history inside its own block.
  EXPECT_EQ(matches[unit.size()].length, 0);
  for (std::size_t pos = unit.size(); pos < input.size(); ++pos) {
    if (matches[pos].length > 0) {
      EXPECT_LE(matches[pos].offset, pos - unit.size());
    }
  }
}

TEST(LzssTest, BatchMatchesEqualPerBlockEncoding) {
  // The paper's central Dedup fix: one batched FindMatch over all blocks
  // must give the same compression as running each block separately.
  auto input = random_bytes(6000, 33);
  // Make it compressible: overwrite with repeated slices.
  for (std::size_t i = 2000; i < 4000; ++i) input[i] = input[i - 500];
  std::vector<std::uint32_t> starts = {0, 1500, 2048, 4096};
  std::vector<LzssMatch> matches;
  find_matches_batch(input, starts, small_lzss(), matches);

  for (std::size_t b = 0; b < starts.size(); ++b) {
    std::size_t s = starts[b];
    std::size_t e = b + 1 < starts.size() ? starts[b + 1] : input.size();
    auto direct = lzss_encode(input, s, e, small_lzss());
    auto via_batch =
        lzss_encode_from_matches(input, s, e, matches, small_lzss());
    EXPECT_EQ(direct, via_batch) << "block " << b;
    auto back = lzss_decode(direct, e - s, small_lzss());
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(std::equal(back.value().begin(), back.value().end(),
                           input.begin() + static_cast<long>(s)));
  }
}

TEST(LzssTest, LongestMatchTieBreaksOldest) {
  // "abcXabcYabc|abc?" — two equally long earlier matches; Listing 3's
  // oldest-first scan keeps the first (largest offset).
  auto input = bytes_of("abcXabcYabc");
  LzssParams p = small_lzss();
  // Match for the final "abc" run: search at pos 8 ("abc" at 8..10).
  LzssMatch m = lzss_longest_match(input, 0, input.size(), 8, p);
  ASSERT_EQ(m.length, 3);
  EXPECT_EQ(m.offset, 8);  // references pos 0, not pos 4
}

TEST(LzssTest, MatchesNeverOverlapLookahead) {
  // Long runs: with the no-overlap rule of Listing 3, a match's source
  // must lie entirely before the current position.
  std::vector<std::uint8_t> input(200, 'z');
  LzssParams p = small_lzss();
  for (std::size_t pos = 1; pos < input.size(); pos += 17) {
    LzssMatch m = lzss_longest_match(input, 0, input.size(), pos, p);
    if (m.length >= p.min_match) {
      EXPECT_LE(static_cast<std::size_t>(m.length), pos)
          << "match would overlap the lookahead at pos " << pos;
    }
  }
}

TEST(RabinTest, WindowFingerprintMatchesRollingValue) {
  // The standalone window fingerprint must agree with the rolling
  // computation: rolling over [0..i] after a full window equals the
  // fingerprint of the window's bytes alone.
  RabinParams p = small_params();
  Rabin rabin(p);
  auto data = random_bytes(256, 13);
  // Roll manually using window_fingerprint over each full window.
  auto w1 = rabin.window_fingerprint(
      std::span<const std::uint8_t>(data.data() + 64, p.window));
  // Identical content elsewhere gives identical fingerprints (content
  // dependence, not position dependence).
  std::vector<std::uint8_t> copy(data.begin() + 64,
                                 data.begin() + 64 + p.window);
  auto w2 = rabin.window_fingerprint(copy);
  EXPECT_EQ(w1, w2);
}

TEST(LzssTest, MatchCostModelBounds) {
  LzssParams p = small_lzss();
  EXPECT_EQ(lzss_match_cost(0, 0, p), 1u);          // nothing to scan
  EXPECT_EQ(lzss_match_cost(0, 10, p), 11u);        // ramp-up
  EXPECT_EQ(lzss_match_cost(0, 100000, p), 257u);   // clamped to window
}

// Property sweep: roundtrip holds across window sizes and content types.
class LzssSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(LzssSweep, Roundtrip) {
  auto [window, kind] = GetParam();
  LzssParams p;
  p.window_size = window;
  std::vector<std::uint8_t> input;
  switch (kind) {
    case 0:
      input = random_bytes(4096, window);
      break;
    case 1:
      input.assign(4096, 0x11);
      break;
    case 2: {
      auto word = bytes_of("stream processing on multicores ");
      while (input.size() < 4096) {
        input.insert(input.end(), word.begin(), word.end());
      }
      break;
    }
    default: {  // random with embedded duplicate ranges
      input = random_bytes(4096, 7 * window);
      for (std::size_t i = 1000; i < 3000; ++i) input[i] = input[i - 250];
      break;
    }
  }
  auto compressed = lzss_encode(input, p);
  auto back = lzss_decode(compressed, input.size(), p);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), input);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LzssSweep,
    ::testing::Combine(::testing::Values(16u, 64u, 256u, 4096u),
                       ::testing::Values(0, 1, 2, 3)));

}  // namespace
}  // namespace hs::kernels
