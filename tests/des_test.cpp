// Unit tests for the discrete-event timeline.
#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "des/timeline.hpp"
#include "des/trace_export.hpp"

namespace hs::des {
namespace {

TEST(TimelineTest, SerialEngineRunsFifo) {
  Timeline tl;
  EngineId e = tl.add_engine("e");
  TaskId a = tl.submit(e, 2.0);
  TaskId b = tl.submit(e, 3.0);
  EXPECT_DOUBLE_EQ(tl.start_time(a), 0.0);
  EXPECT_DOUBLE_EQ(tl.finish_time(a), 2.0);
  EXPECT_DOUBLE_EQ(tl.start_time(b), 2.0);
  EXPECT_DOUBLE_EQ(tl.finish_time(b), 5.0);
  EXPECT_DOUBLE_EQ(tl.makespan(), 5.0);
}

TEST(TimelineTest, IndependentEnginesOverlap) {
  Timeline tl;
  EngineId e1 = tl.add_engine("e1");
  EngineId e2 = tl.add_engine("e2");
  tl.submit(e1, 5.0);
  TaskId b = tl.submit(e2, 3.0);
  EXPECT_DOUBLE_EQ(tl.start_time(b), 0.0);
  EXPECT_DOUBLE_EQ(tl.makespan(), 5.0);
}

TEST(TimelineTest, DependencyDelaysStart) {
  Timeline tl;
  EngineId e1 = tl.add_engine("e1");
  EngineId e2 = tl.add_engine("e2");
  TaskId a = tl.submit(e1, 4.0);
  TaskId deps[] = {a};
  TaskId b = tl.submit(e2, 1.0, deps);
  EXPECT_DOUBLE_EQ(tl.start_time(b), 4.0);
  EXPECT_DOUBLE_EQ(tl.finish_time(b), 5.0);
}

TEST(TimelineTest, StartIsMaxOfEngineAndDeps) {
  Timeline tl;
  EngineId e1 = tl.add_engine("e1");
  EngineId e2 = tl.add_engine("e2");
  TaskId dep = tl.submit(e1, 2.0);      // finishes at 2
  tl.submit(e2, 10.0);                  // e2 busy until 10
  TaskId deps[] = {dep};
  TaskId b = tl.submit(e2, 1.0, deps);  // engine limited, not dep limited
  EXPECT_DOUBLE_EQ(tl.start_time(b), 10.0);
}

TEST(TimelineTest, SubmitAfterInvalidDepIsNoDep) {
  Timeline tl;
  EngineId e = tl.add_engine("e");
  TaskId t = tl.submit_after(e, 1.0, TaskId{});
  EXPECT_DOUBLE_EQ(tl.start_time(t), 0.0);
}

TEST(TimelineTest, SubmitAfterChains) {
  Timeline tl;
  EngineId e1 = tl.add_engine("e1");
  EngineId e2 = tl.add_engine("e2");
  TaskId a = tl.submit(e1, 1.0);
  TaskId b = tl.submit_after(e2, 1.0, a);
  TaskId c = tl.submit_after(e1, 1.0, b);
  EXPECT_DOUBLE_EQ(tl.finish_time(c), 3.0);
}

TEST(TimelineTest, SubmitAtHonorsEarliestStart) {
  Timeline tl;
  EngineId e = tl.add_engine("e");
  TaskId t = tl.submit_at(e, 2.0, 5.0);  // idle engine, release at t=5
  EXPECT_DOUBLE_EQ(tl.start_time(t), 5.0);
  EXPECT_DOUBLE_EQ(tl.finish_time(t), 7.0);
}

TEST(TimelineTest, SubmitAtQueuesBehindBusyEngine) {
  Timeline tl;
  EngineId e = tl.add_engine("e");
  tl.submit(e, 10.0);                    // engine busy until 10
  TaskId t = tl.submit_at(e, 1.0, 5.0);  // release time is not a preemption
  EXPECT_DOUBLE_EQ(tl.start_time(t), 10.0);
}

TEST(TimelineTest, SubmitAtStartIsMaxOfAllThreeBounds) {
  Timeline tl;
  EngineId e1 = tl.add_engine("e1");
  EngineId e2 = tl.add_engine("e2");
  TaskId dep = tl.submit(e1, 6.0);  // dep ready at 6
  tl.submit(e2, 2.0);               // engine free at 2
  TaskId deps[] = {dep};
  TaskId t = tl.submit_at(e2, 1.0, 4.0, deps);  // dep bound dominates
  EXPECT_DOUBLE_EQ(tl.start_time(t), 6.0);
  EXPECT_DOUBLE_EQ(tl.finish_time(t), 7.0);
}

TEST(TimelineTest, JoinWaitsForAllAndIsFree) {
  Timeline tl;
  EngineId e1 = tl.add_engine("e1");
  EngineId e2 = tl.add_engine("e2");
  TaskId a = tl.submit(e1, 2.0);
  TaskId b = tl.submit(e2, 7.0);
  TaskId deps[] = {a, b};
  TaskId j = tl.join(deps);
  EXPECT_DOUBLE_EQ(tl.finish_time(j), 7.0);
  // Unrelated join later should not be serialized behind the first one.
  TaskId deps2[] = {a};
  TaskId j2 = tl.join(deps2);
  EXPECT_DOUBLE_EQ(tl.finish_time(j2), 2.0);
}

TEST(TimelineTest, ZeroDurationTasksAllowed) {
  Timeline tl;
  EngineId e = tl.add_engine("e");
  TaskId t = tl.submit(e, 0.0);
  EXPECT_DOUBLE_EQ(tl.finish_time(t), tl.start_time(t));
}

TEST(TimelineTest, EngineStatsAccumulate) {
  Timeline tl;
  EngineId e = tl.add_engine("compute");
  tl.submit(e, 1.0);
  tl.submit(e, 2.5);
  const EngineStats& s = tl.engine_stats(e);
  EXPECT_EQ(s.name, "compute");
  EXPECT_DOUBLE_EQ(s.busy, 3.5);
  EXPECT_EQ(s.tasks, 2u);
  EXPECT_DOUBLE_EQ(tl.utilization(e), 1.0);
}

TEST(TimelineTest, UtilizationReflectsIdleTime) {
  Timeline tl;
  EngineId e1 = tl.add_engine("e1");
  EngineId e2 = tl.add_engine("e2");
  tl.submit(e1, 8.0);
  tl.submit(e2, 2.0);
  EXPECT_DOUBLE_EQ(tl.utilization(e2), 0.25);
}

TEST(TimelineTest, PipelinedCopyComputeOverlapShape) {
  // The core mechanism behind the paper's "2x memory spaces": with two
  // buffers, copy(i+1) overlaps compute(i). Model 4 batches, copy=1s,
  // compute=1s: serial would be 8s, overlapped is 5s.
  Timeline tl;
  EngineId copy = tl.add_engine("h2d");
  EngineId compute = tl.add_engine("compute");
  TaskId prev_compute{};
  for (int i = 0; i < 4; ++i) {
    TaskId c = tl.submit(copy, 1.0);  // next copy can start immediately
    TaskId deps[] = {c, prev_compute};
    std::size_t ndeps = prev_compute.valid() ? 2u : 1u;
    prev_compute = tl.submit(compute, 1.0,
                             std::span<const TaskId>(deps, ndeps));
  }
  EXPECT_DOUBLE_EQ(tl.makespan(), 5.0);
}

TEST(TimelineTest, ManyTasksStressAndMonotonicity) {
  Timeline tl;
  EngineId e1 = tl.add_engine("a");
  EngineId e2 = tl.add_engine("b");
  TaskId prev{};
  double last_finish = 0;
  for (int i = 0; i < 10000; ++i) {
    EngineId e = (i % 2) ? e1 : e2;
    prev = tl.submit_after(e, 0.001, prev);
    EXPECT_GE(tl.finish_time(prev), last_finish);
    last_finish = tl.finish_time(prev);
  }
  EXPECT_NEAR(tl.makespan(), 10.0, 1e-6);
  EXPECT_EQ(tl.task_count(), 10000u);
}

TEST(TraceExportTest, RequiresRecording) {
  Timeline tl;
  tl.add_engine("e");
  tl.submit(tl.add_engine("f"), 1.0);
  EXPECT_EQ(chrome_trace_json(tl).status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST(TraceExportTest, EmitsEngineTracksAndEvents) {
  Timeline tl;
  tl.set_recording(true);
  EngineId a = tl.add_engine("gpu0.compute");
  EngineId b = tl.add_engine("gpu0.h2d");
  TaskId copy = tl.submit(b, 0.5, {}, "h2d");
  TaskId deps[] = {copy};
  tl.submit(a, 1.0, deps, "kernel \"x\"");  // quote needs escaping
  auto json = chrome_trace_json(tl);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  const std::string& j = json.value();
  EXPECT_NE(j.find("\"gpu0.compute\""), std::string::npos);
  EXPECT_NE(j.find("\"gpu0.h2d\""), std::string::npos);
  EXPECT_NE(j.find("kernel \\\"x\\\""), std::string::npos);  // escaped
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  // kernel starts when the copy ends: ts = 500000 us.
  EXPECT_NE(j.find("\"ts\":500000"), std::string::npos);
}

TEST(TraceExportTest, WritesFile) {
  Timeline tl;
  tl.set_recording(true);
  tl.submit(tl.add_engine("e"), 0.25, {}, "t");
  std::string path = ::testing::TempDir() + "/hs_trace.json";
  ASSERT_TRUE(write_chrome_trace(tl, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[16] = {};
  ASSERT_GT(std::fread(buf, 1, 15, f), 0u);
  std::fclose(f);
  EXPECT_EQ(std::string(buf).substr(0, 2), "{\"");
  std::remove(path.c_str());
}

TEST(TraceExportTest, UnlabeledTasksGetDefaultName) {
  Timeline tl;
  tl.set_recording(true);
  tl.submit(tl.add_engine("e"), 1.0);
  auto json = chrome_trace_json(tl);
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json.value().find("\"task\""), std::string::npos);
}

}  // namespace
}  // namespace hs::des
