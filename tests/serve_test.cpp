// Tests for the serve layer: decorrelated-jitter backoff, per-device
// circuit breakers, and the multi-tenant Service (admission control,
// deadline budgets, breaker-gated execution, bit-exact results on every
// rung of the degradation ladder).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "cudax/cudax.hpp"
#include "datagen/corpus.hpp"
#include "dedup/stages.hpp"
#include "gpusim/device.hpp"
#include "gpusim/fault_plan.hpp"
#include "kernels/mandel.hpp"
#include "mandel/iteration_map.hpp"
#include "serve/backoff.hpp"
#include "serve/breaker.hpp"
#include "serve/jobs.hpp"
#include "serve/service.hpp"
#include "serve/wrr.hpp"
#include "telemetry/telemetry.hpp"

namespace hs::serve {
namespace {

// ---- BackoffSequence ---------------------------------------------------------

TEST(BackoffTest, SequenceStaysInsidePolicyBounds) {
  BackoffPolicy policy;
  policy.base = std::chrono::microseconds(100);
  policy.cap = std::chrono::microseconds(4000);
  policy.growth = 3.0;
  BackoffSequence seq(policy, /*seed=*/7);
  std::chrono::microseconds prev = policy.base;
  for (int i = 0; i < 200; ++i) {
    const auto d = seq.next();
    // Decorrelated jitter: every delay lies in [base, min(cap, 3*prev)].
    EXPECT_GE(d, policy.base) << "step " << i;
    EXPECT_LE(d, policy.cap) << "step " << i;
    const auto growth_bound = std::chrono::microseconds(
        std::min<std::int64_t>(policy.cap.count(), prev.count() * 3));
    EXPECT_LE(d, growth_bound) << "step " << i;
    prev = d;
  }
}

TEST(BackoffTest, DeterministicPerSeedAndResettable) {
  BackoffPolicy policy;
  policy.base = std::chrono::microseconds(50);
  policy.cap = std::chrono::microseconds(5000);
  BackoffSequence a(policy, 42);
  BackoffSequence b(policy, 42);
  std::vector<std::chrono::microseconds> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  for (int i = 0; i < 16; ++i) EXPECT_EQ(b.next(), first[i]) << i;
  // Distinct seeds decorrelate (not byte-identical over a window).
  BackoffSequence c(policy, 43);
  bool differs = false;
  for (int i = 0; i < 16; ++i) differs |= (c.next() != first[i]);
  EXPECT_TRUE(differs);
  // reset() restarts the growth envelope from base.
  a.reset();
  EXPECT_LE(a.next(), std::chrono::microseconds(
                          std::min<std::int64_t>(policy.cap.count(),
                                                 policy.base.count() * 3)));
}

TEST(BackoffTest, DegeneratePoliciesAreSanitized) {
  BackoffPolicy policy;
  policy.base = std::chrono::microseconds(-5);
  policy.cap = std::chrono::microseconds(-10);
  policy.growth = 0.0;
  BackoffSequence seq(policy, 1);
  for (int i = 0; i < 8; ++i) {
    const auto d = seq.next();
    EXPECT_GE(d.count(), 0) << i;
    EXPECT_LE(d, seq.policy().cap) << i;
  }
}

// ---- CircuitBreaker ----------------------------------------------------------

BreakerConfig fast_breaker() {
  BreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.cooldown = std::chrono::microseconds(1000);
  cfg.half_open_successes = 2;
  return cfg;
}

TEST(BreakerTest, TripsAfterConsecutiveFailuresAndRecovers) {
  CircuitBreaker breaker(fast_breaker());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  // Two failures + success resets the streak.
  ASSERT_TRUE(breaker.allow());
  breaker.on_failure();
  ASSERT_TRUE(breaker.allow());
  breaker.on_failure();
  ASSERT_TRUE(breaker.allow());
  breaker.on_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  // Three consecutive failures trip it.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.allow());
    breaker.on_failure();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.allow());
  // After the cooldown one probe is admitted; siblings stay rejected until
  // the probe's verdict.
  std::this_thread::sleep_for(std::chrono::microseconds(1500));
  ASSERT_TRUE(breaker.allow());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.allow());
  breaker.on_success();
  ASSERT_TRUE(breaker.allow());
  breaker.on_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(BreakerTest, FailedProbeReopensWithFreshCooldown) {
  CircuitBreaker breaker(fast_breaker());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.allow());
    breaker.on_failure();
  }
  std::this_thread::sleep_for(std::chrono::microseconds(1500));
  ASSERT_TRUE(breaker.allow());
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_FALSE(breaker.allow());
}

TEST(BreakerTest, ForceOpenTripsImmediately) {
  CircuitBreaker breaker(fast_breaker());
  breaker.force_open();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(BreakerTest, BoardPublishesGauges) {
  telemetry::Registry reg;
  BreakerBoard board(2, fast_breaker(), &reg, "serve");
  board.device(0).force_open();
  board.publish();
  auto snap = reg.snapshot();
  const auto* state = snap.find_gauge("serve.breaker.state");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->value, 1.0);
  const auto* d0 = snap.find_gauge("serve.breaker.d0.state");
  ASSERT_NE(d0, nullptr);
  EXPECT_EQ(d0->value, 2.0);  // BreakerState::kOpen
  const auto* trips = snap.find_gauge("serve.breaker.trips");
  ASSERT_NE(trips, nullptr);
  EXPECT_EQ(trips->value, 1.0);
}

// ---- Service -----------------------------------------------------------------

JobRequest mandel_job(int dim = 32, int niter = 200) {
  JobRequest req;
  req.kind = JobKind::kMandel;
  req.mandel.dim = dim;
  req.mandel.niter = niter;
  return req;
}

JobRequest dedup_job(std::uint64_t seed = 1) {
  JobRequest req;
  req.kind = JobKind::kDedup;
  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kParsecLike;
  spec.bytes = 64 * 1024;
  spec.seed = seed;
  req.payload = datagen::generate(spec);
  req.dedup.batch_size = 16 * 1024;
  return req;
}

std::uint64_t mandel_reference_checksum(const kernels::MandelParams& p) {
  std::vector<std::uint8_t> image(static_cast<std::size_t>(p.dim) *
                                  static_cast<std::size_t>(p.dim));
  for (int i = 0; i < p.dim; ++i) {
    kernels::mandel_line(
        p, i,
        std::span<std::uint8_t>(
            image.data() +
                static_cast<std::size_t>(i) * static_cast<std::size_t>(p.dim),
            static_cast<std::size_t>(p.dim)));
  }
  return mandel::image_checksum(image);
}

std::uint64_t dedup_reference_checksum(const JobRequest& req) {
  auto batches = dedup::fragment_input(
      std::span<const std::uint8_t>(req.payload.data(), req.payload.size()),
      req.dedup);
  dedup::DupCache cache;
  for (auto& b : batches) {
    dedup::hash_blocks(b);
    cache.check(b);
  }
  return dedup_job_checksum(batches);
}

TEST(ServiceTest, JobsCompleteBitExactOnGpu) {
  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(machine.get());
  telemetry::Registry reg;
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.registry = &reg;
  Service service(machine.get(), cfg);
  ASSERT_TRUE(service.start().ok());

  const JobRequest mjob = mandel_job();
  const JobRequest djob = dedup_job();
  auto m = service.submit("tenant-a", mjob);
  auto d = service.submit("tenant-b", djob);
  ASSERT_TRUE(m.accepted());
  ASSERT_TRUE(d.accepted());
  JobResult mr = m.result.get();
  JobResult dr = d.result.get();
  ASSERT_TRUE(service.stop().ok());
  cudax::unbind_machine();

  ASSERT_TRUE(mr.status.ok()) << mr.status.ToString();
  ASSERT_TRUE(dr.status.ok()) << dr.status.ToString();
  EXPECT_FALSE(mr.cpu_path);
  EXPECT_GE(mr.device, 0);
  EXPECT_EQ(mr.checksum, mandel_reference_checksum(mjob.mandel));
  EXPECT_EQ(dr.checksum, dedup_reference_checksum(djob));
  EXPECT_FALSE(mr.deadline_missed);
  EXPECT_GT(mr.latency_ns, 0u);

  auto stats = service.stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.deadline_miss, 0u);
  auto snap = reg.snapshot();
  ASSERT_NE(snap.find_counter("serve.completed"), nullptr);
  EXPECT_EQ(snap.find_counter("serve.completed")->value, 2u);
  // Each tenant's slice counts its own submissions only.
  ASSERT_NE(snap.find_counter("serve.tenant.tenant-a.accepted"), nullptr);
  EXPECT_EQ(snap.find_counter("serve.tenant.tenant-a.accepted")->value, 1u);
  EXPECT_EQ(snap.find_counter("serve.tenant.tenant-b.accepted")->value, 1u);
  EXPECT_EQ(snap.find_counter("serve.tenant.tenant-a.shed")->value, 0u);
}

TEST(ServiceTest, CpuOnlyServiceMatchesGpuChecksums) {
  Service service(nullptr, {});
  ASSERT_TRUE(service.start().ok());
  const JobRequest mjob = mandel_job();
  auto m = service.submit("t", mjob);
  ASSERT_TRUE(m.accepted());
  JobResult mr = m.result.get();
  ASSERT_TRUE(service.stop().ok());
  ASSERT_TRUE(mr.status.ok());
  EXPECT_TRUE(mr.cpu_path);
  EXPECT_EQ(mr.device, -1);
  EXPECT_EQ(mr.checksum, mandel_reference_checksum(mjob.mandel));
}

TEST(ServiceTest, OverloadShedsWithExplicitRejection) {
  auto machine = gpusim::Machine::Create(1, gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(machine.get());
  telemetry::Registry reg;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.tenant_queue_capacity = 2;
  cfg.shed_watermark = 1.0;  // hard bound only, deterministic
  cfg.registry = &reg;
  Service service(machine.get(), cfg);
  ASSERT_TRUE(service.start().ok());

  // Burst far past the queue bound; the single worker cannot drain 64
  // frames before the burst finishes submitting.
  int rejected = 0;
  for (int i = 0; i < 64; ++i) {
    auto r = service.submit("bursty", mandel_job(48, 500),
                            /*want_result=*/false);
    if (!r.accepted()) {
      ++rejected;
      EXPECT_EQ(r.rejected->code, RejectCode::kOverload);
    }
  }
  ASSERT_TRUE(service.stop().ok());
  cudax::unbind_machine();

  auto stats = service.stats();
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(stats.shed, static_cast<std::uint64_t>(rejected));
  EXPECT_EQ(stats.accepted + stats.shed, stats.submitted);
  EXPECT_EQ(stats.completed, stats.accepted);  // accepted work always drains
  auto snap = reg.snapshot();
  ASSERT_NE(snap.find_counter("serve.shed"), nullptr);
  EXPECT_EQ(snap.find_counter("serve.shed")->value, stats.shed);
  // The burst came from one tenant, so its slice owns every shed and
  // every acceptance.
  ASSERT_NE(snap.find_counter("serve.tenant.bursty.shed"), nullptr);
  EXPECT_EQ(snap.find_counter("serve.tenant.bursty.shed")->value, stats.shed);
  EXPECT_EQ(snap.find_counter("serve.tenant.bursty.accepted")->value,
            stats.accepted);
}

TEST(ServiceTest, P99WatermarkShedsAndReopensWithTheWindow) {
  telemetry::Registry reg;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.tenant_queue_capacity = 1024;  // keep queue-depth shedding out of play
  cfg.shed_watermark = 1.0;
  cfg.p99_shed_budget_ns = 1;  // any real completion exceeds 1 ns
  cfg.admission_refresh = 1;   // re-evaluate on every submit
  cfg.registry = &reg;
  Service slow(nullptr, cfg);
  ASSERT_TRUE(slow.start().ok());

  // Pollute one refresh window with >=16 over-budget completions: submit a
  // burst (each inter-submit window sees at most a couple of completions,
  // far short of the 16-sample floor), then let everything finish.
  std::vector<std::future<JobResult>> pending;
  for (int i = 0; i < 24; ++i) {
    auto r = slow.submit("t", mandel_job(32, 2000));
    ASSERT_TRUE(r.accepted()) << i;
    pending.push_back(std::move(r.result));
  }
  for (auto& f : pending) (void)f.get();

  // The next refresh sees all 24 samples in its window and sheds.
  auto shed = slow.submit("t", mandel_job(32, 2000), /*want_result=*/false);
  ASSERT_FALSE(shed.accepted());
  EXPECT_EQ(shed.rejected->code, RejectCode::kOverload);
  EXPECT_EQ(shed.rejected->detail, "p99 latency over budget");

  // The gate is windowed, not cumulative: no fresh completions since the
  // shed refresh, so the next window has count < 16 and the gate reopens.
  auto reopened = slow.submit("t", mandel_job(32, 2000));
  ASSERT_TRUE(reopened.accepted());
  (void)reopened.result.get();
  ASSERT_TRUE(slow.stop().ok());
  EXPECT_GT(slow.stats().shed, 0u);
}

TEST(ServiceTest, SubmitAfterStopIsRejectedAsShutdown) {
  Service service(nullptr, {});
  ASSERT_TRUE(service.start().ok());
  ASSERT_TRUE(service.stop().ok());
  auto r = service.submit("t", mandel_job());
  ASSERT_FALSE(r.accepted());
  EXPECT_EQ(r.rejected->code, RejectCode::kShuttingDown);
}

TEST(ServiceTest, ExpiredDeadlinesNeverOccupyTheGpu) {
  auto machine = gpusim::Machine::Create(1, gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(machine.get());
  telemetry::Registry reg;
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.default_deadline_ns = 1;  // expires before any stage can run
  cfg.registry = &reg;
  Service service(machine.get(), cfg);
  ASSERT_TRUE(service.start().ok());
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 8; ++i) {
    auto r = service.submit("t", mandel_job());
    ASSERT_TRUE(r.accepted());
    futures.push_back(std::move(r.result));
  }
  for (auto& f : futures) {
    JobResult jr = f.get();
    EXPECT_TRUE(jr.deadline_missed);
    EXPECT_EQ(jr.status.code(), ErrorCode::kAborted);
    EXPECT_EQ(jr.checksum, 0u);  // never executed
  }
  ASSERT_TRUE(service.stop().ok());
  cudax::unbind_machine();
  auto stats = service.stats();
  EXPECT_EQ(stats.deadline_miss, 8u);
  // The GPU never saw the work: no kernels, no job attempts.
  EXPECT_EQ(machine->device(0).counters().kernels_launched, 0u);
  EXPECT_EQ(service.retry_stats().attempts.load(), 0u);
  auto snap = reg.snapshot();
  ASSERT_NE(snap.find_counter("serve.deadline_miss"), nullptr);
  EXPECT_EQ(snap.find_counter("serve.deadline_miss")->value, 8u);
  // The flow runtime counted the stage-boundary drops too.
  ASSERT_NE(snap.find_counter("serve.deadline_drops"), nullptr);
  EXPECT_GT(snap.find_counter("serve.deadline_drops")->value, 0u);
  // All eight misses land on the submitting tenant's slice.
  ASSERT_NE(snap.find_counter("serve.tenant.t.deadline_miss"), nullptr);
  EXPECT_EQ(snap.find_counter("serve.tenant.t.deadline_miss")->value, 8u);
}

TEST(ServiceTest, BreakerTripsUnderFaultsAndJobsStayBitExact) {
  auto machine = gpusim::Machine::Create(1, gpusim::DeviceSpec::TitanXP());
  // Every launch fails transiently: retries exhaust, the breaker trips, and
  // jobs complete on the bit-exact CPU rung.
  auto plan = gpusim::FaultPlan::Parse("seed=11,launch.p=1.0");
  ASSERT_TRUE(plan.ok());
  machine->device(0).set_fault_plan(std::move(plan).value());
  cudax::bind_machine(machine.get());
  telemetry::Registry reg;
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.registry = &reg;
  cfg.retry.base_delay = std::chrono::microseconds(1);
  cfg.retry.max_delay = std::chrono::microseconds(10);
  Service service(machine.get(), cfg);
  ASSERT_TRUE(service.start().ok());
  const JobRequest mjob = mandel_job();
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 12; ++i) {
    auto r = service.submit("t", mjob);
    ASSERT_TRUE(r.accepted());
    futures.push_back(std::move(r.result));
  }
  const std::uint64_t want = mandel_reference_checksum(mjob.mandel);
  for (auto& f : futures) {
    JobResult jr = f.get();
    ASSERT_TRUE(jr.status.ok());
    EXPECT_EQ(jr.checksum, want);
  }
  ASSERT_TRUE(service.stop().ok());
  cudax::unbind_machine();
  auto stats = service.stats();
  EXPECT_GE(stats.breaker_trips, 1u);
  EXPECT_GT(stats.cpu_jobs, 0u);
  EXPECT_EQ(stats.completed, 12u);
  auto snap = reg.snapshot();
  ASSERT_NE(snap.find_gauge("serve.breaker.trips"), nullptr);
  EXPECT_GE(snap.find_gauge("serve.breaker.trips")->value, 1.0);
}

TEST(ServiceTest, AdaptiveSchedSurvivesDeviceLossBitExactly) {
  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  gpusim::FaultPlan plan;
  plan.lose_device_at(10);
  machine->device(0).set_fault_plan(std::move(plan));
  cudax::bind_machine(machine.get());
  ServiceConfig cfg;
  cfg.workers = 3;
  cfg.sched = sched::SchedMode::kAdaptive;
  cfg.retry.base_delay = std::chrono::microseconds(1);
  cfg.retry.max_delay = std::chrono::microseconds(10);
  Service service(machine.get(), cfg);
  ASSERT_TRUE(service.start().ok());
  const JobRequest mjob = mandel_job();
  const std::uint64_t want = mandel_reference_checksum(mjob.mandel);
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 24; ++i) {
    auto r = service.submit("t", mjob);
    ASSERT_TRUE(r.accepted());
    futures.push_back(std::move(r.result));
  }
  for (auto& f : futures) {
    JobResult jr = f.get();
    ASSERT_TRUE(jr.status.ok());
    EXPECT_EQ(jr.checksum, want);
  }
  ASSERT_TRUE(service.stop().ok());
  cudax::unbind_machine();
  EXPECT_TRUE(machine->device(0).lost());
  auto stats = service.stats();
  EXPECT_EQ(stats.completed, 24u);
}

// ---- Weighted round-robin drain ---------------------------------------------

TEST(WrrQueuesTest, DefaultWeightOneIsPlainRoundRobin) {
  WrrQueues<int> q(nullptr);
  for (int v : {1, 2, 3}) q.push("a", v);
  for (int v : {10, 20, 30}) q.push("b", v);
  std::vector<int> order;
  int out = 0;
  while (q.pop(out)) order.push_back(out);
  EXPECT_EQ(order, (std::vector<int>{1, 10, 2, 20, 3, 30}));
}

TEST(WrrQueuesTest, WeightedBurstsServeConsecutiveItems) {
  const std::map<std::string, int, std::less<>> weights{{"heavy", 2}};
  WrrQueues<int> q(&weights);
  for (int v : {1, 2, 3, 4}) q.push("heavy", v);
  for (int v : {10, 20, 30, 40}) q.push("light", v);
  std::vector<int> order;
  int out = 0;
  while (q.pop(out)) order.push_back(out);
  // heavy gets bursts of 2 per rotation turn, light 1; the tail drains
  // light once heavy is exhausted.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 10, 3, 4, 20, 30, 40}));
}

TEST(WrrQueuesTest, WeightsClampToOneAndBurstEndsOnEmptyQueue) {
  const std::map<std::string, int, std::less<>> weights{{"a", 0}, {"c", 3}};
  WrrQueues<int> q(&weights);
  EXPECT_EQ(q.weight_of("a"), 1);  // < 1 clamps to 1
  EXPECT_EQ(q.weight_of("c"), 3);
  EXPECT_EQ(q.weight_of("unknown"), 1);
  q.push("a", 1);
  for (int v : {10, 20}) q.push("c", v);
  std::vector<int> order;
  int out = 0;
  while (q.pop(out)) order.push_back(out);
  // c's burst of 3 ends early when its queue runs dry after 2 pops.
  EXPECT_EQ(order, (std::vector<int>{1, 10, 20}));
}

TEST(ServiceTest, TenantWeightsDrainEverythingAndExportGauges) {
  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(machine.get());
  telemetry::Registry reg;
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.registry = &reg;
  cfg.tenant_weights = {{"heavy", 3}, {"zero", 0}};
  Service service(machine.get(), cfg);
  ASSERT_TRUE(service.start().ok());
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 6; ++i) {
    for (const char* tenant : {"heavy", "light", "zero"}) {
      auto r = service.submit(tenant, mandel_job());
      ASSERT_TRUE(r.accepted());
      futures.push_back(std::move(r.result));
    }
  }
  for (auto& f : futures) {
    JobResult jr = f.get();
    ASSERT_TRUE(jr.status.ok()) << jr.status.ToString();
  }
  ASSERT_TRUE(service.stop().ok());
  cudax::unbind_machine();
  EXPECT_EQ(service.stats().completed, 18u);
  auto snap = reg.snapshot();
  const auto* heavy = snap.find_gauge("serve.tenant.heavy.weight");
  const auto* light = snap.find_gauge("serve.tenant.light.weight");
  const auto* zero = snap.find_gauge("serve.tenant.zero.weight");
  ASSERT_NE(heavy, nullptr);
  ASSERT_NE(light, nullptr);
  ASSERT_NE(zero, nullptr);
  EXPECT_EQ(heavy->value, 3.0);
  EXPECT_EQ(light->value, 1.0);   // unlisted tenants default to 1
  EXPECT_EQ(zero->value, 1.0);    // configured 0 clamps to 1
}

}  // namespace
}  // namespace hs::serve
