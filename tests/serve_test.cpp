// Tests for the serve layer: decorrelated-jitter backoff, per-device
// circuit breakers, and the multi-tenant Service (admission control,
// deadline budgets, breaker-gated execution, bit-exact results on every
// rung of the degradation ladder).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "cudax/cudax.hpp"
#include "datagen/corpus.hpp"
#include "dedup/stages.hpp"
#include "gpusim/device.hpp"
#include "gpusim/fault_plan.hpp"
#include "kernels/mandel.hpp"
#include "mandel/iteration_map.hpp"
#include "serve/backoff.hpp"
#include "serve/breaker.hpp"
#include "serve/jobs.hpp"
#include "serve/scale.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "serve/wrr.hpp"
#include "telemetry/telemetry.hpp"

namespace hs::serve {
namespace {

// ---- BackoffSequence ---------------------------------------------------------

TEST(BackoffTest, SequenceStaysInsidePolicyBounds) {
  BackoffPolicy policy;
  policy.base = std::chrono::microseconds(100);
  policy.cap = std::chrono::microseconds(4000);
  policy.growth = 3.0;
  BackoffSequence seq(policy, /*seed=*/7);
  std::chrono::microseconds prev = policy.base;
  for (int i = 0; i < 200; ++i) {
    const auto d = seq.next();
    // Decorrelated jitter: every delay lies in [base, min(cap, 3*prev)].
    EXPECT_GE(d, policy.base) << "step " << i;
    EXPECT_LE(d, policy.cap) << "step " << i;
    const auto growth_bound = std::chrono::microseconds(
        std::min<std::int64_t>(policy.cap.count(), prev.count() * 3));
    EXPECT_LE(d, growth_bound) << "step " << i;
    prev = d;
  }
}

TEST(BackoffTest, DeterministicPerSeedAndResettable) {
  BackoffPolicy policy;
  policy.base = std::chrono::microseconds(50);
  policy.cap = std::chrono::microseconds(5000);
  BackoffSequence a(policy, 42);
  BackoffSequence b(policy, 42);
  std::vector<std::chrono::microseconds> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  for (int i = 0; i < 16; ++i) EXPECT_EQ(b.next(), first[i]) << i;
  // Distinct seeds decorrelate (not byte-identical over a window).
  BackoffSequence c(policy, 43);
  bool differs = false;
  for (int i = 0; i < 16; ++i) differs |= (c.next() != first[i]);
  EXPECT_TRUE(differs);
  // reset() restarts the growth envelope from base.
  a.reset();
  EXPECT_LE(a.next(), std::chrono::microseconds(
                          std::min<std::int64_t>(policy.cap.count(),
                                                 policy.base.count() * 3)));
}

TEST(BackoffTest, DegeneratePoliciesAreSanitized) {
  BackoffPolicy policy;
  policy.base = std::chrono::microseconds(-5);
  policy.cap = std::chrono::microseconds(-10);
  policy.growth = 0.0;
  BackoffSequence seq(policy, 1);
  for (int i = 0; i < 8; ++i) {
    const auto d = seq.next();
    EXPECT_GE(d.count(), 0) << i;
    EXPECT_LE(d, seq.policy().cap) << i;
  }
}

// ---- CircuitBreaker ----------------------------------------------------------

BreakerConfig fast_breaker() {
  BreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.cooldown = std::chrono::microseconds(1000);
  cfg.half_open_successes = 2;
  return cfg;
}

TEST(BreakerTest, TripsAfterConsecutiveFailuresAndRecovers) {
  CircuitBreaker breaker(fast_breaker());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  // Two failures + success resets the streak.
  ASSERT_TRUE(breaker.allow());
  breaker.on_failure();
  ASSERT_TRUE(breaker.allow());
  breaker.on_failure();
  ASSERT_TRUE(breaker.allow());
  breaker.on_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  // Three consecutive failures trip it.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.allow());
    breaker.on_failure();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.allow());
  // After the cooldown one probe is admitted; siblings stay rejected until
  // the probe's verdict.
  std::this_thread::sleep_for(std::chrono::microseconds(1500));
  ASSERT_TRUE(breaker.allow());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.allow());
  breaker.on_success();
  ASSERT_TRUE(breaker.allow());
  breaker.on_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(BreakerTest, FailedProbeReopensWithFreshCooldown) {
  CircuitBreaker breaker(fast_breaker());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.allow());
    breaker.on_failure();
  }
  std::this_thread::sleep_for(std::chrono::microseconds(1500));
  ASSERT_TRUE(breaker.allow());
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_FALSE(breaker.allow());
}

TEST(BreakerTest, ForceOpenTripsImmediately) {
  CircuitBreaker breaker(fast_breaker());
  breaker.force_open();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(BreakerTest, BoardPublishesGauges) {
  telemetry::Registry reg;
  BreakerBoard board(2, fast_breaker(), &reg, "serve");
  board.device(0).force_open();
  board.publish();
  auto snap = reg.snapshot();
  const auto* state = snap.find_gauge("serve.breaker.state");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->value, 1.0);
  const auto* d0 = snap.find_gauge("serve.breaker.d0.state");
  ASSERT_NE(d0, nullptr);
  EXPECT_EQ(d0->value, 2.0);  // BreakerState::kOpen
  const auto* trips = snap.find_gauge("serve.breaker.trips");
  ASSERT_NE(trips, nullptr);
  EXPECT_EQ(trips->value, 1.0);
}

// ---- Service -----------------------------------------------------------------

JobRequest mandel_job(int dim = 32, int niter = 200) {
  JobRequest req;
  req.kind = JobKind::kMandel;
  req.mandel.dim = dim;
  req.mandel.niter = niter;
  return req;
}

JobRequest dedup_job(std::uint64_t seed = 1) {
  JobRequest req;
  req.kind = JobKind::kDedup;
  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kParsecLike;
  spec.bytes = 64 * 1024;
  spec.seed = seed;
  req.payload = datagen::generate(spec);
  req.dedup.batch_size = 16 * 1024;
  return req;
}

std::uint64_t mandel_reference_checksum(const kernels::MandelParams& p) {
  std::vector<std::uint8_t> image(static_cast<std::size_t>(p.dim) *
                                  static_cast<std::size_t>(p.dim));
  for (int i = 0; i < p.dim; ++i) {
    kernels::mandel_line(
        p, i,
        std::span<std::uint8_t>(
            image.data() +
                static_cast<std::size_t>(i) * static_cast<std::size_t>(p.dim),
            static_cast<std::size_t>(p.dim)));
  }
  return mandel::image_checksum(image);
}

std::uint64_t dedup_reference_checksum(const JobRequest& req) {
  auto batches = dedup::fragment_input(
      std::span<const std::uint8_t>(req.payload.data(), req.payload.size()),
      req.dedup);
  dedup::DupCache cache;
  for (auto& b : batches) {
    dedup::hash_blocks(b);
    cache.check(b);
  }
  return dedup_job_checksum(batches);
}

TEST(ServiceTest, JobsCompleteBitExactOnGpu) {
  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(machine.get());
  telemetry::Registry reg;
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.registry = &reg;
  Service service(machine.get(), cfg);
  ASSERT_TRUE(service.start().ok());

  const JobRequest mjob = mandel_job();
  const JobRequest djob = dedup_job();
  auto m = service.submit("tenant-a", mjob);
  auto d = service.submit("tenant-b", djob);
  ASSERT_TRUE(m.accepted());
  ASSERT_TRUE(d.accepted());
  JobResult mr = m.result.get();
  JobResult dr = d.result.get();
  ASSERT_TRUE(service.stop().ok());
  cudax::unbind_machine();

  ASSERT_TRUE(mr.status.ok()) << mr.status.ToString();
  ASSERT_TRUE(dr.status.ok()) << dr.status.ToString();
  EXPECT_FALSE(mr.cpu_path);
  EXPECT_GE(mr.device, 0);
  EXPECT_EQ(mr.checksum, mandel_reference_checksum(mjob.mandel));
  EXPECT_EQ(dr.checksum, dedup_reference_checksum(djob));
  EXPECT_FALSE(mr.deadline_missed);
  EXPECT_GT(mr.latency_ns, 0u);

  auto stats = service.stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.deadline_miss, 0u);
  auto snap = reg.snapshot();
  ASSERT_NE(snap.find_counter("serve.completed"), nullptr);
  EXPECT_EQ(snap.find_counter("serve.completed")->value, 2u);
  // Each tenant's slice counts its own submissions only.
  ASSERT_NE(snap.find_counter("serve.tenant.tenant-a.accepted"), nullptr);
  EXPECT_EQ(snap.find_counter("serve.tenant.tenant-a.accepted")->value, 1u);
  EXPECT_EQ(snap.find_counter("serve.tenant.tenant-b.accepted")->value, 1u);
  EXPECT_EQ(snap.find_counter("serve.tenant.tenant-a.shed")->value, 0u);
}

TEST(ServiceTest, CpuOnlyServiceMatchesGpuChecksums) {
  Service service(nullptr, {});
  ASSERT_TRUE(service.start().ok());
  const JobRequest mjob = mandel_job();
  auto m = service.submit("t", mjob);
  ASSERT_TRUE(m.accepted());
  JobResult mr = m.result.get();
  ASSERT_TRUE(service.stop().ok());
  ASSERT_TRUE(mr.status.ok());
  EXPECT_TRUE(mr.cpu_path);
  EXPECT_EQ(mr.device, -1);
  EXPECT_EQ(mr.checksum, mandel_reference_checksum(mjob.mandel));
}

TEST(ServiceTest, OverloadShedsWithExplicitRejection) {
  auto machine = gpusim::Machine::Create(1, gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(machine.get());
  telemetry::Registry reg;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.tenant_queue_capacity = 2;
  cfg.shed_watermark = 1.0;  // hard bound only, deterministic
  cfg.registry = &reg;
  Service service(machine.get(), cfg);
  ASSERT_TRUE(service.start().ok());

  // Burst far past the queue bound; the single worker cannot drain 64
  // frames before the burst finishes submitting.
  int rejected = 0;
  for (int i = 0; i < 64; ++i) {
    auto r = service.submit("bursty", mandel_job(48, 500),
                            /*want_result=*/false);
    if (!r.accepted()) {
      ++rejected;
      EXPECT_EQ(r.rejected->code, RejectCode::kOverload);
    }
  }
  ASSERT_TRUE(service.stop().ok());
  cudax::unbind_machine();

  auto stats = service.stats();
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(stats.shed, static_cast<std::uint64_t>(rejected));
  EXPECT_EQ(stats.accepted + stats.shed, stats.submitted);
  EXPECT_EQ(stats.completed, stats.accepted);  // accepted work always drains
  auto snap = reg.snapshot();
  ASSERT_NE(snap.find_counter("serve.shed"), nullptr);
  EXPECT_EQ(snap.find_counter("serve.shed")->value, stats.shed);
  // The burst came from one tenant, so its slice owns every shed and
  // every acceptance.
  ASSERT_NE(snap.find_counter("serve.tenant.bursty.shed"), nullptr);
  EXPECT_EQ(snap.find_counter("serve.tenant.bursty.shed")->value, stats.shed);
  EXPECT_EQ(snap.find_counter("serve.tenant.bursty.accepted")->value,
            stats.accepted);
}

TEST(ServiceTest, P99WatermarkShedsAndReopensWithTheWindow) {
  telemetry::Registry reg;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.tenant_queue_capacity = 1024;  // keep queue-depth shedding out of play
  cfg.shed_watermark = 1.0;
  cfg.p99_shed_budget_ns = 1;  // any real completion exceeds 1 ns
  cfg.admission_refresh = 1;   // re-evaluate on every submit
  cfg.registry = &reg;
  Service slow(nullptr, cfg);
  ASSERT_TRUE(slow.start().ok());

  // Pollute one refresh window with >=16 over-budget completions: submit a
  // burst (each inter-submit window sees at most a couple of completions,
  // far short of the 16-sample floor), then let everything finish.
  std::vector<std::future<JobResult>> pending;
  for (int i = 0; i < 24; ++i) {
    auto r = slow.submit("t", mandel_job(32, 2000));
    ASSERT_TRUE(r.accepted()) << i;
    pending.push_back(std::move(r.result));
  }
  for (auto& f : pending) (void)f.get();

  // The next refresh sees all 24 samples in its window and sheds.
  auto shed = slow.submit("t", mandel_job(32, 2000), /*want_result=*/false);
  ASSERT_FALSE(shed.accepted());
  EXPECT_EQ(shed.rejected->code, RejectCode::kOverload);
  EXPECT_EQ(shed.rejected->detail, "p99 latency over budget");

  // The gate is windowed, not cumulative: no fresh completions since the
  // shed refresh, so the next window has count < 16 and the gate reopens.
  auto reopened = slow.submit("t", mandel_job(32, 2000));
  ASSERT_TRUE(reopened.accepted());
  (void)reopened.result.get();
  ASSERT_TRUE(slow.stop().ok());
  EXPECT_GT(slow.stats().shed, 0u);
}

TEST(ServiceTest, SubmitAfterStopIsRejectedAsShutdown) {
  Service service(nullptr, {});
  ASSERT_TRUE(service.start().ok());
  ASSERT_TRUE(service.stop().ok());
  auto r = service.submit("t", mandel_job());
  ASSERT_FALSE(r.accepted());
  EXPECT_EQ(r.rejected->code, RejectCode::kShuttingDown);
}

TEST(ServiceTest, ExpiredDeadlinesNeverOccupyTheGpu) {
  auto machine = gpusim::Machine::Create(1, gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(machine.get());
  telemetry::Registry reg;
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.default_deadline_ns = 1;  // expires before any stage can run
  cfg.registry = &reg;
  Service service(machine.get(), cfg);
  ASSERT_TRUE(service.start().ok());
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 8; ++i) {
    auto r = service.submit("t", mandel_job());
    ASSERT_TRUE(r.accepted());
    futures.push_back(std::move(r.result));
  }
  for (auto& f : futures) {
    JobResult jr = f.get();
    EXPECT_TRUE(jr.deadline_missed);
    EXPECT_EQ(jr.status.code(), ErrorCode::kAborted);
    EXPECT_EQ(jr.checksum, 0u);  // never executed
  }
  ASSERT_TRUE(service.stop().ok());
  cudax::unbind_machine();
  auto stats = service.stats();
  EXPECT_EQ(stats.deadline_miss, 8u);
  // The GPU never saw the work: no kernels, no job attempts.
  EXPECT_EQ(machine->device(0).counters().kernels_launched, 0u);
  EXPECT_EQ(service.retry_stats().attempts.load(), 0u);
  auto snap = reg.snapshot();
  ASSERT_NE(snap.find_counter("serve.deadline_miss"), nullptr);
  EXPECT_EQ(snap.find_counter("serve.deadline_miss")->value, 8u);
  // The flow runtime counted the stage-boundary drops too.
  ASSERT_NE(snap.find_counter("serve.deadline_drops"), nullptr);
  EXPECT_GT(snap.find_counter("serve.deadline_drops")->value, 0u);
  // All eight misses land on the submitting tenant's slice.
  ASSERT_NE(snap.find_counter("serve.tenant.t.deadline_miss"), nullptr);
  EXPECT_EQ(snap.find_counter("serve.tenant.t.deadline_miss")->value, 8u);
}

TEST(ServiceTest, BreakerTripsUnderFaultsAndJobsStayBitExact) {
  auto machine = gpusim::Machine::Create(1, gpusim::DeviceSpec::TitanXP());
  // Every launch fails transiently: retries exhaust, the breaker trips, and
  // jobs complete on the bit-exact CPU rung.
  auto plan = gpusim::FaultPlan::Parse("seed=11,launch.p=1.0");
  ASSERT_TRUE(plan.ok());
  machine->device(0).set_fault_plan(std::move(plan).value());
  cudax::bind_machine(machine.get());
  telemetry::Registry reg;
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.registry = &reg;
  cfg.retry.base_delay = std::chrono::microseconds(1);
  cfg.retry.max_delay = std::chrono::microseconds(10);
  Service service(machine.get(), cfg);
  ASSERT_TRUE(service.start().ok());
  const JobRequest mjob = mandel_job();
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 12; ++i) {
    auto r = service.submit("t", mjob);
    ASSERT_TRUE(r.accepted());
    futures.push_back(std::move(r.result));
  }
  const std::uint64_t want = mandel_reference_checksum(mjob.mandel);
  for (auto& f : futures) {
    JobResult jr = f.get();
    ASSERT_TRUE(jr.status.ok());
    EXPECT_EQ(jr.checksum, want);
  }
  ASSERT_TRUE(service.stop().ok());
  cudax::unbind_machine();
  auto stats = service.stats();
  EXPECT_GE(stats.breaker_trips, 1u);
  EXPECT_GT(stats.cpu_jobs, 0u);
  EXPECT_EQ(stats.completed, 12u);
  auto snap = reg.snapshot();
  ASSERT_NE(snap.find_gauge("serve.breaker.trips"), nullptr);
  EXPECT_GE(snap.find_gauge("serve.breaker.trips")->value, 1.0);
}

TEST(ServiceTest, AdaptiveSchedSurvivesDeviceLossBitExactly) {
  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  gpusim::FaultPlan plan;
  plan.lose_device_at(10);
  machine->device(0).set_fault_plan(std::move(plan));
  cudax::bind_machine(machine.get());
  ServiceConfig cfg;
  cfg.workers = 3;
  cfg.sched = sched::SchedMode::kAdaptive;
  cfg.retry.base_delay = std::chrono::microseconds(1);
  cfg.retry.max_delay = std::chrono::microseconds(10);
  Service service(machine.get(), cfg);
  ASSERT_TRUE(service.start().ok());
  const JobRequest mjob = mandel_job();
  const std::uint64_t want = mandel_reference_checksum(mjob.mandel);
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 24; ++i) {
    auto r = service.submit("t", mjob);
    ASSERT_TRUE(r.accepted());
    futures.push_back(std::move(r.result));
  }
  for (auto& f : futures) {
    JobResult jr = f.get();
    ASSERT_TRUE(jr.status.ok());
    EXPECT_EQ(jr.checksum, want);
  }
  ASSERT_TRUE(service.stop().ok());
  cudax::unbind_machine();
  EXPECT_TRUE(machine->device(0).lost());
  auto stats = service.stats();
  EXPECT_EQ(stats.completed, 24u);
}

// ---- Weighted round-robin drain ---------------------------------------------

TEST(WrrQueuesTest, DefaultWeightOneIsPlainRoundRobin) {
  WrrQueues<int> q(nullptr);
  for (int v : {1, 2, 3}) q.push("a", v);
  for (int v : {10, 20, 30}) q.push("b", v);
  std::vector<int> order;
  int out = 0;
  while (q.pop(out)) order.push_back(out);
  EXPECT_EQ(order, (std::vector<int>{1, 10, 2, 20, 3, 30}));
}

TEST(WrrQueuesTest, WeightedBurstsServeConsecutiveItems) {
  const std::map<std::string, int, std::less<>> weights{{"heavy", 2}};
  WrrQueues<int> q(&weights);
  for (int v : {1, 2, 3, 4}) q.push("heavy", v);
  for (int v : {10, 20, 30, 40}) q.push("light", v);
  std::vector<int> order;
  int out = 0;
  while (q.pop(out)) order.push_back(out);
  // heavy gets bursts of 2 per rotation turn, light 1; the tail drains
  // light once heavy is exhausted.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 10, 3, 4, 20, 30, 40}));
}

TEST(WrrQueuesTest, WeightsClampToOneAndBurstEndsOnEmptyQueue) {
  const std::map<std::string, int, std::less<>> weights{{"a", 0}, {"c", 3}};
  WrrQueues<int> q(&weights);
  EXPECT_EQ(q.weight_of("a"), 1);  // < 1 clamps to 1
  EXPECT_EQ(q.weight_of("c"), 3);
  EXPECT_EQ(q.weight_of("unknown"), 1);
  q.push("a", 1);
  for (int v : {10, 20}) q.push("c", v);
  std::vector<int> order;
  int out = 0;
  while (q.pop(out)) order.push_back(out);
  // c's burst of 3 ends early when its queue runs dry after 2 pops.
  EXPECT_EQ(order, (std::vector<int>{1, 10, 20}));
}

TEST(ServiceTest, TenantWeightsDrainEverythingAndExportGauges) {
  auto machine = gpusim::Machine::Create(2, gpusim::DeviceSpec::TitanXP());
  cudax::bind_machine(machine.get());
  telemetry::Registry reg;
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.registry = &reg;
  cfg.tenant_weights = {{"heavy", 3}, {"zero", 0}};
  Service service(machine.get(), cfg);
  ASSERT_TRUE(service.start().ok());
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 6; ++i) {
    for (const char* tenant : {"heavy", "light", "zero"}) {
      auto r = service.submit(tenant, mandel_job());
      ASSERT_TRUE(r.accepted());
      futures.push_back(std::move(r.result));
    }
  }
  for (auto& f : futures) {
    JobResult jr = f.get();
    ASSERT_TRUE(jr.status.ok()) << jr.status.ToString();
  }
  ASSERT_TRUE(service.stop().ok());
  cudax::unbind_machine();
  EXPECT_EQ(service.stats().completed, 18u);
  auto snap = reg.snapshot();
  const auto* heavy = snap.find_gauge("serve.tenant.heavy.weight");
  const auto* light = snap.find_gauge("serve.tenant.light.weight");
  const auto* zero = snap.find_gauge("serve.tenant.zero.weight");
  ASSERT_NE(heavy, nullptr);
  ASSERT_NE(light, nullptr);
  ASSERT_NE(zero, nullptr);
  EXPECT_EQ(heavy->value, 3.0);
  EXPECT_EQ(light->value, 1.0);   // unlisted tenants default to 1
  EXPECT_EQ(zero->value, 1.0);    // configured 0 clamps to 1
}

TEST(BackoffTest, BoundsHoldAfterResetAcrossSeeds) {
  BackoffPolicy policy;
  policy.base = std::chrono::microseconds(25);
  policy.cap = std::chrono::microseconds(900);
  policy.growth = 3.0;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    BackoffSequence seq(policy, seed);
    for (int round = 0; round < 4; ++round) {
      seq.reset();
      std::chrono::microseconds prev = policy.base;
      for (int i = 0; i < 64; ++i) {
        const auto d = seq.next();
        ASSERT_GE(d, policy.base) << "seed " << seed << " round " << round;
        ASSERT_LE(d, policy.cap) << "seed " << seed << " round " << round;
        // reset() restarts the growth envelope: every post-reset draw obeys
        // the decorrelated bound from `base`, not from the pre-reset tail.
        const auto envelope = std::chrono::microseconds(
            std::min<std::int64_t>(policy.cap.count(), prev.count() * 3));
        ASSERT_LE(d, envelope) << "seed " << seed << " round " << round;
        prev = d;
      }
    }
  }
}

// ---- WRR rotation regressions ------------------------------------------------

TEST(WrrQueuesTest, TenantArrivingMidBurstDoesNotStealTheBurst) {
  // Regression for the index-based rotation: a tenant keyed *before* the
  // one mid-burst used to shift the rotation index onto itself, inheriting
  // the in-progress burst credit and truncating the original burst.
  const std::map<std::string, int, std::less<>> weights{{"m", 3}};
  WrrQueues<int> q(&weights);
  for (int v : {1, 2, 3}) q.push("m", v);
  int out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);  // burst of 3 in progress on "m"
  q.push("a", 100);   // sorts before "m" — must not steal the rotation
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);  // burst continues on "m"...
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 3);  // ...to its full weight
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 100);  // then the newcomer gets its turn
  EXPECT_FALSE(q.pop(out));
}

TEST(WrrQueuesTest, FairSharesWithinOneItemUnderTenantChurn) {
  const std::map<std::string, int, std::less<>> weights{
      {"a", 3}, {"b", 2}, {"c", 1}};
  WrrQueues<std::string> q(&weights);
  const auto feed = [&q](const char* tenant, int n) {
    for (int i = 0; i < n; ++i) q.push(tenant, tenant);
  };
  std::map<std::string, int> share;
  const auto drain = [&](int n) {
    share.clear();
    std::string out;
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(q.pop(out)) << "pop " << i;
      ++share[out];
    }
  };
  // Phase 1: only a and c exist; 16 pops = 4 cycles of (3a, 1c).
  feed("a", 100);
  feed("c", 100);
  drain(16);
  EXPECT_LE(std::abs(share["a"] - 12), 1);
  EXPECT_LE(std::abs(share["c"] - 4), 1);
  // Phase 2: b arrives mid-stream. Any 48-pop window over the periodic
  // (3a, 2b, 1c) rotation holds 8 cycles, so shares match the 3:2:1
  // weights within one item regardless of where the rotation stood.
  feed("b", 100);
  drain(48);
  EXPECT_LE(std::abs(share["a"] - 24), 1);
  EXPECT_LE(std::abs(share["b"] - 16), 1);
  EXPECT_LE(std::abs(share["c"] - 8), 1);
  // Phase 3: everyone departs (drained dry), then a and c return — the
  // survivors' shares still track the weight ratio.
  std::string out;
  while (q.pop(out)) {
  }
  feed("a", 100);
  feed("c", 100);
  drain(16);
  EXPECT_LE(std::abs(share["a"] - 12), 1);
  EXPECT_LE(std::abs(share["c"] - 4), 1);
}

TEST(WrrQueuesTest, LongEmptyQueuesArePrunedWithoutDisturbingRotation) {
  WrrQueues<int> q(nullptr, /*prune_after=*/8);
  q.push("ghost", 7);
  int out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 7);  // ghost's queue is now empty but still resident
  EXPECT_EQ(q.tenant_count(), 1u);
  // Keep the structure busy: every pop scans past ghost's empty queue and
  // the live tenant's items still come out in order.
  for (int i = 0; i < 12; ++i) {
    q.push("live", i);
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(q.tenant_count(), 1u);  // ghost was pruned along the way
  EXPECT_EQ(q.depth("ghost"), 0u);  // pruned reads as empty, not an error
  EXPECT_EQ(q.depth("live"), 0u);
  // A pruned tenant that returns is simply re-created.
  q.push("ghost", 8);
  EXPECT_EQ(q.tenant_count(), 2u);
  EXPECT_EQ(q.depth("ghost"), 1u);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 8);
}

TEST(WrrQueuesTest, PruningDisabledWithZeroKeepsEmptyQueues) {
  WrrQueues<int> q(nullptr, /*prune_after=*/0);
  q.push("once", 1);
  int out = 0;
  ASSERT_TRUE(q.pop(out));
  for (int i = 0; i < 64; ++i) {
    q.push("live", i);
    ASSERT_TRUE(q.pop(out));
  }
  EXPECT_EQ(q.tenant_count(), 2u);
}

// ---- ScaleDecider hysteresis -------------------------------------------------

ScalePolicy test_scale_policy() {
  ScalePolicy p;
  p.min_workers = 1;
  p.max_workers = 4;
  p.scale_up_watermark = 8;
  p.sample_window = std::chrono::milliseconds(50);
  p.scale_down_idle_window = std::chrono::milliseconds(200);
  p.cooldown = std::chrono::milliseconds(100);
  return p;
}

TEST(ScaleDeciderTest, GrowsOnlyAfterSustainedPressureAndCooldown) {
  const ScalePolicy p = test_scale_policy();
  const auto t0 = ScaleDecider::Clock::time_point{};
  ScaleDecider d(p, /*initial=*/2, t0);
  const auto ms = [&](int m) { return t0 + std::chrono::milliseconds(m); };
  // Pressure must persist a full sample window before the first grow.
  EXPECT_EQ(d.observe(ms(0), 10, false), std::nullopt);
  EXPECT_EQ(d.observe(ms(49), 10, false), std::nullopt);
  EXPECT_EQ(d.observe(ms(50), 10, false), std::optional<int>(3));
  // The next step needs a fresh window AND the cooldown to elapse.
  EXPECT_EQ(d.observe(ms(100), 10, false), std::nullopt);
  EXPECT_EQ(d.observe(ms(150), 10, false), std::optional<int>(4));
  // Clamped at the ceiling.
  EXPECT_EQ(d.observe(ms(260), 10, false), std::nullopt);
  EXPECT_EQ(d.active(), 4);
}

TEST(ScaleDeciderTest, ShrinksAfterIdleWindowAndClampsAtFloor) {
  const ScalePolicy p = test_scale_policy();
  const auto t0 = ScaleDecider::Clock::time_point{};
  ScaleDecider d(p, /*initial=*/4, t0);
  const auto ms = [&](int m) { return t0 + std::chrono::milliseconds(m); };
  EXPECT_EQ(d.observe(ms(0), 0, false), std::nullopt);
  EXPECT_EQ(d.observe(ms(199), 0, false), std::nullopt);
  EXPECT_EQ(d.observe(ms(200), 0, false), std::optional<int>(3));
  // A nonzero (below-watermark) backlog re-arms the idle window.
  EXPECT_EQ(d.observe(ms(300), 3, false), std::nullopt);
  EXPECT_EQ(d.observe(ms(350), 0, false), std::nullopt);
  EXPECT_EQ(d.observe(ms(500), 0, false), std::nullopt);  // 150ms idle only
  EXPECT_EQ(d.observe(ms(550), 0, false), std::optional<int>(2));
  EXPECT_EQ(d.observe(ms(750), 0, false), std::optional<int>(1));
  // Never below the floor.
  EXPECT_EQ(d.observe(ms(950), 0, false), std::nullopt);
  EXPECT_EQ(d.active(), 1);
}

TEST(ScaleDeciderTest, LatencyOverloadIsPressureOnlyWithWorkQueued) {
  const ScalePolicy p = test_scale_policy();
  const auto t0 = ScaleDecider::Clock::time_point{};
  ScaleDecider d(p, /*initial=*/1, t0);
  const auto ms = [&](int m) { return t0 + std::chrono::milliseconds(m); };
  // An over-budget p99 with an empty queue means the damage is done — more
  // workers cannot help, so it is not pressure.
  EXPECT_EQ(d.observe(ms(0), 0, true), std::nullopt);
  EXPECT_EQ(d.observe(ms(60), 0, true), std::nullopt);
  // With even one job queued it is: grow after a full window.
  EXPECT_EQ(d.observe(ms(100), 1, true), std::nullopt);
  EXPECT_EQ(d.observe(ms(150), 1, true), std::optional<int>(2));
  // A below-watermark backlog without the latency signal is not pressure.
  EXPECT_EQ(d.observe(ms(200), 7, false), std::nullopt);
  EXPECT_EQ(d.observe(ms(300), 7, false), std::nullopt);
  EXPECT_EQ(d.active(), 2);
}

// ---- Quotas, stop race, elastic service --------------------------------------

JobRequest synthetic_job(std::uint64_t ns) {
  JobRequest req;
  req.kind = JobKind::kSynthetic;
  req.synthetic_ns = ns;
  return req;
}

// Waits until the source has popped everything queued (the backlog gauge
// counts queued-not-yet-popped jobs), so queue-depth checks after this are
// deterministic.
void wait_for_empty_backlog(Service& service) {
  for (int i = 0; i < 2000 && service.backlog() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.backlog(), 0u);
}

TEST(ServiceTest, QueuedQuotaRejectsBeforeSharedCapacity) {
  telemetry::Registry reg;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.tenant_queue_capacity = 64;
  cfg.shed_watermark = 1.0;
  cfg.tenant_quota_queued = 2;
  cfg.registry = &reg;
  Service service(nullptr, cfg);
  ASSERT_TRUE(service.start().ok());
  // Park the single worker on a long job so later submissions stay queued.
  auto blocker = service.submit("hog", synthetic_job(150'000'000));
  ASSERT_TRUE(blocker.accepted());
  wait_for_empty_backlog(service);
  // Two queued jobs fill the quota; the third is a quota reject — a
  // distinct code from overload, with plenty of shared capacity left.
  ASSERT_TRUE(service.submit("hog", synthetic_job(1000), false).accepted());
  ASSERT_TRUE(service.submit("hog", synthetic_job(1000), false).accepted());
  auto over = service.submit("hog", synthetic_job(1000), false);
  ASSERT_FALSE(over.accepted());
  EXPECT_EQ(over.rejected->code, RejectCode::kQuota);
  EXPECT_EQ(reject_code_name(over.rejected->code), "quota");
  // The cap is per tenant: another tenant is still admitted.
  ASSERT_TRUE(service.submit("mouse", synthetic_job(1000), false).accepted());
  (void)blocker.result.get();
  ASSERT_TRUE(service.stop().ok());
  const auto stats = service.stats();
  EXPECT_EQ(stats.quota_rejects, 1u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.completed, stats.accepted);
  auto snap = reg.snapshot();
  ASSERT_NE(snap.find_counter("serve.quota_rejects"), nullptr);
  EXPECT_EQ(snap.find_counter("serve.quota_rejects")->value, 1u);
  ASSERT_NE(snap.find_counter("serve.tenant.hog.quota_rejects"), nullptr);
  EXPECT_EQ(snap.find_counter("serve.tenant.hog.quota_rejects")->value, 1u);
  ASSERT_NE(snap.find_counter("serve.tenant.mouse.quota_rejects"), nullptr);
  EXPECT_EQ(snap.find_counter("serve.tenant.mouse.quota_rejects")->value, 0u);
}

TEST(ServiceTest, InflightQuotaCountsQueuedPlusExecuting) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.shed_watermark = 1.0;
  cfg.tenant_quota_inflight = 2;
  Service service(nullptr, cfg);
  ASSERT_TRUE(service.start().ok());
  auto blocker = service.submit("t", synthetic_job(150'000'000));
  ASSERT_TRUE(blocker.accepted());
  wait_for_empty_backlog(service);
  // One executing + one queued hits the in-flight cap even though the
  // tenant's *queue* holds a single job.
  ASSERT_TRUE(service.submit("t", synthetic_job(1000), false).accepted());
  auto over = service.submit("t", synthetic_job(1000), false);
  ASSERT_FALSE(over.accepted());
  EXPECT_EQ(over.rejected->code, RejectCode::kQuota);
  // Completions release slots: once the blocker finishes the tenant gets
  // back under quota and is admitted again.
  (void)blocker.result.get();
  bool admitted = false;
  for (int i = 0; i < 2000 && !admitted; ++i) {
    admitted = service.submit("t", synthetic_job(1000), false).accepted();
    if (!admitted) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(admitted);
  ASSERT_TRUE(service.stop().ok());
  EXPECT_GE(service.stats().quota_rejects, 1u);
  EXPECT_EQ(service.stats().completed, service.stats().accepted);
}

TEST(ServiceTest, ConcurrentSubmitAndStopResolvesEveryAcceptedJob) {
  // Regression for the submit-vs-stop race: a ticket accepted while stop()
  // runs used to slip into the queue after the source went EOS, leaving
  // its future unresolved forever. Hammer the window from several threads.
  for (int iter = 0; iter < 16; ++iter) {
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.tenant_queue_capacity = 256;
    cfg.shed_watermark = 1.0;
    Service service(nullptr, cfg);
    ASSERT_TRUE(service.start().ok());
    constexpr int kThreads = 3;
    std::atomic<std::uint64_t> accepted{0};
    std::array<std::vector<std::future<JobResult>>, kThreads> futures;
    std::vector<std::thread> submitters;
    submitters.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&service, &accepted, &futures, t] {
        const std::string tenant = "t" + std::to_string(t);
        for (;;) {
          auto r = service.submit(tenant, synthetic_job(200'000));
          if (!r.accepted()) {
            if (r.rejected->code == RejectCode::kShuttingDown) return;
            std::this_thread::yield();
            continue;
          }
          accepted.fetch_add(1, std::memory_order_relaxed);
          futures[static_cast<std::size_t>(t)].push_back(std::move(r.result));
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1 + iter % 4));
    ASSERT_TRUE(service.stop().ok());
    for (auto& th : submitters) th.join();
    // stop() may not return before every accepted job is resolved — each
    // future must already be ready (completed or explicitly cancelled).
    std::uint64_t resolved = 0;
    for (auto& vec : futures) {
      for (auto& f : vec) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready)
            << "iteration " << iter;
        const JobResult jr = f.get();
        EXPECT_TRUE(jr.status.ok() ||
                    jr.status.code() == ErrorCode::kAborted)
            << jr.status.ToString();
        ++resolved;
      }
    }
    const auto stats = service.stats();
    EXPECT_EQ(stats.accepted, accepted.load()) << "iteration " << iter;
    EXPECT_EQ(resolved, accepted.load()) << "iteration " << iter;
    EXPECT_EQ(stats.completed, stats.accepted) << "iteration " << iter;
    EXPECT_LE(stats.cancelled, stats.completed) << "iteration " << iter;
  }
}

TEST(ServiceTest, ElasticFarmGrowsUnderBacklogAndShrinksWhenIdle) {
  telemetry::Registry reg;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.scale.min_workers = 1;
  cfg.scale.max_workers = 4;
  cfg.scale.scale_up_watermark = 4;
  cfg.scale.sample_interval = std::chrono::milliseconds(1);
  cfg.scale.sample_window = std::chrono::milliseconds(4);
  cfg.scale.scale_down_idle_window = std::chrono::milliseconds(15);
  cfg.scale.cooldown = std::chrono::milliseconds(4);
  cfg.tenant_queue_capacity = 256;
  cfg.shed_watermark = 1.0;
  // Tiny flow channels so backpressure reaches the tenant queues at once:
  // the decider watches the *queued* backlog, not in-channel buffering.
  cfg.queue_capacity = 2;
  cfg.registry = &reg;
  Service service(nullptr, cfg);
  ASSERT_TRUE(service.start().ok());
  EXPECT_EQ(service.stats().workers_active, 1);
  // Flood with sleep-bound jobs: the backlog pins above the watermark
  // until the controller walks the farm up to the ceiling.
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(
        service.submit("t", synthetic_job(10'000'000), false).accepted());
  }
  int peak = 1;
  for (int i = 0; i < 4000 && peak < cfg.scale.max_workers; ++i) {
    peak = std::max(peak, service.stats().workers_active);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(peak, cfg.scale.max_workers);
  // Once the backlog drains, idle windows walk it back to the floor.
  int floor = peak;
  for (int i = 0; i < 8000 && floor > cfg.scale.min_workers; ++i) {
    floor = std::min(floor, service.stats().workers_active);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(floor, cfg.scale.min_workers);
  ASSERT_TRUE(service.stop().ok());
  const auto stats = service.stats();
  EXPECT_GE(stats.scale_ups, 3u);
  EXPECT_GE(stats.scale_downs, 3u);
  EXPECT_EQ(stats.completed, stats.accepted);
  auto snap = reg.snapshot();
  const auto* workers = snap.find_gauge("serve.workers");
  ASSERT_NE(workers, nullptr);
  EXPECT_EQ(workers->value, static_cast<double>(stats.workers_active));
  ASSERT_NE(snap.find_counter("serve.scale_up"), nullptr);
  EXPECT_EQ(snap.find_counter("serve.scale_up")->value, stats.scale_ups);
  ASSERT_NE(snap.find_counter("serve.scale_down"), nullptr);
  EXPECT_EQ(snap.find_counter("serve.scale_down")->value, stats.scale_downs);
}

// ---- Wire protocol -----------------------------------------------------------

TEST(WireTest, RequestFramingRoundTrips) {
  auto m = parse_request("job acme mandel 64 500");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m.value().op, WireRequest::Op::kJob);
  EXPECT_EQ(m.value().tenant, "acme");
  EXPECT_EQ(m.value().job.kind, JobKind::kMandel);
  EXPECT_EQ(m.value().job.mandel.dim, 64);
  EXPECT_EQ(m.value().job.mandel.niter, 500);

  auto d = parse_request("job t1 dedup 4096");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().job.kind, JobKind::kDedup);
  EXPECT_EQ(d.value().job.payload.size(), 4096u);

  EXPECT_EQ(parse_request("ping").value().op, WireRequest::Op::kPing);
  EXPECT_EQ(parse_request("stats").value().op, WireRequest::Op::kStats);
  EXPECT_EQ(parse_request("quit").value().op, WireRequest::Op::kQuit);

  // encode_job_line is the exact inverse for both kinds.
  EXPECT_EQ(encode_job_line("acme", m.value().job), "job acme mandel 64 500");
  EXPECT_EQ(encode_job_line("t1", d.value().job), "job t1 dedup 4096");

  for (const char* bad :
       {"", "bogus", "job", "job t", "job t mandel", "job t mandel x 5",
        "job t mandel 4 5 6", "job t dedup", "job t dedup -1",
        "job t dedup 999999999999", "job t warp 4"}) {
    EXPECT_FALSE(parse_request(bad).ok()) << "'" << bad << "'";
  }
}

TEST(WireTest, ResponseFramingRoundTrips) {
  WireResponse ok;
  ok.kind = WireResponse::Kind::kOk;
  ok.job_id = 7;
  ok.latency_ns = 123456;
  ok.device = 1;
  auto ok2 = parse_response(encode_response(ok));
  ASSERT_TRUE(ok2.ok());
  EXPECT_EQ(ok2.value().kind, WireResponse::Kind::kOk);
  EXPECT_EQ(ok2.value().job_id, 7u);
  EXPECT_EQ(ok2.value().latency_ns, 123456u);
  EXPECT_EQ(ok2.value().device, 1);

  for (RejectCode code :
       {RejectCode::kOverload, RejectCode::kShuttingDown, RejectCode::kQuota}) {
    WireResponse rej;
    rej.kind = WireResponse::Kind::kRejected;
    rej.code = code;
    auto back = parse_response(encode_response(rej));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value().kind, WireResponse::Kind::kRejected);
    EXPECT_EQ(back.value().code, code);
  }

  WireResponse err;
  err.kind = WireResponse::Kind::kErr;
  err.detail = "deadline exceeded before execution";
  auto err2 = parse_response(encode_response(err));
  ASSERT_TRUE(err2.ok());
  EXPECT_EQ(err2.value().kind, WireResponse::Kind::kErr);
  EXPECT_EQ(err2.value().detail, err.detail);  // spaces survive framing

  WireResponse stats;
  stats.kind = WireResponse::Kind::kStats;
  stats.accepted = 10;
  stats.shed = 2;
  stats.quota_rejects = 1;
  stats.completed = 8;
  stats.workers = 3;
  auto stats2 = parse_response(encode_response(stats));
  ASSERT_TRUE(stats2.ok());
  EXPECT_EQ(stats2.value().kind, WireResponse::Kind::kStats);
  EXPECT_EQ(stats2.value().accepted, 10u);
  EXPECT_EQ(stats2.value().shed, 2u);
  EXPECT_EQ(stats2.value().quota_rejects, 1u);
  EXPECT_EQ(stats2.value().completed, 8u);
  EXPECT_EQ(stats2.value().workers, 3);

  EXPECT_EQ(parse_response("pong").value().kind, WireResponse::Kind::kPong);
  for (const char* bad : {"", "nope", "ok 1 2", "rejected", "rejected why",
                          "stats 1 2 3"}) {
    EXPECT_FALSE(parse_response(bad).ok()) << "'" << bad << "'";
  }
}

TEST(WireTest, ResponseForMapsSubmitOutcomes) {
  SubmitResult rejected;
  rejected.rejected = Rejected{RejectCode::kQuota, "over quota"};
  const WireResponse r1 = response_for(rejected, {});
  EXPECT_EQ(r1.kind, WireResponse::Kind::kRejected);
  EXPECT_EQ(r1.code, RejectCode::kQuota);

  SubmitResult accepted;
  accepted.job_id = 9;
  JobResult good;
  good.status = OkStatus();
  good.latency_ns = 555;
  good.device = 1;
  const WireResponse r2 = response_for(accepted, good);
  EXPECT_EQ(r2.kind, WireResponse::Kind::kOk);
  EXPECT_EQ(r2.job_id, 9u);
  EXPECT_EQ(r2.latency_ns, 555u);
  EXPECT_EQ(r2.device, 1);

  JobResult failed;
  failed.status = Internal("engine exploded");
  const WireResponse r3 = response_for(accepted, failed);
  EXPECT_EQ(r3.kind, WireResponse::Kind::kErr);
  EXPECT_NE(r3.detail.find("engine exploded"), std::string::npos);
}

#if defined(__unix__) || defined(__APPLE__)
TEST(WireTest, LoopbackServerBridgesJobsStatsAndErrors) {
  ServiceConfig cfg;
  cfg.workers = 2;
  Service service(nullptr, cfg);
  ASSERT_TRUE(service.start().ok());
  WireServer server(&service);
  ASSERT_TRUE(server.start().ok());
  ASSERT_GT(server.port(), 0);  // kernel-assigned ephemeral port

  WireClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()).ok());
  auto pong = client.call("ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong.value().kind, WireResponse::Kind::kPong);

  const JobRequest mjob = mandel_job();
  auto ok = client.call(encode_job_line("acme", mjob));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ASSERT_EQ(ok.value().kind, WireResponse::Kind::kOk);
  EXPECT_EQ(ok.value().device, -1);  // CPU-only service
  EXPECT_GT(ok.value().latency_ns, 0u);

  auto dd = client.call("job acme dedup 8192");
  ASSERT_TRUE(dd.ok());
  EXPECT_EQ(dd.value().kind, WireResponse::Kind::kOk);

  // Malformed lines come back as err responses, not dropped connections.
  auto err = client.call("job acme mandel nope 5");
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err.value().kind, WireResponse::Kind::kErr);
  EXPECT_FALSE(err.value().detail.empty());

  auto stats = client.call("stats");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().kind, WireResponse::Kind::kStats);
  EXPECT_GE(stats.value().accepted, 2u);
  EXPECT_EQ(stats.value().workers, 2);

  (void)client.call("quit");
  client.close();
  server.stop();
  ASSERT_TRUE(service.stop().ok());
  EXPECT_GE(service.stats().completed, 2u);
}
#endif  // POSIX

}  // namespace
}  // namespace hs::serve
