// Golden end-to-end checks for the pooled/blockwise dedup datapath.
//
// The archive SHA-1s and sizes below were recorded from the pre-pooling
// seed implementation (scalar kernels, per-block copies) on the same
// deterministic corpora and config. The pooled + blockwise datapath must
// keep every one of them bit-identical — the refactor is a pure
// performance change.
//
// The steady-state test asserts the other acceptance criterion: with warm
// pools and a saturated duplicate index, the per-item pipeline performs
// zero heap allocations (measured through the common/alloc_hook.hpp
// operator-new replacement).
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/alloc_hook.hpp"
#include "datagen/corpus.hpp"
#include "dedup/container.hpp"
#include "dedup/pipelines.hpp"
#include "dedup/stages.hpp"
#include "kernels/sha1.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define HS_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define HS_TEST_SANITIZED 1
#endif
#endif
#ifndef HS_TEST_SANITIZED
#define HS_TEST_SANITIZED 0
#endif

namespace hs::dedup {
namespace {

/// The baseline-probe config: 8 MB inputs, 256 KiB batches, ~2 kB blocks.
DedupConfig golden_config() {
  DedupConfig cfg;
  cfg.batch_size = 256 * 1024;
  cfg.rabin.mask = 0x7FF;
  return cfg;
}

std::string sha1_hex(std::span<const std::uint8_t> data) {
  static constexpr char kHex[] = "0123456789abcdef";
  auto digest = kernels::Sha1::hash(data);
  std::string out;
  for (std::uint8_t b : digest) {
    out += kHex[b >> 4];
    out += kHex[b & 0xF];
  }
  return out;
}

struct Golden {
  datagen::CorpusKind kind;
  const char* name;
  std::uint64_t archive_bytes;
  const char* archive_sha1;
};

// Recorded from the seed implementation (commit f9534de) with
// golden_config() on the deterministic 8'000'000-byte corpora.
constexpr Golden kGolden[] = {
    {datagen::CorpusKind::kParsecLike, "parsec", 5505676,
     "788a5132cec9e3fa935da735572297d85281b1f4"},
    {datagen::CorpusKind::kSourceLike, "source", 2707660,
     "4661ab2c7d0797241e38e29f16f5d803fbec482b"},
    {datagen::CorpusKind::kSilesiaLike, "silesia", 5738254,
     "77fff948c3b771553e5bff733de33454e46bf4c4"},
};

std::vector<std::uint8_t> golden_input(datagen::CorpusKind kind) {
  datagen::CorpusSpec spec;
  spec.kind = kind;
  spec.bytes = 8 * 1000 * 1000;
  return datagen::generate(spec);
}

TEST(DedupGoldenTest, ArchivesBitIdenticalToSeedOnAllDatasets) {
  for (const Golden& g : kGolden) {
    SCOPED_TRACE(g.name);
    const auto input = golden_input(g.kind);
    auto archive = archive_sequential(input, golden_config());
    ASSERT_TRUE(archive.ok()) << archive.status().ToString();
    EXPECT_EQ(archive.value().size(), g.archive_bytes);
    EXPECT_EQ(sha1_hex(archive.value()), g.archive_sha1);

    auto roundtrip = extract(archive.value());
    ASSERT_TRUE(roundtrip.ok()) << roundtrip.status().ToString();
    EXPECT_TRUE(roundtrip.value() == input);
  }
}

TEST(DedupGoldenTest, SparCpuMatchesSequentialArchive) {
  for (const Golden& g : kGolden) {
    SCOPED_TRACE(g.name);
    const auto input = golden_input(g.kind);
    auto seq = archive_sequential(input, golden_config());
    ASSERT_TRUE(seq.ok());
    auto par = archive_spar_cpu(input, golden_config(), 4);
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    EXPECT_TRUE(par.value() == seq.value());
    EXPECT_EQ(sha1_hex(par.value()), g.archive_sha1);
  }
}

TEST(DedupGoldenTest, SteadyStatePipelineIsAllocationFree) {
  if (HS_TEST_SANITIZED) {
    GTEST_SKIP() << "sanitizer allocator interposes on operator new";
  }
  datagen::CorpusSpec spec;
  spec.kind = datagen::CorpusKind::kParsecLike;
  spec.bytes = 2 * 1000 * 1000;
  const auto input = datagen::generate(spec);
  const DedupConfig cfg = golden_config();

  kernels::Rabin rabin(cfg.rabin);
  BatchPool pool;
  DupCache cache;
  ArchiveWriter writer(cfg);
  writer.reserve(2 * (input.size() + input.size() / 4) + 4096);

  std::uint64_t index = 0;
  auto one_pass = [&] {
    for (std::size_t off = 0; off < input.size(); off += cfg.batch_size) {
      const std::size_t n =
          std::min<std::size_t>(cfg.batch_size, input.size() - off);
      Batch batch = pool.acquire();
      fragment_batch_into(std::span(input).subspan(off, n), index++, rabin,
                          batch);
      hash_blocks(batch);
      cache.check(batch);
      compress_blocks_cpu(batch, cfg);
      ASSERT_TRUE(writer.append(batch).ok());
      pool.release(std::move(batch));
    }
  };
  one_pass();  // warm-up: pools fill, duplicate index saturates
  const std::uint64_t before = heap_alloc_count();
  one_pass();  // steady state
  EXPECT_EQ(heap_alloc_count() - before, 0u)
      << "per-item heap allocations in the steady-state pipeline";
}

}  // namespace
}  // namespace hs::dedup
