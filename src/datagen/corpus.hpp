// Synthetic corpus generators substituting for the paper's three Dedup
// datasets (DESIGN.md §2). Dedup throughput depends on two content
// properties — the duplicate-block fraction (how much work stages 3-4 skip)
// and compressibility (how hard LZSS works) — so each generator is shaped
// to its dataset's published character:
//
//  * kSourceLike  (— Linux kernel source tree, 816 MB): source text built
//    from a reused line pool and license headers; very high duplication
//    across "files" and high compressibility.
//  * kParsecLike  (— PARSEC dedup "native" input, 185 MB, a disk-image-like
//    archive): mixed binary/text segments with a moderate fraction of
//    repeated segments and moderate compressibility.
//  * kSilesiaLike (— Silesia corpus, 202.13 MB, "XML, DLLs, and many
//    others"): heterogeneous typed segments (xml / english text / binary
//    records / incompressible noise) with almost no cross-file duplication.
//
// All output is deterministic in (kind, bytes, seed).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace hs::datagen {

enum class CorpusKind : std::uint8_t {
  kParsecLike,
  kSourceLike,
  kSilesiaLike,
};

std::string_view corpus_name(CorpusKind kind);

/// Parses "parsec" / "source" / "silesia" (case-insensitive).
Result<CorpusKind> parse_corpus_kind(std::string_view name);

struct CorpusSpec {
  CorpusKind kind = CorpusKind::kParsecLike;
  std::uint64_t bytes = 8 * 1024 * 1024;
  std::uint64_t seed = 42;
};

/// Generates the corpus. Output size is exactly spec.bytes.
std::vector<std::uint8_t> generate(const CorpusSpec& spec);

/// Measured content properties, used by tests (shape calibration) and
/// reported in EXPERIMENTS.md next to each Fig. 5 run.
struct CorpusProfile {
  double duplicate_block_fraction = 0;  ///< bytes in repeated rabin blocks
  double lzss_ratio = 0;                ///< compressed/original on a sample
  std::size_t block_count = 0;
};

/// Chunks with default-ish rabin parameters, SHA-1s each block, measures
/// the duplicate fraction, and LZSS-compresses a bounded sample.
CorpusProfile profile(std::span<const std::uint8_t> data);

}  // namespace hs::datagen
