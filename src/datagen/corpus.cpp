#include "datagen/corpus.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <span>

#include "common/rng.hpp"
#include "kernels/lzss.hpp"
#include "kernels/rabin.hpp"
#include "kernels/sha1.hpp"

namespace hs::datagen {

namespace {

using Bytes = std::vector<std::uint8_t>;

void append(Bytes& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

void append(Bytes& out, const Bytes& s) {
  out.insert(out.end(), s.begin(), s.end());
}

// ---- shared text machinery -------------------------------------------------

const char* const kCWords[] = {
    "int",      "return",   "static",  "struct",  "const",   "void",
    "unsigned", "char",     "if",      "else",    "for",     "while",
    "switch",   "case",     "break",   "sizeof",  "NULL",    "dev",
    "buf",      "len",      "err",     "ret",     "data",    "ctx",
    "lock",     "flags",    "state",   "init",    "probe",   "remove",
    "read",     "write",    "ioctl",   "irq",     "page",    "inode"};

const char* const kEnglishWords[] = {
    "the",     "of",     "and",    "to",      "a",        "in",
    "that",    "it",     "was",    "his",     "with",     "as",
    "stream",  "which",  "had",    "for",     "her",      "not",
    "but",     "at",     "by",     "this",    "processing", "from",
    "be",      "on",     "she",    "have",    "him",      "were",
    "chapter", "said",   "morning", "evening", "house",    "time"};

const char* const kLicenseHeader =
    "/*\n"
    " * This program is free software; you can redistribute it and/or"
    " modify\n"
    " * it under the terms of the GNU General Public License version 2"
    " as\n"
    " * published by the Free Software Foundation.\n"
    " */\n";

/// A pool of reusable source lines: repeated draws return repeated lines,
/// creating the massive cross-file duplication of a kernel tree.
class LinePool {
 public:
  LinePool(std::size_t size, Xoshiro256& rng) {
    lines_.reserve(size);
    for (std::size_t i = 0; i < size; ++i) {
      lines_.push_back(make_line(rng));
    }
  }

  const std::string& draw(Xoshiro256& rng) const {
    // Zipf-ish: square the uniform draw so low indices dominate.
    double u = rng.uniform();
    auto idx = static_cast<std::size_t>(u * u *
                                        static_cast<double>(lines_.size()));
    if (idx >= lines_.size()) idx = lines_.size() - 1;
    return lines_[idx];
  }

 private:
  static std::string make_line(Xoshiro256& rng) {
    std::string line = "\t";
    std::size_t words = 2 + rng.bounded(6);
    for (std::size_t w = 0; w < words; ++w) {
      line += kCWords[rng.bounded(std::size(kCWords))];
      line += w + 1 == words ? ";" : " ";
    }
    line += "\n";
    return line;
  }

  std::vector<std::string> lines_;
};

Bytes generate_source_like(std::uint64_t bytes, std::uint64_t seed) {
  Xoshiro256 rng(seed ^ 0x50C1A17Eull);
  Bytes out;
  out.reserve(bytes);
  LinePool pool(4000, rng);
  // A kernel tree duplicates at two granularities: lines/idioms inside
  // files (compressibility) and whole files across architectures/vendored
  // copies (block-level duplicates). Re-emitting previously generated
  // files models the latter.
  std::vector<Bytes> files;
  while (out.size() < bytes) {
    if (!files.empty() && rng.chance(0.55)) {
      append(out, files[rng.bounded(files.size())]);
      continue;
    }
    // One fresh "file": license header + a function skeleton of pooled
    // lines.
    Bytes file;
    append(file, kLicenseHeader);
    append(file, "static int mod_");
    append(file, std::to_string(rng.bounded(100000)));
    append(file, "_init(void)\n{\n");
    std::size_t body = 60 + rng.bounded(400);
    for (std::size_t i = 0; i < body; ++i) {
      append(file, pool.draw(rng));
    }
    append(file, "\treturn 0;\n}\n\n");
    append(out, file);
    if (files.size() < 512) files.push_back(std::move(file));
  }
  out.resize(bytes);
  return out;
}

/// Locally-repetitive binary segment (LZ-compressible but unique).
Bytes binary_segment(std::size_t n, Xoshiro256& rng) {
  Bytes seg;
  seg.reserve(n);
  while (seg.size() < n) {
    if (!seg.empty() && rng.chance(0.35)) {
      // Repeat a recent slice (local redundancy -> compressible).
      std::size_t back = 1 + rng.bounded(std::min<std::size_t>(seg.size(), 512));
      std::size_t len = std::min<std::size_t>(
          1 + rng.run_length(24.0), n - seg.size());
      std::size_t src = seg.size() - back;
      for (std::size_t i = 0; i < len; ++i) seg.push_back(seg[src + i]);
    } else {
      std::size_t len =
          std::min<std::size_t>(1 + rng.bounded(32), n - seg.size());
      for (std::size_t i = 0; i < len; ++i) {
        seg.push_back(static_cast<std::uint8_t>(rng()));
      }
    }
  }
  return seg;
}

/// A disk-image-like archive: a stream of segments, ~35% of which repeat
/// previously-seen segments verbatim (the duplication dedup exploits).
Bytes generate_parsec_like_impl(std::uint64_t bytes, std::uint64_t seed) {
  Xoshiro256 rng(seed ^ 0xDE0D09ull);
  Bytes out;
  out.reserve(bytes);
  std::vector<Bytes> history;
  while (out.size() < bytes) {
    if (!history.empty() && rng.chance(0.35)) {
      const Bytes& dup = history[rng.bounded(history.size())];
      append(out, dup);
    } else {
      std::size_t n = 2048 + rng.bounded(14 * 1024);
      Bytes seg = binary_segment(n, rng);
      append(out, seg);
      if (history.size() < 512) history.push_back(std::move(seg));
    }
  }
  out.resize(bytes);
  return out;
}

Bytes english_segment(std::size_t n, Xoshiro256& rng) {
  Bytes seg;
  seg.reserve(n);
  std::size_t col = 0;
  while (seg.size() < n) {
    std::string_view word = kEnglishWords[rng.bounded(std::size(kEnglishWords))];
    append(seg, word);
    col += word.size() + 1;
    if (col > 68) {
      seg.push_back('\n');
      col = 0;
    } else {
      seg.push_back(' ');
    }
  }
  seg.resize(n);
  return seg;
}

Bytes xml_segment(std::size_t n, Xoshiro256& rng) {
  Bytes seg;
  seg.reserve(n);
  append(seg, "<?xml version=\"1.0\"?>\n<records>\n");
  while (seg.size() < n) {
    append(seg, "  <record id=\"");
    append(seg, std::to_string(rng.bounded(1000000)));
    append(seg, "\" type=\"entry\">\n    <value>");
    append(seg, std::to_string(rng()));
    append(seg, "</value>\n  </record>\n");
  }
  seg.resize(n);
  return seg;
}

Bytes noise_segment(std::size_t n, Xoshiro256& rng) {
  Bytes seg(n);
  for (auto& b : seg) b = static_cast<std::uint8_t>(rng());
  return seg;
}

Bytes generate_silesia_like(std::uint64_t bytes, std::uint64_t seed) {
  // Heterogeneous typed "files", almost no cross-file duplication.
  Xoshiro256 rng(seed ^ 0x51E51Aull);
  Bytes out;
  out.reserve(bytes);
  while (out.size() < bytes) {
    std::size_t n = std::min<std::uint64_t>(64 * 1024 + rng.bounded(192 * 1024),
                                            bytes - out.size());
    switch (rng.bounded(4)) {
      case 0:
        append(out, english_segment(n, rng));
        break;
      case 1:
        append(out, xml_segment(n, rng));
        break;
      case 2:
        append(out, binary_segment(n, rng));
        break;
      default:
        append(out, noise_segment(n, rng));
        break;
    }
  }
  out.resize(bytes);
  return out;
}

}  // namespace

std::string_view corpus_name(CorpusKind kind) {
  switch (kind) {
    case CorpusKind::kParsecLike: return "parsec-like";
    case CorpusKind::kSourceLike: return "source-like";
    case CorpusKind::kSilesiaLike: return "silesia-like";
  }
  return "unknown";
}

Result<CorpusKind> parse_corpus_kind(std::string_view name) {
  std::string lower;
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower.find("parsec") != std::string::npos) {
    return CorpusKind::kParsecLike;
  }
  if (lower.find("source") != std::string::npos ||
      lower.find("linux") != std::string::npos) {
    return CorpusKind::kSourceLike;
  }
  if (lower.find("silesia") != std::string::npos) {
    return CorpusKind::kSilesiaLike;
  }
  return InvalidArgument("unknown corpus kind: " + std::string(name));
}

std::vector<std::uint8_t> generate(const CorpusSpec& spec) {
  switch (spec.kind) {
    case CorpusKind::kParsecLike:
      return generate_parsec_like_impl(spec.bytes, spec.seed);
    case CorpusKind::kSourceLike:
      return generate_source_like(spec.bytes, spec.seed);
    case CorpusKind::kSilesiaLike:
      return generate_silesia_like(spec.bytes, spec.seed);
  }
  return {};
}

CorpusProfile profile(std::span<const std::uint8_t> data) {
  CorpusProfile out;
  if (data.empty()) return out;

  kernels::RabinParams rp;
  rp.window = 32;
  rp.min_block = 512;
  rp.max_block = 32768;
  rp.mask = 0xFFF;
  rp.magic = 0x78;
  kernels::Rabin rabin(rp);
  auto starts = rabin.chunk_boundaries(data);
  out.block_count = starts.size();

  std::map<kernels::Sha1Digest, int> seen;
  std::uint64_t dup_bytes = 0;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    std::size_t s = starts[i];
    std::size_t e = i + 1 < starts.size() ? starts[i + 1] : data.size();
    auto digest = kernels::Sha1::hash(data.subspan(s, e - s));
    if (++seen[digest] > 1) dup_bytes += e - s;
  }
  out.duplicate_block_fraction =
      static_cast<double>(dup_bytes) / static_cast<double>(data.size());

  std::size_t sample = std::min<std::size_t>(data.size(), 256 * 1024);
  kernels::LzssParams lp;
  lp.window_size = 256;
  auto compressed = kernels::lzss_encode(data.subspan(0, sample), lp);
  out.lzss_ratio =
      static_cast<double>(compressed.size()) / static_cast<double>(sample);
  return out;
}

}  // namespace hs::datagen
