#include "mandel/iteration_map.hpp"

#include <cstdio>
#include <cstring>

namespace hs::mandel {

namespace {
constexpr char kMagic[8] = {'H', 'S', 'M', 'A', 'P', '0', '0', '1'};

struct CacheHeader {
  char magic[8];
  std::int32_t dim;
  std::int32_t niter;
  double init_a;
  double init_b;
  double range;
};
}  // namespace

IterationMap IterationMap::compute(const MandelParams& params) {
  IterationMap map;
  map.params_ = params;
  map.iters_.resize(static_cast<std::size_t>(params.dim) *
                    static_cast<std::size_t>(params.dim));
  for (int i = 0; i < params.dim; ++i) {
    for (int j = 0; j < params.dim; ++j) {
      map.iters_[static_cast<std::size_t>(i) *
                     static_cast<std::size_t>(params.dim) +
                 static_cast<std::size_t>(j)] =
          kernels::mandel_iterations(params, i, j);
    }
  }
  map.finalize_costs();
  return map;
}

void IterationMap::finalize_costs() {
  line_cost_.assign(static_cast<std::size_t>(params_.dim), 0);
  total_cost_ = 0;
  for (int i = 0; i < params_.dim; ++i) {
    std::uint64_t line = 0;
    for (int j = 0; j < params_.dim; ++j) {
      line += lane_cost(i, j);
    }
    line_cost_[static_cast<std::size_t>(i)] = line;
    total_cost_ += line;
  }
}

void IterationMap::render_line(int i, std::span<std::uint8_t> row) const {
  for (int j = 0; j < params_.dim; ++j) {
    row[static_cast<std::size_t>(j)] = color(i, j);
  }
}

Status IterationMap::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Internal("cannot open cache file for write: " + path);
  CacheHeader hdr{};
  std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
  hdr.dim = params_.dim;
  hdr.niter = params_.niter;
  hdr.init_a = params_.init_a;
  hdr.init_b = params_.init_b;
  hdr.range = params_.range;
  bool ok = std::fwrite(&hdr, sizeof(hdr), 1, f) == 1 &&
            std::fwrite(iters_.data(), sizeof(std::int32_t), iters_.size(),
                        f) == iters_.size();
  std::fclose(f);
  if (!ok) return Internal("short write to cache file: " + path);
  return OkStatus();
}

Result<IterationMap> IterationMap::load(const std::string& path,
                                        const MandelParams& params) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return NotFound("no cache file: " + path);
  CacheHeader hdr{};
  if (std::fread(&hdr, sizeof(hdr), 1, f) != 1 ||
      std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0) {
    std::fclose(f);
    return DataLoss("corrupt iteration-map cache header: " + path);
  }
  if (hdr.dim != params.dim || hdr.niter != params.niter ||
      hdr.init_a != params.init_a || hdr.init_b != params.init_b ||
      hdr.range != params.range) {
    std::fclose(f);
    return FailedPrecondition("cache was built for different parameters");
  }
  IterationMap map;
  map.params_ = params;
  map.iters_.resize(static_cast<std::size_t>(params.dim) *
                    static_cast<std::size_t>(params.dim));
  std::size_t got = std::fread(map.iters_.data(), sizeof(std::int32_t),
                               map.iters_.size(), f);
  std::fclose(f);
  if (got != map.iters_.size()) {
    return DataLoss("truncated iteration-map cache: " + path);
  }
  map.finalize_costs();
  return map;
}

Result<IterationMap> IterationMap::load_or_compute(
    const std::string& cache_path, const MandelParams& params) {
  auto cached = load(cache_path, params);
  if (cached.ok()) return cached;
  IterationMap map = compute(params);
  // Cache write failures are non-fatal: the map is still usable.
  (void)map.save(cache_path);
  return map;
}

std::uint64_t image_checksum(std::span<const std::uint8_t> image) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (std::uint8_t b : image) {
    hash ^= b;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

Status write_pgm(const std::string& path,
                 std::span<const std::uint8_t> image, int width, int height) {
  if (static_cast<std::size_t>(width) * static_cast<std::size_t>(height) !=
      image.size()) {
    return InvalidArgument("image size does not match dimensions");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Internal("cannot open PGM for write: " + path);
  std::fprintf(f, "P5\n%d %d\n255\n", width, height);
  bool ok = std::fwrite(image.data(), 1, image.size(), f) == image.size();
  std::fclose(f);
  if (!ok) return Internal("short write to PGM: " + path);
  return OkStatus();
}

}  // namespace hs::mandel
