// Real, functional Mandelbrot Streaming pipelines over the actual runtimes
// (flow / taskx / spar) and API shims (cudax / oclx), computing the fractal
// with the true per-pixel math. These are the implementations a user of
// the library runs (see examples/); the figure benches use the modeled
// runners in mandel/modeled.hpp instead, which replay the same structures
// at paper scale.
//
// All functions return the rendered dim*dim grayscale image; every variant
// must produce identical bytes (tests assert this).
#pragma once

#include <cstdint>
#include <vector>

#include "common/retry.hpp"
#include "common/status.hpp"
#include "flow/pipeline.hpp"
#include "gpusim/device.hpp"
#include "kernels/mandel.hpp"
#include "sched/sched.hpp"

namespace hs::mandel {

using kernels::MandelParams;

/// Plain sequential rendering (the paper's baseline).
std::vector<std::uint8_t> render_sequential(const MandelParams& params);

/// FastFlow-equivalent: pipeline(source, farm(worker x N, ordered), sink).
Result<std::vector<std::uint8_t>> render_flow(const MandelParams& params,
                                              int workers);

/// TBB-equivalent: token pipeline with a parallel compute filter and a
/// serial-in-order display filter.
Result<std::vector<std::uint8_t>> render_taskx(const MandelParams& params,
                                               int workers,
                                               std::size_t max_tokens);

/// SPar-equivalent: the Listing 1 annotation structure.
Result<std::vector<std::uint8_t>> render_spar(const MandelParams& params,
                                              int workers);

/// SPar pipeline whose replicated middle stage offloads each line to a
/// simulated GPU through the CUDA shim (per-thread cudaSetDevice, device
/// chosen round-robin per item — the paper's multi-GPU scheme). `machine`
/// must stay bound to cudax for the duration.
///
/// Fault tolerance: transient device errors (failed copies/launches,
/// allocation pressure) are retried under `policy`; a lost device is
/// permanently excluded and its worker migrates to a surviving device or —
/// when none remain — to the bit-exact CPU kernel path, so the rendered
/// image is identical under any injected fault sequence. Pass `stats` to
/// collect per-attempt telemetry (may be shared across calls; null to skip).
/// With `tracker` set (sched::SchedMode::kAdaptive), the per-replica static
/// binding is replaced by least-loaded device selection with idle-device
/// stealing: each line is routed through the tracker, service times feed its
/// EWMA, and a lost device is excluded so queued work drains through the
/// surviving devices. The rendered image is identical either way.
/// With `failures` set, the region's full per-stage failure report is
/// copied out after the run (empty on clean runs) — callers can flag
/// unrecovered stage failures even when a full image was produced.
Result<std::vector<std::uint8_t>> render_spar_cuda(
    const MandelParams& params, int workers, gpusim::Machine& machine,
    RetryStats* stats = nullptr, const RetryPolicy& policy = {},
    sched::DeviceLoadTracker* tracker = nullptr,
    flow::FailureReport* failures = nullptr);

/// Single-host-thread OpenCL version with line batches (Listing 2 port per
/// §IV-A), exercising platform discovery, buffers, queues and events.
Result<std::vector<std::uint8_t>> render_opencl_batched(
    const MandelParams& params, gpusim::Machine& machine, int batch_lines);

}  // namespace hs::mandel
