// Modeled Mandelbrot Streaming variants — the engine behind Fig. 1/Fig. 4.
//
// Each runner executes the *real* algorithm structure of one of the paper's
// implementations — the same loops, batch shapes, stream round-robins,
// buffer-reuse synchronization, and pipeline topology — with pixels
// produced functionally from the IterationMap and durations charged to the
// modeled host workers (perfmodel) and simulated devices (gpusim). The
// returned modeled time is the makespan of that schedule.
//
// Every runner renders the full image and returns its checksum; all
// variants must agree bit-for-bit (asserted by tests and the benches).
//
// The CUDA and OpenCL paths share the scheduling code (the paper measured
// them within ~2% everywhere); they differ by the per-call API overhead
// charged and the reported label. The API shims themselves (cudax/oclx) are
// exercised by the real small-scale pipelines in mandel/pipelines.hpp and
// their tests.
#pragma once

#include <string>

#include "gpusim/device.hpp"
#include "mandel/iteration_map.hpp"
#include "perfmodel/host_model.hpp"
#include "sched/sched.hpp"

namespace hs::mandel {

enum class CpuModel { kSpar, kTbb, kFastFlow };
enum class GpuApi { kCuda, kOpenCl };
enum class GpuMode {
  kPerLine1D,  ///< naive: one kernel per fractal line (paper's 3.1x)
  kPerLine2D,  ///< "2D of threads and blocks" (paper's 1.6x). The paper
               ///< does not specify its geometry; we model the classic 2D
               ///< indexing pitfall — a 16x16 block whose fastest-varying
               ///< thread dimension strides across columns, so each warp
               ///< samples columns spread over a 256-wide tile and loses
               ///< its divergence coherence (EXPERIMENTS.md note A)
  kBatched,    ///< Listing 2: batches of lines per kernel call
};

std::string_view cpu_model_name(CpuModel m);
std::string_view gpu_api_name(GpuApi a);

struct ModeledConfig {
  perfmodel::HostProfile host = perfmodel::HostProfile::I9_7900X();
  gpusim::DeviceSpec device_spec = gpusim::DeviceSpec::TitanXP();
  int devices = 1;
  int batch_lines = 32;     ///< lines per kernel call in kBatched mode
  int buffers_per_gpu = 1;  ///< "memory spaces": concurrent buffers/streams
  int cpu_workers = 19;     ///< middle-stage replicas, CPU-only versions
  int combined_workers = 10;  ///< middle-stage replicas, GPU-combined
  std::size_t tbb_tokens = 38;  ///< max_number_of_live_tokens

  // --- ablation knobs (DESIGN.md §4) ---
  gpusim::DivergenceModel divergence = gpusim::DivergenceModel::kMaxLane;
  bool copy_compute_overlap = true;

  /// kStatic reproduces the paper's schedules bit-for-bit (fixed
  /// batch_lines, batch->device round-robin). kAdaptive replaces the
  /// round-robin with least-loaded selection over the modeled completion
  /// times and grows the batch with sched::AimdBatchSizer until the
  /// measured per-line cost flattens (the occupancy break-even) or device
  /// memory rejects the allocation.
  sched::SchedMode sched = sched::SchedMode::kStatic;

  /// When set, the variant's modeled schedule is dumped as Chrome
  /// trace-event JSON (see des/trace_export.hpp) to this path.
  std::string trace_path;
};

struct RunResult {
  std::string label;
  double modeled_seconds = 0;
  std::uint64_t checksum = 0;
  std::uint64_t kernel_launches = 0;
  double gpu_compute_utilization = 0;  ///< device 0 compute busy / makespan
  /// Batch size the AIMD sizer converged to; 0 under SchedMode::kStatic.
  std::uint64_t adaptive_batch_lines = 0;
};

/// The sequential baseline (the paper's 400 s reference).
RunResult run_sequential(const IterationMap& map, const ModeledConfig& cfg);

/// CPU-only pipeline: source -> replicated compute stage -> ordered sink.
/// kTbb additionally applies the live-token cap and steal-style (earliest
/// worker) scheduling; kSpar/kFastFlow use round-robin.
RunResult run_cpu_pipeline(const IterationMap& map, const ModeledConfig& cfg,
                           CpuModel model);

/// Single-host-thread GPU version (the paper's CUDA/OpenCL-only bars).
RunResult run_gpu_single_thread(const IterationMap& map,
                                const ModeledConfig& cfg, GpuApi api,
                                GpuMode mode);

/// Multicore pipeline with GPU offload in the replicated middle stage
/// (SPar/TBB/FastFlow x CUDA/OpenCL): workers own per-item streams, issue
/// async copies, and the collector synchronizes — the paper's Fig. 4
/// combined versions.
RunResult run_combined(const IterationMap& map, const ModeledConfig& cfg,
                       CpuModel model, GpuApi api);

}  // namespace hs::mandel
