#include "mandel/calibrate.hpp"

#include <algorithm>

namespace hs::mandel {

double batched_warp_cost_total(const IterationMap& map, int batch_lines,
                               const gpusim::DeviceSpec& spec) {
  const int dim = map.params().dim;
  const std::uint32_t warp = spec.warp_size;
  double total = 0;
  for (int first = 0; first < dim; first += batch_lines) {
    const int count = std::min(batch_lines, dim - first);
    const std::uint64_t threads =
        static_cast<std::uint64_t>(count) * static_cast<std::uint64_t>(dim);
    // Listing-2 linearization: tid -> (i_batch, j); warps are `warp`
    // consecutive tids (256-thread blocks are warp-aligned).
    for (std::uint64_t base = 0; base < threads; base += warp) {
      double wmax = 0;
      for (std::uint32_t lane = 0; lane < warp; ++lane) {
        std::uint64_t tid = base + lane;
        if (tid >= threads) {
          wmax = std::max(wmax, 1.0);
          continue;
        }
        std::uint64_t i_batch = tid / static_cast<std::uint64_t>(dim);
        std::uint64_t j = tid - i_batch * static_cast<std::uint64_t>(dim);
        wmax = std::max(
            wmax, static_cast<double>(map.lane_cost(
                      first + static_cast<int>(i_batch), static_cast<int>(j))));
      }
      total += wmax + spec.warp_fixed_cost_units;
    }
  }
  return total;
}

double per_line_max_cost_total(const IterationMap& map) {
  const int dim = map.params().dim;
  double total = 0;
  for (int i = 0; i < dim; ++i) {
    std::uint64_t wmax = 0;
    for (int j = 0; j < dim; ++j) {
      wmax = std::max(wmax, map.lane_cost(i, j));
    }
    total += static_cast<double>(wmax);
  }
  return total;
}

ModeledConfig calibrate_to_paper(const IterationMap& map,
                                 const PaperAnchors& anchors,
                                 ModeledConfig base) {
  const int dim = map.params().dim;

  // Anchor 1: CPU iteration cost from the sequential time.
  base.host.seconds_per_mandel_iter =
      anchors.sequential_seconds / static_cast<double>(map.total_cost());

  // Display cost: show_total spread over the lines.
  const double per_line_show = anchors.show_total_seconds / dim;
  base.host.show_line_base = 1.0e-6;
  base.host.show_line_per_pixel =
      std::max(0.0, (per_line_show - base.host.show_line_base) / dim);

  // Anchor 2: GPU warp-unit cost from the batched compute time.
  //   C = n_launches * L + (sum of warp costs / sm_count) * u
  const double warp_total =
      batched_warp_cost_total(map, base.batch_lines, base.device_spec);
  const int launches = (dim + base.batch_lines - 1) / base.batch_lines;
  double compute_budget =
      anchors.batched_compute_seconds -
      launches * base.device_spec.kernel_launch_latency;
  compute_budget = std::max(compute_budget,
                            0.1 * anchors.batched_compute_seconds);
  base.device_spec.seconds_per_warp_cost_unit =
      compute_budget * base.device_spec.sm_count / warp_total;

  // Refine u against the actual modeled schedule: the analytic solve uses
  // the mean per-SM load, but the makespan follows the *worst* SM
  // (round-robin warp imbalance), so run the pure-compute batched
  // configuration (display cost zeroed, deep buffering) and rescale.
  for (int iter = 0; iter < 4; ++iter) {
    ModeledConfig probe = base;
    probe.devices = 1;
    probe.buffers_per_gpu = 4;
    probe.host.show_line_base = 0;
    probe.host.show_line_per_pixel = 0;
    RunResult r =
        run_gpu_single_thread(map, probe, GpuApi::kCuda, GpuMode::kBatched);
    double ratio = anchors.batched_compute_seconds / r.modeled_seconds;
    if (ratio > 0.99 && ratio < 1.01) break;
    base.device_spec.seconds_per_warp_cost_unit *= ratio;
  }

  // Anchor 3: latency-hiding depth from the per-line naive time.
  //   T = sum_lines (L + H * wmax_line * u + d2h + show)
  const double u = base.device_spec.seconds_per_warp_cost_unit;
  const double d2h = gpusim::copy_duration_seconds(
      base.device_spec, gpusim::CopyDir::kDeviceToHost,
      gpusim::HostMem::kPinned, static_cast<std::uint64_t>(dim));
  const double fixed_per_line =
      base.device_spec.kernel_launch_latency + d2h + per_line_show;
  const double wmax_total = per_line_max_cost_total(map);
  double h = (anchors.per_line_seconds - dim * fixed_per_line) /
             (wmax_total * u);
  // Keep H physical: at least 1 warp, and below the 67 warps/SM of the
  // batched configuration so the batched anchor stays unstalled.
  base.device_spec.latency_hiding_warps = std::clamp(h, 1.0, 48.0);

  // The analytic H assumes the per-line kernel is bounded by its single
  // worst warp; in the model the worst SM holds 2-3 warps whose costs
  // average below the max, so refine H against the actual modeled run
  // (a few cheap fixed-point steps).
  const double overhead_total = dim * fixed_per_line;
  for (int iter = 0; iter < 4; ++iter) {
    ModeledConfig probe = base;
    probe.devices = 1;
    RunResult r =
        run_gpu_single_thread(map, probe, GpuApi::kCuda, GpuMode::kPerLine1D);
    double measured = r.modeled_seconds - overhead_total;
    double target = anchors.per_line_seconds - overhead_total;
    if (measured <= 0 || target <= 0) break;
    double ratio = target / measured;
    if (ratio > 0.98 && ratio < 1.02) break;
    base.device_spec.latency_hiding_warps = std::clamp(
        base.device_spec.latency_hiding_warps * ratio, 1.0, 48.0);
  }

  return base;
}

}  // namespace hs::mandel
