#include "mandel/modeled.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <vector>

#include "mandel/modeled_detail.hpp"

namespace hs::mandel {

namespace {

using gpusim::Device;
using gpusim::Dim3;
using gpusim::Machine;
using gpusim::OpHandle;
using gpusim::StreamId;
using gpusim::ThreadCtx;
using perfmodel::HostProfile;
using perfmodel::ModeledHost;

// Kernel/copy enqueue bodies and host overhead formulas live in
// modeled_detail.hpp so the cluster runner (cluster/modeled.cpp) charges
// identical durations.
using detail::apply_device_knobs;
using detail::enqueue_overhead;
using detail::fill_device_stats;
using detail::item_overhead;
using detail::launch_batch;
using detail::MemSpace;
using detail::show_cost;

}  // namespace

std::string_view cpu_model_name(CpuModel m) {
  switch (m) {
    case CpuModel::kSpar: return "spar";
    case CpuModel::kTbb: return "tbb";
    case CpuModel::kFastFlow: return "fastflow";
  }
  return "?";
}

std::string_view gpu_api_name(GpuApi a) {
  return a == GpuApi::kCuda ? "cuda" : "opencl";
}

RunResult run_sequential(const IterationMap& map, const ModeledConfig& cfg) {
  const int dim = map.params().dim;
  auto machine = Machine::Create(0, cfg.device_spec);
  if (!cfg.trace_path.empty()) machine->set_trace_recording(true);
  ModeledHost seq(machine.get(), "seq");

  std::vector<std::uint8_t> image(static_cast<std::size_t>(dim) * dim);
  for (int i = 0; i < dim; ++i) {
    map.render_line(i, std::span<std::uint8_t>(
                           image.data() + static_cast<std::size_t>(i) * dim,
                           static_cast<std::size_t>(dim)));
    seq.work(static_cast<double>(map.line_cost(i)) *
                 cfg.host.seconds_per_mandel_iter +
             show_cost(cfg.host, dim, 1));
  }

  RunResult out;
  out.label = "sequential";
  out.modeled_seconds = seq.finish_time();
  out.checksum = image_checksum(image);
  if (!cfg.trace_path.empty()) (void)machine->dump_chrome_trace(cfg.trace_path);
  return out;
}

RunResult run_cpu_pipeline(const IterationMap& map, const ModeledConfig& cfg,
                           CpuModel model) {
  const int dim = map.params().dim;
  const double ovh = item_overhead(cfg.host, model);
  auto machine = Machine::Create(0, cfg.device_spec);
  if (!cfg.trace_path.empty()) machine->set_trace_recording(true);

  ModeledHost source(machine.get(), "source");
  ModeledHost sink(machine.get(), "sink");
  std::vector<std::unique_ptr<ModeledHost>> workers;
  const int nworkers = std::max(1, cfg.cpu_workers);
  workers.reserve(static_cast<std::size_t>(nworkers));
  for (int w = 0; w < nworkers; ++w) {
    workers.push_back(std::make_unique<ModeledHost>(
        machine.get(), "worker" + std::to_string(w)));
  }

  std::vector<std::uint8_t> image(static_cast<std::size_t>(dim) * dim);
  std::vector<des::TaskId> sink_tasks(static_cast<std::size_t>(dim));
  const bool steal = model == CpuModel::kTbb;

  for (int i = 0; i < dim; ++i) {
    // TBB throttles in-flight items with max_number_of_live_tokens: item i
    // cannot enter before item (i - tokens) has retired at the sink.
    des::TaskId throttle{};
    if (model == CpuModel::kTbb &&
        static_cast<std::size_t>(i) >= cfg.tbb_tokens) {
      throttle = sink_tasks[static_cast<std::size_t>(i) - cfg.tbb_tokens];
    }
    des::TaskId emitted = source.work_after(ovh, throttle);

    // Worker choice: round-robin (FastFlow/SPar default scheduling) or
    // earliest-available (work stealing evens the load).
    std::size_t w;
    if (steal) {
      w = 0;
      for (std::size_t c = 1; c < workers.size(); ++c) {
        if (workers[c]->finish_time() < workers[w]->finish_time()) w = c;
      }
    } else {
      w = static_cast<std::size_t>(i) % workers.size();
    }
    map.render_line(i, std::span<std::uint8_t>(
                           image.data() + static_cast<std::size_t>(i) * dim,
                           static_cast<std::size_t>(dim)));
    des::TaskId computed = workers[w]->work_after(
        static_cast<double>(map.line_cost(i)) *
                cfg.host.seconds_per_mandel_iter +
            ovh,
        emitted);
    sink_tasks[static_cast<std::size_t>(i)] =
        sink.work_after(show_cost(cfg.host, dim, 1) + ovh, computed);
  }

  RunResult out;
  out.label = std::string(cpu_model_name(model)) + " cpu";
  out.modeled_seconds = sink.finish_time();
  out.checksum = image_checksum(image);
  if (!cfg.trace_path.empty()) (void)machine->dump_chrome_trace(cfg.trace_path);
  return out;
}

namespace {

/// Ensures `space` owns a device buffer of at least `lines` fractal lines,
/// reallocating through the simulated device's memory accounting. Returns
/// false when the device rejects the allocation (OUT_OF_MEMORY) — the
/// caller's AIMD sizer turns that into a multiplicative decrease.
bool reserve_space_lines(MemSpace& space, std::uint64_t& owned_lines,
                         std::uint64_t lines, int dim) {
  if (owned_lines >= lines) return true;
  if (space.dev_buf != nullptr) {
    (void)space.device->free(space.dev_buf);
    space.dev_buf = nullptr;
    owned_lines = 0;
  }
  auto buf = space.device->malloc(lines * static_cast<std::uint64_t>(dim));
  if (!buf.ok()) return false;
  space.dev_buf = static_cast<std::uint8_t*>(buf.value());
  owned_lines = lines;
  return true;
}

/// Least-loaded memory space: earliest modeled completion of the in-flight
/// d2h (an idle space scores 0, so every space gets primed first). Strict <
/// keeps ties on the lowest index for determinism.
std::size_t least_loaded_space(const Machine& machine,
                               const std::vector<MemSpace>& spaces) {
  std::size_t best = 0;
  double best_t = spaces[0].last_d2h.valid()
                      ? machine.finish_time(spaces[0].last_d2h.task)
                      : 0.0;
  for (std::size_t s = 1; s < spaces.size(); ++s) {
    double t = spaces[s].last_d2h.valid()
                   ? machine.finish_time(spaces[s].last_d2h.task)
                   : 0.0;
    if (t < best_t) {
      best = s;
      best_t = t;
    }
  }
  return best;
}

sched::AimdBatchSizer make_line_sizer(int dim) {
  sched::AimdConfig scfg;
  scfg.min_size = 1;
  scfg.max_size = static_cast<std::uint64_t>(dim);
  scfg.initial = 1;
  scfg.add_step = 1;
  return sched::AimdBatchSizer(scfg);
}

/// The batched single-thread loop under SchedMode::kAdaptive: spaces are
/// chosen least-loaded instead of round-robin, and the batch size ramps via
/// AIMD (slow-start doubling while the measured per-line cost — kernel busy
/// time plus amortized enqueue overhead — keeps improving; a device memory
/// rejection halves it). Returns the converged batch size in lines.
std::uint64_t run_batched_adaptive(const IterationMap& map,
                                   const ModeledConfig& cfg, GpuApi api,
                                   Machine& machine, ModeledHost& host,
                                   std::vector<std::uint8_t>& image) {
  const int dim = map.params().dim;
  const double ovh = enqueue_overhead(cfg.host, api);
  const int nbuf = std::max(1, cfg.buffers_per_gpu);

  std::vector<MemSpace> spaces;
  for (int d = 0; d < cfg.devices; ++d) {
    Device& dev = machine.device(d);
    for (int b = 0; b < nbuf; ++b) {
      MemSpace space;
      space.device = &dev;
      space.stream = b == 0 ? dev.default_stream() : dev.create_stream();
      spaces.push_back(space);
    }
  }
  std::vector<std::uint64_t> owned_lines(spaces.size(), 0);

  sched::AimdBatchSizer sizer = make_line_sizer(dim);
  const bool overlap_show = nbuf > 1 || cfg.devices > 1;
  int first = 0;
  while (first < dim) {
    std::size_t s = least_loaded_space(machine, spaces);
    MemSpace& space = spaces[s];

    std::uint64_t want = 0;
    for (;;) {
      want = std::min<std::uint64_t>(sizer.current(),
                                     static_cast<std::uint64_t>(dim - first));
      if (reserve_space_lines(space, owned_lines[s], want, dim)) break;
      sizer.on_reject();
    }
    const int count = static_cast<int>(want);

    if (space.last_d2h.valid()) host.wait(space.last_d2h.task);
    int to_show_later = 0;
    if (space.last_d2h.valid()) {
      if (overlap_show) {
        to_show_later = space.pending_lines;
      } else {
        host.work(show_cost(cfg.host, dim, space.pending_lines));
      }
    }
    des::TaskId enq = host.work(2 * ovh);
    perfmodel::stream_wait_host(*space.device, space.stream, enq);
    const double busy0 = space.device->compute_busy_seconds();
    space.last_d2h = launch_batch(map, space, first, count, image);
    const double busy1 = space.device->compute_busy_seconds();
    space.pending_first_line = first;
    space.pending_lines = count;
    if (to_show_later > 0) host.work(show_cost(cfg.host, dim, to_show_later));

    // Per-line cost: kernel busy time plus the amortized enqueue overhead.
    // Only a full-size batch is a valid observation; the image-edge
    // remainder would fake a cost spike.
    if (want == sizer.current()) {
      sizer.on_success((busy1 - busy0 + 2 * ovh) / count);
    }
    first += count;
  }
  for (MemSpace& space : spaces) {
    if (space.last_d2h.valid()) {
      host.wait(space.last_d2h.task);
      host.work(show_cost(cfg.host, dim, space.pending_lines));
    }
  }
  return sizer.current();
}

}  // namespace

RunResult run_gpu_single_thread(const IterationMap& map,
                                const ModeledConfig& cfg, GpuApi api,
                                GpuMode mode) {
  const int dim = map.params().dim;
  const double ovh = enqueue_overhead(cfg.host, api);
  auto machine = Machine::Create(cfg.devices, cfg.device_spec);
  apply_device_knobs(*machine, cfg);
  if (!cfg.trace_path.empty()) machine->set_trace_recording(true);
  ModeledHost host(machine.get(), "driver");
  std::vector<std::uint8_t> image(static_cast<std::size_t>(dim) * dim);

  RunResult out;

  if (mode == GpuMode::kPerLine1D || mode == GpuMode::kPerLine2D) {
    // One kernel + one copy + one show per line, all serialized on the
    // default stream of device 0 (the paper's naive port uses one GPU).
    Device& dev = machine->device(0);
    auto buf = dev.malloc(static_cast<std::uint64_t>(dim));
    assert(buf.ok());
    auto* dev_row = static_cast<std::uint8_t*>(buf.value());
    for (int i = 0; i < dim; ++i) {
      des::TaskId enq = host.work(2 * ovh);
      perfmodel::stream_wait_host(dev, dev.default_stream(), enq);
      Result<OpHandle> launched = InvalidArgument("unset");
      if (mode == GpuMode::kPerLine1D) {
        launched = dev.launch(
            Dim3{static_cast<std::uint32_t>((dim + 255) / 256), 1, 1},
            Dim3{256, 1, 1}, {}, dev.default_stream(),
            [&map, dev_row, i, dim](const ThreadCtx& ctx) -> std::uint64_t {
              std::uint64_t j = ctx.global_x();
              if (j < static_cast<std::uint64_t>(dim)) {
                dev_row[j] = map.color(i, static_cast<int>(j));
                return map.lane_cost(i, static_cast<int>(j));
              }
              return 1;
            });
      } else {
        // "2D of threads and blocks" (the paper does not give its exact
        // geometry): a 16x16 block whose FASTEST-varying thread dimension
        // strides across columns (j = base + tx*16 + ty) — the classic
        // pitfall when switching to 2D indexing. Each warp then samples
        // columns spread across a 256-wide tile instead of 32 adjacent
        // ones, so nearly every warp contains a slow (deep-iteration)
        // lane and pays its cost: SIMT divergence destroys the coherence
        // the 1D row mapping gets for free, reproducing the reported ~2x
        // degradation.
        launched = dev.launch(
            Dim3{static_cast<std::uint32_t>((dim + 255) / 256), 1, 1},
            Dim3{16, 16, 1}, {}, dev.default_stream(),
            [&map, dev_row, i, dim](const ThreadCtx& ctx) -> std::uint64_t {
              std::uint64_t j =
                  static_cast<std::uint64_t>(ctx.block_idx.x) * 256 +
                  static_cast<std::uint64_t>(ctx.thread_idx.x) * 16 +
                  ctx.thread_idx.y;
              if (j >= static_cast<std::uint64_t>(dim)) return 1;
              dev_row[j] = map.color(i, static_cast<int>(j));
              return map.lane_cost(i, static_cast<int>(j));
            });
      }
      assert(launched.ok());
      auto copied = dev.memcpy_d2h(
          image.data() + static_cast<std::size_t>(i) * dim, dev_row,
          static_cast<std::uint64_t>(dim), dev.default_stream(),
          gpusim::HostMem::kPinned);
      assert(copied.ok());
      host.wait(copied.value().task);
      host.work(show_cost(cfg.host, dim, 1));
    }
    (void)dev.free(buf.value());
  } else if (cfg.sched == sched::SchedMode::kAdaptive) {
    out.adaptive_batch_lines =
        run_batched_adaptive(map, cfg, api, *machine, host, image);
  } else {
    // Batched mode with cfg.buffers_per_gpu memory spaces per device,
    // assigned round-robin across devices then buffers (§IV-A).
    const int batch = std::max(1, cfg.batch_lines);
    const int nbuf = std::max(1, cfg.buffers_per_gpu);
    std::vector<MemSpace> spaces;
    for (int d = 0; d < cfg.devices; ++d) {
      Device& dev = machine->device(d);
      for (int b = 0; b < nbuf; ++b) {
        MemSpace space;
        space.device = &dev;
        space.stream = b == 0 ? dev.default_stream() : dev.create_stream();
        auto buf = dev.malloc(static_cast<std::uint64_t>(batch) * dim);
        assert(buf.ok());
        space.dev_buf = static_cast<std::uint8_t*>(buf.value());
        spaces.push_back(space);
      }
    }

    const int nbatches = (dim + batch - 1) / batch;
    const bool overlap_show = nbuf > 1 || cfg.devices > 1;
    for (int b = 0; b < nbatches; ++b) {
      // Paper's round-robin: batch -> device, then buffer within device.
      int d = b % cfg.devices;
      int buf = (b / cfg.devices) % nbuf;
      MemSpace& space = spaces[static_cast<std::size_t>(d * nbuf + buf)];

      // Reusing a space requires its previous transfer to have landed.
      // With multiple memory spaces the host issues the next batch BEFORE
      // displaying the previous one (that is what the extra space buys:
      // "one for copying data and another to perform computations"); the
      // single-space version runs the paper's synchronous loop.
      if (space.last_d2h.valid()) host.wait(space.last_d2h.task);
      int shown_pending = 0;
      if (!overlap_show && space.last_d2h.valid()) {
        host.work(show_cost(cfg.host, dim, space.pending_lines));
        shown_pending = space.pending_lines;
        (void)shown_pending;
      }
      int to_show_later =
          overlap_show && space.last_d2h.valid() ? space.pending_lines : 0;
      des::TaskId enq = host.work(2 * ovh);
      perfmodel::stream_wait_host(*space.device, space.stream, enq);
      int first = b * batch;
      int count = std::min(batch, dim - first);
      space.last_d2h = launch_batch(map, space, first, count, image);
      space.pending_first_line = first;
      space.pending_lines = count;
      if (to_show_later > 0) {
        host.work(show_cost(cfg.host, dim, to_show_later));
      }
    }
    // Drain: wait and show the final batch of every space.
    for (MemSpace& space : spaces) {
      if (space.last_d2h.valid()) {
        host.wait(space.last_d2h.task);
        host.work(show_cost(cfg.host, dim, space.pending_lines));
      }
    }
  }

  out.label = std::string(gpu_api_name(api));
  switch (mode) {
    case GpuMode::kPerLine1D: out.label += " per-line"; break;
    case GpuMode::kPerLine2D: out.label += " 2d"; break;
    case GpuMode::kBatched:
      if (cfg.sched == sched::SchedMode::kAdaptive) {
        out.label += " adaptive";
      } else {
        out.label += " batch" + std::to_string(cfg.batch_lines);
      }
      if (cfg.buffers_per_gpu > 1) {
        out.label += " x" + std::to_string(cfg.buffers_per_gpu) + "buf";
      }
      if (cfg.devices > 1) {
        out.label += " " + std::to_string(cfg.devices) + "gpu";
      }
      break;
  }
  out.modeled_seconds = std::max(host.finish_time(), machine->makespan());
  out.checksum = image_checksum(image);
  fill_device_stats(*machine, out);
  if (!cfg.trace_path.empty()) (void)machine->dump_chrome_trace(cfg.trace_path);
  return out;
}

namespace {

/// run_combined under SchedMode::kAdaptive: workers still arrive round-robin
/// (the farm emitter), but each batch goes to the globally least-loaded
/// device — the modeled completion time of the last batch enqueued on it —
/// and the worker uses its own memory space there. Per-worker selection
/// would be wrong here: a worker's spaces all start idle, so every worker's
/// first batch would pile onto device 0 while device 1 sat dark. Batch size
/// is shared across workers and ramps with the same AIMD rule as the
/// single-thread path.
RunResult run_combined_adaptive(const IterationMap& map,
                                const ModeledConfig& cfg, CpuModel model,
                                GpuApi api) {
  const int dim = map.params().dim;
  const double movh = item_overhead(cfg.host, model);
  const double govh = enqueue_overhead(cfg.host, api);
  const int nworkers = std::max(1, cfg.combined_workers);

  auto machine = Machine::Create(cfg.devices, cfg.device_spec);
  apply_device_knobs(*machine, cfg);
  if (!cfg.trace_path.empty()) machine->set_trace_recording(true);
  ModeledHost source(machine.get(), "source");
  ModeledHost collector(machine.get(), "collector");
  std::vector<std::unique_ptr<ModeledHost>> workers;
  workers.reserve(static_cast<std::size_t>(nworkers));
  for (int w = 0; w < nworkers; ++w) {
    workers.push_back(std::make_unique<ModeledHost>(
        machine.get(), "worker" + std::to_string(w)));
  }

  std::vector<std::vector<MemSpace>> spaces(
      static_cast<std::size_t>(nworkers));
  std::vector<std::vector<std::uint64_t>> owned_lines(
      static_cast<std::size_t>(nworkers));
  for (int w = 0; w < nworkers; ++w) {
    for (int d = 0; d < cfg.devices; ++d) {
      Device& dev = machine->device(d);
      MemSpace space;
      space.device = &dev;
      space.stream = dev.create_stream();
      spaces[static_cast<std::size_t>(w)].push_back(space);
      owned_lines[static_cast<std::size_t>(w)].push_back(0);
    }
  }

  std::vector<std::uint8_t> image(static_cast<std::size_t>(dim) * dim);
  std::vector<des::TaskId> collected;
  sched::AimdBatchSizer sizer = make_line_sizer(dim);
  std::vector<double> dev_avail(static_cast<std::size_t>(cfg.devices), 0.0);

  int first = 0;
  for (int b = 0; first < dim; ++b) {
    des::TaskId throttle{};
    if (model == CpuModel::kTbb &&
        static_cast<std::size_t>(b) >= cfg.tbb_tokens) {
      throttle = collected[static_cast<std::size_t>(b) - cfg.tbb_tokens];
    }
    des::TaskId emitted = source.work_after(movh, throttle);

    int w = b % nworkers;  // farm round-robin
    auto& wspaces = spaces[static_cast<std::size_t>(w)];
    std::size_t d = 0;
    for (std::size_t k = 1; k < dev_avail.size(); ++k) {
      if (dev_avail[k] < dev_avail[d]) d = k;
    }
    MemSpace& space = wspaces[d];
    std::uint64_t& owned = owned_lines[static_cast<std::size_t>(w)][d];
    ModeledHost& worker = *workers[static_cast<std::size_t>(w)];

    std::uint64_t want = 0;
    for (;;) {
      want = std::min<std::uint64_t>(sizer.current(),
                                     static_cast<std::uint64_t>(dim - first));
      if (reserve_space_lines(space, owned, want, dim)) break;
      sizer.on_reject();
    }
    const int count = static_cast<int>(want);

    if (space.last_d2h.valid()) worker.wait(space.last_d2h.task);
    des::TaskId deps[1] = {emitted};
    worker.work(movh + 2 * govh, deps);
    perfmodel::stream_wait_host(*space.device, space.stream, worker.tail());
    const double busy0 = space.device->compute_busy_seconds();
    space.last_d2h = launch_batch(map, space, first, count, image);
    const double busy1 = space.device->compute_busy_seconds();
    dev_avail[d] = machine->finish_time(space.last_d2h.task);

    collector.wait(space.last_d2h.task);
    collected.push_back(
        collector.work(show_cost(cfg.host, dim, count) + movh));

    if (want == sizer.current()) {
      sizer.on_success((busy1 - busy0 + 2 * govh) / count);
    }
    first += count;
  }

  RunResult out;
  out.label = std::string(cpu_model_name(model)) + "+" +
              std::string(gpu_api_name(api)) + " adaptive";
  if (cfg.devices > 1) out.label += " " + std::to_string(cfg.devices) + "gpu";
  out.modeled_seconds =
      std::max(collector.finish_time(), machine->makespan());
  out.checksum = image_checksum(image);
  fill_device_stats(*machine, out);
  out.adaptive_batch_lines = sizer.current();
  if (!cfg.trace_path.empty()) (void)machine->dump_chrome_trace(cfg.trace_path);
  return out;
}

}  // namespace

RunResult run_combined(const IterationMap& map, const ModeledConfig& cfg,
                       CpuModel model, GpuApi api) {
  if (cfg.sched == sched::SchedMode::kAdaptive) {
    return run_combined_adaptive(map, cfg, model, api);
  }
  const int dim = map.params().dim;
  const double movh = item_overhead(cfg.host, model);
  const double govh = enqueue_overhead(cfg.host, api);
  const int batch = std::max(1, cfg.batch_lines);
  const int nworkers = std::max(1, cfg.combined_workers);

  auto machine = Machine::Create(cfg.devices, cfg.device_spec);
  apply_device_knobs(*machine, cfg);
  if (!cfg.trace_path.empty()) machine->set_trace_recording(true);
  ModeledHost source(machine.get(), "source");
  ModeledHost collector(machine.get(), "collector");
  std::vector<std::unique_ptr<ModeledHost>> workers;
  workers.reserve(static_cast<std::size_t>(nworkers));
  for (int w = 0; w < nworkers; ++w) {
    workers.push_back(std::make_unique<ModeledHost>(
        machine.get(), "worker" + std::to_string(w)));
  }

  // Each worker owns one memory space (buffer + stream) per device — the
  // paper attaches a cudaStream/cl_command_queue to every stream item; a
  // worker has one item in flight per device at a time, so this is the
  // same concurrency.
  std::vector<std::vector<MemSpace>> spaces(
      static_cast<std::size_t>(nworkers));
  for (int w = 0; w < nworkers; ++w) {
    for (int d = 0; d < cfg.devices; ++d) {
      Device& dev = machine->device(d);
      MemSpace space;
      space.device = &dev;
      space.stream = dev.create_stream();
      auto buf = dev.malloc(static_cast<std::uint64_t>(batch) * dim);
      assert(buf.ok());
      space.dev_buf = static_cast<std::uint8_t*>(buf.value());
      spaces[static_cast<std::size_t>(w)].push_back(space);
    }
  }

  std::vector<std::uint8_t> image(static_cast<std::size_t>(dim) * dim);
  const int nbatches = (dim + batch - 1) / batch;
  std::vector<des::TaskId> collected(static_cast<std::size_t>(nbatches));

  for (int b = 0; b < nbatches; ++b) {
    des::TaskId throttle{};
    if (model == CpuModel::kTbb &&
        static_cast<std::size_t>(b) >= cfg.tbb_tokens) {
      throttle = collected[static_cast<std::size_t>(b) - cfg.tbb_tokens];
    }
    des::TaskId emitted = source.work_after(movh, throttle);

    int w = b % nworkers;  // farm round-robin
    int d = b % cfg.devices;
    MemSpace& space = spaces[static_cast<std::size_t>(w)]
                            [static_cast<std::size_t>(d)];
    ModeledHost& worker = *workers[static_cast<std::size_t>(w)];

    // The worker must not reuse its buffer before the previous transfer
    // finished (the collector synchronizes, but the buffer belongs to the
    // worker's space).
    if (space.last_d2h.valid()) worker.wait(space.last_d2h.task);
    des::TaskId deps[1] = {emitted};
    worker.work(movh + 2 * govh, deps);
    perfmodel::stream_wait_host(*space.device, space.stream, worker.tail());
    int first = b * batch;
    int count = std::min(batch, dim - first);
    space.last_d2h = launch_batch(map, space, first, count, image);

    // Collector: cudaStreamSynchronize / clWaitForEvents, then show.
    collector.wait(space.last_d2h.task);
    collected[static_cast<std::size_t>(b)] =
        collector.work(show_cost(cfg.host, dim, count) + movh);
  }

  RunResult out;
  out.label = std::string(cpu_model_name(model)) + "+" +
              std::string(gpu_api_name(api));
  if (cfg.devices > 1) out.label += " " + std::to_string(cfg.devices) + "gpu";
  out.modeled_seconds =
      std::max(collector.finish_time(), machine->makespan());
  out.checksum = image_checksum(image);
  fill_device_stats(*machine, out);
  if (!cfg.trace_path.empty()) (void)machine->dump_chrome_trace(cfg.trace_path);
  return out;
}

}  // namespace hs::mandel
