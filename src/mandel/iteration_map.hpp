// Precomputed per-pixel escape-iteration map.
//
// Every Mandelbrot variant (sequential, CPU pipelines, all GPU modes) does
// the same per-pixel math; what differs — and what Fig. 1/Fig. 4 measure —
// is *how the work is scheduled*. Computing the escape counts once lets the
// figure benches run every variant at full paper scale (dim=2000,
// niter=200000) in seconds: each variant's kernel body reads k from the
// map, produces the identical pixel, and charges the identical cost (k+1
// loop iterations) to the performance model. The map itself is computed
// with the real kernels::mandel_iterations math (and disk-cached, since
// paper scale is ~1.3e11 iterations).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "kernels/mandel.hpp"

namespace hs::mandel {

using kernels::MandelParams;

class IterationMap {
 public:
  /// Computes the full map with the real per-pixel math.
  static IterationMap compute(const MandelParams& params);

  /// Loads a cached map for exactly these params from `cache_path`, or
  /// computes and caches it. Cache format is validated (header + params);
  /// a mismatched or corrupt file is recomputed, not trusted.
  static Result<IterationMap> load_or_compute(const std::string& cache_path,
                                              const MandelParams& params);

  [[nodiscard]] const MandelParams& params() const { return params_; }

  [[nodiscard]] std::int32_t iters(int i, int j) const {
    return iters_[static_cast<std::size_t>(i) *
                      static_cast<std::size_t>(params_.dim) +
                  static_cast<std::size_t>(j)];
  }

  /// SIMT lane cost of pixel (i, j): iterations executed plus loop setup.
  [[nodiscard]] std::uint64_t lane_cost(int i, int j) const {
    return static_cast<std::uint64_t>(iters(i, j)) + 1;
  }

  [[nodiscard]] std::uint8_t color(int i, int j) const {
    return kernels::mandel_color(iters(i, j), params_.niter);
  }

  /// Total CPU cost (iterations) of one line.
  [[nodiscard]] std::uint64_t line_cost(int i) const { return line_cost_[i]; }
  [[nodiscard]] std::uint64_t total_cost() const { return total_cost_; }

  /// Renders one line of pixels.
  void render_line(int i, std::span<std::uint8_t> row) const;

  Status save(const std::string& path) const;
  static Result<IterationMap> load(const std::string& path,
                                   const MandelParams& params);

 private:
  IterationMap() = default;
  void finalize_costs();

  MandelParams params_;
  std::vector<std::int32_t> iters_;
  std::vector<std::uint64_t> line_cost_;
  std::uint64_t total_cost_ = 0;
};

/// FNV-1a checksum of a rendered image; every variant must agree.
std::uint64_t image_checksum(std::span<const std::uint8_t> image);

/// Writes a binary PGM (grayscale) image.
Status write_pgm(const std::string& path,
                 std::span<const std::uint8_t> image, int width, int height);

}  // namespace hs::mandel
