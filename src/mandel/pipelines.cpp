#include "mandel/pipelines.hpp"

#include <chrono>
#include <cstring>
#include <optional>

#include "cudax/cudax.hpp"
#include "cudax/pinned_pool.hpp"
#include "flow/adapters.hpp"
#include "flow/pipeline.hpp"
#include "oclx/oclx.hpp"
#include "serve/backoff.hpp"
#include "spar/spar.hpp"
#include "taskx/pipeline.hpp"
#include "taskx/pool.hpp"
#include "telemetry/span_recorder.hpp"

namespace hs::mandel {

namespace {

/// One stream item: a rendered fractal line.
struct Line {
  int index = 0;
  std::vector<std::uint8_t> pixels;
};

std::vector<std::uint8_t> make_image(int dim) {
  return std::vector<std::uint8_t>(static_cast<std::size_t>(dim) *
                                   static_cast<std::size_t>(dim));
}

void store_line(std::vector<std::uint8_t>& image, int dim, const Line& line) {
  std::copy(line.pixels.begin(), line.pixels.end(),
            image.begin() + static_cast<std::size_t>(line.index) * dim);
}

}  // namespace

std::vector<std::uint8_t> render_sequential(const MandelParams& params) {
  auto image = make_image(params.dim);
  for (int i = 0; i < params.dim; ++i) {
    kernels::mandel_line(
        params, i,
        std::span<std::uint8_t>(
            image.data() + static_cast<std::size_t>(i) * params.dim,
            static_cast<std::size_t>(params.dim)));
  }
  return image;
}

Result<std::vector<std::uint8_t>> render_flow(const MandelParams& params,
                                              int workers) {
  auto image = make_image(params.dim);
  flow::Pipeline pipe;
  pipe.add_stage(flow::make_source<Line>(
                     [i = 0, &params]() mutable -> std::optional<Line> {
                       if (i >= params.dim) return std::nullopt;
                       return Line{i++, {}};
                     }),
                 "source");
  pipe.add_farm(
      [&params] {
        return flow::make_stage<Line, Line>([&params](Line line) {
          line.pixels.resize(static_cast<std::size_t>(params.dim));
          kernels::mandel_line(params, line.index, line.pixels);
          return line;
        });
      },
      flow::FarmOptions{.replicas = workers, .ordered = true}, "compute");
  pipe.add_stage(flow::make_sink<Line>([&image, &params](Line line) {
                   store_line(image, params.dim, line);
                 }),
                 "show");
  HS_RETURN_IF_ERROR(pipe.run_and_wait());
  return image;
}

Result<std::vector<std::uint8_t>> render_taskx(const MandelParams& params,
                                               int workers,
                                               std::size_t max_tokens) {
  auto image = make_image(params.dim);
  taskx::ThreadPool pool(static_cast<unsigned>(workers));
  taskx::Pipeline pipe([i = 0, &params]() mutable
                           -> std::optional<taskx::Item> {
    if (i >= params.dim) return std::nullopt;
    return taskx::Item::of<Line>(Line{i++, {}});
  });
  pipe.add_filter(
      taskx::FilterMode::kParallel,
      [&params](taskx::Item item) {
        Line line = item.take<Line>();
        line.pixels.resize(static_cast<std::size_t>(params.dim));
        kernels::mandel_line(params, line.index, line.pixels);
        return taskx::Item::of<Line>(std::move(line));
      },
      "compute");
  pipe.add_filter(
      taskx::FilterMode::kSerialInOrder,
      [&image, &params](taskx::Item item) {
        store_line(image, params.dim, item.as<Line>());
        return item;
      },
      "store");
  HS_RETURN_IF_ERROR(pipe.run(pool, max_tokens));
  return image;
}

Result<std::vector<std::uint8_t>> render_spar(const MandelParams& params,
                                              int workers) {
  auto image = make_image(params.dim);
  spar::ToStream region("mandel");
  region.source<Line>([i = 0, &params]() mutable -> std::optional<Line> {
    if (i >= params.dim) return std::nullopt;
    return Line{i++, {}};
  });
  region.stage<Line, Line>(spar::Replicate(workers), [&params](Line line) {
    line.pixels.resize(static_cast<std::size_t>(params.dim));
    kernels::mandel_line(params, line.index, line.pixels);
    return line;
  });
  region.last_stage<Line>([&image, &params](Line line) {
    store_line(image, params.dim, line);
  });
  HS_RETURN_IF_ERROR(region.run());
  return image;
}

namespace {

/// Maps a shim error to the Status the retry layer reasons about.
Status cuda_status(cudax::cudaError e, const char* what) {
  if (e == cudax::cudaError::cudaSuccess) return OkStatus();
  return Status(cudax::error_code_of(e),
                std::string(what) + ": " + cudax::last_error_message());
}

/// SPar middle-stage worker offloading to the CUDA shim. Owns a per-thread
/// stream on a round-robin-chosen device; cudaSetDevice is called from
/// on_init because its effect is thread-local (§IV-A).
///
/// Degradation ladder per item: retry transient errors on the current
/// device, migrate to a surviving device when the current one is lost, and
/// compute the line on the CPU when no device remains usable. Every rung
/// produces the same bytes, so the image is bit-exact under any fault
/// sequence.
class CudaLineWorker final : public flow::Node {
 public:
  CudaLineWorker(const MandelParams& params, gpusim::Machine* machine,
                 RetryStats* stats, RetryPolicy policy,
                 sched::DeviceLoadTracker* tracker = nullptr)
      : params_(params),
        machine_(machine),
        stats_(stats),
        policy_(policy),
        tracker_(tracker) {}

  void on_init(int replica_id) override {
    replica_ = replica_id;
    // Per-replica jitter stream: decorrelated retry delays so replicas that
    // hit the same fault burst do not re-collide in lockstep.
    backoff_ = serve::BackoffSequence(
        serve::BackoffPolicy{policy_.base_delay, policy_.max_delay},
        0x6d616e64656cull + static_cast<std::uint64_t>(replica_id));
    // Adaptive mode defers device choice to the tracker on the first item;
    // static mode keeps the paper's per-replica round-robin binding.
    if (tracker_ == nullptr) (void)try_setup(replica_id);
  }

  flow::SvcResult svc(flow::Item in) override {
    Line line = in.take<Line>();
    line.pixels.resize(static_cast<std::size_t>(params_.dim));
    if (Status s = render_line(line); !s.ok()) {
      // Final rung: the bit-exact CPU kernel.
      kernels::mandel_line(params_, line.index, line.pixels);
      if (stats_ != nullptr) {
        stats_->cpu_fallbacks.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return flow::SvcResult::Out(flow::Item::of<Line>(std::move(line)));
  }

  void on_end() override {
    if (gpu_ready_ && dev_row_ != nullptr) {
      (void)cudax::cudaSetDevice(device_);
      (void)cudax::cudaFree(dev_row_);
      dev_row_ = nullptr;
    }
    if (stream_device_ >= 0) {
      (void)cudax::cudaStreamDestroy(stream_);
      stream_device_ = -1;
    }
    staging_.release();
  }

 private:
  /// Retry delay hook: decorrelated jitter, restarted per operation.
  auto jitter_delay() {
    return [this](int retry_index) {
      if (retry_index == 0) backoff_.reset();
      std::this_thread::sleep_for(backoff_.next());
    };
  }

  Status render_line(Line& line) {
    if (tracker_ != nullptr) return render_line_adaptive(line);
    if (!gpu_ready_ && !try_setup(device_ >= 0 ? device_ : replica_)) {
      return Unavailable("no usable CUDA device");
    }
    while (true) {
      Status s = retry_status(policy_, stats_, "mandel.line",
                              [&] { return gpu_line_once(line); },
                              jitter_delay());
      if (s.ok() || s.code() != ErrorCode::kUnavailable) return s;
      // The device died under us: drop it and migrate. pick_surviving_device
      // skips lost devices, so this loop visits each device at most once.
      if (stats_ != nullptr) {
        stats_->device_losses.fetch_add(1, std::memory_order_relaxed);
      }
      gpu_ready_ = false;
      dev_row_ = nullptr;  // allocation is gone with the device
      if (!try_setup(device_ + 1)) return s;
      if (stats_ != nullptr) {
        stats_->device_switches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  /// Adaptive routing: ask the tracker for the least-loaded device (sticky
  /// to the current binding unless another device is idle or ours is gone),
  /// feed its EWMA with the observed service time, and exclude lost devices
  /// so queued lines drain through the survivors.
  Status render_line_adaptive(Line& line) {
    const int want = tracker_->acquire_preferring(device_);
    if (want < 0) return Unavailable("all CUDA devices excluded");
    if (!gpu_ready_ || want != device_) {
      if (!try_setup(want)) {
        tracker_->abandon(want);
        return Unavailable("no usable CUDA device");
      }
    }
    int charged = want;  // device carrying the in-flight unit
    if (device_ != charged) {
      tracker_->transfer(charged, device_);
      charged = device_;
    }
    const auto t0 = std::chrono::steady_clock::now();
    while (true) {
      Status s = retry_status(policy_, stats_, "mandel.line",
                              [&] { return gpu_line_once(line); },
                              jitter_delay());
      if (s.ok()) {
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        tracker_->release(charged, dt.count());
        return s;
      }
      if (s.code() != ErrorCode::kUnavailable) {
        tracker_->abandon(charged);
        return s;
      }
      if (stats_ != nullptr) {
        stats_->device_losses.fetch_add(1, std::memory_order_relaxed);
      }
      tracker_->exclude(device_);
      gpu_ready_ = false;
      dev_row_ = nullptr;  // allocation is gone with the device
      const int next = tracker_->acquire_preferring(-1);
      if (next >= 0) tracker_->abandon(next);  // only a routing hint
      if (next < 0 || !try_setup(next)) {
        tracker_->abandon(charged);
        return s;
      }
      tracker_->transfer(charged, device_);
      charged = device_;
      if (stats_ != nullptr) {
        stats_->device_switches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  /// One GPU pass over the line: launch, D2H copy, synchronize. Idempotent
  /// (the kernel rewrites the whole row), so safe to re-run on retry.
  Status gpu_line_once(Line& line) {
    telemetry::SpanRecorder* tracer = telemetry::tracer();
    const MandelParams p = params_;
    const int i = line.index;
    auto* dev_row = static_cast<std::uint8_t*>(dev_row_);
    Status s;
    {
      telemetry::ScopedSpan span(tracer, "mandel.kernel");
      s = cuda_status(
          cudax::launch_kernel(
              cudax::Dim3{static_cast<std::uint32_t>((p.dim + 255) / 256), 1,
                          1},
              cudax::Dim3{256, 1, 1}, stream_,
              [p, i, dev_row](const cudax::ThreadCtx& ctx) -> std::uint64_t {
                std::uint64_t j = ctx.global_x();
                if (j >= static_cast<std::uint64_t>(p.dim)) return 1;
                int k = kernels::mandel_iterations(p, i, static_cast<int>(j));
                dev_row[j] = kernels::mandel_color(k, p.niter);
                return static_cast<std::uint64_t>(k) + 1;
              }),
          "kernel launch failed");
    }
    if (!s.ok()) return s;
    // D2H lands in a pinned staging row from the shared pool (fast
    // simulated transfer, no per-line pinned allocation); when pinned
    // memory is unavailable the copy targets the pageable vector directly.
    const std::size_t row_bytes = static_cast<std::size_t>(p.dim);
    if (staging_.capacity() < row_bytes) {
      staging_ = cudax::PinnedPool::Default().acquire(row_bytes);
    }
    std::uint8_t* dst =
        staging_.valid() ? staging_.data() : line.pixels.data();
    {
      telemetry::ScopedSpan span(tracer, "mandel.d2h");
      s = cuda_status(
          cudax::cudaMemcpyAsync(dst, dev_row_, row_bytes,
                                 cudax::cudaMemcpyKind::cudaMemcpyDeviceToHost,
                                 stream_),
          "memcpy failed");
    }
    if (!s.ok()) return s;
    // The real implementation forwards the item with its stream and lets
    // the last stage synchronize; functionally the simulated copy has
    // already landed, and the virtual completion is the stream's tail.
    {
      telemetry::ScopedSpan span(tracer, "mandel.sync");
      s = cuda_status(cudax::cudaStreamSynchronize(stream_),
                      "stream synchronize failed");
    }
    if (!s.ok()) return s;
    if (staging_.valid()) {
      std::memcpy(line.pixels.data(), staging_.data(), row_bytes);
    }
    return OkStatus();
  }

  /// Binds this thread to the first surviving device at or after `hint` and
  /// allocates the row buffer there. A device that dies during setup is
  /// skipped; returns false when no device can be set up (CPU mode).
  bool try_setup(int hint) {
    int start = hint < 0 ? 0 : hint;
    while (true) {
      const int d = gpusim::pick_surviving_device(*machine_, start);
      if (d < 0) return false;
      Status s = retry_status(policy_, stats_, "mandel.setup",
                              [&] { return setup_on(d); }, jitter_delay());
      if (s.ok()) {
        device_ = d;
        gpu_ready_ = true;
        return true;
      }
      if (s.code() == ErrorCode::kUnavailable) {
        start = d + 1;  // that device is lost now; try the next survivor
        continue;
      }
      return false;  // persistent non-loss failure: degrade to CPU
    }
  }

  Status setup_on(int d) {
    Status s =
        cuda_status(cudax::cudaSetDevice(d), "set device failed");
    if (!s.ok()) return s;
    // One stream per device binding: retried setups reuse the stream they
    // already created, and a migration destroys the old device's stream
    // (best effort — resolve fails harmlessly when that device is lost)
    // instead of leaking one simulated stream per attempt.
    if (stream_device_ != d) {
      if (stream_device_ >= 0) (void)cudax::cudaStreamDestroy(stream_);
      stream_device_ = -1;
      s = cuda_status(cudax::cudaStreamCreate(&stream_),
                      "stream create failed");
      if (!s.ok()) return s;
      stream_device_ = d;
    }
    return cuda_status(
        cudax::cudaMalloc(&dev_row_, static_cast<std::size_t>(params_.dim)),
        "row alloc failed");
  }

  MandelParams params_;
  gpusim::Machine* machine_;
  RetryStats* stats_;
  RetryPolicy policy_;
  sched::DeviceLoadTracker* tracker_ = nullptr;
  serve::BackoffSequence backoff_;
  int replica_ = 0;
  int device_ = -1;
  int stream_device_ = -1;  ///< device the live stream_ was created on
  cudax::cudaStream_t stream_{};
  void* dev_row_ = nullptr;
  bool gpu_ready_ = false;
  cudax::PinnedPool::Handle staging_;
};

}  // namespace

Result<std::vector<std::uint8_t>> render_spar_cuda(
    const MandelParams& params, int workers, gpusim::Machine& machine,
    RetryStats* stats, const RetryPolicy& policy,
    sched::DeviceLoadTracker* tracker, flow::FailureReport* failures) {
  if (machine.device_count() == 0) {
    return InvalidArgument("machine has no devices");
  }
  auto image = make_image(params.dim);
  spar::ToStream region("mandel-cuda");
  region.source<Line>([i = 0, &params]() mutable -> std::optional<Line> {
    if (i >= params.dim) return std::nullopt;
    return Line{i++, {}};
  });
  region.stage_nodes(spar::Replicate(workers), [&params, &machine, stats,
                                                policy, tracker] {
    return std::make_unique<CudaLineWorker>(params, &machine, stats, policy,
                                            tracker);
  });
  region.last_stage<Line>([&image, &params](Line line) {
    store_line(image, params.dim, line);
  });
  Status run_status = region.run();
  if (failures != nullptr) *failures = region.failure_report();
  HS_RETURN_IF_ERROR(run_status);
  return image;
}

Result<std::vector<std::uint8_t>> render_opencl_batched(
    const MandelParams& params, gpusim::Machine& machine, int batch_lines) {
  auto platforms = oclx::Platform::get(&machine);
  if (platforms.empty()) return NotFound("no OpenCL platform");
  auto devices = platforms[0].devices();
  auto ctx = oclx::Context::create(devices);
  if (!ctx.ok()) return ctx.status();
  auto queue = oclx::CommandQueue::create(ctx.value(), devices[0]);
  if (!queue.ok()) return queue.status();

  const int dim = params.dim;
  const int batch = std::max(1, batch_lines);
  auto buffer = oclx::Buffer::create(
      ctx.value(), devices[0],
      static_cast<std::size_t>(batch) * static_cast<std::size_t>(dim));
  if (!buffer.ok()) return buffer.status();

  auto image = make_image(dim);
  auto* dev_buf = static_cast<std::uint8_t*>(buffer.value().data());
  for (int first = 0; first < dim; first += batch) {
    const int count = std::min(batch, dim - first);
    const MandelParams p = params;
    // Listing 2 kernel, OpenCL form: global id -> (i_batch, j).
    oclx::Kernel kernel = oclx::Kernel::create(
        "mandel_kernel",
        [p, dev_buf, first, count, dim](const oclx::ThreadCtx& ctx2)
            -> std::uint64_t {
          std::uint64_t tid = ctx2.global_x();
          std::uint64_t i_batch = tid / static_cast<std::uint64_t>(dim);
          std::uint64_t j = tid - i_batch * static_cast<std::uint64_t>(dim);
          if (i_batch >= static_cast<std::uint64_t>(count) ||
              j >= static_cast<std::uint64_t>(dim)) {
            return 1;
          }
          int i = first + static_cast<int>(i_batch);
          int k = kernels::mandel_iterations(p, i, static_cast<int>(j));
          dev_buf[i_batch * static_cast<std::uint64_t>(dim) + j] =
              kernels::mandel_color(k, p.niter);
          return static_cast<std::uint64_t>(k) + 1;
        });
    std::uint64_t total =
        static_cast<std::uint64_t>(count) * static_cast<std::uint64_t>(dim);
    oclx::Event done;
    if (queue.value().enqueue_ndrange(
            kernel,
            oclx::Dim3{static_cast<std::uint32_t>((total + 255) / 256 * 256),
                       1, 1},
            oclx::Dim3{256, 1, 1}, &done) != oclx::ClStatus::kSuccess) {
      return Internal("ndrange failed: " + queue.value().last_error());
    }
    oclx::Event read_done;
    if (queue.value().enqueue_read(
            buffer.value(), 0,
            image.data() + static_cast<std::size_t>(first) * dim,
            static_cast<std::size_t>(count) * dim, /*blocking=*/false,
            &read_done) != oclx::ClStatus::kSuccess) {
      return Internal("read failed: " + queue.value().last_error());
    }
    auto waited = oclx::Event::wait_for_events({done, read_done});
    if (!waited.ok()) return waited.status();
  }
  return image;
}

}  // namespace hs::mandel
