// Anchored calibration of the performance model (EXPERIMENTS.md explains
// the methodology).
//
// Three quantities are taken from the paper and used as anchors:
//   * the sequential time (400 s)           -> CPU seconds-per-iteration
//   * the best single-GPU compute time
//     (batch32 x 4 buffers, 5.4-5.6 s)      -> GPU seconds-per-warp-unit
//   * the per-line naive GPU time (129 s)   -> the SM latency-hiding depth
// plus the display cost (~3.3 s total), inferred from the 1-buffer vs
// multi-buffer gap (the overlap ladder hides host-side ShowLine work).
//
// Everything else in Figs. 1 and 4 — the 2D penalty, each overlap rung,
// multi-GPU scaling, every model combination — is *predicted* by the model
// from these anchors; none of those rows is fitted.
#pragma once

#include "mandel/iteration_map.hpp"
#include "mandel/modeled.hpp"

namespace hs::mandel {

struct PaperAnchors {
  double sequential_seconds = 400.0;
  double batched_compute_seconds = 5.3;  ///< batch32, copies/show hidden
  double per_line_seconds = 129.0;
  /// Host-side display work; bounded above by the paper's dual-GPU
  /// 2-buffer time (3.02 s, which is show-bound: compute halves to ~2.7 s
  /// while a single host thread still performs all ShowLine calls) and
  /// below by the single-buffer gap.
  double show_total_seconds = 2.4;
};

/// Sum over the Listing-2 batched kernel's warps of the max-lane cost
/// (including the partial final batch), i.e. the total warp work the
/// batched GPU versions execute. Exposed for tests.
double batched_warp_cost_total(const IterationMap& map, int batch_lines,
                               const gpusim::DeviceSpec& spec);

/// Sum over lines of the max-lane cost (the per-line kernel's critical
/// warp), the basis of the latency-hiding anchor. Exposed for tests.
double per_line_max_cost_total(const IterationMap& map);

/// Returns `base` with host and device timing constants replaced by the
/// anchored values for this map's workload.
ModeledConfig calibrate_to_paper(const IterationMap& map,
                                 const PaperAnchors& anchors = {},
                                 ModeledConfig base = {});

}  // namespace hs::mandel
