// Shared internals of the modeled Mandelbrot runners (mandel/modeled.cpp
// and the cluster generalization in cluster/modeled.cpp).
//
// Extracted so the cluster runner enqueues *exactly* the same kernel
// bodies, copy sizes and host overheads as the single-host runners — the
// 1-node cluster topology must reproduce the Fig. 1 numbers bit-for-bit,
// and sharing these bodies makes that a structural property instead of a
// hand-maintained promise. Not part of the public mandel API.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "gpusim/device.hpp"
#include "mandel/iteration_map.hpp"
#include "mandel/modeled.hpp"
#include "perfmodel/host_model.hpp"

namespace hs::mandel::detail {

/// Per-call host overhead of one GPU API enqueue. The paper found CUDA and
/// OpenCL within a few percent; OpenCL's dispatch (cl_event bookkeeping)
/// is charged slightly higher.
inline double enqueue_overhead(const perfmodel::HostProfile& host, GpuApi api) {
  return api == GpuApi::kCuda ? host.gpu_enqueue_overhead
                              : host.gpu_enqueue_overhead * 1.25;
}

inline double item_overhead(const perfmodel::HostProfile& host,
                            CpuModel model) {
  switch (model) {
    case CpuModel::kSpar: return host.spar_item_overhead;
    case CpuModel::kTbb: return host.taskx_item_overhead;
    case CpuModel::kFastFlow: return host.flow_item_overhead;
  }
  return host.flow_item_overhead;
}

inline double show_cost(const perfmodel::HostProfile& host, int dim,
                        int lines) {
  return lines * (host.show_line_base + dim * host.show_line_per_pixel);
}

/// Applies the config's ablation knobs to every device of a machine.
inline void apply_device_knobs(gpusim::Machine& machine,
                               const ModeledConfig& cfg) {
  for (int d = 0; d < machine.device_count(); ++d) {
    machine.device(d).set_divergence_model(cfg.divergence);
    machine.device(d).set_copy_compute_overlap(cfg.copy_compute_overlap);
  }
}

/// Aggregates device counters and utilization into the result.
inline void fill_device_stats(gpusim::Machine& machine, RunResult& out) {
  std::uint64_t launches = 0;
  for (int d = 0; d < machine.device_count(); ++d) {
    launches += machine.device(d).counters().kernels_launched;
  }
  out.kernel_launches = launches;
  if (machine.device_count() > 0 && machine.makespan() > 0) {
    out.gpu_compute_utilization =
        machine.device(0).compute_busy_seconds() / machine.makespan();
  }
}

/// Shared state of one GPU "memory space": a device buffer + stream + the
/// in-flight d2h transfer that must complete before the buffer is reused.
struct MemSpace {
  gpusim::Device* device = nullptr;
  gpusim::StreamId stream = 0;
  std::uint8_t* dev_buf = nullptr;
  gpusim::OpHandle last_d2h;
  int pending_first_line = -1;  ///< lines whose show-cost is still owed
  int pending_lines = 0;
};

/// Launches the Listing-2 batched kernel for lines [first, first+count) and
/// the async d2h copy into `image`. Returns the d2h op.
inline gpusim::OpHandle launch_batch(const IterationMap& map, MemSpace& space,
                                     int first, int count,
                                     std::vector<std::uint8_t>& image) {
  const int dim = map.params().dim;
  const std::uint64_t total_threads =
      static_cast<std::uint64_t>(count) * static_cast<std::uint64_t>(dim);
  gpusim::Dim3 grid{static_cast<std::uint32_t>((total_threads + 255) / 256),
                    1, 1};
  gpusim::Dim3 block{256, 1, 1};
  gpusim::KernelAttributes attrs;  // 18 registers: the paper's kernel
  std::uint8_t* dev_buf = space.dev_buf;
  auto launched = space.device->launch(
      grid, block, attrs, space.stream,
      [&map, dev_buf, first, count, dim](const gpusim::ThreadCtx& ctx)
          -> std::uint64_t {
        // Listing 2: i_batch = tid / dim; i = batch*batch_size + i_batch;
        // j = tid - i_batch*dim.
        std::uint64_t tid = ctx.global_x();
        std::uint64_t i_batch = tid / static_cast<std::uint64_t>(dim);
        std::uint64_t j = tid - i_batch * static_cast<std::uint64_t>(dim);
        std::uint64_t i = static_cast<std::uint64_t>(first) + i_batch;
        if (i_batch < static_cast<std::uint64_t>(count) &&
            j < static_cast<std::uint64_t>(dim)) {
          int ii = static_cast<int>(i);
          int jj = static_cast<int>(j);
          dev_buf[i_batch * dim + j] = map.color(ii, jj);
          return map.lane_cost(ii, jj);
        }
        return 1;  // out-of-range guard costs one trip
      });
  assert(launched.ok());
  (void)launched;
  auto copied = space.device->memcpy_d2h(
      image.data() + static_cast<std::size_t>(first) * dim, space.dev_buf,
      total_threads, space.stream, gpusim::HostMem::kPinned);
  assert(copied.ok());
  return copied.value();
}

}  // namespace hs::mandel::detail
