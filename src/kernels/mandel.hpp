// Mandelbrot-set per-pixel math shared by every variant (sequential, flow/
// taskx/spar CPU pipelines, and the simulated CUDA/OpenCL kernels), so all
// versions are bit-identical by construction — mirroring how the paper
// ports the same inner loop (Listing 1 lines 9-19 / Listing 2 lines 7-19)
// across models.
#pragma once

#include <cstdint>
#include <span>

namespace hs::kernels {

/// Parameters of the streamed fractal (Listing 1's function arguments).
/// The paper's evaluation uses dim=2000 and niter=200000; the default
/// window is the classic full-set view.
struct MandelParams {
  int dim = 2000;
  int niter = 200000;
  double init_a = -2.125;  ///< real axis origin
  double init_b = -1.5;    ///< imaginary axis origin
  double range = 3.0;

  [[nodiscard]] double step() const {
    return range / static_cast<double>(dim);
  }
};

/// Result of iterating one point: the escape iteration count (== niter for
/// interior points) — this doubles as the SIMT cost of the GPU lane.
inline int mandel_iterations(const MandelParams& p, int i, int j) {
  const double step = p.step();
  const double im = p.init_b + step * i;
  double cr;
  double a = cr = p.init_a + step * j;
  double b = im;
  int k = 0;
  for (k = 0; k < p.niter; ++k) {
    double a2 = a * a;
    double b2 = b * b;
    if ((a2 + b2) > 4.0) break;
    b = 2 * a * b + im;
    a = a2 - b2 + cr;
  }
  return k;
}

/// Pixel shade from the iteration count (Listing 1 line 19).
inline std::uint8_t mandel_color(int k, int niter) {
  return static_cast<std::uint8_t>(
      255 - (static_cast<long long>(k) * 255 / niter));
}

/// Computes one fractal line (the paper's stream item). Returns the total
/// iteration count of the line — the host-side cost the performance model
/// charges for CPU stages. `row` must have p.dim entries.
inline std::uint64_t mandel_line(const MandelParams& p, int i,
                                 std::span<std::uint8_t> row) {
  std::uint64_t total = 0;
  for (int j = 0; j < p.dim; ++j) {
    int k = mandel_iterations(p, i, j);
    total += static_cast<std::uint64_t>(k) + 1;
    row[static_cast<std::size_t>(j)] = mandel_color(k, p.niter);
  }
  return total;
}

}  // namespace hs::kernels
