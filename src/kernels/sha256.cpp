#include "kernels/sha256.hpp"

#include <cstring>

#include "common/format.hpp"

namespace hs::kernels {

namespace {

inline std::uint32_t rotr32(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

}  // namespace

void Sha256::reset() {
  h_ = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
        0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha256::process_block(const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[t * 4]) << 24) |
           (static_cast<std::uint32_t>(block[t * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[t * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[t * 4 + 3]);
  }
  for (int t = 16; t < 64; ++t) {
    std::uint32_t s0 = rotr32(w[t - 15], 7) ^ rotr32(w[t - 15], 18) ^
                       (w[t - 15] >> 3);
    std::uint32_t s1 = rotr32(w[t - 2], 17) ^ rotr32(w[t - 2], 19) ^
                       (w[t - 2] >> 10);
    w[t] = w[t - 16] + s0 + w[t - 7] + s1;
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  std::uint32_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];
  for (int t = 0; t < 64; ++t) {
    std::uint32_t s1 = rotr32(e, 6) ^ rotr32(e, 11) ^ rotr32(e, 25);
    std::uint32_t ch = (e & f) ^ ((~e) & g);
    std::uint32_t temp1 = h + s1 + ch + kK[t] + w[t];
    std::uint32_t s0 = rotr32(a, 2) ^ rotr32(a, 13) ^ rotr32(a, 22);
    std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
  h_[5] += f;
  h_[6] += g;
  h_[7] += h;
}

void Sha256::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Sha256Digest Sha256::finish() {
  std::uint64_t bit_len = total_bytes_ * 8;
  std::uint8_t pad[64] = {0x80};
  std::size_t pad_len = buffered_ < 56 ? 56 - buffered_ : 120 - buffered_;
  update(std::span<const std::uint8_t>(pad, pad_len));
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - i * 8));
  }
  update(std::span<const std::uint8_t>(len_bytes, 8));

  Sha256Digest out;
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

std::string digest_hex(const Sha256Digest& digest) {
  return to_hex(std::span<const std::uint8_t>(digest.data(), digest.size()));
}

}  // namespace hs::kernels
