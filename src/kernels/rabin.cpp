#include "kernels/rabin.hpp"

#include <cassert>

#include "common/rng.hpp"

namespace hs::kernels {

namespace {
// The rolling hash is fp = sum over window of table[byte] * MULT^(age);
// implemented incrementally as fp = fp * MULT + table[in] - table[out] *
// MULT^window. MULT is an odd constant; pop_table_ pre-multiplies by
// MULT^window so the hot loop is two table lookups, a multiply and an add.
constexpr std::uint64_t kMult = 0x9E3779B97F4A7C15ull | 1ull;
}  // namespace

Rabin::Rabin(const RabinParams& params) : params_(params) {
  assert(params_.window >= 4);
  assert(params_.min_block >= params_.window);
  assert(params_.max_block > params_.min_block);
  hs::Xoshiro256 rng(params_.seed);
  for (auto& v : push_table_) v = rng();
  std::uint64_t mult_pow = 1;
  for (std::uint32_t i = 0; i < params_.window; ++i) mult_pow *= kMult;
  for (int b = 0; b < 256; ++b) {
    pop_table_[b] = push_table_[b] * mult_pow;
  }
}

std::uint64_t Rabin::window_fingerprint(
    std::span<const std::uint8_t> window_bytes) const {
  std::uint64_t fp = 0;
  for (std::uint8_t b : window_bytes) {
    fp = fp * kMult + push_table_[b];
  }
  return fp;
}

std::vector<std::uint32_t> Rabin::chunk_boundaries(
    std::span<const std::uint8_t> data) const {
  std::vector<std::uint32_t> starts;
  if (data.empty()) return starts;
  starts.push_back(0);

  const std::uint32_t window = params_.window;
  std::uint64_t fp = 0;
  std::uint32_t block_start = 0;
  std::uint32_t win_fill = 0;  // bytes accumulated since the last fp reset
  for (std::size_t i = 0; i < data.size(); ++i) {
    fp = fp * kMult + push_table_[data[i]];
    if (win_fill >= window) {
      fp -= pop_table_[data[i - window]];
    } else {
      ++win_fill;
    }

    const std::uint32_t block_len =
        static_cast<std::uint32_t>(i) - block_start + 1;
    bool boundary = false;
    if (block_len >= params_.max_block) {
      boundary = true;
    } else if (block_len >= params_.min_block && win_fill >= window) {
      boundary = (fp & params_.mask) == params_.magic;
    }
    if (boundary && i + 1 < data.size()) {
      block_start = static_cast<std::uint32_t>(i) + 1;
      starts.push_back(block_start);
      // Restart the window at the boundary so each block's boundaries
      // depend only on its own content (dedup's behaviour): identical block
      // payloads then always produce identical sub-structure.
      fp = 0;
      win_fill = 0;
    }
  }
  return starts;
}

}  // namespace hs::kernels
