#include "kernels/rabin.hpp"

#include <cassert>

#include "common/rng.hpp"

namespace hs::kernels {

Rabin::Rabin(const RabinParams& params) : params_(params) {
  assert(params_.window >= 4);
  assert(params_.min_block >= params_.window);
  assert(params_.max_block > params_.min_block);
  hs::Xoshiro256 rng(params_.seed);
  for (auto& v : push_table_) v = rng();
  std::uint64_t mult_pow = 1;
  for (std::uint32_t i = 0; i < params_.window; ++i) mult_pow *= kMult;
  for (int b = 0; b < 256; ++b) {
    pop_table_[b] = push_table_[b] * mult_pow;
  }
}

std::uint64_t Rabin::window_fingerprint(
    std::span<const std::uint8_t> window_bytes) const {
  std::uint64_t fp = 0;
  for (std::uint8_t b : window_bytes) {
    fp = fp * kMult + push_table_[b];
  }
  return fp;
}

std::vector<std::uint32_t> Rabin::chunk_boundaries(
    std::span<const std::uint8_t> data) const {
  std::vector<std::uint32_t> starts;
  chunk_boundaries_into(data, starts);
  return starts;
}

void Rabin::chunk_boundaries_into(std::span<const std::uint8_t> data,
                                  std::vector<std::uint32_t>& starts) const {
  starts.clear();
  if (data.empty()) return;
  starts.reserve(data.size() / params_.min_block + 1);
  starts.push_back(0);

  const std::size_t n = data.size();
  const std::uint32_t window = params_.window;
  const std::uint32_t min_block = params_.min_block;
  const std::uint32_t max_block = params_.max_block;
  const std::uint64_t mask = params_.mask;
  const std::uint64_t magic = params_.magic;

  std::uint64_t fp = 0;
  std::uint32_t block_start = 0;
  std::uint32_t win_fill = 0;  // bytes accumulated since the last fp reset
  std::size_t i = 0;
  while (i < n) {
    // Blockwise fast path: once the window is full, four rolling steps are
    // four independent table-lookup pairs u_j = push[in_j] - pop[out_j]
    // chained as fp_{j+1} = fp_j * MULT + u_j. This is bit-identical to the
    // scalar update because (fp*MULT + push) - pop == fp*MULT + (push - pop)
    // in mod-2^64 arithmetic, and the guard excludes every event that would
    // break the chain mid-group (window warm-up, forced max_block boundary,
    // end of input).
    const std::uint32_t len0 = static_cast<std::uint32_t>(i) - block_start + 1;
    if (win_fill >= window && i + 4 <= n && len0 + 3 < max_block) {
      const std::uint8_t* in = data.data() + i;
      const std::uint8_t* out = in - window;
      const std::uint64_t u0 = push_table_[in[0]] - pop_table_[out[0]];
      const std::uint64_t u1 = push_table_[in[1]] - pop_table_[out[1]];
      const std::uint64_t u2 = push_table_[in[2]] - pop_table_[out[2]];
      const std::uint64_t u3 = push_table_[in[3]] - pop_table_[out[3]];
      const std::uint64_t fp1 = fp * kMult + u0;
      const std::uint64_t fp2 = fp1 * kMult + u1;
      const std::uint64_t fp3 = fp2 * kMult + u2;
      const std::uint64_t fp4 = fp3 * kMult + u3;
      const std::uint64_t fps[4] = {fp1, fp2, fp3, fp4};
      int fired = -1;
      for (int j = 0; j < 4; ++j) {
        if (len0 + static_cast<std::uint32_t>(j) >= min_block &&
            (fps[j] & mask) == magic && i + static_cast<std::size_t>(j) + 1 < n) {
          fired = j;
          break;
        }
      }
      if (fired >= 0) {
        i += static_cast<std::size_t>(fired) + 1;
        block_start = static_cast<std::uint32_t>(i);
        starts.push_back(block_start);
        fp = 0;
        win_fill = 0;
      } else {
        fp = fp4;
        i += 4;
      }
      continue;
    }

    // Scalar path: window warm-up after a reset, near-max_block blocks,
    // and the input tail.
    fp = fp * kMult + push_table_[data[i]];
    if (win_fill >= window) {
      fp -= pop_table_[data[i - window]];
    } else {
      ++win_fill;
    }

    const std::uint32_t block_len =
        static_cast<std::uint32_t>(i) - block_start + 1;
    bool boundary = false;
    if (block_len >= max_block) {
      boundary = true;
    } else if (block_len >= min_block && win_fill >= window) {
      boundary = (fp & mask) == magic;
    }
    ++i;
    if (boundary && i < n) {
      block_start = static_cast<std::uint32_t>(i);
      starts.push_back(block_start);
      // Restart the window at the boundary so each block's boundaries
      // depend only on its own content (dedup's behaviour): identical block
      // payloads then always produce identical sub-structure.
      fp = 0;
      win_fill = 0;
    }
  }
}

}  // namespace hs::kernels
