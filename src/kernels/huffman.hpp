// Canonical static Huffman codec, implemented from scratch.
//
// PARSEC's dedup compresses blocks with gzip/bzip2 — LZ matching plus an
// entropy stage. The paper swaps in plain LZSS; this codec restores the
// missing entropy stage as an *option* (DedupConfig::codec =
// kLzssHuffman): block payloads become huffman(lzss(block)), closing part
// of the ratio gap to the original PARSEC codecs while keeping the same
// pipeline structure.
//
// Format: a 256-entry table of 4-bit code lengths (0 = symbol absent,
// max length 15), then the MSB-first canonical-code bitstream. Canonical
// assignment: shorter codes first, ties by symbol value, so the table is
// the entire header.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace hs::kernels {

/// Encodes `input`. Empty input yields an empty payload (header only).
std::vector<std::uint8_t> huffman_encode(std::span<const std::uint8_t> input);

/// Decodes exactly `original_size` bytes; DATA_LOSS on malformed streams
/// (truncation, invalid code-length tables, codes outside the table).
Result<std::vector<std::uint8_t>> huffman_decode(
    std::span<const std::uint8_t> compressed, std::size_t original_size);

/// Build the (length-capped) Huffman code lengths for a frequency table —
/// exposed for tests of the length-limiting and canonical properties.
/// Returns 256 lengths in [0, 15]; zero frequency => zero length.
std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> freqs);

}  // namespace hs::kernels
