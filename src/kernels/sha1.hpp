// SHA-1 (FIPS 180-1), implemented from scratch for the Dedup hashing stage
// (the paper's stage 2 computes one SHA-1 per content block, one GPU thread
// per block). Incremental context plus one-shot helpers.
//
// SHA-1 is used here exactly as PARSEC's dedup uses it — as a content
// fingerprint for duplicate detection — not as a security primitive.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace hs::kernels {

using Sha1Digest = std::array<std::uint8_t, 20>;

/// Incremental SHA-1 context.
class Sha1 {
 public:
  Sha1() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  /// Finalizes and returns the digest; the context must be reset() before
  /// reuse.
  Sha1Digest finish();

  /// One-shot convenience.
  static Sha1Digest hash(std::span<const std::uint8_t> data) {
    Sha1 ctx;
    ctx.update(data);
    return ctx.finish();
  }

  /// Work units for the cost model: SHA-1 processes 64-byte blocks; the
  /// returned count is the number of compression-function invocations a
  /// message of `bytes` requires (including padding).
  static std::uint64_t compression_rounds(std::uint64_t bytes) {
    return (bytes + 8) / 64 + 1;
  }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_bytes_ = 0;
  std::size_t buffered_ = 0;
};

/// Lower-case hex of a digest.
std::string digest_hex(const Sha1Digest& digest);

}  // namespace hs::kernels
