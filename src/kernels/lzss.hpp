// LZSS codec — the compression stage of the GPU Dedup (the paper replaces
// PARSEC's Bzip2/Gzip with the LZSS of their prior work [24], and its
// FindMatch kernel is the heart of their §IV-B optimization).
//
// One exact, shared match function drives every variant:
//  * lzss_encode()            — CPU block encoder (match search inline);
//  * find_matches_batch()     — all matches of a whole multi-block batch at
//    once, the data-parallel form of the paper's Listing 3 FindMatchKernel
//    (one GPU thread per input position, block bounds from startPos);
//  * lzss_encode_from_matches() — CPU encode walk over precomputed matches
//    (the paper runs exactly this split: FindMatch on GPU, walk on CPU).
// Because the match function is shared, all variants emit bit-identical
// compressed streams — the cross-version equivalence the tests assert.
//
// Stream format (MSB-first bit stream):
//   flag 1 -> 8-bit literal
//   flag 0 -> (offset-1) in offset_bits, (length-min_match) in length_bits
// Matches never cross block boundaries and never overlap the lookahead
// (source indices stay below the current position, as in Listing 3).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/status.hpp"

namespace hs::kernels {

/// Match-finder selection. The bit stream format is identical either way —
/// any decoder reads both — but the encoded bytes differ, so goldens pin
/// one mode.
///  * kLegacy: the seed brute-force window scan (exact longest match,
///    oldest candidate on ties). Bit-exact with every archive golden
///    recorded before the chain matcher existed; the modeled/paper rows
///    stay on it.
///  * kChain: LZ4/zlib-style hash-chain matcher (3-byte hash heads +
///    chained previous positions, bounded walk depth) — approximate
///    (bounded depth, newest-first ties) but ~20-50x faster. All pipeline
///    variants still emit bit-identical archives to each other in this
///    mode; they just differ from the legacy stream.
enum class LzssMode : std::uint8_t {
  kLegacy = 0,
  kChain = 1,
};

/// "legacy" / "chain".
[[nodiscard]] std::string_view lzss_mode_name(LzssMode mode);

/// Parses a mode name; false on unknown names (value untouched).
bool parse_lzss_mode(std::string_view name, LzssMode& out);

struct LzssParams {
  std::uint32_t window_size = 4096;  ///< must be a power of two, <= 4096
  std::uint32_t min_match = 3;
  std::uint32_t max_match = 18;  ///< min_match + 15 with 4 length bits
  LzssMode mode = LzssMode::kLegacy;
  /// Chain links visited per kChain query before giving up (ignored by
  /// kLegacy). Bounds the worst case at O(n·depth) regardless of window
  /// size; raising it trades speed for ratio. Part of the match-finder
  /// configuration, so changing it re-goldens chain-mode streams.
  std::uint32_t chain_depth = 8;

  static constexpr std::uint32_t kOffsetBits = 12;
  static constexpr std::uint32_t kLengthBits = 4;

  [[nodiscard]] bool valid() const {
    return window_size >= 2 && window_size <= (1u << kOffsetBits) &&
           min_match >= 2 && max_match > min_match &&
           max_match - min_match < (1u << kLengthBits) && chain_depth >= 1;
  }
};

/// A match for one input position: `length` == 0 or < min_match means "emit
/// a literal here"; otherwise copy `length` bytes from `offset` positions
/// back.
struct LzssMatch {
  std::uint16_t length = 0;
  std::uint16_t offset = 0;
};

/// Longest match for `pos` within [block_start, block_end), searching at
/// most `params.window_size` positions back and never past block bounds or
/// the lookahead. Ties keep the oldest candidate (the Listing 3 scan
/// order). This is the per-thread body of the FindMatch kernel.
LzssMatch lzss_longest_match(std::span<const std::uint8_t> input,
                             std::size_t block_start, std::size_t block_end,
                             std::size_t pos, const LzssParams& params);

/// CPU one-shot encoder for input[block_start, block_end).
std::vector<std::uint8_t> lzss_encode(std::span<const std::uint8_t> input,
                                      std::size_t block_start,
                                      std::size_t block_end,
                                      const LzssParams& params);

/// Whole-buffer convenience.
inline std::vector<std::uint8_t> lzss_encode(
    std::span<const std::uint8_t> input, const LzssParams& params = {}) {
  return lzss_encode(input, 0, input.size(), params);
}

/// Pooled-sink variant: encodes into `out` (cleared first), reusing its
/// slab — the allocation-free entry the dedup pipeline uses. Emits the
/// same bit stream as the vector overload.
void lzss_encode(std::span<const std::uint8_t> input, std::size_t block_start,
                 std::size_t block_end, const LzssParams& params,
                 PooledBuffer& out);

/// Decodes `compressed` into exactly `original_size` bytes; DATA_LOSS on a
/// malformed stream (truncated stream, offset before block start, …).
Result<std::vector<std::uint8_t>> lzss_decode(
    std::span<const std::uint8_t> compressed, std::size_t original_size,
    const LzssParams& params = {});

/// Matches for every position of a multi-block batch: `start_pos` holds the
/// block start indices (rabin output; start_pos[0] == 0), blocks end where
/// the next begins (last ends at input.size()). out_matches is resized to
/// input.size(). This mirrors the batched FindMatchKernel: position i's
/// block is found from start_pos, and the search is clamped to that block.
void find_matches_batch(std::span<const std::uint8_t> input,
                        std::span<const std::uint32_t> start_pos,
                        const LzssParams& params,
                        std::vector<LzssMatch>& out_matches);

/// Encode walk over precomputed matches (absolute-indexed), equivalent to
/// lzss_encode for the same block bounds.
std::vector<std::uint8_t> lzss_encode_from_matches(
    std::span<const std::uint8_t> input, std::size_t block_start,
    std::size_t block_end, std::span<const LzssMatch> matches,
    const LzssParams& params);

/// Pooled-sink variant of the encode walk (out cleared first).
void lzss_encode_from_matches(std::span<const std::uint8_t> input,
                              std::size_t block_start, std::size_t block_end,
                              std::span<const LzssMatch> matches,
                              const LzssParams& params, PooledBuffer& out);

/// Work units (input-byte comparisons) the cost model charges one simulated
/// GPU lane for matching position `pos`; mirrors the Listing 3 loop trip
/// count: scan length of the window clamped to the block.
std::uint64_t lzss_match_cost(std::size_t block_start, std::size_t pos,
                              const LzssParams& params);

}  // namespace hs::kernels
