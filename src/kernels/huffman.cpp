#include "kernels/huffman.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <queue>

namespace hs::kernels {

namespace {

constexpr int kMaxLen = 15;
constexpr std::size_t kSymbols = 256;

/// MSB-first bit writer (local copy; the LZSS one is internal to lzss.cpp).
class BitWriter {
 public:
  void put_bits(std::uint32_t value, std::uint32_t count) {
    for (std::uint32_t i = count; i-- > 0;) {
      current_ = static_cast<std::uint8_t>((current_ << 1) |
                                           ((value >> i) & 1u));
      if (++filled_ == 8) {
        bytes_.push_back(current_);
        current_ = 0;
        filled_ = 0;
      }
    }
  }
  std::vector<std::uint8_t> finish() {
    if (filled_ > 0) {
      current_ = static_cast<std::uint8_t>(current_ << (8 - filled_));
      bytes_.push_back(current_);
    }
    return std::move(bytes_);
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint8_t current_ = 0;
  std::uint32_t filled_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}
  bool get_bit(std::uint32_t& bit) {
    if (pos_ >= bytes_.size() * 8) return false;
    bit = (bytes_[pos_ / 8] >> (7 - pos_ % 8)) & 1u;
    ++pos_;
    return true;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Canonical code assignment from lengths: shorter first, ties by symbol.
std::array<std::uint16_t, kSymbols> canonical_codes(
    std::span<const std::uint8_t> lengths) {
  std::array<std::uint16_t, kSymbols> codes{};
  std::array<std::uint16_t, kMaxLen + 1> count{};
  for (std::size_t s = 0; s < kSymbols; ++s) count[lengths[s]]++;
  count[0] = 0;
  std::array<std::uint16_t, kMaxLen + 2> next{};
  std::uint16_t code = 0;
  for (int len = 1; len <= kMaxLen; ++len) {
    code = static_cast<std::uint16_t>((code + count[len - 1]) << 1);
    next[len] = code;
  }
  for (std::size_t s = 0; s < kSymbols; ++s) {
    if (lengths[s] > 0) codes[s] = next[lengths[s]]++;
  }
  return codes;
}

}  // namespace

std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> freqs) {
  assert(freqs.size() == kSymbols);
  std::vector<std::uint8_t> lengths(kSymbols, 0);

  // Huffman tree over present symbols.
  struct Node {
    std::uint64_t freq;
    int left = -1, right = -1;
    int symbol = -1;
  };
  std::vector<Node> nodes;
  using QE = std::pair<std::uint64_t, int>;  // (freq, node index)
  std::priority_queue<QE, std::vector<QE>, std::greater<>> heap;
  for (std::size_t s = 0; s < kSymbols; ++s) {
    if (freqs[s] > 0) {
      nodes.push_back(Node{freqs[s], -1, -1, static_cast<int>(s)});
      heap.emplace(freqs[s], static_cast<int>(nodes.size() - 1));
    }
  }
  if (heap.empty()) return lengths;
  if (heap.size() == 1) {
    lengths[static_cast<std::size_t>(nodes[0].symbol)] = 1;
    return lengths;
  }
  while (heap.size() > 1) {
    auto [fa, a] = heap.top();
    heap.pop();
    auto [fb, b] = heap.top();
    heap.pop();
    nodes.push_back(Node{fa + fb, a, b, -1});
    heap.emplace(fa + fb, static_cast<int>(nodes.size() - 1));
  }
  // Depth-first depths (iterative; tree can be 256 deep at most... actually
  // up to #symbols, fine for an explicit stack).
  std::vector<std::pair<int, int>> stack;  // (node, depth)
  stack.emplace_back(static_cast<int>(nodes.size() - 1), 0);
  while (!stack.empty()) {
    auto [n, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(n)];
    if (node.symbol >= 0) {
      lengths[static_cast<std::size_t>(node.symbol)] =
          static_cast<std::uint8_t>(std::min(depth, kMaxLen));
      continue;
    }
    stack.emplace_back(node.left, depth + 1);
    stack.emplace_back(node.right, depth + 1);
  }

  // Length-limiting clamp may have broken the Kraft inequality; restore it
  // by lengthening the shortest over-privileged codes until
  // sum 2^(kMaxLen-len) <= 2^kMaxLen.
  auto kraft = [&lengths] {
    std::uint64_t k = 0;
    for (std::uint8_t len : lengths) {
      if (len > 0) k += 1ull << (kMaxLen - len);
    }
    return k;
  };
  while (kraft() > (1ull << kMaxLen)) {
    // Lengthen the longest code shorter than the cap (cheapest ratio loss).
    int best = -1;
    for (std::size_t s = 0; s < kSymbols; ++s) {
      if (lengths[s] > 0 && lengths[s] < kMaxLen &&
          (best < 0 ||
           lengths[s] > lengths[static_cast<std::size_t>(best)])) {
        best = static_cast<int>(s);
      }
    }
    assert(best >= 0 && "cannot satisfy Kraft with 15-bit codes");
    lengths[static_cast<std::size_t>(best)]++;
  }
  return lengths;
}

std::vector<std::uint8_t> huffman_encode(
    std::span<const std::uint8_t> input) {
  std::vector<std::uint64_t> freqs(kSymbols, 0);
  for (std::uint8_t b : input) freqs[b]++;
  std::vector<std::uint8_t> lengths = huffman_code_lengths(freqs);
  auto codes = canonical_codes(lengths);

  // Header: 256 x 4-bit lengths.
  std::vector<std::uint8_t> out;
  out.reserve(kSymbols / 2 + input.size() / 2);
  for (std::size_t s = 0; s < kSymbols; s += 2) {
    out.push_back(static_cast<std::uint8_t>((lengths[s] << 4) |
                                            lengths[s + 1]));
  }
  BitWriter bits;
  for (std::uint8_t b : input) {
    bits.put_bits(codes[b], lengths[b]);
  }
  auto payload = bits.finish();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<std::vector<std::uint8_t>> huffman_decode(
    std::span<const std::uint8_t> compressed, std::size_t original_size) {
  if (compressed.size() < kSymbols / 2) {
    return DataLoss("huffman stream shorter than its header");
  }
  std::array<std::uint8_t, kSymbols> lengths{};
  for (std::size_t s = 0; s < kSymbols; s += 2) {
    lengths[s] = compressed[s / 2] >> 4;
    lengths[s + 1] = compressed[s / 2] & 0x0F;
  }

  // Canonical decoding tables.
  std::array<std::uint16_t, kMaxLen + 1> count{};
  for (std::uint8_t len : lengths) count[len]++;
  count[0] = 0;
  // Validate Kraft (<= 1) so malformed tables cannot loop forever.
  std::uint64_t kraft = 0;
  for (std::uint8_t len : lengths) {
    if (len > 0) kraft += 1ull << (kMaxLen - len);
  }
  if (kraft > (1ull << kMaxLen)) {
    return DataLoss("huffman code-length table violates Kraft inequality");
  }
  std::array<std::uint16_t, kMaxLen + 1> first{};
  std::array<std::uint16_t, kMaxLen + 1> offset{};
  std::vector<std::uint8_t> symbols;
  symbols.reserve(kSymbols);
  {
    std::uint16_t code = 0;
    std::uint16_t index = 0;
    for (int len = 1; len <= kMaxLen; ++len) {
      code = static_cast<std::uint16_t>((code + count[len - 1]) << 1);
      first[len] = code;
      offset[len] = index;
      index = static_cast<std::uint16_t>(index + count[len]);
    }
    for (int len = 1; len <= kMaxLen; ++len) {
      for (std::size_t s = 0; s < kSymbols; ++s) {
        if (lengths[s] == len) symbols.push_back(static_cast<std::uint8_t>(s));
      }
    }
  }

  std::vector<std::uint8_t> out;
  out.reserve(original_size);
  BitReader bits(compressed.subspan(kSymbols / 2));
  while (out.size() < original_size) {
    std::uint16_t code = 0;
    int len = 0;
    std::uint8_t decoded = 0;
    bool found = false;
    while (len < kMaxLen) {
      std::uint32_t bit = 0;
      if (!bits.get_bit(bit)) {
        return DataLoss("huffman stream truncated mid-code");
      }
      code = static_cast<std::uint16_t>((code << 1) | bit);
      ++len;
      std::uint16_t rel = static_cast<std::uint16_t>(code - first[len]);
      if (code >= first[len] && rel < count[len]) {
        decoded = symbols[static_cast<std::size_t>(offset[len] + rel)];
        found = true;
        break;
      }
    }
    if (!found) return DataLoss("invalid huffman code in stream");
    out.push_back(decoded);
  }
  return out;
}

}  // namespace hs::kernels
