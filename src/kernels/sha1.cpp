#include "kernels/sha1.hpp"

#include <cstring>

#include "common/format.hpp"

namespace hs::kernels {

namespace {

inline std::uint32_t rotl32(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

void Sha1::reset() {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[t * 4]) << 24) |
           (static_cast<std::uint32_t>(block[t * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[t * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[t * 4 + 3]);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  // The 80 rounds split into four 20-round loops with a fixed f/k each, so
  // the per-round branch chain disappears and the compiler can keep the
  // five-word state in registers.
  auto round = [&](std::uint32_t f, std::uint32_t k, std::uint32_t wt) {
    std::uint32_t temp = rotl32(a, 5) + f + e + k + wt;
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  };
  for (int t = 0; t < 20; ++t) {
    round((b & c) | ((~b) & d), 0x5A827999u, w[t]);
  }
  for (int t = 20; t < 40; ++t) {
    round(b ^ c ^ d, 0x6ED9EBA1u, w[t]);
  }
  for (int t = 40; t < 60; ++t) {
    round((b & c) | (b & d) | (c & d), 0x8F1BBCDCu, w[t]);
  }
  for (int t = 60; t < 80; ++t) {
    round(b ^ c ^ d, 0xCA62C1D6u, w[t]);
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Sha1Digest Sha1::finish() {
  // Append 0x80, pad with zeros, append 64-bit big-endian bit length.
  std::uint64_t bit_len = total_bytes_ * 8;
  std::uint8_t pad[64] = {0x80};
  std::size_t pad_len =
      buffered_ < 56 ? 56 - buffered_ : 120 - buffered_;
  update(std::span<const std::uint8_t>(pad, pad_len));
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - i * 8));
  }
  // update() would also bump total_bytes_, but we are done with it.
  std::size_t offset = 0;
  (void)offset;
  update(std::span<const std::uint8_t>(len_bytes, 8));

  Sha1Digest out;
  for (int i = 0; i < 5; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

std::string digest_hex(const Sha1Digest& digest) {
  return to_hex(std::span<const std::uint8_t>(digest.data(), digest.size()));
}

}  // namespace hs::kernels
