#include "kernels/lzss.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#include "kernels/simd/lzss_match.hpp"

namespace hs::kernels {

namespace {

/// MSB-first bit writer over any push_back-able byte sink. Bits collect in
/// a 64-bit accumulator and flush a byte at a time; the worst case between
/// flushes is 7 carried bits + a 12-bit offset field, far below 64, so the
/// accumulator never overflows. The emitted stream is identical to writing
/// each bit individually.
template <typename Sink>
class BitWriter {
 public:
  explicit BitWriter(Sink& sink) : sink_(sink) {}

  void put_bit(bool bit) { put_bits(bit ? 1u : 0u, 1); }

  void put_bits(std::uint32_t value, std::uint32_t count) {
    acc_ = (acc_ << count) | (value & ((1u << count) - 1u));
    filled_ += count;
    while (filled_ >= 8) {
      filled_ -= 8;
      sink_.push_back(static_cast<std::uint8_t>(acc_ >> filled_));
    }
  }

  void finish() {
    if (filled_ > 0) {
      sink_.push_back(static_cast<std::uint8_t>(acc_ << (8 - filled_)));
      filled_ = 0;
    }
  }

 private:
  Sink& sink_;
  std::uint64_t acc_ = 0;
  std::uint32_t filled_ = 0;
};

/// MSB-first bit reader.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  bool get_bit(bool& bit) {
    if (pos_ >= bytes_.size() * 8) return false;
    std::size_t byte = pos_ / 8;
    std::size_t off = pos_ % 8;
    bit = ((bytes_[byte] >> (7 - off)) & 1u) != 0;
    ++pos_;
    return true;
  }

  bool get_bits(std::uint32_t count, std::uint32_t& value) {
    value = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      bool bit = false;
      if (!get_bit(bit)) return false;
      value = (value << 1) | (bit ? 1u : 0u);
    }
    return true;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

LzssMatch lzss_longest_match(std::span<const std::uint8_t> input,
                             std::size_t block_start, std::size_t block_end,
                             std::size_t pos, const LzssParams& params) {
  // Dispatched on the process-wide SIMD level; every body returns the
  // identical (max length, oldest candidate) result, so all encoders —
  // CPU, batched FindMatch, simulated GPU kernels — stay bit-identical
  // regardless of level. The seed scalar body lives in
  // simd/lzss_match.cpp as lzss_longest_match_scalar.
  return simd::lzss_longest_match_at(simd::active_level(), input, block_start,
                                     block_end, pos, params);
}

namespace {

/// Shared encode walk; `next_match` yields the match for a position and
/// `out_bytes` is any push_back-able byte sink.
template <typename Sink, typename MatchFn>
void encode_walk(std::span<const std::uint8_t> input, std::size_t block_start,
                 std::size_t block_end, const LzssParams& params,
                 const MatchFn& next_match, Sink& out_bytes) {
  BitWriter<Sink> out(out_bytes);
  std::size_t pos = block_start;
  while (pos < block_end) {
    LzssMatch m = next_match(pos);
    if (m.length >= params.min_match) {
      out.put_bit(false);
      out.put_bits(static_cast<std::uint32_t>(m.offset - 1),
                   LzssParams::kOffsetBits);
      out.put_bits(static_cast<std::uint32_t>(m.length - params.min_match),
                   LzssParams::kLengthBits);
      pos += m.length;
    } else {
      out.put_bit(true);
      out.put_bits(input[pos], 8);
      ++pos;
    }
  }
  out.finish();
}

}  // namespace

std::vector<std::uint8_t> lzss_encode(std::span<const std::uint8_t> input,
                                      std::size_t block_start,
                                      std::size_t block_end,
                                      const LzssParams& params) {
  assert(params.valid());
  std::vector<std::uint8_t> out;
  encode_walk(input, block_start, block_end, params,
              [&](std::size_t pos) {
                return lzss_longest_match(input, block_start, block_end, pos,
                                          params);
              },
              out);
  return out;
}

void lzss_encode(std::span<const std::uint8_t> input, std::size_t block_start,
                 std::size_t block_end, const LzssParams& params,
                 PooledBuffer& out) {
  assert(params.valid());
  out.clear();
  encode_walk(input, block_start, block_end, params,
              [&](std::size_t pos) {
                return lzss_longest_match(input, block_start, block_end, pos,
                                          params);
              },
              out);
}

Result<std::vector<std::uint8_t>> lzss_decode(
    std::span<const std::uint8_t> compressed, std::size_t original_size,
    const LzssParams& params) {
  if (!params.valid()) return InvalidArgument("bad LZSS parameters");
  std::vector<std::uint8_t> out;
  out.reserve(original_size);
  BitReader in(compressed);
  while (out.size() < original_size) {
    bool literal = false;
    if (!in.get_bit(literal)) {
      return DataLoss("LZSS stream truncated before expected output size");
    }
    if (literal) {
      std::uint32_t byte = 0;
      if (!in.get_bits(8, byte)) {
        return DataLoss("LZSS stream truncated inside a literal");
      }
      out.push_back(static_cast<std::uint8_t>(byte));
    } else {
      std::uint32_t offset_m1 = 0, len_m = 0;
      if (!in.get_bits(LzssParams::kOffsetBits, offset_m1) ||
          !in.get_bits(LzssParams::kLengthBits, len_m)) {
        return DataLoss("LZSS stream truncated inside a match");
      }
      std::size_t offset = offset_m1 + 1;
      std::size_t length = len_m + params.min_match;
      if (offset > out.size()) {
        return DataLoss("LZSS match reaches before the block start");
      }
      if (out.size() + length > original_size) {
        return DataLoss("LZSS match overruns the declared output size");
      }
      std::size_t src = out.size() - offset;
      for (std::size_t i = 0; i < length; ++i) {
        out.push_back(out[src + i]);
      }
    }
  }
  return out;
}

void find_matches_batch(std::span<const std::uint8_t> input,
                        std::span<const std::uint32_t> start_pos,
                        const LzssParams& params,
                        std::vector<LzssMatch>& out_matches) {
  assert(!start_pos.empty() && start_pos[0] == 0);
  out_matches.assign(input.size(), LzssMatch{});
  // For each position, locate its block (start_pos is sorted) exactly as
  // Listing 3 scans startPoss, then run the shared match body.
  std::size_t block_idx = 0;
  for (std::size_t pos = 0; pos < input.size(); ++pos) {
    while (block_idx + 1 < start_pos.size() &&
           pos >= start_pos[block_idx + 1]) {
      ++block_idx;
    }
    const std::size_t bstart = start_pos[block_idx];
    const std::size_t bend = block_idx + 1 < start_pos.size()
                                 ? start_pos[block_idx + 1]
                                 : input.size();
    out_matches[pos] = lzss_longest_match(input, bstart, bend, pos, params);
  }
}

std::vector<std::uint8_t> lzss_encode_from_matches(
    std::span<const std::uint8_t> input, std::size_t block_start,
    std::size_t block_end, std::span<const LzssMatch> matches,
    const LzssParams& params) {
  assert(matches.size() >= block_end);
  std::vector<std::uint8_t> out;
  encode_walk(input, block_start, block_end, params,
              [&](std::size_t pos) { return matches[pos]; }, out);
  return out;
}

void lzss_encode_from_matches(std::span<const std::uint8_t> input,
                              std::size_t block_start, std::size_t block_end,
                              std::span<const LzssMatch> matches,
                              const LzssParams& params, PooledBuffer& out) {
  assert(matches.size() >= block_end);
  out.clear();
  encode_walk(input, block_start, block_end, params,
              [&](std::size_t pos) { return matches[pos]; }, out);
}

std::uint64_t lzss_match_cost(std::size_t block_start, std::size_t pos,
                              const LzssParams& params) {
  std::size_t distance = pos - block_start;
  return 1 + std::min<std::size_t>(distance, params.window_size);
}

}  // namespace hs::kernels
