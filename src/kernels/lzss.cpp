#include "kernels/lzss.hpp"

#include <algorithm>
#include <cassert>

namespace hs::kernels {

namespace {

/// MSB-first bit writer.
class BitWriter {
 public:
  void put_bit(bool bit) {
    current_ = static_cast<std::uint8_t>((current_ << 1) | (bit ? 1 : 0));
    if (++filled_ == 8) flush_byte();
  }

  void put_bits(std::uint32_t value, std::uint32_t count) {
    for (std::uint32_t i = count; i-- > 0;) {
      put_bit(((value >> i) & 1u) != 0);
    }
  }

  std::vector<std::uint8_t> finish() {
    if (filled_ > 0) {
      current_ = static_cast<std::uint8_t>(current_ << (8 - filled_));
      flush_byte();
    }
    return std::move(bytes_);
  }

 private:
  void flush_byte() {
    bytes_.push_back(current_);
    current_ = 0;
    filled_ = 0;
  }

  std::vector<std::uint8_t> bytes_;
  std::uint8_t current_ = 0;
  std::uint32_t filled_ = 0;
};

/// MSB-first bit reader.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  bool get_bit(bool& bit) {
    if (pos_ >= bytes_.size() * 8) return false;
    std::size_t byte = pos_ / 8;
    std::size_t off = pos_ % 8;
    bit = ((bytes_[byte] >> (7 - off)) & 1u) != 0;
    ++pos_;
    return true;
  }

  bool get_bits(std::uint32_t count, std::uint32_t& value) {
    value = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      bool bit = false;
      if (!get_bit(bit)) return false;
      value = (value << 1) | (bit ? 1u : 0u);
    }
    return true;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

LzssMatch lzss_longest_match(std::span<const std::uint8_t> input,
                             std::size_t block_start, std::size_t block_end,
                             std::size_t pos, const LzssParams& params) {
  assert(params.valid());
  assert(pos >= block_start && pos < block_end && block_end <= input.size());

  const std::size_t search_begin =
      pos - block_start > params.window_size ? pos - params.window_size
                                             : block_start;
  // Longest possible: bounded by the block end and by the no-overlap rule
  // (source indices stay below pos).
  const std::size_t lookahead_limit =
      std::min<std::size_t>(params.max_match, block_end - pos);

  LzssMatch best;
  for (std::size_t cand = search_begin; cand < pos; ++cand) {
    if (input[cand] != input[pos]) continue;
    // Source must stay below pos: max length additionally bounded by
    // pos - cand.
    const std::size_t limit = std::min(lookahead_limit, pos - cand);
    std::size_t len = 1;
    while (len < limit && input[cand + len] == input[pos + len]) ++len;
    if (len > best.length) {
      best.length = static_cast<std::uint16_t>(len);
      best.offset = static_cast<std::uint16_t>(pos - cand);
      if (len == lookahead_limit) break;  // cannot do better
    }
  }
  if (best.length < params.min_match) return LzssMatch{};
  return best;
}

namespace {

/// Shared encode walk; `next_match` yields the match for a position.
template <typename MatchFn>
std::vector<std::uint8_t> encode_walk(std::span<const std::uint8_t> input,
                                      std::size_t block_start,
                                      std::size_t block_end,
                                      const LzssParams& params,
                                      const MatchFn& next_match) {
  BitWriter out;
  std::size_t pos = block_start;
  while (pos < block_end) {
    LzssMatch m = next_match(pos);
    if (m.length >= params.min_match) {
      out.put_bit(false);
      out.put_bits(static_cast<std::uint32_t>(m.offset - 1),
                   LzssParams::kOffsetBits);
      out.put_bits(static_cast<std::uint32_t>(m.length - params.min_match),
                   LzssParams::kLengthBits);
      pos += m.length;
    } else {
      out.put_bit(true);
      out.put_bits(input[pos], 8);
      ++pos;
    }
  }
  return out.finish();
}

}  // namespace

std::vector<std::uint8_t> lzss_encode(std::span<const std::uint8_t> input,
                                      std::size_t block_start,
                                      std::size_t block_end,
                                      const LzssParams& params) {
  assert(params.valid());
  return encode_walk(input, block_start, block_end, params,
                     [&](std::size_t pos) {
                       return lzss_longest_match(input, block_start,
                                                 block_end, pos, params);
                     });
}

Result<std::vector<std::uint8_t>> lzss_decode(
    std::span<const std::uint8_t> compressed, std::size_t original_size,
    const LzssParams& params) {
  if (!params.valid()) return InvalidArgument("bad LZSS parameters");
  std::vector<std::uint8_t> out;
  out.reserve(original_size);
  BitReader in(compressed);
  while (out.size() < original_size) {
    bool literal = false;
    if (!in.get_bit(literal)) {
      return DataLoss("LZSS stream truncated before expected output size");
    }
    if (literal) {
      std::uint32_t byte = 0;
      if (!in.get_bits(8, byte)) {
        return DataLoss("LZSS stream truncated inside a literal");
      }
      out.push_back(static_cast<std::uint8_t>(byte));
    } else {
      std::uint32_t offset_m1 = 0, len_m = 0;
      if (!in.get_bits(LzssParams::kOffsetBits, offset_m1) ||
          !in.get_bits(LzssParams::kLengthBits, len_m)) {
        return DataLoss("LZSS stream truncated inside a match");
      }
      std::size_t offset = offset_m1 + 1;
      std::size_t length = len_m + params.min_match;
      if (offset > out.size()) {
        return DataLoss("LZSS match reaches before the block start");
      }
      if (out.size() + length > original_size) {
        return DataLoss("LZSS match overruns the declared output size");
      }
      std::size_t src = out.size() - offset;
      for (std::size_t i = 0; i < length; ++i) {
        out.push_back(out[src + i]);
      }
    }
  }
  return out;
}

void find_matches_batch(std::span<const std::uint8_t> input,
                        std::span<const std::uint32_t> start_pos,
                        const LzssParams& params,
                        std::vector<LzssMatch>& out_matches) {
  assert(!start_pos.empty() && start_pos[0] == 0);
  out_matches.assign(input.size(), LzssMatch{});
  // For each position, locate its block (start_pos is sorted) exactly as
  // Listing 3 scans startPoss, then run the shared match body.
  std::size_t block_idx = 0;
  for (std::size_t pos = 0; pos < input.size(); ++pos) {
    while (block_idx + 1 < start_pos.size() &&
           pos >= start_pos[block_idx + 1]) {
      ++block_idx;
    }
    const std::size_t bstart = start_pos[block_idx];
    const std::size_t bend = block_idx + 1 < start_pos.size()
                                 ? start_pos[block_idx + 1]
                                 : input.size();
    out_matches[pos] = lzss_longest_match(input, bstart, bend, pos, params);
  }
}

std::vector<std::uint8_t> lzss_encode_from_matches(
    std::span<const std::uint8_t> input, std::size_t block_start,
    std::size_t block_end, std::span<const LzssMatch> matches,
    const LzssParams& params) {
  assert(matches.size() >= block_end);
  return encode_walk(input, block_start, block_end, params,
                     [&](std::size_t pos) { return matches[pos]; });
}

std::uint64_t lzss_match_cost(std::size_t block_start, std::size_t pos,
                              const LzssParams& params) {
  std::size_t distance = pos - block_start;
  return 1 + std::min<std::size_t>(distance, params.window_size);
}

}  // namespace hs::kernels
