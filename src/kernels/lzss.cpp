#include "kernels/lzss.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#include "kernels/simd/lzss_chain.hpp"
#include "kernels/simd/lzss_match.hpp"

namespace hs::kernels {

std::string_view lzss_mode_name(LzssMode mode) {
  switch (mode) {
    case LzssMode::kLegacy: return "legacy";
    case LzssMode::kChain: return "chain";
  }
  return "?";
}

bool parse_lzss_mode(std::string_view name, LzssMode& out) {
  if (name == "legacy") {
    out = LzssMode::kLegacy;
    return true;
  }
  if (name == "chain") {
    out = LzssMode::kChain;
    return true;
  }
  return false;
}

namespace {

/// MSB-first bit writer over any push_back-able byte sink. Bits collect in
/// a 64-bit accumulator and flush a byte at a time; the worst case between
/// flushes is 7 carried bits + a 12-bit offset field, far below 64, so the
/// accumulator never overflows. The emitted stream is identical to writing
/// each bit individually.
template <typename Sink>
class BitWriter {
 public:
  explicit BitWriter(Sink& sink) : sink_(sink) {}

  void put_bit(bool bit) { put_bits(bit ? 1u : 0u, 1); }

  void put_bits(std::uint32_t value, std::uint32_t count) {
    acc_ = (acc_ << count) | (value & ((1u << count) - 1u));
    filled_ += count;
    while (filled_ >= 8) {
      filled_ -= 8;
      sink_.push_back(static_cast<std::uint8_t>(acc_ >> filled_));
    }
  }

  void finish() {
    if (filled_ > 0) {
      sink_.push_back(static_cast<std::uint8_t>(acc_ << (8 - filled_)));
      filled_ = 0;
    }
  }

 private:
  Sink& sink_;
  std::uint64_t acc_ = 0;
  std::uint32_t filled_ = 0;
};

/// MSB-first bit reader.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  bool get_bit(bool& bit) {
    if (pos_ >= bytes_.size() * 8) return false;
    std::size_t byte = pos_ / 8;
    std::size_t off = pos_ % 8;
    bit = ((bytes_[byte] >> (7 - off)) & 1u) != 0;
    ++pos_;
    return true;
  }

  bool get_bits(std::uint32_t count, std::uint32_t& value) {
    value = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      bool bit = false;
      if (!get_bit(bit)) return false;
      value = (value << 1) | (bit ? 1u : 0u);
    }
    return true;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

LzssMatch lzss_longest_match(std::span<const std::uint8_t> input,
                             std::size_t block_start, std::size_t block_end,
                             std::size_t pos, const LzssParams& params) {
  // Dispatched on the process-wide SIMD level; every body returns the
  // identical (max length, oldest candidate) result, so all encoders —
  // CPU, batched FindMatch, simulated GPU kernels — stay bit-identical
  // regardless of level. The seed scalar body lives in
  // simd/lzss_match.cpp as lzss_longest_match_scalar.
  return simd::lzss_longest_match_at(simd::active_level(), input, block_start,
                                     block_end, pos, params);
}

namespace {

/// Shared encode walk; `next_match` yields the match for a position and
/// `out_bytes` is any push_back-able byte sink.
template <typename Sink, typename MatchFn>
void encode_walk(std::span<const std::uint8_t> input, std::size_t block_start,
                 std::size_t block_end, const LzssParams& params,
                 const MatchFn& next_match, Sink& out_bytes) {
  BitWriter<Sink> out(out_bytes);
  std::size_t pos = block_start;
  while (pos < block_end) {
    LzssMatch m = next_match(pos);
    if (m.length >= params.min_match) {
      out.put_bit(false);
      out.put_bits(static_cast<std::uint32_t>(m.offset - 1),
                   LzssParams::kOffsetBits);
      out.put_bits(static_cast<std::uint32_t>(m.length - params.min_match),
                   LzssParams::kLengthBits);
      pos += m.length;
    } else {
      out.put_bit(true);
      out.put_bits(input[pos], 8);
      ++pos;
    }
  }
  out.finish();
}

/// MSB-first bit writer over a raw pointer with pre-reserved worst-case
/// capacity: no per-byte capacity checks, bulk 4-byte big-endian flushes.
/// Emits exactly the bytes BitWriter would for the same put sequence (the
/// cross-variant bit-identity lzss_chain_test asserts).
class RawBitWriter {
 public:
  explicit RawBitWriter(std::uint8_t* dst) : dst_(dst) {}

  void put_bits(std::uint32_t value, std::uint32_t count) {
    acc_ = (acc_ << count) | (value & ((1u << count) - 1u));
    filled_ += count;
    if (filled_ >= 32) {
      filled_ -= 32;
      const std::uint32_t word =
          byteswap32(static_cast<std::uint32_t>(acc_ >> filled_));
      std::memcpy(dst_, &word, 4);
      dst_ += 4;
    }
  }

  std::uint8_t* finish() {
    while (filled_ >= 8) {
      filled_ -= 8;
      *dst_++ = static_cast<std::uint8_t>(acc_ >> filled_);
    }
    if (filled_ > 0) {
      *dst_++ = static_cast<std::uint8_t>(acc_ << (8 - filled_));
      filled_ = 0;
    }
    return dst_;
  }

 private:
  static std::uint32_t byteswap32(std::uint32_t v) {
    return (v >> 24) | ((v >> 8) & 0xFF00u) | ((v << 8) & 0xFF0000u) |
           (v << 24);
  }

  std::uint8_t* dst_;
  std::uint64_t acc_ = 0;
  std::uint32_t filled_ = 0;
};

void append_bytes(std::vector<std::uint8_t>& sink, const std::uint8_t* p,
                  std::size_t n) {
  sink.insert(sink.end(), p, p + n);
}
void append_bytes(PooledBuffer& sink, const std::uint8_t* p, std::size_t n) {
  sink.append(p, n);
}

/// Chain-mode encode walk: find-then-insert through a matcher, inserting
/// every covered position so the chain state at any query matches the
/// batched FindMatch form exactly (see lzss_chain.hpp purity contract).
///
/// The emit is branchless: the match-or-literal decision selects a
/// (token, width, advance) triple by conditional move, so the walk's only
/// data-dependent branches are inside find() and the interior-insert loop
/// bound. Tokens land in a thread-local arena through RawBitWriter and
/// are appended to the sink in one shot — the walk itself does no
/// capacity checks and, warm, no allocation.
template <typename Sink>
void encode_chain_walk(simd::LzssChainMatcher& matcher,
                       std::span<const std::uint8_t> input,
                       std::size_t block_start, std::size_t block_end,
                       const LzssParams& params, Sink& out_bytes) {
  static thread_local std::vector<std::uint8_t> arena;
  const std::size_t n = block_end - block_start;
  // Worst case: every byte a literal (9 bits) plus padding slack.
  const std::size_t worst = n + n / 8 + 16;
  if (arena.size() < worst) arena.resize(worst);
  RawBitWriter out(arena.data());

  constexpr std::uint32_t kMatchBits =
      1 + LzssParams::kOffsetBits + LzssParams::kLengthBits;
  // Positions in [search_limit, block_end) cannot host a 3-byte hash, so
  // they are never searched or inserted — they emit as literals.
  const std::size_t search_limit =
      n >= simd::LzssChainMatcher::kHashBytes
          ? block_end - (simd::LzssChainMatcher::kHashBytes - 1)
          : block_start;
  std::size_t pos = block_start;
  while (pos < block_end) {
    LzssMatch m{};
    if (pos < search_limit) {
      m = matcher.find(block_start, block_end, pos);
      matcher.insert(pos, block_end);
    }
    const bool is_match = m.length >= params.min_match;
    const std::uint32_t token =
        is_match ? (static_cast<std::uint32_t>(m.offset - 1)
                    << LzssParams::kLengthBits) |
                       static_cast<std::uint32_t>(
                           (m.length - params.min_match) &
                           ((1u << LzssParams::kLengthBits) - 1u))
                 : 0x100u | input[pos];
    const std::uint32_t nbits = is_match ? kMatchBits : 9;
    const std::size_t advance = is_match ? m.length : 1;
    out.put_bits(token, nbits);
    const std::size_t insert_end = std::min(pos + advance, search_limit);
    for (std::size_t q = pos + 1; q < insert_end; ++q) {
      matcher.insert(q, block_end);
    }
    pos += advance;
  }
  append_bytes(out_bytes, arena.data(),
               static_cast<std::size_t>(out.finish() - arena.data()));
}

/// Per-thread chain matcher: reset() is O(1) (generation-tagged heads), so
/// re-anchoring per encoded block costs nothing, and a warm thread never
/// allocates — farm workers each warm their own copy on the first block.
simd::LzssChainMatcher& chain_matcher() {
  static thread_local simd::LzssChainMatcher matcher;
  return matcher;
}

template <typename Sink>
void encode_dispatch(std::span<const std::uint8_t> input,
                     std::size_t block_start, std::size_t block_end,
                     const LzssParams& params, Sink& out_bytes) {
  if (params.mode == LzssMode::kChain) {
    simd::LzssChainMatcher& matcher = chain_matcher();
    matcher.reset(input, params, simd::active_level());
    encode_chain_walk(matcher, input, block_start, block_end, params,
                      out_bytes);
    return;
  }
  encode_walk(input, block_start, block_end, params,
              [&](std::size_t pos) {
                return lzss_longest_match(input, block_start, block_end, pos,
                                          params);
              },
              out_bytes);
}

}  // namespace

std::vector<std::uint8_t> lzss_encode(std::span<const std::uint8_t> input,
                                      std::size_t block_start,
                                      std::size_t block_end,
                                      const LzssParams& params) {
  assert(params.valid());
  std::vector<std::uint8_t> out;
  encode_dispatch(input, block_start, block_end, params, out);
  return out;
}

void lzss_encode(std::span<const std::uint8_t> input, std::size_t block_start,
                 std::size_t block_end, const LzssParams& params,
                 PooledBuffer& out) {
  assert(params.valid());
  out.clear();
  encode_dispatch(input, block_start, block_end, params, out);
}

Result<std::vector<std::uint8_t>> lzss_decode(
    std::span<const std::uint8_t> compressed, std::size_t original_size,
    const LzssParams& params) {
  if (!params.valid()) return InvalidArgument("bad LZSS parameters");
  std::vector<std::uint8_t> out;
  out.reserve(original_size);
  BitReader in(compressed);
  while (out.size() < original_size) {
    bool literal = false;
    if (!in.get_bit(literal)) {
      return DataLoss("LZSS stream truncated before expected output size");
    }
    if (literal) {
      std::uint32_t byte = 0;
      if (!in.get_bits(8, byte)) {
        return DataLoss("LZSS stream truncated inside a literal");
      }
      out.push_back(static_cast<std::uint8_t>(byte));
    } else {
      std::uint32_t offset_m1 = 0, len_m = 0;
      if (!in.get_bits(LzssParams::kOffsetBits, offset_m1) ||
          !in.get_bits(LzssParams::kLengthBits, len_m)) {
        return DataLoss("LZSS stream truncated inside a match");
      }
      std::size_t offset = offset_m1 + 1;
      std::size_t length = len_m + params.min_match;
      if (offset > out.size()) {
        return DataLoss("LZSS match reaches before the block start");
      }
      if (out.size() + length > original_size) {
        return DataLoss("LZSS match overruns the declared output size");
      }
      std::size_t src = out.size() - offset;
      for (std::size_t i = 0; i < length; ++i) {
        out.push_back(out[src + i]);
      }
    }
  }
  return out;
}

void find_matches_batch(std::span<const std::uint8_t> input,
                        std::span<const std::uint32_t> start_pos,
                        const LzssParams& params,
                        std::vector<LzssMatch>& out_matches) {
  assert(!start_pos.empty() && start_pos[0] == 0);
  out_matches.assign(input.size(), LzssMatch{});
  // For each position, locate its block (start_pos is sorted) exactly as
  // Listing 3 scans startPoss, then run the shared match body.
  if (params.mode == LzssMode::kChain) {
    // One matcher spans the whole batch: a query's chain walk stops at its
    // block start, so inserting every position (including other blocks')
    // yields the same per-position result as the inline per-block encoder
    // — the cross-variant bit-identity the tests assert.
    simd::LzssChainMatcher& matcher = chain_matcher();
    matcher.reset(input, params, simd::active_level());
    std::size_t block_idx = 0;
    for (std::size_t pos = 0; pos < input.size(); ++pos) {
      while (block_idx + 1 < start_pos.size() &&
             pos >= start_pos[block_idx + 1]) {
        ++block_idx;
      }
      const std::size_t bstart = start_pos[block_idx];
      const std::size_t bend = block_idx + 1 < start_pos.size()
                                   ? start_pos[block_idx + 1]
                                   : input.size();
      out_matches[pos] = matcher.find(bstart, bend, pos);
      matcher.insert(pos, bend);
    }
    return;
  }
  std::size_t block_idx = 0;
  for (std::size_t pos = 0; pos < input.size(); ++pos) {
    while (block_idx + 1 < start_pos.size() &&
           pos >= start_pos[block_idx + 1]) {
      ++block_idx;
    }
    const std::size_t bstart = start_pos[block_idx];
    const std::size_t bend = block_idx + 1 < start_pos.size()
                                 ? start_pos[block_idx + 1]
                                 : input.size();
    out_matches[pos] = lzss_longest_match(input, bstart, bend, pos, params);
  }
}

std::vector<std::uint8_t> lzss_encode_from_matches(
    std::span<const std::uint8_t> input, std::size_t block_start,
    std::size_t block_end, std::span<const LzssMatch> matches,
    const LzssParams& params) {
  assert(matches.size() >= block_end);
  std::vector<std::uint8_t> out;
  encode_walk(input, block_start, block_end, params,
              [&](std::size_t pos) { return matches[pos]; }, out);
  return out;
}

void lzss_encode_from_matches(std::span<const std::uint8_t> input,
                              std::size_t block_start, std::size_t block_end,
                              std::span<const LzssMatch> matches,
                              const LzssParams& params, PooledBuffer& out) {
  assert(matches.size() >= block_end);
  out.clear();
  encode_walk(input, block_start, block_end, params,
              [&](std::size_t pos) { return matches[pos]; }, out);
}

std::uint64_t lzss_match_cost(std::size_t block_start, std::size_t pos,
                              const LzssParams& params) {
  std::size_t distance = pos - block_start;
  return 1 + std::min<std::size_t>(distance, params.window_size);
}

}  // namespace hs::kernels
