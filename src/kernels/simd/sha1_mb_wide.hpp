// Width-generic multi-buffer SHA-1 transform, instantiated by the SSE4.2
// (4-lane) and AVX2 (8-lane) translation units with their vector traits.
// Only those TUs may include this header — it emits intrinsics for
// whatever ISA the including file is compiled with.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "kernels/simd/sha1_mb_lanes.hpp"

namespace hs::kernels::simd::detail {

// Traits contract:
//   static constexpr int kLanes;             // 32-bit lanes per vector
//   using vec = ...;
//   static vec load(const std::uint32_t*);   // aligned(64) load
//   static void store(std::uint32_t*, vec);  // aligned(64) store
//   static vec set1(std::uint32_t);
//   static vec add(vec, vec);
//   static vec and_(vec, vec), or_(vec, vec), xor_(vec, vec);
//   template <int N> static vec rotl(vec);
template <typename T>
void sha1_many_wide(const Sha1Job* jobs, std::size_t count,
                    Sha1Scratch* scratch) {
  using vec = typename T::vec;
  constexpr int W = T::kLanes;

  std::vector<std::uint32_t> local_order;
  std::vector<std::uint32_t>& order =
      scratch != nullptr ? scratch->order : local_order;
  order_by_len(jobs, count, order);

  std::size_t g = 0;
  while (g < count) {
    const std::size_t lanes = std::min<std::size_t>(W, count - g);
    if (lanes < 2) {
      // A lone message gains nothing from the wide transform.
      for (; g < count; ++g) {
        const Sha1Job& job = jobs[order[g]];
        *job.out = Sha1::hash(std::span(job.data, job.len));
      }
      break;
    }

    Sha1Lane lane[W];
    std::uint64_t max_nb = 0;
    for (std::size_t l = 0; l < lanes; ++l) {
      init_lane(lane[l], jobs[order[g + l]]);
      max_nb = std::max(max_nb, lane[l].nblocks);
    }

    vec h0 = T::set1(0x67452301u);
    vec h1 = T::set1(0xEFCDAB89u);
    vec h2 = T::set1(0x98BADCFEu);
    vec h3 = T::set1(0x10325476u);
    vec h4 = T::set1(0xC3D2E1F0u);

    alignas(64) std::uint32_t wbuf[16][W] = {};
    alignas(64) std::uint32_t active[W] = {};

    for (std::uint64_t t = 0; t < max_nb; ++t) {
      for (std::size_t l = 0; l < lanes; ++l) {
        if (t < lane[l].nblocks) {
          const std::uint8_t* blk = lane_block(lane[l], t);
          active[l] = 0xFFFFFFFFu;
          for (int w = 0; w < 16; ++w) {
            wbuf[w][l] = load_be32(blk + 4 * w);
          }
        } else {
          active[l] = 0;
          // Retired lanes chew a zero block; the masked state add below
          // discards their result, so the content is irrelevant — zero it
          // once for determinism.
          for (int w = 0; w < 16; ++w) wbuf[w][l] = 0;
        }
      }

      vec w[80];
      for (int i = 0; i < 16; ++i) w[i] = T::load(wbuf[i]);
      for (int i = 16; i < 80; ++i) {
        w[i] = T::template rotl<1>(
            T::xor_(T::xor_(w[i - 3], w[i - 8]), T::xor_(w[i - 14], w[i - 16])));
      }

      vec a = h0, b = h1, c = h2, d = h3, e = h4;
      auto round = [&](vec f, std::uint32_t k, vec wt) {
        vec temp = T::add(T::add(T::template rotl<5>(a), f),
                          T::add(T::add(e, T::set1(k)), wt));
        e = d;
        d = c;
        c = T::template rotl<30>(b);
        b = a;
        a = temp;
      };
      for (int i = 0; i < 20; ++i) {
        // ch(b,c,d) = (b & c) | (~b & d)
        round(T::xor_(d, T::and_(b, T::xor_(c, d))), 0x5A827999u, w[i]);
      }
      for (int i = 20; i < 40; ++i) {
        round(T::xor_(T::xor_(b, c), d), 0x6ED9EBA1u, w[i]);
      }
      for (int i = 40; i < 60; ++i) {
        // maj(b,c,d) = (b & c) | (b & d) | (c & d)
        round(T::or_(T::and_(b, c), T::and_(d, T::or_(b, c))), 0x8F1BBCDCu,
              w[i]);
      }
      for (int i = 60; i < 80; ++i) {
        round(T::xor_(T::xor_(b, c), d), 0xCA62C1D6u, w[i]);
      }

      const vec mask = T::load(active);
      h0 = T::add(h0, T::and_(a, mask));
      h1 = T::add(h1, T::and_(b, mask));
      h2 = T::add(h2, T::and_(c, mask));
      h3 = T::add(h3, T::and_(d, mask));
      h4 = T::add(h4, T::and_(e, mask));
    }

    alignas(64) std::uint32_t hout[5][W];
    T::store(hout[0], h0);
    T::store(hout[1], h1);
    T::store(hout[2], h2);
    T::store(hout[3], h3);
    T::store(hout[4], h4);
    for (std::size_t l = 0; l < lanes; ++l) {
      Sha1Digest& out = *lane[l].out;
      for (int i = 0; i < 5; ++i) {
        const std::uint32_t v = hout[i][l];
        out[4 * i + 0] = static_cast<std::uint8_t>(v >> 24);
        out[4 * i + 1] = static_cast<std::uint8_t>(v >> 16);
        out[4 * i + 2] = static_cast<std::uint8_t>(v >> 8);
        out[4 * i + 3] = static_cast<std::uint8_t>(v);
      }
    }
    g += lanes;
  }
}

}  // namespace hs::kernels::simd::detail
