// SHA-NI single-stream SHA-1 (see sha1_ni.hpp). Built with -msha -msse4.1
// on x86; other targets compile the fallback half of this file only.
#include "kernels/simd/sha1_ni.hpp"

#include <cstdlib>
#include <cstring>
#include <string_view>

#include "kernels/simd/dispatch.hpp"

#if defined(__SHA__) && defined(__SSE4_1__)
#define HS_SHA1_NI_COMPILED 1
#include <immintrin.h>
#else
#define HS_SHA1_NI_COMPILED 0
#endif

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace hs::kernels::simd {

namespace {

bool cpu_has_sha_extensions() {
#if (defined(__x86_64__) || defined(__i386__)) && HS_SHA1_NI_COMPILED
  // Structured extended feature leaf: SHA is CPUID.(EAX=7,ECX=0):EBX[29].
  // Not part of __builtin_cpu_supports' portable name set, so query the
  // leaf directly.
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (ebx & (1u << 29)) != 0;
#else
  return false;
#endif
}

bool resolve_available() {
  if (const char* env = std::getenv("HS_SHA1_NI");
      env != nullptr && env[0] != '\0') {
    const std::string_view v(env);
    if (v == "off" || v == "0") return false;
    if (v == "on" || v == "1") return HS_SHA1_NI_COMPILED != 0;
  }
  return cpu_has_sha_extensions();
}

#if HS_SHA1_NI_COMPILED

/// Runs the 80-round compression over `blocks` consecutive 64-byte blocks.
/// `state` is h0..h4 in natural (word) order, as Sha1 keeps them.
//
// Round-group structure: SHA1RNDS4 retires four rounds per invocation with
// its f/K selector as an immediate, so the 80 rounds are 20 groups of 4.
// Group g consumes the message quad W[4g..4g+3] held in x{g%4}; the same
// register is then rescheduled to W[4(g+4)..] via SHA1MSG1 -> XOR ->
// SHA1MSG2 (the standard W recurrence four-at-a-time), which is what the
// HS_SHA1_GROUP macro expands to. E is carried between groups by
// SHA1NEXTE from the pre-round ABCD snapshot; only the first group of a
// block adds the chaining E with a plain vector add.
void compress_blocks(std::uint32_t state[5], const std::uint8_t* data,
                     std::size_t blocks) {
  // Byte shuffle turning a 16-byte little-endian load into four big-endian
  // words with W0 in the high lane, where SHA1RNDS4 expects it.
  const __m128i kFlip =
      _mm_set_epi64x(0x0001020304050607ll, 0x08090a0b0c0d0e0fll);
  __m128i abcd = _mm_shuffle_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state)), 0x1B);
  __m128i e = _mm_set_epi32(static_cast<int>(state[4]), 0, 0, 0);

  for (std::size_t b = 0; b < blocks; ++b, data += 64) {
    const __m128i abcd_save = abcd;
    const __m128i e_save = e;
    __m128i x0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data)), kFlip);
    __m128i x1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), kFlip);
    __m128i x2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), kFlip);
    __m128i x3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), kFlip);

// One 4-round group: fold E into this group's W quad, snapshot ABCD for
// the next group's SHA1NEXTE, run the rounds, reschedule W for group g+4.
#define HS_SHA1_GROUP(K, W, WA, WB, WC)                    \
  do {                                                     \
    const __m128i e_cur = _mm_sha1nexte_epu32(e, W);       \
    const __m128i prev = abcd;                             \
    abcd = _mm_sha1rnds4_epu32(abcd, e_cur, K);            \
    e = prev;                                              \
    W = _mm_sha1msg2_epu32(                                \
        _mm_xor_si128(_mm_sha1msg1_epu32(W, WA), WB), WC); \
  } while (0)
#define HS_SHA1_GROUP_TAIL(K, W)                     \
  do {                                               \
    const __m128i e_cur = _mm_sha1nexte_epu32(e, W); \
    const __m128i prev = abcd;                       \
    abcd = _mm_sha1rnds4_epu32(abcd, e_cur, K);      \
    e = prev;                                        \
  } while (0)

    {  // group 0: chaining E enters by plain add, not SHA1NEXTE
      const __m128i e_cur = _mm_add_epi32(e, x0);
      const __m128i prev = abcd;
      abcd = _mm_sha1rnds4_epu32(abcd, e_cur, 0);
      e = prev;
      x0 = _mm_sha1msg2_epu32(
          _mm_xor_si128(_mm_sha1msg1_epu32(x0, x1), x2), x3);
    }
    HS_SHA1_GROUP(0, x1, x2, x3, x0);  // groups 1-4: rounds 4..19
    HS_SHA1_GROUP(0, x2, x3, x0, x1);
    HS_SHA1_GROUP(0, x3, x0, x1, x2);
    HS_SHA1_GROUP(0, x0, x1, x2, x3);
    HS_SHA1_GROUP(1, x1, x2, x3, x0);  // groups 5-9: rounds 20..39
    HS_SHA1_GROUP(1, x2, x3, x0, x1);
    HS_SHA1_GROUP(1, x3, x0, x1, x2);
    HS_SHA1_GROUP(1, x0, x1, x2, x3);
    HS_SHA1_GROUP(1, x1, x2, x3, x0);
    HS_SHA1_GROUP(2, x2, x3, x0, x1);  // groups 10-14: rounds 40..59
    HS_SHA1_GROUP(2, x3, x0, x1, x2);
    HS_SHA1_GROUP(2, x0, x1, x2, x3);
    HS_SHA1_GROUP(2, x1, x2, x3, x0);
    HS_SHA1_GROUP(2, x2, x3, x0, x1);
    HS_SHA1_GROUP(3, x3, x0, x1, x2);  // group 15: rounds 60..63
    HS_SHA1_GROUP_TAIL(3, x0);         // groups 16-19: no more schedule
    HS_SHA1_GROUP_TAIL(3, x1);
    HS_SHA1_GROUP_TAIL(3, x2);
    HS_SHA1_GROUP_TAIL(3, x3);

#undef HS_SHA1_GROUP
#undef HS_SHA1_GROUP_TAIL

    // Chain: h += working state. SHA1NEXTE folds the rotated final A into
    // the saved E lane in one instruction.
    e = _mm_sha1nexte_epu32(e, e_save);
    abcd = _mm_add_epi32(abcd, abcd_save);
  }

  _mm_storeu_si128(reinterpret_cast<__m128i*>(state),
                   _mm_shuffle_epi32(abcd, 0x1B));
  state[4] = static_cast<std::uint32_t>(_mm_extract_epi32(e, 3));
}

Sha1Digest hash_ni_impl(std::span<const std::uint8_t> data) {
  std::uint32_t state[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu,
                            0x10325476u, 0xC3D2E1F0u};
  const std::size_t whole = data.size() / 64;
  if (whole > 0) compress_blocks(state, data.data(), whole);

  // Padding: 0x80, zeros, 64-bit big-endian bit length — one tail block,
  // or two when fewer than 8 length bytes fit after the 0x80.
  const std::size_t rem = data.size() - whole * 64;
  std::uint8_t tail[128] = {};
  if (rem > 0) std::memcpy(tail, data.data() + whole * 64, rem);
  tail[rem] = 0x80;
  const std::size_t tail_len = rem < 56 ? 64 : 128;
  const std::uint64_t bit_len =
      static_cast<std::uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_len - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bit_len >> (56 - i * 8));
  }
  compress_blocks(state, tail, tail_len / 64);

  Sha1Digest out;
  for (int i = 0; i < 5; ++i) {
    out[static_cast<std::size_t>(i) * 4] =
        static_cast<std::uint8_t>(state[i] >> 24);
    out[static_cast<std::size_t>(i) * 4 + 1] =
        static_cast<std::uint8_t>(state[i] >> 16);
    out[static_cast<std::size_t>(i) * 4 + 2] =
        static_cast<std::uint8_t>(state[i] >> 8);
    out[static_cast<std::size_t>(i) * 4 + 3] =
        static_cast<std::uint8_t>(state[i]);
  }
  return out;
}

#endif  // HS_SHA1_NI_COMPILED

}  // namespace

bool sha1_ni_available() {
  static const bool available = resolve_available();
  return available;
}

Sha1Digest sha1_hash_ni(std::span<const std::uint8_t> data) {
#if HS_SHA1_NI_COMPILED
  if (sha1_ni_available()) return hash_ni_impl(data);
#endif
  return Sha1::hash(data);
}

Sha1Digest sha1_hash_fast(std::span<const std::uint8_t> data) {
  if (active_level() > Level::kScalar && sha1_ni_available()) {
    return sha1_hash_ni(data);
  }
  return Sha1::hash(data);
}

}  // namespace hs::kernels::simd
