// Width-generic LZSS match search, instantiated by the SSE4.2 (16-byte)
// and AVX2 (32-byte) translation units with their vector traits. Only
// those TUs may include this header — it emits intrinsics for whatever
// ISA the including file is compiled with.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#include "kernels/simd/lzss_match.hpp"

namespace hs::kernels::simd::detail {

// Traits contract (byte vectors):
//   static constexpr unsigned kWidth;                 // bytes per compare
//   static unsigned eq_mask(const std::uint8_t* p, std::uint8_t b);
//       bit k set iff p[k] == b (unaligned load, full width)
//   static unsigned neq_mask(const std::uint8_t* a, const std::uint8_t* b);
//       bit k set iff a[k] != b[k]; zero means all kWidth bytes equal
template <typename T>
std::size_t extend_match(const std::uint8_t* base, std::size_t cand,
                         std::size_t pos, std::size_t limit) {
  // First byte already matched. In bounds while len + kWidth <= limit:
  // cand + len + kWidth <= cand + limit <= pos and
  // pos + len + kWidth <= pos + limit <= block_end <= input.size().
  std::size_t len = 1;
  while (len + T::kWidth <= limit) {
    const unsigned neq = T::neq_mask(base + cand + len, base + pos + len);
    if (neq != 0) return len + std::countr_zero(neq);
    len += T::kWidth;
  }
  if constexpr (std::endian::native == std::endian::little) {
    while (len + 8 <= limit) {
      std::uint64_t a, b;
      std::memcpy(&a, base + cand + len, 8);
      std::memcpy(&b, base + pos + len, 8);
      if (a != b) {
        return len + (static_cast<std::size_t>(std::countr_zero(a ^ b)) >> 3);
      }
      len += 8;
    }
  }
  while (len < limit && base[cand + len] == base[pos + len]) ++len;
  return len;
}

template <typename T>
LzssMatch longest_match_wide(std::span<const std::uint8_t> input,
                             std::size_t block_start, std::size_t block_end,
                             std::size_t pos, const LzssParams& params) {
  assert(params.valid());
  assert(pos >= block_start && pos < block_end && block_end <= input.size());

  const std::size_t search_begin =
      pos - block_start > params.window_size ? pos - params.window_size
                                             : block_start;
  const std::size_t lookahead_limit =
      std::min<std::size_t>(params.max_match, block_end - pos);
  // No candidate can reach min_match: the scalar walk would cap every
  // length at lookahead_limit and discard the final best the same way.
  if (lookahead_limit < params.min_match) return LzssMatch{};

  LzssMatch best;
  const std::uint8_t* base = input.data();
  const std::uint8_t first = base[pos];
  // Any candidate in the *returned* match (length >= min_match) matches at
  // least its first min(min_match, 3) bytes, so those equality rows can
  // prefilter whole chunks; candidates capped below min_match only ever
  // set an internal best that the final filter discards, and skipping them
  // can only make later pruning weaker, never change the result. The
  // lookahead check above guarantees base[pos+1] / base[pos+2] are inside
  // the block.
  const bool deep = params.min_match >= 3;
  const std::uint8_t second = base[pos + 1];
  const std::uint8_t third = deep ? base[pos + 2] : 0;
  std::size_t cur = search_begin;
  while (cur < pos) {
    const std::size_t span_left = pos - cur;
    unsigned m;
    std::size_t step;
    if (span_left >= T::kWidth) {
      // cur + kWidth <= pos <= input.size(): full-width load is in bounds
      // and every bit is a real candidate (< pos).
      m = T::eq_mask(base + cur, first);
      // Reads below stay in bounds: the highest index touched is
      // cur + off + kWidth - 1 <= pos + off - 1, and every offset used is
      // < lookahead_limit, so pos + off - 1 < block_end <= input.size().
      if (m != 0) m &= T::eq_mask(base + cur + 1, second);
      if (m != 0 && deep) m &= T::eq_mask(base + cur + 2, third);
      // Would-extend prefilter: any candidate that strictly beats `best`
      // must also match at offset best.length, so AND in that equality
      // row. Sound even though `best` can grow within the chunk — a
      // candidate failing at the chunk-entry best.length can't beat the
      // (only larger) current best either.
      if (m != 0 && best.length != 0) {
        m &= T::eq_mask(base + cur + best.length, base[pos + best.length]);
      }
      step = T::kWidth;
    } else {
      m = 0;
      for (std::size_t k = 0; k < span_left; ++k) {
        m |= static_cast<unsigned>(base[cur + k] == first) << k;
      }
      step = span_left;
    }
    while (m != 0) {
      const std::size_t cand =
          cur + static_cast<std::size_t>(std::countr_zero(m));
      m &= m - 1;
      const std::size_t limit = std::min(lookahead_limit, pos - cand);
      // Prunes that cannot change the (max length, oldest) result: the
      // candidate's cap can't strictly beat best, or the byte that any
      // longer-than-best match must share already differs. Reads are in
      // bounds: best.length < limit <= pos - cand and < block_end - pos.
      if (limit <= best.length) continue;
      if (best.length != 0 &&
          base[cand + best.length] != base[pos + best.length]) {
        continue;
      }
      const std::size_t len = extend_match<T>(base, cand, pos, limit);
      if (len > best.length) {
        best.length = static_cast<std::uint16_t>(len);
        best.offset = static_cast<std::uint16_t>(pos - cand);
        if (len == lookahead_limit) goto done;  // cannot do better
      }
    }
    cur += step;
  }
done:
  if (best.length < params.min_match) return LzssMatch{};
  return best;
}

}  // namespace hs::kernels::simd::detail
