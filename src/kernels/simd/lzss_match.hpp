// Vectorized LZSS match finder (DESIGN.md §4g).
//
// The scalar FindMatch body walks candidates with memchr and extends
// byte/word-wise. The wide bodies keep the exact same result contract —
// (max length, oldest candidate on ties), early exit at the lookahead
// limit — but scan 16/32 candidate first-bytes per compare (vector
// equality + movemask) and extend matches 16/32 bytes per compare. Two
// result-preserving prunes make the big win: a candidate is skipped when
// its length cap can't strictly beat the current best, or when the byte
// that WOULD extend the best (cand[best.length] vs pos[best.length])
// already mismatches. Encoded streams stay bit-identical to scalar
// (asserted by tests/simd_dispatch_test.cpp and the golden archives).
#pragma once

#include <cstddef>
#include <span>

#include "kernels/lzss.hpp"
#include "kernels/simd/dispatch.hpp"

namespace hs::kernels::simd {

/// Per-level match search; same contract as kernels::lzss_longest_match
/// (which dispatches here on active_level()). Levels above the host's
/// support are clamped.
LzssMatch lzss_longest_match_at(Level level,
                                std::span<const std::uint8_t> input,
                                std::size_t block_start, std::size_t block_end,
                                std::size_t pos, const LzssParams& params);

// Per-level bodies. The scalar body is the seed reference implementation;
// SSE4.2/AVX2 fall back to it when built without x86 intrinsics.
LzssMatch lzss_longest_match_scalar(std::span<const std::uint8_t> input,
                                    std::size_t block_start,
                                    std::size_t block_end, std::size_t pos,
                                    const LzssParams& params);
LzssMatch lzss_longest_match_sse42(std::span<const std::uint8_t> input,
                                   std::size_t block_start,
                                   std::size_t block_end, std::size_t pos,
                                   const LzssParams& params);
LzssMatch lzss_longest_match_avx2(std::span<const std::uint8_t> input,
                                  std::size_t block_start,
                                  std::size_t block_end, std::size_t pos,
                                  const LzssParams& params);

/// Common-prefix length of `a` and `b`, up to `limit` bytes, comparing
/// from byte 0 (hash-chain candidates can collide, so nothing is assumed
/// matched). Every level returns the identical length; the wide bodies
/// compare 16/32 bytes per step. This is the extend step of the chain
/// matcher (lzss_chain.hpp).
using MatchCompareFn = std::size_t (*)(const std::uint8_t* a,
                                       const std::uint8_t* b,
                                       std::size_t limit);

std::size_t match_common_prefix_scalar(const std::uint8_t* a,
                                       const std::uint8_t* b,
                                       std::size_t limit);
std::size_t match_common_prefix_sse42(const std::uint8_t* a,
                                      const std::uint8_t* b,
                                      std::size_t limit);
std::size_t match_common_prefix_avx2(const std::uint8_t* a,
                                     const std::uint8_t* b,
                                     std::size_t limit);

/// Compare body for `level`; levels above the host's support are clamped.
MatchCompareFn match_compare_fn(Level level);

}  // namespace hs::kernels::simd
