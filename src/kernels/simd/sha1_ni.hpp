// Single-stream SHA-1 via the x86 SHA extensions (SHA-NI).
//
// The multi-buffer engine (sha1_mb.hpp) wins when there are many
// independent messages — the dedup hash farm. The container's *input
// digest* is the opposite shape: one message the size of the whole input,
// hashed once at writer.finish(). A single scalar stream runs near
// 0.17 GB/s and was a third of archive_sequential's end-to-end runtime
// (EXPERIMENTS.md); the SHA1RNDS4/SHA1NEXTE/SHA1MSG* instructions run the
// same serial chain an order of magnitude faster.
//
// SHA-NI is a CPUID feature orthogonal to the SSE4.2/AVX2 dispatch tiers
// (dispatch.hpp), so it gets its own availability probe rather than a new
// Level: every SHA-capable part also executes the SSE4.2 bodies, and the
// digest is bit-identical by construction (asserted against the scalar
// context in tests/simd_dispatch_test.cpp), so there is nothing for the
// level matrix to differentiate.
#pragma once

#include <span>

#include "kernels/sha1.hpp"

namespace hs::kernels::simd {

/// True when this host executes the SHA extensions and the HS_SHA1_NI
/// environment override does not disable them (HS_SHA1_NI=off|0 forces the
/// scalar context; =on|1 skips the CPUID check — useful only under
/// emulation). Resolved once and cached. Always false off x86.
[[nodiscard]] bool sha1_ni_available();

/// One-shot digest computed with the SHA extensions; bit-identical to
/// Sha1::hash for every input. Falls back to the scalar context when
/// sha1_ni_available() is false, so it is always safe to call.
Sha1Digest sha1_hash_ni(std::span<const std::uint8_t> data);

/// Dispatch entry for one-shot single-stream hashing: SHA-NI when the host
/// has it AND the active SIMD level is not forced to scalar (HS_SIMD=scalar
/// must mean an all-scalar run for A/B measurements), else Sha1::hash.
Sha1Digest sha1_hash_fast(std::span<const std::uint8_t> data);

}  // namespace hs::kernels::simd
