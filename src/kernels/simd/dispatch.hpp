// Runtime SIMD dispatch for the data-parallel CPU kernels (DESIGN.md §4g).
//
// The dedup hot kernels (multi-buffer SHA-1, the rabin lane scanner, the
// LZSS match finder) each ship a scalar, an SSE4.2 and an AVX2 body. The
// level is chosen ONCE at process startup from CPUID and cached; every
// kernel call then reads one relaxed atomic — no per-call feature tests.
//
// Override for testing and A/B runs: HS_SIMD=scalar|sse42|avx2 in the
// environment. A requested level the host cannot execute is clamped down
// to the best supported one (so HS_SIMD=avx2 on an SSE-only box runs the
// SSE4.2 bodies rather than faulting) — the differential tests that need
// exact-level coverage use supports()/GTEST_SKIP instead.
//
// Every level is bit-identical by construction: the dispatch equivalence
// suite (tests/simd_dispatch_test.cpp) asserts SHA-1 digests, rabin cut
// positions and LZSS encoded streams match the scalar bodies for all
// lengths 0..512 plus large buffers, and CI re-runs the dedup golden
// archives under each HS_SIMD level.
#pragma once

#include <string_view>

namespace hs::kernels::simd {

/// Instruction-set tiers the kernels are compiled for, in ascending order
/// (comparisons rely on the ordering).
enum class Level : int {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
};

/// True when this host can execute `level`'s bodies.
[[nodiscard]] bool supports(Level level);

/// Best level this host supports (ignores HS_SIMD).
[[nodiscard]] Level best_supported();

/// The level the dispatched kernels run at: min(best_supported, HS_SIMD
/// override if any). Resolved once on first call, then cached.
[[nodiscard]] Level active_level();

/// Test hook: forces the active level (clamped to best_supported). Passing
/// the current active level is a no-op; tests restore the previous value.
void set_active_level(Level level);

/// "scalar" / "sse42" / "avx2".
[[nodiscard]] std::string_view level_name(Level level);

/// Parses a level name; false on unknown names (value untouched).
bool parse_level(std::string_view name, Level& out);

}  // namespace hs::kernels::simd
