// Multi-lane Rabin fingerprint scanner (DESIGN.md §4g).
//
// The scalar chunker is a loop-carried dependency chain: every fingerprint
// update waits on the previous multiply. But once a block is at least
// `window` bytes old (and min_block >= window is asserted by Rabin), the
// rolling fingerprint equals the pure hash of the trailing `window` bytes —
// position-independent and free of the boundary-reset history. So the scan
// splits into two phases:
//
//   1. Match bitmap (data-parallel): the buffer is cut into L stripes, one
//      per 64-bit SIMD lane; each lane warms up on `window-1` bytes of left
//      context and then rolls independently, recording a bit wherever
//      (fp & mask) == magic. Lanes share no state, so the multiply latency
//      is hidden L-ways.
//   2. Reconciliation (sequential, cheap): a walk over the bitmap replays
//      the boundary decisions — first set bit in [start+min_block-1,
//      start+max_block-1) cuts, else a forced cut at max_block — touching
//      one bit-scan per block instead of one multiply per byte.
//
// Because every decision the scalar walk takes happens where its
// fingerprint is position-independent, the reconciled cut list is
// bit-identical to Rabin::chunk_boundaries_into at every level (asserted
// by tests/simd_dispatch_test.cpp and the golden archive suite).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "kernels/rabin.hpp"
#include "kernels/simd/dispatch.hpp"

namespace hs::kernels::simd {

/// Reusable scratch: the per-position match bitmap plus per-lane staging.
/// Warmed callers reallocate nothing.
struct RabinScratch {
  std::vector<std::uint64_t> bits;
};

/// Drop-in replacement for Rabin::chunk_boundaries_into, dispatched on
/// rabin_effective_level(). Output (including the leading 0 and empty-input
/// behaviour) is bit-identical to the scalar walk.
void rabin_boundaries(const Rabin& rabin, std::span<const std::uint8_t> data,
                      std::vector<std::uint32_t>& starts,
                      RabinScratch* scratch = nullptr);

/// The level rabin_boundaries actually runs at: active_level(), except that
/// kSse42 demotes to kScalar when a one-shot startup probe measures the
/// SSE4.2 bitmap body slower than the scalar walk on this host. SSE4.2 has
/// no 64-bit lane multiply, so its two lanes are stitched from 32-bit
/// products — on some cores that emulation loses to the scalar rolling loop
/// (BENCH_micro.json once recorded 0.50 GB/s sse42 vs 0.92 scalar), and a
/// "wider" kernel that is measurably slower should not be dispatched to.
/// AVX2 is never probed (true 64-bit lanes, always ahead). Explicit-level
/// callers (rabin_boundaries_at) bypass the demotion — tests and the kernel
/// bench must still exercise the real SSE4.2 body. HS_RABIN_SSE42=on|off
/// overrides the probe for triage.
[[nodiscard]] Level rabin_effective_level();

/// Explicit-level entry (tests / kernel bench); levels above the host's
/// support are clamped. kScalar runs the original rolling walk.
void rabin_boundaries_at(Level level, const Rabin& rabin,
                         std::span<const std::uint8_t> data,
                         std::vector<std::uint32_t>& starts,
                         RabinScratch* scratch = nullptr);

// Phase 1 bodies: fill `bits` ((data.size()+63)/64 words, zeroed by the
// callee) with the per-position match bitmap. Exposed for the kernel
// bench; SSE4.2/AVX2 fall back to scalar without x86 intrinsics.
void rabin_match_bits_scalar(const Rabin& rabin,
                             std::span<const std::uint8_t> data,
                             std::uint64_t* bits);
void rabin_match_bits_sse42(const Rabin& rabin,
                            std::span<const std::uint8_t> data,
                            std::uint64_t* bits);
void rabin_match_bits_avx2(const Rabin& rabin,
                           std::span<const std::uint8_t> data,
                           std::uint64_t* bits);

}  // namespace hs::kernels::simd
