// Multi-buffer SHA-1 — the lane engine of the dedup hash stage.
//
// The paper's GPU refactor hashes one content block per GPU thread; the
// CPU analogue is multi-buffer hashing: W independent messages advance in
// lockstep, one 32-bit SIMD lane each (W = 4 on SSE4.2, 8 on AVX2), so the
// 80-round compression runs once per *group* of blocks instead of once per
// block. Messages are grouped longest-first so lanes retire together;
// lanes whose message ran out are masked out of the state update and the
// digest is bit-identical to kernels::Sha1 for every input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kernels/sha1.hpp"
#include "kernels/simd/dispatch.hpp"

namespace hs::kernels::simd {

/// One independent message: input bytes plus where the digest goes. POD so
/// callers build job arrays straight from their block tables.
struct Sha1Job {
  const std::uint8_t* data = nullptr;
  std::size_t len = 0;
  Sha1Digest* out = nullptr;
};

/// Reusable scratch (the longest-first ordering index). Grows to the
/// largest batch and keeps its capacity, so a warmed caller performs no
/// heap allocation per call. Pass nullptr for a one-shot local.
struct Sha1Scratch {
  std::vector<std::uint32_t> order;
};

/// Hashes every job: *jobs[i].out = Sha1::hash({jobs[i].data, jobs[i].len}).
/// Dispatched on active_level().
void sha1_many(const Sha1Job* jobs, std::size_t count,
               Sha1Scratch* scratch = nullptr);

/// Explicit-level entry (differential tests / kernel bench); a level above
/// the host's support is clamped down.
void sha1_many_at(Level level, const Sha1Job* jobs, std::size_t count,
                  Sha1Scratch* scratch = nullptr);

// Per-level bodies. The SSE4.2/AVX2 translation units fall back to the
// scalar body when built without x86 intrinsics.
void sha1_many_scalar(const Sha1Job* jobs, std::size_t count,
                      Sha1Scratch* scratch);
void sha1_many_sse42(const Sha1Job* jobs, std::size_t count,
                     Sha1Scratch* scratch);
void sha1_many_avx2(const Sha1Job* jobs, std::size_t count,
                    Sha1Scratch* scratch);

}  // namespace hs::kernels::simd
