// 4-lane multi-buffer SHA-1 (SSE4.2). Compiled with -msse4.2 on x86;
// forwards to the scalar body elsewhere.
#include "kernels/simd/sha1_mb.hpp"

#if defined(__SSE4_2__)

#include <immintrin.h>

#include "kernels/simd/sha1_mb_wide.hpp"

namespace hs::kernels::simd {
namespace {

struct SseTraits {
  static constexpr int kLanes = 4;
  using vec = __m128i;
  static vec load(const std::uint32_t* p) {
    return _mm_load_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void store(std::uint32_t* p, vec v) {
    _mm_store_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static vec set1(std::uint32_t v) {
    return _mm_set1_epi32(static_cast<int>(v));
  }
  static vec add(vec a, vec b) { return _mm_add_epi32(a, b); }
  static vec and_(vec a, vec b) { return _mm_and_si128(a, b); }
  static vec or_(vec a, vec b) { return _mm_or_si128(a, b); }
  static vec xor_(vec a, vec b) { return _mm_xor_si128(a, b); }
  template <int N>
  static vec rotl(vec v) {
    return _mm_or_si128(_mm_slli_epi32(v, N), _mm_srli_epi32(v, 32 - N));
  }
};

}  // namespace

void sha1_many_sse42(const Sha1Job* jobs, std::size_t count,
                     Sha1Scratch* scratch) {
  detail::sha1_many_wide<SseTraits>(jobs, count, scratch);
}

}  // namespace hs::kernels::simd

#else  // !__SSE4_2__

namespace hs::kernels::simd {
void sha1_many_sse42(const Sha1Job* jobs, std::size_t count,
                     Sha1Scratch* scratch) {
  sha1_many_scalar(jobs, count, scratch);
}
}  // namespace hs::kernels::simd

#endif
