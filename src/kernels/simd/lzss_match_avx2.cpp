// 32-byte LZSS match search (AVX2). Compiled with -mavx2 on x86; forwards
// to the SSE4.2 body (itself falling back to scalar) elsewhere.
#include "kernels/simd/lzss_match.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include "kernels/simd/lzss_match_wide.hpp"

namespace hs::kernels::simd {
namespace {

struct Avx2Traits {
  static constexpr unsigned kWidth = 32;
  static unsigned eq_mask(const std::uint8_t* p, std::uint8_t b) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    return static_cast<unsigned>(_mm256_movemask_epi8(
        _mm256_cmpeq_epi8(v, _mm256_set1_epi8(static_cast<char>(b)))));
  }
  static unsigned neq_mask(const std::uint8_t* a, const std::uint8_t* b) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    return ~static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
  }
};

}  // namespace

LzssMatch lzss_longest_match_avx2(std::span<const std::uint8_t> input,
                                  std::size_t block_start,
                                  std::size_t block_end, std::size_t pos,
                                  const LzssParams& params) {
  return detail::longest_match_wide<Avx2Traits>(input, block_start, block_end,
                                                pos, params);
}

std::size_t match_common_prefix_avx2(const std::uint8_t* a,
                                     const std::uint8_t* b,
                                     std::size_t limit) {
  std::size_t len = 0;
  while (len + Avx2Traits::kWidth <= limit) {
    const unsigned neq = Avx2Traits::neq_mask(a + len, b + len);
    if (neq != 0) return len + std::countr_zero(neq);
    len += Avx2Traits::kWidth;
  }
  return len + match_common_prefix_sse42(a + len, b + len, limit - len);
}

}  // namespace hs::kernels::simd

#else  // !__AVX2__

namespace hs::kernels::simd {
LzssMatch lzss_longest_match_avx2(std::span<const std::uint8_t> input,
                                  std::size_t block_start,
                                  std::size_t block_end, std::size_t pos,
                                  const LzssParams& params) {
  return lzss_longest_match_sse42(input, block_start, block_end, pos, params);
}
std::size_t match_common_prefix_avx2(const std::uint8_t* a,
                                     const std::uint8_t* b,
                                     std::size_t limit) {
  return match_common_prefix_sse42(a, b, limit);
}
}  // namespace hs::kernels::simd

#endif
