// 4-lane Rabin match-bitmap kernel (AVX2). Compiled with -mavx2 on x86;
// forwards to the SSE4.2 body (itself falling back to scalar) elsewhere.
#include "kernels/simd/rabin_lanes.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include "kernels/simd/rabin_lanes_wide.hpp"

namespace hs::kernels::simd {
namespace {

struct Avx2Traits {
  static constexpr int kLanes = 4;
  using vec = __m256i;
  static vec from_lanes(const std::uint64_t* u) {
    return _mm256_set_epi64x(
        static_cast<long long>(u[3]), static_cast<long long>(u[2]),
        static_cast<long long>(u[1]), static_cast<long long>(u[0]));
  }
  static vec load_updates(const std::uint64_t* push, const std::uint64_t* pop,
                          const std::uint8_t* d, const std::size_t* base,
                          std::size_t s, std::uint32_t window) {
    const auto u = [&](int l) {
      const std::size_t i = base[l] + s;
      return static_cast<long long>(push[d[i]] - pop[d[i - window]]);
    };
    return _mm256_set_epi64x(u(3), u(2), u(1), u(0));
  }
  static vec set1(std::uint64_t v) {
    return _mm256_set1_epi64x(static_cast<long long>(v));
  }
  static vec add64(vec a, vec b) { return _mm256_add_epi64(a, b); }
  static vec and_(vec a, vec b) { return _mm256_and_si256(a, b); }
  // a * kMult mod 2^64 per lane; vpmullq is AVX-512, so compose it from
  // 32x32->64 partial products: lo*lo + ((lo*hi + hi*lo) << 32).
  static vec mul_k(vec a) {
    const vec kl = set1(Rabin::kMult & 0xFFFFFFFFull);
    const vec kh = set1(Rabin::kMult >> 32);
    const vec lo = _mm256_mul_epu32(a, kl);
    const vec cross =
        _mm256_add_epi64(_mm256_mul_epu32(a, kh),
                         _mm256_mul_epu32(_mm256_srli_epi64(a, 32), kl));
    return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
  }
  static unsigned eq64_mask(vec a, vec b) {
    return static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(a, b))));
  }
};

}  // namespace

void rabin_match_bits_avx2(const Rabin& rabin,
                           std::span<const std::uint8_t> data,
                           std::uint64_t* bits) {
  detail::rabin_match_bits_wide<Avx2Traits>(rabin, data, bits);
}

}  // namespace hs::kernels::simd

#else  // !__AVX2__

namespace hs::kernels::simd {
void rabin_match_bits_avx2(const Rabin& rabin,
                           std::span<const std::uint8_t> data,
                           std::uint64_t* bits) {
  rabin_match_bits_sse42(rabin, data, bits);
}
}  // namespace hs::kernels::simd

#endif
