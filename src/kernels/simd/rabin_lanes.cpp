#include "kernels/simd/rabin_lanes.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string_view>

namespace hs::kernels::simd {

namespace {

constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

/// First set bit in [lo, limit), or kNpos.
std::size_t find_first_bit(const std::uint64_t* bits, std::size_t lo,
                           std::size_t limit) {
  std::size_t q = lo >> 6;
  const std::size_t qend = (limit + 63) >> 6;
  std::uint64_t w = bits[q] & (~0ull << (lo & 63));
  while (true) {
    if (w != 0) {
      const std::size_t i = (q << 6) + static_cast<std::size_t>(
                                           std::countr_zero(w));
      return i < limit ? i : kNpos;
    }
    if (++q >= qend) return kNpos;
    w = bits[q];
  }
}

/// Replays the scalar walk's boundary decisions over the match bitmap:
/// the first matching position at least min_block into the block cuts
/// (cut index must stay < n, like the scalar walk's `i < n` guard), else
/// a forced cut lands at max_block. This is exact because every decision
/// happens >= window bytes past the block start, where the scalar
/// fingerprint is position-independent (see rabin_lanes.hpp).
void reconcile(const std::uint64_t* bits, std::size_t n,
               const RabinParams& p, std::vector<std::uint32_t>& starts) {
  starts.clear();
  if (n == 0) return;
  starts.reserve(n / p.min_block + 1);
  starts.push_back(0);
  const std::size_t min_block = p.min_block;
  const std::size_t max_block = p.max_block;
  std::size_t b = 0;
  while (true) {
    std::size_t cut = 0;  // 0 == none; a real cut is never 0
    const std::size_t lo = b + min_block - 1;
    // Content cuts fire for block lengths [min_block, max_block-1]; the
    // forced cut takes precedence at exactly max_block.
    const std::size_t limit = std::min(b + max_block - 1, n - 1);
    if (lo < limit) {
      const std::size_t i = find_first_bit(bits, lo, limit);
      if (i != kNpos) cut = i + 1;
    }
    if (cut == 0 && b + max_block < n) cut = b + max_block;
    if (cut == 0) break;
    starts.push_back(static_cast<std::uint32_t>(cut));
    b = cut;
  }
}

/// Benchmark-or-skip probe for the SSE4.2 body: times both phase-1 kernels
/// over a synthetic buffer and keeps SSE4.2 only if it actually wins. Runs
/// once per process, on the first dispatched rabin_boundaries call that
/// would pick kSse42 (~1 ms); the verdict is cached for the process
/// lifetime. Correctness is never at stake — both bodies are bit-identical
/// — only which one gets the hot path.
bool sse42_measured_faster() {
  constexpr std::size_t kProbeBytes = 256 * 1024;
  std::vector<std::uint8_t> data(kProbeBytes);
  std::uint64_t x = 0x9E3779B97F4A7C15ull;  // deterministic splitmix fill
  for (std::size_t i = 0; i < kProbeBytes; ++i) {
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    data[i] = static_cast<std::uint8_t>(z ^ (z >> 31));
  }
  const Rabin rabin{};
  std::vector<std::uint64_t> bits((kProbeBytes + 63) / 64);
  using Body = void (*)(const Rabin&, std::span<const std::uint8_t>,
                        std::uint64_t*);
  const auto best_ns = [&](Body body) {
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (int rep = 0; rep < 4; ++rep) {  // rep 0 warms caches, still timed
      const auto t0 = std::chrono::steady_clock::now();
      body(rabin, data, bits.data());
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, static_cast<std::uint64_t>(
                                std::chrono::duration_cast<
                                    std::chrono::nanoseconds>(t1 - t0)
                                    .count()));
    }
    return best;
  };
  const std::uint64_t scalar_ns = best_ns(&rabin_match_bits_scalar);
  const std::uint64_t sse42_ns = best_ns(&rabin_match_bits_sse42);
  return sse42_ns < scalar_ns;
}

bool sse42_profitable() {
  static const bool profitable = [] {
    const char* env = std::getenv("HS_RABIN_SSE42");
    if (env != nullptr) {
      const std::string_view v = env;
      if (v == "on" || v == "1") return true;
      if (v == "off" || v == "0") return false;
      // anything else (including "probe") falls through to the measurement
    }
    return sse42_measured_faster();
  }();
  return profitable;
}

}  // namespace

void rabin_match_bits_scalar(const Rabin& rabin,
                             std::span<const std::uint8_t> data,
                             std::uint64_t* bits) {
  const RabinParams& p = rabin.params();
  const std::size_t n = data.size();
  std::memset(bits, 0, ((n + 63) / 64) * sizeof(std::uint64_t));
  const std::uint32_t window = p.window;
  if (n < window) return;
  const std::uint64_t* push = rabin.push_table();
  const std::uint64_t* pop = rabin.pop_table();
  const std::uint64_t mask = p.mask;
  const std::uint64_t magic = p.magic;
  const std::uint8_t* d = data.data();
  std::uint64_t fp = 0;
  for (std::size_t i = 0; i < n; ++i) {
    fp = fp * Rabin::kMult + push[d[i]];
    if (i >= window) fp -= pop[d[i - window]];
    if (i >= window - 1 && (fp & mask) == magic) {
      bits[i >> 6] |= 1ull << (i & 63);
    }
  }
}

void rabin_boundaries_at(Level level, const Rabin& rabin,
                         std::span<const std::uint8_t> data,
                         std::vector<std::uint32_t>& starts,
                         RabinScratch* scratch) {
  if (level > best_supported()) level = best_supported();
  // Below ~two blocks the bitmap pass cannot win; the scalar walk also
  // serves as the kScalar reference body.
  if (level == Level::kScalar || data.size() < rabin.params().min_block * 2) {
    rabin.chunk_boundaries_into(data, starts);
    return;
  }
  RabinScratch local;
  RabinScratch& s = scratch != nullptr ? *scratch : local;
  s.bits.resize((data.size() + 63) / 64);
  switch (level) {
    case Level::kAvx2:
      rabin_match_bits_avx2(rabin, data, s.bits.data());
      break;
    case Level::kSse42:
      rabin_match_bits_sse42(rabin, data, s.bits.data());
      break;
    case Level::kScalar:
      rabin_match_bits_scalar(rabin, data, s.bits.data());
      break;
  }
  reconcile(s.bits.data(), data.size(), rabin.params(), starts);
}

Level rabin_effective_level() {
  const Level level = active_level();
  if (level == Level::kSse42 && !sse42_profitable()) return Level::kScalar;
  return level;
}

void rabin_boundaries(const Rabin& rabin, std::span<const std::uint8_t> data,
                      std::vector<std::uint32_t>& starts,
                      RabinScratch* scratch) {
  rabin_boundaries_at(rabin_effective_level(), rabin, data, starts, scratch);
}

}  // namespace hs::kernels::simd
