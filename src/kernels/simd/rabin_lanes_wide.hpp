// Width-generic Rabin match-bitmap kernel, instantiated by the SSE4.2
// (2-lane) and AVX2 (4-lane) translation units with their vector traits.
// Only those TUs may include this header — it emits intrinsics for
// whatever ISA the including file is compiled with.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>

#include "kernels/simd/rabin_lanes.hpp"

namespace hs::kernels::simd::detail {

/// ORs a 64-bit word of match bits into the bitmap at an arbitrary bit
/// offset. `nwords` guards the straddling high write at the buffer end
/// (the spilled bits are beyond position n-1 and therefore zero).
inline void or_word_at(std::uint64_t* bits, std::size_t nwords,
                       std::size_t bitpos, std::uint64_t word) {
  const std::size_t q = bitpos >> 6;
  const std::size_t r = bitpos & 63;
  bits[q] |= word << r;
  if (r != 0 && q + 1 < nwords) bits[q + 1] |= word >> (64 - r);
}

// Traits contract (64-bit lanes):
//   static constexpr int kLanes;
//   using vec = ...;
//   static vec from_lanes(const std::uint64_t*);      // per-lane values
//   static vec load_updates(const std::uint64_t* push,
//                           const std::uint64_t* pop,
//                           const std::uint8_t* d, const std::size_t* base,
//                           std::size_t s, std::uint32_t window);
//       per-lane push[d[base[l]+s]] - pop[d[base[l]+s-window]], fed to the
//       set/insert intrinsics as register values — routing them through a
//       stack array costs a store-forwarding stall every iteration
//   static vec set1(std::uint64_t);
//   static vec add64(vec, vec);
//   static vec and_(vec, vec);
//   static vec mul_k(vec);                            // lane * Rabin::kMult
//   static unsigned eq64_mask(vec, vec);              // 1 bit per lane
template <typename T>
void rabin_match_bits_wide(const Rabin& rabin,
                           std::span<const std::uint8_t> data,
                           std::uint64_t* bits) {
  using vec = typename T::vec;
  constexpr int L = T::kLanes;
  const RabinParams& p = rabin.params();
  const std::size_t n = data.size();
  const std::size_t nwords = (n + 63) / 64;
  const std::uint32_t window = p.window;

  // Stripes shorter than this lose the warm-up cost; let scalar run them.
  constexpr std::size_t kMinStripe = 512;
  if (n < window ||
      (n - (window - 1)) / static_cast<std::size_t>(L) < kMinStripe) {
    rabin_match_bits_scalar(rabin, data, bits);
    return;
  }
  std::memset(bits, 0, nwords * sizeof(std::uint64_t));

  const std::uint64_t* push = rabin.push_table();
  const std::uint64_t* pop = rabin.pop_table();
  const std::uint8_t* d = data.data();
  const std::uint64_t mask = p.mask;
  const std::uint64_t magic = p.magic;

  // Positions window-1 .. n-1 carry a full window. Lane l owns the `per`
  // positions starting at base[l]; the remainder past the last lane is
  // finished scalar below.
  const std::size_t total = n - (window - 1);
  const std::size_t per = total / static_cast<std::size_t>(L);
  std::size_t base[L];
  std::uint64_t warm[L];
  for (int l = 0; l < L; ++l) {
    base[l] = (window - 1) + static_cast<std::size_t>(l) * per;
    // Full-window warm-up so the first vector step can roll normally.
    warm[l] = rabin.window_fingerprint(
        data.subspan(base[l] - (window - 1), window));
    if ((warm[l] & mask) == magic) {
      bits[base[l] >> 6] |= 1ull << (base[l] & 63);
    }
  }

  const vec vmask = T::set1(mask);
  const vec vmagic = T::set1(magic);
  vec vfp = T::from_lanes(warm);

  std::uint64_t acc[L] = {};
  std::size_t chunk_start = 1;  // step index where `acc` bit 0 lives
  for (std::size_t s = 1; s < per; ++s) {
    vfp = T::add64(T::mul_k(vfp),
                   T::load_updates(push, pop, d, base, s, window));
    const unsigned m = T::eq64_mask(T::and_(vfp, vmask), vmagic);
    const std::size_t off = s - chunk_start;
    if (m != 0) {
      for (int l = 0; l < L; ++l) {
        acc[l] |= static_cast<std::uint64_t>((m >> l) & 1u) << off;
      }
    }
    if (off == 63) {
      for (int l = 0; l < L; ++l) {
        if (acc[l] != 0) or_word_at(bits, nwords, base[l] + chunk_start, acc[l]);
        acc[l] = 0;
      }
      chunk_start = s + 1;
    }
  }
  if (chunk_start < per) {
    for (int l = 0; l < L; ++l) {
      if (acc[l] != 0) or_word_at(bits, nwords, base[l] + chunk_start, acc[l]);
    }
  }

  // Scalar tail: positions past the last full stripe.
  std::size_t i = (window - 1) + per * static_cast<std::size_t>(L);
  if (i < n) {
    std::uint64_t fp =
        rabin.window_fingerprint(data.subspan(i - (window - 1), window));
    while (true) {
      if ((fp & mask) == magic) bits[i >> 6] |= 1ull << (i & 63);
      if (++i >= n) break;
      fp = fp * Rabin::kMult + push[d[i]] - pop[d[i - window]];
    }
  }
}

}  // namespace hs::kernels::simd::detail
