#include "kernels/simd/lzss_chain.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>

namespace hs::kernels::simd {

void LzssChainMatcher::reset(std::span<const std::uint8_t> input,
                             const LzssParams& params, Level level) {
  assert(params.valid());
  assert(input.size() <=
         static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max()));
  base_ = input.data();
  size_ = input.size();
  params_ = params;
  compare_ = match_compare_fn(level);
  const std::uint32_t slots = std::bit_ceil(params.window_size);
  prev_mask_ = slots - 1;
  if (head_.empty()) head_.assign(std::size_t{1} << kHashBits, 0);
  if (prev_.size() < slots) prev_.assign(slots, kNone);
  if (++generation_ == 0) {
    // Tag wrap (once per 2^32 resets): stale tags could alias the new
    // generation, so clear for real this once.
    std::fill(head_.begin(), head_.end(), std::uint64_t{0});
    generation_ = 1;
  }
}

}  // namespace hs::kernels::simd
