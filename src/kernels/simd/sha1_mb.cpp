#include "kernels/simd/sha1_mb.hpp"

#include <span>

namespace hs::kernels::simd {

void sha1_many_scalar(const Sha1Job* jobs, std::size_t count,
                      Sha1Scratch* /*scratch*/) {
  for (std::size_t i = 0; i < count; ++i) {
    *jobs[i].out = Sha1::hash(std::span(jobs[i].data, jobs[i].len));
  }
}

void sha1_many_at(Level level, const Sha1Job* jobs, std::size_t count,
                  Sha1Scratch* scratch) {
  if (level > best_supported()) level = best_supported();
  switch (level) {
    case Level::kAvx2:
      sha1_many_avx2(jobs, count, scratch);
      return;
    case Level::kSse42:
      sha1_many_sse42(jobs, count, scratch);
      return;
    case Level::kScalar:
      break;
  }
  sha1_many_scalar(jobs, count, scratch);
}

void sha1_many(const Sha1Job* jobs, std::size_t count, Sha1Scratch* scratch) {
  sha1_many_at(active_level(), jobs, count, scratch);
}

}  // namespace hs::kernels::simd
