// 2-lane Rabin match-bitmap kernel (SSE4.2). Compiled with -msse4.2 on
// x86; forwards to the scalar body elsewhere.
#include "kernels/simd/rabin_lanes.hpp"

#if defined(__SSE4_2__)

#include <immintrin.h>

#include "kernels/simd/rabin_lanes_wide.hpp"

namespace hs::kernels::simd {
namespace {

struct SseTraits {
  static constexpr int kLanes = 2;
  using vec = __m128i;
  static vec from_lanes(const std::uint64_t* u) {
    return _mm_set_epi64x(static_cast<long long>(u[1]),
                          static_cast<long long>(u[0]));
  }
  static vec load_updates(const std::uint64_t* push, const std::uint64_t* pop,
                          const std::uint8_t* d, const std::size_t* base,
                          std::size_t s, std::uint32_t window) {
    const auto u = [&](int l) {
      const std::size_t i = base[l] + s;
      return static_cast<long long>(push[d[i]] - pop[d[i - window]]);
    };
    return _mm_set_epi64x(u(1), u(0));
  }
  static vec set1(std::uint64_t v) {
    return _mm_set1_epi64x(static_cast<long long>(v));
  }
  static vec add64(vec a, vec b) { return _mm_add_epi64(a, b); }
  static vec and_(vec a, vec b) { return _mm_and_si128(a, b); }
  // a * kMult mod 2^64 per lane; SSE has no 64-bit multiply, so compose it
  // from 32x32->64 partial products: lo*lo + ((lo*hi + hi*lo) << 32).
  static vec mul_k(vec a) {
    const vec kl = set1(Rabin::kMult & 0xFFFFFFFFull);
    const vec kh = set1(Rabin::kMult >> 32);
    const vec lo = _mm_mul_epu32(a, kl);
    const vec cross =
        _mm_add_epi64(_mm_mul_epu32(a, kh),
                      _mm_mul_epu32(_mm_srli_epi64(a, 32), kl));
    return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
  }
  static unsigned eq64_mask(vec a, vec b) {
    return static_cast<unsigned>(
        _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpeq_epi64(a, b))));
  }
};

}  // namespace

void rabin_match_bits_sse42(const Rabin& rabin,
                            std::span<const std::uint8_t> data,
                            std::uint64_t* bits) {
  detail::rabin_match_bits_wide<SseTraits>(rabin, data, bits);
}

}  // namespace hs::kernels::simd

#else  // !__SSE4_2__

namespace hs::kernels::simd {
void rabin_match_bits_sse42(const Rabin& rabin,
                            std::span<const std::uint8_t> data,
                            std::uint64_t* bits) {
  rabin_match_bits_scalar(rabin, data, bits);
}
}  // namespace hs::kernels::simd

#endif
