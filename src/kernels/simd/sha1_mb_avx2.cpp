// 8-lane multi-buffer SHA-1 (AVX2). Compiled with -mavx2 on x86; forwards
// to the SSE4.2 body (itself falling back to scalar) elsewhere.
#include "kernels/simd/sha1_mb.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include "kernels/simd/sha1_mb_wide.hpp"

namespace hs::kernels::simd {
namespace {

struct Avx2Traits {
  static constexpr int kLanes = 8;
  using vec = __m256i;
  static vec load(const std::uint32_t* p) {
    return _mm256_load_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::uint32_t* p, vec v) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static vec set1(std::uint32_t v) {
    return _mm256_set1_epi32(static_cast<int>(v));
  }
  static vec add(vec a, vec b) { return _mm256_add_epi32(a, b); }
  static vec and_(vec a, vec b) { return _mm256_and_si256(a, b); }
  static vec or_(vec a, vec b) { return _mm256_or_si256(a, b); }
  static vec xor_(vec a, vec b) { return _mm256_xor_si256(a, b); }
  template <int N>
  static vec rotl(vec v) {
    return _mm256_or_si256(_mm256_slli_epi32(v, N), _mm256_srli_epi32(v, 32 - N));
  }
};

}  // namespace

void sha1_many_avx2(const Sha1Job* jobs, std::size_t count,
                    Sha1Scratch* scratch) {
  detail::sha1_many_wide<Avx2Traits>(jobs, count, scratch);
}

}  // namespace hs::kernels::simd

#else  // !__AVX2__

namespace hs::kernels::simd {
void sha1_many_avx2(const Sha1Job* jobs, std::size_t count,
                    Sha1Scratch* scratch) {
  sha1_many_sse42(jobs, count, scratch);
}
}  // namespace hs::kernels::simd

#endif
