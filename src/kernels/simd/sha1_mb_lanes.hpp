// Internal helpers shared by the multi-buffer SHA-1 bodies (scalar grouping
// logic plus the per-lane message layout). Not part of the public API.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "kernels/simd/sha1_mb.hpp"

namespace hs::kernels::simd::detail {

/// One message mapped onto a SIMD lane: the full 64-byte blocks come
/// straight from the caller's buffer; the final one-or-two padded blocks
/// (0x80 terminator + big-endian bit length) are materialized in `tail`.
struct Sha1Lane {
  const std::uint8_t* data = nullptr;
  Sha1Digest* out = nullptr;
  std::uint64_t nblocks = 0;  // total 64-byte blocks incl. padding
  std::uint64_t full_blocks = 0;
  std::uint8_t tail[128] = {};
};

inline void init_lane(Sha1Lane& lane, const Sha1Job& job) {
  lane.data = job.data;
  lane.out = job.out;
  lane.full_blocks = job.len / 64;
  lane.nblocks = (job.len + 8) / 64 + 1;  // == Sha1 compression_rounds
  const std::size_t rem = job.len % 64;
  const std::size_t tail_bytes =
      static_cast<std::size_t>(lane.nblocks - lane.full_blocks) * 64;
  std::memset(lane.tail, 0, sizeof(lane.tail));
  if (rem != 0) {
    std::memcpy(lane.tail, job.data + lane.full_blocks * 64, rem);
  }
  lane.tail[rem] = 0x80;
  const std::uint64_t bits = static_cast<std::uint64_t>(job.len) * 8;
  for (int i = 0; i < 8; ++i) {
    lane.tail[tail_bytes - 8 + i] =
        static_cast<std::uint8_t>(bits >> (56 - 8 * i));
  }
}

inline const std::uint8_t* lane_block(const Sha1Lane& lane, std::uint64_t t) {
  return t < lane.full_blocks ? lane.data + t * 64
                              : lane.tail + (t - lane.full_blocks) * 64;
}

/// Fills `order` with job indices sorted longest-first (ties by index so
/// the grouping is deterministic). Ordering only affects how lanes are
/// packed, never the digests.
inline void order_by_len(const Sha1Job* jobs, std::size_t count,
                         std::vector<std::uint32_t>& order) {
  order.resize(count);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [jobs](std::uint32_t a, std::uint32_t b) {
              if (jobs[a].len != jobs[b].len) return jobs[a].len > jobs[b].len;
              return a < b;
            });
}

inline std::uint32_t load_be32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_bswap32(v);
#else
  return (v >> 24) | ((v >> 8) & 0xFF00u) | ((v << 8) & 0xFF0000u) |
         (v << 24);
#endif
}

}  // namespace hs::kernels::simd::detail
