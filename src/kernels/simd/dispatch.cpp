#include "kernels/simd/dispatch.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace hs::kernels::simd {

namespace {

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#define HS_SIMD_X86 1
#else
#define HS_SIMD_X86 0
#endif

Level detect_best() {
#if HS_SIMD_X86 && (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return Level::kSse42;
#endif
  return Level::kScalar;
}

Level resolve_initial() {
  Level best = detect_best();
  const char* env = std::getenv("HS_SIMD");
  if (env == nullptr || env[0] == '\0') return best;
  Level want;
  if (!parse_level(env, want)) {
    std::fprintf(stderr,
                 "[simd] ignoring unknown HS_SIMD='%s' "
                 "(expected scalar|sse42|avx2)\n",
                 env);
    return best;
  }
  if (want > best) {
    std::fprintf(stderr, "[simd] HS_SIMD=%s not supported here; using %s\n",
                 env, std::string(level_name(best)).c_str());
    return best;
  }
  return want;
}

/// -1 until resolved; then the Level. One relaxed load per kernel call.
std::atomic<int> g_active{-1};

}  // namespace

bool supports(Level level) { return level <= detect_best(); }

Level best_supported() {
  static const Level best = detect_best();
  return best;
}

Level active_level() {
  int v = g_active.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<Level>(v);
  Level resolved = resolve_initial();
  // First resolver wins; concurrent callers converge on the stored value.
  int expected = -1;
  if (g_active.compare_exchange_strong(expected, static_cast<int>(resolved),
                                       std::memory_order_relaxed)) {
    return resolved;
  }
  return static_cast<Level>(expected);
}

void set_active_level(Level level) {
  Level best = best_supported();
  if (level > best) level = best;
  g_active.store(static_cast<int>(level), std::memory_order_relaxed);
}

std::string_view level_name(Level level) {
  switch (level) {
    case Level::kSse42:
      return "sse42";
    case Level::kAvx2:
      return "avx2";
    case Level::kScalar:
      break;
  }
  return "scalar";
}

bool parse_level(std::string_view name, Level& out) {
  if (name == "scalar") {
    out = Level::kScalar;
  } else if (name == "sse42" || name == "sse4.2" || name == "sse") {
    out = Level::kSse42;
  } else if (name == "avx2" || name == "avx") {
    out = Level::kAvx2;
  } else {
    return false;
  }
  return true;
}

}  // namespace hs::kernels::simd
