#include "kernels/simd/lzss_match.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

namespace hs::kernels::simd {

// The seed scalar body (moved verbatim from lzss.cpp); the reference every
// wide body must match bit-for-bit.
LzssMatch lzss_longest_match_scalar(std::span<const std::uint8_t> input,
                                    std::size_t block_start,
                                    std::size_t block_end, std::size_t pos,
                                    const LzssParams& params) {
  assert(params.valid());
  assert(pos >= block_start && pos < block_end && block_end <= input.size());

  const std::size_t search_begin =
      pos - block_start > params.window_size ? pos - params.window_size
                                             : block_start;
  // Longest possible: bounded by the block end and by the no-overlap rule
  // (source indices stay below pos).
  const std::size_t lookahead_limit =
      std::min<std::size_t>(params.max_match, block_end - pos);

  LzssMatch best;
  const std::uint8_t* base = input.data();
  const std::uint8_t first = base[pos];
  for (std::size_t cand = search_begin; cand < pos; ++cand) {
    // memchr skips straight to the next candidate whose first byte matches,
    // visiting exactly the candidates the byte loop would have accepted, in
    // the same oldest-first order (so ties still keep the oldest).
    const void* hit = std::memchr(base + cand, first, pos - cand);
    if (hit == nullptr) break;
    cand = static_cast<std::size_t>(static_cast<const std::uint8_t*>(hit) -
                                    base);
    // Source must stay below pos: max length additionally bounded by
    // pos - cand.
    const std::size_t limit = std::min(lookahead_limit, pos - cand);
    std::size_t len = 1;
    // Word-at-a-time extension. In bounds: len + 8 <= limit implies
    // cand + len + 8 <= cand + limit <= pos < input.size() and
    // pos + len + 8 <= pos + limit <= block_end <= input.size().
    if constexpr (std::endian::native == std::endian::little) {
      while (len + 8 <= limit) {
        std::uint64_t a, b;
        std::memcpy(&a, base + cand + len, 8);
        std::memcpy(&b, base + pos + len, 8);
        if (a == b) {
          len += 8;
        } else {
          len += static_cast<std::size_t>(std::countr_zero(a ^ b)) >> 3;
          goto extended;
        }
      }
    }
    while (len < limit && base[cand + len] == base[pos + len]) ++len;
  extended:
    if (len > best.length) {
      best.length = static_cast<std::uint16_t>(len);
      best.offset = static_cast<std::uint16_t>(pos - cand);
      if (len == lookahead_limit) break;  // cannot do better
    }
  }
  if (best.length < params.min_match) return LzssMatch{};
  return best;
}

std::size_t match_common_prefix_scalar(const std::uint8_t* a,
                                       const std::uint8_t* b,
                                       std::size_t limit) {
  std::size_t len = 0;
  if constexpr (std::endian::native == std::endian::little) {
    while (len + 8 <= limit) {
      std::uint64_t x, y;
      std::memcpy(&x, a + len, 8);
      std::memcpy(&y, b + len, 8);
      if (x != y) {
        return len + (static_cast<std::size_t>(std::countr_zero(x ^ y)) >> 3);
      }
      len += 8;
    }
  }
  while (len < limit && a[len] == b[len]) ++len;
  return len;
}

MatchCompareFn match_compare_fn(Level level) {
  if (level > best_supported()) level = best_supported();
  switch (level) {
    case Level::kAvx2: return &match_common_prefix_avx2;
    case Level::kSse42: return &match_common_prefix_sse42;
    case Level::kScalar: break;
  }
  return &match_common_prefix_scalar;
}

LzssMatch lzss_longest_match_at(Level level,
                                std::span<const std::uint8_t> input,
                                std::size_t block_start, std::size_t block_end,
                                std::size_t pos, const LzssParams& params) {
  if (level > best_supported()) level = best_supported();
  switch (level) {
    case Level::kAvx2:
      return lzss_longest_match_avx2(input, block_start, block_end, pos,
                                     params);
    case Level::kSse42:
      return lzss_longest_match_sse42(input, block_start, block_end, pos,
                                      params);
    case Level::kScalar:
      break;
  }
  return lzss_longest_match_scalar(input, block_start, block_end, pos, params);
}

}  // namespace hs::kernels::simd
