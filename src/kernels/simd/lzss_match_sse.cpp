// 16-byte LZSS match search (SSE4.2). Compiled with -msse4.2 on x86;
// forwards to the scalar body elsewhere.
#include "kernels/simd/lzss_match.hpp"

#if defined(__SSE4_2__)

#include <immintrin.h>

#include "kernels/simd/lzss_match_wide.hpp"

namespace hs::kernels::simd {
namespace {

struct SseTraits {
  static constexpr unsigned kWidth = 16;
  static unsigned eq_mask(const std::uint8_t* p, std::uint8_t b) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    return static_cast<unsigned>(_mm_movemask_epi8(
        _mm_cmpeq_epi8(v, _mm_set1_epi8(static_cast<char>(b)))));
  }
  static unsigned neq_mask(const std::uint8_t* a, const std::uint8_t* b) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
    return ~static_cast<unsigned>(
               _mm_movemask_epi8(_mm_cmpeq_epi8(va, vb))) &
           0xFFFFu;
  }
};

}  // namespace

LzssMatch lzss_longest_match_sse42(std::span<const std::uint8_t> input,
                                   std::size_t block_start,
                                   std::size_t block_end, std::size_t pos,
                                   const LzssParams& params) {
  return detail::longest_match_wide<SseTraits>(input, block_start, block_end,
                                               pos, params);
}

std::size_t match_common_prefix_sse42(const std::uint8_t* a,
                                      const std::uint8_t* b,
                                      std::size_t limit) {
  std::size_t len = 0;
  while (len + SseTraits::kWidth <= limit) {
    const unsigned neq = SseTraits::neq_mask(a + len, b + len);
    if (neq != 0) return len + std::countr_zero(neq);
    len += SseTraits::kWidth;
  }
  return len + match_common_prefix_scalar(a + len, b + len, limit - len);
}

}  // namespace hs::kernels::simd

#else  // !__SSE4_2__

namespace hs::kernels::simd {
LzssMatch lzss_longest_match_sse42(std::span<const std::uint8_t> input,
                                   std::size_t block_start,
                                   std::size_t block_end, std::size_t pos,
                                   const LzssParams& params) {
  return lzss_longest_match_scalar(input, block_start, block_end, pos, params);
}
std::size_t match_common_prefix_sse42(const std::uint8_t* a,
                                      const std::uint8_t* b,
                                      std::size_t limit) {
  return match_common_prefix_scalar(a, b, limit);
}
}  // namespace hs::kernels::simd

#endif
