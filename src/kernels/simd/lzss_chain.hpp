// Hash-chain LZSS match finder (DESIGN.md §4j) — the LzssMode::kChain
// engine behind lzss_encode/find_matches_batch.
//
// The legacy matcher scans every window position per input byte:
// O(n·window) and, at 0.02 GB/s, ~50x slower than rabin/SHA-1 — the
// compress-stage imbalance the paper's dedup analysis calls out. The chain
// matcher is the classic LZ4/zlib structure instead:
//
//   * head[h]: the newest inserted position whose first 3 bytes hash to h,
//     packed with the generation tag that validates it (see below);
//   * prev[pos & (P-1)]: the previous position on pos's chain, P = a power
//     of two >= window_size. The slot for a position is only overwritten
//     P >= window inserts later — by then the old occupant has fallen out
//     of every window, so the chain walk (which stops at the first
//     candidate below the window/block bound) never reads a clobbered
//     link.
//
// find() walks a position's chain newest-first, keeps the longest match
// (ties keep the NEWER candidate — smaller offset — unlike legacy's
// oldest-first scan, which is why the modes golden separately), prunes
// with the classic would-extend byte test, extends with the per-level
// vectorized compare (match_compare_fn), and gives up after
// params.chain_depth links or as soon as the best possible length is
// reached.
//
// Purity contract (what keeps every pipeline variant bit-identical in
// chain mode): the result of find(block_start, block_end, pos) depends
// only on the input bytes and on the set of inserted positions in
// [block_start, pos) — candidates below block_start terminate the walk
// without consuming depth budget, so it does not matter whether other
// blocks of the batch were inserted (inline per-block encode) or every
// batch position was (find_matches_batch / the simulated-GPU FindMatch).
//
// reset() is O(1): each head entry packs (generation << 32 | position)
// into one 64-bit word, so a bumped generation invalidates the whole
// table without touching its 64 KiB, and validity + the window bound
// check cost one load per probe. A warm thread_local matcher therefore
// re-anchors onto a new block for free (the steady-state zero-alloc gate
// counts on this). prev needs no tags: a link is only ever read through a
// head entry of the current generation, and every hop was written by a
// same-generation insert.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "kernels/lzss.hpp"
#include "kernels/simd/dispatch.hpp"
#include "kernels/simd/lzss_match.hpp"

namespace hs::kernels::simd {

class LzssChainMatcher {
 public:
  /// Bytes hashed per chain entry. Positions closer than this to their
  /// block end are never inserted or queried (they encode as literals, or
  /// as sub-3-byte matches only legacy mode can find when min_match == 2).
  static constexpr std::uint32_t kHashBytes = 3;

  /// Re-anchors the matcher onto `input` (a whole batch; block bounds are
  /// per-call). Invalidates all previous insertions in O(1). `level`
  /// picks the vectorized extend body; the match results are identical at
  /// every level. Requires input.size() < 2^31.
  void reset(std::span<const std::uint8_t> input, const LzssParams& params,
             Level level);

  /// Longest match for `pos` among inserted positions in
  /// [max(block_start, pos - window), pos), newest first, bounded depth.
  /// length 0 means "emit a literal". Defined in the header so the encode
  /// walk and the batch form inline it — an out-of-line call per input
  /// position costs ~15% end to end.
  [[nodiscard]] LzssMatch find(std::size_t block_start, std::size_t block_end,
                               std::size_t pos) const {
    const std::size_t lookahead_limit =
        params_.max_match < block_end - pos ? params_.max_match
                                            : block_end - pos;
    if (lookahead_limit < params_.min_match) return LzssMatch{};
    if (pos + kHashBytes > block_end) return LzssMatch{};

    const std::size_t lo =
        pos - block_start > params_.window_size ? pos - params_.window_size
                                                : block_start;
    const std::uint64_t e = head_[hash3(pos)];
    // cmov shape: a stale-generation head becomes -1, below any lo, so
    // the walk entry check is a single signed compare.
    std::int64_t c = static_cast<std::int64_t>(static_cast<std::uint32_t>(e));
    c = (e >> 32) == generation_ ? c : std::int64_t{kNone};

    LzssMatch best;
    const std::uint8_t* base = base_;
    std::uint32_t depth = params_.chain_depth;
    // Every visited link was inserted this generation with a position
    // < pos (callers find before insert), so the walk is newest-first and
    // stops at the first candidate outside [lo, pos) — cross-block or
    // out-of-window entries never consume depth budget.
    while (c >= static_cast<std::int64_t>(lo)) {
      const std::size_t cand = static_cast<std::size_t>(c);
      // Source bytes must stay below pos, so the length is additionally
      // capped by the candidate's distance.
      const std::size_t limit =
          lookahead_limit < pos - cand ? lookahead_limit : pos - cand;
      // Would-extend prune: a candidate that beats `best` must match at
      // index best.length (at 0 this screens hash collisions). In bounds:
      // best.length < limit <= pos - cand and < block_end - pos.
      if (limit > best.length &&
          base[cand + best.length] == base[pos + best.length]) {
        // Inlined first-8-bytes compare (the common case at max_match 18
        // — an indirect call per candidate would dominate the walk); the
        // per-level vectorized body only extends tails past 8. Loads are
        // in bounds: limit >= 8 implies pos + 8 <= block_end and
        // cand + 8 <= pos.
        std::size_t len;
        if (limit >= 8) {
          std::uint64_t x, y;
          std::memcpy(&x, base + cand, 8);
          std::memcpy(&y, base + pos, 8);
          if (x != y) {
            len = static_cast<std::size_t>(std::countr_zero(x ^ y)) >> 3;
          } else {
            len = 8 + compare_(base + cand + 8, base + pos + 8, limit - 8);
          }
        } else {
          len = 0;
          while (len < limit && base[cand + len] == base[pos + len]) ++len;
        }
        if (len > best.length) {
          best.length = static_cast<std::uint16_t>(len);
          best.offset = static_cast<std::uint16_t>(pos - cand);
          if (len == lookahead_limit) break;  // cannot do better
        }
      }
      if (--depth == 0) break;
      c = static_cast<std::int64_t>(prev_[cand & prev_mask_]);
    }
    if (best.length < params_.min_match) return LzssMatch{};
    return best;
  }

  /// Registers `pos` as a future match source. `block_end` is the end of
  /// pos's block: positions whose 3 hash bytes would cross it are skipped
  /// (every caller must pass the same bound for the same pos — the purity
  /// contract).
  void insert(std::size_t pos, std::size_t block_end) {
    if (pos + kHashBytes > block_end) return;
    const std::uint32_t h = hash3(pos);
    const std::uint64_t e = head_[h];
    prev_[pos & prev_mask_] = (e >> 32) == generation_
                                  ? static_cast<std::int32_t>(e)
                                  : kNone;
    head_[h] = (static_cast<std::uint64_t>(generation_) << 32) |
               static_cast<std::uint32_t>(pos);
  }

  /// insert() for every position in [begin, end).
  void insert_range(std::size_t begin, std::size_t end,
                    std::size_t block_end) {
    for (std::size_t p = begin; p < end; ++p) insert(p, block_end);
  }

 private:
  static constexpr std::uint32_t kHashBits = 13;
  static constexpr std::int32_t kNone = -1;

  [[nodiscard]] std::uint32_t hash3(std::size_t pos) const {
    std::uint32_t v = static_cast<std::uint32_t>(base_[pos]) |
                      (static_cast<std::uint32_t>(base_[pos + 1]) << 8) |
                      (static_cast<std::uint32_t>(base_[pos + 2]) << 16);
    return (v * 0x9E3779B1u) >> (32 - kHashBits);
  }

  const std::uint8_t* base_ = nullptr;
  std::size_t size_ = 0;
  LzssParams params_{};
  MatchCompareFn compare_ = nullptr;
  std::uint32_t prev_mask_ = 0;  ///< P - 1
  std::uint32_t generation_ = 0;
  std::vector<std::uint64_t> head_;  ///< (generation << 32) | position
  std::vector<std::int32_t> prev_;   ///< P entries
};

}  // namespace hs::kernels::simd
