// SHA-256 (FIPS 180-2), from scratch. The Dedup hash cache can be switched
// to SHA-256 (the configuration used by the GPU-backup system in the
// paper's related work [15]); also exercised by the hashing microbench.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace hs::kernels {

using Sha256Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  Sha256Digest finish();

  static Sha256Digest hash(std::span<const std::uint8_t> data) {
    Sha256 ctx;
    ctx.update(data);
    return ctx.finish();
  }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> h_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_bytes_ = 0;
  std::size_t buffered_ = 0;
};

std::string digest_hex(const Sha256Digest& digest);

}  // namespace hs::kernels
