// Rabin rolling-fingerprint content-defined chunking — the fragmentation
// method of PARSEC's dedup. A polynomial rolling hash over a sliding window
// declares a block boundary whenever the low bits of the fingerprint match
// a magic value, so boundaries depend on *content*, not position: inserting
// bytes early in a file only disturbs nearby boundaries (the property that
// makes deduplication robust, and the invariant our property tests check).
//
// The paper's GPU refactoring (§IV-B) keeps rabin on the CPU: the input is
// cut into fixed 1 MB batches and rabin runs within each batch, producing
// the startPos index vector that every later stage (SHA-1, duplicate check,
// LZSS FindMatch) consumes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hs::kernels {

struct RabinParams {
  std::uint32_t window = 32;         ///< sliding window bytes
  std::uint32_t min_block = 1024;    ///< no boundary before this many bytes
  std::uint32_t max_block = 65536;   ///< forced boundary at this size
  std::uint32_t mask = 0x1FFF;       ///< boundary when (fp & mask) == magic
  std::uint32_t magic = 0x78;        ///< expected block size ~ mask+1 bytes
  std::uint64_t seed = 0x8873635796ull;  ///< table seed (fixed for dedup)
};

/// Table-driven rolling fingerprint.
class Rabin {
 public:
  explicit Rabin(const RabinParams& params = {});

  /// Start positions of each block within `data`, always beginning with 0.
  /// A block ends right after a byte whose fingerprint matches, or at
  /// max_block. The final block ends at data.size().
  [[nodiscard]] std::vector<std::uint32_t> chunk_boundaries(
      std::span<const std::uint8_t> data) const;

  /// As chunk_boundaries, but reuses `starts` (cleared, then reserved to
  /// the data.size()/min_block worst case) so a warmed caller reallocates
  /// nothing. This is the allocation-free entry the dedup pipeline uses.
  void chunk_boundaries_into(std::span<const std::uint8_t> data,
                             std::vector<std::uint32_t>& starts) const;

  /// Raw fingerprint of the window ending at each position (exposed for
  /// tests and the fingerprint microbench). fp[i] covers bytes
  /// [i-window+1, i].
  [[nodiscard]] std::uint64_t window_fingerprint(
      std::span<const std::uint8_t> window_bytes) const;

  [[nodiscard]] const RabinParams& params() const { return params_; }

  // The rolling hash is fp = sum over window of table[byte] * kMult^(age);
  // implemented incrementally as fp = fp * kMult + table[in] - table[out] *
  // kMult^window. kMult is an odd constant; pop_table_ pre-multiplies by
  // kMult^window so the hot loop is two table lookups, a multiply and an
  // add. Exposed (with the tables) for the simd lane scanner, which must
  // reproduce the exact mod-2^64 arithmetic.
  static constexpr std::uint64_t kMult = 0x9E3779B97F4A7C15ull | 1ull;
  [[nodiscard]] const std::uint64_t* push_table() const { return push_table_; }
  [[nodiscard]] const std::uint64_t* pop_table() const { return pop_table_; }

 private:
  RabinParams params_;
  // push_table_[b]  : contribution of byte b entering the window
  // pop_table_[b]   : contribution of byte b leaving a full window
  std::uint64_t push_table_[256];
  std::uint64_t pop_table_[256];
};

}  // namespace hs::kernels
