// SPar GPU auto-offload — the paper's stated future work (§VI): "we intend
// to automatically generate parallel OpenCL and CUDA code through the SPar
// compilation toolchain."
//
// This extension does exactly that for map-shaped stages: the programmer
// writes only a per-element function, and the lowering generates the whole
// GPU offload path the paper had to hand-write in §IV — per-replica device
// selection (round-robin, thread-local cudaSetDevice), a stream/command
// queue per worker, device buffer management, host<->device transfers, and
// the kernel launch — for either the CUDA-style or OpenCL-style backend.
//
//   spar::ToStream region("pipeline");
//   region.source<std::vector<float>>(...);
//   spar::gpu_map_stage<float>(region,
//       {.machine = &machine, .backend = spar::GpuBackend::kCuda,
//        .replicas = 4},
//       [](float x) { return x * 2.0f + 1.0f; });   // runs on the GPU
//   region.last_stage<std::vector<float>>(...);
//
// Stream items are std::vector<T> batches (T trivially copyable); each
// element maps to one simulated GPU thread.
#pragma once

#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "cudax/cudax.hpp"
#include "oclx/oclx.hpp"
#include "spar/spar.hpp"

namespace hs::spar {

enum class GpuBackend { kCuda, kOpenCl };

/// Offload configuration for an auto-generated GPU stage.
struct GpuOffload {
  gpusim::Machine* machine = nullptr;
  GpuBackend backend = GpuBackend::kCuda;
  int replicas = 1;
  std::uint32_t block_size = 256;  ///< threads per block / work-group
};

namespace detail {

/// Worker node generated for the CUDA backend.
template <typename T, typename Fn>
class CudaMapWorker final : public flow::Node {
  static_assert(std::is_trivially_copyable_v<T>,
                "GPU-offloaded element types must be trivially copyable");

 public:
  CudaMapWorker(const GpuOffload& offload, Fn fn)
      : offload_(offload), fn_(std::move(fn)) {}

  void on_init(int replica_id) override {
    device_ = replica_id % offload_.machine->device_count();
    if (cudax::cudaSetDevice(device_) != cudax::cudaError::cudaSuccess ||
        cudax::cudaStreamCreate(&stream_) != cudax::cudaError::cudaSuccess) {
      throw std::runtime_error("gpu_map_stage: CUDA init failed: " +
                               cudax::last_error_message());
    }
  }

  flow::SvcResult svc(flow::Item in) override {
    std::vector<T> batch = in.take<std::vector<T>>();
    const std::size_t n = batch.size();
    if (n == 0) {
      return flow::SvcResult::Out(
          flow::Item::of<std::vector<T>>(std::move(batch)));
    }
    (void)cudax::cudaSetDevice(device_);
    ensure_capacity(n * sizeof(T));
    if (cudax::cudaMemcpyAsync(dev_in_, batch.data(), n * sizeof(T),
                               cudax::cudaMemcpyKind::cudaMemcpyHostToDevice,
                               stream_) != cudax::cudaError::cudaSuccess) {
      throw std::runtime_error("gpu_map_stage: h2d failed");
    }
    const T* in_ptr = static_cast<const T*>(dev_in_);
    T* out_ptr = static_cast<T*>(dev_out_);
    Fn fn = fn_;
    auto e = cudax::launch_kernel(
        cudax::Dim3{
            static_cast<std::uint32_t>((n + offload_.block_size - 1) /
                                       offload_.block_size),
            1, 1},
        cudax::Dim3{offload_.block_size, 1, 1}, stream_,
        [in_ptr, out_ptr, n, fn](const cudax::ThreadCtx& ctx) {
          std::uint64_t i = ctx.global_x();
          if (i < n) out_ptr[i] = fn(in_ptr[i]);
        });
    if (e != cudax::cudaError::cudaSuccess) {
      throw std::runtime_error("gpu_map_stage: launch failed: " +
                               cudax::last_error_message());
    }
    if (cudax::cudaMemcpyAsync(batch.data(), dev_out_, n * sizeof(T),
                               cudax::cudaMemcpyKind::cudaMemcpyDeviceToHost,
                               stream_) != cudax::cudaError::cudaSuccess ||
        cudax::cudaStreamSynchronize(stream_) !=
            cudax::cudaError::cudaSuccess) {
      throw std::runtime_error("gpu_map_stage: d2h failed");
    }
    return flow::SvcResult::Out(
        flow::Item::of<std::vector<T>>(std::move(batch)));
  }

  void on_end() override {
    (void)cudax::cudaSetDevice(device_);
    if (dev_in_ != nullptr) (void)cudax::cudaFree(dev_in_);
    if (dev_out_ != nullptr) (void)cudax::cudaFree(dev_out_);
  }

 private:
  void ensure_capacity(std::size_t bytes) {
    if (bytes <= capacity_) return;
    if (dev_in_ != nullptr) (void)cudax::cudaFree(dev_in_);
    if (dev_out_ != nullptr) (void)cudax::cudaFree(dev_out_);
    if (cudax::cudaMalloc(&dev_in_, bytes) != cudax::cudaError::cudaSuccess ||
        cudax::cudaMalloc(&dev_out_, bytes) !=
            cudax::cudaError::cudaSuccess) {
      throw std::runtime_error("gpu_map_stage: device allocation failed: " +
                               cudax::last_error_message());
    }
    capacity_ = bytes;
  }

  GpuOffload offload_;
  Fn fn_;
  int device_ = 0;
  cudax::cudaStream_t stream_{};
  void* dev_in_ = nullptr;
  void* dev_out_ = nullptr;
  std::size_t capacity_ = 0;
};

/// Worker node generated for the OpenCL backend. Follows the paper's fix
/// for cl_kernel thread-affinity: the kernel object is created inside the
/// owning worker thread.
template <typename T, typename Fn>
class OclMapWorker final : public flow::Node {
  static_assert(std::is_trivially_copyable_v<T>,
                "GPU-offloaded element types must be trivially copyable");

 public:
  OclMapWorker(const GpuOffload& offload, Fn fn)
      : offload_(offload), fn_(std::move(fn)) {}

  void on_init(int replica_id) override {
    auto platforms = oclx::Platform::get(offload_.machine);
    if (platforms.empty()) {
      throw std::runtime_error("gpu_map_stage: no OpenCL platform");
    }
    devices_ = platforms[0].devices();
    device_index_ = static_cast<std::size_t>(replica_id) % devices_.size();
    auto ctx = oclx::Context::create(devices_);
    if (!ctx.ok()) throw std::runtime_error(ctx.status().ToString());
    context_ = std::make_unique<oclx::Context>(std::move(ctx).value());
    auto queue =
        oclx::CommandQueue::create(*context_, devices_[device_index_]);
    if (!queue.ok()) throw std::runtime_error(queue.status().ToString());
    queue_ = std::make_unique<oclx::CommandQueue>(std::move(queue).value());
  }

  flow::SvcResult svc(flow::Item in) override {
    std::vector<T> batch = in.take<std::vector<T>>();
    const std::size_t n = batch.size();
    if (n == 0) {
      return flow::SvcResult::Out(
          flow::Item::of<std::vector<T>>(std::move(batch)));
    }
    auto buf = oclx::Buffer::create(*context_, devices_[device_index_],
                                    n * sizeof(T));
    if (!buf.ok()) throw std::runtime_error(buf.status().ToString());
    if (queue_->enqueue_write(buf.value(), 0, batch.data(), n * sizeof(T),
                              /*blocking=*/false,
                              nullptr) != oclx::ClStatus::kSuccess) {
      throw std::runtime_error("gpu_map_stage: write failed");
    }
    T* data = static_cast<T*>(buf.value().data());
    Fn fn = fn_;
    // One kernel object per item, created on this thread (§IV-A).
    oclx::Kernel kernel = oclx::Kernel::create(
        "spar_gpu_map", [data, n, fn](const oclx::ThreadCtx& ctx) {
          std::uint64_t i = ctx.global_x();
          if (i < n) data[i] = fn(data[i]);
        });
    const std::uint32_t ls = offload_.block_size;
    std::uint32_t global =
        static_cast<std::uint32_t>((n + ls - 1) / ls * ls);
    if (queue_->enqueue_ndrange(kernel, oclx::Dim3{global, 1, 1},
                                oclx::Dim3{ls, 1, 1},
                                nullptr) != oclx::ClStatus::kSuccess) {
      throw std::runtime_error("gpu_map_stage: ndrange failed: " +
                               queue_->last_error());
    }
    oclx::Event done;
    if (queue_->enqueue_read(buf.value(), 0, batch.data(), n * sizeof(T),
                             /*blocking=*/false,
                             &done) != oclx::ClStatus::kSuccess) {
      throw std::runtime_error("gpu_map_stage: read failed");
    }
    if (!oclx::Event::wait_for_events({done}).ok()) {
      throw std::runtime_error("gpu_map_stage: wait failed");
    }
    return flow::SvcResult::Out(
        flow::Item::of<std::vector<T>>(std::move(batch)));
  }

 private:
  GpuOffload offload_;
  Fn fn_;
  std::vector<oclx::DeviceId> devices_;
  std::size_t device_index_ = 0;
  std::unique_ptr<oclx::Context> context_;
  std::unique_ptr<oclx::CommandQueue> queue_;
};

}  // namespace detail

/// Appends an auto-generated GPU map stage to `region`: each stream item
/// (a std::vector<T>) is offloaded to a simulated GPU and transformed
/// element-wise by `fn` (one element per GPU thread). `fn` must be a
/// copyable, stateless callable T -> T. Replicas round-robin across the
/// machine's devices. The caller must have bound `offload.machine` to
/// cudax when using the CUDA backend.
template <typename T, typename Fn>
ToStream& gpu_map_stage(ToStream& region, const GpuOffload& offload, Fn fn) {
  if (offload.backend == GpuBackend::kCuda) {
    region.stage_nodes(Replicate(offload.replicas), [offload, fn] {
      return std::make_unique<detail::CudaMapWorker<T, Fn>>(offload, fn);
    });
  } else {
    region.stage_nodes(Replicate(offload.replicas), [offload, fn] {
      return std::make_unique<detail::OclMapWorker<T, Fn>>(offload, fn);
    });
  }
  return region;
}

}  // namespace hs::spar
