// SPar-equivalent embedded DSL (paper §III-C).
//
// SPar is a C++ attribute DSL: [[spar::ToStream]] marks a stream region,
// [[spar::Stage]] marks computing phases, [[spar::Replicate(n)]] replicates
// a stateless stage, and [[spar::Input]]/[[spar::Output]] declare the data
// flowing between stages. Its compiler performs source-to-source
// transformation onto FastFlow pipelines/farms.
//
// We reproduce that *lowering* as an embedded builder: the same five
// concepts, declared as typed calls in region order, validated with
// SPar-compiler-style diagnostics, then compiled onto the flow runtime
// (pipeline + ordered farms) — the exact structure SPar generates. The
// graph_description() string is the analogue of inspecting SPar's
// generated FastFlow code, and is what the lowering tests assert on.
//
//   spar::ToStream region("mandel");
//   region.source<Line>([&]() -> std::optional<Line> { ... });
//   region.stage<Line, Line>(spar::Replicate(workers),
//                            [](Line l) { compute(l); return l; });
//   region.last_stage<Line>([&](Line l) { show(l); });
//   hs::Status s = region.run();
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "flow/adapters.hpp"
#include "flow/pipeline.hpp"

namespace hs::spar {

/// [[spar::Replicate(n)]] — requested parallelism degree of a stage.
struct Replicate {
  int n = 1;
  constexpr explicit Replicate(int workers) : n(workers) {}
};

/// [[spar::Input(...)]] / [[spar::Output(...)]] — the data-flow
/// annotations of the SPar language. In the embedded DSL they are type
/// tags: the annotated stage form
///
///   region.stage(spar::Input<Line>{}, spar::Output<Line>{},
///                spar::Replicate(8), fn);
///
/// is equivalent to region.stage<Line, Line>(Replicate(8), fn) but reads
/// like the paper's Listing 1 annotations and keeps the declared types
/// next to the stage body.
template <typename... Ts>
struct Input {};
template <typename... Ts>
struct Output {};

/// Region-level options. `ordered` mirrors SPar's -spar_ordered flag
/// (stream order preserved through replicated stages); `blocking` mirrors
/// -spar_blocking (suspending waits instead of pure busy-wait).
struct Options {
  bool ordered = true;
  bool blocking = true;
  std::size_t queue_capacity = 512;
  flow::SchedPolicy policy = flow::SchedPolicy::kRoundRobin;
  /// Telemetry sinks passed through to the lowered flow::Pipeline. Left
  /// inactive, the runtime falls back to the process-wide singletons when
  /// telemetry::set_enabled(true) — stage metrics then appear under the
  /// region's stage names ("flow.<name>.stageN.svc_ns" etc.).
  telemetry::StreamInstrumentation telemetry;
  /// Core affinity for the lowered pipeline's threads (off by default).
  flow::PinPolicy pin;
};

/// Per-stage lowering overrides. Region-level Options still set the
/// defaults; a stage declared with StageOptions can deviate — e.g. an
/// unordered least-loaded farm inside an otherwise ordered region.
struct StageOptions {
  std::optional<bool> ordered;               ///< override Options::ordered
  std::optional<flow::SchedPolicy> policy;   ///< override Options::policy
  /// Lower to an emitter/worker/collector farm even with Replicate(1):
  /// same items in the same order, at the cost of two extra threads. Used
  /// when a stage's farm shape (scheduling, ordering, queue telemetry)
  /// should not depend on the worker count.
  bool force_farm = false;
};

/// A [[spar::ToStream]] region under construction.
class ToStream {
 public:
  explicit ToStream(std::string name = "tostream");

  /// The stream-management preamble of the region (the for-loop in
  /// Listing 1, lines 4-5): a generator producing stream items;
  /// std::nullopt ends the stream. Must be declared exactly once, first.
  template <typename T, typename Fn>
  ToStream& source(Fn generator) {
    add_source(flow::make_source<T>(std::move(generator)));
    return *this;
  }

  /// [[spar::Stage, spar::Replicate(r)]] with Input(In) and Output(Out):
  /// a transforming stage. `fn` must be copyable (each replica owns a
  /// copy, the analogue of SPar replicating the stage body).
  template <typename In, typename Out, typename Fn>
  ToStream& stage(Replicate replicate, Fn fn) {
    add_stage(replicate.n, {}, flow::stage_factory<In, Out>(std::move(fn)));
    return *this;
  }

  /// Replicated stage with per-stage lowering overrides.
  template <typename In, typename Out, typename Fn>
  ToStream& stage(Replicate replicate, StageOptions opts, Fn fn) {
    add_stage(replicate.n, opts, flow::stage_factory<In, Out>(std::move(fn)));
    return *this;
  }

  /// Non-replicated stage ([[spar::Stage]] alone).
  template <typename In, typename Out, typename Fn>
  ToStream& stage(Fn fn) {
    return stage<In, Out>(Replicate(1), std::move(fn));
  }

  /// Annotation-style forms with explicit Input/Output tags (single-type
  /// streams; the first Input/Output type is the stream item).
  template <typename In, typename Out, typename Fn>
  ToStream& stage(Input<In>, Output<Out>, Replicate replicate, Fn fn) {
    return stage<In, Out>(replicate, std::move(fn));
  }
  template <typename In, typename Out, typename Fn>
  ToStream& stage(Input<In>, Output<Out>, Fn fn) {
    return stage<In, Out>(std::move(fn));
  }
  template <typename In, typename Fn>
  ToStream& last_stage(Input<In>, Fn fn) {
    return last_stage<In>(std::move(fn));
  }

  /// Stage from a node factory, for stages with per-replica state (e.g. a
  /// per-worker GPU stream/command-queue, as the paper's combined versions
  /// require).
  ToStream& stage_nodes(Replicate replicate,
                        std::function<std::unique_ptr<flow::Node>()> factory);
  ToStream& stage_nodes(Replicate replicate, StageOptions opts,
                        std::function<std::unique_ptr<flow::Node>()> factory);

  /// The final [[spar::Stage]] consuming the stream (Listing 1 line 22).
  /// Must be declared exactly once, last.
  template <typename In, typename Fn>
  ToStream& last_stage(Fn fn) {
    add_sink(flow::make_sink<In>(std::move(fn)));
    return *this;
  }

  /// Validates the region and reports the first diagnostic, in the style
  /// of SPar compiler errors. OK when the region is well-formed.
  [[nodiscard]] Status check() const;

  /// The FastFlow-equivalent structure the region lowers to, e.g.
  /// "pipeline(source, farm(stage x 8, ordered), sink)" — the analogue of
  /// inspecting SPar's generated code.
  [[nodiscard]] std::string graph_description() const;

  /// Number of runtime threads the lowered graph uses.
  [[nodiscard]] int thread_count() const;

  /// Compiles to the flow runtime and executes to completion. Single-shot.
  Status run(const Options& options = {});

  /// Every stage failure the lowered pipeline recorded, in observation
  /// order; valid after run() (empty before, and on clean runs). run()'s
  /// status is the first entry — this is the full per-stage picture, the
  /// analogue of flow::Pipeline::failure_report().
  [[nodiscard]] const flow::FailureReport& failure_report() const {
    return failure_report_;
  }

 private:
  struct StageDecl {
    int replicas = 1;
    StageOptions opts;
    std::function<std::unique_ptr<flow::Node>()> factory;
    [[nodiscard]] bool lowers_to_farm() const {
      return replicas > 1 || opts.force_farm;
    }
  };

  void add_source(std::unique_ptr<flow::Node> node);
  void add_stage(int replicas, StageOptions opts,
                 std::function<std::unique_ptr<flow::Node>()> factory);
  void add_sink(std::unique_ptr<flow::Node> node);

  std::string name_;
  std::unique_ptr<flow::Node> source_;
  int extra_sources_ = 0;  // duplicate source() declarations (diagnostic)
  std::vector<StageDecl> stages_;
  std::unique_ptr<flow::Node> sink_;
  int extra_sinks_ = 0;
  bool stage_after_sink_ = false;
  bool stage_before_source_ = false;
  bool has_bad_replicate_ = false;
  int bad_replicate_ = 0;  // first nonpositive Replicate seen
  bool ran_ = false;
  flow::FailureReport failure_report_;
};

}  // namespace hs::spar
