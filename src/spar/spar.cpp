#include "spar/spar.hpp"

namespace hs::spar {

ToStream::ToStream(std::string name) : name_(std::move(name)) {}

void ToStream::add_source(std::unique_ptr<flow::Node> node) {
  if (source_) {
    ++extra_sources_;
    return;
  }
  source_ = std::move(node);
}

void ToStream::add_stage(
    int replicas, StageOptions opts,
    std::function<std::unique_ptr<flow::Node>()> factory) {
  if (!source_) stage_before_source_ = true;
  if (sink_) stage_after_sink_ = true;
  if (replicas < 1 && !has_bad_replicate_) {
    has_bad_replicate_ = true;
    bad_replicate_ = replicas;
  }
  stages_.push_back(StageDecl{replicas, opts, std::move(factory)});
}

ToStream& ToStream::stage_nodes(
    Replicate replicate, std::function<std::unique_ptr<flow::Node>()> factory) {
  add_stage(replicate.n, {}, std::move(factory));
  return *this;
}

ToStream& ToStream::stage_nodes(
    Replicate replicate, StageOptions opts,
    std::function<std::unique_ptr<flow::Node>()> factory) {
  add_stage(replicate.n, opts, std::move(factory));
  return *this;
}

void ToStream::add_sink(std::unique_ptr<flow::Node> node) {
  if (sink_) {
    ++extra_sinks_;
    return;
  }
  sink_ = std::move(node);
}

Status ToStream::check() const {
  auto diag = [this](const std::string& msg) {
    return InvalidArgument("[spar] '" + name_ + "': " + msg);
  };
  if (!source_) {
    return diag("'ToStream' region has no stream source (the annotated loop "
                "producing stream items is missing)");
  }
  if (extra_sources_ > 0) {
    return diag("'ToStream' region declares more than one stream source");
  }
  if (stage_before_source_) {
    return diag("'Stage' declared before the 'ToStream' loop body; stages "
                "must appear inside the annotated region");
  }
  if (!sink_ && stages_.empty()) {
    return diag("'ToStream' region must contain at least one 'Stage'");
  }
  if (!sink_) {
    return diag("'ToStream' region has no final collecting 'Stage'");
  }
  if (extra_sinks_ > 0) {
    return diag("'ToStream' region declares more than one final 'Stage'");
  }
  if (stage_after_sink_) {
    return diag("'Stage' declared after the final collecting 'Stage'");
  }
  if (has_bad_replicate_) {
    return diag("'Replicate(" + std::to_string(bad_replicate_) +
                ")' requires a positive worker count");
  }
  return OkStatus();
}

std::string ToStream::graph_description() const {
  std::string out = "pipeline(source";
  for (const StageDecl& s : stages_) {
    if (s.lowers_to_farm()) {
      out += ", farm(stage x " + std::to_string(s.replicas) + ")";
    } else {
      out += ", stage";
    }
  }
  out += ", sink)";
  return out;
}

int ToStream::thread_count() const {
  int n = 2;  // source + sink
  for (const StageDecl& s : stages_) {
    n += s.lowers_to_farm() ? s.replicas + 2 : 1;
  }
  return n;
}

Status ToStream::run(const Options& options) {
  if (ran_) return FailedPrecondition("[spar] region already executed");
  if (Status s = check(); !s.ok()) return s;
  ran_ = true;

  flow::PipelineOptions popts;
  popts.queue_capacity = options.queue_capacity;
  popts.wait_mode =
      options.blocking ? flow::WaitMode::kBlocking : flow::WaitMode::kSpin;
  popts.telemetry = options.telemetry;
  popts.pin = options.pin;

  flow::Pipeline pipe(popts);
  pipe.add_stage(std::move(source_), name_ + ".source");
  int i = 0;
  for (StageDecl& s : stages_) {
    std::string sname = name_ + ".stage" + std::to_string(i++);
    if (s.lowers_to_farm()) {
      flow::FarmOptions fopts;
      fopts.replicas = s.replicas;
      fopts.ordered = s.opts.ordered.value_or(options.ordered);
      fopts.policy = s.opts.policy.value_or(options.policy);
      pipe.add_farm(std::move(s.factory), fopts, sname);
    } else {
      pipe.add_stage(s.factory(), sname);
    }
  }
  pipe.add_stage(std::move(sink_), name_ + ".sink");
  Status s = pipe.run_and_wait();
  failure_report_ = pipe.failure_report();
  return s;
}

}  // namespace hs::spar
