// CUDA-runtime-style API over the simulated GPUs (paper §III-D).
//
// The shim reproduces the CUDA semantics the paper's implementation work
// hinges on:
//  * cudaSetDevice is THREAD-LOCAL state ("has thread-side effects, thus it
//    must be called after initializing each thread", §IV-A);
//  * async copies require page-locked host memory allocated with
//    cudaMallocHost — cudaMemcpyAsync from pageable memory degrades to an
//    effectively synchronous staged copy at reduced bandwidth (why Dedup's
//    realloc'd buffers defeated the 2x-memory-space optimization, §V-B);
//  * streams are in-order dependency chains; events synchronize across
//    streams and report *virtual* elapsed time;
//  * kernels are launched with a grid/block geometry onto a stream.
//
// Error handling uses cudaError-style codes (the shim's public surface
// mirrors the CUDA runtime); richer diagnostics are available via
// last_error_message().
#pragma once

#include <cstdint>
#include <string>

#include "gpusim/device.hpp"
#include "gpusim/spec.hpp"

namespace hs::cudax {

using gpusim::Dim3;
using gpusim::KernelAttributes;
using gpusim::ThreadCtx;

/// CUDA-style error codes (subset).
enum class cudaError : std::uint8_t {
  cudaSuccess = 0,
  cudaErrorInvalidValue,
  cudaErrorMemoryAllocation,
  cudaErrorInvalidDevice,
  cudaErrorInvalidResourceHandle,
  cudaErrorNotReady,
  cudaErrorNoDevice,
  cudaErrorLaunchFailure,        ///< transient kernel/copy execution failure
  cudaErrorDevicesUnavailable,   ///< device lost / not available (sticky)
};

/// Human-readable error name.
std::string_view error_name(cudaError e);

/// Maps a simulator Status onto the closest cudaError (used by every memory
/// and execution entry point, so injected faults surface with the code a real
/// CUDA application would see).
cudaError error_from_status(const Status& s);

/// Inverse of error_from_status, for callers that translate API results back
/// into Status for the common retry machinery.
ErrorCode error_code_of(cudaError e);

/// Thread-local detailed message for the last failing call on this thread.
const std::string& last_error_message();

enum class cudaMemcpyKind : std::uint8_t {
  cudaMemcpyHostToDevice,
  cudaMemcpyDeviceToHost,
  cudaMemcpyDeviceToDevice,
};

/// Opaque stream handle. Stream{} is the default stream of the current
/// device at the time of use.
struct cudaStream_t {
  std::int32_t device = -1;   // -1 = default stream marker
  gpusim::StreamId id = 0;
  friend bool operator==(const cudaStream_t&, const cudaStream_t&) = default;
};

/// Opaque event handle.
struct cudaEvent_t {
  std::int32_t device = -1;
  gpusim::OpHandle op;
  bool recorded = false;
};

// ---- runtime binding ---------------------------------------------------------

/// Binds the simulated machine the CUDA calls operate on. Must outlive all
/// cudax use. Rebinding resets every thread's current device to 0.
void bind_machine(gpusim::Machine* machine);

/// Unbinds (subsequent calls fail with cudaErrorNoDevice).
void unbind_machine();

// ---- device management --------------------------------------------------------

/// Subset of cudaDeviceProp relevant to the paper's occupancy analysis.
struct cudaDeviceProp {
  char name[64] = {};
  int multiProcessorCount = 0;
  int maxThreadsPerMultiProcessor = 0;
  int warpSize = 0;
  int regsPerMultiprocessor = 0;
  std::size_t sharedMemPerMultiprocessor = 0;
  std::size_t totalGlobalMem = 0;
};

cudaError cudaGetDeviceCount(int* count);
/// Fills the properties of `device` (cudaGetDeviceProperties).
cudaError cudaGetDeviceProperties(cudaDeviceProp* prop, int device);
/// Free and total memory of the *current* device (cudaMemGetInfo).
cudaError cudaMemGetInfo(std::size_t* free_bytes, std::size_t* total_bytes);
/// Sets the calling thread's current device (thread-local!).
cudaError cudaSetDevice(int device);
cudaError cudaGetDevice(int* device);
/// Virtual-time barrier on every stream of the current device. Returns the
/// virtual completion time through `vtime` when non-null.
cudaError cudaDeviceSynchronize(double* vtime = nullptr);

// ---- memory --------------------------------------------------------------------

/// Device allocation on the current device.
cudaError cudaMalloc(void** ptr, std::size_t bytes);
cudaError cudaFree(void* ptr);
/// Page-locked host allocation (required for truly asynchronous copies).
cudaError cudaMallocHost(void** ptr, std::size_t bytes);
cudaError cudaFreeHost(void* ptr);
/// True if [ptr, ptr+len) lies in a cudaMallocHost allocation.
bool is_pinned(const void* ptr, std::size_t len);

/// Synchronous copy on the current device's default stream.
cudaError cudaMemcpy(void* dst, const void* src, std::size_t bytes,
                     cudaMemcpyKind kind);
/// Fills device memory on the current device's default stream.
cudaError cudaMemset(void* dst, int value, std::size_t bytes);
/// Asynchronous fill on `stream`.
cudaError cudaMemsetAsync(void* dst, int value, std::size_t bytes,
                          cudaStream_t stream);

/// Asynchronous copy on `stream`. With pageable host memory this degrades
/// to a staged, slower transfer (matching CUDA's documented behaviour);
/// out_effectively_sync (optional) reports whether the fallback happened.
cudaError cudaMemcpyAsync(void* dst, const void* src, std::size_t bytes,
                          cudaMemcpyKind kind, cudaStream_t stream,
                          bool* out_effectively_sync = nullptr);

// ---- streams and events ----------------------------------------------------------

cudaError cudaStreamCreate(cudaStream_t* stream);
/// Streams are virtual; destroy is a no-op kept for API fidelity.
cudaError cudaStreamDestroy(cudaStream_t stream);
/// Blocks (virtually) until the stream drains; reports the virtual
/// completion time through `vtime` when non-null.
cudaError cudaStreamSynchronize(cudaStream_t stream, double* vtime = nullptr);

cudaError cudaEventCreate(cudaEvent_t* event);
cudaError cudaEventRecord(cudaEvent_t* event, cudaStream_t stream);
cudaError cudaEventSynchronize(const cudaEvent_t& event,
                               double* vtime = nullptr);
/// Virtual milliseconds between two recorded events (CUDA semantics).
cudaError cudaEventElapsedTime(float* ms, const cudaEvent_t& start,
                               const cudaEvent_t& end);
/// Makes `stream` wait for `event` (cross-stream/device dependency).
cudaError cudaStreamWaitEvent(cudaStream_t stream, const cudaEvent_t& event);

// ---- kernel launch ------------------------------------------------------------------

/// Equivalent of kernel<<<grid, block, 0, stream>>>(...): `body` is invoked
/// once per simulated thread; it may return an integral cost (loop trip
/// count) or void. Uses the calling thread's current device.
template <typename F>
cudaError launch_kernel(const Dim3& grid, const Dim3& block,
                        const KernelAttributes& attrs, cudaStream_t stream,
                        F&& body);

/// Default-attribute overload.
template <typename F>
cudaError launch_kernel(const Dim3& grid, const Dim3& block,
                        cudaStream_t stream, F&& body) {
  return launch_kernel(grid, block, KernelAttributes{}, stream,
                       std::forward<F>(body));
}

// ---- internal access (used by the template and perfmodel integration) -----------

namespace detail {
gpusim::Machine* machine();
/// Resolves the current device; null + error set when unbound/invalid.
gpusim::Device* current_device();
/// Resolves a stream handle against the current device. Returns false and
/// sets the error message on mismatch/invalid handles.
bool resolve_stream(cudaStream_t stream, gpusim::Device** dev,
                    gpusim::StreamId* id);
void set_error(std::string msg);
cudaError fail(cudaError e, std::string msg);
/// Last op handle on a stream (for perfmodel dependency tracking).
gpusim::OpHandle stream_tail(cudaStream_t stream);
}  // namespace detail

template <typename F>
cudaError launch_kernel(const Dim3& grid, const Dim3& block,
                        const KernelAttributes& attrs, cudaStream_t stream,
                        F&& body) {
  gpusim::Device* dev = nullptr;
  gpusim::StreamId sid = 0;
  if (!detail::resolve_stream(stream, &dev, &sid)) {
    return cudaError::cudaErrorInvalidResourceHandle;
  }
  auto r = dev->launch(grid, block, attrs, sid, std::forward<F>(body));
  if (!r.ok()) {
    return detail::fail(error_from_status(r.status()), r.status().ToString());
  }
  return cudaError::cudaSuccess;
}

}  // namespace hs::cudax
