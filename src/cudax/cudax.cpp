#include "cudax/cudax.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace hs::cudax {

namespace {

// Global runtime binding. An epoch counter invalidates per-thread current-
// device caches when the machine is rebound.
std::atomic<gpusim::Machine*> g_machine{nullptr};
std::atomic<std::uint64_t> g_epoch{0};

thread_local std::uint64_t tls_epoch = ~0ull;
thread_local int tls_device = 0;
thread_local std::string tls_error;

/// Registry of page-locked host allocations.
struct PinnedRegistry {
  std::mutex mu;
  std::map<std::uintptr_t, std::size_t> ranges;

  void add(void* p, std::size_t n) {
    std::lock_guard<std::mutex> lock(mu);
    ranges[reinterpret_cast<std::uintptr_t>(p)] = n;
  }
  bool remove(void* p) {
    std::lock_guard<std::mutex> lock(mu);
    return ranges.erase(reinterpret_cast<std::uintptr_t>(p)) > 0;
  }
  bool contains(const void* p, std::size_t n) {
    std::lock_guard<std::mutex> lock(mu);
    auto addr = reinterpret_cast<std::uintptr_t>(p);
    auto it = ranges.upper_bound(addr);
    if (it == ranges.begin()) return false;
    --it;
    return addr >= it->first && addr + n <= it->first + it->second;
  }
};

PinnedRegistry& pinned_registry() {
  static PinnedRegistry* r = new PinnedRegistry();
  return *r;
}

int current_device_index() {
  if (tls_epoch != g_epoch.load(std::memory_order_acquire)) {
    tls_epoch = g_epoch.load(std::memory_order_acquire);
    tls_device = 0;
  }
  return tls_device;
}

}  // namespace

std::string_view error_name(cudaError e) {
  switch (e) {
    case cudaError::cudaSuccess: return "cudaSuccess";
    case cudaError::cudaErrorInvalidValue: return "cudaErrorInvalidValue";
    case cudaError::cudaErrorMemoryAllocation:
      return "cudaErrorMemoryAllocation";
    case cudaError::cudaErrorInvalidDevice: return "cudaErrorInvalidDevice";
    case cudaError::cudaErrorInvalidResourceHandle:
      return "cudaErrorInvalidResourceHandle";
    case cudaError::cudaErrorNotReady: return "cudaErrorNotReady";
    case cudaError::cudaErrorNoDevice: return "cudaErrorNoDevice";
    case cudaError::cudaErrorLaunchFailure: return "cudaErrorLaunchFailure";
    case cudaError::cudaErrorDevicesUnavailable:
      return "cudaErrorDevicesUnavailable";
  }
  return "cudaErrorUnknown";
}

cudaError error_from_status(const Status& s) {
  switch (s.code()) {
    case ErrorCode::kOk: return cudaError::cudaSuccess;
    case ErrorCode::kOutOfMemory: return cudaError::cudaErrorMemoryAllocation;
    case ErrorCode::kUnavailable: return cudaError::cudaErrorDevicesUnavailable;
    case ErrorCode::kInternal: return cudaError::cudaErrorLaunchFailure;
    default: return cudaError::cudaErrorInvalidValue;
  }
}

ErrorCode error_code_of(cudaError e) {
  switch (e) {
    case cudaError::cudaSuccess: return ErrorCode::kOk;
    case cudaError::cudaErrorMemoryAllocation: return ErrorCode::kOutOfMemory;
    case cudaError::cudaErrorDevicesUnavailable: return ErrorCode::kUnavailable;
    case cudaError::cudaErrorLaunchFailure: return ErrorCode::kInternal;
    case cudaError::cudaErrorNoDevice: return ErrorCode::kFailedPrecondition;
    default: return ErrorCode::kInvalidArgument;
  }
}

const std::string& last_error_message() { return tls_error; }

void bind_machine(gpusim::Machine* machine) {
  g_machine.store(machine, std::memory_order_release);
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
}

void unbind_machine() { bind_machine(nullptr); }

namespace detail {

gpusim::Machine* machine() {
  return g_machine.load(std::memory_order_acquire);
}

void set_error(std::string msg) { tls_error = std::move(msg); }

cudaError fail(cudaError e, std::string msg) {
  set_error(std::move(msg));
  return e;
}

gpusim::Device* current_device() {
  gpusim::Machine* m = machine();
  if (m == nullptr) {
    set_error("no machine bound (call cudax::bind_machine first)");
    return nullptr;
  }
  int idx = current_device_index();
  if (idx < 0 || idx >= m->device_count()) {
    set_error("current device index out of range");
    return nullptr;
  }
  return &m->device(idx);
}

bool resolve_stream(cudaStream_t stream, gpusim::Device** dev,
                    gpusim::StreamId* id) {
  gpusim::Machine* m = machine();
  if (m == nullptr) {
    set_error("no machine bound");
    return false;
  }
  if (stream.device < 0) {  // default stream of the current device
    gpusim::Device* d = current_device();
    if (d == nullptr) return false;
    *dev = d;
    *id = d->default_stream();
    return true;
  }
  if (stream.device >= m->device_count()) {
    set_error("stream belongs to a nonexistent device");
    return false;
  }
  *dev = &m->device(stream.device);
  if (stream.id >= (*dev)->stream_count()) {
    set_error("unknown stream id");
    return false;
  }
  *id = stream.id;
  return true;
}

gpusim::OpHandle stream_tail(cudaStream_t stream) {
  gpusim::Device* dev = nullptr;
  gpusim::StreamId sid = 0;
  if (!resolve_stream(stream, &dev, &sid)) return {};
  auto r = dev->stream_last(sid);
  return r.ok() ? r.value() : gpusim::OpHandle{};
}

}  // namespace detail

// ---- device management ---------------------------------------------------------

cudaError cudaGetDeviceCount(int* count) {
  gpusim::Machine* m = detail::machine();
  if (m == nullptr) {
    return detail::fail(cudaError::cudaErrorNoDevice, "no machine bound");
  }
  *count = m->device_count();
  return cudaError::cudaSuccess;
}

cudaError cudaGetDeviceProperties(cudaDeviceProp* prop, int device) {
  gpusim::Machine* m = detail::machine();
  if (m == nullptr) {
    return detail::fail(cudaError::cudaErrorNoDevice, "no machine bound");
  }
  if (device < 0 || device >= m->device_count()) {
    return detail::fail(cudaError::cudaErrorInvalidDevice,
                        "device index out of range");
  }
  const gpusim::DeviceSpec& spec = m->device(device).spec();
  *prop = cudaDeviceProp{};
  std::snprintf(prop->name, sizeof(prop->name), "%s", spec.name.c_str());
  prop->multiProcessorCount = static_cast<int>(spec.sm_count);
  prop->maxThreadsPerMultiProcessor =
      static_cast<int>(spec.max_threads_per_sm);
  prop->warpSize = static_cast<int>(spec.warp_size);
  prop->regsPerMultiprocessor = static_cast<int>(spec.registers_per_sm);
  prop->sharedMemPerMultiprocessor = spec.shared_mem_per_sm;
  prop->totalGlobalMem = spec.memory_bytes;
  return cudaError::cudaSuccess;
}

cudaError cudaMemGetInfo(std::size_t* free_bytes, std::size_t* total_bytes) {
  gpusim::Device* dev = detail::current_device();
  if (dev == nullptr) return cudaError::cudaErrorNoDevice;
  *total_bytes = dev->memory_capacity();
  *free_bytes = dev->memory_capacity() - dev->memory_used();
  return cudaError::cudaSuccess;
}

cudaError cudaSetDevice(int device) {
  gpusim::Machine* m = detail::machine();
  if (m == nullptr) {
    return detail::fail(cudaError::cudaErrorNoDevice, "no machine bound");
  }
  if (device < 0 || device >= m->device_count()) {
    return detail::fail(cudaError::cudaErrorInvalidDevice,
                        "device index out of range");
  }
  current_device_index();  // refresh epoch
  tls_device = device;
  return cudaError::cudaSuccess;
}

cudaError cudaGetDevice(int* device) {
  if (detail::machine() == nullptr) {
    return detail::fail(cudaError::cudaErrorNoDevice, "no machine bound");
  }
  *device = current_device_index();
  return cudaError::cudaSuccess;
}

cudaError cudaDeviceSynchronize(double* vtime) {
  gpusim::Device* dev = detail::current_device();
  if (dev == nullptr) return cudaError::cudaErrorNoDevice;
  double t = dev->sync_all();
  if (vtime != nullptr) *vtime = t;
  return cudaError::cudaSuccess;
}

// ---- memory ----------------------------------------------------------------------

cudaError cudaMalloc(void** ptr, std::size_t bytes) {
  gpusim::Device* dev = detail::current_device();
  if (dev == nullptr) return cudaError::cudaErrorNoDevice;
  auto r = dev->malloc(bytes);
  if (!r.ok()) {
    // Allocation failures keep CUDA's classic code except when the device
    // itself is gone, which is a distinct, non-retriable condition.
    cudaError e = r.status().code() == ErrorCode::kUnavailable
                      ? cudaError::cudaErrorDevicesUnavailable
                      : cudaError::cudaErrorMemoryAllocation;
    return detail::fail(e, r.status().ToString());
  }
  *ptr = r.value();
  return cudaError::cudaSuccess;
}

cudaError cudaFree(void* ptr) {
  gpusim::Device* dev = detail::current_device();
  if (dev == nullptr) return cudaError::cudaErrorNoDevice;
  Status s = dev->free(ptr);
  if (!s.ok()) {
    return detail::fail(cudaError::cudaErrorInvalidValue, s.ToString());
  }
  return cudaError::cudaSuccess;
}

cudaError cudaMallocHost(void** ptr, std::size_t bytes) {
  if (bytes == 0) {
    return detail::fail(cudaError::cudaErrorInvalidValue,
                        "zero-byte pinned allocation");
  }
  void* p = std::malloc(bytes);
  if (p == nullptr) {
    return detail::fail(cudaError::cudaErrorMemoryAllocation,
                        "host allocation failed");
  }
  pinned_registry().add(p, bytes);
  *ptr = p;
  return cudaError::cudaSuccess;
}

cudaError cudaFreeHost(void* ptr) {
  if (!pinned_registry().remove(ptr)) {
    return detail::fail(cudaError::cudaErrorInvalidValue,
                        "pointer was not allocated with cudaMallocHost");
  }
  std::free(ptr);
  return cudaError::cudaSuccess;
}

bool is_pinned(const void* ptr, std::size_t len) {
  return pinned_registry().contains(ptr, len);
}

namespace {

cudaError do_copy(void* dst, const void* src, std::size_t bytes,
                  cudaMemcpyKind kind, gpusim::Device* dev,
                  gpusim::StreamId sid, gpusim::HostMem host_mem) {
  Result<gpusim::OpHandle> r = InvalidArgument("unreachable");
  switch (kind) {
    case cudaMemcpyKind::cudaMemcpyHostToDevice:
      r = dev->memcpy_h2d(dst, src, bytes, sid, host_mem);
      break;
    case cudaMemcpyKind::cudaMemcpyDeviceToHost:
      r = dev->memcpy_d2h(dst, src, bytes, sid, host_mem);
      break;
    case cudaMemcpyKind::cudaMemcpyDeviceToDevice:
      r = dev->memcpy_d2d(dst, src, bytes, sid);
      break;
  }
  if (!r.ok()) {
    return detail::fail(error_from_status(r.status()), r.status().ToString());
  }
  return cudaError::cudaSuccess;
}

}  // namespace

cudaError cudaMemcpy(void* dst, const void* src, std::size_t bytes,
                     cudaMemcpyKind kind) {
  gpusim::Device* dev = detail::current_device();
  if (dev == nullptr) return cudaError::cudaErrorNoDevice;
  const void* host_side =
      kind == cudaMemcpyKind::cudaMemcpyHostToDevice ? src : dst;
  gpusim::HostMem mem = is_pinned(host_side, bytes) ? gpusim::HostMem::kPinned
                                                    : gpusim::HostMem::kPageable;
  return do_copy(dst, src, bytes, kind, dev, dev->default_stream(), mem);
}

cudaError cudaMemset(void* dst, int value, std::size_t bytes) {
  gpusim::Device* dev = detail::current_device();
  if (dev == nullptr) return cudaError::cudaErrorNoDevice;
  auto r = dev->memset(dst, value, bytes, dev->default_stream());
  if (!r.ok()) {
    return detail::fail(error_from_status(r.status()), r.status().ToString());
  }
  return cudaError::cudaSuccess;
}

cudaError cudaMemsetAsync(void* dst, int value, std::size_t bytes,
                          cudaStream_t stream) {
  gpusim::Device* dev = nullptr;
  gpusim::StreamId sid = 0;
  if (!detail::resolve_stream(stream, &dev, &sid)) {
    return cudaError::cudaErrorInvalidResourceHandle;
  }
  auto r = dev->memset(dst, value, bytes, sid);
  if (!r.ok()) {
    return detail::fail(error_from_status(r.status()), r.status().ToString());
  }
  return cudaError::cudaSuccess;
}

cudaError cudaMemcpyAsync(void* dst, const void* src, std::size_t bytes,
                          cudaMemcpyKind kind, cudaStream_t stream,
                          bool* out_effectively_sync) {
  gpusim::Device* dev = nullptr;
  gpusim::StreamId sid = 0;
  if (!detail::resolve_stream(stream, &dev, &sid)) {
    return cudaError::cudaErrorInvalidResourceHandle;
  }
  const void* host_side =
      kind == cudaMemcpyKind::cudaMemcpyHostToDevice ? src : dst;
  bool pinned = kind == cudaMemcpyKind::cudaMemcpyDeviceToDevice ||
                is_pinned(host_side, bytes);
  if (out_effectively_sync != nullptr) *out_effectively_sync = !pinned;
  return do_copy(dst, src, bytes, kind, dev, sid,
                 pinned ? gpusim::HostMem::kPinned
                        : gpusim::HostMem::kPageable);
}

// ---- streams and events -----------------------------------------------------------

cudaError cudaStreamCreate(cudaStream_t* stream) {
  gpusim::Device* dev = detail::current_device();
  if (dev == nullptr) return cudaError::cudaErrorNoDevice;
  stream->device = static_cast<std::int32_t>(dev->index());
  stream->id = dev->create_stream();
  return cudaError::cudaSuccess;
}

cudaError cudaStreamDestroy(cudaStream_t stream) {
  gpusim::Device* dev = nullptr;
  gpusim::StreamId sid = 0;
  if (!detail::resolve_stream(stream, &dev, &sid)) {
    return cudaError::cudaErrorInvalidResourceHandle;
  }
  return cudaError::cudaSuccess;  // virtual streams need no teardown
}

cudaError cudaStreamSynchronize(cudaStream_t stream, double* vtime) {
  gpusim::Device* dev = nullptr;
  gpusim::StreamId sid = 0;
  if (!detail::resolve_stream(stream, &dev, &sid)) {
    return cudaError::cudaErrorInvalidResourceHandle;
  }
  auto t = dev->sync_stream(sid);
  if (!t.ok()) {
    return detail::fail(cudaError::cudaErrorInvalidResourceHandle,
                        t.status().ToString());
  }
  if (vtime != nullptr) *vtime = t.value();
  return cudaError::cudaSuccess;
}

cudaError cudaEventCreate(cudaEvent_t* event) {
  if (detail::machine() == nullptr) {
    return detail::fail(cudaError::cudaErrorNoDevice, "no machine bound");
  }
  *event = cudaEvent_t{};
  return cudaError::cudaSuccess;
}

cudaError cudaEventRecord(cudaEvent_t* event, cudaStream_t stream) {
  gpusim::Device* dev = nullptr;
  gpusim::StreamId sid = 0;
  if (!detail::resolve_stream(stream, &dev, &sid)) {
    return cudaError::cudaErrorInvalidResourceHandle;
  }
  auto tail = dev->stream_last(sid);
  if (!tail.ok()) {
    return detail::fail(cudaError::cudaErrorInvalidResourceHandle,
                        tail.status().ToString());
  }
  event->device = static_cast<std::int32_t>(dev->index());
  event->op = tail.value();
  event->recorded = true;
  return cudaError::cudaSuccess;
}

cudaError cudaEventSynchronize(const cudaEvent_t& event, double* vtime) {
  if (!event.recorded) {
    return detail::fail(cudaError::cudaErrorNotReady, "event never recorded");
  }
  gpusim::Machine* m = detail::machine();
  if (m == nullptr) return cudaError::cudaErrorNoDevice;
  double t = event.op.valid() ? m->finish_time(event.op.task) : 0.0;
  if (vtime != nullptr) *vtime = t;
  return cudaError::cudaSuccess;
}

cudaError cudaEventElapsedTime(float* ms, const cudaEvent_t& start,
                               const cudaEvent_t& end) {
  double t0 = 0, t1 = 0;
  cudaError e = cudaEventSynchronize(start, &t0);
  if (e != cudaError::cudaSuccess) return e;
  e = cudaEventSynchronize(end, &t1);
  if (e != cudaError::cudaSuccess) return e;
  *ms = static_cast<float>((t1 - t0) * 1e3);
  return cudaError::cudaSuccess;
}

cudaError cudaStreamWaitEvent(cudaStream_t stream, const cudaEvent_t& event) {
  if (!event.recorded) {
    return detail::fail(cudaError::cudaErrorNotReady, "event never recorded");
  }
  gpusim::Device* dev = nullptr;
  gpusim::StreamId sid = 0;
  if (!detail::resolve_stream(stream, &dev, &sid)) {
    return cudaError::cudaErrorInvalidResourceHandle;
  }
  Status s = dev->wait_event(sid, event.op);
  if (!s.ok()) {
    return detail::fail(cudaError::cudaErrorInvalidValue, s.ToString());
  }
  return cudaError::cudaSuccess;
}

}  // namespace hs::cudax
