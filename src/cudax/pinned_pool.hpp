// Recycling pool for pinned host staging buffers.
//
// cudaMallocHost is the expensive way to get pinned memory (the real API
// pins pages through the driver), so the paper-era pattern of allocating a
// fresh pinned buffer per stage setup wastes exactly the per-item overhead
// the paper's datapath lesson warns about. PinnedPool hands out
// size-classed pinned slabs and caches them on release *without*
// cudaFreeHost — a recycled slab stays registered as pinned, so reuse is a
// pure pointer handoff. Only trim() actually returns memory.
//
// acquire() degrades gracefully: when pinned allocation fails the returned
// handle is invalid and the caller falls back to pageable memory (the
// transfers still work, just at pageable speed — mirroring real CUDA).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/stats.hpp"

namespace hs::cudax {

class PinnedPool {
 public:
  /// Move-only handle to a pinned slab; returns it to the pool on
  /// destruction. A default-constructed / failed handle is !valid().
  class Handle {
   public:
    Handle() = default;
    ~Handle() { release(); }

    Handle(Handle&& other) noexcept
        : pool_(other.pool_), ptr_(other.ptr_), capacity_(other.capacity_) {
      other.pool_ = nullptr;
      other.ptr_ = nullptr;
      other.capacity_ = 0;
    }
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = other.pool_;
        ptr_ = other.ptr_;
        capacity_ = other.capacity_;
        other.pool_ = nullptr;
        other.ptr_ = nullptr;
        other.capacity_ = 0;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    [[nodiscard]] bool valid() const { return ptr_ != nullptr; }
    [[nodiscard]] std::uint8_t* data() const {
      return static_cast<std::uint8_t*>(ptr_);
    }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }

    /// Returns the slab to the pool's cache early (still pinned there).
    void release();

   private:
    friend class PinnedPool;
    Handle(PinnedPool* pool, void* ptr, std::size_t capacity)
        : pool_(pool), ptr_(ptr), capacity_(capacity) {}

    PinnedPool* pool_ = nullptr;
    void* ptr_ = nullptr;
    std::size_t capacity_ = 0;
  };

  static constexpr std::size_t kMinClassBytes = 256;
  static constexpr std::size_t kMaxClassBytes = std::size_t{1} << 26;

  PinnedPool() = default;
  ~PinnedPool() { trim(); }
  PinnedPool(const PinnedPool&) = delete;
  PinnedPool& operator=(const PinnedPool&) = delete;

  /// Process-wide pool shared by the GPU bindings.
  static PinnedPool& Default();

  /// A pinned slab of at least `min_bytes` (power-of-two class). Invalid
  /// handle when pinned allocation fails — callers fall back to pageable.
  [[nodiscard]] Handle acquire(std::size_t min_bytes);

  /// cudaFreeHost's every cached slab.
  void trim();

  /// Torn-read-safe snapshot (atomic per-field reads; does not take the
  /// pool mutex, so it is cheap to poll from a sampler thread).
  [[nodiscard]] PoolCounters counters() const;

 private:
  void put_back(void* ptr, std::size_t capacity);

  mutable std::mutex mu_;
  std::vector<std::vector<void*>> free_;
  AtomicPoolCounters counters_;
};

}  // namespace hs::cudax

// Forward declaration kept light: the gauge helper lives in pinned_pool.cpp
// so only callers that export metrics pay for the telemetry include.
namespace hs::telemetry {
class Registry;
}

namespace hs::cudax {

/// Export PinnedPool::Default() counters into `registry` as gauge callbacks
/// ("pinned_pool.hits", ".misses", ".bytes_allocated", ".bytes_cached",
/// ".bytes_outstanding") — the telemetry::register_buffer_pool_gauges twin.
void register_pinned_pool_gauges(telemetry::Registry& registry);

}  // namespace hs::cudax
