#include "cudax/pinned_pool.hpp"

#include <bit>

#include "cudax/cudax.hpp"

namespace hs::cudax {

namespace {

constexpr std::size_t kNumClasses = 19;  // 256B (2^8) .. 64MB (2^26)

std::size_t class_capacity(std::size_t min_bytes) {
  if (min_bytes <= PinnedPool::kMinClassBytes) {
    return PinnedPool::kMinClassBytes;
  }
  return std::bit_ceil(min_bytes);
}

std::size_t class_index(std::size_t capacity) {
  return static_cast<std::size_t>(std::countr_zero(capacity)) - 8;
}

}  // namespace

void PinnedPool::Handle::release() {
  if (ptr_ != nullptr && pool_ != nullptr) {
    pool_->put_back(ptr_, capacity_);
  }
  pool_ = nullptr;
  ptr_ = nullptr;
  capacity_ = 0;
}

PinnedPool& PinnedPool::Default() {
  // Leaked singleton: staging handles inside pipeline nodes may be
  // destroyed during static teardown, after a local pool would be gone.
  // Cached slabs stay reachable through it, so leak checkers are quiet.
  static PinnedPool* pool = new PinnedPool();
  return *pool;
}

PinnedPool::Handle PinnedPool::acquire(std::size_t min_bytes) {
  if (min_bytes == 0) min_bytes = kMinClassBytes;
  const std::size_t cap = class_capacity(min_bytes);
  if (cap > kMaxClassBytes) return Handle{};  // beyond staging sizes
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.size() == kNumClasses) {
      auto& list = free_[class_index(cap)];
      if (!list.empty()) {
        void* ptr = list.back();
        list.pop_back();
        ++counters_.hits;
        counters_.bytes_cached -= cap;
        counters_.bytes_outstanding += cap;
        return Handle{this, ptr, cap};
      }
    }
  }
  void* ptr = nullptr;
  if (cudaMallocHost(&ptr, cap) != cudaError::cudaSuccess) {
    return Handle{};  // caller degrades to pageable memory
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.misses;
  counters_.bytes_allocated += cap;
  counters_.bytes_outstanding += cap;
  return Handle{this, ptr, cap};
}

void PinnedPool::put_back(void* ptr, std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.size() != kNumClasses) free_.resize(kNumClasses);
  free_[class_index(capacity)].push_back(ptr);
  counters_.bytes_outstanding -= capacity;
  counters_.bytes_cached += capacity;
}

void PinnedPool::trim() {
  std::vector<std::vector<void*>> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    drained.swap(free_);
    counters_.bytes_cached = 0;
  }
  for (auto& list : drained) {
    for (void* ptr : list) (void)cudaFreeHost(ptr);
  }
}

PoolCounters PinnedPool::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace hs::cudax
