#include "cudax/pinned_pool.hpp"

#include <bit>

#include "cudax/cudax.hpp"
#include "telemetry/telemetry.hpp"

namespace hs::cudax {

namespace {

constexpr std::size_t kNumClasses = 19;  // 256B (2^8) .. 64MB (2^26)

std::size_t class_capacity(std::size_t min_bytes) {
  if (min_bytes <= PinnedPool::kMinClassBytes) {
    return PinnedPool::kMinClassBytes;
  }
  return std::bit_ceil(min_bytes);
}

std::size_t class_index(std::size_t capacity) {
  return static_cast<std::size_t>(std::countr_zero(capacity)) - 8;
}

}  // namespace

void PinnedPool::Handle::release() {
  if (ptr_ != nullptr && pool_ != nullptr) {
    pool_->put_back(ptr_, capacity_);
  }
  pool_ = nullptr;
  ptr_ = nullptr;
  capacity_ = 0;
}

PinnedPool& PinnedPool::Default() {
  // Leaked singleton: staging handles inside pipeline nodes may be
  // destroyed during static teardown, after a local pool would be gone.
  // Cached slabs stay reachable through it, so leak checkers are quiet.
  static PinnedPool* pool = new PinnedPool();
  return *pool;
}

PinnedPool::Handle PinnedPool::acquire(std::size_t min_bytes) {
  if (min_bytes == 0) min_bytes = kMinClassBytes;
  const std::size_t cap = class_capacity(min_bytes);
  if (cap > kMaxClassBytes) return Handle{};  // beyond staging sizes
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.size() == kNumClasses) {
      auto& list = free_[class_index(cap)];
      if (!list.empty()) {
        void* ptr = list.back();
        list.pop_back();
        counters_.hits.fetch_add(1, std::memory_order_relaxed);
        counters_.bytes_cached.fetch_sub(cap, std::memory_order_relaxed);
        counters_.bytes_outstanding.fetch_add(cap, std::memory_order_relaxed);
        return Handle{this, ptr, cap};
      }
    }
  }
  void* ptr = nullptr;
  if (cudaMallocHost(&ptr, cap) != cudaError::cudaSuccess) {
    return Handle{};  // caller degrades to pageable memory
  }
  counters_.misses.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_allocated.fetch_add(cap, std::memory_order_relaxed);
  counters_.bytes_outstanding.fetch_add(cap, std::memory_order_relaxed);
  return Handle{this, ptr, cap};
}

void PinnedPool::put_back(void* ptr, std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.size() != kNumClasses) free_.resize(kNumClasses);
  free_[class_index(capacity)].push_back(ptr);
  counters_.bytes_outstanding.fetch_sub(capacity, std::memory_order_relaxed);
  counters_.bytes_cached.fetch_add(capacity, std::memory_order_relaxed);
}

void PinnedPool::trim() {
  std::vector<std::vector<void*>> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    drained.swap(free_);
    counters_.bytes_cached.store(0, std::memory_order_relaxed);
  }
  for (auto& list : drained) {
    for (void* ptr : list) (void)cudaFreeHost(ptr);
  }
}

PoolCounters PinnedPool::counters() const { return counters_.snapshot(); }

void register_pinned_pool_gauges(telemetry::Registry& registry) {
  auto field = [](std::uint64_t PoolCounters::* member) {
    return [member]() {
      PoolCounters c = PinnedPool::Default().counters();
      return static_cast<double>(c.*member);
    };
  };
  registry.gauge_callback("pinned_pool.hits", field(&PoolCounters::hits));
  registry.gauge_callback("pinned_pool.misses", field(&PoolCounters::misses));
  registry.gauge_callback("pinned_pool.bytes_allocated",
                          field(&PoolCounters::bytes_allocated));
  registry.gauge_callback("pinned_pool.bytes_cached",
                          field(&PoolCounters::bytes_cached));
  registry.gauge_callback("pinned_pool.bytes_outstanding",
                          field(&PoolCounters::bytes_outstanding));
}

}  // namespace hs::cudax
