// RAII C++ wrappers over the CUDA-style C API: device memory, pinned host
// memory, and streams that release themselves — the Core-Guidelines-style
// layer applications should prefer over raw cudaMalloc/cudaFree pairs.
//
// All wrappers are move-only and remember the device they were created on
// (cudaFree must run with that device current; the wrappers restore it,
// since cudaSetDevice is thread-local state).
#pragma once

#include <cstddef>
#include <utility>

#include "common/status.hpp"
#include "cudax/cudax.hpp"

namespace hs::cudax {

/// Device memory that frees itself. Create with DeviceBuffer::Allocate on
/// the current device.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  static Result<DeviceBuffer> Allocate(std::size_t bytes) {
    int device = 0;
    if (cudaGetDevice(&device) != cudaError::cudaSuccess) {
      return Internal("no current device: " + last_error_message());
    }
    void* ptr = nullptr;
    if (cudaMalloc(&ptr, bytes) != cudaError::cudaSuccess) {
      return OutOfMemory(last_error_message());
    }
    return DeviceBuffer(ptr, bytes, device);
  }

  DeviceBuffer(DeviceBuffer&& other) noexcept { swap(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  ~DeviceBuffer() { release(); }

  [[nodiscard]] void* data() const { return ptr_; }
  [[nodiscard]] std::size_t size() const { return bytes_; }
  [[nodiscard]] int device() const { return device_; }
  [[nodiscard]] bool valid() const { return ptr_ != nullptr; }

  template <typename T>
  [[nodiscard]] T* as() const {
    return static_cast<T*>(ptr_);
  }

 private:
  DeviceBuffer(void* ptr, std::size_t bytes, int device)
      : ptr_(ptr), bytes_(bytes), device_(device) {}

  void release() {
    if (ptr_ == nullptr) return;
    int prev = 0;
    bool restore = cudaGetDevice(&prev) == cudaError::cudaSuccess;
    (void)cudaSetDevice(device_);
    (void)cudaFree(ptr_);
    if (restore) (void)cudaSetDevice(prev);
    ptr_ = nullptr;
    bytes_ = 0;
  }

  void swap(DeviceBuffer& other) {
    std::swap(ptr_, other.ptr_);
    std::swap(bytes_, other.bytes_);
    std::swap(device_, other.device_);
  }

  void* ptr_ = nullptr;
  std::size_t bytes_ = 0;
  int device_ = 0;
};

/// Page-locked host memory that frees itself (async copies require it).
class PinnedBuffer {
 public:
  PinnedBuffer() = default;

  static Result<PinnedBuffer> Allocate(std::size_t bytes) {
    void* ptr = nullptr;
    if (cudaMallocHost(&ptr, bytes) != cudaError::cudaSuccess) {
      return OutOfMemory(last_error_message());
    }
    return PinnedBuffer(ptr, bytes);
  }

  PinnedBuffer(PinnedBuffer&& other) noexcept { swap(other); }
  PinnedBuffer& operator=(PinnedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  PinnedBuffer(const PinnedBuffer&) = delete;
  PinnedBuffer& operator=(const PinnedBuffer&) = delete;
  ~PinnedBuffer() { release(); }

  [[nodiscard]] void* data() const { return ptr_; }
  [[nodiscard]] std::size_t size() const { return bytes_; }
  [[nodiscard]] bool valid() const { return ptr_ != nullptr; }

  template <typename T>
  [[nodiscard]] T* as() const {
    return static_cast<T*>(ptr_);
  }

 private:
  PinnedBuffer(void* ptr, std::size_t bytes) : ptr_(ptr), bytes_(bytes) {}

  void release() {
    if (ptr_ != nullptr) (void)cudaFreeHost(ptr_);
    ptr_ = nullptr;
    bytes_ = 0;
  }

  void swap(PinnedBuffer& other) {
    std::swap(ptr_, other.ptr_);
    std::swap(bytes_, other.bytes_);
  }

  void* ptr_ = nullptr;
  std::size_t bytes_ = 0;
};

/// A stream created on the current device. Streams are virtual in the
/// simulation (destroy is a no-op) but the wrapper keeps call sites
/// uniform with real CUDA code.
class ScopedStream {
 public:
  ScopedStream() = default;

  static Result<ScopedStream> Create() {
    cudaStream_t stream;
    if (cudaStreamCreate(&stream) != cudaError::cudaSuccess) {
      return Internal(last_error_message());
    }
    return ScopedStream(stream);
  }

  ScopedStream(ScopedStream&& other) noexcept = default;
  ScopedStream& operator=(ScopedStream&& other) noexcept = default;
  ScopedStream(const ScopedStream&) = delete;
  ScopedStream& operator=(const ScopedStream&) = delete;
  ~ScopedStream() {
    if (stream_.device >= 0) (void)cudaStreamDestroy(stream_);
  }

  [[nodiscard]] cudaStream_t get() const { return stream_; }
  /// Virtual completion time of all enqueued work.
  Result<double> synchronize() const {
    double t = 0;
    if (cudaStreamSynchronize(stream_, &t) != cudaError::cudaSuccess) {
      return Internal(last_error_message());
    }
    return t;
  }

 private:
  explicit ScopedStream(cudaStream_t stream) : stream_(stream) {}
  cudaStream_t stream_{};
};

}  // namespace hs::cudax
