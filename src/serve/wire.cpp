#include "serve/wire.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define HS_WIRE_POSIX 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define HS_WIRE_POSIX 0
#endif

namespace hs::serve {

namespace {

/// Splits `line` on single spaces into at most `max` tokens (no empties).
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t space = line.find(' ', pos);
    const std::size_t end = space == std::string_view::npos ? line.size()
                                                            : space;
    if (end > pos) out.push_back(line.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}

bool parse_u64(std::string_view tok, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), out);
  return ec == std::errc() && ptr == tok.data() + tok.size();
}

bool parse_int(std::string_view tok, int& out) {
  std::int64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc() || ptr != tok.data() + tok.size()) return false;
  out = static_cast<int>(v);
  return true;
}

/// Deterministic compressible-ish payload for wire dedup jobs: repeating
/// 251-byte ramp, so the dedup path sees duplicate blocks without the wire
/// ever carrying the bytes.
std::vector<std::uint8_t> synth_payload(std::uint64_t bytes) {
  std::vector<std::uint8_t> payload(bytes);
  for (std::uint64_t i = 0; i < bytes; ++i) {
    payload[i] = static_cast<std::uint8_t>(i % 251);
  }
  return payload;
}

}  // namespace

Result<WireRequest> parse_request(std::string_view line) {
  const auto toks = tokenize(line);
  if (toks.empty()) return InvalidArgument("empty request line");
  WireRequest req;
  if (toks[0] == "ping") {
    req.op = WireRequest::Op::kPing;
    return req;
  }
  if (toks[0] == "stats") {
    req.op = WireRequest::Op::kStats;
    return req;
  }
  if (toks[0] == "quit") {
    req.op = WireRequest::Op::kQuit;
    return req;
  }
  if (toks[0] != "job") {
    return InvalidArgument("unknown verb '" + std::string(toks[0]) + "'");
  }
  if (toks.size() < 3) return InvalidArgument("job: missing tenant/kind");
  req.op = WireRequest::Op::kJob;
  req.tenant = std::string(toks[1]);
  if (toks[2] == "mandel") {
    int dim = 0;
    int niter = 0;
    if (toks.size() != 5 || !parse_int(toks[3], dim) ||
        !parse_int(toks[4], niter) || dim < 1 || niter < 1) {
      return InvalidArgument("job mandel: want <dim> <niter>");
    }
    req.job.kind = JobKind::kMandel;
    req.job.mandel.dim = dim;
    req.job.mandel.niter = niter;
    return req;
  }
  if (toks[2] == "dedup") {
    std::uint64_t bytes = 0;
    if (toks.size() != 4 || !parse_u64(toks[3], bytes) || bytes < 1 ||
        bytes > (64u << 20)) {
      return InvalidArgument("job dedup: want <payload_bytes> (<= 64MB)");
    }
    req.job.kind = JobKind::kDedup;
    req.job.payload = synth_payload(bytes);
    return req;
  }
  return InvalidArgument("unknown job kind '" + std::string(toks[2]) + "'");
}

std::string encode_job_line(std::string_view tenant, const JobRequest& job) {
  std::string line = "job ";
  line += tenant;
  if (job.kind == JobKind::kMandel) {
    line += " mandel " + std::to_string(job.mandel.dim) + " " +
            std::to_string(job.mandel.niter);
  } else {
    line += " dedup " + std::to_string(job.payload.size());
  }
  return line;
}

std::string encode_response(const WireResponse& resp) {
  switch (resp.kind) {
    case WireResponse::Kind::kOk:
      return "ok " + std::to_string(resp.job_id) + " " +
             std::to_string(resp.latency_ns) + " " +
             std::to_string(resp.device);
    case WireResponse::Kind::kRejected:
      return "rejected " + std::string(reject_code_name(resp.code));
    case WireResponse::Kind::kErr:
      return "err " + resp.detail;
    case WireResponse::Kind::kStats:
      return "stats " + std::to_string(resp.accepted) + " " +
             std::to_string(resp.shed) + " " +
             std::to_string(resp.quota_rejects) + " " +
             std::to_string(resp.completed) + " " +
             std::to_string(resp.workers);
    case WireResponse::Kind::kPong:
      return "pong";
  }
  return "err unreachable";
}

Result<WireResponse> parse_response(std::string_view line) {
  const auto toks = tokenize(line);
  if (toks.empty()) return InvalidArgument("empty response line");
  WireResponse resp;
  if (toks[0] == "pong") {
    resp.kind = WireResponse::Kind::kPong;
    return resp;
  }
  if (toks[0] == "ok") {
    if (toks.size() != 4 || !parse_u64(toks[1], resp.job_id) ||
        !parse_u64(toks[2], resp.latency_ns) ||
        !parse_int(toks[3], resp.device)) {
      return InvalidArgument("malformed ok line");
    }
    resp.kind = WireResponse::Kind::kOk;
    return resp;
  }
  if (toks[0] == "rejected") {
    if (toks.size() != 2) return InvalidArgument("malformed rejected line");
    resp.kind = WireResponse::Kind::kRejected;
    if (toks[1] == reject_code_name(RejectCode::kOverload)) {
      resp.code = RejectCode::kOverload;
    } else if (toks[1] == reject_code_name(RejectCode::kShuttingDown)) {
      resp.code = RejectCode::kShuttingDown;
    } else if (toks[1] == reject_code_name(RejectCode::kQuota)) {
      resp.code = RejectCode::kQuota;
    } else {
      return InvalidArgument("unknown reject code '" + std::string(toks[1]) +
                             "'");
    }
    return resp;
  }
  if (toks[0] == "stats") {
    if (toks.size() != 6 || !parse_u64(toks[1], resp.accepted) ||
        !parse_u64(toks[2], resp.shed) ||
        !parse_u64(toks[3], resp.quota_rejects) ||
        !parse_u64(toks[4], resp.completed) ||
        !parse_int(toks[5], resp.workers)) {
      return InvalidArgument("malformed stats line");
    }
    resp.kind = WireResponse::Kind::kStats;
    return resp;
  }
  if (toks[0] == "err") {
    resp.kind = WireResponse::Kind::kErr;
    resp.detail = line.size() > 4 ? std::string(line.substr(4)) : "";
    return resp;
  }
  return InvalidArgument("unknown response '" + std::string(toks[0]) + "'");
}

WireResponse response_for(const SubmitResult& submitted, JobResult result) {
  WireResponse resp;
  if (!submitted.accepted()) {
    resp.kind = WireResponse::Kind::kRejected;
    resp.code = submitted.rejected->code;
    return resp;
  }
  if (!result.status.ok()) {
    resp.kind = WireResponse::Kind::kErr;
    resp.detail = result.status.message();
    return resp;
  }
  resp.kind = WireResponse::Kind::kOk;
  resp.job_id = submitted.job_id;
  resp.latency_ns = result.latency_ns;
  resp.device = result.device;
  return resp;
}

#if HS_WIRE_POSIX

namespace {

/// Writes the whole buffer, absorbing short writes and EINTR.
bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_line(int fd, std::string line) {
  line.push_back('\n');
  return write_all(fd, line.data(), line.size());
}

/// Reads until `buf` holds a '\n'; returns the line (stripped) or false on
/// EOF/error. Leftover bytes stay in buf for the next call.
bool read_line(int fd, std::string& buf, std::string& line) {
  for (;;) {
    const std::size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      line.assign(buf, 0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    if (buf.size() > (1u << 16)) return false;  // unframed garbage
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace

struct WireServer::Impl {
  Service* service;
  WireServerConfig config;
  int listen_fd = -1;
  int bound_port = 0;
  std::thread acceptor;
  std::atomic<bool> stopping{false};
  std::atomic<int> connections{0};

  std::mutex mu;  ///< guards conn_fds + conn_threads
  std::vector<int> conn_fds;
  std::vector<std::thread> conn_threads;

  void serve_connection(int fd) {
    std::string rx;
    std::string line;
    while (!stopping.load(std::memory_order_acquire) &&
           read_line(fd, rx, line)) {
      auto parsed = parse_request(line);
      if (!parsed.ok()) {
        if (!write_line(fd, "err " +
                                std::string(parsed.status().message()))) {
          break;
        }
        continue;
      }
      WireRequest& req = parsed.value();
      bool keep = true;
      switch (req.op) {
        case WireRequest::Op::kPing:
          keep = write_line(fd, "pong");
          break;
        case WireRequest::Op::kQuit:
          keep = false;
          break;
        case WireRequest::Op::kStats: {
          const ServiceStats s = service->stats();
          WireResponse resp;
          resp.kind = WireResponse::Kind::kStats;
          resp.accepted = s.accepted;
          resp.shed = s.shed;
          resp.quota_rejects = s.quota_rejects;
          resp.completed = s.completed;
          resp.workers = s.workers_active;
          keep = write_line(fd, encode_response(resp));
          break;
        }
        case WireRequest::Op::kJob: {
          SubmitResult sub =
              service->submit(req.tenant, std::move(req.job), true);
          JobResult result;
          if (sub.accepted()) result = sub.result.get();
          keep = write_line(fd, encode_response(
                                    response_for(sub, std::move(result))));
          break;
        }
      }
      if (!keep) break;
    }
    // Deregister and close atomically: stop() only shutdown()s fds still in
    // conn_fds, so a number recycled by the kernel after this close can
    // never be hit by a stale shutdown.
    {
      std::lock_guard<std::mutex> lock(mu);
      conn_fds.erase(std::remove(conn_fds.begin(), conn_fds.end(), fd),
                     conn_fds.end());
      ::close(fd);
    }
    connections.fetch_sub(1, std::memory_order_relaxed);
  }

  /// `lfd` is a by-value copy: stop() invalidates the member while this
  /// thread is still inside accept().
  void accept_loop(int lfd) {
    for (;;) {
      const int fd = ::accept(lfd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener closed by stop()
      }
      if (stopping.load(std::memory_order_acquire) ||
          connections.load(std::memory_order_relaxed) >=
              config.max_connections) {
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      connections.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu);
      conn_fds.push_back(fd);
      conn_threads.emplace_back([this, fd] { serve_connection(fd); });
    }
  }
};

WireServer::WireServer(Service* service, WireServerConfig config)
    : impl_(std::make_unique<Impl>()) {
  impl_->service = service;
  impl_->config = std::move(config);
}

WireServer::~WireServer() { stop(); }

Status WireServer::start() {
  if (impl_->listen_fd >= 0) {
    return FailedPrecondition("wire server already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Internal("socket(): " + std::string(strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(impl_->config.port));
  if (::inet_pton(AF_INET, impl_->config.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgument("bad host '" + impl_->config.host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return Internal("bind(): " + std::string(strerror(errno)));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Internal("listen(): " + std::string(strerror(errno)));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Internal("getsockname(): " + std::string(strerror(errno)));
  }
  impl_->bound_port = ntohs(addr.sin_port);
  impl_->listen_fd = fd;
  impl_->stopping.store(false, std::memory_order_release);
  impl_->acceptor = std::thread([impl = impl_.get(), fd] {
    impl->accept_loop(fd);
  });
  return OkStatus();
}

void WireServer::stop() {
  if (impl_->listen_fd < 0) return;
  impl_->stopping.store(true, std::memory_order_release);
  // Closing the listener pops the acceptor out of accept(); shutting the
  // connection sockets pops their threads out of recv().
  ::shutdown(impl_->listen_fd, SHUT_RDWR);
  ::close(impl_->listen_fd);
  if (impl_->acceptor.joinable()) impl_->acceptor.join();
  impl_->listen_fd = -1;  // after the join: the acceptor owns its copy
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    // Still-registered fds are guaranteed open (close is under mu too);
    // the owning threads deregister and close them on their way out.
    for (const int fd : impl_->conn_fds) ::shutdown(fd, SHUT_RDWR);
    threads.swap(impl_->conn_threads);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

int WireServer::port() const { return impl_->bound_port; }

int WireServer::connection_count() const {
  return impl_->connections.load(std::memory_order_relaxed);
}

WireClient::WireClient() = default;

WireClient::~WireClient() { close(); }

Status WireClient::connect(const std::string& host, int port) {
  if (fd_ >= 0) return FailedPrecondition("already connected");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Internal("socket(): " + std::string(strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgument("bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return Unavailable("connect(): " + std::string(strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  fd_ = fd;
  rxbuf_.clear();
  return OkStatus();
}

void WireClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<WireResponse> WireClient::call(const std::string& line) {
  if (fd_ < 0) return FailedPrecondition("not connected");
  if (!write_line(fd_, line)) {
    return Unavailable("send failed: " + std::string(strerror(errno)));
  }
  std::string reply;
  if (!read_line(fd_, rxbuf_, reply)) {
    return Unavailable("connection closed by server");
  }
  return parse_response(reply);
}

#else  // !HS_WIRE_POSIX

struct WireServer::Impl {
  Service* service = nullptr;
  WireServerConfig config;
};

WireServer::WireServer(Service* service, WireServerConfig config)
    : impl_(std::make_unique<Impl>()) {
  impl_->service = service;
  impl_->config = std::move(config);
}
WireServer::~WireServer() = default;
Status WireServer::start() {
  return Unimplemented("wire server needs BSD sockets");
}
void WireServer::stop() {}
int WireServer::port() const { return 0; }
int WireServer::connection_count() const { return 0; }

WireClient::WireClient() = default;
WireClient::~WireClient() = default;
Status WireClient::connect(const std::string&, int) {
  return Unimplemented("wire client needs BSD sockets");
}
void WireClient::close() {}
Result<WireResponse> WireClient::call(const std::string&) {
  return Unimplemented("wire client needs BSD sockets");
}

#endif  // HS_WIRE_POSIX

}  // namespace hs::serve
