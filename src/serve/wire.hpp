// Minimal line-protocol front-end for serve::Service — the paper's stream
// source arriving over a real transport instead of in-process submit()
// calls, so the service's admission control can be driven (and observed)
// from outside the process.
//
// The protocol is newline-delimited ASCII over a blocking TCP socket, one
// request line per response line, synchronous per connection (concurrency =
// connections, matching a closed-loop load generator):
//
//   job <tenant> mandel <dim> <niter>      ->  ok <job_id> <latency_ns> <device>
//   job <tenant> dedup <payload_bytes>     ->  ok <job_id> <latency_ns> <device>
//                                          |   rejected <code>   (admission)
//                                          |   err <detail...>   (job failed)
//   stats  ->  stats <accepted> <shed> <quota_rejects> <completed> <workers>
//   ping   ->  pong
//   quit   ->  (connection closed)
//
// Dedup payloads are synthesized server-side from the requested size — the
// wire carries load shape, not data, which keeps the generator cheap enough
// to saturate the service from one driver process.
//
// Framing (parse_request/encode_*/parse_response) is pure string code,
// testable without sockets. WireServer/WireClient are the blocking POSIX
// transport; on platforms without BSD sockets they return Unimplemented.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "serve/service.hpp"

namespace hs::serve {

/// One parsed request line.
struct WireRequest {
  enum class Op : std::uint8_t { kJob, kStats, kPing, kQuit };
  Op op = Op::kPing;
  std::string tenant;  ///< kJob only
  JobRequest job;      ///< kJob only (dedup payload already synthesized)
};

/// One parsed response line.
struct WireResponse {
  enum class Kind : std::uint8_t { kOk, kRejected, kErr, kStats, kPong };
  Kind kind = Kind::kPong;
  std::uint64_t job_id = 0;      ///< kOk
  std::uint64_t latency_ns = 0;  ///< kOk
  int device = -1;               ///< kOk (-1 = CPU path)
  RejectCode code = RejectCode::kOverload;  ///< kRejected
  std::string detail;            ///< kErr message
  std::uint64_t accepted = 0, shed = 0, quota_rejects = 0, completed = 0;
  int workers = 0;               ///< kStats
};

/// Parses one request line (no trailing newline). InvalidArgument on
/// malformed input — the server answers those with an err line rather than
/// dropping the connection.
Result<WireRequest> parse_request(std::string_view line);

/// Client-side encoders (no trailing newline).
std::string encode_job_line(std::string_view tenant, const JobRequest& job);
std::string encode_response(const WireResponse& resp);

/// Parses one response line (no trailing newline).
Result<WireResponse> parse_response(std::string_view line);

/// Builds the response line for one submit outcome (the server's core,
/// shared with in-process tests).
WireResponse response_for(const SubmitResult& submitted, JobResult result);

struct WireServerConfig {
  std::string host = "127.0.0.1";  ///< loopback by default, deliberately
  int port = 0;                    ///< 0 = kernel-assigned (see port())
  /// Accepted connections beyond this are closed immediately; each
  /// connection costs one blocking thread.
  int max_connections = 64;
};

/// Thread-per-connection blocking server bridging the wire to a started
/// Service. start() binds + listens + spawns the acceptor; stop() closes
/// the listener, shuts down live connections and joins every thread.
/// The Service must be start()ed before and stop()ed after the WireServer.
class WireServer {
 public:
  explicit WireServer(Service* service, WireServerConfig config = {});
  ~WireServer();
  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  Status start();
  void stop();
  /// The bound port (the kernel's pick when config.port == 0); valid after
  /// start().
  [[nodiscard]] int port() const;
  /// Connections currently being served.
  [[nodiscard]] int connection_count() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Blocking request/response client for the load generator and tests.
class WireClient {
 public:
  WireClient();
  ~WireClient();
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  Status connect(const std::string& host, int port);
  void close();
  /// Sends one request line (newline appended) and reads one response line.
  Result<WireResponse> call(const std::string& line);

 private:
  int fd_ = -1;
  std::string rxbuf_;
};

}  // namespace hs::serve
