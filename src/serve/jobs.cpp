#include "serve/jobs.hpp"

#include <chrono>
#include <cstring>
#include <span>
#include <string>
#include <thread>

#include "cudax/cudax.hpp"
#include "dedup/stages.hpp"
#include "mandel/iteration_map.hpp"

namespace hs::serve {
namespace {

Status cuda_status(cudax::cudaError e, const char* what) {
  if (e == cudax::cudaError::cudaSuccess) return OkStatus();
  return Status(cudax::error_code_of(e),
                std::string(what) + ": " + cudax::last_error_message());
}

/// CPU-side completion shared by the GPU and CPU hash paths: duplicate
/// check, LZSS compression and output accounting are always host work, so
/// the archive bytes cannot depend on which rung hashed the blocks.
void finalize_dedup(std::vector<dedup::Batch>& batches,
                    const dedup::DedupConfig& config, JobResult& result) {
  dedup::DupCache cache;
  std::uint64_t out_bytes = 0;
  for (dedup::Batch& batch : batches) {
    cache.check(batch);
    dedup::compress_blocks_cpu(batch, config);
    out_bytes += dedup::batch_output_bytes(batch);
  }
  result.output_bytes = out_bytes;
  result.checksum = dedup_job_checksum(batches);
}

}  // namespace

std::uint64_t dedup_job_checksum(const std::vector<dedup::Batch>& batches) {
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = kOffset;
  auto mix = [&h](const void* bytes, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(bytes);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= kPrime;
    }
  };
  for (const dedup::Batch& batch : batches) {
    for (const dedup::BlockInfo& block : batch.blocks) {
      mix(block.digest.data(), block.digest.size());
      const std::uint8_t dup = block.duplicate ? 1 : 0;
      mix(&dup, 1);
      mix(&block.global_id, sizeof(block.global_id));
    }
  }
  return h;
}

JobEngine::JobEngine(gpusim::Machine* machine, BreakerBoard* breakers,
                     sched::DeviceLoadTracker* tracker, RetryPolicy policy,
                     RetryStats* stats, int replica_id)
    : machine_(machine),
      breakers_(breakers),
      tracker_(tracker),
      policy_(policy),
      stats_(stats),
      replica_(replica_id),
      backoff_(BackoffPolicy{policy.base_delay, policy.max_delay},
               0x7365727665ull + static_cast<std::uint64_t>(replica_id)) {}

int JobEngine::pick_device() {
  if (machine_ == nullptr || breakers_ == nullptr ||
      machine_->device_count() == 0) {
    return -1;
  }
  auto lost = [this](int d) { return machine_->device(d).lost(); };
  if (tracker_ == nullptr) {
    // Static binding: stay where we last ran (replica id initially), scan
    // forward past lost devices and open breakers.
    const int start = prev_device_ >= 0 ? prev_device_ : replica_;
    return breakers_->first_allowed(start, lost);
  }
  // Adaptive: the tracker proposes the least-loaded device; the breaker may
  // veto it, in which case the in-flight charge transfers to the first
  // admitted sibling.
  const int got = tracker_->acquire_preferring(prev_device_);
  if (got < 0) return -1;
  if (!lost(got) && breakers_->device(got).allow()) return got;
  const int alt = breakers_->first_allowed(
      got + 1, [&](int d) { return d == got || lost(d) ||
                                   tracker_->is_excluded(d); });
  if (alt < 0) {
    tracker_->abandon(got);
    return -1;
  }
  tracker_->transfer(got, alt);
  return alt;
}

Status JobEngine::gpu_once(int device, const JobRequest& req,
                           JobResult& result) {
  return req.kind == JobKind::kMandel ? mandel_once(device, req, result)
                                      : dedup_once(device, req, result);
}

Status JobEngine::mandel_once(int device, const JobRequest& req,
                              JobResult& result) {
  const kernels::MandelParams p = req.mandel;
  const std::size_t npix =
      static_cast<std::size_t>(p.dim) * static_cast<std::size_t>(p.dim);
  HS_RETURN_IF_ERROR(cuda_status(cudax::cudaSetDevice(device), "set device"));
  void* dev = nullptr;
  HS_RETURN_IF_ERROR(cuda_status(cudax::cudaMalloc(&dev, npix), "frame alloc"));
  auto* dev_pix = static_cast<std::uint8_t*>(dev);
  auto bail = [&](Status s) {
    (void)cudax::cudaFree(dev);
    return s;
  };
  Status s = cuda_status(
      cudax::launch_kernel(
          cudax::Dim3{static_cast<std::uint32_t>((npix + 255) / 256), 1, 1},
          cudax::Dim3{256, 1, 1}, cudax::cudaStream_t{},
          [p, npix, dev_pix](const cudax::ThreadCtx& tc) -> std::uint64_t {
            const std::uint64_t idx = tc.global_x();
            if (idx >= npix) return 1;
            const int i = static_cast<int>(idx / static_cast<std::uint64_t>(p.dim));
            const int j = static_cast<int>(idx % static_cast<std::uint64_t>(p.dim));
            const int k = kernels::mandel_iterations(p, i, j);
            dev_pix[idx] = kernels::mandel_color(k, p.niter);
            return static_cast<std::uint64_t>(k) + 1;
          }),
      "mandel kernel");
  if (!s.ok()) return bail(s);
  if (image_.size() < npix) image_.resize(npix);
  s = cuda_status(cudax::cudaMemcpy(image_.data(), dev, npix,
                                    cudax::cudaMemcpyKind::cudaMemcpyDeviceToHost),
                  "frame d2h");
  if (!s.ok()) return bail(s);
  s = cuda_status(cudax::cudaDeviceSynchronize(), "device sync");
  if (!s.ok()) return bail(s);
  (void)cudax::cudaFree(dev);
  result.checksum =
      mandel::image_checksum(std::span<const std::uint8_t>(image_.data(), npix));
  result.output_bytes = npix;
  return OkStatus();
}

Status JobEngine::dedup_once(int device, const JobRequest& req,
                             JobResult& result) {
  std::vector<dedup::Batch> batches = dedup::fragment_input(
      std::span<const std::uint8_t>(req.payload.data(), req.payload.size()),
      req.dedup);
  HS_RETURN_IF_ERROR(cuda_status(cudax::cudaSetDevice(device), "set device"));
  for (dedup::Batch& batch : batches) {
    const std::size_t nblocks = batch.blocks.size();
    if (nblocks == 0) continue;
    void* dev_data = nullptr;
    void* dev_digests = nullptr;
    HS_RETURN_IF_ERROR(
        cuda_status(cudax::cudaMalloc(&dev_data, batch.data.size()),
                    "batch alloc"));
    auto bail = [&](Status s) {
      (void)cudax::cudaFree(dev_data);
      if (dev_digests != nullptr) (void)cudax::cudaFree(dev_digests);
      return s;
    };
    Status s = cuda_status(cudax::cudaMalloc(&dev_digests, nblocks * 20),
                           "digest alloc");
    if (!s.ok()) return bail(s);
    s = cuda_status(
        cudax::cudaMemcpy(dev_data, batch.data.data(), batch.data.size(),
                          cudax::cudaMemcpyKind::cudaMemcpyHostToDevice),
        "batch h2d");
    if (!s.ok()) return bail(s);
    const auto* in = static_cast<const std::uint8_t*>(dev_data);
    auto* out = static_cast<std::uint8_t*>(dev_digests);
    const dedup::Batch* bp = &batch;
    s = cuda_status(
        cudax::launch_kernel(
            cudax::Dim3{static_cast<std::uint32_t>((nblocks + 63) / 64), 1, 1},
            cudax::Dim3{64, 1, 1}, cudax::cudaStream_t{},
            [bp, in, out, nblocks](const cudax::ThreadCtx& tc) -> std::uint64_t {
              const std::uint64_t b = tc.global_x();
              if (b >= nblocks) return 1;
              const dedup::BlockInfo& block = bp->blocks[b];
              const auto digest = kernels::Sha1::hash(
                  std::span<const std::uint8_t>(in + block.start, block.len));
              std::memcpy(out + b * 20, digest.data(), digest.size());
              return kernels::Sha1::compression_rounds(block.len) * 100;
            }),
        "sha1 kernel");
    if (!s.ok()) return bail(s);
    if (digests_.size() < nblocks * 20) digests_.resize(nblocks * 20);
    s = cuda_status(
        cudax::cudaMemcpy(digests_.data(), dev_digests, nblocks * 20,
                          cudax::cudaMemcpyKind::cudaMemcpyDeviceToHost),
        "digest d2h");
    if (!s.ok()) return bail(s);
    s = cuda_status(cudax::cudaDeviceSynchronize(), "device sync");
    if (!s.ok()) return bail(s);
    (void)cudax::cudaFree(dev_data);
    (void)cudax::cudaFree(dev_digests);
    for (std::size_t b = 0; b < nblocks; ++b) {
      std::memcpy(batch.blocks[b].digest.data(), digests_.data() + b * 20, 20);
    }
  }
  finalize_dedup(batches, req.dedup, result);
  return OkStatus();
}

void JobEngine::run_cpu(const JobRequest& req, JobResult& result) {
  if (req.kind == JobKind::kMandel) {
    const kernels::MandelParams p = req.mandel;
    const std::size_t npix =
        static_cast<std::size_t>(p.dim) * static_cast<std::size_t>(p.dim);
    if (image_.size() < npix) image_.resize(npix);
    for (int i = 0; i < p.dim; ++i) {
      kernels::mandel_line(
          p, i,
          std::span<std::uint8_t>(
              image_.data() + static_cast<std::size_t>(i) *
                                  static_cast<std::size_t>(p.dim),
              static_cast<std::size_t>(p.dim)));
    }
    result.checksum = mandel::image_checksum(
        std::span<const std::uint8_t>(image_.data(), npix));
    result.output_bytes = npix;
    return;
  }
  std::vector<dedup::Batch> batches = dedup::fragment_input(
      std::span<const std::uint8_t>(req.payload.data(), req.payload.size()),
      req.dedup);
  for (dedup::Batch& batch : batches) dedup::hash_blocks(batch);
  finalize_dedup(batches, req.dedup, result);
}

JobResult JobEngine::run(const JobRequest& req) {
  JobResult result;
  if (req.kind == JobKind::kSynthetic) {
    // Pure wall-clock occupancy of this worker; no device, no retry ladder.
    std::this_thread::sleep_for(std::chrono::nanoseconds(req.synthetic_ns));
    result.status = OkStatus();
    result.checksum = req.synthetic_ns;
    result.cpu_path = true;
    return result;
  }
  while (true) {
    const int d = pick_device();
    if (d < 0) break;  // every device lost or breaker-open: CPU rung
    const auto t0 = std::chrono::steady_clock::now();
    Status s = retry_status(policy_, stats_, "serve.job",
                            [&] { return gpu_once(d, req, result); },
                            jitter_delay());
    if (s.ok()) {
      breakers_->device(d).on_success();
      if (tracker_ != nullptr) {
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        tracker_->release(d, dt.count());
      }
      breakers_->publish();
      prev_device_ = d;
      result.status = OkStatus();
      result.cpu_path = false;
      result.device = d;
      return result;
    }
    breakers_->device(d).on_failure();
    if (tracker_ != nullptr) tracker_->abandon(d);
    if (s.code() == ErrorCode::kUnavailable) {
      // Sticky loss: this device never comes back — hard-open its breaker
      // (probes would fail instantly anyway) and drop the routing hint.
      if (stats_ != nullptr) {
        stats_->device_losses.fetch_add(1, std::memory_order_relaxed);
      }
      breakers_->device(d).force_open();
      if (tracker_ != nullptr) tracker_->exclude(d);
      breakers_->publish();
      prev_device_ = -1;
      if (stats_ != nullptr) {
        stats_->device_switches.fetch_add(1, std::memory_order_relaxed);
      }
      continue;  // migrate: try the next surviving device
    }
    breakers_->publish();
    break;  // retries exhausted on a live device: degrade to CPU
  }
  run_cpu(req, result);
  if (stats_ != nullptr) {
    stats_->cpu_fallbacks.fetch_add(1, std::memory_order_relaxed);
  }
  result.status = OkStatus();
  result.cpu_path = true;
  result.device = -1;
  return result;
}

}  // namespace hs::serve
