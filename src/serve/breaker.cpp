#include "serve/breaker.hpp"

#include <string>

namespace hs::serve {

std::string_view breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kHalfOpen: return "half-open";
    case BreakerState::kOpen: return "open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_(config) {
  if (config_.failure_threshold < 1) config_.failure_threshold = 1;
  if (config_.half_open_successes < 1) config_.half_open_successes = 1;
  if (config_.cooldown.count() < 0) config_.cooldown = {};
}

void CircuitBreaker::trip_locked() {
  state_ = BreakerState::kOpen;
  open_until_ = std::chrono::steady_clock::now() + config_.cooldown;
  consecutive_failures_ = 0;
  probe_successes_ = 0;
  probes_inflight_ = 0;
  ++trips_;
}

bool CircuitBreaker::allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (std::chrono::steady_clock::now() < open_until_) return false;
      state_ = BreakerState::kHalfOpen;
      probe_successes_ = 0;
      probes_inflight_ = 1;  // this caller is the probe
      return true;
    case BreakerState::kHalfOpen:
      // One probe at a time: concurrent workers keep routing around the
      // device until the probe's verdict is in.
      if (probes_inflight_ > 0) return false;
      probes_inflight_ = 1;
      return true;
  }
  return false;
}

void CircuitBreaker::on_success() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      if (probes_inflight_ > 0) --probes_inflight_;
      if (++probe_successes_ >= config_.half_open_successes) {
        state_ = BreakerState::kClosed;
        consecutive_failures_ = 0;
      }
      break;
    case BreakerState::kOpen:
      // A straggler finishing after another worker's failure re-opened the
      // breaker; its success says nothing about the device *now*.
      break;
  }
}

void CircuitBreaker::on_failure() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) trip_locked();
      break;
    case BreakerState::kHalfOpen:
      trip_locked();  // failed probe: back to open, fresh cooldown
      break;
    case BreakerState::kOpen:
      break;
  }
}

void CircuitBreaker::force_open() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != BreakerState::kOpen) trip_locked();
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

std::uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

BreakerBoard::BreakerBoard(int devices, BreakerConfig config,
                           telemetry::Registry* registry,
                           std::string_view prefix) {
  if (devices < 0) devices = 0;
  breakers_.reserve(static_cast<std::size_t>(devices));
  for (int d = 0; d < devices; ++d) {
    breakers_.push_back(std::make_unique<CircuitBreaker>(config));
  }
  if (registry != nullptr) {
    const std::string p(prefix);
    state_gauge_ = registry->gauge(p + ".breaker.state");
    trips_gauge_ = registry->gauge(p + ".breaker.trips");
    device_gauges_.reserve(breakers_.size());
    for (int d = 0; d < devices; ++d) {
      device_gauges_.push_back(
          registry->gauge(p + ".breaker.d" + std::to_string(d) + ".state"));
    }
    publish();
  }
}

std::uint64_t BreakerBoard::total_trips() const {
  std::uint64_t total = 0;
  for (const auto& b : breakers_) total += b->trips();
  return total;
}

int BreakerBoard::non_closed_count() const {
  int n = 0;
  for (const auto& b : breakers_) {
    if (b->state() != BreakerState::kClosed) ++n;
  }
  return n;
}

int BreakerBoard::open_count() const {
  int n = 0;
  for (const auto& b : breakers_) {
    if (b->state() == BreakerState::kOpen) ++n;
  }
  return n;
}

void BreakerBoard::publish() {
  if (state_gauge_ == nullptr) return;
  state_gauge_->set(static_cast<double>(non_closed_count()));
  trips_gauge_->set(static_cast<double>(total_trips()));
  for (std::size_t d = 0; d < breakers_.size(); ++d) {
    device_gauges_[d]->set(static_cast<double>(breakers_[d]->state()));
  }
}

}  // namespace hs::serve
