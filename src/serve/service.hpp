// Long-running multi-tenant job service over the stream runtime.
//
// The service wraps the dedup and mandel pipelines behind named job
// submission: tenants submit() JobRequests into bounded per-tenant queues;
// a persistent flow::Pipeline (source -> worker farm -> sink) drains them.
// Overload protection is layered (paper §V's "the runtime must not fall
// over when the offered load exceeds the service rate"):
//
//   * admission control — a full tenant queue, a queue-depth watermark, or
//     the observed p99 latency crossing its budget sheds new work at
//     submit() with an explicit Rejected{kOverload} (counted in
//     "<prefix>.shed") instead of queueing it into a latency cliff;
//   * deadline budgets — accepted jobs carry an absolute deadline through
//     the pipeline; the flow runtime drops expired work at stage
//     boundaries (it never occupies a GPU slot) and the sink completes the
//     ticket as a miss ("<prefix>.deadline_miss");
//   * circuit breakers + jittered retries — per-device breakers gate the
//     JobEngine's device choice, with capped-exponential decorrelated
//     jitter between retry attempts (serve/backoff.hpp);
//   * per-tenant quotas — hard caps on one tenant's queued and in-flight
//     jobs, rejected with Rejected{kQuota} (counted in
//     "<prefix>.tenant.<name>.quota_rejects") so a single hot tenant
//     cannot monopolize the farm however much global capacity remains;
//   * elastic workers — when ServiceConfig::scale is enabled the farm is
//     provisioned at scale.max_workers and a controller thread grows and
//     shrinks the fed-worker count with the backlog (serve/scale.hpp);
//     "<prefix>.workers" gauges the current count and every resize bumps
//     "<prefix>.scale_up"/"<prefix>.scale_down" and records a span.
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/retry.hpp"
#include "common/status.hpp"
#include "gpusim/device.hpp"
#include "sched/sched.hpp"
#include "serve/breaker.hpp"
#include "serve/jobs.hpp"
#include "serve/scale.hpp"
#include "telemetry/telemetry.hpp"

namespace hs::serve {

/// Why a submission was not accepted.
enum class RejectCode : std::uint8_t {
  kOverload,      ///< shed: queue full / watermark / p99 over budget
  kShuttingDown,  ///< service is stopped or draining
  kQuota,         ///< tenant exceeded its queued or in-flight quota
};

std::string_view reject_code_name(RejectCode code);

struct Rejected {
  RejectCode code = RejectCode::kOverload;
  std::string detail;
};

/// Outcome of submit(). Accepted jobs optionally carry a future the caller
/// can wait on; rejected ones say why.
struct SubmitResult {
  std::optional<Rejected> rejected;
  std::uint64_t job_id = 0;
  std::future<JobResult> result;  ///< valid when accepted with want_result

  [[nodiscard]] bool accepted() const { return !rejected.has_value(); }
};

struct ServiceConfig {
  int workers = 4;
  /// Elastic worker scaling (serve/scale.hpp). Disabled by default; when
  /// scale.enabled() the farm is provisioned at scale.max_workers, starts
  /// with `workers` fed (clamped into [min, max]) and a controller thread
  /// resizes it with the backlog.
  ScalePolicy scale;
  /// Per-tenant quota on *queued* jobs (0 = unlimited). Checked before the
  /// shared queue-capacity/watermark sheds; rejections are kQuota, not
  /// kOverload, so callers can tell "you are over your share" from "the
  /// service is full".
  std::size_t tenant_quota_queued = 0;
  /// Per-tenant quota on jobs accepted but not yet completed (queued +
  /// executing). 0 = unlimited.
  std::size_t tenant_quota_inflight = 0;
  /// Bounded per-tenant queue: submissions beyond this are shed.
  std::size_t tenant_queue_capacity = 64;
  /// Soft admission watermark as a fraction of tenant_queue_capacity; a
  /// tenant whose backlog reaches it sheds even though space remains, so
  /// accepted jobs keep a bounded wait. >= 1.0 disables the soft shed.
  double shed_watermark = 0.75;
  /// Weighted round-robin over the tenant queues: the drain loop serves up
  /// to `weight` consecutive jobs from a tenant before advancing to the
  /// next non-empty queue. Unlisted tenants (and weights < 1) get weight 1,
  /// which reduces WRR to the plain round-robin rotation — a service with
  /// no weights configured drains byte-identically to one predating them.
  /// Each tenant's effective weight is exported as the
  /// "<prefix>.tenant.<name>.weight" gauge.
  std::map<std::string, int, std::less<>> tenant_weights;
  /// Shed everything while the observed completion p99 exceeds this budget
  /// (re-evaluated every admission_refresh submissions). 0 disables.
  std::uint64_t p99_shed_budget_ns = 0;
  int admission_refresh = 64;
  /// Deadline budget armed at submission for requests that do not carry
  /// their own. 0 = no deadline.
  std::uint64_t default_deadline_ns = 0;
  sched::SchedMode sched = sched::SchedMode::kStatic;
  RetryPolicy retry;
  BreakerConfig breaker;
  /// flow queue capacity between source/farm/sink.
  std::size_t queue_capacity = 256;
  /// Telemetry sinks (null = uninstrumented). Metric names use `prefix`;
  /// besides the aggregate counters, each tenant gets a lazily-registered
  /// "<prefix>.tenant.<name>.{accepted,shed,deadline_miss,quota_rejects}"
  /// slice plus a "<prefix>.tenant.<name>.weight" gauge.
  telemetry::Registry* registry = nullptr;
  telemetry::SpanRecorder* spans = nullptr;
  telemetry::QueueDepthSampler* sampler = nullptr;
  std::string prefix = "serve";
};

/// Aggregate service counters (all monotonic since start()).
namespace detail {
struct ServiceImpl;
}  // namespace detail

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t quota_rejects = 0;   ///< Rejected{kQuota} submissions
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;       ///< accepted but resolved by stop()
  std::uint64_t deadline_miss = 0;
  std::uint64_t cpu_jobs = 0;        ///< jobs finished on the CPU rung
  std::uint64_t breaker_trips = 0;
  int breakers_open = 0;             ///< currently open (not half-open)
  int workers_active = 0;            ///< fed workers right now
  std::uint64_t scale_ups = 0;       ///< grow resizes since start()
  std::uint64_t scale_downs = 0;     ///< shrink resizes since start()
};

/// The service. Thread-safe submit(); start()/stop() from one owner thread.
class Service {
 public:
  /// `machine` may be null (CPU-only service). The config's telemetry
  /// sinks, machine and registry must outlive the service.
  explicit Service(gpusim::Machine* machine, ServiceConfig config = {});
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Spawns the pipeline. Fails if already started.
  Status start();

  /// Drains accepted work, stops the pipeline and joins it. Idempotent.
  /// Returns the pipeline's run status.
  Status stop();

  /// Admission-controlled enqueue for `tenant`. With want_result=false the
  /// ticket completes without promise machinery (open-loop load drivers).
  SubmitResult submit(std::string_view tenant, JobRequest request,
                      bool want_result = true);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const RetryStats& retry_stats() const;
  [[nodiscard]] BreakerBoard& breakers();
  /// Latency histogram snapshot of completed jobs ("<prefix>.latency_ns").
  [[nodiscard]] telemetry::HistogramSnapshot latency() const;
  /// Jobs currently queued across all tenants.
  [[nodiscard]] std::size_t backlog() const;
  /// Per-stage failure summary of the run ("" while running or when clean);
  /// meaningful after stop().
  [[nodiscard]] std::string failure_summary() const;

 private:
  std::unique_ptr<detail::ServiceImpl> impl_;
};

}  // namespace hs::serve
