#include "serve/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "flow/item.hpp"
#include "flow/node.hpp"
#include "flow/pipeline.hpp"
#include "serve/wrr.hpp"
#include "telemetry/span_recorder.hpp"

namespace hs::serve {

std::string_view reject_code_name(RejectCode code) {
  switch (code) {
    case RejectCode::kOverload: return "overload";
    case RejectCode::kShuttingDown: return "shutting-down";
    case RejectCode::kQuota: return "quota";
  }
  return "?";
}

namespace {

/// The stream item: one accepted job riding through the pipeline.
struct Ticket {
  JobRequest request;
  std::string tenant;
  std::uint64_t job_id = 0;
  std::uint64_t submit_ns = 0;
  std::uint64_t deadline_ns = 0;  ///< absolute, 0 = none
  std::shared_ptr<std::promise<JobResult>> promise;  ///< null = fire-and-forget
  /// The tenant's accepted-but-not-completed count, carried on the ticket so
  /// the sink can decrement it without a tenant-map lookup. Null when no
  /// in-flight quota is configured.
  std::shared_ptr<std::atomic<std::int64_t>> inflight;
  JobResult result;
};

}  // namespace

namespace detail {

struct ServiceImpl {
  ServiceImpl(gpusim::Machine* m, ServiceConfig cfg)
      : machine(m),
        config(std::move(cfg)),
        breakers(m != nullptr ? m->device_count() : 0, config.breaker,
                 config.registry, config.prefix) {
    if (config.workers < 1) config.workers = 1;
    if (config.tenant_queue_capacity < 1) config.tenant_queue_capacity = 1;
    if (config.admission_refresh < 1) config.admission_refresh = 1;
    if (config.sched == sched::SchedMode::kAdaptive && machine != nullptr &&
        machine->device_count() > 0) {
      tracker.emplace(machine->device_count());
    }
    if (config.registry != nullptr) {
      shed_counter = config.registry->counter(config.prefix + ".shed");
      miss_counter = config.registry->counter(config.prefix + ".deadline_miss");
      accepted_counter = config.registry->counter(config.prefix + ".accepted");
      completed_counter =
          config.registry->counter(config.prefix + ".completed");
      latency_hist = config.registry->histogram(config.prefix + ".latency_ns");
      quota_counter =
          config.registry->counter(config.prefix + ".quota_rejects");
      workers_gauge = config.registry->gauge(config.prefix + ".workers");
      scale_up_counter = config.registry->counter(config.prefix + ".scale_up");
      scale_down_counter =
          config.registry->counter(config.prefix + ".scale_down");
    }
    if (config.spans != nullptr) {
      scale_up_span = config.spans->intern(config.prefix + ".scale_up");
      scale_down_span = config.spans->intern(config.prefix + ".scale_down");
    }
  }

  /// Per-tenant slice of the admission/outcome counters, exported as
  /// "<prefix>.tenant.<name>.{accepted,shed,deadline_miss}". Registered
  /// lazily on a tenant's first submission (the tenant set is open-ended);
  /// null when the service runs uninstrumented.
  struct TenantCounters {
    telemetry::Counter* accepted = nullptr;
    telemetry::Counter* shed = nullptr;
    telemetry::Counter* deadline_miss = nullptr;
    telemetry::Counter* quota_rejects = nullptr;
  };
  TenantCounters* tenant_counters(std::string_view tenant) {
    if (config.registry == nullptr) return nullptr;
    std::lock_guard<std::mutex> lock(tenant_mu);
    auto it = tenant_metrics.find(tenant);
    if (it == tenant_metrics.end()) {
      const std::string base =
          config.prefix + ".tenant." + std::string(tenant);
      TenantCounters c;
      c.accepted = config.registry->counter(base + ".accepted");
      c.shed = config.registry->counter(base + ".shed");
      c.deadline_miss = config.registry->counter(base + ".deadline_miss");
      c.quota_rejects = config.registry->counter(base + ".quota_rejects");
      config.registry->gauge(base + ".weight")
          ->set(static_cast<double>(weight_of(tenant)));
      it = tenant_metrics.emplace(std::string(tenant), c).first;
    }
    return &it->second;
  }

  /// Effective WRR weight of a tenant: configured weight, floored at 1.
  [[nodiscard]] int weight_of(std::string_view tenant) const {
    return wrr.weight_of(tenant);
  }

  /// Weighted round-robin pop across the tenant queues (serve/wrr.hpp);
  /// false when all are empty. With every weight at the default 1 this is
  /// exactly the old one-pop-then-advance rotation.
  bool pop_next(Ticket& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (!wrr.pop(out)) return false;
    backlog.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  gpusim::Machine* machine;
  ServiceConfig config;
  BreakerBoard breakers;
  std::optional<sched::DeviceLoadTracker> tracker;
  RetryStats retry_stats;

  mutable std::mutex mu;  ///< guards wrr, accepting, tenant_inflight
  WrrQueues<Ticket> wrr{&config.tenant_weights};
  /// Admission gate for the submit/stop race: stop() flips it to false
  /// under mu *before* setting draining, so every ticket ever pushed
  /// happens-before any observation of draining==true — the source's final
  /// pop (and stop()'s leftover drain) therefore see them all, and no
  /// accepted future is ever stranded unresolved.
  bool accepting = false;
  /// Per-tenant accepted-but-not-completed counts (quota enforcement).
  std::map<std::string, std::shared_ptr<std::atomic<std::int64_t>>,
           std::less<>>
      tenant_inflight;

  flow::FarmController farm_ctl;
  std::thread scaler;
  std::atomic<bool> scaler_stop{false};
  std::atomic<int> workers_active{0};

  std::atomic<bool> running{false};
  std::atomic<bool> draining{false};
  bool started = false;   ///< owner-thread lifecycle state
  bool finished = false;
  std::atomic<std::size_t> backlog{0};
  std::atomic<std::uint64_t> next_job_id{1};
  std::atomic<std::uint64_t> submit_seq{0};
  std::atomic<bool> latency_overloaded{false};
  std::mutex admission_mu;  ///< guards latency_window_base
  telemetry::HistogramSnapshot latency_window_base;

  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> quota_rejects{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> deadline_miss{0};
  std::atomic<std::uint64_t> scale_ups{0};
  std::atomic<std::uint64_t> scale_downs{0};

  std::mutex tenant_mu;  ///< guards tenant_metrics
  std::map<std::string, TenantCounters, std::less<>> tenant_metrics;

  telemetry::Counter* shed_counter = nullptr;
  telemetry::Counter* miss_counter = nullptr;
  telemetry::Counter* accepted_counter = nullptr;
  telemetry::Counter* completed_counter = nullptr;
  telemetry::Histogram* latency_hist = nullptr;
  telemetry::Counter* quota_counter = nullptr;
  telemetry::Gauge* workers_gauge = nullptr;
  telemetry::Counter* scale_up_counter = nullptr;
  telemetry::Counter* scale_down_counter = nullptr;
  const char* scale_up_span = nullptr;
  const char* scale_down_span = nullptr;

  std::unique_ptr<flow::Pipeline> pipeline;
  std::thread runner;
  Status run_status;
};

}  // namespace detail

namespace {

/// Pipeline source: drains the tenant queues weighted-round-robin (see
/// ServiceConfig::tenant_weights); idles politely
/// when empty and ends the stream once the service is draining and dry.
class SourceNode final : public flow::Node {
 public:
  explicit SourceNode(detail::ServiceImpl* impl) : impl_(impl) {}

  flow::SvcResult svc(flow::Item) override {
    Ticket ticket;
    if (impl_->pop_next(ticket)) return emit(std::move(ticket));
    if (impl_->draining.load(std::memory_order_acquire)) {
      // The failed pop above raced submissions that were still allowed in:
      // a ticket accepted between that pop and this draining read would be
      // stranded by an immediate EOS. stop() closes admission (under the
      // queue mutex) *before* setting draining, so every accepted ticket
      // happens-before this read — one more pop under the mutex observes
      // them all, and only a genuinely dry queue ends the stream.
      if (impl_->pop_next(ticket)) return emit(std::move(ticket));
      return flow::SvcResult::Eos();
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    return flow::SvcResult::GoOn();
  }

 private:
  static flow::SvcResult emit(Ticket ticket) {
    const std::uint64_t deadline = ticket.deadline_ns;
    flow::Item item = flow::Item::make<Ticket>(std::move(ticket));
    if (deadline != 0) item.set_deadline_ns(deadline);
    return flow::SvcResult::Out(std::move(item));
  }

 private:
  detail::ServiceImpl* impl_;
};

/// Farm worker: executes the job through the JobEngine ladder. Expired
/// items never reach svc() — the flow runtime forwards them unserviced, so
/// an expired job never occupies a GPU slot.
class WorkerNode final : public flow::Node {
 public:
  explicit WorkerNode(detail::ServiceImpl* impl) : impl_(impl) {}

  void on_init(int replica_id) override {
    engine_ = std::make_unique<JobEngine>(
        impl_->machine, &impl_->breakers,
        impl_->tracker.has_value() ? &*impl_->tracker : nullptr,
        impl_->config.retry, &impl_->retry_stats, replica_id);
  }

  flow::SvcResult svc(flow::Item in) override {
    const std::uint64_t deadline = in.deadline_ns();
    Ticket ticket = in.take<Ticket>();
    ticket.result = engine_->run(ticket.request);
    flow::Item out = flow::Item::make<Ticket>(std::move(ticket));
    // Re-arm the envelope deadline so the miss is still visible at the sink
    // if the budget expires between here and completion.
    if (deadline != 0) out.set_deadline_ns(deadline);
    return flow::SvcResult::Out(std::move(out));
  }

 private:
  detail::ServiceImpl* impl_;
  std::unique_ptr<JobEngine> engine_;
};

/// Sink: finalizes the ticket — latency, deadline-miss accounting, promise
/// completion — and periodically refreshes the breaker gauges.
class SinkNode final : public flow::Node {
 public:
  explicit SinkNode(detail::ServiceImpl* impl) : impl_(impl) {}

  flow::SvcResult svc(flow::Item in) override {
    const bool expired = in.deadline_expired();
    Ticket ticket = in.take<Ticket>();
    const std::uint64_t now = flow::deadline_clock_now();
    ticket.result.latency_ns =
        now > ticket.submit_ns ? now - ticket.submit_ns : 0;
    ticket.result.deadline_missed =
        expired || (ticket.deadline_ns != 0 && now > ticket.deadline_ns);
    if (expired) {
      // Never executed: the runtime skipped every stage once the budget ran
      // out, so there is no result payload to report.
      ticket.result.status = Aborted("deadline budget exhausted in queue");
    }
    if (ticket.result.deadline_missed) {
      impl_->deadline_miss.fetch_add(1, std::memory_order_relaxed);
      if (impl_->miss_counter != nullptr) impl_->miss_counter->add(1);
      if (auto* tc = impl_->tenant_counters(ticket.tenant); tc != nullptr) {
        tc->deadline_miss->add(1);
      }
    }
    impl_->completed.fetch_add(1, std::memory_order_relaxed);
    if (impl_->completed_counter != nullptr) impl_->completed_counter->add(1);
    if (impl_->latency_hist != nullptr) {
      impl_->latency_hist->record(ticket.result.latency_ns);
    }
    if (ticket.inflight != nullptr) {
      ticket.inflight->fetch_sub(1, std::memory_order_relaxed);
    }
    if (ticket.promise != nullptr) {
      ticket.promise->set_value(std::move(ticket.result));
    }
    if (++since_publish_ >= 64) {
      since_publish_ = 0;
      impl_->breakers.publish();
    }
    return flow::SvcResult::GoOn();
  }

  void on_end() override { impl_->breakers.publish(); }

 private:
  detail::ServiceImpl* impl_;
  int since_publish_ = 0;
};

}  // namespace

Service::Service(gpusim::Machine* machine, ServiceConfig config)
    : impl_(std::make_unique<detail::ServiceImpl>(machine, std::move(config))) {}

Service::~Service() { (void)stop(); }

Status Service::start() {
  if (impl_->started) return FailedPrecondition("service already started");
  impl_->started = true;
  impl_->draining.store(false, std::memory_order_release);

  flow::PipelineOptions opts;
  opts.queue_capacity = impl_->config.queue_capacity;
  opts.telemetry.registry = impl_->config.registry;
  opts.telemetry.spans = impl_->config.spans;
  opts.telemetry.sampler = impl_->config.sampler;
  opts.telemetry.prefix = impl_->config.prefix;
  impl_->pipeline = std::make_unique<flow::Pipeline>(opts);
  detail::ServiceImpl* impl = impl_.get();
  impl_->pipeline->add_stage(std::make_unique<SourceNode>(impl), "ingest");
  const ScalePolicy& scale = impl_->config.scale;
  const bool elastic = scale.enabled();
  flow::FarmOptions farm;
  // Elastic mode provisions the farm at the ceiling and lets the controller
  // bound how many replicas the emitter feeds; the surplus park on empty
  // queues. Fixed mode is byte-identical to the pre-elastic service.
  farm.replicas = elastic ? scale.max_workers : impl_->config.workers;
  farm.ordered = false;
  farm.policy = flow::SchedPolicy::kLeastLoaded;
  farm.controller = elastic ? &impl_->farm_ctl : nullptr;
  impl_->pipeline->add_farm(
      [impl] { return std::make_unique<WorkerNode>(impl); }, farm, "exec");
  impl_->pipeline->add_stage(std::make_unique<SinkNode>(impl), "complete");

  const int initial =
      elastic ? std::clamp(impl_->config.workers, scale.min_workers,
                           scale.max_workers)
              : impl_->config.workers;
  if (elastic) impl_->farm_ctl.set_active(initial);
  impl_->workers_active.store(initial, std::memory_order_relaxed);
  if (impl_->workers_gauge != nullptr) {
    impl_->workers_gauge->set(static_cast<double>(initial));
  }

  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->accepting = true;
  }
  impl_->running.store(true, std::memory_order_release);
  impl_->runner = std::thread([impl] {
    Status s = impl->pipeline->run_and_wait();
    impl->run_status = s;  // read only after join in stop()
  });
  if (elastic) {
    impl_->scaler_stop.store(false, std::memory_order_relaxed);
    impl_->scaler = std::thread([impl, scale, initial] {
      ScaleDecider decider(scale, initial, ScaleDecider::Clock::now());
      while (!impl->scaler_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(scale.sample_interval);
        const auto resize = decider.observe(
            ScaleDecider::Clock::now(),
            impl->backlog.load(std::memory_order_relaxed),
            impl->latency_overloaded.load(std::memory_order_relaxed));
        if (!resize.has_value()) continue;
        const int prev = impl->workers_active.load(std::memory_order_relaxed);
        const std::uint64_t t0 = impl->config.spans != nullptr
                                     ? impl->config.spans->now_ns()
                                     : 0;
        impl->farm_ctl.set_active(*resize);
        impl->workers_active.store(*resize, std::memory_order_relaxed);
        if (impl->workers_gauge != nullptr) {
          impl->workers_gauge->set(static_cast<double>(*resize));
        }
        const bool grew = *resize > prev;
        if (grew) {
          impl->scale_ups.fetch_add(1, std::memory_order_relaxed);
          if (impl->scale_up_counter != nullptr) {
            impl->scale_up_counter->add(1);
          }
        } else {
          impl->scale_downs.fetch_add(1, std::memory_order_relaxed);
          if (impl->scale_down_counter != nullptr) {
            impl->scale_down_counter->add(1);
          }
        }
        if (impl->config.spans != nullptr) {
          impl->config.spans->record(
              grew ? impl->scale_up_span : impl->scale_down_span, t0,
              impl->config.spans->now_ns());
        }
      }
    });
  }
  return OkStatus();
}

Status Service::stop() {
  if (!impl_->started) return OkStatus();
  if (impl_->finished) return impl_->run_status;
  impl_->running.store(false, std::memory_order_release);
  // Close admission under the queue mutex BEFORE announcing draining: a
  // submit that already passed the lock-free running check either beats
  // this critical section (its ticket is then visible to the source's
  // final pop) or observes accepting == false and is rejected. Without
  // this ordering a ticket could land in the queue after the source went
  // EOS and its future would never resolve.
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->accepting = false;
  }
  impl_->draining.store(true, std::memory_order_release);
  if (impl_->runner.joinable()) impl_->runner.join();
  impl_->scaler_stop.store(true, std::memory_order_release);
  if (impl_->scaler.joinable()) impl_->scaler.join();
  // Belt-and-braces for abnormal ends (watchdog abort, stage failure):
  // a pipeline that died early leaves accepted tickets queued. Resolve
  // every one of them so no caller blocks on a future forever.
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    Ticket ticket;
    while (impl_->wrr.pop(ticket)) {
      impl_->backlog.fetch_sub(1, std::memory_order_relaxed);
      impl_->cancelled.fetch_add(1, std::memory_order_relaxed);
      impl_->completed.fetch_add(1, std::memory_order_relaxed);
      if (impl_->completed_counter != nullptr) {
        impl_->completed_counter->add(1);
      }
      if (ticket.inflight != nullptr) {
        ticket.inflight->fetch_sub(1, std::memory_order_relaxed);
      }
      if (ticket.promise != nullptr) {
        ticket.result.status = Aborted("service stopped before the job ran");
        ticket.promise->set_value(std::move(ticket.result));
      }
    }
  }
  impl_->finished = true;
  impl_->breakers.publish();
  return impl_->run_status;
}

SubmitResult Service::submit(std::string_view tenant, JobRequest request,
                             bool want_result) {
  SubmitResult out;
  impl_->submitted.fetch_add(1, std::memory_order_relaxed);
  auto reject = [&](RejectCode code, std::string detail) {
    if (code == RejectCode::kOverload) {
      impl_->shed.fetch_add(1, std::memory_order_relaxed);
      if (impl_->shed_counter != nullptr) impl_->shed_counter->add(1);
      if (auto* tc = impl_->tenant_counters(tenant); tc != nullptr) {
        tc->shed->add(1);
      }
    } else if (code == RejectCode::kQuota) {
      impl_->quota_rejects.fetch_add(1, std::memory_order_relaxed);
      if (impl_->quota_counter != nullptr) impl_->quota_counter->add(1);
      if (auto* tc = impl_->tenant_counters(tenant); tc != nullptr) {
        tc->quota_rejects->add(1);
      }
    }
    out.rejected = Rejected{code, std::move(detail)};
    return std::move(out);
  };
  if (!impl_->running.load(std::memory_order_acquire)) {
    return reject(RejectCode::kShuttingDown, "service not accepting work");
  }

  const ServiceConfig& cfg = impl_->config;
  // Latency watermark: recompute the observed p99 every admission_refresh
  // submissions (a snapshot per submit would dominate the admission cost).
  // The p99 is taken over the window since the previous refresh, not since
  // start(), so the gate reopens once completions get fast again.
  if (cfg.p99_shed_budget_ns != 0 && impl_->latency_hist != nullptr) {
    const std::uint64_t seq =
        impl_->submit_seq.fetch_add(1, std::memory_order_relaxed) + 1;
    if (seq % static_cast<std::uint64_t>(cfg.admission_refresh) == 0) {
      const auto snap = impl_->latency_hist->snapshot();
      std::lock_guard<std::mutex> lock(impl_->admission_mu);
      telemetry::HistogramSnapshot window = snap;
      const auto& base = impl_->latency_window_base;
      window.count -= base.count;
      window.sum -= base.sum;
      for (std::size_t b = 0; b < window.buckets.size(); ++b) {
        window.buckets[b] -= base.buckets[b];
      }
      impl_->latency_overloaded.store(
          window.count >= 16 &&
              window.p99() > static_cast<double>(cfg.p99_shed_budget_ns),
          std::memory_order_relaxed);
      impl_->latency_window_base = snap;
    }
    if (impl_->latency_overloaded.load(std::memory_order_relaxed)) {
      return reject(RejectCode::kOverload, "p99 latency over budget");
    }
  }

  Ticket ticket;
  ticket.request = std::move(request);
  ticket.tenant = std::string(tenant);
  ticket.job_id = impl_->next_job_id.fetch_add(1, std::memory_order_relaxed);
  ticket.submit_ns = flow::deadline_clock_now();
  const std::uint64_t budget = ticket.request.deadline_budget_ns != 0
                                   ? ticket.request.deadline_budget_ns
                                   : cfg.default_deadline_ns;
  if (budget != 0) ticket.deadline_ns = ticket.submit_ns + budget;
  out.job_id = ticket.job_id;
  if (want_result) {
    ticket.promise = std::make_shared<std::promise<JobResult>>();
    out.result = ticket.promise->get_future();
  }

  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    // Re-check admission under the queue mutex: the lock-free running
    // check above can race stop(), but accepting is flipped under mu
    // before draining is announced, so a push from here is guaranteed to
    // be drained (by the source or by stop()'s leftover sweep) rather
    // than stranded behind an EOS.
    if (!impl_->accepting) {
      out.result = {};
      return reject(RejectCode::kShuttingDown, "service not accepting work");
    }
    const std::size_t depth = impl_->wrr.depth(tenant);
    if (cfg.tenant_quota_queued != 0 && depth >= cfg.tenant_quota_queued) {
      out.result = {};
      return reject(RejectCode::kQuota, "tenant queued quota exceeded");
    }
    if (depth >= cfg.tenant_queue_capacity) {
      out.result = {};
      return reject(RejectCode::kOverload, "tenant queue full");
    }
    if (cfg.shed_watermark < 1.0 &&
        static_cast<double>(depth) >=
            cfg.shed_watermark *
                static_cast<double>(cfg.tenant_queue_capacity)) {
      out.result = {};
      return reject(RejectCode::kOverload, "tenant queue over watermark");
    }
    // Last check before the push so a later reject can't leak the
    // increment; the sink (or stop()'s sweep) owns the matching decrement.
    if (cfg.tenant_quota_inflight != 0) {
      auto it = impl_->tenant_inflight.find(tenant);
      if (it == impl_->tenant_inflight.end()) {
        it = impl_->tenant_inflight
                 .emplace(std::string(tenant),
                          std::make_shared<std::atomic<std::int64_t>>(0))
                 .first;
      }
      if (it->second->load(std::memory_order_relaxed) >=
          static_cast<std::int64_t>(cfg.tenant_quota_inflight)) {
        out.result = {};
        return reject(RejectCode::kQuota, "tenant in-flight quota exceeded");
      }
      it->second->fetch_add(1, std::memory_order_relaxed);
      ticket.inflight = it->second;
    }
    impl_->wrr.push(tenant, std::move(ticket));
  }
  impl_->backlog.fetch_add(1, std::memory_order_relaxed);
  impl_->accepted.fetch_add(1, std::memory_order_relaxed);
  if (impl_->accepted_counter != nullptr) impl_->accepted_counter->add(1);
  if (auto* tc = impl_->tenant_counters(tenant); tc != nullptr) {
    tc->accepted->add(1);
  }
  return out;
}

ServiceStats Service::stats() const {
  ServiceStats s;
  s.submitted = impl_->submitted.load(std::memory_order_relaxed);
  s.accepted = impl_->accepted.load(std::memory_order_relaxed);
  s.shed = impl_->shed.load(std::memory_order_relaxed);
  s.quota_rejects = impl_->quota_rejects.load(std::memory_order_relaxed);
  s.completed = impl_->completed.load(std::memory_order_relaxed);
  s.cancelled = impl_->cancelled.load(std::memory_order_relaxed);
  s.deadline_miss = impl_->deadline_miss.load(std::memory_order_relaxed);
  s.cpu_jobs = impl_->retry_stats.cpu_fallbacks.load(std::memory_order_relaxed);
  s.breaker_trips = impl_->breakers.total_trips();
  s.breakers_open = impl_->breakers.open_count();
  s.workers_active = impl_->workers_active.load(std::memory_order_relaxed);
  s.scale_ups = impl_->scale_ups.load(std::memory_order_relaxed);
  s.scale_downs = impl_->scale_downs.load(std::memory_order_relaxed);
  return s;
}

const RetryStats& Service::retry_stats() const { return impl_->retry_stats; }

BreakerBoard& Service::breakers() { return impl_->breakers; }

telemetry::HistogramSnapshot Service::latency() const {
  if (impl_->latency_hist == nullptr) return {};
  return impl_->latency_hist->snapshot();
}

std::size_t Service::backlog() const {
  return impl_->backlog.load(std::memory_order_relaxed);
}

std::string Service::failure_summary() const {
  if (!impl_->finished || impl_->pipeline == nullptr) return {};
  return impl_->pipeline->failure_report().ToString();
}

}  // namespace hs::serve
