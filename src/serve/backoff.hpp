// Capped exponential backoff with decorrelated jitter for the GPU retry
// ladder and the serve layer's own retries.
//
// The PR-1 recovery ladder used a fixed deterministic exponential delay
// (common/retry.hpp detail::retry_delay). Under the serve layer that is a
// liability: when a fault burst hits every farm worker at once, all of them
// sleep the same 50/100/200us staircase and re-arrive at the sick device in
// lockstep, re-colliding on every rung. Decorrelated jitter (Brooker,
// "Exponential Backoff And Jitter") spreads the retry times:
//
//   delay[0]   = uniform(base, base * growth)
//   delay[n+1] = min(cap, uniform(base, delay[n] * growth))
//
// which keeps the expected delay growing exponentially while the actual
// sleep of each worker is drawn independently. The sequence is driven by
// the repo's deterministic Xoshiro256, so a seeded run replays the same
// delays (tests bound them; nothing about output bytes depends on timing).
//
// Header-only on purpose: hs_mandel/hs_dedup use it inside their recovery
// ladders while hs_serve links *them*, so this header must not drag a
// library dependency in the other direction.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "common/rng.hpp"

namespace hs::serve {

/// Shape of one retry-delay sequence. Defaults mirror RetryPolicy's fixed
/// ladder (50us base, 5ms cap) so swapping the delay source does not change
/// the magnitude of waits, only their distribution.
struct BackoffPolicy {
  std::chrono::microseconds base{50};  ///< minimum (and first-draw floor)
  std::chrono::microseconds cap{5000};  ///< hard ceiling on any delay
  /// Upper-bound multiplier between consecutive draws; 3.0 is the
  /// decorrelated-jitter standard (expected growth ~2x per retry).
  double growth = 3.0;
};

/// One decorrelated-jitter delay sequence. Not thread-safe; each worker
/// (farm replica) owns one, seeded uniquely, and calls reset() when a fresh
/// operation starts so the first retry of every op waits near `base`.
class BackoffSequence {
 public:
  explicit BackoffSequence(BackoffPolicy policy = {}, std::uint64_t seed = 1)
      : policy_(sanitize(policy)), rng_(seed), prev_(policy_.base) {}

  /// Next delay: uniform in [base, min(cap, prev * growth)], remembered as
  /// the new `prev`. Every value is within [base, cap] by construction.
  [[nodiscard]] std::chrono::microseconds next() {
    const auto base_us = static_cast<double>(policy_.base.count());
    const auto cap_us = static_cast<double>(policy_.cap.count());
    double hi = static_cast<double>(prev_.count()) * policy_.growth;
    hi = std::clamp(hi, base_us, cap_us);
    const double us = base_us + (hi - base_us) * rng_.uniform();
    prev_ = std::chrono::microseconds(static_cast<std::int64_t>(us));
    return prev_;
  }

  /// Restart the sequence for a new operation (the RNG stream continues, so
  /// two ops on the same worker still draw different delays).
  void reset() { prev_ = policy_.base; }

  [[nodiscard]] const BackoffPolicy& policy() const { return policy_; }

 private:
  static BackoffPolicy sanitize(BackoffPolicy p) {
    if (p.base.count() < 0) p.base = std::chrono::microseconds(0);
    if (p.cap < p.base) p.cap = p.base;
    if (p.growth < 1.0) p.growth = 1.0;
    return p;
  }

  BackoffPolicy policy_;
  Xoshiro256 rng_;
  std::chrono::microseconds prev_;
};

}  // namespace hs::serve
