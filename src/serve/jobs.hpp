// Job requests and the per-worker execution engine of the serve layer.
//
// A job is a self-contained unit of pipeline work (one small Mandelbrot
// frame, or one dedup-archive pass over a payload) that a farm worker
// executes end to end. The engine runs the degradation ladder per job:
//
//   breaker-gated device choice -> jittered retries -> device migration
//   -> bit-exact CPU fallback
//
// Both paths of each job kind produce the identical checksum, so a result
// is valid regardless of which rung computed it — the ladder only affects
// latency, never bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/retry.hpp"
#include "common/status.hpp"
#include "dedup/types.hpp"
#include "gpusim/device.hpp"
#include "kernels/mandel.hpp"
#include "sched/sched.hpp"
#include "serve/backoff.hpp"
#include "serve/breaker.hpp"

namespace hs::serve {

enum class JobKind : std::uint8_t {
  kMandel = 0,
  kDedup = 1,
  /// Fixed-duration job: the worker blocks wall-clock for `synthetic_ns`
  /// and produces no output. Models work bound on an external resource
  /// (remote accelerator, storage, downstream service), so farm capacity is
  /// exactly workers / duration regardless of host core count — the load
  /// shape elasticity harnesses need to measure worker scaling on any
  /// machine. Skips the GPU ladder entirely.
  kSynthetic = 2,
};

/// One unit of work a tenant submits. `deadline_budget_ns` is relative to
/// submission (0 = use the service default; the service may still leave the
/// job deadline-free).
struct JobRequest {
  JobKind kind = JobKind::kMandel;
  kernels::MandelParams mandel;           ///< kMandel: frame to render
  std::vector<std::uint8_t> payload;      ///< kDedup: bytes to archive
  dedup::DedupConfig dedup;               ///< kDedup: fragmentation config
  std::uint64_t synthetic_ns = 0;         ///< kSynthetic: blocking duration
  std::uint64_t deadline_budget_ns = 0;
};

struct JobResult {
  Status status;
  std::uint64_t checksum = 0;      ///< path-independent output fingerprint
  std::uint64_t output_bytes = 0;  ///< rendered pixels / compressed bytes
  bool cpu_path = false;           ///< final rung computed the result
  bool deadline_missed = false;    ///< set by the service sink
  std::uint64_t latency_ns = 0;    ///< submit -> completion (service sink)
  int device = -1;                 ///< device that computed it (-1 = CPU)
};

/// Per-worker-replica executor. Not thread-safe; each farm worker owns one.
/// The breaker board, tracker and retry stats are shared across replicas.
class JobEngine {
 public:
  JobEngine(gpusim::Machine* machine, BreakerBoard* breakers,
            sched::DeviceLoadTracker* tracker, RetryPolicy policy,
            RetryStats* stats, int replica_id);

  /// Executes one job through the full ladder. Always returns a usable
  /// result: the CPU rung cannot fail.
  JobResult run(const JobRequest& req);

 private:
  /// Picks a breaker-admitted, surviving device (tracker-charged in
  /// adaptive mode). Returns -1 when every device is lost or open.
  int pick_device();
  /// One whole-job GPU pass on `device`; idempotent, safe to retry.
  Status gpu_once(int device, const JobRequest& req, JobResult& result);
  Status mandel_once(int device, const JobRequest& req, JobResult& result);
  Status dedup_once(int device, const JobRequest& req, JobResult& result);
  void run_cpu(const JobRequest& req, JobResult& result);

  auto jitter_delay() {
    return [this](int retry_index) {
      if (retry_index == 0) backoff_.reset();
      std::this_thread::sleep_for(backoff_.next());
    };
  }

  gpusim::Machine* machine_;
  BreakerBoard* breakers_;
  sched::DeviceLoadTracker* tracker_;  ///< null = static replica binding
  RetryPolicy policy_;
  RetryStats* stats_;
  int replica_ = 0;
  int prev_device_ = -1;  ///< sticky routing hint
  BackoffSequence backoff_;
  std::vector<std::uint8_t> image_;     ///< reused mandel frame buffer
  std::vector<std::uint8_t> digests_;   ///< reused dedup digest staging
};

/// FNV-1a over a dedup job's per-block results (digest bytes, duplicate
/// flag, global id). Identical for the GPU and CPU hash paths by
/// construction, so it fingerprints the archive independent of the rung.
std::uint64_t dedup_job_checksum(const std::vector<dedup::Batch>& batches);

}  // namespace hs::serve
