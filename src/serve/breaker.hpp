// Per-device circuit breakers for the serve layer.
//
// The degradation ladder in the pipelines (retry -> migrate -> CPU) reacts
// to *individual* failures; a breaker reacts to failure *rates*. When a
// device keeps failing (fault injection, allocation pressure, imminent
// loss), retrying every job against it wastes the retry budget of every
// worker in turn. The breaker trips after `failure_threshold` consecutive
// failures and short-circuits the device entirely: jobs route to sibling
// devices or the bit-exact CPU path while the breaker is open. After a
// cooldown one half-open probe is admitted; `half_open_successes`
// consecutive probe successes close the breaker again, any probe failure
// re-opens it.
//
// DeviceLoadTracker::exclude() is *permanent* (built for sticky device
// loss); the breaker is the recoverable complement for transient fault
// bursts, layered in front of the tracker by the serve JobEngine.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace hs::serve {

enum class BreakerState : std::uint8_t { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

std::string_view breaker_state_name(BreakerState state);

struct BreakerConfig {
  /// Consecutive failures that trip a closed breaker.
  int failure_threshold = 3;
  /// How long an open breaker rejects before admitting a half-open probe.
  std::chrono::microseconds cooldown{2000};
  /// Consecutive half-open probe successes required to close again.
  int half_open_successes = 2;
};

/// Thread-safe three-state circuit breaker for one device. Callers must
/// pair every allow()==true with exactly one on_success()/on_failure().
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config = {});

  /// True when a call may proceed. An open breaker whose cooldown elapsed
  /// transitions to half-open and admits a single in-flight probe.
  [[nodiscard]] bool allow();

  void on_success();
  void on_failure();
  /// Trips immediately regardless of the failure count (sticky device loss).
  void force_open();

  [[nodiscard]] BreakerState state() const;
  /// Closed -> open transitions so far.
  [[nodiscard]] std::uint64_t trips() const;

 private:
  void trip_locked();

  mutable std::mutex mu_;
  BreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int probe_successes_ = 0;
  int probes_inflight_ = 0;
  std::chrono::steady_clock::time_point open_until_{};
  std::uint64_t trips_ = 0;
};

/// The service's breaker per device, plus telemetry publication:
///   serve.breaker.state      gauge, number of devices currently NOT closed
///   serve.breaker.trips      gauge, cumulative closed->open transitions
///   serve.breaker.d<i>.state gauge, per-device state (0/1/2 as BreakerState)
/// (gauge names take the service's prefix; "serve" shown).
class BreakerBoard {
 public:
  BreakerBoard(int devices, BreakerConfig config,
               telemetry::Registry* registry = nullptr,
               std::string_view prefix = "serve");

  [[nodiscard]] int device_count() const {
    return static_cast<int>(breakers_.size());
  }
  [[nodiscard]] CircuitBreaker& device(int d) {
    return *breakers_.at(static_cast<std::size_t>(d));
  }

  /// First device at or after `prefer` (mod count) whose breaker admits a
  /// call, skipping indices for which `skip(d)` is true; -1 when none.
  /// The admitted slot is claimed — pair with on_success()/on_failure().
  template <typename SkipFn>
  [[nodiscard]] int first_allowed(int prefer, SkipFn&& skip) {
    const int n = device_count();
    if (n == 0) return -1;
    int start = prefer < 0 ? 0 : prefer % n;
    for (int k = 0; k < n; ++k) {
      const int d = (start + k) % n;
      if (skip(d)) continue;
      if (breakers_[static_cast<std::size_t>(d)]->allow()) return d;
    }
    return -1;
  }

  [[nodiscard]] std::uint64_t total_trips() const;
  /// Devices currently open or half-open.
  [[nodiscard]] int non_closed_count() const;
  /// Devices currently open (half-open counts as recovering, not open).
  [[nodiscard]] int open_count() const;

  /// Pushes the current states into the registry gauges (no-op without a
  /// registry). Cheap; callers invoke it after state-changing events.
  void publish();

 private:
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  telemetry::Gauge* state_gauge_ = nullptr;
  telemetry::Gauge* trips_gauge_ = nullptr;
  std::vector<telemetry::Gauge*> device_gauges_;
};

}  // namespace hs::serve
