// Weighted-round-robin tenant queues: the serve layer's drain structure,
// split out so the rotation is unit-testable without threads.
//
// The rotation serves up to `weight` consecutive items from a tenant's
// queue before advancing to the next non-empty one. Weights come from a
// caller-owned map (service config); unlisted tenants and weights < 1 get
// weight 1, and with every weight at 1 the rotation is byte-identical to
// plain round-robin (one pop, then advance) — the scheme predating
// weights.
//
// The rotation position is tracked by *tenant key*, not by index into the
// map: a push() that creates a tenant lexicographically before the current
// position must neither shift the rotation onto a different tenant nor
// inherit the in-progress burst credit (the PR-9 `rr_ % n` index scheme did
// both). Tenant queues that stay empty for `prune_after` consecutive
// pop/push operations are erased — one-shot tenants no longer leak a map
// node per name for the life of the service — and because the rotation is
// key-stable, pruning a queue never disturbs the order the surviving
// tenants are served in. depth() reports 0 for pruned (and never-seen)
// tenants alike; a pruned tenant that submits again is simply re-created.
//
// Not thread-safe: the service guards it with its own mutex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <iterator>
#include <map>
#include <string>
#include <string_view>
#include <utility>

namespace hs::serve {

template <typename T>
class WrrQueues {
 public:
  /// `weights` is borrowed (may be null = all weights 1) and must outlive
  /// the queues. `prune_after` is the number of pop()/push() operations a
  /// tenant's queue may sit empty before it is erased (0 = never prune).
  explicit WrrQueues(const std::map<std::string, int, std::less<>>* weights,
                     std::uint64_t prune_after = 4096)
      : weights_(weights), prune_after_(prune_after) {}

  /// Effective weight of a tenant: configured weight, floored at 1.
  [[nodiscard]] int weight_of(std::string_view tenant) const {
    if (weights_ == nullptr) return 1;
    const auto it = weights_->find(tenant);
    if (it == weights_->end()) return 1;
    return it->second < 1 ? 1 : it->second;
  }

  /// Queued items for one tenant (0 when unknown or pruned).
  [[nodiscard]] std::size_t depth(std::string_view tenant) const {
    const auto it = queues_.find(tenant);
    return it == queues_.end() ? 0 : it->second.items.size();
  }

  /// Tenants currently holding a queue (post-pruning; test/telemetry use).
  [[nodiscard]] std::size_t tenant_count() const { return queues_.size(); }

  void push(std::string_view tenant, T item) {
    ++ops_;
    auto it = queues_.find(tenant);
    if (it == queues_.end()) {
      it = queues_.emplace(std::string(tenant), Queue{}).first;
    }
    it->second.items.push_back(std::move(item));
    it->second.last_active = ops_;
  }

  /// Pops the next item in WRR order; false when every queue is empty.
  /// The rotation stays on one tenant for up to weight_of() pops
  /// (turn_served_ tracks the burst); an exhausted or skipped queue ends
  /// the burst and advances the rotation. Long-empty queues passed over by
  /// the scan are pruned here.
  bool pop(T& out) {
    if (queues_.empty()) return false;
    ++ops_;
    auto it = queues_.lower_bound(cursor_);
    if (it == queues_.end()) it = queues_.begin();
    // A burst in progress belongs to the exact tenant named by cursor_; if
    // that tenant vanished (pruned) the burst credit dies with it instead
    // of transferring to whichever queue sorts there now.
    if (turn_served_ != 0 && it->first != cursor_) turn_served_ = 0;
    std::size_t scanned = 0;
    const std::size_t limit = queues_.size();
    while (scanned < limit && !queues_.empty()) {
      if (it == queues_.end()) it = queues_.begin();
      Queue& q = it->second;
      if (!q.items.empty()) {
        out = std::move(q.items.front());
        q.items.pop_front();
        q.last_active = ops_;
        if (++turn_served_ >= weight_of(it->first) || q.items.empty()) {
          turn_served_ = 0;
          auto next = std::next(it);
          cursor_ =
              next == queues_.end() ? queues_.begin()->first : next->first;
        } else {
          cursor_ = it->first;  // burst continues on this tenant
        }
        return true;
      }
      turn_served_ = 0;  // passing an empty queue ends any pending burst
      if (prune_after_ != 0 && ops_ - q.last_active > prune_after_) {
        it = queues_.erase(it);
      } else {
        ++it;
      }
      ++scanned;
    }
    return false;
  }

 private:
  struct Queue {
    std::deque<T> items;
    std::uint64_t last_active = 0;  ///< ops_ at last push or non-empty pop
  };

  const std::map<std::string, int, std::less<>>* weights_;
  std::map<std::string, Queue, std::less<>> queues_;
  std::string cursor_;        ///< key of the tenant the rotation points at
  int turn_served_ = 0;       ///< pops served to cursor_'s tenant this burst
  std::uint64_t ops_ = 0;     ///< pop/push clock driving the pruner
  std::uint64_t prune_after_;
};

}  // namespace hs::serve
