// Weighted-round-robin tenant queues: the serve layer's drain structure,
// split out so the rotation is unit-testable without threads.
//
// The rotation serves up to `weight` consecutive items from a tenant's
// queue before advancing to the next non-empty one. Weights come from a
// caller-owned map (service config); unlisted tenants and weights < 1 get
// weight 1, and with every weight at 1 the rotation is byte-identical to
// plain round-robin (one pop, then advance) — the scheme predating
// weights. Not thread-safe: the service guards it with its own mutex.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>

namespace hs::serve {

template <typename T>
class WrrQueues {
 public:
  /// `weights` is borrowed (may be null = all weights 1) and must outlive
  /// the queues.
  explicit WrrQueues(const std::map<std::string, int, std::less<>>* weights)
      : weights_(weights) {}

  /// Effective weight of a tenant: configured weight, floored at 1.
  [[nodiscard]] int weight_of(std::string_view tenant) const {
    if (weights_ == nullptr) return 1;
    const auto it = weights_->find(tenant);
    if (it == weights_->end()) return 1;
    return it->second < 1 ? 1 : it->second;
  }

  /// Queued items for one tenant (0 when unknown).
  [[nodiscard]] std::size_t depth(std::string_view tenant) const {
    const auto it = queues_.find(tenant);
    return it == queues_.end() ? 0 : it->second.size();
  }

  void push(std::string_view tenant, T item) {
    auto it = queues_.find(tenant);
    if (it == queues_.end()) {
      it = queues_.emplace(std::string(tenant), std::deque<T>()).first;
    }
    it->second.push_back(std::move(item));
  }

  /// Pops the next item in WRR order; false when every queue is empty.
  /// The rotation stays on one tenant for up to weight_of() pops
  /// (turn_served_ tracks the burst); an exhausted or skipped queue ends
  /// the burst and advances the rotation.
  bool pop(T& out) {
    const std::size_t n = queues_.size();
    if (n == 0) return false;
    auto it = queues_.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(rr_ % n));
    for (std::size_t k = 0; k < n; ++k) {
      if (!it->second.empty()) {
        out = std::move(it->second.front());
        it->second.pop_front();
        if (++turn_served_ >= weight_of(it->first) || it->second.empty()) {
          turn_served_ = 0;
          rr_ = (rr_ % n + k + 1) % n;
        } else {
          rr_ = (rr_ % n + k) % n;  // burst continues on this tenant
        }
        return true;
      }
      turn_served_ = 0;  // passing an empty queue ends any pending burst
      ++it;
      if (it == queues_.end()) it = queues_.begin();
    }
    return false;
  }

 private:
  const std::map<std::string, int, std::less<>>* weights_;
  std::map<std::string, std::deque<T>, std::less<>> queues_;
  std::size_t rr_ = 0;      ///< rotation position (index into the map)
  int turn_served_ = 0;     ///< pops served to the tenant at rr_ this burst
};

}  // namespace hs::serve
