// Elastic worker scaling for the serve farm: policy + hysteresis decider.
//
// The paper's §V challenge is that a stream runtime cannot control its
// offered load; a fixed worker farm therefore either under-provisions the
// burst or pins idle threads after it. The service keeps the farm
// *provisioned* at max_workers (flow::FarmController parks the surplus
// replicas on empty queues) and moves the fed-worker count with the load:
//
//   grow   — aggregate tenant backlog has sat at/above scale_up_watermark
//            (or the windowed-p99 admission gate is tripping with work
//            queued) for a full sample_window;
//   shrink — the backlog has been empty for scale_down_idle_window;
//   never flap — every resize re-arms its window and starts a cooldown
//            during which no further resize fires, so one noisy sample can
//            neither grow nor shrink the farm.
//
// ScaleDecider is the pure state machine: the service feeds it
// (now, backlog, p99-overloaded) samples from its controller thread and
// applies the returned resizes to the FarmController. Keeping it free of
// threads and clocks makes the hysteresis unit-testable with a synthetic
// timeline.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <optional>

namespace hs::serve {

/// Shape of the elastic-scaling behavior. Disabled by default
/// (max_workers == 0): the service then runs the fixed
/// ServiceConfig::workers farm exactly as before.
struct ScalePolicy {
  int min_workers = 0;  ///< floor; >= 1 when enabled
  int max_workers = 0;  ///< ceiling (provisioned replicas); 0 disables
  /// Aggregate queued jobs (across all tenant queues) at/above which the
  /// service is considered under pressure.
  std::size_t scale_up_watermark = 8;
  /// How often the controller thread samples the backlog.
  std::chrono::milliseconds sample_interval{5};
  /// Pressure must persist for this long before a grow step fires.
  std::chrono::milliseconds sample_window{50};
  /// The backlog must stay empty this long before a shrink step fires.
  std::chrono::milliseconds scale_down_idle_window{200};
  /// Minimum spacing between any two resizes (grow or shrink).
  std::chrono::milliseconds cooldown{100};

  [[nodiscard]] bool enabled() const {
    return max_workers > 0 && min_workers >= 1 &&
           min_workers <= max_workers;
  }
};

/// Hysteresis state machine: one step per observe(), at most one resize per
/// cooldown, windows re-armed on every resize. Not thread-safe; the service
/// controller thread owns one.
class ScaleDecider {
 public:
  using Clock = std::chrono::steady_clock;

  ScaleDecider(ScalePolicy policy, int initial, Clock::time_point now)
      : policy_(policy),
        active_(std::clamp(initial, policy.min_workers, policy.max_workers)),
        last_resize_(now - policy.cooldown) {}

  /// Feed one backlog sample. Returns the new fed-worker count when a
  /// resize should happen at `now`, nullopt otherwise.
  std::optional<int> observe(Clock::time_point now, std::size_t backlog,
                             bool latency_overloaded) {
    const bool pressure = backlog >= policy_.scale_up_watermark ||
                          (latency_overloaded && backlog > 0);
    if (pressure) {
      idle_armed_ = false;
      if (!above_armed_) {
        above_armed_ = true;
        above_since_ = now;
      }
      if (active_ < policy_.max_workers &&
          now - above_since_ >= policy_.sample_window &&
          now - last_resize_ >= policy_.cooldown) {
        ++active_;
        last_resize_ = now;
        above_since_ = now;  // a further step needs a fresh full window
        return active_;
      }
      return std::nullopt;
    }
    above_armed_ = false;
    if (backlog != 0) {
      idle_armed_ = false;
      return std::nullopt;
    }
    if (!idle_armed_) {
      idle_armed_ = true;
      idle_since_ = now;
    }
    if (active_ > policy_.min_workers &&
        now - idle_since_ >= policy_.scale_down_idle_window &&
        now - last_resize_ >= policy_.cooldown) {
      --active_;
      last_resize_ = now;
      idle_since_ = now;  // one step per idle window
      return active_;
    }
    return std::nullopt;
  }

  [[nodiscard]] int active() const { return active_; }
  [[nodiscard]] const ScalePolicy& policy() const { return policy_; }

 private:
  ScalePolicy policy_;
  int active_;
  bool above_armed_ = false;  ///< above_since_ holds a live window start
  bool idle_armed_ = false;   ///< idle_since_ holds a live window start
  Clock::time_point above_since_{};
  Clock::time_point idle_since_{};
  Clock::time_point last_resize_;
};

}  // namespace hs::serve
