// SpanRecorder — begin/end spans from real execution, exported as Chrome
// trace-event JSON with the same event schema as des/trace_export, so a
// modeled DES schedule and a measured run load side-by-side in Perfetto
// (chrome://tracing or https://ui.perfetto.dev).
//
// Each thread records into its own fixed-capacity ring buffer, registered on
// first use and owned by the recorder (rings outlive their threads, so
// short-lived pipeline workers are safe). A record is three stores into the
// ring plus a monotonic-count publish — no locks, no allocation. When a ring
// wraps, the oldest spans are overwritten and counted as dropped.
//
// Span names are `const char*` identity: pass a string literal, or intern()
// a dynamic name once (stage names are interned at pipeline setup).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace hs::telemetry {

class SpanRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  /// ring_capacity: spans kept per thread before the ring wraps.
  explicit SpanRecorder(std::size_t ring_capacity = 4096);
  ~SpanRecorder();
  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// Process-wide default recorder (leaked singleton).
  static SpanRecorder& Default();

  /// Recording gate, separate from telemetry::enabled() so metrics can stay
  /// on while tracing is off. record() is a no-op while disabled.
  void set_recording(bool on) {
    recording_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool recording() const {
    return recording_.load(std::memory_order_relaxed);
  }

  /// Copy `name` into recorder-owned storage and return a stable pointer.
  /// Mutex-guarded; call once at setup, not per span.
  const char* intern(std::string_view name);

  /// Label the calling thread's track in the exported trace.
  void set_thread_name(std::string_view name);

  /// Nanoseconds since the recorder epoch (construction or last reset).
  [[nodiscard]] std::uint64_t now_ns() const { return to_ns(Clock::now()); }
  /// Convert an already-taken steady_clock timestamp to recorder time, so
  /// instrumentation that timed work for other reasons (stage histograms)
  /// reuses its clock reads for the span.
  [[nodiscard]] std::uint64_t to_ns(Clock::time_point tp) const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_)
            .count());
  }

  /// Record a completed span. `name` must outlive the recorder (literal or
  /// intern()ed). No-op while recording is off.
  void record(const char* name, std::uint64_t start_ns, std::uint64_t end_ns);

  /// Total spans overwritten by ring wrap, across all threads.
  [[nodiscard]] std::uint64_t dropped() const;
  /// Total spans currently held (sum over rings, capped per ring).
  [[nodiscard]] std::uint64_t span_count() const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}) — thread_name metadata
  /// per track, then "X" complete events with ts/dur in microseconds.
  /// FailedPrecondition when no spans were recorded. Call after the
  /// instrumented run finishes; export does not quiesce writers.
  [[nodiscard]] Result<std::string> chrome_trace_json() const;
  [[nodiscard]] Status write_chrome_trace(const std::string& path) const;

  /// Drop all spans, dropped counts, and thread names; re-epoch the clock.
  /// Rings stay registered (pointers held by live threads remain valid).
  void reset();

 private:
  struct Span {
    const char* name;
    std::uint64_t start_ns;
    std::uint64_t end_ns;
  };
  struct Ring {
    explicit Ring(std::size_t capacity) : slots(capacity) {}
    std::uint32_t tid = 0;
    std::vector<Span> slots;
    // Total spans ever recorded; publish with release so an exporter that
    // acquires the count can safely read the slots below it.
    std::atomic<std::uint64_t> count{0};
  };

  Ring* ring_for_this_thread();

  // Process-unique id; the per-thread ring cache keys on this rather than
  // the recorder's address, so a new recorder reusing a destroyed one's
  // address can never resolve to the dead recorder's ring.
  const std::uint64_t uid_;
  const std::size_t ring_capacity_;
  std::atomic<bool> recording_{false};
  Clock::time_point epoch_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::deque<std::string> interned_;
  std::vector<std::string> thread_names_;  // indexed by tid; "" = unnamed
};

/// RAII span: times its scope into `rec` (no-op when rec is null or not
/// recording). Capture the recorder once per scope, not per iteration.
class ScopedSpan {
 public:
  ScopedSpan(SpanRecorder* rec, const char* name)
      : rec_(rec != nullptr && rec->recording() ? rec : nullptr),
        name_(name),
        start_ns_(rec_ != nullptr ? rec_->now_ns() : 0) {}
  ~ScopedSpan() {
    if (rec_ != nullptr) rec_->record(name_, start_ns_, rec_->now_ns());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanRecorder* rec_;
  const char* name_;
  std::uint64_t start_ns_;
};

/// The default recorder when spans should be captured (telemetry enabled and
/// recording on), else nullptr. GPU workers use this to guard span scopes
/// with a single relaxed load when tracing is off.
[[nodiscard]] SpanRecorder* tracer();

}  // namespace hs::telemetry
