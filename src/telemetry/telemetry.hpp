// hs::telemetry — low-overhead runtime metrics for the real pipelines.
//
// The modeled DES schedule (des/trace_export) shows where time *should* go;
// this subsystem measures where it actually goes. Three primitives:
//
//   Counter   — monotonic u64, per-thread shards, merged on snapshot.
//   Gauge     — last-written double (or a callback evaluated at snapshot).
//   Histogram — log2-bucketed u64 samples with p50/p95/p99 queries.
//
// Hot-path contract: add()/record()/set() take no locks and perform no heap
// allocation. Each metric owns a fixed array of cache-line-aligned shard
// rows; a thread claims a shard slot on first use (slot ids are recycled at
// thread exit through a free list) and thereafter updates its own row with a
// plain relaxed load+store. Threads beyond the shard budget share one
// overflow slot updated with fetch_add. Snapshots sum all rows with relaxed
// loads — readers never block writers and writers never block readers, so a
// metrics scrape mid-run costs the pipeline nothing.
//
// Registration (Registry::counter() etc.) takes a mutex and may allocate;
// call sites cache the returned pointer, which is stable for the life of the
// Registry. The whole subsystem is compiled in unconditionally and gated at
// runtime by telemetry::set_enabled() — when disabled the instrumented code
// paths reduce to one relaxed bool load.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace hs::telemetry {

class Registry;
class SpanRecorder;
class QueueDepthSampler;

/// Process-wide runtime gate. Default off: benches and tests that do not opt
/// in pay only a relaxed load per instrumentation point.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// Number of shard slots per metric. Slot kSharedSlot is the overflow slot
/// shared (via fetch_add) by threads alive while all owned slots are taken.
inline constexpr std::size_t kShards = 64;
inline constexpr std::size_t kSharedSlot = kShards - 1;

/// The calling thread's shard slot, assigned on first call and released back
/// to a free list when the thread exits. Always < kShards.
[[nodiscard]] std::size_t this_thread_shard();

namespace internal {

struct Cell {
  std::atomic<std::uint64_t> value{0};
};

/// Owned slots are written only by their owning thread, so a relaxed
/// load+store (a plain increment in the generated code) suffices; the
/// overflow slot is shared between threads and needs the RMW.
inline void cell_add(Cell& cell, std::size_t slot, std::uint64_t n) {
  if (slot == kSharedSlot) {
    cell.value.fetch_add(n, std::memory_order_relaxed);
  } else {
    cell.value.store(cell.value.load(std::memory_order_relaxed) + n,
                     std::memory_order_relaxed);
  }
}

}  // namespace internal

/// Monotonic counter. add() is wait-free and allocation-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    std::size_t slot = this_thread_shard();
    internal::cell_add(rows_[slot].v, slot, n);
  }

  /// Sum over all shards (relaxed; concurrent adds may or may not be seen).
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& r : rows_) {
      total += r.v.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zero all shards (test/bench use; racy vs concurrent writers by design).
  void reset() {
    for (auto& r : rows_) r.v.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Row {
    internal::Cell v;
  };
  std::array<Row, kShards> rows_{};
};

/// Last-written double. A single atomic — gauges are written rarely
/// (pool sizes, sampler depths), so sharding would be wasted memory.
class Gauge {
 public:
  void set(double v) { bits_.store(encode(v), std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return decode(bits_.load(std::memory_order_relaxed));
  }

 private:
  static std::uint64_t encode(double v) {
    std::uint64_t b;
    static_assert(sizeof(b) == sizeof(v));
    __builtin_memcpy(&b, &v, sizeof b);
    return b;
  }
  static double decode(std::uint64_t b) {
    double v;
    __builtin_memcpy(&v, &b, sizeof v);
    return v;
  }
  std::atomic<std::uint64_t> bits_{0};
};

/// Number of log2 buckets. Bucket 0 holds the value 0; bucket b >= 1 holds
/// values in [2^(b-1), 2^b - 1]; the last bucket also absorbs everything
/// above its lower bound.
inline constexpr std::size_t kHistogramBuckets = 64;

/// Bucket index for a sample: bit_width(v) clamped to the last bucket.
[[nodiscard]] std::size_t histogram_bucket(std::uint64_t value);
/// Inclusive upper bound of a bucket (2^b - 1; last bucket is u64 max).
[[nodiscard]] std::uint64_t histogram_bucket_upper(std::size_t bucket);
/// Inclusive lower bound of a bucket (0, then 2^(b-1)).
[[nodiscard]] std::uint64_t histogram_bucket_lower(std::size_t bucket);

/// Merged view of one histogram, with percentile interpolation.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// p in [0,1]. Finds the bucket holding the p-th sample and interpolates
  /// linearly inside its [lower, upper] range; exact to within one bucket
  /// (a factor-of-2 band, which is the resolution log2 bucketing buys).
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double p50() const { return percentile(0.50); }
  [[nodiscard]] double p95() const { return percentile(0.95); }
  [[nodiscard]] double p99() const { return percentile(0.99); }
  [[nodiscard]] double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
};

/// Log2-bucketed histogram of u64 samples (typically nanoseconds or queue
/// depths). record() is wait-free and allocation-free. Memory: kShards rows
/// of (kHistogramBuckets + 2) u64 cells ≈ 34 KiB per histogram.
class Histogram {
 public:
  void record(std::uint64_t value) {
    std::size_t slot = this_thread_shard();
    Row& row = rows_[slot];
    internal::cell_add(row.buckets[histogram_bucket(value)], slot, 1);
    internal::cell_add(row.count, slot, 1);
    internal::cell_add(row.sum, slot, value);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const;
  void reset();

 private:
  // The row, not each cell, is cache-line aligned: only the owning thread
  // writes a row, so intra-row false sharing cannot occur.
  struct alignas(64) Row {
    std::array<internal::Cell, kHistogramBuckets> buckets{};
    internal::Cell count{};
    internal::Cell sum{};
  };
  std::array<Row, kShards> rows_{};
};

/// Point-in-time view of every metric in a Registry, sorted by name.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    HistogramSnapshot hist;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Prometheus text exposition (metric names sanitized to [a-zA-Z0-9_:];
  /// histograms emit cumulative _bucket{le=...}, _sum, _count series).
  [[nodiscard]] std::string prometheus_text() const;
  /// JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  [[nodiscard]] std::string json() const;

  /// Lookup helpers for tests/benches; nullptr when absent.
  [[nodiscard]] const CounterValue* find_counter(std::string_view name) const;
  [[nodiscard]] const GaugeValue* find_gauge(std::string_view name) const;
  [[nodiscard]] const HistogramValue* find_histogram(
      std::string_view name) const;
};

/// Named metric registry. Lookup/creation is mutex-guarded and returns
/// stable pointers; the hot path never goes through the registry.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide default registry (leaked singleton, safe at exit).
  static Registry& Default();

  /// Find-or-create. The returned pointer is valid for the Registry's life.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Register a gauge whose value is computed at snapshot time (pool sizes,
  /// etc.). Re-registering a name replaces the callback.
  void gauge_callback(std::string_view name, std::function<double()> fn);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Write snapshot to a file: ".json" suffix selects the JSON exporter,
  /// anything else gets Prometheus text.
  [[nodiscard]] Status write_metrics(const std::string& path) const;

  /// Zero every counter/histogram and drop gauge values (registrations and
  /// cached pointers stay valid). Test/bench use.
  void reset_values();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::function<double()>, std::less<>> callbacks_;
};

/// Bundle of instrumentation sinks a pipeline should report into. All-null
/// means "not instrumented". `prefix` namespaces the metric names
/// ("flow.stage0.svc_ns" etc.).
struct StreamInstrumentation {
  Registry* registry = nullptr;
  SpanRecorder* spans = nullptr;
  QueueDepthSampler* sampler = nullptr;
  std::string prefix;

  [[nodiscard]] bool active() const {
    return registry != nullptr || spans != nullptr || sampler != nullptr;
  }
};

/// The default sinks (Registry/SpanRecorder/QueueDepthSampler singletons)
/// when telemetry is enabled; an inactive bundle otherwise. Pipelines call
/// this when no explicit instrumentation was supplied, which is how
/// `--metrics`/`--trace` reach the dedup/mandel pipelines without touching
/// their signatures.
[[nodiscard]] StreamInstrumentation default_instrumentation(
    std::string prefix = "flow");

/// Export the common::BufferPool::Default() counters as gauge callbacks
/// ("buffer_pool.hits", ".misses", ".bytes_allocated", ".bytes_cached",
/// ".bytes_outstanding"). cudax::register_pinned_pool_gauges is the
/// PinnedPool twin (lives in cudax, which links this library).
void register_buffer_pool_gauges(Registry& registry);

}  // namespace hs::telemetry
