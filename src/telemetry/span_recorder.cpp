#include "telemetry/span_recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "telemetry/telemetry.hpp"

namespace hs::telemetry {

namespace {

void json_escape(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

// Per-thread cache of (recorder uid -> ring). A thread typically talks to
// one recorder, so the linear scan is one compare. Keyed by uid, not
// recorder address: addresses get reused, uids never do.
struct TlsRings {
  std::vector<std::pair<std::uint64_t, void*>> map;
};

TlsRings& tls_rings() {
  thread_local TlsRings rings;
  return rings;
}

}  // namespace

SpanRecorder::SpanRecorder(std::size_t ring_capacity)
    : uid_([] {
        static std::atomic<std::uint64_t> next{1};
        return next.fetch_add(1, std::memory_order_relaxed);
      }()),
      ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      epoch_(Clock::now()) {}

SpanRecorder::~SpanRecorder() = default;

SpanRecorder& SpanRecorder::Default() {
  static SpanRecorder* instance = new SpanRecorder;  // leaked
  return *instance;
}

SpanRecorder::Ring* SpanRecorder::ring_for_this_thread() {
  TlsRings& tls = tls_rings();
  for (auto& [uid, ring] : tls.map) {
    if (uid == uid_) return static_cast<Ring*>(ring);
  }
  std::unique_ptr<Ring> ring = std::make_unique<Ring>(ring_capacity_);
  Ring* raw = ring.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    raw->tid = static_cast<std::uint32_t>(rings_.size());
    rings_.push_back(std::move(ring));
    if (thread_names_.size() <= raw->tid) {
      thread_names_.resize(raw->tid + 1);
    }
  }
  tls.map.emplace_back(uid_, raw);
  return raw;
}

const char* SpanRecorder::intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& s : interned_) {
    if (s == name) return s.c_str();
  }
  interned_.emplace_back(name);
  return interned_.back().c_str();
}

void SpanRecorder::set_thread_name(std::string_view name) {
  Ring* ring = ring_for_this_thread();
  std::lock_guard<std::mutex> lock(mu_);
  thread_names_[ring->tid] = std::string(name);
}

void SpanRecorder::record(const char* name, std::uint64_t start_ns,
                          std::uint64_t end_ns) {
  if (!recording()) return;
  Ring* ring = ring_for_this_thread();
  std::uint64_t n = ring->count.load(std::memory_order_relaxed);
  ring->slots[n % ring->slots.size()] = Span{name, start_ns, end_ns};
  ring->count.store(n + 1, std::memory_order_release);
}

std::uint64_t SpanRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t dropped = 0;
  for (const auto& ring : rings_) {
    std::uint64_t n = ring->count.load(std::memory_order_acquire);
    if (n > ring->slots.size()) dropped += n - ring->slots.size();
  }
  return dropped;
}

std::uint64_t SpanRecorder::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += std::min<std::uint64_t>(
        ring->count.load(std::memory_order_acquire), ring->slots.size());
  }
  return total;
}

Result<std::string> SpanRecorder::chrome_trace_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += std::min<std::uint64_t>(
        ring->count.load(std::memory_order_acquire), ring->slots.size());
  }
  if (total == 0) {
    return FailedPrecondition(
        "no spans recorded: call set_recording(true) before the run");
  }
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& ring : rings_) {
    if (!first) os << ",\n";
    first = false;
    os << R"({"ph":"M","pid":1,"tid":)" << ring->tid
       << R"(,"name":"thread_name","args":{"name":")";
    const std::string& name = thread_names_[ring->tid];
    if (name.empty()) {
      os << "t" << ring->tid;
    } else {
      json_escape(os, name);
    }
    os << "\"}}";
  }
  for (const auto& ring : rings_) {
    std::uint64_t n = ring->count.load(std::memory_order_acquire);
    std::uint64_t kept = std::min<std::uint64_t>(n, ring->slots.size());
    // Oldest surviving span first; ring indices wrap modulo capacity.
    for (std::uint64_t i = n - kept; i < n; ++i) {
      const Span& sp = ring->slots[i % ring->slots.size()];
      os << ",\n";
      os << R"({"ph":"X","pid":1,"tid":)" << ring->tid << R"(,"name":")";
      json_escape(os, sp.name != nullptr ? sp.name : "span");
      os << R"(","ts":)" << static_cast<double>(sp.start_ns) / 1000.0
         << R"(,"dur":)"
         << static_cast<double>(sp.end_ns - sp.start_ns) / 1000.0 << "}";
    }
  }
  os << "\n]}\n";
  return os.str();
}

Status SpanRecorder::write_chrome_trace(const std::string& path) const {
  auto json = chrome_trace_json();
  if (!json.ok()) return json.status();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Internal("cannot open trace file: " + path);
  bool ok = std::fwrite(json.value().data(), 1, json.value().size(), f) ==
            json.value().size();
  int rc = std::fclose(f);
  if (!ok || rc != 0) return Internal("short write to trace file: " + path);
  return OkStatus();
}

void SpanRecorder::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& ring : rings_) {
    ring->count.store(0, std::memory_order_relaxed);
  }
  for (auto& name : thread_names_) name.clear();
  epoch_ = Clock::now();
}

SpanRecorder* tracer() {
  if (!enabled()) return nullptr;
  SpanRecorder& rec = SpanRecorder::Default();
  return rec.recording() ? &rec : nullptr;
}

}  // namespace hs::telemetry
