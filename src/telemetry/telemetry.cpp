#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <mutex>

#include "common/buffer_pool.hpp"
#include "telemetry/queue_sampler.hpp"
#include "telemetry/span_recorder.hpp"

namespace hs::telemetry {

namespace {

std::atomic<bool> g_enabled{false};

// Shard slot allocator: a free list of owned slots [0, kSharedSlot).
// Threads that arrive while all owned slots are claimed use the shared
// overflow slot; releasing the shared slot is a no-op.
std::mutex& slot_mutex() {
  static std::mutex mu;
  return mu;
}

std::vector<std::size_t>& slot_free_list() {
  static std::vector<std::size_t>* list = [] {
    auto* l = new std::vector<std::size_t>;
    l->reserve(kSharedSlot);
    // Hand out low slots first: pop_back takes from the end.
    for (std::size_t s = kSharedSlot; s-- > 0;) l->push_back(s);
    return l;
  }();
  return *list;
}

std::size_t acquire_slot() {
  std::lock_guard<std::mutex> lock(slot_mutex());
  auto& free = slot_free_list();
  if (free.empty()) return kSharedSlot;
  std::size_t s = free.back();
  free.pop_back();
  return s;
}

void release_slot(std::size_t slot) {
  if (slot == kSharedSlot) return;
  std::lock_guard<std::mutex> lock(slot_mutex());
  slot_free_list().push_back(slot);
}

struct SlotHolder {
  std::size_t slot = acquire_slot();
  ~SlotHolder() { release_slot(slot); }
};

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Our dotted names map
// '.' and any other illegal character to '_'.
std::string prom_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9' && !out.empty()) || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

std::size_t this_thread_shard() {
  thread_local SlotHolder holder;
  return holder.slot;
}

std::size_t histogram_bucket(std::uint64_t value) {
  std::size_t b = static_cast<std::size_t>(std::bit_width(value));
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

std::uint64_t histogram_bucket_upper(std::size_t bucket) {
  if (bucket + 1 >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

std::uint64_t histogram_bucket_lower(std::size_t bucket) {
  if (bucket == 0) return 0;
  return std::uint64_t{1} << (bucket - 1);
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the target sample, 1-based: ceil(p * count), at least 1.
  std::uint64_t rank = static_cast<std::uint64_t>(
      p * static_cast<double>(count) + 0.9999999999);
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (cumulative + buckets[b] >= rank) {
      double lo = static_cast<double>(histogram_bucket_lower(b));
      double hi = static_cast<double>(histogram_bucket_upper(b));
      // Position of the target inside this bucket, in (0, 1].
      double frac = static_cast<double>(rank - cumulative) /
                    static_cast<double>(buckets[b]);
      return lo + (hi - lo) * frac;
    }
    cumulative += buckets[b];
  }
  return static_cast<double>(histogram_bucket_upper(kHistogramBuckets - 1));
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  for (const auto& row : rows_) {
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      snap.buckets[b] +=
          row.buckets[b].value.load(std::memory_order_relaxed);
    }
    snap.count += row.count.value.load(std::memory_order_relaxed);
    snap.sum += row.sum.value.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::reset() {
  for (auto& row : rows_) {
    for (auto& b : row.buckets) b.value.store(0, std::memory_order_relaxed);
    row.count.value.store(0, std::memory_order_relaxed);
    row.sum.value.store(0, std::memory_order_relaxed);
  }
}

Registry& Registry::Default() {
  static Registry* instance = new Registry;  // leaked: usable during exit
  return *instance;
}

Counter* Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

void Registry::gauge_callback(std::string_view name,
                              std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_.insert_or_assign(std::string(name), std::move(fn));
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  // Copy the callback list under the lock but evaluate outside it: a
  // callback may reach back into this registry (or take a pool mutex).
  std::vector<std::pair<std::string, std::function<double()>>> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
      snap.counters.push_back({name, c->value()});
    }
    snap.gauges.reserve(gauges_.size() + callbacks_.size());
    for (const auto& [name, g] : gauges_) {
      snap.gauges.push_back({name, g->value()});
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      snap.histograms.push_back({name, h->snapshot()});
    }
    callbacks.reserve(callbacks_.size());
    for (const auto& [name, fn] : callbacks_) callbacks.emplace_back(name, fn);
  }
  for (auto& [name, fn] : callbacks) {
    snap.gauges.push_back({name, fn ? fn() : 0.0});
  }
  std::sort(snap.gauges.begin(), snap.gauges.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->set(0.0);
  for (auto& [name, h] : histograms_) h->reset();
}

Status Registry::write_metrics(const std::string& path) const {
  MetricsSnapshot snap = snapshot();
  bool json = path.size() >= 5 && path.rfind(".json") == path.size() - 5;
  std::string body = json ? snap.json() : snap.prometheus_text();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Internal("cannot open metrics file: " + path);
  std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  int rc = std::fclose(f);
  if (written != body.size() || rc != 0) {
    return Internal("short write to metrics file: " + path);
  }
  return OkStatus();
}

const MetricsSnapshot::CounterValue* MetricsSnapshot::find_counter(
    std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const MetricsSnapshot::GaugeValue* MetricsSnapshot::find_gauge(
    std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::prometheus_text() const {
  std::string out;
  for (const auto& c : counters) {
    std::string n = prom_name(c.name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : gauges) {
    std::string n = prom_name(g.name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + fmt_double(g.value) + "\n";
  }
  for (const auto& h : histograms) {
    std::string n = prom_name(h.name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.hist.buckets[b] == 0) continue;
      cumulative += h.hist.buckets[b];
      out += n + "_bucket{le=\"" +
             std::to_string(histogram_bucket_upper(b)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.hist.count) + "\n";
    out += n + "_sum " + std::to_string(h.hist.sum) + "\n";
    out += n + "_count " + std::to_string(h.hist.count) + "\n";
  }
  return out;
}

std::string MetricsSnapshot::json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& c : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(c.name) + "\": " + std::to_string(c.value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& g : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(g.name) + "\": " + fmt_double(g.value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& h : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(h.name) + "\": {\"count\": " +
           std::to_string(h.hist.count) +
           ", \"sum\": " + std::to_string(h.hist.sum) +
           ", \"p50\": " + fmt_double(h.hist.p50()) +
           ", \"p95\": " + fmt_double(h.hist.p95()) +
           ", \"p99\": " + fmt_double(h.hist.p99()) + ", \"buckets\": [";
    bool bfirst = true;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.hist.buckets[b] == 0) continue;
      if (!bfirst) out += ", ";
      bfirst = false;
      out += "[" + std::to_string(histogram_bucket_upper(b)) + ", " +
             std::to_string(h.hist.buckets[b]) + "]";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

StreamInstrumentation default_instrumentation(std::string prefix) {
  StreamInstrumentation instr;
  if (!enabled()) return instr;
  instr.registry = &Registry::Default();
  SpanRecorder& spans = SpanRecorder::Default();
  instr.spans = spans.recording() ? &spans : nullptr;
  instr.sampler = &QueueDepthSampler::Default();
  instr.prefix = std::move(prefix);
  return instr;
}

void register_buffer_pool_gauges(Registry& registry) {
  auto field = [](std::uint64_t PoolCounters::* member) {
    return [member]() {
      PoolCounters c = BufferPool::Default().counters();
      return static_cast<double>(c.*member);
    };
  };
  registry.gauge_callback("buffer_pool.hits", field(&PoolCounters::hits));
  registry.gauge_callback("buffer_pool.misses", field(&PoolCounters::misses));
  registry.gauge_callback("buffer_pool.bytes_allocated",
                          field(&PoolCounters::bytes_allocated));
  registry.gauge_callback("buffer_pool.bytes_cached",
                          field(&PoolCounters::bytes_cached));
  registry.gauge_callback("buffer_pool.bytes_outstanding",
                          field(&PoolCounters::bytes_outstanding));
}

}  // namespace hs::telemetry
