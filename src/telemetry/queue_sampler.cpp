#include "telemetry/queue_sampler.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"

namespace hs::telemetry {

QueueDepthSampler::QueueDepthSampler(Registry* registry)
    : registry_(registry != nullptr ? registry : &Registry::Default()) {}

QueueDepthSampler::~QueueDepthSampler() {
  stop();
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

QueueDepthSampler& QueueDepthSampler::Default() {
  static QueueDepthSampler* instance = new QueueDepthSampler;  // leaked
  return *instance;
}

std::uint64_t QueueDepthSampler::add_queue(std::string name, DepthFn depth,
                                           std::size_t capacity) {
  Entry entry;
  entry.name = std::move(name);
  entry.depth = std::move(depth);
  entry.capacity = capacity;
  std::lock_guard<std::mutex> lock(mu_);
  entry.id = next_id_++;
  entries_.push_back(std::move(entry));
  return entries_.back().id;
}

void QueueDepthSampler::remove_queue(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const Entry& e) { return e.id == id; }),
                 entries_.end());
}

std::size_t QueueDepthSampler::queue_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

Status QueueDepthSampler::start(std::chrono::microseconds period) {
  if (running_.load(std::memory_order_acquire)) {
    return FailedPrecondition("QueueDepthSampler already running");
  }
  if (thread_.joinable()) thread_.join();  // reap a previous stop()ed run
  stop_requested_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this, period] { run(period); });
  return OkStatus();
}

void QueueDepthSampler::stop() {
  stop_requested_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void QueueDepthSampler::run(std::chrono::microseconds period) {
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (Entry& e : entries_) {
        if (e.hist == nullptr) {
          // First sample of this queue: materialize its series now, so a
          // registered-but-never-sampled queue never exports empty series.
          e.hist = registry_->histogram(e.name + ".depth");
          e.now_gauge = registry_->gauge(e.name + ".depth_now");
          e.util_gauge = e.capacity > 0
                             ? registry_->gauge(e.name + ".utilization")
                             : nullptr;
        }
        std::size_t depth = e.depth();
        e.hist->record(depth);
        e.now_gauge->set(static_cast<double>(depth));
        if (e.util_gauge != nullptr) {
          e.util_gauge->set(static_cast<double>(depth) /
                            static_cast<double>(e.capacity));
        }
      }
    }
    sweeps_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(period);
  }
  running_.store(false, std::memory_order_release);
}

}  // namespace hs::telemetry
