// QueueDepthSampler — a background thread that polls registered queue depth
// functions (SpscQueue::size_approx and friends) at a fixed period and feeds
// the samples into a Registry as a histogram (depth distribution over the
// run) plus a gauge (last observed depth, and a utilization gauge when the
// queue's capacity is known).
//
// Registration is decoupled from the thread lifecycle: queues can be added
// and removed while the sampler runs (flow::Pipeline registers its channels
// for the duration of run_and_wait), and start()/stop() can bracket any
// number of runs. The sampler owns no queues — a registered depth function
// must stay callable until remove_queue().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"

namespace hs::telemetry {

class Registry;
class Gauge;
class Histogram;

class QueueDepthSampler {
 public:
  using DepthFn = std::function<std::size_t()>;

  /// Samples land in `registry` (Registry::Default() when null).
  explicit QueueDepthSampler(Registry* registry = nullptr);
  ~QueueDepthSampler();  ///< stops the thread and drops registrations
  QueueDepthSampler(const QueueDepthSampler&) = delete;
  QueueDepthSampler& operator=(const QueueDepthSampler&) = delete;

  /// Process-wide default sampler, feeding Registry::Default().
  static QueueDepthSampler& Default();

  /// Register a queue. Metrics: "<name>.depth" (histogram),
  /// "<name>.depth_now" (gauge), and "<name>.utilization" (gauge, only when
  /// `capacity` > 0). The series are materialized in the registry on the
  /// first sweep that samples the queue — a queue that is registered but
  /// never sampled (sampler not running, or removed before a sweep) leaves
  /// no empty series behind in the metrics export. Returns an id for
  /// remove_queue(); safe while the sampler runs.
  std::uint64_t add_queue(std::string name, DepthFn depth,
                          std::size_t capacity = 0);
  void remove_queue(std::uint64_t id);
  /// Registered queue count (test/introspection).
  [[nodiscard]] std::size_t queue_count() const;

  /// Spawn the sampling thread. FailedPrecondition when already running.
  [[nodiscard]] Status start(
      std::chrono::microseconds period = std::chrono::microseconds(500));
  /// Join the sampling thread; idempotent.
  void stop();
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// Sampling sweeps completed since construction (lifecycle tests).
  [[nodiscard]] std::uint64_t sweeps() const {
    return sweeps_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::uint64_t id = 0;
    std::string name;
    DepthFn depth;
    std::size_t capacity = 0;
    // Created lazily on the first sweep (see add_queue doc); all owned by
    // the registry. util_gauge stays null when capacity is unknown.
    Histogram* hist = nullptr;
    Gauge* now_gauge = nullptr;
    Gauge* util_gauge = nullptr;
  };

  void run(std::chrono::microseconds period);

  Registry* registry_;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::uint64_t next_id_ = 1;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> sweeps_{0};
};

}  // namespace hs::telemetry
