// Task pool with per-worker deques and work stealing — the TBB-equivalent
// scheduling substrate (paper §III-B: "tasks... equipped with a work
// stealing scheduler").
//
// Each worker owns a deque: it pushes/pops its own tail (LIFO, cache-warm)
// and steals from other workers' heads (FIFO, oldest first), the classic
// work-stealing discipline. Deques are mutex-protected (contention is rare:
// an owner operation and a steal only collide when the deque is nearly
// empty); a shared condition variable parks idle workers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/unique_function.hpp"

namespace hs::taskx {

/// A unit of work. Move-only so tasks can own stream items.
using Task = hs::UniqueFunction<void()>;

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware_concurrency).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains all remaining tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. If called from a worker thread of this pool, the task
  /// goes to that worker's own deque (LIFO locality); otherwise it is
  /// round-robined to a worker's deque.
  void submit(Task task);

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Index of the calling worker within this pool, or -1 when called from
  /// a non-worker thread.
  [[nodiscard]] int current_worker_index() const;

  /// Number of tasks stolen across all workers (scheduling introspection,
  /// used by tests and the substrate microbench).
  [[nodiscard]] std::uint64_t steal_count() const;

  /// Runs queued tasks on the calling thread until `done` returns true.
  /// Used by blocking waits (pipeline run, parallel_for) so the waiting
  /// thread lends itself to the pool instead of idling — this also makes
  /// single-thread pools deadlock-free.
  void help_while(const std::function<bool()>& done);

 private:
  struct Worker {
    std::mutex mu;
    std::deque<Task> deque;
  };

  bool try_pop_own(std::size_t idx, Task& out);
  bool try_steal(std::size_t thief, Task& out);
  bool try_acquire_any(std::size_t preferred, Task& out);
  void worker_main(std::size_t idx);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_ = false;
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::size_t> next_submit_{0};
};

}  // namespace hs::taskx
