#include "taskx/pool.hpp"

#include <atomic>
#include <cassert>

#include "common/backoff.hpp"

namespace hs::taskx {

namespace {
// Which pool/worker the current thread belongs to (for submit locality).
thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 2;
  }
  queues_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::current_worker_index() const {
  return tls_pool == this ? tls_worker_index : -1;
}

std::uint64_t ThreadPool::steal_count() const {
  return steals_.load(std::memory_order_relaxed);
}

void ThreadPool::submit(Task task) {
  assert(task && "null task");
  int self = current_worker_index();
  std::size_t idx =
      self >= 0 ? static_cast<std::size_t>(self)
                : next_submit_.fetch_add(1, std::memory_order_relaxed) %
                      queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[idx]->mu);
    queues_[idx]->deque.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_pop_own(std::size_t idx, Task& out) {
  Worker& w = *queues_[idx];
  std::lock_guard<std::mutex> lock(w.mu);
  if (w.deque.empty()) return false;
  out = std::move(w.deque.back());  // own tail: LIFO
  w.deque.pop_back();
  return true;
}

bool ThreadPool::try_steal(std::size_t thief, Task& out) {
  for (std::size_t off = 1; off < queues_.size(); ++off) {
    std::size_t victim = (thief + off) % queues_.size();
    Worker& w = *queues_[victim];
    std::lock_guard<std::mutex> lock(w.mu);
    if (w.deque.empty()) continue;
    out = std::move(w.deque.front());  // victim head: FIFO
    w.deque.pop_front();
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool ThreadPool::try_acquire_any(std::size_t preferred, Task& out) {
  return try_pop_own(preferred, out) || try_steal(preferred, out);
}

void ThreadPool::worker_main(std::size_t idx) {
  tls_pool = this;
  tls_worker_index = static_cast<int>(idx);
  for (;;) {
    Task task;
    if (try_acquire_any(idx, task)) {
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    if (stop_) break;
    wake_cv_.wait_for(lock, std::chrono::milliseconds(1));
    if (stop_) {
      // Drain what remains so no submitted task is lost on shutdown.
      lock.unlock();
      while (try_acquire_any(idx, task)) task();
      break;
    }
  }
  tls_pool = nullptr;
  tls_worker_index = -1;
}

void ThreadPool::help_while(const std::function<bool()>& done) {
  std::size_t preferred = 0;
  int self = current_worker_index();
  if (self >= 0) preferred = static_cast<std::size_t>(self);
  Backoff backoff;
  while (!done()) {
    Task task;
    if (try_acquire_any(preferred, task)) {
      task();
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
}

}  // namespace hs::taskx
