// Blocked-range parallel_reduce on the task pool (TBB's reduce pattern).
#pragma once

#include <mutex>

#include "taskx/parallel_for.hpp"

namespace hs::taskx {

/// Reduces [first, last) in chunks of at most `grain`: `body(b, e, acc)`
/// folds a range into a chunk-local accumulator (seeded with `identity`),
/// and `join(lhs, rhs)` combines accumulators. `join` must be associative;
/// chunk combination order is unspecified (as with tbb::parallel_reduce
/// without affinity). Blocks until complete; the caller helps execute.
template <typename T, typename RangeBody, typename Join>
T parallel_reduce(ThreadPool& pool, std::size_t first, std::size_t last,
                  std::size_t grain, T identity, const RangeBody& body,
                  const Join& join) {
  T result = identity;
  std::mutex mu;
  parallel_for(pool, first, last, grain,
               [&](std::size_t b, std::size_t e) {
                 T local = identity;
                 body(b, e, local);
                 std::lock_guard<std::mutex> lock(mu);
                 result = join(result, local);
               });
  return result;
}

}  // namespace hs::taskx
