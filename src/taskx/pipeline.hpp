// Token-based pipeline with typed filter modes — the TBB
// parallel_pipeline equivalent (paper §III-B).
//
// Semantics follow TBB:
//  * the source is pulled serially; each pulled item becomes a *token*;
//  * at most `max_live_tokens` tokens are in flight (the knob the paper
//    tuned to 38 for CPU-only and 50 for GPU-combined runs);
//  * kParallel filters run concurrently on any worker;
//  * kSerialInOrder filters process tokens in source order, one at a time;
//  * kSerialOutOfOrder filters process one token at a time, any order;
//  * a filter returning an empty Item drops the token's payload; the token
//    still traverses remaining serial gates (keeping order) and then
//    recycles back to the source.
//
// Tokens never block a worker thread: a token that cannot enter a serial
// gate is parked inside the gate and resumed by the releasing thread.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/status.hpp"
#include "flow/item.hpp"
#include "telemetry/telemetry.hpp"

namespace hs::taskx {

class ThreadPool;

/// Shared stream payload type (same type-erased item as the flow runtime).
using Item = hs::flow::Item;

enum class FilterMode : std::uint8_t {
  kParallel,
  kSerialInOrder,
  kSerialOutOfOrder,
};

/// A TBB-style pipeline: construct with a source, add filters, run.
class Pipeline {
 public:
  /// `source` is called serially; std::nullopt ends the stream.
  explicit Pipeline(std::function<std::optional<Item>()> source);
  ~Pipeline();
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Appends a filter. The function receives the current payload and
  /// returns the transformed payload (empty Item = drop).
  void add_filter(FilterMode mode, std::function<Item(Item)> fn,
                  std::string name = "filter");

  /// Telemetry sinks for the run. When never called (or inactive), run()
  /// falls back to telemetry::default_instrumentation("taskx") — active
  /// only while telemetry::set_enabled(true). Per filter the run records
  /// "<prefix>.<filter>.svc_ns" (histogram), "<prefix>.<filter>.items"
  /// (counter), and a span per invocation on whichever pool thread ran it.
  void set_telemetry(telemetry::StreamInstrumentation telemetry);

  /// Runs to completion on `pool`; the calling thread helps execute tasks.
  /// `max_live_tokens` must be >= 1. Single-shot.
  Status run(ThreadPool& pool, std::size_t max_live_tokens);

  /// Items fully processed (reached past the last filter), valid after run.
  [[nodiscard]] std::uint64_t items_processed() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hs::taskx
