#include "taskx/pipeline.hpp"

#include <atomic>
#include <cassert>
#include <chrono>
#include <mutex>
#include <optional>
#include <vector>

#include "taskx/pool.hpp"
#include "telemetry/span_recorder.hpp"

namespace hs::taskx {

namespace {

/// One in-flight stream element.
struct Token {
  std::uint64_t seq = 0;
  Item payload;
  std::size_t next_filter = 0;
  bool dropped = false;
};

}  // namespace

struct Pipeline::Impl {
  struct Filter {
    FilterMode mode;
    std::function<Item(Item)> fn;
    std::string name;

    // Telemetry sinks, resolved once by run() (null = not instrumented).
    telemetry::Histogram* hist = nullptr;
    telemetry::Counter* items = nullptr;
    telemetry::SpanRecorder* spans = nullptr;
    const char* span_name = "";

    // Serial-gate state (unused for kParallel). Parked tokens live in a
    // fixed ring of max_live_tokens slots (sized once by run()), so a park
    // never heap-allocates. kSerialInOrder indexes by seq % cap — live
    // seqs at a gate with counter v all fall in [v, v + cap - 1] (a token
    // only gets a fresh seq after the gate has processed its old one), so
    // the mapping is collision-free. kSerialOutOfOrder uses head/count.
    std::mutex mu;
    bool busy = false;
    std::uint64_t next_seq = 0;               // kSerialInOrder
    std::vector<std::optional<Token>> parked; // ring of max_live_tokens
    std::size_t head = 0;                     // kSerialOutOfOrder
    std::size_t count = 0;                    // kSerialOutOfOrder
  };

  std::function<std::optional<Item>()> source;
  std::vector<std::unique_ptr<Filter>> filters;
  telemetry::StreamInstrumentation telemetry;
  bool ran = false;
  std::size_t token_cap = 0;  // max_live_tokens, fixed by run()

  // --- run state ---
  ThreadPool* pool = nullptr;
  std::mutex source_mu;
  bool source_done = false;
  std::uint64_t next_token_seq = 0;
  std::size_t live_tokens = 0;  // guarded by source_mu
  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  Status first_error;
  std::atomic<std::uint64_t> processed{0};

  void fail(Status s) {
    {
      std::lock_guard<std::mutex> lock(err_mu);
      if (first_error.ok()) first_error = std::move(s);
    }
    failed.store(true, std::memory_order_release);
  }

  Item apply(Filter& f, Item in) {
    try {
      if (f.hist != nullptr || f.spans != nullptr) {
        const auto t0 = std::chrono::steady_clock::now();
        Item out = f.fn(std::move(in));
        const auto t1 = std::chrono::steady_clock::now();
        if (f.hist != nullptr) {
          f.hist->record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()));
        }
        if (f.spans != nullptr) {
          f.spans->record(f.span_name, f.spans->to_ns(t0), f.spans->to_ns(t1));
        }
        if (f.items != nullptr) f.items->add(1);
        return out;
      }
      if (f.items != nullptr) f.items->add(1);
      return f.fn(std::move(in));
    } catch (const std::exception& e) {
      fail(Internal(f.name + ": " + e.what()));
    } catch (...) {
      fail(Internal(f.name + ": unknown exception"));
    }
    return Item{};
  }

  /// Pulls the next source item; updates token bookkeeping. Returns false
  /// when the stream is exhausted (the caller's token retires).
  bool refill(Token& tok) {
    bool last_token = false;
    {
      std::lock_guard<std::mutex> lock(source_mu);
      if (!source_done && !failed.load(std::memory_order_acquire)) {
        std::optional<Item> next;
        try {
          next = source();
        } catch (const std::exception& e) {
          fail(Internal(std::string("source: ") + e.what()));
          next = std::nullopt;
        }
        if (next.has_value()) {
          tok.seq = next_token_seq++;
          tok.payload = std::move(*next);
          tok.next_filter = 0;
          tok.dropped = false;
          return true;
        }
        source_done = true;
      }
      // Token retires.
      last_token = --live_tokens == 0;
    }
    // Publish completion only after source_mu is released: run() returns as
    // soon as it observes done, and the caller may destroy this Impl — the
    // mutex must not still be mid-unlock on this thread when that happens.
    if (last_token) done.store(true, std::memory_order_release);
    return false;
  }

  /// Runs a serial filter whose gate the caller has acquired, releases the
  /// gate (waking the next parked token), then returns so the caller can
  /// continue the token past this filter.
  void run_serial_acquired(std::size_t fi, Token& tok) {
    Filter& f = *filters[fi];
    if (!tok.dropped && !failed.load(std::memory_order_acquire)) {
      tok.payload = apply(f, std::move(tok.payload));
      if (!tok.payload.has_value()) tok.dropped = true;
    }
    // Release: wake the next eligible parked token, transferring the gate.
    std::optional<Token> resume;
    {
      std::lock_guard<std::mutex> lock(f.mu);
      f.busy = false;
      if (f.mode == FilterMode::kSerialInOrder) {
        ++f.next_seq;
        auto& slot = f.parked[f.next_seq % token_cap];
        if (slot.has_value()) {
          assert(slot->seq == f.next_seq);
          resume = std::move(*slot);
          slot.reset();
          f.busy = true;
        }
      } else {
        if (f.count > 0) {
          auto& slot = f.parked[f.head];
          resume = std::move(*slot);
          slot.reset();
          f.head = (f.head + 1) % token_cap;
          --f.count;
          f.busy = true;
        }
      }
    }
    if (resume.has_value()) {
      pool->submit([this, fi, t = std::move(*resume)]() mutable {
        run_serial_acquired(fi, t);
        ++t.next_filter;
        advance(std::move(t));
      });
    }
  }

  /// Drives a token through the remaining filters; parks at busy serial
  /// gates; recycles through the source after the last filter.
  void advance(Token tok) {
    for (;;) {
      if (tok.next_filter >= filters.size()) {
        if (!tok.dropped) processed.fetch_add(1, std::memory_order_relaxed);
        tok.payload.reset();
        if (!refill(tok)) return;
        continue;
      }
      Filter& f = *filters[tok.next_filter];
      if (f.mode == FilterMode::kParallel) {
        if (!tok.dropped && !failed.load(std::memory_order_acquire)) {
          tok.payload = apply(f, std::move(tok.payload));
          if (!tok.payload.has_value()) tok.dropped = true;
        }
        ++tok.next_filter;
        continue;
      }
      // Serial gate: enter or park.
      {
        std::lock_guard<std::mutex> lock(f.mu);
        bool my_turn = f.mode == FilterMode::kSerialOutOfOrder ||
                       tok.seq == f.next_seq;
        if (f.busy || !my_turn) {
          if (f.mode == FilterMode::kSerialInOrder) {
            f.parked[tok.seq % token_cap] = std::move(tok);
          } else {
            f.parked[(f.head + f.count) % token_cap] = std::move(tok);
            ++f.count;
          }
          return;  // resumed later by the releasing thread
        }
        f.busy = true;
      }
      run_serial_acquired(tok.next_filter, tok);
      ++tok.next_filter;
    }
  }
};

Pipeline::Pipeline(std::function<std::optional<Item>()> source)
    : impl_(std::make_unique<Impl>()) {
  assert(source && "null source");
  impl_->source = std::move(source);
}

Pipeline::~Pipeline() = default;

void Pipeline::add_filter(FilterMode mode, std::function<Item(Item)> fn,
                          std::string name) {
  assert(fn && "null filter");
  auto f = std::make_unique<Impl::Filter>();
  f->mode = mode;
  f->fn = std::move(fn);
  f->name = std::move(name);
  impl_->filters.push_back(std::move(f));
}

void Pipeline::set_telemetry(telemetry::StreamInstrumentation telemetry) {
  impl_->telemetry = std::move(telemetry);
}

Status Pipeline::run(ThreadPool& pool, std::size_t max_live_tokens) {
  Impl& im = *impl_;
  if (im.ran) return FailedPrecondition("pipeline already ran");
  im.ran = true;
  if (max_live_tokens == 0) {
    return InvalidArgument("max_live_tokens must be >= 1");
  }
  if (im.filters.empty()) {
    return InvalidArgument("pipeline needs at least one filter");
  }
  im.pool = &pool;
  im.token_cap = max_live_tokens;
  telemetry::StreamInstrumentation instr =
      im.telemetry.active() ? im.telemetry
                            : telemetry::default_instrumentation("taskx");
  if (instr.active() && instr.prefix.empty()) instr.prefix = "taskx";
  for (auto& f : im.filters) {
    if (f->mode != FilterMode::kParallel) {
      f->parked.resize(max_live_tokens);  // at most cap-1 parked at once
    }
    if (instr.registry != nullptr) {
      f->hist = instr.registry->histogram(instr.prefix + "." + f->name +
                                          ".svc_ns");
      f->items =
          instr.registry->counter(instr.prefix + "." + f->name + ".items");
    }
    if (instr.spans != nullptr) {
      f->spans = instr.spans;
      f->span_name = instr.spans->intern(instr.prefix + "." + f->name);
    }
  }

  // Seed up to max_live_tokens tokens from the source.
  std::vector<Token> seeds;
  {
    std::lock_guard<std::mutex> lock(im.source_mu);
    for (std::size_t i = 0; i < max_live_tokens; ++i) {
      std::optional<Item> next;
      try {
        next = im.source();
      } catch (const std::exception& e) {
        im.fail(Internal(std::string("source: ") + e.what()));
        next = std::nullopt;
      }
      if (!next.has_value()) {
        im.source_done = true;
        break;
      }
      Token tok;
      tok.seq = im.next_token_seq++;
      tok.payload = std::move(*next);
      seeds.push_back(std::move(tok));
    }
    im.live_tokens = seeds.size();
    if (seeds.empty()) im.done.store(true, std::memory_order_release);
  }
  for (Token& tok : seeds) {
    pool.submit([&im, t = std::move(tok)]() mutable { im.advance(std::move(t)); });
  }

  pool.help_while([&im] { return im.done.load(std::memory_order_acquire); });

  std::lock_guard<std::mutex> lock(im.err_mu);
  return im.first_error;
}

std::uint64_t Pipeline::items_processed() const {
  return impl_->processed.load(std::memory_order_relaxed);
}

}  // namespace hs::taskx
