// Blocked-range parallel_for on the task pool (TBB's map pattern).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>

#include "taskx/pool.hpp"

namespace hs::taskx {

/// Applies `body(begin, end)` over [first, last) split into chunks of at
/// most `grain` indices. Blocks until all chunks complete; the calling
/// thread helps execute chunks. `body` must be safe to invoke concurrently
/// on disjoint ranges.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t first, std::size_t last,
                  std::size_t grain, const Body& body) {
  if (first >= last) return;
  if (grain == 0) grain = 1;
  const std::size_t count = (last - first + grain - 1) / grain;
  std::atomic<std::size_t> remaining{count};
  for (std::size_t c = 0; c < count; ++c) {
    const std::size_t b = first + c * grain;
    const std::size_t e = b + grain < last ? b + grain : last;
    pool.submit([&body, &remaining, b, e] {
      body(b, e);
      remaining.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  pool.help_while([&remaining] {
    return remaining.load(std::memory_order_acquire) == 0;
  });
}

/// Element-wise convenience: body(index).
template <typename Body>
void parallel_for_each_index(ThreadPool& pool, std::size_t first,
                             std::size_t last, std::size_t grain,
                             const Body& body) {
  parallel_for(pool, first, last, grain,
               [&body](std::size_t b, std::size_t e) {
                 for (std::size_t i = b; i < e; ++i) body(i);
               });
}

}  // namespace hs::taskx
