// Chrome-trace (chrome://tracing / Perfetto) export of a recorded
// timeline: each engine becomes a track, each recorded task a complete
// event. Load the produced JSON in https://ui.perfetto.dev to inspect how
// a modeled schedule (e.g. one Fig. 1 variant) overlaps copies, kernels,
// and host work.
#pragma once

#include <string>

#include "common/status.hpp"
#include "des/timeline.hpp"

namespace hs::des {

/// Serializes the timeline's recorded trace to Chrome trace-event JSON.
/// Requires set_recording(true) before the tasks of interest were
/// submitted; fails with FAILED_PRECONDITION when nothing was recorded.
Status write_chrome_trace(const Timeline& timeline, const std::string& path);

/// The same JSON as a string (for tests).
Result<std::string> chrome_trace_json(const Timeline& timeline);

}  // namespace hs::des
