#include "des/trace_export.hpp"

#include <cstdio>
#include <sstream>

namespace hs::des {

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

Result<std::string> chrome_trace_json(const Timeline& timeline) {
  if (timeline.trace_events().empty()) {
    return FailedPrecondition(
        "no trace recorded: call set_recording(true) before submitting");
  }
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  // Track names: one metadata event per engine.
  for (std::uint32_t e = 0; e < timeline.engine_count(); ++e) {
    if (!first) os << ",\n";
    first = false;
    os << R"({"ph":"M","pid":1,"tid":)" << e
       << R"(,"name":"thread_name","args":{"name":")";
    json_escape(os, timeline.engine_stats(EngineId{e}).name);
    os << "\"}}";
  }
  // Complete events; timestamps in microseconds of virtual time.
  for (const TraceEvent& ev : timeline.trace_events()) {
    os << ",\n";
    os << R"({"ph":"X","pid":1,"tid":)" << ev.engine << R"(,"name":")";
    json_escape(os, ev.label.empty() ? std::string("task") : ev.label);
    os << R"(","ts":)" << ev.start * 1e6 << R"(,"dur":)"
       << (ev.finish - ev.start) * 1e6 << "}";
  }
  os << "\n]}\n";
  return os.str();
}

Status write_chrome_trace(const Timeline& timeline, const std::string& path) {
  auto json = chrome_trace_json(timeline);
  if (!json.ok()) return json.status();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Internal("cannot open trace file: " + path);
  bool ok = std::fwrite(json.value().data(), 1, json.value().size(), f) ==
            json.value().size();
  std::fclose(f);
  if (!ok) return Internal("short write to trace file: " + path);
  return OkStatus();
}

}  // namespace hs::des
