// Discrete-event timeline used to compute *modeled* execution times.
//
// The GPU simulator (src/gpusim) and the host-side performance model
// (src/perfmodel) both map work onto serial Engines (an SM cluster, a PCIe
// copy engine, a host hardware thread). Submitting a task of a given
// duration with dependencies yields its start/finish times under FIFO
// engine scheduling:
//
//   start  = max(engine_free_time, max(finish(dep) for dep in deps))
//   finish = start + duration
//
// There is no global event queue: because each engine is serial-FIFO and
// durations are known at submission, completion times are computable
// greedily in submission order. Dependencies must therefore reference
// already-submitted tasks (enforced). This matches how CUDA streams and
// OpenCL in-order command queues serialize work.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace hs::des {

/// Virtual time in seconds.
using Time = double;

/// Opaque task handle; valid for the lifetime of the Timeline that issued it.
struct TaskId {
  std::uint64_t index = kInvalid;
  static constexpr std::uint64_t kInvalid =
      std::numeric_limits<std::uint64_t>::max();
  [[nodiscard]] bool valid() const { return index != kInvalid; }
  friend bool operator==(TaskId a, TaskId b) { return a.index == b.index; }
};

/// Handle to a serial engine registered on a Timeline.
struct EngineId {
  std::uint32_t index = 0;
  friend bool operator==(EngineId a, EngineId b) { return a.index == b.index; }
};

/// Aggregate statistics for one engine.
struct EngineStats {
  std::string name;
  Time busy = 0;          ///< sum of task durations executed on this engine
  Time free_at = 0;       ///< time the engine becomes idle
  std::uint64_t tasks = 0;
};

/// One recorded task, for trace export (labels are only retained while
/// recording is enabled; see set_recording).
struct TraceEvent {
  std::string label;
  std::uint32_t engine = 0;
  Time start = 0;
  Time finish = 0;
};

/// The timeline: registry of engines plus the append-only task log.
class Timeline {
 public:
  /// Registers a serial FIFO engine (e.g. "gpu0.compute").
  EngineId add_engine(std::string name);

  /// Submits a task. `duration` must be >= 0. All `deps` must already have
  /// been submitted to this timeline. Returns the task's id.
  TaskId submit(EngineId engine, Time duration, std::span<const TaskId> deps);

  /// Labeled form, retained in the trace when recording is enabled.
  TaskId submit(EngineId engine, Time duration, std::span<const TaskId> deps,
                std::string_view label);

  /// Like submit, but the task additionally cannot start before
  /// `earliest_start` (absolute virtual time):
  ///
  ///   start = max(engine_free_time, earliest_start, deps_ready)
  ///
  /// This models work entering the schedule from outside the dependency
  /// graph — cross-traffic arriving on a shared fabric link at a known
  /// time, a tenant request with a release time — while keeping the greedy
  /// submission-order computation intact (the minimum start is a constant,
  /// so completion times are still computable at submission).
  TaskId submit_at(EngineId engine, Time duration, Time earliest_start,
                   std::span<const TaskId> deps = {},
                   std::string_view label = {});

  /// Enables per-task trace recording (off by default: figure benches
  /// submit millions of tasks; tracing is a debugging/visualization aid).
  void set_recording(bool enabled) { recording_ = enabled; }
  [[nodiscard]] bool recording() const { return recording_; }
  [[nodiscard]] const std::vector<TraceEvent>& trace_events() const {
    return trace_;
  }

  /// Convenience: no dependencies.
  TaskId submit(EngineId engine, Time duration) {
    return submit(engine, duration, {});
  }

  /// Convenience: single dependency (ignored if invalid, which lets callers
  /// chain "previous op in stream" without special-casing the first op).
  TaskId submit_after(EngineId engine, Time duration, TaskId dep);

  /// A zero-duration task on a virtual "join" engine that waits for all
  /// deps. Useful for events / clWaitForEvents semantics.
  TaskId join(std::span<const TaskId> deps);

  [[nodiscard]] Time start_time(TaskId id) const;
  [[nodiscard]] Time finish_time(TaskId id) const;

  /// Finish time of the latest-finishing task submitted so far (the
  /// makespan of the modeled schedule).
  [[nodiscard]] Time makespan() const { return makespan_; }

  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  [[nodiscard]] std::size_t engine_count() const { return engines_.size(); }
  [[nodiscard]] const EngineStats& engine_stats(EngineId id) const;

  /// Busy fraction of an engine over [0, makespan]; 0 when makespan is 0.
  [[nodiscard]] double utilization(EngineId id) const;

 private:
  struct Task {
    Time start = 0;
    Time finish = 0;
    EngineId engine;
  };

  [[nodiscard]] Time deps_ready(std::span<const TaskId> deps) const;

  std::vector<EngineStats> engines_;
  std::vector<Task> tasks_;
  bool recording_ = false;
  std::vector<TraceEvent> trace_;
  EngineId join_engine_{};   ///< lazily-created engine for join() tasks
  bool has_join_engine_ = false;
  Time makespan_ = 0;
};

}  // namespace hs::des
