#include "des/timeline.hpp"

#include <algorithm>
#include <cassert>

namespace hs::des {

EngineId Timeline::add_engine(std::string name) {
  EngineId id{static_cast<std::uint32_t>(engines_.size())};
  engines_.push_back(EngineStats{std::move(name), 0, 0, 0});
  return id;
}

Time Timeline::deps_ready(std::span<const TaskId> deps) const {
  Time ready = 0;
  for (TaskId dep : deps) {
    if (!dep.valid()) continue;
    assert(dep.index < tasks_.size() && "dependency not yet submitted");
    ready = std::max(ready, tasks_[dep.index].finish);
  }
  return ready;
}

TaskId Timeline::submit(EngineId engine, Time duration,
                        std::span<const TaskId> deps) {
  return submit(engine, duration, deps, {});
}

TaskId Timeline::submit(EngineId engine, Time duration,
                        std::span<const TaskId> deps,
                        std::string_view label) {
  return submit_at(engine, duration, 0, deps, label);
}

TaskId Timeline::submit_at(EngineId engine, Time duration, Time earliest_start,
                           std::span<const TaskId> deps,
                           std::string_view label) {
  assert(engine.index < engines_.size());
  assert(duration >= 0 && "negative task duration");
  assert(earliest_start >= 0 && "negative earliest start");
  EngineStats& e = engines_[engine.index];
  Time start = std::max(std::max(e.free_at, earliest_start), deps_ready(deps));
  Time finish = start + duration;
  e.free_at = finish;
  e.busy += duration;
  e.tasks += 1;
  makespan_ = std::max(makespan_, finish);
  tasks_.push_back(Task{start, finish, engine});
  if (recording_) {
    trace_.push_back(TraceEvent{std::string(label), engine.index, start,
                                finish});
  }
  return TaskId{tasks_.size() - 1};
}

TaskId Timeline::submit_after(EngineId engine, Time duration, TaskId dep) {
  if (dep.valid()) {
    TaskId deps[1] = {dep};
    return submit(engine, duration, deps);
  }
  return submit(engine, duration, {});
}

TaskId Timeline::join(std::span<const TaskId> deps) {
  if (!has_join_engine_) {
    join_engine_ = add_engine("timeline.join");
    has_join_engine_ = true;
  }
  // A join must not serialize unrelated joins behind each other, so reset
  // the join engine's availability to the deps' ready time: joins are
  // zero-duration and conceptually run on infinite parallelism.
  engines_[join_engine_.index].free_at = 0;
  return submit(join_engine_, 0, deps);
}

Time Timeline::start_time(TaskId id) const {
  assert(id.valid() && id.index < tasks_.size());
  return tasks_[id.index].start;
}

Time Timeline::finish_time(TaskId id) const {
  assert(id.valid() && id.index < tasks_.size());
  return tasks_[id.index].finish;
}

const EngineStats& Timeline::engine_stats(EngineId id) const {
  assert(id.index < engines_.size());
  return engines_[id.index];
}

double Timeline::utilization(EngineId id) const {
  if (makespan_ <= 0) return 0.0;
  return engine_stats(id).busy / makespan_;
}

}  // namespace hs::des
