#include "gpusim/cost_model.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace hs::gpusim {

std::uint32_t occupancy_warps_per_sm(const DeviceSpec& spec,
                                     const KernelAttributes& attrs,
                                     const Dim3& block) {
  const std::uint64_t threads_per_block = std::max<std::uint64_t>(1, block.count());
  const std::uint32_t warps_per_block = static_cast<std::uint32_t>(
      (threads_per_block + spec.warp_size - 1) / spec.warp_size);

  // Blocks that fit by shared memory.
  std::uint64_t blocks_by_shmem = spec.max_warps_per_sm;  // "unlimited"
  if (attrs.shared_mem_per_block > 0) {
    if (attrs.shared_mem_per_block > spec.shared_mem_per_sm) return 0;
    blocks_by_shmem = spec.shared_mem_per_sm / attrs.shared_mem_per_block;
  }

  // Warps that fit by register file (registers are allocated per thread).
  const std::uint64_t regs_per_warp =
      static_cast<std::uint64_t>(std::max<std::uint32_t>(1, attrs.registers_per_thread)) *
      spec.warp_size;
  const std::uint64_t warps_by_regs = spec.registers_per_sm / regs_per_warp;
  if (warps_by_regs == 0) return 0;

  // Warps that fit by thread slots and warp slots.
  const std::uint64_t warps_by_threads = spec.max_threads_per_sm / spec.warp_size;
  const std::uint64_t warps_by_slots = spec.max_warps_per_sm;

  std::uint64_t warps = std::min({warps_by_regs, warps_by_threads, warps_by_slots});
  // Whole blocks only: round down to a multiple of warps_per_block.
  std::uint64_t blocks = std::min<std::uint64_t>(warps / warps_per_block, blocks_by_shmem);
  if (blocks == 0) {
    // A single block that exceeds per-SM warp capacity can never launch.
    return 0;
  }
  return static_cast<std::uint32_t>(blocks * warps_per_block);
}

double kernel_duration_seconds(const DeviceSpec& spec,
                               const KernelAttributes& attrs,
                               const Dim3& block,
                               std::span<const double> warp_cost_units) {
  assert(spec.sm_count > 0);
  if (warp_cost_units.empty()) return spec.kernel_launch_latency;

  const std::uint32_t resident = occupancy_warps_per_sm(spec, attrs, block);
  // resident == 0 means an unlaunchable kernel; the Device rejects it before
  // reaching here, so treat defensively as 1.
  const std::uint32_t resident_warps = std::max<std::uint32_t>(1, resident);

  // Round-robin warp distribution across SMs, tracking per-SM busy units.
  std::vector<double> sm_busy(spec.sm_count, 0.0);
  std::vector<std::uint32_t> sm_warps(spec.sm_count, 0);
  for (std::size_t i = 0; i < warp_cost_units.size(); ++i) {
    std::size_t sm = i % spec.sm_count;
    sm_busy[sm] += warp_cost_units[i] + spec.warp_fixed_cost_units;
    sm_warps[sm] += 1;
  }

  double worst = 0.0;
  for (std::uint32_t sm = 0; sm < spec.sm_count; ++sm) {
    if (sm_warps[sm] == 0) continue;
    // Latency hiding: an SM concurrently holding fewer warps than
    // latency_hiding_warps cannot keep its pipelines full; stall factor
    // scales busy time up. Concurrency is bounded by both the kernel's
    // occupancy and the warps actually assigned to this SM.
    const std::uint32_t concurrent =
        std::min<std::uint32_t>(resident_warps, sm_warps[sm]);
    const double stall =
        std::max(1.0, spec.latency_hiding_warps /
                          static_cast<double>(concurrent));
    worst = std::max(worst, sm_busy[sm] * stall);
  }
  return spec.kernel_launch_latency + worst * spec.seconds_per_warp_cost_unit;
}

double copy_duration_seconds(const DeviceSpec& spec, CopyDir dir,
                             HostMem host_mem, std::uint64_t bytes) {
  double bandwidth = 0;
  switch (dir) {
    case CopyDir::kHostToDevice:
      bandwidth = spec.h2d_bandwidth;
      break;
    case CopyDir::kDeviceToHost:
      bandwidth = spec.d2h_bandwidth;
      break;
    case CopyDir::kDeviceToDevice:
      // On-device copies move at roughly memory bandwidth; model as an
      // order of magnitude faster than PCIe.
      bandwidth = 10.0 * std::max(spec.h2d_bandwidth, spec.d2h_bandwidth);
      break;
  }
  if (dir != CopyDir::kDeviceToDevice && host_mem == HostMem::kPageable) {
    bandwidth *= spec.pageable_bandwidth_factor;
  }
  return spec.copy_latency + static_cast<double>(bytes) / bandwidth;
}

}  // namespace hs::gpusim
