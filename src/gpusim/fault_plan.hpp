// Deterministic, seed-driven fault injection for simulated devices.
//
// A FaultPlan is attached to a Device and consulted (under the machine lock)
// before every fallible device operation: allocations, H2D/D2H transfers and
// kernel launches (device-to-device copies and memsets count as
// compute-engine ops and report under the launch site). A plan combines any
// number of rules:
//
//   * nth-op        — fail exactly the k-th operation of a site (one-shot),
//   * probabilistic — fail each operation of a site with probability p,
//                     drawn from the plan's own seeded xoshiro256** stream,
//   * sticky lost   — after triggering, the device is permanently lost and
//                     every subsequent operation fails with kUnavailable
//                     (cudaErrorDevicesUnavailable / CL_DEVICE_NOT_AVAILABLE
//                     at the API shims).
//
// Determinism: all randomness comes from the plan's seed, and all counters
// are per-device op counts taken under the machine lock. Single-threaded
// drivers replay identically; multi-threaded drivers see the same fault
// *decisions* per op index, while the thread that observes each fault depends
// on scheduling — recovery must therefore be interleaving-agnostic, which is
// exactly what the equivalence tests assert.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace hs::gpusim {

/// Where a fault can strike. kLaunch also covers memset and D2D copies
/// (compute-engine operations).
enum class FaultSite : std::uint8_t { kAlloc = 0, kH2D, kD2H, kLaunch };

inline constexpr std::size_t kFaultSiteCount = 4;

std::string_view fault_site_name(FaultSite site);

/// One injected fault, for post-run inspection.
struct FaultRecord {
  FaultSite site = FaultSite::kAlloc;
  std::uint64_t site_op = 0;    ///< 1-based op index within the site
  std::uint64_t global_op = 0;  ///< 1-based op index across all sites
  ErrorCode code = ErrorCode::kOk;
  bool sticky = false;          ///< true for device-lost faults
};

struct FaultTelemetry {
  std::array<std::uint64_t, kFaultSiteCount> ops_seen{};
  std::array<std::uint64_t, kFaultSiteCount> faults_injected{};
  std::uint64_t total_ops = 0;
  std::uint64_t total_faults = 0;
  bool device_lost = false;
  std::vector<FaultRecord> records;

  [[nodiscard]] std::string ToString() const;
};

class FaultPlan {
 public:
  FaultPlan() : FaultPlan(0x5eedf417ull) {}
  explicit FaultPlan(std::uint64_t seed) : rng_(seed) {}

  /// Fail the `nth` operation (1-based) of `site`, once. Default codes:
  /// kOutOfMemory for allocations, kInternal (transient) elsewhere.
  FaultPlan& fail_nth(FaultSite site, std::uint64_t nth);
  FaultPlan& fail_nth(FaultSite site, std::uint64_t nth, ErrorCode code);

  /// Fail each operation of `site` with probability `rate` in [0, 1].
  FaultPlan& fail_probabilistic(FaultSite site, double rate);
  FaultPlan& fail_probabilistic(FaultSite site, double rate, ErrorCode code);

  /// Permanently lose the device at its `nth` operation overall (any site).
  FaultPlan& lose_device_at(std::uint64_t nth_global_op);
  /// Permanently lose the device with probability `rate` per operation.
  FaultPlan& lose_device_probabilistic(double rate);

  /// Parses a `--faults=` spec: comma-separated clauses over sites
  /// {alloc, h2d, d2h, launch, any} plus the pseudo-site `lost`:
  ///
  ///   seed=<u64>        PRNG seed for probabilistic rules (default 42)
  ///   <site>.nth=<k>    one-shot failure at the site's k-th op
  ///   <site>.p=<rate>   per-op failure probability
  ///   lost.nth=<k>      sticky device-lost at the k-th op overall
  ///   lost.p=<rate>     sticky device-lost probability per op
  ///
  /// Example: "seed=7,h2d.p=0.05,alloc.nth=3,lost.nth=200".
  static Result<FaultPlan> Parse(std::string_view spec);

  /// Consulted by Device before executing an operation; returns the injected
  /// error, or OK to let the operation proceed. Caller holds the machine
  /// lock (the plan itself is unsynchronized).
  Status on_op(FaultSite site);

  [[nodiscard]] bool device_lost() const { return lost_; }
  [[nodiscard]] const FaultTelemetry& telemetry() const { return telemetry_; }

 private:
  struct Rule {
    enum class Kind : std::uint8_t { kNth, kProbabilistic } kind = Kind::kNth;
    bool sticky = false;    ///< device-lost rule
    bool any_site = false;  ///< matches the global op counter / every site
    FaultSite site = FaultSite::kAlloc;
    std::uint64_t nth = 0;
    double rate = 0.0;
    ErrorCode code = ErrorCode::kInternal;
    bool fired = false;  ///< nth rules are one-shot
  };

  static ErrorCode default_code(FaultSite site) {
    return site == FaultSite::kAlloc ? ErrorCode::kOutOfMemory
                                     : ErrorCode::kInternal;
  }

  Status inject(FaultSite site, const Rule& rule);

  Xoshiro256 rng_;
  std::vector<Rule> rules_;
  bool lost_ = false;
  FaultTelemetry telemetry_;
};

}  // namespace hs::gpusim
