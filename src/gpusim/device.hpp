// Simulated GPU devices and the Machine that hosts them.
//
// Execution model: operations are enqueued onto per-device in-order streams
// (CUDA cudaStream_t / OpenCL in-order command queue semantics). Each device
// has three serial hardware engines — compute, host-to-device copy, and
// device-to-host copy — mirroring the dual copy engines that make the
// paper's "2x memory spaces" copy/compute overlap possible. Kernel bodies
// are executed *functionally* on the host at enqueue time (results are
// real, bit-exact), while durations are charged onto a shared discrete-event
// Timeline; synchronization calls return virtual completion times.
//
// Thread safety: all enqueue/sync entry points lock the owning Machine, so
// multicore runtimes (flow/taskx/spar) can drive devices from many worker
// threads, as the paper's combined versions do.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.hpp"
#include "des/timeline.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/fault_plan.hpp"
#include "gpusim/spec.hpp"

namespace hs::gpusim {

class Machine;

/// Per-thread kernel context, the simulator's threadIdx/blockIdx/blockDim/
/// gridDim equivalent (paper §III-D).
struct ThreadCtx {
  Dim3 thread_idx;
  Dim3 block_idx;
  Dim3 block_dim;
  Dim3 grid_dim;

  /// CUDA's blockIdx.x * blockDim.x + threadIdx.x (and OpenCL's
  /// get_global_id(0)).
  [[nodiscard]] std::uint64_t global_x() const {
    return static_cast<std::uint64_t>(block_idx.x) * block_dim.x + thread_idx.x;
  }
  [[nodiscard]] std::uint64_t global_y() const {
    return static_cast<std::uint64_t>(block_idx.y) * block_dim.y + thread_idx.y;
  }
  [[nodiscard]] std::uint64_t global_z() const {
    return static_cast<std::uint64_t>(block_idx.z) * block_dim.z + thread_idx.z;
  }
};

/// Identifier of an in-order stream on a device. Stream 0 always exists
/// (the default stream).
using StreamId = std::uint32_t;

/// Handle to an enqueued operation; doubles as an event (cudaEvent_t /
/// cl_event equivalents wrap it).
struct OpHandle {
  des::TaskId task;
  [[nodiscard]] bool valid() const { return task.valid(); }
};

/// Cumulative per-device counters, used by tests and the occupancy probe.
struct DeviceCounters {
  std::uint64_t kernels_launched = 0;
  std::uint64_t h2d_copies = 0;
  std::uint64_t d2h_copies = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t warps_executed = 0;
};

/// One simulated GPU. Create through Machine.
class Device {
 public:
  Device(Machine* machine, std::uint32_t index, DeviceSpec spec);
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint32_t index() const { return index_; }

  // --- device memory -----------------------------------------------------
  /// Allocates `bytes` of device memory (host-backed in the simulation);
  /// fails with OUT_OF_MEMORY when the device's capacity is exceeded —
  /// this is the error the paper hit with 10 MB OpenCL batches.
  Result<void*> malloc(std::uint64_t bytes);
  Status free(void* ptr);
  [[nodiscard]] std::uint64_t memory_used() const;
  [[nodiscard]] std::uint64_t memory_capacity() const {
    return spec_.memory_bytes;
  }
  /// True when [ptr, ptr+len) lies inside a single live device allocation.
  [[nodiscard]] bool owns_range(const void* ptr, std::uint64_t len) const;

  // --- streams -----------------------------------------------------------
  StreamId default_stream() const { return 0; }
  StreamId create_stream();
  [[nodiscard]] std::size_t stream_count() const;

  // --- operations --------------------------------------------------------
  Result<OpHandle> memcpy_h2d(void* dst, const void* src, std::uint64_t bytes,
                              StreamId stream, HostMem host_mem);
  Result<OpHandle> memcpy_d2h(void* dst, const void* src, std::uint64_t bytes,
                              StreamId stream, HostMem host_mem);
  Result<OpHandle> memcpy_d2d(void* dst, const void* src, std::uint64_t bytes,
                              StreamId stream);

  /// Fills device memory (cudaMemset): modeled at device-memory bandwidth
  /// on the compute engine, functionally an immediate fill.
  Result<OpHandle> memset(void* dst, int value, std::uint64_t bytes,
                          StreamId stream);

  /// Launches a kernel on `stream`. `body` is invoked once per simulated
  /// thread in linearized block order; it may return an integral/floating
  /// cost (e.g. loop iterations executed) or void (cost 1). Lane costs are
  /// folded into warp costs under the device's divergence model.
  template <typename F>
  Result<OpHandle> launch(const Dim3& grid, const Dim3& block,
                          const KernelAttributes& attrs, StreamId stream,
                          F&& body);

  /// Makes subsequent work on `stream` wait for `event` (possibly recorded
  /// on another stream or device) — cudaStreamWaitEvent semantics.
  Status wait_event(StreamId stream, OpHandle event);

  // --- synchronization ---------------------------------------------------
  /// Virtual completion time of everything enqueued on `stream` so far.
  Result<double> sync_stream(StreamId stream);
  /// Virtual completion time of all work on this device.
  double sync_all();
  /// Last op enqueued on a stream (invalid handle if none).
  Result<OpHandle> stream_last(StreamId stream);

  // --- model knobs (ablations) --------------------------------------------
  void set_divergence_model(DivergenceModel m) { divergence_ = m; }
  [[nodiscard]] DivergenceModel divergence_model() const { return divergence_; }
  /// Disabling overlap routes copies through the compute engine, removing
  /// the benefit of multiple memory spaces (DESIGN.md ablation §4.2).
  void set_copy_compute_overlap(bool enabled) { overlap_ = enabled; }

  [[nodiscard]] DeviceCounters counters() const;

  /// Total busy seconds of the compute engine (for utilization reports:
  /// divide by the machine makespan).
  [[nodiscard]] double compute_busy_seconds() const;

  // --- fault injection -----------------------------------------------------
  /// Attaches (replaces) a fault plan; subsequent fallible operations consult
  /// it. A sticky device-lost fault marks the device lost permanently.
  void set_fault_plan(FaultPlan plan);
  void clear_fault_plan();
  /// True once a sticky device-lost fault fired (or mark_lost was called).
  /// Lost devices fail every subsequent operation with kUnavailable;
  /// schedulers use this to exclude the device from round-robin.
  [[nodiscard]] bool lost() const;
  /// Administratively loses the device (tests / chaos drills).
  void mark_lost();
  /// Snapshot of the attached plan's telemetry (empty if no plan).
  [[nodiscard]] FaultTelemetry fault_telemetry() const;

 private:
  friend class Machine;

  enum class EngineKind : std::uint8_t { kCompute, kH2D, kD2H };

  Status validate_launch(const Dim3& grid, const Dim3& block,
                         const KernelAttributes& attrs) const;
  /// Consults the fault plan (and lost flag) for one operation. Caller must
  /// hold the machine lock. Ordered after argument validation so genuine
  /// programming errors surface even under an aggressive plan.
  Status fault_check_locked(FaultSite site);
  Result<OpHandle> memcpy_impl(void* dst, const void* src, std::uint64_t bytes,
                               StreamId stream, CopyDir dir, HostMem host_mem);
  /// Records an operation of `duration` on `kind`'s engine, chained after
  /// the stream's previous op. Caller must hold the machine lock.
  OpHandle record_locked(StreamId stream, EngineKind kind, double duration);
  [[nodiscard]] des::EngineId engine_for(EngineKind kind) const;

  Machine* machine_;
  std::uint32_t index_;
  DeviceSpec spec_;
  DivergenceModel divergence_ = DivergenceModel::kMaxLane;
  bool overlap_ = true;

  des::EngineId compute_engine_;
  des::EngineId h2d_engine_;
  des::EngineId d2h_engine_;

  // Allocation table keyed by start address.
  struct Allocation {
    std::unique_ptr<std::uint8_t[]> storage;
    std::uint64_t size = 0;
  };
  std::map<std::uintptr_t, Allocation> allocations_;
  std::uint64_t memory_used_ = 0;

  std::vector<des::TaskId> stream_last_;  // per-stream chain tail
  DeviceCounters counters_;

  std::optional<FaultPlan> fault_plan_;
  bool lost_ = false;
};

/// The simulated machine: a shared Timeline, N devices, and optional host
/// engines for modeling CPU-side stage costs (used by perfmodel).
class Machine {
 public:
  explicit Machine(const std::vector<DeviceSpec>& specs);

  /// Cluster form: the machine registers its engines on an external
  /// timeline (names prefixed with `engine_prefix`, e.g. "n2.") and
  /// serializes every entry point on an external mutex, both owned by the
  /// caller and required to outlive this Machine. Multiple Machines built
  /// over the same timeline/mutex pair then share one clock: TaskIds are
  /// interchangeable across them, and cross-machine dependencies (fabric
  /// transfers) are ordinary timeline tasks. The single-argument
  /// constructor is the degenerate case (own timeline, own mutex, empty
  /// prefix) and its behavior is unchanged.
  Machine(const std::vector<DeviceSpec>& specs, des::Timeline* timeline,
          std::mutex* mutex, std::string engine_prefix);

  /// Machine with `n` identical devices.
  static std::unique_ptr<Machine> Create(int n, const DeviceSpec& spec) {
    return std::make_unique<Machine>(std::vector<DeviceSpec>(n, spec));
  }

  [[nodiscard]] int device_count() const {
    return static_cast<int>(devices_.size());
  }
  Device& device(int i) { return *devices_.at(static_cast<std::size_t>(i)); }

  /// Registers a serial host engine (one per modeled CPU worker thread).
  des::EngineId add_host_engine(std::string name);

  /// Charges `duration` of host work on `engine`, after `deps`.
  des::TaskId host_task(des::EngineId engine, double duration,
                        std::span<const des::TaskId> deps = {});

  /// Zero-duration join of several tasks (event wait on the host).
  des::TaskId join(std::span<const des::TaskId> deps);

  [[nodiscard]] double makespan() const;
  [[nodiscard]] double finish_time(des::TaskId id) const;
  [[nodiscard]] std::size_t op_count() const;
  [[nodiscard]] double engine_busy(des::EngineId id) const;

  /// Enables per-op trace recording (see des/trace_export.hpp).
  void set_trace_recording(bool enabled);
  /// Writes the recorded schedule as Chrome trace-event JSON.
  Status dump_chrome_trace(const std::string& path) const;

  std::mutex& mutex() { return mu(); }

 private:
  friend class Device;

  /// The timeline/mutex in effect: the owned members by default, the
  /// caller's when constructed in cluster form.
  [[nodiscard]] des::Timeline& tl() const { return *timeline_ptr_; }
  [[nodiscard]] std::mutex& mu() const { return *mutex_ptr_; }

  mutable std::mutex mutex_;
  des::Timeline timeline_;
  std::mutex* mutex_ptr_ = &mutex_;
  des::Timeline* timeline_ptr_ = &timeline_;
  std::string engine_prefix_;
  std::vector<std::unique_ptr<Device>> devices_;
};

/// Round-robin device choice excluding lost devices: the first non-lost
/// device at or after `hint` (mod device_count). Returns -1 when every
/// device is lost — callers then degrade to their CPU path.
int pick_surviving_device(Machine& machine, int hint);

// ---- template implementation ----------------------------------------------

template <typename F>
Result<OpHandle> Device::launch(const Dim3& grid, const Dim3& block,
                                const KernelAttributes& attrs, StreamId stream,
                                F&& body) {
  std::lock_guard<std::mutex> lock(machine_->mu());
  if (Status s = validate_launch(grid, block, attrs); !s.ok()) return s;
  if (stream >= stream_last_.size()) {
    return InvalidArgument("unknown stream id");
  }
  if (Status s = fault_check_locked(FaultSite::kLaunch); !s.ok()) return s;

  WarpCostAccumulator acc(spec_.warp_size, divergence_);
  ThreadCtx ctx;
  ctx.grid_dim = grid;
  ctx.block_dim = block;
  for (std::uint32_t bz = 0; bz < grid.z; ++bz) {
    for (std::uint32_t by = 0; by < grid.y; ++by) {
      for (std::uint32_t bx = 0; bx < grid.x; ++bx) {
        ctx.block_idx = Dim3{bx, by, bz};
        // Linearized thread order within a block: x fastest, then y, then z
        // (matches CUDA warp lane assignment).
        for (std::uint32_t tz = 0; tz < block.z; ++tz) {
          for (std::uint32_t ty = 0; ty < block.y; ++ty) {
            for (std::uint32_t tx = 0; tx < block.x; ++tx) {
              ctx.thread_idx = Dim3{tx, ty, tz};
              if constexpr (std::is_void_v<decltype(body(ctx))>) {
                body(ctx);
                acc.add_lane(1.0);
              } else {
                acc.add_lane(static_cast<double>(body(ctx)));
              }
            }
          }
        }
        acc.end_block();
      }
    }
  }
  std::vector<double> warp_costs = acc.take_warp_costs();
  counters_.kernels_launched += 1;
  counters_.warps_executed += warp_costs.size();
  double duration = kernel_duration_seconds(spec_, attrs, block, warp_costs);
  return record_locked(stream, EngineKind::kCompute, duration);
}

}  // namespace hs::gpusim
