#include "gpusim/fault_plan.hpp"

#include <charconv>
#include <cstdlib>

namespace hs::gpusim {

std::string_view fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kAlloc: return "alloc";
    case FaultSite::kH2D: return "h2d";
    case FaultSite::kD2H: return "d2h";
    case FaultSite::kLaunch: return "launch";
  }
  return "unknown";
}

std::string FaultTelemetry::ToString() const {
  std::string out = "ops=" + std::to_string(total_ops) +
                    " faults=" + std::to_string(total_faults) +
                    (device_lost ? " device_lost" : "");
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    if (ops_seen[i] == 0 && faults_injected[i] == 0) continue;
    out += ' ';
    out += fault_site_name(static_cast<FaultSite>(i));
    out += '=' + std::to_string(faults_injected[i]) + '/' +
           std::to_string(ops_seen[i]);
  }
  return out;
}

FaultPlan& FaultPlan::fail_nth(FaultSite site, std::uint64_t nth) {
  return fail_nth(site, nth, default_code(site));
}

FaultPlan& FaultPlan::fail_nth(FaultSite site, std::uint64_t nth,
                               ErrorCode code) {
  Rule r;
  r.kind = Rule::Kind::kNth;
  r.site = site;
  r.nth = nth;
  r.code = code;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::fail_probabilistic(FaultSite site, double rate) {
  return fail_probabilistic(site, rate, default_code(site));
}

FaultPlan& FaultPlan::fail_probabilistic(FaultSite site, double rate,
                                         ErrorCode code) {
  Rule r;
  r.kind = Rule::Kind::kProbabilistic;
  r.site = site;
  r.rate = rate;
  r.code = code;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::lose_device_at(std::uint64_t nth_global_op) {
  Rule r;
  r.kind = Rule::Kind::kNth;
  r.sticky = true;
  r.any_site = true;
  r.nth = nth_global_op;
  r.code = ErrorCode::kUnavailable;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::lose_device_probabilistic(double rate) {
  Rule r;
  r.kind = Rule::Kind::kProbabilistic;
  r.sticky = true;
  r.any_site = true;
  r.rate = rate;
  r.code = ErrorCode::kUnavailable;
  rules_.push_back(r);
  return *this;
}

Status FaultPlan::inject(FaultSite site, const Rule& rule) {
  const auto i = static_cast<std::size_t>(site);
  telemetry_.faults_injected[i] += 1;
  telemetry_.total_faults += 1;
  FaultRecord rec;
  rec.site = site;
  rec.site_op = telemetry_.ops_seen[i];
  rec.global_op = telemetry_.total_ops;
  rec.code = rule.code;
  rec.sticky = rule.sticky;
  telemetry_.records.push_back(rec);
  if (rule.sticky) {
    lost_ = true;
    telemetry_.device_lost = true;
    return Unavailable("injected fault: device lost at op " +
                       std::to_string(telemetry_.total_ops));
  }
  std::string msg = "injected fault: ";
  msg += fault_site_name(site);
  msg += " op " + std::to_string(rec.site_op);
  return {rule.code, std::move(msg)};
}

Status FaultPlan::on_op(FaultSite site) {
  const auto i = static_cast<std::size_t>(site);
  telemetry_.ops_seen[i] += 1;
  telemetry_.total_ops += 1;
  if (lost_) {
    return Unavailable("injected fault: device lost");
  }
  for (Rule& rule : rules_) {
    if (!rule.any_site && rule.site != site) continue;
    bool hit = false;
    switch (rule.kind) {
      case Rule::Kind::kNth: {
        if (rule.fired) break;
        const std::uint64_t count =
            rule.any_site ? telemetry_.total_ops : telemetry_.ops_seen[i];
        if (count == rule.nth) {
          rule.fired = true;
          hit = true;
        }
        break;
      }
      case Rule::Kind::kProbabilistic:
        hit = rng_.chance(rule.rate);
        break;
    }
    if (hit) return inject(site, rule);
  }
  return OkStatus();
}

namespace {

bool parse_u64(std::string_view text, std::uint64_t* out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc{} && ptr == end;
}

bool parse_rate(std::string_view text, double* out) {
  std::string owned(text);
  char* end = nullptr;
  *out = std::strtod(owned.c_str(), &end);
  return end == owned.c_str() + owned.size() && *out >= 0.0 && *out <= 1.0;
}

bool parse_site(std::string_view name, FaultSite* site, bool* any) {
  *any = false;
  if (name == "alloc") { *site = FaultSite::kAlloc; return true; }
  if (name == "h2d") { *site = FaultSite::kH2D; return true; }
  if (name == "d2h") { *site = FaultSite::kD2H; return true; }
  if (name == "launch") { *site = FaultSite::kLaunch; return true; }
  if (name == "any") { *any = true; return true; }
  return false;
}

}  // namespace

Result<FaultPlan> FaultPlan::Parse(std::string_view spec) {
  auto bad = [&spec](std::string_view clause, std::string_view why) {
    return InvalidArgument("bad --faults clause '" + std::string(clause) +
                           "' in '" + std::string(spec) + "': " +
                           std::string(why));
  };

  std::uint64_t seed = 42;
  struct PendingRule {
    std::string site;
    std::string trigger;
    std::string value;
  };
  std::vector<PendingRule> pending;

  std::string_view rest = spec;
  while (!rest.empty()) {
    std::size_t comma = rest.find(',');
    std::string_view clause = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (clause.empty()) continue;

    std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos) return bad(clause, "missing '='");
    std::string_view key = clause.substr(0, eq);
    std::string_view value = clause.substr(eq + 1);

    if (key == "seed") {
      if (!parse_u64(value, &seed)) return bad(clause, "seed must be a u64");
      continue;
    }
    std::size_t dot = key.find('.');
    if (dot == std::string_view::npos) {
      return bad(clause, "expected <site>.<trigger>=<value>");
    }
    pending.push_back(PendingRule{std::string(key.substr(0, dot)),
                                  std::string(key.substr(dot + 1)),
                                  std::string(value)});
  }

  FaultPlan plan(seed);
  for (const PendingRule& p : pending) {
    const std::string clause = p.site + "." + p.trigger + "=" + p.value;
    const bool sticky = p.site == "lost";
    FaultSite site = FaultSite::kAlloc;
    bool any_site = sticky;
    if (!sticky && !parse_site(p.site, &site, &any_site)) {
      return bad(clause, "unknown site (want alloc/h2d/d2h/launch/any/lost)");
    }
    if (p.trigger == "nth") {
      std::uint64_t nth = 0;
      if (!parse_u64(p.value, &nth) || nth == 0) {
        return bad(clause, "nth must be a positive integer");
      }
      if (sticky) {
        plan.lose_device_at(nth);
      } else {
        Rule r;
        r.kind = Rule::Kind::kNth;
        r.any_site = any_site;
        r.site = site;
        r.nth = nth;
        r.code = any_site ? ErrorCode::kInternal : default_code(site);
        plan.rules_.push_back(r);
      }
    } else if (p.trigger == "p") {
      double rate = 0.0;
      if (!parse_rate(p.value, &rate)) {
        return bad(clause, "p must be a probability in [0, 1]");
      }
      if (sticky) {
        plan.lose_device_probabilistic(rate);
      } else {
        Rule r;
        r.kind = Rule::Kind::kProbabilistic;
        r.any_site = any_site;
        r.site = site;
        r.rate = rate;
        r.code = any_site ? ErrorCode::kInternal : default_code(site);
        plan.rules_.push_back(r);
      }
    } else {
      return bad(clause, "unknown trigger (want nth or p)");
    }
  }
  return plan;
}

}  // namespace hs::gpusim
