// Pure timing functions of the GPU simulator: occupancy, kernel duration
// from per-warp costs, and transfer duration. Kept free of Device state so
// the model itself is unit-testable and ablatable (DESIGN.md §4.1/§4.2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/spec.hpp"

namespace hs::gpusim {

/// How warp costs aggregate within a warp. The paper's Mandelbrot analysis
/// hinges on SIMT divergence: lanes that exit the iteration loop early still
/// occupy the warp until the slowest lane finishes (kMaxLane). kSumLane is
/// the ablation model (no divergence penalty).
enum class DivergenceModel : std::uint8_t { kMaxLane, kSumLane };

/// Resident warps per SM for a kernel, limited by the SM's warp slots,
/// thread slots, register file, and shared memory. Returns at least 1 for a
/// launchable kernel, 0 if a single block can never fit (shared memory or
/// register demand too high).
std::uint32_t occupancy_warps_per_sm(const DeviceSpec& spec,
                                     const KernelAttributes& attrs,
                                     const Dim3& block);

/// Duration of a kernel given the cost of every warp (in cost units,
/// already lane-aggregated). Warps are assigned to SMs round-robin; each SM
/// executes its warps back-to-back; an SM running fewer resident warps than
/// `latency_hiding_warps` is stalled proportionally (this is the paper's
/// "GPU is not fully utilized" effect for small launches). Includes the
/// kernel launch latency.
double kernel_duration_seconds(const DeviceSpec& spec,
                               const KernelAttributes& attrs,
                               const Dim3& block,
                               std::span<const double> warp_cost_units);

/// Duration of a host<->device transfer of `bytes`.
double copy_duration_seconds(const DeviceSpec& spec, CopyDir dir,
                             HostMem host_mem, std::uint64_t bytes);

/// Helper accumulating lane costs into warp costs during functional kernel
/// execution. Threads must be fed in linearized-block order (the simulator
/// guarantees this); every `warp_size` lanes close a warp. Partial final
/// warps are closed by finish().
class WarpCostAccumulator {
 public:
  WarpCostAccumulator(std::uint32_t warp_size, DivergenceModel model)
      : warp_size_(warp_size), model_(model) {}

  void add_lane(double cost_units) {
    switch (model_) {
      case DivergenceModel::kMaxLane:
        if (cost_units > current_) current_ = cost_units;
        break;
      case DivergenceModel::kSumLane:
        current_ += cost_units / warp_size_;
        break;
    }
    if (++lanes_ == warp_size_) close_warp();
  }

  /// Closes a partially-filled warp at a block boundary (warps never span
  /// blocks on real hardware).
  void end_block() {
    if (lanes_ > 0) close_warp();
  }

  [[nodiscard]] const std::vector<double>& warp_costs() const {
    return warps_;
  }
  [[nodiscard]] std::vector<double> take_warp_costs() {
    end_block();
    return std::move(warps_);
  }

 private:
  void close_warp() {
    warps_.push_back(current_);
    current_ = 0;
    lanes_ = 0;
  }

  std::uint32_t warp_size_;
  DivergenceModel model_;
  std::uint32_t lanes_ = 0;
  double current_ = 0;
  std::vector<double> warps_;
};

}  // namespace hs::gpusim
