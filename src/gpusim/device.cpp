#include "gpusim/device.hpp"

#include "des/trace_export.hpp"

#include <cassert>
#include <algorithm>
#include <cstring>

namespace hs::gpusim {

Device::Device(Machine* machine, std::uint32_t index, DeviceSpec spec)
    : machine_(machine), index_(index), spec_(std::move(spec)) {
  std::string prefix =
      machine_->engine_prefix_ + "gpu" + std::to_string(index_) + ".";
  compute_engine_ = machine_->tl().add_engine(prefix + "compute");
  h2d_engine_ = machine_->tl().add_engine(prefix + "h2d");
  d2h_engine_ = machine_->tl().add_engine(prefix + "d2h");
  stream_last_.push_back(des::TaskId{});  // stream 0, the default stream
}

Result<void*> Device::malloc(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(machine_->mu());
  if (bytes == 0) return InvalidArgument("zero-byte device allocation");
  if (Status s = fault_check_locked(FaultSite::kAlloc); !s.ok()) return s;
  if (memory_used_ + bytes > spec_.memory_bytes) {
    return OutOfMemory("device " + std::to_string(index_) + " out of memory: " +
                       std::to_string(memory_used_) + " + " +
                       std::to_string(bytes) + " > " +
                       std::to_string(spec_.memory_bytes));
  }
  Allocation alloc;
  alloc.storage = std::make_unique<std::uint8_t[]>(bytes);
  alloc.size = bytes;
  void* ptr = alloc.storage.get();
  allocations_.emplace(reinterpret_cast<std::uintptr_t>(ptr), std::move(alloc));
  memory_used_ += bytes;
  return ptr;
}

Status Device::free(void* ptr) {
  std::lock_guard<std::mutex> lock(machine_->mu());
  auto it = allocations_.find(reinterpret_cast<std::uintptr_t>(ptr));
  if (it == allocations_.end()) {
    return InvalidArgument("free of pointer not allocated on this device");
  }
  memory_used_ -= it->second.size;
  allocations_.erase(it);
  return OkStatus();
}

std::uint64_t Device::memory_used() const {
  std::lock_guard<std::mutex> lock(machine_->mu());
  return memory_used_;
}

bool Device::owns_range(const void* ptr, std::uint64_t len) const {
  // Caller may or may not hold the machine lock; this private-ish helper is
  // also part of the public API for tests, so take the lock via a
  // const_cast-free path: the map is only mutated under the lock, and this
  // method is called from locked contexts internally. For external callers
  // we lock here; recursive use is avoided internally by calling the
  // unlocked lookup directly.
  auto addr = reinterpret_cast<std::uintptr_t>(ptr);
  auto it = allocations_.upper_bound(addr);
  if (it == allocations_.begin()) return false;
  --it;
  return addr >= it->first && addr + len <= it->first + it->second.size;
}

StreamId Device::create_stream() {
  std::lock_guard<std::mutex> lock(machine_->mu());
  stream_last_.push_back(des::TaskId{});
  return static_cast<StreamId>(stream_last_.size() - 1);
}

std::size_t Device::stream_count() const {
  std::lock_guard<std::mutex> lock(machine_->mu());
  return stream_last_.size();
}

des::EngineId Device::engine_for(EngineKind kind) const {
  if (!overlap_) return compute_engine_;  // ablation: serialize everything
  switch (kind) {
    case EngineKind::kCompute: return compute_engine_;
    case EngineKind::kH2D: return h2d_engine_;
    case EngineKind::kD2H: return d2h_engine_;
  }
  return compute_engine_;
}

OpHandle Device::record_locked(StreamId stream, EngineKind kind,
                               double duration) {
  des::TaskId prev = stream_last_[stream];
  const char* label = kind == EngineKind::kCompute ? "kernel"
                      : kind == EngineKind::kH2D   ? "h2d"
                                                   : "d2h";
  des::TaskId deps[1] = {prev};
  des::TaskId task = machine_->tl().submit(
      engine_for(kind), duration,
      std::span<const des::TaskId>(deps, prev.valid() ? 1 : 0), label);
  stream_last_[stream] = task;
  return OpHandle{task};
}

Result<OpHandle> Device::memcpy_impl(void* dst, const void* src,
                                     std::uint64_t bytes, StreamId stream,
                                     CopyDir dir, HostMem host_mem) {
  std::lock_guard<std::mutex> lock(machine_->mu());
  if (stream >= stream_last_.size()) return InvalidArgument("unknown stream id");
  if (bytes == 0) return InvalidArgument("zero-byte memcpy");

  switch (dir) {
    case CopyDir::kHostToDevice:
      if (!owns_range(dst, bytes)) {
        return OutOfRange("h2d destination outside device allocations");
      }
      if (owns_range(src, bytes)) {
        return InvalidArgument("h2d source is device memory");
      }
      counters_.h2d_copies += 1;
      counters_.h2d_bytes += bytes;
      break;
    case CopyDir::kDeviceToHost:
      if (!owns_range(src, bytes)) {
        return OutOfRange("d2h source outside device allocations");
      }
      if (owns_range(dst, bytes)) {
        return InvalidArgument("d2h destination is device memory");
      }
      counters_.d2h_copies += 1;
      counters_.d2h_bytes += bytes;
      break;
    case CopyDir::kDeviceToDevice:
      if (!owns_range(src, bytes) || !owns_range(dst, bytes)) {
        return OutOfRange("d2d range outside device allocations");
      }
      break;
  }

  const FaultSite site = dir == CopyDir::kHostToDevice ? FaultSite::kH2D
                         : dir == CopyDir::kDeviceToHost ? FaultSite::kD2H
                                                         : FaultSite::kLaunch;
  if (Status s = fault_check_locked(site); !s.ok()) return s;

  // Functional execution happens immediately; virtual timing is modeled.
  std::memmove(dst, src, bytes);

  double duration = copy_duration_seconds(spec_, dir, host_mem, bytes);
  EngineKind kind = dir == CopyDir::kHostToDevice ? EngineKind::kH2D
                    : dir == CopyDir::kDeviceToHost ? EngineKind::kD2H
                                                    : EngineKind::kCompute;
  return record_locked(stream, kind, duration);
}

Result<OpHandle> Device::memcpy_h2d(void* dst, const void* src,
                                    std::uint64_t bytes, StreamId stream,
                                    HostMem host_mem) {
  return memcpy_impl(dst, src, bytes, stream, CopyDir::kHostToDevice, host_mem);
}

Result<OpHandle> Device::memcpy_d2h(void* dst, const void* src,
                                    std::uint64_t bytes, StreamId stream,
                                    HostMem host_mem) {
  return memcpy_impl(dst, src, bytes, stream, CopyDir::kDeviceToHost, host_mem);
}

Result<OpHandle> Device::memcpy_d2d(void* dst, const void* src,
                                    std::uint64_t bytes, StreamId stream) {
  return memcpy_impl(dst, src, bytes, stream, CopyDir::kDeviceToDevice,
                     HostMem::kPinned);
}

Result<OpHandle> Device::memset(void* dst, int value, std::uint64_t bytes,
                                StreamId stream) {
  std::lock_guard<std::mutex> lock(machine_->mu());
  if (stream >= stream_last_.size()) return InvalidArgument("unknown stream id");
  if (bytes == 0) return InvalidArgument("zero-byte memset");
  if (!owns_range(dst, bytes)) {
    return OutOfRange("memset range outside device allocations");
  }
  if (Status s = fault_check_locked(FaultSite::kLaunch); !s.ok()) return s;
  std::memset(dst, value, bytes);
  // On-device fill at ~memory bandwidth (same model as d2d copies).
  double duration = copy_duration_seconds(spec_, CopyDir::kDeviceToDevice,
                                          HostMem::kPinned, bytes);
  return record_locked(stream, EngineKind::kCompute, duration);
}

Status Device::validate_launch(const Dim3& grid, const Dim3& block,
                               const KernelAttributes& attrs) const {
  if (grid.count() == 0 || block.count() == 0) {
    return InvalidArgument("empty grid or block");
  }
  if (block.count() > 1024) {
    return InvalidArgument("block exceeds 1024 threads");
  }
  if (occupancy_warps_per_sm(spec_, attrs, block) == 0) {
    return InvalidArgument(
        "kernel resource demand (registers/shared memory) exceeds SM capacity");
  }
  return OkStatus();
}

Status Device::wait_event(StreamId stream, OpHandle event) {
  std::lock_guard<std::mutex> lock(machine_->mu());
  if (stream >= stream_last_.size()) return InvalidArgument("unknown stream id");
  if (!event.valid()) return InvalidArgument("wait on unrecorded event");
  des::TaskId deps[2] = {stream_last_[stream], event.task};
  std::size_t n = stream_last_[stream].valid() ? 2 : 1;
  stream_last_[stream] =
      machine_->tl().join(std::span<const des::TaskId>(
          n == 2 ? deps : deps + 1, n));
  return OkStatus();
}

Result<double> Device::sync_stream(StreamId stream) {
  std::lock_guard<std::mutex> lock(machine_->mu());
  if (stream >= stream_last_.size()) return InvalidArgument("unknown stream id");
  des::TaskId last = stream_last_[stream];
  return last.valid() ? machine_->tl().finish_time(last) : 0.0;
}

double Device::sync_all() {
  std::lock_guard<std::mutex> lock(machine_->mu());
  double t = 0;
  for (des::TaskId last : stream_last_) {
    if (last.valid()) t = std::max(t, machine_->tl().finish_time(last));
  }
  return t;
}

Result<OpHandle> Device::stream_last(StreamId stream) {
  std::lock_guard<std::mutex> lock(machine_->mu());
  if (stream >= stream_last_.size()) return InvalidArgument("unknown stream id");
  return OpHandle{stream_last_[stream]};
}

double Device::compute_busy_seconds() const {
  std::lock_guard<std::mutex> lock(machine_->mu());
  return machine_->tl().engine_stats(compute_engine_).busy;
}

DeviceCounters Device::counters() const {
  std::lock_guard<std::mutex> lock(machine_->mu());
  return counters_;
}

// ---- fault injection -------------------------------------------------------

void Device::set_fault_plan(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(machine_->mu());
  fault_plan_ = std::move(plan);
  lost_ = fault_plan_->device_lost();
}

void Device::clear_fault_plan() {
  std::lock_guard<std::mutex> lock(machine_->mu());
  fault_plan_.reset();
  lost_ = false;
}

bool Device::lost() const {
  std::lock_guard<std::mutex> lock(machine_->mu());
  return lost_;
}

void Device::mark_lost() {
  std::lock_guard<std::mutex> lock(machine_->mu());
  lost_ = true;
}

FaultTelemetry Device::fault_telemetry() const {
  std::lock_guard<std::mutex> lock(machine_->mu());
  return fault_plan_ ? fault_plan_->telemetry() : FaultTelemetry{};
}

Status Device::fault_check_locked(FaultSite site) {
  if (lost_) {
    return Unavailable("device " + std::to_string(index_) + " lost");
  }
  if (!fault_plan_) return OkStatus();
  Status s = fault_plan_->on_op(site);
  if (!s.ok() && s.code() == ErrorCode::kUnavailable) lost_ = true;
  return s;
}

int pick_surviving_device(Machine& machine, int hint) {
  const int n = machine.device_count();
  if (n <= 0) return -1;
  const int start = ((hint % n) + n) % n;
  for (int k = 0; k < n; ++k) {
    const int d = (start + k) % n;
    if (!machine.device(d).lost()) return d;
  }
  return -1;
}

// ---- Machine ---------------------------------------------------------------

Machine::Machine(const std::vector<DeviceSpec>& specs) {
  devices_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    devices_.push_back(std::make_unique<Device>(
        this, static_cast<std::uint32_t>(i), specs[i]));
  }
}

Machine::Machine(const std::vector<DeviceSpec>& specs, des::Timeline* timeline,
                 std::mutex* mutex, std::string engine_prefix)
    : mutex_ptr_(mutex), timeline_ptr_(timeline),
      engine_prefix_(std::move(engine_prefix)) {
  assert(timeline != nullptr && mutex != nullptr);
  devices_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    devices_.push_back(std::make_unique<Device>(
        this, static_cast<std::uint32_t>(i), specs[i]));
  }
}

des::EngineId Machine::add_host_engine(std::string name) {
  std::lock_guard<std::mutex> lock(mu());
  return tl().add_engine(engine_prefix_ + std::move(name));
}

des::TaskId Machine::host_task(des::EngineId engine, double duration,
                               std::span<const des::TaskId> deps) {
  std::lock_guard<std::mutex> lock(mu());
  return tl().submit(engine, duration, deps);
}

des::TaskId Machine::join(std::span<const des::TaskId> deps) {
  std::lock_guard<std::mutex> lock(mu());
  return tl().join(deps);
}

double Machine::makespan() const {
  std::lock_guard<std::mutex> lock(mu());
  return tl().makespan();
}

double Machine::finish_time(des::TaskId id) const {
  std::lock_guard<std::mutex> lock(mu());
  return tl().finish_time(id);
}

std::size_t Machine::op_count() const {
  std::lock_guard<std::mutex> lock(mu());
  return tl().task_count();
}

double Machine::engine_busy(des::EngineId id) const {
  std::lock_guard<std::mutex> lock(mu());
  return tl().engine_stats(id).busy;
}

void Machine::set_trace_recording(bool enabled) {
  std::lock_guard<std::mutex> lock(mu());
  tl().set_recording(enabled);
}

Status Machine::dump_chrome_trace(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu());
  return des::write_chrome_trace(tl(), path);
}

}  // namespace hs::gpusim
