// Simulated GPU hardware description.
//
// Defaults model the paper's NVIDIA Titan XP (compute capability 6.1):
// 30 SMs x 2048 resident threads = 61,440 resident threads device-wide,
// 64k registers and 96 KB shared memory per SM, 12 GB device memory,
// PCIe 3.0 x16 transfers. The timing constants (issue rate, launch latency,
// bandwidths) are calibration parameters, documented in DESIGN.md §2: we
// reproduce the paper's *shape* (ratios, crossovers), not its absolute
// seconds.
#pragma once

#include <cstdint>
#include <string>

namespace hs::gpusim {

/// CUDA-style 3-component extent, used for grids and blocks.
struct Dim3 {
  std::uint32_t x = 1;
  std::uint32_t y = 1;
  std::uint32_t z = 1;

  [[nodiscard]] std::uint64_t count() const {
    return static_cast<std::uint64_t>(x) * y * z;
  }
  friend bool operator==(const Dim3&, const Dim3&) = default;
};

/// Static per-kernel resource usage, the inputs to the occupancy
/// calculation the paper walks through ("the kernel uses only 18 registers,
/// thus it is not a limiting factor").
struct KernelAttributes {
  std::uint32_t registers_per_thread = 18;
  std::uint64_t shared_mem_per_block = 0;
};

/// Full device description: geometry + timing calibration.
struct DeviceSpec {
  std::string name = "SimTitanXP";

  // --- geometry (straight from the paper / CC 6.1 data sheet) ---
  std::uint32_t sm_count = 30;
  std::uint32_t warp_size = 32;
  std::uint32_t max_threads_per_sm = 2048;
  std::uint32_t max_warps_per_sm = 64;
  std::uint32_t registers_per_sm = 65536;
  std::uint64_t shared_mem_per_sm = 96 * 1024;
  std::uint64_t memory_bytes = 12ull * 1024 * 1024 * 1024;

  // --- timing calibration ---
  /// Seconds for one SM to issue one warp-serial cost unit (e.g. one
  /// Mandelbrot inner-loop iteration for a 32-lane warp).
  double seconds_per_warp_cost_unit = 2.0e-9;
  /// Fixed per-warp scheduling cost, in cost units.
  double warp_fixed_cost_units = 16.0;
  /// Host-side + driver latency of one kernel launch, seconds.
  double kernel_launch_latency = 12.0e-6;
  /// Fixed latency of one DMA transfer, seconds.
  double copy_latency = 8.0e-6;
  /// PCIe-like bandwidths, bytes/second.
  double h2d_bandwidth = 11.0e9;
  double d2h_bandwidth = 11.0e9;
  /// Bandwidth multiplier when the host buffer is pageable (not pinned):
  /// the driver stages through an internal pinned buffer.
  double pageable_bandwidth_factor = 0.55;
  /// Warps an SM must have resident to fully hide pipeline/memory latency;
  /// fewer resident warps stall the SM proportionally. Fractional values
  /// are allowed (this is a calibration parameter).
  double latency_hiding_warps = 4.0;

  /// Factory for the paper's GPU.
  static DeviceSpec TitanXP() { return DeviceSpec{}; }

  /// A deliberately small device for tests (2 SMs, tiny memory) so tests can
  /// trigger occupancy limits and OOM cheaply.
  static DeviceSpec TestTiny() {
    DeviceSpec s;
    s.name = "SimTiny";
    s.sm_count = 2;
    s.max_threads_per_sm = 128;
    s.max_warps_per_sm = 4;
    s.registers_per_sm = 4096;
    s.shared_mem_per_sm = 4 * 1024;
    s.memory_bytes = 1 * 1024 * 1024;
    return s;
  }
};

/// Direction of a host<->device transfer.
enum class CopyDir : std::uint8_t { kHostToDevice, kDeviceToHost, kDeviceToDevice };

/// Whether the *host* side of a transfer is page-locked. Device-to-device
/// copies ignore this.
enum class HostMem : std::uint8_t { kPageable, kPinned };

}  // namespace hs::gpusim
