// Bounded lock-free single-producer/single-consumer queue — the building
// block of the flow runtime, mirroring FastFlow's core design ("built on top
// of efficient fine grain lock-free communication queues", paper §III-A).
//
// Classic Lamport ring buffer with C++11 atomics plus cached counterpart
// indices (the producer caches the consumer index and vice versa) so the
// common case touches a single cache line. Capacity is rounded up to a
// power of two.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <limits>
#include <memory>
#include <new>
#include <utility>

namespace hs::flow {

template <typename T>
class SpscQueue {
 public:
  /// Largest capacity this queue supports: the biggest power of two that
  /// fits in std::size_t. Requests beyond it would make the round-up loop
  /// below wrap `cap` to 0 and spin forever, so they are clamped (and
  /// rejected by the assert in debug builds).
  static constexpr std::size_t kMaxCapacity =
      (std::numeric_limits<std::size_t>::max() >> 1) + 1;

  /// Rounds `capacity` up to a power of two in [2, kMaxCapacity]. Exposed as
  /// a static helper so the overflow boundary is unit-testable without
  /// allocating a multi-exabyte slot array.
  static constexpr std::size_t rounded_capacity(std::size_t capacity) {
    if (capacity > kMaxCapacity) return kMaxCapacity;
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    return cap;
  }

  /// `capacity` is the number of elements the queue can hold; rounded up to
  /// a power of two (minimum 2, clamped at kMaxCapacity).
  explicit SpscQueue(std::size_t capacity) {
    assert(capacity <= kMaxCapacity && "SpscQueue capacity overflows size_t");
    const std::size_t cap = rounded_capacity(capacity);
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  ~SpscQueue() {
    // Destroy any elements still enqueued.
    std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t tail = tail_.load(std::memory_order_relaxed);
    while (head != tail) {
      slot(head).destroy();
      ++head;
    }
  }

  /// Producer side. Returns false when full.
  bool try_push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    slot(tail).construct(std::move(value));
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  bool try_push(const T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    slot(tail).construct(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer-side batch push: enqueues up to `count` items from `values`
  /// (moved out in order) under a single release store, amortizing the
  /// acquire/release round-trip. Returns how many were enqueued (0 when
  /// full; may be < count when nearly full — the first `n` items are gone
  /// from `values`, the rest untouched).
  std::size_t try_push_n(T* values, std::size_t count) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t space = mask_ + 1 - (tail - head_cache_);
    if (space < count) {
      head_cache_ = head_.load(std::memory_order_acquire);
      space = mask_ + 1 - (tail - head_cache_);
    }
    const std::size_t n = std::min(space, count);
    for (std::size_t i = 0; i < n; ++i) {
      slot(tail + i).construct(std::move(values[i]));
    }
    if (n > 0) tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Consumer side. Returns false when empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    Slot& s = slot(head);
    out = std::move(s.ref());
    s.destroy();
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side batch pop: dequeues up to `max_count` items into `out`
  /// under a single release store. Returns how many were dequeued.
  std::size_t try_pop_n(T* out, std::size_t max_count) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = tail_cache_ - head;
    if (avail < max_count) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = tail_cache_ - head;
    }
    const std::size_t n = std::min(avail, max_count);
    for (std::size_t i = 0; i < n; ++i) {
      Slot& s = slot(head + i);
      out[i] = std::move(s.ref());
      s.destroy();
    }
    if (n > 0) head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Consumer-side peek without removal (used by the ordered collector).
  bool try_peek(T*& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = &slot(head).ref();
    return true;
  }

  /// Approximate size; exact only when both sides are quiescent.
  ///
  /// Load order matters: `head_` must be read before `tail_`. The consumer
  /// only advances `head_` up to the `tail_` it has observed, so a head read
  /// that precedes the tail read can never exceed it (tail is monotone).
  /// Reading tail first allowed a concurrent pop to advance head past the
  /// stale tail, underflowing `tail - head` to a near-2^64 "depth" that
  /// QueueDepthSampler then recorded. The result is additionally clamped to
  /// capacity(): a push racing between the two loads can make the raw
  /// difference transiently exceed the ring size.
  [[nodiscard]] std::size_t size_approx() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return std::min(tail - head, mask_ + 1);
  }

  [[nodiscard]] bool empty_approx() const { return size_approx() == 0; }
  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];
    void construct(T&& v) { ::new (static_cast<void*>(storage)) T(std::move(v)); }
    void construct(const T& v) { ::new (static_cast<void*>(storage)) T(v); }
    T& ref() { return *std::launder(reinterpret_cast<T*>(storage)); }
    void destroy() { ref().~T(); }
  };

  Slot& slot(std::size_t i) { return slots_[i & mask_]; }

  static constexpr std::size_t kCacheLine = 64;

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;

  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  // consumer index
  alignas(kCacheLine) std::size_t tail_cache_ = 0;        // consumer-owned
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  // producer index
  alignas(kCacheLine) std::size_t head_cache_ = 0;        // producer-owned
};

}  // namespace hs::flow
