#include "flow/pipeline.hpp"

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <variant>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/backoff.hpp"
#include "flow/spsc_queue.hpp"
#include "telemetry/queue_sampler.hpp"
#include "telemetry/span_recorder.hpp"

namespace hs::flow {

std::string FailureReport::ToString() const {
  std::string out;
  for (const StageFailure& f : failures) {
    if (!out.empty()) out += "; ";
    out += f.stage + ": " + f.status.ToString();
  }
  return out;
}

namespace {

/// Internal transport: items plus control markers.
enum class EnvKind : std::uint8_t {
  kItem,
  kHole,  ///< ordered-farm worker consumed an input without output
  kEos,
};

struct Envelope {
  EnvKind kind = EnvKind::kEos;
  std::uint64_t seq = 0;
  Item item;
};

/// Best-effort affinity: pins `thread` to `cpu`. Returns true only when the
/// kernel accepted the mask; platforms without pthread affinity always
/// return false, leaving the thread free-running.
bool pin_thread_to_cpu(std::thread& thread, int cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set) ==
         0;
#else
  (void)thread;
  (void)cpu;
  return false;
#endif
}

/// Shared run state: abort flag, per-stage failures, and a progress counter
/// the watchdog monitors (bumped on every queue transfer and completed svc).
struct RunState {
  std::atomic<bool> abort{false};
  std::atomic<std::uint64_t> progress{0};
  std::mutex mu;
  std::vector<StageFailure> failures;

  void fail(std::string stage, Status s) {
    {
      std::lock_guard<std::mutex> lock(mu);
      failures.push_back(StageFailure{std::move(stage), std::move(s)});
    }
    abort.store(true, std::memory_order_release);
  }
  [[nodiscard]] bool aborted() const {
    return abort.load(std::memory_order_acquire);
  }
  void tick() { progress.fetch_add(1, std::memory_order_relaxed); }
};

/// An SPSC queue with blocking push/pop honoring the wait mode and abort.
/// In kBlocking mode, waiters park on a condition variable and the
/// counterpart side notifies after every operation (a bounded wait guards
/// against the classic lost-wakeup race without a lock on the fast path).
class Channel {
 public:
  Channel(std::size_t capacity, WaitMode mode, RunState* state,
          telemetry::Counter* full_counter)
      : queue_(capacity),
        mode_(mode),
        state_(state),
        full_counter_(full_counter) {}

  /// Blocks until pushed; returns false only when the run aborted.
  bool push(Envelope&& env) {
    Backoff backoff;
    bool counted_full = false;
    while (!queue_.try_push(std::move(env))) {
      if (!counted_full) {
        // One tick per push that found the queue full, not per retry
        // iteration — a spinning producer would otherwise dominate the
        // counter with meaningless retry counts.
        counted_full = true;
        if (full_counter_ != nullptr) full_counter_->add(1);
      }
      if (state_->aborted()) return false;
      wait_not_full(backoff);
    }
    state_->tick();
    if (mode_ == WaitMode::kBlocking) cv_not_empty_.notify_one();
    return true;
  }

  /// Instantaneous depth/capacity for the telemetry queue sampler.
  [[nodiscard]] std::size_t depth() const { return queue_.size_approx(); }
  [[nodiscard]] std::size_t queue_capacity() const {
    return queue_.capacity();
  }

  /// Blocks until popped; returns false only when the run aborted *and*
  /// the queue is empty (drain-before-abort keeps teardown deterministic
  /// for upstream EOS envelopes already queued).
  bool pop(Envelope& out) {
    Backoff backoff;
    while (!queue_.try_pop(out)) {
      if (state_->aborted()) return false;
      wait_not_empty(backoff);
    }
    state_->tick();
    if (mode_ == WaitMode::kBlocking) cv_not_full_.notify_one();
    return true;
  }

  bool try_pop(Envelope& out) {
    bool ok = queue_.try_pop(out);
    if (ok) {
      state_->tick();
      if (mode_ == WaitMode::kBlocking) cv_not_full_.notify_one();
    }
    return ok;
  }

  /// Blocks until at least one envelope arrives, then drains up to `max`
  /// under a single acquire/release round-trip (FastFlow-style burst
  /// transfer). Returns 0 only when the run aborted with the queue empty.
  std::size_t pop_burst(Envelope* out, std::size_t max) {
    Backoff backoff;
    std::size_t n;
    while ((n = queue_.try_pop_n(out, max)) == 0) {
      if (state_->aborted()) return 0;
      wait_not_empty(backoff);
    }
    state_->tick();
    if (mode_ == WaitMode::kBlocking) cv_not_full_.notify_one();
    return n;
  }
  [[nodiscard]] bool has_space() const {
    return queue_.size_approx() < queue_.capacity();
  }

 private:
  void wait_not_empty(Backoff& backoff) {
    if (mode_ == WaitMode::kBlocking) {
      std::unique_lock<std::mutex> lock(cv_mu_);
      cv_not_empty_.wait_for(lock, std::chrono::milliseconds(1));
      return;
    }
    wait(backoff);
  }
  void wait_not_full(Backoff& backoff) {
    if (mode_ == WaitMode::kBlocking) {
      std::unique_lock<std::mutex> lock(cv_mu_);
      cv_not_full_.wait_for(lock, std::chrono::milliseconds(1));
      return;
    }
    wait(backoff);
  }
  void wait(Backoff& backoff) {
    if (mode_ == WaitMode::kSpin) {
      cpu_relax();
    } else {
      backoff.pause();
    }
  }

  SpscQueue<Envelope> queue_;
  WaitMode mode_;
  RunState* state_;
  telemetry::Counter* full_counter_;
  std::mutex cv_mu_;
  std::condition_variable cv_not_empty_;
  std::condition_variable cv_not_full_;
};

using Clock = std::chrono::steady_clock;

/// Base of all runtime threads.
class Unit {
 public:
  Unit(std::string name, RunState* state, bool collect_stats)
      : name_(std::move(name)), state_(state), collect_stats_(collect_stats) {}
  virtual ~Unit() = default;

  /// Point this unit at telemetry sinks (called once at graph build, before
  /// the thread launches). `span_name` must be interned/static.
  void attach_telemetry(telemetry::Histogram* svc_hist,
                        telemetry::Counter* items,
                        telemetry::SpanRecorder* spans,
                        const char* span_name) {
    svc_hist_ = svc_hist;
    items_counter_ = items;
    spans_ = spans;
    span_name_ = span_name;
  }

  void operator()() {
    if (spans_ != nullptr) spans_->set_thread_name(name_);
    try {
      run();
    } catch (const std::exception& e) {
      state_->fail(name_, Internal(name_ + ": " + e.what()));
      propagate_eos_on_abort();
    } catch (...) {
      state_->fail(name_, Internal(name_ + ": unknown exception"));
      propagate_eos_on_abort();
    }
    done_.store(true, std::memory_order_release);
  }

  virtual void run() = 0;
  /// Best effort: after a failure, push EOS downstream so peers unwind.
  virtual void propagate_eos_on_abort() {}

  [[nodiscard]] UnitReport report() const {
    return {name_, stats_, pinned_cpu_};
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  /// Affinity bookkeeping, written once at launch before the thread runs.
  void set_pinned_cpu(int cpu) { pinned_cpu_ = cpu; }
  [[nodiscard]] int pinned_cpu() const { return pinned_cpu_; }
  /// True once the unit's thread function returned (reports are safe to
  /// read; the thread is joinable without blocking).
  [[nodiscard]] bool done() const {
    return done_.load(std::memory_order_acquire);
  }
  /// True while user code (svc) is on this unit's stack — the watchdog's
  /// culprit heuristic.
  [[nodiscard]] bool in_user_code() const {
    return in_svc_.load(std::memory_order_acquire);
  }

 protected:
  /// Runs one svc call with the in-user-code flag raised and a progress
  /// tick on completion (so a pipeline whose queues are idle but whose
  /// stages still finish work is not flagged as stalled). When stats or
  /// telemetry are attached the call is timed once and the two clock reads
  /// feed busy_seconds, the service-time histogram, and the span together.
  template <typename F>
  SvcResult guarded_svc(F&& f) {
    in_svc_.store(true, std::memory_order_release);
    SvcResult r;
    if (collect_stats_ || svc_hist_ != nullptr || spans_ != nullptr) {
      const auto t0 = Clock::now();
      r = f();
      const auto t1 = Clock::now();
      if (collect_stats_) {
        stats_.busy_seconds += std::chrono::duration<double>(t1 - t0).count();
      }
      if (svc_hist_ != nullptr) {
        svc_hist_->record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
      }
      if (spans_ != nullptr) {
        spans_->record(span_name_, spans_->to_ns(t0), spans_->to_ns(t1));
      }
    } else {
      r = f();
    }
    in_svc_.store(false, std::memory_order_release);
    state_->tick();
    return r;
  }

  /// Bumps the per-stage item counter alongside the NodeStats item count.
  void count_item() {
    if (items_counter_ != nullptr) items_counter_->add(1);
  }

  std::string name_;
  RunState* state_;
  bool collect_stats_;
  NodeStats stats_;
  telemetry::Histogram* svc_hist_ = nullptr;
  telemetry::Counter* items_counter_ = nullptr;
  telemetry::SpanRecorder* spans_ = nullptr;
  const char* span_name_ = "";
  std::atomic<bool> done_{false};
  std::atomic<bool> in_svc_{false};
  int pinned_cpu_ = -1;
};

/// Routes items from a node to one or more downstream channels, stamping
/// sequence numbers. Implements the Node's emit() port.
class Router final : public OutPort {
 public:
  Router(std::vector<Channel*> outs, SchedPolicy policy,
         const FarmController* controller = nullptr)
      : outs_(std::move(outs)), policy_(policy), controller_(controller) {}

  /// Downstream channels currently eligible for items. With an attached
  /// FarmController only the first `active` workers are fed; EOS broadcast
  /// still reaches every channel so parked replicas terminate.
  [[nodiscard]] std::size_t active_outs() const {
    if (controller_ == nullptr) return outs_.size();
    const int a = controller_->active();
    if (a < 1) return 1;
    return std::min(outs_.size(), static_cast<std::size_t>(a));
  }

  /// Routes an item envelope with an explicit sequence number.
  bool route(Envelope&& env) {
    if (outs_.empty()) return true;  // sink: outputs are dropped
    const std::size_t n = active_outs();
    if (n == 1) return outs_[0]->push(std::move(env));
    if (policy_ == SchedPolicy::kLeastLoaded) {
      // Route to the shallowest queue (ties to the lowest index). Unlike
      // on-demand's first-with-space probe, a worker sitting on a deep
      // queue is never fed while an emptier sibling exists, so one slow
      // worker cannot capture the stream at the emitter.
      std::size_t best = 0;
      std::size_t best_depth = outs_[0]->depth();
      for (std::size_t i = 1; i < n; ++i) {
        const std::size_t di = outs_[i]->depth();
        if (di < best_depth) {
          best = i;
          best_depth = di;
        }
      }
      return outs_[best]->push(std::move(env));
    }
    if (policy_ == SchedPolicy::kOnDemand) {
      // Rotate from the cursor looking for space; fall back to a blocking
      // push on the cursor's channel so we never spin on a full farm.
      for (std::size_t probe = 0; probe < n; ++probe) {
        std::size_t i = (next_ + probe) % n;
        if (outs_[i]->has_space()) {
          next_ = i + 1;
          return outs_[i]->push(std::move(env));
        }
      }
    }
    std::size_t i = next_ % n;
    ++next_;
    return outs_[i]->push(std::move(env));
  }

  /// OutPort: emit() from inside svc. Stamps the router's current sequence.
  bool send(Item item) override {
    Envelope env;
    env.kind = EnvKind::kItem;
    env.seq = seq_++;
    env.item = std::move(item);
    return route(std::move(env));
  }

  bool broadcast_eos() {
    bool ok = true;
    for (Channel* c : outs_) {
      Envelope env;
      env.kind = EnvKind::kEos;
      ok = c->push(std::move(env)) && ok;
    }
    return ok;
  }

  [[nodiscard]] std::uint64_t next_seq() const { return seq_; }
  std::uint64_t take_seq() { return seq_++; }
  void set_seq(std::uint64_t s) { seq_ = s; }

 private:
  std::vector<Channel*> outs_;
  SchedPolicy policy_;
  const FarmController* controller_;
  std::size_t next_ = 0;
  std::uint64_t seq_ = 0;
};

/// First pipeline stage: repeatedly calls svc(empty) until Eos.
class SourceUnit final : public Unit {
 public:
  SourceUnit(std::string name, RunState* state, bool collect_stats, Node* node,
             Router router)
      : Unit(std::move(name), state, collect_stats),
        node_(node),
        router_(std::move(router)) {}

  void run() override {
    NodeAccess::bind(*node_, &router_, /*emit_allowed=*/true);
    node_->on_init(0);
    while (!state_->aborted()) {
      SvcResult r = guarded_svc([&] { return node_->svc(Item{}); });
      if (r.kind == SvcResult::Kind::kEos) break;
      if (r.kind == SvcResult::Kind::kItem) {
        ++stats_.items_out;
        count_item();
        Envelope env;
        env.kind = EnvKind::kItem;
        env.seq = router_.take_seq();
        env.item = std::move(r.item);
        if (!router_.route(std::move(env))) break;
      }
    }
    node_->on_end();
    router_.broadcast_eos();
    NodeAccess::unbind(*node_);
  }

  void propagate_eos_on_abort() override { router_.broadcast_eos(); }

 private:
  Node* node_;
  Router router_;
};

/// Middle/sink stage (also farm workers): one input channel, svc per item.
class StageUnit final : public Unit {
 public:
  StageUnit(std::string name, RunState* state, bool collect_stats, Node* node,
            Channel* in, Router router, bool propagate_seq, int replica_id,
            bool is_sink = false)
      : Unit(std::move(name), state, collect_stats),
        node_(node),
        in_(in),
        router_(std::move(router)),
        propagate_seq_(propagate_seq),
        replica_id_(replica_id),
        is_sink_(is_sink) {}

  /// Counter for deadline-expired items this stage skipped (may be null).
  void set_deadline_counter(telemetry::Counter* counter) {
    deadline_counter_ = counter;
  }

  void run() override {
    NodeAccess::bind(*node_, &router_, /*emit_allowed=*/!propagate_seq_);
    node_->on_init(replica_id_);
    // Burst transfer: drain up to kBurst envelopes per queue round-trip.
    // EOS is always the producer's final envelope on this SPSC channel, so
    // nothing can follow it inside a burst; items buffered when svc returns
    // EOS are destroyed exactly as they would be if left unconsumed in the
    // queue.
    constexpr std::size_t kBurst = 8;
    Envelope burst[kBurst];
    bool running = true;
    std::size_t n;
    while (running && (n = in_->pop_burst(burst, kBurst)) > 0) {
      for (std::size_t i = 0; i < n && running; ++i) {
        Envelope& env = burst[i];
        if (env.kind == EnvKind::kEos) {
          running = false;
          break;
        }
        if (env.kind == EnvKind::kHole) continue;  // holes die at collectors
        ++stats_.items_in;
        count_item();
        std::uint64_t seq = env.seq;
        // Deadline budget: an expired item is not serviced by a non-sink
        // stage — it is forwarded unchanged (sequence preserved) so the
        // sink can complete its ticket as a miss, and counted once, by the
        // first stage that saw the deadline pass. Items without a deadline
        // (deadline_ns == 0, every pre-serve caller) cost one branch.
        if (env.item.deadline_ns() != 0 && !is_sink_) {
          if (!env.item.deadline_expired() &&
              deadline_clock_now() > env.item.deadline_ns()) {
            env.item.mark_deadline_expired();
            ++stats_.deadline_drops;
            if (deadline_counter_ != nullptr) deadline_counter_->add(1);
          }
          if (env.item.deadline_expired()) {
            Envelope fwd;
            fwd.kind = EnvKind::kItem;
            fwd.seq = propagate_seq_ ? seq : router_.take_seq();
            fwd.item = std::move(env.item);
            if (!router_.route(std::move(fwd))) running = false;
            continue;
          }
        }
        SvcResult r =
            guarded_svc([&] { return node_->svc(std::move(env.item)); });
        if (r.kind == SvcResult::Kind::kEos) {
          running = false;
          break;
        }
        Envelope out;
        out.seq = propagate_seq_ ? seq : router_.take_seq();
        if (r.kind == SvcResult::Kind::kItem) {
          ++stats_.items_out;
          out.kind = EnvKind::kItem;
          out.item = std::move(r.item);
          if (!router_.route(std::move(out))) running = false;
        } else if (propagate_seq_) {
          // Ordered farm: the collector must learn this sequence was
          // dropped.
          out.kind = EnvKind::kHole;
          if (!router_.route(std::move(out))) running = false;
        }
      }
    }
    node_->on_end();
    router_.broadcast_eos();
    NodeAccess::unbind(*node_);
  }

  void propagate_eos_on_abort() override { router_.broadcast_eos(); }

 private:
  Node* node_;
  Channel* in_;
  Router router_;
  bool propagate_seq_;
  int replica_id_;
  bool is_sink_;
  telemetry::Counter* deadline_counter_ = nullptr;
};

/// Farm front-end: stamps sequence numbers and schedules items to workers.
class EmitterUnit final : public Unit {
 public:
  EmitterUnit(std::string name, RunState* state, Channel* in, Router router)
      : Unit(std::move(name), state, false),
        in_(in),
        router_(std::move(router)) {}

  void run() override {
    constexpr std::size_t kBurst = 8;
    Envelope burst[kBurst];
    bool running = true;
    std::size_t n;
    while (running && (n = in_->pop_burst(burst, kBurst)) > 0) {
      for (std::size_t i = 0; i < n && running; ++i) {
        Envelope& env = burst[i];
        if (env.kind == EnvKind::kEos) {
          running = false;
          break;
        }
        ++stats_.items_in;
        env.seq = router_.take_seq();  // restamp in arrival order
        if (!router_.route(std::move(env))) running = false;
      }
    }
    router_.broadcast_eos();
  }

  void propagate_eos_on_abort() override { router_.broadcast_eos(); }

 private:
  Channel* in_;
  Router router_;
};

/// Farm back-end: merges worker outputs, optionally restoring order.
class CollectorUnit final : public Unit {
 public:
  CollectorUnit(std::string name, RunState* state,
                std::vector<Channel*> ins, Router router, bool ordered)
      : Unit(std::move(name), state, false),
        ins_(std::move(ins)),
        router_(std::move(router)),
        ordered_(ordered) {}

  void run() override {
    std::size_t eos_seen = 0;
    std::size_t cursor = 0;
    Backoff backoff;
    while (eos_seen < ins_.size()) {
      Envelope env;
      bool got = false;
      for (std::size_t probe = 0; probe < ins_.size(); ++probe) {
        std::size_t i = (cursor + probe) % ins_.size();
        if (ins_[i]->try_pop(env)) {
          cursor = i + 1;
          got = true;
          break;
        }
      }
      if (!got) {
        // Drained every input: on abort the missing EOS sentinels will
        // never arrive (a worker may have died before broadcasting), so
        // stop merging instead of spinning forever.
        if (state_->aborted()) break;
        backoff.pause();
        continue;
      }
      backoff.reset();
      if (env.kind == EnvKind::kEos) {
        ++eos_seen;
        continue;
      }
      if (ordered_) {
        if (!deliver_ordered(std::move(env))) return;
      } else if (env.kind == EnvKind::kItem) {
        if (!forward(std::move(env.item))) return;
      }
    }
    if (ordered_) flush_pending();
    router_.broadcast_eos();
  }

  void propagate_eos_on_abort() override { router_.broadcast_eos(); }

 private:
  bool forward(Item item) {
    ++stats_.items_out;
    Envelope out;
    out.kind = EnvKind::kItem;
    out.seq = router_.take_seq();
    out.item = std::move(item);
    return router_.route(std::move(out));
  }

  bool deliver_ordered(Envelope&& env) {
    pending_.emplace(env.seq, std::move(env));
    while (!pending_.empty() && pending_.begin()->first == next_expected_) {
      Envelope e = std::move(pending_.begin()->second);
      pending_.erase(pending_.begin());
      ++next_expected_;
      if (e.kind == EnvKind::kItem && !forward(std::move(e.item))) return false;
    }
    return true;
  }

  void flush_pending() {
    // After all workers EOS'd every remaining envelope is contiguous only
    // if no sequence was lost; forward what is left in order regardless —
    // the alternative (dropping) would silently lose data on abort.
    for (auto& [seq, e] : pending_) {
      if (e.kind == EnvKind::kItem) {
        if (!forward(std::move(e.item))) return;
      }
    }
    pending_.clear();
  }

  std::vector<Channel*> ins_;
  Router router_;
  bool ordered_;
  std::uint64_t next_expected_ = 0;
  std::map<std::uint64_t, Envelope> pending_;
};

/// Graph description element.
struct PlainStage {
  std::unique_ptr<Node> node;
  std::string name;
};
struct FarmStage {
  std::function<std::unique_ptr<Node>()> factory;
  FarmOptions options;
  std::string name;
};
using StageDesc = std::variant<PlainStage, FarmStage>;

/// Everything a runtime thread touches. Shared (via shared_ptr) between the
/// Pipeline and the threads themselves so that a thread detached by the
/// watchdog can keep running against valid nodes/channels/state even after
/// run_and_wait() returned and the Pipeline was destroyed.
struct RunCore {
  PipelineOptions options;
  std::vector<std::unique_ptr<Node>> nodes;  // every node the units reference
  std::vector<std::unique_ptr<Channel>> channels;
  std::vector<std::string> channel_labels;
  std::vector<std::unique_ptr<Unit>> units;
  RunState state;

  // Telemetry sinks resolved at run start (null when not instrumented).
  telemetry::StreamInstrumentation instr;
  telemetry::Counter* queue_full_counter = nullptr;
  telemetry::Counter* watchdog_counter = nullptr;
  telemetry::Counter* deadline_counter = nullptr;
  std::vector<std::uint64_t> sampler_ids;

  // Completion signalling for run_and_wait's supervision loop.
  std::mutex comp_mu;
  std::condition_variable comp_cv;
  std::size_t done_count = 0;

  Channel* new_channel(std::string label) {
    channels.push_back(std::make_unique<Channel>(
        options.queue_capacity, options.wait_mode, &state,
        queue_full_counter));
    channel_labels.push_back(std::move(label));
    return channels.back().get();
  }

  /// Register every channel with the sampler as "<prefix>.<label>"; the
  /// depth lambdas reference channels this core owns, so they stay valid
  /// until unregister_queues() (called before run_and_wait returns).
  void register_queues() {
    if (instr.sampler == nullptr) return;
    for (std::size_t i = 0; i < channels.size(); ++i) {
      sampler_ids.push_back(instr.sampler->add_queue(
          instr.prefix + "." + channel_labels[i],
          [ch = channels[i].get()] { return ch->depth(); },
          channels[i]->queue_capacity()));
    }
  }

  void unregister_queues() {
    if (instr.sampler == nullptr) return;
    for (std::uint64_t id : sampler_ids) instr.sampler->remove_queue(id);
    sampler_ids.clear();
  }

  void signal_done() {
    {
      std::lock_guard<std::mutex> lock(comp_mu);
      ++done_count;
    }
    comp_cv.notify_all();
  }
};

}  // namespace

struct Pipeline::Impl {
  PipelineOptions options;
  std::vector<StageDesc> stages;
  std::shared_ptr<RunCore> core;
  // Threads still running when run_and_wait() returned after a watchdog
  // abort, paired with their units. The destructor reaps them.
  std::vector<std::pair<std::thread, Unit*>> stragglers;
  std::vector<UnitReport> reports;
  FailureReport failure_report;
  // Resolved at run start so the destructor's reaper can count detaches
  // without consulting the (possibly global) telemetry gate again.
  telemetry::Counter* straggler_counter = nullptr;
  bool ran = false;
};

Pipeline::Pipeline(PipelineOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
}

Pipeline::~Pipeline() {
  Impl& im = *impl_;
  if (im.stragglers.empty()) return;
  // Bounded reaper for threads that were still wedged when the watchdog
  // aborted the run. Node callables routinely capture references to the
  // caller's stack (declared before the Pipeline, so still alive here);
  // giving the stragglers one more grace period to observe the abort and
  // unwind lets the common slow-but-finite case finish safely joined.
  // Only a thread that is *still* wedged after the grace period is
  // detached — its shared_ptr<RunCore> keeps the runtime's own state
  // alive, but any caller state its node references must outlive the
  // process (see PipelineOptions::stall_timeout_seconds).
  const auto grace = std::chrono::duration<double>(
      std::max(im.options.stall_timeout_seconds, 1.0));
  std::shared_ptr<RunCore> core = im.core;
  {
    std::unique_lock<std::mutex> lock(core->comp_mu);
    core->comp_cv.wait_for(lock, grace, [&] {
      return core->done_count >= core->units.size();
    });
  }
  for (auto& [thread, unit] : im.stragglers) {
    if (unit->done()) {
      thread.join();
    } else {
      if (im.straggler_counter != nullptr) im.straggler_counter->add(1);
      thread.detach();  // kept safe by the thread's shared_ptr<RunCore>
    }
  }
}

void Pipeline::add_stage(std::unique_ptr<Node> node, std::string name) {
  assert(node && "null stage");
  impl_->stages.push_back(PlainStage{std::move(node), std::move(name)});
}

void Pipeline::add_farm(std::function<std::unique_ptr<Node>()> worker_factory,
                        FarmOptions options, std::string name) {
  assert(worker_factory && "null worker factory");
  assert(options.replicas >= 1);
  if (options.controller != nullptr) options.controller->bind(options.replicas);
  impl_->stages.push_back(
      FarmStage{std::move(worker_factory), options, std::move(name)});
}

int Pipeline::thread_count() const {
  int n = 0;
  for (const StageDesc& s : impl_->stages) {
    if (std::holds_alternative<PlainStage>(s)) {
      n += 1;
    } else {
      n += std::get<FarmStage>(s).options.replicas + 2;  // emitter+collector
    }
  }
  return n;
}

Status Pipeline::run_and_wait() {
  Impl& im = *impl_;
  if (im.ran) return FailedPrecondition("pipeline already ran");
  im.ran = true;

  if (im.stages.size() < 2) {
    return InvalidArgument("pipeline needs at least a source and a sink");
  }
  if (!std::holds_alternative<PlainStage>(im.stages.front())) {
    return InvalidArgument("first stage must be a plain source, not a farm");
  }
  if (!std::holds_alternative<PlainStage>(im.stages.back())) {
    return InvalidArgument("last stage must be a plain sink, not a farm");
  }

  im.core = std::make_shared<RunCore>();
  std::shared_ptr<RunCore> core = im.core;
  core->options = im.options;
  const bool stats = im.options.collect_stats;

  // Telemetry: an explicitly supplied bundle wins; otherwise fall back to
  // the process singletons iff telemetry::set_enabled(true) is in effect.
  core->instr = im.options.telemetry.active()
                    ? im.options.telemetry
                    : telemetry::default_instrumentation();
  if (core->instr.active() && core->instr.prefix.empty()) {
    core->instr.prefix = "flow";
  }
  if (core->instr.registry != nullptr) {
    core->queue_full_counter =
        core->instr.registry->counter(core->instr.prefix + ".queue_full");
    core->watchdog_counter = core->instr.registry->counter(
        core->instr.prefix + ".watchdog_aborts");
    core->deadline_counter = core->instr.registry->counter(
        core->instr.prefix + ".deadline_drops");
    im.straggler_counter = core->instr.registry->counter(
        core->instr.prefix + ".stragglers_detached");
  }
  auto attach_telemetry = [&core](Unit* u, const std::string& unit_name) {
    if (!core->instr.active()) return;
    telemetry::Histogram* hist = nullptr;
    telemetry::Counter* items = nullptr;
    if (core->instr.registry != nullptr) {
      hist = core->instr.registry->histogram(core->instr.prefix + "." +
                                             unit_name + ".svc_ns");
      items = core->instr.registry->counter(core->instr.prefix + "." +
                                            unit_name + ".items");
    }
    telemetry::SpanRecorder* spans = core->instr.spans;
    const char* span_name =
        spans != nullptr ? spans->intern(unit_name) : "";
    u->attach_telemetry(hist, items, spans, span_name);
  };

  // Wire stages back to front so each stage knows its downstream channel(s).
  // `entry` = the channel feeding the already-built downstream subgraph.
  Channel* entry = nullptr;
  std::vector<std::unique_ptr<Unit>>& units = core->units;

  for (std::size_t idx = im.stages.size(); idx-- > 0;) {
    StageDesc& desc = im.stages[idx];
    const bool is_source = idx == 0;
    std::vector<Channel*> outs;
    if (entry != nullptr) outs.push_back(entry);

    if (auto* plain = std::get_if<PlainStage>(&desc)) {
      Node* node = plain->node.get();
      core->nodes.push_back(std::move(plain->node));
      Router router(outs, SchedPolicy::kRoundRobin);
      if (is_source) {
        units.push_back(std::make_unique<SourceUnit>(
            plain->name, &core->state, stats, node, std::move(router)));
        entry = nullptr;
      } else {
        Channel* in = core->new_channel(plain->name + ".in");
        auto stage_unit = std::make_unique<StageUnit>(
            plain->name, &core->state, stats, node, in,
            std::move(router), /*propagate_seq=*/false, /*replica_id=*/0,
            /*is_sink=*/idx == im.stages.size() - 1);
        stage_unit->set_deadline_counter(core->deadline_counter);
        units.push_back(std::move(stage_unit));
        entry = in;
      }
      attach_telemetry(units.back().get(), plain->name);
      continue;
    }

    auto& farm = std::get<FarmStage>(desc);
    // collector: worker channels -> entry
    std::vector<Channel*> worker_outs;
    worker_outs.reserve(static_cast<std::size_t>(farm.options.replicas));
    for (int w = 0; w < farm.options.replicas; ++w) {
      worker_outs.push_back(
          core->new_channel(farm.name + ".w" + std::to_string(w) + ".out"));
    }
    units.push_back(std::make_unique<CollectorUnit>(
        farm.name + ".collector", &core->state, worker_outs,
        Router(outs, SchedPolicy::kRoundRobin), farm.options.ordered));

    // workers: per-worker in channel -> per-worker out channel
    std::vector<Channel*> worker_ins;
    worker_ins.reserve(static_cast<std::size_t>(farm.options.replicas));
    for (int w = 0; w < farm.options.replicas; ++w) {
      const std::string worker_name = farm.name + ".w" + std::to_string(w);
      Channel* win = core->new_channel(worker_name + ".in");
      worker_ins.push_back(win);
      auto node = farm.factory();
      assert(node && "worker factory returned null");
      auto worker_unit = std::make_unique<StageUnit>(
          worker_name, &core->state, stats, node.get(),
          win, Router({worker_outs[static_cast<std::size_t>(w)]},
                      SchedPolicy::kRoundRobin),
          /*propagate_seq=*/farm.options.ordered, /*replica_id=*/w);
      worker_unit->set_deadline_counter(core->deadline_counter);
      units.push_back(std::move(worker_unit));
      core->nodes.push_back(std::move(node));
      attach_telemetry(units.back().get(), worker_name);
    }

    // emitter: in channel -> worker channels (the controller, if any, bounds
    // how many of them receive items — see FarmController).
    Channel* farm_in = core->new_channel(farm.name + ".in");
    units.push_back(std::make_unique<EmitterUnit>(
        farm.name + ".emitter", &core->state, farm_in,
        Router(worker_ins, farm.options.policy, farm.options.controller)));
    entry = farm_in;
  }

  // Channels are all built: expose their depths to the sampler for the
  // duration of the run.
  core->register_queues();

  // Launch all units. Threads capture the shared core so a detached stuck
  // thread can never outlive the state it references.
  std::vector<std::thread> threads;
  threads.reserve(units.size());
  const PinPolicy& pin = im.options.pin;
  const int ncores =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  for (auto& unit : units) {
    Unit* u = unit.get();
    threads.emplace_back([core, u] {
      (*u)();
      core->signal_done();
    });
    if (pin.enabled) {
      const int idx = static_cast<int>(threads.size()) - 1;
      int cpu = (pin.first_core + idx * pin.stride) % ncores;
      if (cpu < 0) cpu += ncores;
      if (pin_thread_to_cpu(threads.back(), cpu)) u->set_pinned_cpu(cpu);
      if (core->instr.registry != nullptr) {
        core->instr.registry
            ->gauge(core->instr.prefix + "." + u->name() + ".pinned_cpu")
            ->set(static_cast<double>(u->pinned_cpu()));
      }
    }
  }

  // Supervision loop: wait for completion, running the stall watchdog when
  // enabled. "Progress" is queue traffic + completed svc calls; if it stays
  // flat past the timeout while threads are still live, abort with the
  // stuck stage named, give the healthy units one more timeout period to
  // unwind, then hand whatever is left to the destructor's bounded reaper.
  const bool watchdog = im.options.stall_timeout_seconds > 0.0;
  const auto timeout =
      std::chrono::duration<double>(im.options.stall_timeout_seconds);
  bool watchdog_fired = false;
  {
    std::unique_lock<std::mutex> lock(core->comp_mu);
    std::uint64_t last_progress =
        core->state.progress.load(std::memory_order_relaxed);
    auto last_change = Clock::now();
    auto fired_at = last_change;
    while (core->done_count < units.size()) {
      core->comp_cv.wait_for(lock, std::chrono::milliseconds(20));
      if (core->done_count >= units.size()) break;
      if (!watchdog) continue;
      const auto now = Clock::now();
      const std::uint64_t p =
          core->state.progress.load(std::memory_order_relaxed);
      if (p != last_progress) {
        last_progress = p;
        last_change = now;
        continue;
      }
      if (!watchdog_fired) {
        if (now - last_change >= timeout) {
          watchdog_fired = true;
          fired_at = now;
          // Culprit: a live unit currently inside user code; otherwise the
          // first unit that has not finished.
          std::string stuck;
          for (const auto& unit : units) {
            if (!unit->done() && unit->in_user_code()) {
              stuck = unit->name();
              break;
            }
          }
          if (stuck.empty()) {
            for (const auto& unit : units) {
              if (!unit->done()) {
                stuck = unit->name();
                break;
              }
            }
          }
          if (core->watchdog_counter != nullptr) {
            core->watchdog_counter->add(1);
          }
          core->state.fail(
              stuck, Aborted("stage '" + stuck + "' stalled for " +
                             std::to_string(im.options.stall_timeout_seconds) +
                             "s (watchdog abort)"));
        }
      } else if (now - fired_at >= timeout) {
        break;  // grace period over; detach the stragglers
      }
    }
  }

  // Stop sampling this run's queues before handing control back (straggler
  // threads keep the channels themselves alive through the shared core).
  core->unregister_queues();

  for (std::size_t i = 0; i < threads.size(); ++i) {
    if (units[i]->done()) {
      threads[i].join();
    } else {
      // Do not detach while the caller may still unwind state the node
      // callables reference: hand the thread to the destructor's bounded
      // reaper, which runs before caller state declared ahead of the
      // Pipeline is destroyed.
      im.stragglers.emplace_back(std::move(threads[i]), units[i].get());
    }
  }

  im.reports.clear();
  im.reports.reserve(units.size());
  for (auto& unit : units) {
    // A detached (stuck) unit may still be mutating its stats; report the
    // name only.
    im.reports.push_back(
        unit->done() ? unit->report()
                     : UnitReport{unit->name(), {}, unit->pinned_cpu()});
  }

  std::lock_guard<std::mutex> lock(core->state.mu);
  im.failure_report.failures = core->state.failures;
  return im.failure_report.first();
}

const std::vector<UnitReport>& Pipeline::reports() const {
  return impl_->reports;
}

const FailureReport& Pipeline::failure_report() const {
  return impl_->failure_report;
}

}  // namespace hs::flow
