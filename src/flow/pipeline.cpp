#include "flow/pipeline.hpp"

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <variant>

#include "common/backoff.hpp"
#include "flow/spsc_queue.hpp"

namespace hs::flow {

namespace {

/// Internal transport: items plus control markers.
enum class EnvKind : std::uint8_t {
  kItem,
  kHole,  ///< ordered-farm worker consumed an input without output
  kEos,
};

struct Envelope {
  EnvKind kind = EnvKind::kEos;
  std::uint64_t seq = 0;
  Item item;
};

/// Shared run state: abort flag + first error.
struct RunState {
  std::atomic<bool> abort{false};
  std::mutex mu;
  Status first_error;

  void fail(Status s) {
    std::lock_guard<std::mutex> lock(mu);
    if (first_error.ok()) first_error = std::move(s);
    abort.store(true, std::memory_order_release);
  }
  [[nodiscard]] bool aborted() const {
    return abort.load(std::memory_order_acquire);
  }
};

/// An SPSC queue with blocking push/pop honoring the wait mode and abort.
/// In kBlocking mode, waiters park on a condition variable and the
/// counterpart side notifies after every operation (a bounded wait guards
/// against the classic lost-wakeup race without a lock on the fast path).
class Channel {
 public:
  Channel(std::size_t capacity, WaitMode mode, RunState* state)
      : queue_(capacity), mode_(mode), state_(state) {}

  /// Blocks until pushed; returns false only when the run aborted.
  bool push(Envelope&& env) {
    Backoff backoff;
    while (!queue_.try_push(std::move(env))) {
      if (state_->aborted()) return false;
      wait_not_full(backoff);
    }
    if (mode_ == WaitMode::kBlocking) cv_not_empty_.notify_one();
    return true;
  }

  /// Blocks until popped; returns false only when the run aborted *and*
  /// the queue is empty (drain-before-abort keeps teardown deterministic
  /// for upstream EOS envelopes already queued).
  bool pop(Envelope& out) {
    Backoff backoff;
    while (!queue_.try_pop(out)) {
      if (state_->aborted()) return false;
      wait_not_empty(backoff);
    }
    if (mode_ == WaitMode::kBlocking) cv_not_full_.notify_one();
    return true;
  }

  bool try_pop(Envelope& out) {
    bool ok = queue_.try_pop(out);
    if (ok && mode_ == WaitMode::kBlocking) cv_not_full_.notify_one();
    return ok;
  }
  [[nodiscard]] bool has_space() const {
    return queue_.size_approx() < queue_.capacity();
  }

 private:
  void wait_not_empty(Backoff& backoff) {
    if (mode_ == WaitMode::kBlocking) {
      std::unique_lock<std::mutex> lock(cv_mu_);
      cv_not_empty_.wait_for(lock, std::chrono::milliseconds(1));
      return;
    }
    wait(backoff);
  }
  void wait_not_full(Backoff& backoff) {
    if (mode_ == WaitMode::kBlocking) {
      std::unique_lock<std::mutex> lock(cv_mu_);
      cv_not_full_.wait_for(lock, std::chrono::milliseconds(1));
      return;
    }
    wait(backoff);
  }
  void wait(Backoff& backoff) {
    if (mode_ == WaitMode::kSpin) {
      cpu_relax();
    } else {
      backoff.pause();
    }
  }

  SpscQueue<Envelope> queue_;
  WaitMode mode_;
  RunState* state_;
  std::mutex cv_mu_;
  std::condition_variable cv_not_empty_;
  std::condition_variable cv_not_full_;
};

using Clock = std::chrono::steady_clock;

/// Base of all runtime threads.
class Unit {
 public:
  Unit(std::string name, RunState* state, bool collect_stats)
      : name_(std::move(name)), state_(state), collect_stats_(collect_stats) {}
  virtual ~Unit() = default;

  void operator()() {
    try {
      run();
    } catch (const std::exception& e) {
      state_->fail(Internal(name_ + ": " + e.what()));
      propagate_eos_on_abort();
    } catch (...) {
      state_->fail(Internal(name_ + ": unknown exception"));
      propagate_eos_on_abort();
    }
  }

  virtual void run() = 0;
  /// Best effort: after a failure, push EOS downstream so peers unwind.
  virtual void propagate_eos_on_abort() {}

  [[nodiscard]] UnitReport report() const { return {name_, stats_}; }

 protected:
  template <typename F>
  auto timed(F&& f) {
    if (!collect_stats_) return f();
    auto t0 = Clock::now();
    auto cleanup = [&](auto&& result) {
      stats_.busy_seconds +=
          std::chrono::duration<double>(Clock::now() - t0).count();
      return std::forward<decltype(result)>(result);
    };
    return cleanup(f());
  }

  std::string name_;
  RunState* state_;
  bool collect_stats_;
  NodeStats stats_;
};

/// Routes items from a node to one or more downstream channels, stamping
/// sequence numbers. Implements the Node's emit() port.
class Router final : public OutPort {
 public:
  Router(std::vector<Channel*> outs, SchedPolicy policy)
      : outs_(std::move(outs)), policy_(policy) {}

  /// Routes an item envelope with an explicit sequence number.
  bool route(Envelope&& env) {
    if (outs_.empty()) return true;  // sink: outputs are dropped
    if (outs_.size() == 1) return outs_[0]->push(std::move(env));
    if (policy_ == SchedPolicy::kOnDemand) {
      // Rotate from the cursor looking for space; fall back to a blocking
      // push on the cursor's channel so we never spin on a full farm.
      for (std::size_t probe = 0; probe < outs_.size(); ++probe) {
        std::size_t i = (next_ + probe) % outs_.size();
        if (outs_[i]->has_space()) {
          next_ = i + 1;
          return outs_[i]->push(std::move(env));
        }
      }
    }
    std::size_t i = next_ % outs_.size();
    ++next_;
    return outs_[i]->push(std::move(env));
  }

  /// OutPort: emit() from inside svc. Stamps the router's current sequence.
  bool send(Item item) override {
    Envelope env;
    env.kind = EnvKind::kItem;
    env.seq = seq_++;
    env.item = std::move(item);
    return route(std::move(env));
  }

  bool broadcast_eos() {
    bool ok = true;
    for (Channel* c : outs_) {
      Envelope env;
      env.kind = EnvKind::kEos;
      ok = c->push(std::move(env)) && ok;
    }
    return ok;
  }

  [[nodiscard]] std::uint64_t next_seq() const { return seq_; }
  std::uint64_t take_seq() { return seq_++; }
  void set_seq(std::uint64_t s) { seq_ = s; }

 private:
  std::vector<Channel*> outs_;
  SchedPolicy policy_;
  std::size_t next_ = 0;
  std::uint64_t seq_ = 0;
};

/// First pipeline stage: repeatedly calls svc(empty) until Eos.
class SourceUnit final : public Unit {
 public:
  SourceUnit(std::string name, RunState* state, bool collect_stats, Node* node,
             Router router)
      : Unit(std::move(name), state, collect_stats),
        node_(node),
        router_(std::move(router)) {}

  void run() override {
    NodeAccess::bind(*node_, &router_, /*emit_allowed=*/true);
    node_->on_init(0);
    while (!state_->aborted()) {
      SvcResult r = timed([&] { return node_->svc(Item{}); });
      if (r.kind == SvcResult::Kind::kEos) break;
      if (r.kind == SvcResult::Kind::kItem) {
        ++stats_.items_out;
        Envelope env;
        env.kind = EnvKind::kItem;
        env.seq = router_.take_seq();
        env.item = std::move(r.item);
        if (!router_.route(std::move(env))) break;
      }
    }
    node_->on_end();
    router_.broadcast_eos();
    NodeAccess::unbind(*node_);
  }

  void propagate_eos_on_abort() override { router_.broadcast_eos(); }

 private:
  Node* node_;
  Router router_;
};

/// Middle/sink stage (also farm workers): one input channel, svc per item.
class StageUnit final : public Unit {
 public:
  StageUnit(std::string name, RunState* state, bool collect_stats, Node* node,
            Channel* in, Router router, bool propagate_seq, int replica_id)
      : Unit(std::move(name), state, collect_stats),
        node_(node),
        in_(in),
        router_(std::move(router)),
        propagate_seq_(propagate_seq),
        replica_id_(replica_id) {}

  void run() override {
    NodeAccess::bind(*node_, &router_, /*emit_allowed=*/!propagate_seq_);
    node_->on_init(replica_id_);
    Envelope env;
    while (in_->pop(env)) {
      if (env.kind == EnvKind::kEos) break;
      if (env.kind == EnvKind::kHole) continue;  // holes die at collectors
      ++stats_.items_in;
      std::uint64_t seq = env.seq;
      SvcResult r = timed([&] { return node_->svc(std::move(env.item)); });
      if (r.kind == SvcResult::Kind::kEos) break;
      Envelope out;
      out.seq = propagate_seq_ ? seq : router_.take_seq();
      if (r.kind == SvcResult::Kind::kItem) {
        ++stats_.items_out;
        out.kind = EnvKind::kItem;
        out.item = std::move(r.item);
        if (!router_.route(std::move(out))) break;
      } else if (propagate_seq_) {
        // Ordered farm: the collector must learn this sequence was dropped.
        out.kind = EnvKind::kHole;
        if (!router_.route(std::move(out))) break;
      }
    }
    node_->on_end();
    router_.broadcast_eos();
    NodeAccess::unbind(*node_);
  }

  void propagate_eos_on_abort() override { router_.broadcast_eos(); }

 private:
  Node* node_;
  Channel* in_;
  Router router_;
  bool propagate_seq_;
  int replica_id_;
};

/// Farm front-end: stamps sequence numbers and schedules items to workers.
class EmitterUnit final : public Unit {
 public:
  EmitterUnit(std::string name, RunState* state, Channel* in, Router router)
      : Unit(std::move(name), state, false),
        in_(in),
        router_(std::move(router)) {}

  void run() override {
    Envelope env;
    while (in_->pop(env)) {
      if (env.kind == EnvKind::kEos) break;
      ++stats_.items_in;
      env.seq = router_.take_seq();  // restamp in arrival order
      if (!router_.route(std::move(env))) break;
    }
    router_.broadcast_eos();
  }

  void propagate_eos_on_abort() override { router_.broadcast_eos(); }

 private:
  Channel* in_;
  Router router_;
};

/// Farm back-end: merges worker outputs, optionally restoring order.
class CollectorUnit final : public Unit {
 public:
  CollectorUnit(std::string name, RunState* state,
                std::vector<Channel*> ins, Router router, bool ordered)
      : Unit(std::move(name), state, false),
        ins_(std::move(ins)),
        router_(std::move(router)),
        ordered_(ordered) {}

  void run() override {
    std::size_t eos_seen = 0;
    std::size_t cursor = 0;
    Backoff backoff;
    while (eos_seen < ins_.size() && !state_->aborted()) {
      Envelope env;
      bool got = false;
      for (std::size_t probe = 0; probe < ins_.size(); ++probe) {
        std::size_t i = (cursor + probe) % ins_.size();
        if (ins_[i]->try_pop(env)) {
          cursor = i + 1;
          got = true;
          break;
        }
      }
      if (!got) {
        backoff.pause();
        continue;
      }
      backoff.reset();
      if (env.kind == EnvKind::kEos) {
        ++eos_seen;
        continue;
      }
      if (ordered_) {
        if (!deliver_ordered(std::move(env))) return;
      } else if (env.kind == EnvKind::kItem) {
        if (!forward(std::move(env.item))) return;
      }
    }
    if (ordered_) flush_pending();
    router_.broadcast_eos();
  }

  void propagate_eos_on_abort() override { router_.broadcast_eos(); }

 private:
  bool forward(Item item) {
    ++stats_.items_out;
    Envelope out;
    out.kind = EnvKind::kItem;
    out.seq = router_.take_seq();
    out.item = std::move(item);
    return router_.route(std::move(out));
  }

  bool deliver_ordered(Envelope&& env) {
    pending_.emplace(env.seq, std::move(env));
    while (!pending_.empty() && pending_.begin()->first == next_expected_) {
      Envelope e = std::move(pending_.begin()->second);
      pending_.erase(pending_.begin());
      ++next_expected_;
      if (e.kind == EnvKind::kItem && !forward(std::move(e.item))) return false;
    }
    return true;
  }

  void flush_pending() {
    // After all workers EOS'd every remaining envelope is contiguous only
    // if no sequence was lost; forward what is left in order regardless —
    // the alternative (dropping) would silently lose data on abort.
    for (auto& [seq, e] : pending_) {
      if (e.kind == EnvKind::kItem) {
        if (!forward(std::move(e.item))) return;
      }
    }
    pending_.clear();
  }

  std::vector<Channel*> ins_;
  Router router_;
  bool ordered_;
  std::uint64_t next_expected_ = 0;
  std::map<std::uint64_t, Envelope> pending_;
};

/// Graph description element.
struct PlainStage {
  std::unique_ptr<Node> node;
  std::string name;
};
struct FarmStage {
  std::function<std::unique_ptr<Node>()> factory;
  FarmOptions options;
  std::string name;
};
using StageDesc = std::variant<PlainStage, FarmStage>;

}  // namespace

struct Pipeline::Impl {
  PipelineOptions options;
  std::vector<StageDesc> stages;
  std::vector<std::unique_ptr<Node>> farm_nodes;  // keep workers alive
  std::vector<std::unique_ptr<Channel>> channels;
  std::vector<std::unique_ptr<Unit>> units;
  std::vector<UnitReport> reports;
  RunState state;
  bool ran = false;

  Channel* new_channel() {
    channels.push_back(std::make_unique<Channel>(options.queue_capacity,
                                                 options.wait_mode, &state));
    return channels.back().get();
  }
};

Pipeline::Pipeline(PipelineOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
}

Pipeline::~Pipeline() = default;

void Pipeline::add_stage(std::unique_ptr<Node> node, std::string name) {
  assert(node && "null stage");
  impl_->stages.push_back(PlainStage{std::move(node), std::move(name)});
}

void Pipeline::add_farm(std::function<std::unique_ptr<Node>()> worker_factory,
                        FarmOptions options, std::string name) {
  assert(worker_factory && "null worker factory");
  assert(options.replicas >= 1);
  impl_->stages.push_back(
      FarmStage{std::move(worker_factory), options, std::move(name)});
}

int Pipeline::thread_count() const {
  int n = 0;
  for (const StageDesc& s : impl_->stages) {
    if (std::holds_alternative<PlainStage>(s)) {
      n += 1;
    } else {
      n += std::get<FarmStage>(s).options.replicas + 2;  // emitter+collector
    }
  }
  return n;
}

Status Pipeline::run_and_wait() {
  Impl& im = *impl_;
  if (im.ran) return FailedPrecondition("pipeline already ran");
  im.ran = true;

  if (im.stages.size() < 2) {
    return InvalidArgument("pipeline needs at least a source and a sink");
  }
  if (!std::holds_alternative<PlainStage>(im.stages.front())) {
    return InvalidArgument("first stage must be a plain source, not a farm");
  }
  if (!std::holds_alternative<PlainStage>(im.stages.back())) {
    return InvalidArgument("last stage must be a plain sink, not a farm");
  }

  const bool stats = im.options.collect_stats;

  // Wire stages back to front so each stage knows its downstream channel(s).
  // `entry` = the channel feeding the already-built downstream subgraph.
  Channel* entry = nullptr;
  std::vector<std::unique_ptr<Unit>>& units = im.units;

  for (std::size_t idx = im.stages.size(); idx-- > 0;) {
    StageDesc& desc = im.stages[idx];
    const bool is_source = idx == 0;
    std::vector<Channel*> outs;
    if (entry != nullptr) outs.push_back(entry);

    if (auto* plain = std::get_if<PlainStage>(&desc)) {
      Router router(outs, SchedPolicy::kRoundRobin);
      if (is_source) {
        units.push_back(std::make_unique<SourceUnit>(
            plain->name, &im.state, stats, plain->node.get(),
            std::move(router)));
        entry = nullptr;
      } else {
        Channel* in = im.new_channel();
        units.push_back(std::make_unique<StageUnit>(
            plain->name, &im.state, stats, plain->node.get(), in,
            std::move(router), /*propagate_seq=*/false, /*replica_id=*/0));
        entry = in;
      }
      continue;
    }

    auto& farm = std::get<FarmStage>(desc);
    // collector: worker channels -> entry
    std::vector<Channel*> worker_outs;
    worker_outs.reserve(static_cast<std::size_t>(farm.options.replicas));
    for (int w = 0; w < farm.options.replicas; ++w) {
      worker_outs.push_back(im.new_channel());
    }
    units.push_back(std::make_unique<CollectorUnit>(
        farm.name + ".collector", &im.state, worker_outs,
        Router(outs, SchedPolicy::kRoundRobin), farm.options.ordered));

    // workers: per-worker in channel -> per-worker out channel
    std::vector<Channel*> worker_ins;
    worker_ins.reserve(static_cast<std::size_t>(farm.options.replicas));
    for (int w = 0; w < farm.options.replicas; ++w) {
      Channel* win = im.new_channel();
      worker_ins.push_back(win);
      auto node = farm.factory();
      assert(node && "worker factory returned null");
      units.push_back(std::make_unique<StageUnit>(
          farm.name + ".w" + std::to_string(w), &im.state, stats, node.get(),
          win, Router({worker_outs[static_cast<std::size_t>(w)]},
                      SchedPolicy::kRoundRobin),
          /*propagate_seq=*/farm.options.ordered, /*replica_id=*/w));
      im.farm_nodes.push_back(std::move(node));
    }

    // emitter: in channel -> worker channels
    Channel* farm_in = im.new_channel();
    units.push_back(std::make_unique<EmitterUnit>(
        farm.name + ".emitter", &im.state, farm_in,
        Router(worker_ins, farm.options.policy)));
    entry = farm_in;
  }

  // Launch all units; jthread joins on destruction.
  {
    std::vector<std::jthread> threads;
    threads.reserve(units.size());
    for (auto& unit : units) {
      threads.emplace_back([&unit] { (*unit)(); });
    }
  }

  im.reports.clear();
  im.reports.reserve(units.size());
  for (auto& unit : units) im.reports.push_back(unit->report());

  std::lock_guard<std::mutex> lock(im.state.mu);
  return im.state.first_error;
}

const std::vector<UnitReport>& Pipeline::reports() const {
  return impl_->reports;
}

}  // namespace hs::flow
