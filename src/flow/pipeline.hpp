// Pipeline + farm runtime — the FastFlow-equivalent substrate (paper §III-A).
//
// A Pipeline is a linear chain of stages; each plain stage runs on its own
// thread, connected by bounded lock-free SPSC queues. A stage may instead be
// a Farm: an implicit emitter thread distributing items to N replicated
// worker threads and an implicit collector thread merging (optionally
// reordering) their outputs — exactly the structure SPar generates for
// [[spar::Stage, spar::Replicate(n)]] regions.
//
//   source -> [emitter -> w0..wN -> collector] -> ... -> sink
//
// End-of-stream is a sentinel envelope broadcast through every branch; the
// collector forwards it once all workers have finished.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "flow/node.hpp"
#include "telemetry/telemetry.hpp"

namespace hs::flow {

/// How queue waits behave when empty/full.
enum class WaitMode : std::uint8_t {
  kSpin,      ///< busy-wait with pause/yield (lowest latency)
  kBackoff,   ///< escalate to short sleeps (the default; frees the core)
  kBlocking,  ///< park on a condition variable (FastFlow's blocking mode:
              ///< lowest CPU use, highest wakeup latency)
};

/// How an emitter assigns items to farm workers.
enum class SchedPolicy : std::uint8_t {
  kRoundRobin,   ///< strict rotation (FastFlow default scheduling)
  kOnDemand,     ///< first worker with queue space (load-balancing)
  kLeastLoaded,  ///< worker with the shallowest queue. On-demand takes the
                 ///< first queue with *any* space, so a worker sitting on a
                 ///< nearly-full queue can be fed while an idle sibling
                 ///< starves (head-of-line blocking at the emitter);
                 ///< least-loaded always routes to the emptiest queue, which
                 ///< tracks each worker's actual drain rate.
};

/// Opt-in core affinity for one run's worker threads. When enabled, every
/// runtime thread (stages, emitters, workers, collectors) is pinned to a
/// single core chosen round-robin in thread-launch order:
///   core(i) = (first_core + i * stride) mod hardware_concurrency
/// The assigned core of each thread is visible in UnitReport::pinned_cpu
/// and, when the run is instrumented, in the "<prefix>.<stage>.pinned_cpu"
/// gauge. Pinning is best-effort: on platforms without
/// pthread_setaffinity_np (or when the syscall fails) the thread runs
/// unpinned and reports pinned_cpu = -1.
struct PinPolicy {
  bool enabled = false;
  int first_core = 0;  ///< core of the first launched thread
  int stride = 1;      ///< core step between consecutive threads
};

struct PipelineOptions {
  std::size_t queue_capacity = 512;
  WaitMode wait_mode = WaitMode::kBackoff;
  bool collect_stats = false;  ///< measure per-node wall busy time
  /// Stage-stall watchdog: when > 0 and no runtime thread makes progress
  /// (queue traffic or completed svc calls) for this many seconds while the
  /// stream is still live, the run aborts with kAborted naming the stuck
  /// stage instead of hanging run_and_wait() forever. A thread still wedged
  /// inside svc() when run_and_wait() returns is reaped by the Pipeline
  /// destructor: it gets one more grace period to observe the abort and is
  /// joined if it unwinds in time. Node callables that capture references
  /// to caller state must therefore be declared *after* that state, so the
  /// Pipeline (and its reaper) is destroyed first. A thread that is still
  /// wedged after the grace period is detached — the runtime's own shared
  /// state stays alive until it unwinds, but any captured caller state it
  /// touches afterwards must outlive the process. 0 disables the watchdog
  /// (the default).
  double stall_timeout_seconds = 0.0;
  /// Telemetry sinks for this run. When left inactive the pipeline falls
  /// back to telemetry::default_instrumentation() — i.e. the process-wide
  /// registry/recorder/sampler singletons, but only while
  /// telemetry::set_enabled(true) is in effect; otherwise the run is not
  /// instrumented and each hook costs one branch. Per node stage the run
  /// records "<prefix>.<stage>.svc_ns" (histogram), "<prefix>.<stage>.items"
  /// (counter), a span per svc() call on the stage's thread, plus
  /// "<prefix>.queue_full" (pushes that found a queue full),
  /// "<prefix>.deadline_drops" (items whose deadline budget expired at a
  /// stage boundary — see Item::set_deadline_ns),
  /// "<prefix>.watchdog_aborts" / "<prefix>.stragglers_detached", and
  /// registers every channel with the sampler as "<prefix>.<queue>". The
  /// supplied registry/recorder/sampler must outlive the Pipeline.
  telemetry::StreamInstrumentation telemetry;
  /// Core affinity for this run's threads (off by default).
  PinPolicy pin;
};

/// Runtime resize handle for an elastic farm. The farm is *provisioned* at
/// FarmOptions::replicas workers (threads and channels exist for the whole
/// run), and the controller bounds how many of them the emitter feeds:
/// workers [0, active) receive items, the rest idle on empty queues in the
/// run's wait mode (backoff/blocking parks them off-CPU). Resizing is a
/// single relaxed atomic store — O(1), lock-free, safe from any thread while
/// the pipeline runs — and takes effect on the emitter's next routing
/// decision. In-flight items on a deactivated worker's queue still drain
/// (the collector keeps merging every replica), so shrink never strands or
/// reorders accepted work. Caller-owned: must outlive the run.
class FarmController {
 public:
  FarmController() = default;

  /// Sets the number of fed workers, clamped to [1, replicas] once the
  /// controller is bound to a farm (add_farm); before binding the value is
  /// only floored at 1.
  void set_active(int n) {
    const int max = replicas_.load(std::memory_order_relaxed);
    if (n < 1) n = 1;
    if (max > 0 && n > max) n = max;
    active_.store(n, std::memory_order_relaxed);
  }
  [[nodiscard]] int active() const {
    return active_.load(std::memory_order_relaxed);
  }
  /// Provisioned worker count (0 until bound to a farm).
  [[nodiscard]] int replicas() const {
    return replicas_.load(std::memory_order_relaxed);
  }

 private:
  friend class Pipeline;
  void bind(int replicas) {
    replicas_.store(replicas, std::memory_order_relaxed);
    int a = active_.load(std::memory_order_relaxed);
    if (a > replicas) active_.store(replicas, std::memory_order_relaxed);
  }

  std::atomic<int> active_{1 << 20};  ///< "all provisioned" until set
  std::atomic<int> replicas_{0};
};

struct FarmOptions {
  int replicas = 1;
  bool ordered = false;  ///< collector restores emission order
  SchedPolicy policy = SchedPolicy::kRoundRobin;
  /// Optional elastic-resize handle (see FarmController). Null = fixed farm.
  /// Bound to this farm's replica count by add_farm().
  FarmController* controller = nullptr;
};

/// Snapshot of one runtime thread's activity after a run.
struct UnitReport {
  std::string name;
  NodeStats stats;
  int pinned_cpu = -1;  ///< core this thread was pinned to; -1 = unpinned
};

/// One stage's failure during a run (exception escaping svc(), or the
/// watchdog naming a stalled stage).
struct StageFailure {
  std::string stage;
  Status status;
};

/// Structured per-stage failure record for a run. Replaces "first stage
/// error wins": every failing stage is recorded in the order the runtime
/// observed the failures; the first one is what run_and_wait() returns.
struct FailureReport {
  std::vector<StageFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
  [[nodiscard]] Status first() const {
    return failures.empty() ? OkStatus() : failures.front().status;
  }
  /// "stage-a: INTERNAL: ...; stage-b: ABORTED: ..." (empty when ok).
  [[nodiscard]] std::string ToString() const;
};

/// A runnable stream graph. Build with add_stage()/add_farm() in pipeline
/// order (first stage = source, last = sink), then run_and_wait().
class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options = {});
  ~Pipeline();
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Appends a sequential stage. `name` is used in reports.
  void add_stage(std::unique_ptr<Node> node, std::string name = "stage");

  /// Appends a farm of `options.replicas` workers built by `worker_factory`
  /// (one call per replica; replica id passed to Node::on_init).
  void add_farm(std::function<std::unique_ptr<Node>()> worker_factory,
                FarmOptions options, std::string name = "farm");

  /// Runs the whole graph and blocks until end-of-stream has flushed
  /// through the sink. Returns the first stage error (an exception thrown
  /// from svc(), or a watchdog abort) or a validation error; OK otherwise.
  /// The full per-stage picture is in failure_report(). Single-shot.
  Status run_and_wait();

  /// Per-thread activity reports; valid after run_and_wait().
  [[nodiscard]] const std::vector<UnitReport>& reports() const;

  /// Every stage failure of the run, in observation order; valid after
  /// run_and_wait() (empty on success).
  [[nodiscard]] const FailureReport& failure_report() const;

  /// Total number of runtime threads the current graph will spawn.
  [[nodiscard]] int thread_count() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hs::flow
