// Stream node abstraction — the ff_node equivalent.
//
// A Node's svc() is called once per input item (or repeatedly with an empty
// item for sources) and returns what to do next: forward an item, continue
// without output, or end the stream. Nodes may additionally emit() extra
// items mid-svc (FastFlow's ff_send_out).
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "flow/item.hpp"

namespace hs::flow {

/// Result of one service call.
struct SvcResult {
  enum class Kind : std::uint8_t {
    kItem,  ///< forward `item` downstream
    kGoOn,  ///< no output for this input; keep running
    kEos,   ///< end of stream (sources); stages normally never return this
  };

  Kind kind = Kind::kGoOn;
  Item item;

  static SvcResult Out(Item item) {
    SvcResult r;
    r.kind = Kind::kItem;
    r.item = std::move(item);
    return r;
  }
  static SvcResult GoOn() { return SvcResult{}; }
  static SvcResult Eos() {
    SvcResult r;
    r.kind = Kind::kEos;
    return r;
  }
};

/// Runtime-facing output port; implemented by the pipeline wiring. send()
/// blocks (with backoff) until queue space is available or the run aborts;
/// it returns false only on abort.
class OutPort {
 public:
  virtual ~OutPort() = default;
  virtual bool send(Item item) = 0;
};

/// Per-node execution statistics (wall time, not modeled time).
struct NodeStats {
  std::uint64_t items_in = 0;
  std::uint64_t items_out = 0;
  /// Items this stage skipped (forwarded unserviced) because their deadline
  /// had already passed when they reached the stage boundary.
  std::uint64_t deadline_drops = 0;
  double busy_seconds = 0;
};

/// Base class for user stages. Subclass and implement svc(); or use the
/// lambda adapters in flow/adapters.hpp.
class Node {
 public:
  virtual ~Node() = default;

  /// Called on the node's own thread before the first svc(). `replica_id`
  /// is the worker index inside a farm (0 for plain stages).
  virtual void on_init(int replica_id) { (void)replica_id; }

  /// Called after the last svc(), still on the node's thread.
  virtual void on_end() {}

  /// One service call. Sources receive an empty item and return Eos() when
  /// the stream is exhausted; sinks return GoOn().
  virtual SvcResult svc(Item in) = 0;

 protected:
  /// Sends an additional item downstream from inside svc(). Only valid
  /// while the node is running in a pipeline; returns false if the run is
  /// aborting. In an *ordered* farm, workers must not use emit() — ordering
  /// requires exactly one output per input (enforced by the runtime).
  bool emit(Item item);

 private:
  friend struct NodeAccess;
  OutPort* out_ = nullptr;
  bool emit_allowed_ = true;
};

/// Runtime-internal binder for a node's output port. Not for user code.
struct NodeAccess {
  static void bind(Node& node, OutPort* out, bool emit_allowed) {
    node.out_ = out;
    node.emit_allowed_ = emit_allowed;
  }
  static void unbind(Node& node) { node.out_ = nullptr; }
};

inline bool Node::emit(Item item) {
  if (out_ == nullptr) return false;
  // The runtime clears emit_allowed_ for ordered-farm workers.
  if (!emit_allowed_) {
    assert(false && "emit() is not permitted in ordered farm workers");
    return false;
  }
  return out_->send(std::move(item));
}

}  // namespace hs::flow
