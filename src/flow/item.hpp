// Type-erased stream items.
//
// FastFlow moves raw void* through its queues; we keep the same untyped
// transport (stages of different types can be wired without template
// explosion) but with unique ownership and a checked downcast, following
// the Core Guidelines' preference for owned, typed access over raw void*.
#pragma once

#include <cassert>
#include <chrono>
#include <cstdint>
#include <memory>
#include <typeinfo>
#include <utility>

namespace hs::flow {

/// A movable, type-erased, uniquely-owned payload flowing through a stream.
class Item {
 public:
  Item() = default;
  Item(Item&&) noexcept = default;
  Item& operator=(Item&&) noexcept = default;
  Item(const Item&) = delete;
  Item& operator=(const Item&) = delete;

  /// Wraps a value. Item::make<T>(args...) constructs in place.
  template <typename T, typename... Args>
  static Item make(Args&&... args) {
    Item item;
    item.holder_ = std::make_unique<HolderImpl<T>>(std::forward<Args>(args)...);
    return item;
  }

  /// Wraps an already-constructed value (deduced).
  template <typename T>
  static Item of(T value) {
    return make<T>(std::move(value));
  }

  [[nodiscard]] bool has_value() const { return holder_ != nullptr; }
  explicit operator bool() const { return has_value(); }

  /// Checked access: asserts the stored type matches in debug builds.
  template <typename T>
  [[nodiscard]] T& as() {
    assert(holder_ && "empty Item");
    assert(holder_->type() == typeid(T) && "Item type mismatch");
    return static_cast<HolderImpl<T>*>(holder_.get())->value;
  }

  template <typename T>
  [[nodiscard]] const T& as() const {
    assert(holder_ && "empty Item");
    assert(holder_->type() == typeid(T) && "Item type mismatch");
    return static_cast<const HolderImpl<T>*>(holder_.get())->value;
  }

  /// Moves the payload out, leaving the item empty.
  template <typename T>
  [[nodiscard]] T take() {
    T out = std::move(as<T>());
    holder_.reset();
    return out;
  }

  /// True if the stored type is T (false for empty items).
  template <typename T>
  [[nodiscard]] bool is() const {
    return holder_ && holder_->type() == typeid(T);
  }

  void reset() { holder_.reset(); }

  // --- deadline budget (serve layer) ------------------------------------
  // A deadline rides with the payload through every queue and stage: the
  // runtime checks it at each stage boundary and, once expired, skips svc()
  // for the remaining non-sink stages (the item is forwarded unserviced and
  // flagged, so the sink can still complete its ticket as a miss). 0 means
  // "no deadline" and costs the runtime a single branch per item.

  /// Arms the deadline: absolute steady_clock time in nanoseconds since the
  /// clock's epoch (see flow::deadline_clock_now()).
  void set_deadline_ns(std::uint64_t t) { deadline_ns_ = t; }
  [[nodiscard]] std::uint64_t deadline_ns() const { return deadline_ns_; }

  /// True once the runtime dropped this item at a stage boundary. Sticky:
  /// set with mark_deadline_expired() by the first stage that saw the
  /// deadline pass, so the drop is counted exactly once.
  [[nodiscard]] bool deadline_expired() const { return deadline_expired_; }
  void mark_deadline_expired() { deadline_expired_ = true; }

 private:
  struct Holder {
    virtual ~Holder() = default;
    [[nodiscard]] virtual const std::type_info& type() const = 0;
  };

  template <typename T>
  struct HolderImpl final : Holder {
    template <typename... Args>
    explicit HolderImpl(Args&&... args) : value(std::forward<Args>(args)...) {}
    [[nodiscard]] const std::type_info& type() const override {
      return typeid(T);
    }
    T value;
  };

  std::unique_ptr<Holder> holder_;
  std::uint64_t deadline_ns_ = 0;
  bool deadline_expired_ = false;
};

/// The clock deadlines are measured against: steady_clock now, as
/// nanoseconds since its epoch. Callers arm items with
/// `deadline_clock_now() + budget_ns`.
[[nodiscard]] inline std::uint64_t deadline_clock_now() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace hs::flow
