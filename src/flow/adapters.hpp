// Typed lambda adapters over the untyped Node interface, so applications
// can express pipelines without writing Node subclasses:
//
//   pipe.add_stage(flow::make_source<int>([n = 0]() mutable
//       { return n < 100 ? std::optional<int>(n++) : std::nullopt; }));
//   pipe.add_farm(flow::stage_factory<int, double>(
//       [](int x) { return x * 0.5; }), {.replicas = 4, .ordered = true});
//   pipe.add_stage(flow::make_sink<double>([&](double v) { sum += v; }));
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "flow/node.hpp"

namespace hs::flow {

/// Source from a generator: nullopt ends the stream.
template <typename T, typename Fn>
class LambdaSource final : public Node {
 public:
  explicit LambdaSource(Fn fn) : fn_(std::move(fn)) {}

  SvcResult svc(Item) override {
    std::optional<T> next = fn_();
    if (!next.has_value()) return SvcResult::Eos();
    return SvcResult::Out(Item::of<T>(std::move(*next)));
  }

 private:
  Fn fn_;
};

template <typename T, typename Fn>
std::unique_ptr<Node> make_source(Fn fn) {
  return std::make_unique<LambdaSource<T, Fn>>(std::move(fn));
}

/// Transform stage In -> Out.
template <typename In, typename Out, typename Fn>
class LambdaStage final : public Node {
 public:
  explicit LambdaStage(Fn fn) : fn_(std::move(fn)) {}

  SvcResult svc(Item in) override {
    return SvcResult::Out(Item::of<Out>(fn_(in.take<In>())));
  }

 private:
  Fn fn_;
};

template <typename In, typename Out, typename Fn>
std::unique_ptr<Node> make_stage(Fn fn) {
  return std::make_unique<LambdaStage<In, Out, Fn>>(std::move(fn));
}

/// Filtering transform: nullopt drops the item (ordered farms emit a hole).
template <typename In, typename Out, typename Fn>
class LambdaFilterStage final : public Node {
 public:
  explicit LambdaFilterStage(Fn fn) : fn_(std::move(fn)) {}

  SvcResult svc(Item in) override {
    std::optional<Out> out = fn_(in.take<In>());
    if (!out.has_value()) return SvcResult::GoOn();
    return SvcResult::Out(Item::of<Out>(std::move(*out)));
  }

 private:
  Fn fn_;
};

template <typename In, typename Out, typename Fn>
std::unique_ptr<Node> make_filter_stage(Fn fn) {
  return std::make_unique<LambdaFilterStage<In, Out, Fn>>(std::move(fn));
}

/// Terminal consumer.
template <typename In, typename Fn>
class LambdaSink final : public Node {
 public:
  explicit LambdaSink(Fn fn) : fn_(std::move(fn)) {}

  SvcResult svc(Item in) override {
    fn_(in.take<In>());
    return SvcResult::GoOn();
  }

 private:
  Fn fn_;
};

template <typename In, typename Fn>
std::unique_ptr<Node> make_sink(Fn fn) {
  return std::make_unique<LambdaSink<In, Fn>>(std::move(fn));
}

/// Worker factory for add_farm from a copyable callable.
template <typename In, typename Out, typename Fn>
std::function<std::unique_ptr<Node>()> stage_factory(Fn fn) {
  return [fn]() -> std::unique_ptr<Node> {
    return std::make_unique<LambdaStage<In, Out, Fn>>(fn);
  };
}

}  // namespace hs::flow
