// Host-side performance model: a calibrated profile of the paper's testbed
// (Intel i9-7900X, 10C/20T @3.3 GHz + 2x Titan XP) and helpers for charging
// CPU stage costs onto the shared discrete-event timeline.
//
// Rationale (DESIGN.md §2): this machine has one physical core, so the
// figures cannot be reproduced by wall clock; instead every figure bench
// executes the *real algorithm structure* (the same loops, batches, stream
// round-robins, and synchronization points as the real implementations)
// while charging calibrated durations onto modeled host workers and the
// simulated devices. Speedups and crossovers then emerge from the schedule,
// not from assumptions.
//
// Calibration constants are tuned so the paper-scale Mandelbrot workload
// (dim=2000, niter=200000) lands near the paper's headline numbers
// (sequential ~400 s; 20-thread CPU ~17x; batched CUDA ~45x; see
// EXPERIMENTS.md for measured-vs-paper on every row).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "des/timeline.hpp"
#include "gpusim/device.hpp"

namespace hs::perfmodel {

/// Calibrated per-operation costs of the paper's host CPU.
struct HostProfile {
  int hw_threads = 20;  ///< i9-7900X: 10 cores / 20 threads

  // --- Mandelbrot ---
  /// Seconds per inner-loop iteration of one CPU hardware thread.
  double seconds_per_mandel_iter = 3.0e-9;
  /// Per-line display/collect cost (ShowLine): base + per pixel.
  double show_line_base = 1.0e-6;
  double show_line_per_pixel = 1.0e-9;

  // --- stream runtime overheads, per item per hop ---
  double flow_item_overhead = 1.2e-6;   ///< FastFlow-equivalent queues
  double spar_item_overhead = 1.3e-6;   ///< SPar: flow + annotation glue
  double taskx_item_overhead = 2.0e-6;  ///< TBB-equivalent token scheduling
  /// Cost of one GPU API enqueue (launch/copy call) on the host thread.
  double gpu_enqueue_overhead = 4.0e-6;

  // --- Dedup stage costs ---
  double seconds_per_rabin_byte = 1.1e-9;
  double seconds_per_sha1_round = 1.5e-7;     ///< per 64-byte block round
  double seconds_per_dupcheck = 3.0e-7;       ///< hash-table probe per block
  double seconds_per_lzss_unit = 1.4e-9;      ///< per match-cost unit (CPU)
  double seconds_per_output_byte = 0.35e-9;   ///< reorder+write stage
  double seconds_per_encode_byte = 2.0e-9;    ///< CPU walk over matches

  /// The paper's testbed profile (defaults above).
  static HostProfile I9_7900X() { return HostProfile{}; }
};

/// A modeled host worker thread: a serial engine on the machine's timeline
/// whose tasks chain after one another, with explicit extra dependencies
/// for synchronization points (stream syncs, event waits).
class ModeledHost {
 public:
  ModeledHost(gpusim::Machine* machine, std::string name)
      : machine_(machine),
        engine_(machine->add_host_engine(std::move(name))) {}

  /// Charges `seconds` of work after this worker's previous task and all
  /// of `deps`. Returns the new task (also remembered as the chain tail).
  des::TaskId work(double seconds, std::span<const des::TaskId> deps = {});

  /// Charges work after the previous task and one extra dependency (pass
  /// an invalid id for none).
  des::TaskId work_after(double seconds, des::TaskId dep);

  /// Blocks (virtually) until `dep` completes: zero-cost wait that moves
  /// this worker's chain tail to max(tail, dep).
  des::TaskId wait(des::TaskId dep) { return work_after(0.0, dep); }

  [[nodiscard]] des::TaskId tail() const { return tail_; }
  [[nodiscard]] des::EngineId engine() const { return engine_; }
  [[nodiscard]] double finish_time() const {
    return tail_.valid() ? machine_->finish_time(tail_) : 0.0;
  }

 private:
  gpusim::Machine* machine_;
  des::EngineId engine_;
  des::TaskId tail_{};
};

/// Bridges a modeled-host task into a device stream: ops enqueued on
/// `stream` after this call cannot start before `host_task` finishes
/// (a kernel cannot run before the host thread has issued it).
inline void stream_wait_host(gpusim::Device& device, gpusim::StreamId stream,
                             des::TaskId host_task) {
  if (host_task.valid()) {
    (void)device.wait_event(stream, gpusim::OpHandle{host_task});
  }
}

}  // namespace hs::perfmodel
