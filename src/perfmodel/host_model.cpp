#include "perfmodel/host_model.hpp"

#include <vector>

namespace hs::perfmodel {

des::TaskId ModeledHost::work(double seconds,
                              std::span<const des::TaskId> deps) {
  // Chain after the previous task on this worker plus the explicit deps.
  std::vector<des::TaskId> all;
  all.reserve(deps.size() + 1);
  if (tail_.valid()) all.push_back(tail_);
  for (des::TaskId d : deps) {
    if (d.valid()) all.push_back(d);
  }
  tail_ = machine_->host_task(engine_, seconds, all);
  return tail_;
}

des::TaskId ModeledHost::work_after(double seconds, des::TaskId dep) {
  des::TaskId deps[1] = {dep};
  return work(seconds, std::span<const des::TaskId>(deps, dep.valid() ? 1 : 0));
}

}  // namespace hs::perfmodel
